#pragma once
/// \file structured.hpp
/// Structured-design usage rules (the paper's "STRUCTURED DESIGN"
/// section): the layout analogues of declarations, typing, and locality.
///
///  * Declarations/typing: "The crossing of poly and diffusion outside of
///    the context of a transistor symbol is an error." -- implicit-device
///    detection (Fig. 8), which "replaces the need for device recognition
///    with that for device checking".
///  * Self-sufficiency (Fig. 15): "Butting of two boxes each of half
///    minimum width to form a legal box is called out as an error";
///    symbols must be self-sufficient at every level of the hierarchy.
///  * Locality: prefer local to global elements; measured, not enforced.

#include "layout/library.hpp"
#include "report/violation.hpp"
#include "tech/technology.hpp"

namespace dic::structured {

/// Implicit-device scan: flags any poly/diff crossing that does not lie
/// inside a declared device symbol, and any contact-layer geometry over a
/// declared transistor gate that is not part of the device itself.
report::Report checkImplicitDevices(const layout::Library& lib,
                                    layout::CellId root,
                                    const tech::Technology& tech);

/// Self-sufficiency: within each cell, flags sub-minimum-width elements
/// that butt against other elements to form a legal composite (Fig. 15
/// left). (A sub-minimum element that touches nothing is a plain width
/// error and is stage 1's business.)
report::Report checkSelfSufficiency(const layout::Library& lib,
                                    layout::CellId root,
                                    const tech::Technology& tech);

/// Locality metrics: how far do elements of each cell reach outside the
/// cell's own bounding box, and what fraction of cells are "local".
struct LocalityStats {
  std::size_t cells{0};
  std::size_t cellsWithEscapingElements{0};
  double meanEscape{0};  ///< mean escape distance (database units)
};
LocalityStats measureLocality(const layout::Library& lib,
                              layout::CellId root);

}  // namespace dic::structured
