#include "structured/structured.hpp"

#include <algorithm>

#include "engine/hierarchy_view.hpp"

namespace dic::structured {

namespace {

using geom::Rect;
using geom::Region;

struct FlatShape {
  Region region;
  Rect bbox;
  int layer;
  bool fromDevice;
  std::string deviceType;  ///< device type if fromDevice
  std::string path;
};

std::vector<FlatShape> flattenShapes(const layout::Library& lib,
                                     layout::CellId root) {
  engine::HierarchyView view(lib, root);
  const auto& fe = view.flat(/*includeDeviceGeometry=*/true).elements;
  std::vector<FlatShape> out;
  out.reserve(fe.size());
  for (const layout::FlatElement& e : fe) {
    FlatShape s;
    s.region = e.element.region();
    s.bbox = e.element.bbox();
    s.layer = e.element.layer;
    const layout::Cell& src = lib.cell(e.sourceCell);
    s.fromDevice = src.isDevice();
    s.deviceType = src.deviceType;
    s.path = e.path;
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace

report::Report checkImplicitDevices(const layout::Library& lib,
                                    layout::CellId root,
                                    const tech::Technology& tech) {
  report::Report rep;
  const auto polyIdx = tech.layerByName("poly");
  const auto diffIdx = tech.layerByName("diff");
  const auto cutIdx = tech.layerByName("contact");
  if (!polyIdx || !diffIdx) return rep;

  const std::vector<FlatShape> shapes = flattenShapes(lib, root);

  // Interconnect poly regions and diff regions (everything NOT inside a
  // declared device symbol).
  std::vector<const FlatShape*> poly, diff, freeCuts, devicePoly, deviceDiff;
  for (const FlatShape& s : shapes) {
    if (s.layer == *polyIdx) (s.fromDevice ? devicePoly : poly).push_back(&s);
    if (s.layer == *diffIdx) (s.fromDevice ? deviceDiff : diff).push_back(&s);
    if (cutIdx && s.layer == *cutIdx && !s.fromDevice) freeCuts.push_back(&s);
  }

  // (1) Poly x diff overlap where at least one side is interconnect:
  // an accidental (undeclared) transistor, Fig. 8.
  auto crossCheck = [&](const std::vector<const FlatShape*>& ps,
                        const std::vector<const FlatShape*>& ds) {
    if (ps.empty() || ds.empty()) return;
    std::vector<Rect> dBoxes;
    dBoxes.reserve(ds.size());
    for (const FlatShape* d : ds) dBoxes.push_back(d->bbox);
    const engine::SpatialSet set(dBoxes, tech.lambda() * 64);
    std::vector<std::size_t> cand;
    for (const FlatShape* p : ps) {
      set.candidatesInto(p->bbox, 0, cand);
      for (std::size_t k : cand) {
        const FlatShape* d = ds[k];
        if (!geom::overlaps(p->bbox, d->bbox)) continue;
        const Region x = intersect(p->region, d->region);
        if (x.empty()) continue;
        report::Violation v;
        v.category = report::Category::kImplicitDevice;
        v.rule = "STRUCT.IMPLICIT_FET";
        v.where = x.bbox();
        v.layerA = *polyIdx;
        v.layerB = *diffIdx;
        v.cell = p->path.empty() ? d->path : p->path;
        v.message =
            "poly crosses diffusion outside a transistor symbol (implied "
            "device)";
        rep.add(std::move(v));
      }
    }
  };
  crossCheck(poly, diff);        // both interconnect
  crossCheck(poly, deviceDiff);  // stray poly over a device's diffusion
  crossCheck(devicePoly, diff);  // device poly over stray diffusion

  // (2) Free contact geometry over a declared transistor gate (Fig. 7):
  // the gate of each FET is the poly x diff inside the device.
  if (cutIdx && !freeCuts.empty()) {
    for (const FlatShape* dp : devicePoly) {
      const tech::DeviceRules* rules = tech.deviceRules(dp->deviceType);
      if (!rules || (rules->cls != tech::DeviceClass::kEnhancementFet &&
                     rules->cls != tech::DeviceClass::kDepletionFet))
        continue;
      for (const FlatShape* dd : deviceDiff) {
        if (dd->path != dp->path) continue;  // same device instance only
        const Region gate = intersect(dp->region, dd->region);
        if (gate.empty()) continue;
        for (const FlatShape* cut : freeCuts) {
          if (!geom::overlaps(cut->bbox, gate.bbox())) continue;
          if (!cut->region.overlaps(gate)) continue;
          report::Violation v;
          v.category = report::Category::kContactOverGate;
          v.rule = "STRUCT.CONTACT_OVER_GATE";
          v.where = intersect(cut->region, gate).bbox();
          v.layerA = *cutIdx;
          v.layerB = *polyIdx;
          v.cell = dp->path;
          v.message = "contact geometry over the active gate of " + dp->path;
          rep.add(std::move(v));
        }
      }
    }
  }
  return rep;
}

report::Report checkSelfSufficiency(const layout::Library& lib,
                                    layout::CellId root,
                                    const tech::Technology& tech) {
  report::Report rep;
  lib.forEachCellOnce(root, [&](layout::CellId id) {
    const layout::Cell& c = lib.cell(id);
    if (c.isDevice()) return;
    for (std::size_t i = 0; i < c.elements.size(); ++i) {
      const layout::Element& e = c.elements[i];
      const geom::Coord minW = tech.layer(e.layer).minWidth;
      const Rect b = e.bbox();
      const geom::Coord w = std::min(b.width(), b.height());
      if (w >= minW) continue;  // a legal-width element is self-sufficient
      // Sub-minimum element: if it butts another element on the same layer
      // (possibly forming a legal composite), that is the Fig. 15 error.
      for (std::size_t j = 0; j < c.elements.size(); ++j) {
        if (j == i) continue;
        const layout::Element& o = c.elements[j];
        if (o.layer != e.layer) continue;
        if (!geom::closedTouch(b, o.bbox())) continue;
        bool touch = false;
        const Region re = e.region();
        const Region ro = o.region();
        for (const Rect& ra : re.rects()) {
          for (const Rect& rb : ro.rects())
            if (geom::closedTouch(ra, rb)) {
              touch = true;
              break;
            }
          if (touch) break;
        }
        if (!touch) continue;
        report::Violation v;
        v.category = report::Category::kSelfSufficiency;
        v.rule = "STRUCT.SELF_SUFFICIENT";
        v.where = b;
        v.layerA = e.layer;
        v.cell = c.name;
        v.message =
            "sub-minimum element butts a neighbour to form a composite; "
            "include a legal-width element and overlap symbols instead";
        rep.add(std::move(v));
        break;
      }
    }
  });
  return rep;
}

LocalityStats measureLocality(const layout::Library& lib,
                              layout::CellId root) {
  LocalityStats stats;
  double escapeSum = 0;
  std::size_t escapeCount = 0;
  lib.forEachCellOnce(root, [&](layout::CellId id) {
    const layout::Cell& c = lib.cell(id);
    stats.cells++;
    // A cell's "own" span is the bbox of its instances; elements reaching
    // far beyond it are global wiring.
    geom::Rect core{{0, 0}, {0, 0}};
    for (const layout::Instance& inst : c.instances)
      core = geom::bound(core, inst.transform.apply(lib.cellBBox(inst.cell)));
    if (core.empty()) return;
    bool escaped = false;
    for (const layout::Element& e : c.elements) {
      const geom::Rect b = e.bbox();
      const geom::Coord escape =
          std::max({core.lo.x - b.lo.x, core.lo.y - b.lo.y,
                    b.hi.x - core.hi.x, b.hi.y - core.hi.y,
                    geom::Coord{0}});
      if (escape > 0) {
        escaped = true;
        escapeSum += static_cast<double>(escape);
        ++escapeCount;
      }
    }
    if (escaped) stats.cellsWithEscapingElements++;
  });
  stats.meanEscape = escapeCount ? escapeSum / escapeCount : 0.0;
  return stats;
}

}  // namespace dic::structured
