#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace dic::net {

namespace {

// --- little-endian byte writer --------------------------------------------

void putU8(std::vector<std::uint8_t>& b, std::uint8_t v) { b.push_back(v); }

void putU16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void putU32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putU64(std::vector<std::uint8_t>& b, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void putI32(std::vector<std::uint8_t>& b, std::int32_t v) {
  putU32(b, static_cast<std::uint32_t>(v));
}

void putI64(std::vector<std::uint8_t>& b, std::int64_t v) {
  putU64(b, static_cast<std::uint64_t>(v));
}

void putF64(std::vector<std::uint8_t>& b, double v) {
  putU64(b, std::bit_cast<std::uint64_t>(v));
}

void putStr(std::vector<std::uint8_t>& b, std::string_view s) {
  putU32(b, static_cast<std::uint32_t>(s.size()));
  b.insert(b.end(), s.begin(), s.end());
}

// --- bounds-checked little-endian reader ----------------------------------

/// Every read checks the remaining byte count first and latches failure;
/// after a failure all further reads return zeros, so decoders can read
/// linearly and test `ok` once per structural boundary.
struct Reader {
  const std::uint8_t* p;
  std::size_t n;
  bool ok{true};

  bool take(std::size_t k) {
    if (!ok || n < k) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!take(1)) return 0;
    const std::uint8_t v = p[0];
    p += 1;
    n -= 1;
    return v;
  }
  std::uint16_t u16() {
    if (!take(2)) return 0;
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) v |= static_cast<std::uint16_t>(p[i]) << (8 * i);
    p += 2;
    n -= 2;
    return v;
  }
  std::uint32_t u32() {
    if (!take(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    n -= 4;
    return v;
  }
  std::uint64_t u64() {
    if (!take(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    n -= 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t len = u32();
    if (!take(len)) return {};
    std::string s(reinterpret_cast<const char*>(p), len);
    p += len;
    n -= len;
    return s;
  }
  /// u8 validated against an inclusive enum ceiling.
  std::uint8_t u8Max(std::uint8_t maxInclusive) {
    const std::uint8_t v = u8();
    if (v > maxInclusive) ok = false;
    return v;
  }
};

bool fail(std::string* err, const char* what) {
  if (err) *err = what;
  return false;
}

// --- geometry / layout payload pieces --------------------------------------

void putRect(std::vector<std::uint8_t>& b, const geom::Rect& r) {
  putI64(b, r.lo.x);
  putI64(b, r.lo.y);
  putI64(b, r.hi.x);
  putI64(b, r.hi.y);
}

geom::Rect getRect(Reader& rd) {
  geom::Rect r;
  r.lo.x = rd.i64();
  r.lo.y = rd.i64();
  r.hi.x = rd.i64();
  r.hi.y = rd.i64();
  return r;
}

void putElement(std::vector<std::uint8_t>& b, const layout::Element& e) {
  putU8(b, static_cast<std::uint8_t>(e.kind));
  putI32(b, e.layer);
  putStr(b, e.net);
  putRect(b, e.box);
  putU32(b, static_cast<std::uint32_t>(e.path.size()));
  for (const geom::Point& pt : e.path) {
    putI64(b, pt.x);
    putI64(b, pt.y);
  }
  putI64(b, e.wireWidth);
}

bool getElement(Reader& rd, layout::Element& e) {
  e.kind = static_cast<layout::ElementKind>(
      rd.u8Max(static_cast<std::uint8_t>(layout::ElementKind::kPolygon)));
  e.layer = rd.i32();
  e.net = rd.str();
  e.box = getRect(rd);
  const std::uint32_t nPath = rd.u32();
  if (!rd.ok || rd.n / 16 < nPath) return rd.ok = false;
  e.path.clear();
  e.path.reserve(nPath);
  for (std::uint32_t i = 0; i < nPath; ++i) {
    geom::Point pt;
    pt.x = rd.i64();
    pt.y = rd.i64();
    e.path.push_back(pt);
  }
  e.wireWidth = rd.i64();
  return rd.ok;
}

void putInstance(std::vector<std::uint8_t>& b, const layout::Instance& ins) {
  putI64(b, ins.cell);
  putU8(b, static_cast<std::uint8_t>(ins.transform.orient));
  putI64(b, ins.transform.t.x);
  putI64(b, ins.transform.t.y);
  putStr(b, ins.name);
}

bool getInstance(Reader& rd, layout::Instance& ins) {
  ins.cell = static_cast<layout::CellId>(rd.i64());
  ins.transform.orient = static_cast<geom::Orient>(
      rd.u8Max(static_cast<std::uint8_t>(geom::Orient::kMY90)));
  ins.transform.t.x = rd.i64();
  ins.transform.t.y = rd.i64();
  ins.name = rd.str();
  return rd.ok;
}

/// Lower bound on one encoded violation (fixed fields + three empty
/// strings); used to reject count bombs before reserving.
constexpr std::size_t kMinViolationBytes = 2 + 4 * 8 + 3 * 4 + 2 * 4;

}  // namespace

// --- header ----------------------------------------------------------------

void appendHeader(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint64_t requestId, std::uint32_t payloadLen) {
  putU32(out, kMagic);
  putU8(out, kVersion);
  putU8(out, static_cast<std::uint8_t>(type));
  putU16(out, 0);  // reserved flags
  putU64(out, requestId);
  putU32(out, payloadLen);
}

bool parseHeader(const std::uint8_t* buf, FrameHeader& out, std::string* err) {
  Reader rd{buf, kHeaderSize};
  out.magic = rd.u32();
  out.version = rd.u8();
  const std::uint8_t type = rd.u8();
  out.flags = rd.u16();
  out.requestId = rd.u64();
  out.payloadLen = rd.u32();
  if (out.magic != kMagic) return fail(err, "bad magic");
  if (out.version != kVersion) return fail(err, "unsupported version");
  const bool known =
      (type >= static_cast<std::uint8_t>(FrameType::kCheck) &&
       type <= static_cast<std::uint8_t>(FrameType::kMetricsRequest)) ||
      (type >= static_cast<std::uint8_t>(FrameType::kResult) &&
       type <= static_cast<std::uint8_t>(FrameType::kMetrics));
  if (!known) return fail(err, "unknown frame type");
  out.type = static_cast<FrameType>(type);
  if (out.flags != 0) return fail(err, "nonzero reserved flags");
  if (out.payloadLen > kMaxPayload) return fail(err, "oversized payload length");
  return true;
}

// --- kCheck ----------------------------------------------------------------

std::vector<std::uint8_t> encodeCheckFrame(std::uint64_t requestId,
                                           std::string_view library,
                                           const CheckRequest& req) {
  std::vector<std::uint8_t> payload;
  putStr(payload, library);
  putU8(payload, static_cast<std::uint8_t>(req.kind));
  putI64(payload, req.root);
  putU8(payload, static_cast<std::uint8_t>(req.metric));
  std::uint8_t drcFlags = 0;
  if (req.checkDevices) drcFlags |= 1;
  if (req.hierarchicalInteractions) drcFlags |= 2;
  if (req.useNetInformation) drcFlags |= 4;
  if (req.instantiateViolations) drcFlags |= 8;
  putU8(payload, drcFlags);
  std::uint8_t baseFlags = 0;
  if (req.baselineWidth) baseFlags |= 1;
  if (req.baselineSpacing) baseFlags |= 2;
  if (req.baselineContacts) baseFlags |= 4;
  putU8(payload, baseFlags);
  std::uint8_t ercFlags = 0;
  if (req.erc.checkDanglingNets) ercFlags |= 1;
  if (req.erc.checkPowerGroundShort) ercFlags |= 2;
  if (req.erc.checkBusRules) ercFlags |= 4;
  if (req.erc.checkDepletionToGround) ercFlags |= 8;
  putU8(payload, ercFlags);
  putU8(payload, req.extract.mergeByLabel ? 1 : 0);
  putU32(payload, static_cast<std::uint32_t>(req.extract.globalPrefixes.size()));
  for (const std::string& pfx : req.extract.globalPrefixes) putStr(payload, pfx);
  putI32(payload, req.threads);
  putU32(payload, static_cast<std::uint32_t>(req.edits.size()));
  for (const EditOp& op : req.edits) {
    putU8(payload, static_cast<std::uint8_t>(op.kind));
    putI64(payload, op.cell);
    putU64(payload, op.index);
    putElement(payload, op.element);
    putInstance(payload, op.instance);
  }
  putStr(payload, req.tag);

  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderSize + payload.size());
  appendHeader(frame, FrameType::kCheck, requestId,
               static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

bool decodeCheckPayload(const std::uint8_t* p, std::size_t n,
                        std::string& library, CheckRequest& req,
                        std::string* err) {
  Reader rd{p, n};
  library = rd.str();
  req = CheckRequest{};
  req.kind = static_cast<CheckKind>(
      rd.u8Max(static_cast<std::uint8_t>(CheckKind::kNetlistOnly)));
  req.root = static_cast<layout::CellId>(rd.i64());
  req.metric = static_cast<geom::Metric>(
      rd.u8Max(static_cast<std::uint8_t>(geom::Metric::kOrthogonal)));
  const std::uint8_t drcFlags = rd.u8();
  req.checkDevices = drcFlags & 1;
  req.hierarchicalInteractions = drcFlags & 2;
  req.useNetInformation = drcFlags & 4;
  req.instantiateViolations = drcFlags & 8;
  const std::uint8_t baseFlags = rd.u8();
  req.baselineWidth = baseFlags & 1;
  req.baselineSpacing = baseFlags & 2;
  req.baselineContacts = baseFlags & 4;
  const std::uint8_t ercFlags = rd.u8();
  req.erc.checkDanglingNets = ercFlags & 1;
  req.erc.checkPowerGroundShort = ercFlags & 2;
  req.erc.checkBusRules = ercFlags & 4;
  req.erc.checkDepletionToGround = ercFlags & 8;
  req.extract.mergeByLabel = rd.u8Max(1) != 0;
  const std::uint32_t nPfx = rd.u32();
  if (!rd.ok || rd.n / 4 < nPfx) return fail(err, "bad prefix count");
  req.extract.globalPrefixes.clear();
  req.extract.globalPrefixes.reserve(nPfx);
  for (std::uint32_t i = 0; i < nPfx; ++i)
    req.extract.globalPrefixes.push_back(rd.str());
  req.threads = rd.i32();
  const std::uint32_t nEdits = rd.u32();
  // An encoded EditOp is at least 9 bytes of its own fields plus the
  // element (>= 59) and instance (>= 21) payloads.
  if (!rd.ok || rd.n / 64 < nEdits) return fail(err, "bad edit count");
  req.edits.clear();
  req.edits.reserve(nEdits);
  for (std::uint32_t i = 0; i < nEdits; ++i) {
    EditOp op;
    op.kind = static_cast<EditOp::Kind>(
        rd.u8Max(static_cast<std::uint8_t>(EditOp::Kind::kRemoveInstance)));
    op.cell = static_cast<layout::CellId>(rd.i64());
    op.index = rd.u64();
    if (!getElement(rd, op.element)) return fail(err, "bad edit element");
    if (!getInstance(rd, op.instance)) return fail(err, "bad edit instance");
    req.edits.push_back(std::move(op));
  }
  req.tag = rd.str();
  if (!rd.ok) return fail(err, "truncated check payload");
  if (rd.n != 0) return fail(err, "trailing bytes in check payload");
  return true;
}

std::vector<std::uint8_t> encodeStatsRequestFrame(std::uint64_t requestId) {
  std::vector<std::uint8_t> frame;
  appendHeader(frame, FrameType::kStatsRequest, requestId, 0);
  return frame;
}

std::vector<std::uint8_t> encodeTraceRequestFrame(std::uint64_t requestId,
                                                  std::uint64_t traceId) {
  std::vector<std::uint8_t> frame;
  appendHeader(frame, FrameType::kTraceRequest, requestId, 8);
  putU64(frame, traceId);
  return frame;
}

bool decodeTraceRequestPayload(const std::uint8_t* p, std::size_t n,
                               std::uint64_t& traceId, std::string* err) {
  Reader rd{p, n};
  traceId = rd.u64();
  if (!rd.ok) return fail(err, "truncated trace request payload");
  if (rd.n != 0) return fail(err, "trailing bytes in trace request payload");
  return true;
}

std::vector<std::uint8_t> encodeMetricsRequestFrame(std::uint64_t requestId) {
  std::vector<std::uint8_t> frame;
  appendHeader(frame, FrameType::kMetricsRequest, requestId, 0);
  return frame;
}

// --- result envelope + violations ------------------------------------------

void appendResultEnvelope(std::vector<std::uint8_t>& out, const CheckResult& r,
                          std::uint64_t totalViolations) {
  putU8(out, static_cast<std::uint8_t>(r.kind));
  putI64(out, r.root);
  std::uint8_t flags = 0;
  if (r.viewCacheHit) flags |= 1;
  if (r.netlistCacheHit) flags |= 2;
  if (r.incrementalHit) flags |= 4;
  putU8(out, flags);
  putU64(out, r.revision);
  putF64(out, r.seconds);
  putStr(out, r.tag);
  putStr(out, r.error);
  putU64(out, totalViolations);
}

bool decodeResultEnvelope(const std::uint8_t** p, std::size_t* n,
                          CheckResult& out, std::uint64_t* totalViolations,
                          std::string* err) {
  Reader rd{*p, *n};
  out = CheckResult{};
  out.kind = static_cast<CheckKind>(
      rd.u8Max(static_cast<std::uint8_t>(CheckKind::kNetlistOnly)));
  out.root = static_cast<layout::CellId>(rd.i64());
  const std::uint8_t flags = rd.u8();
  out.viewCacheHit = flags & 1;
  out.netlistCacheHit = flags & 2;
  out.incrementalHit = flags & 4;
  out.revision = rd.u64();
  out.seconds = rd.f64();
  out.tag = rd.str();
  out.error = rd.str();
  const std::uint64_t total = rd.u64();
  if (!rd.ok) return fail(err, "truncated result envelope");
  if (totalViolations) *totalViolations = total;
  *p = rd.p;
  *n = rd.n;
  return true;
}

void appendViolations(std::vector<std::uint8_t>& out,
                      const std::vector<report::Violation>& vs,
                      std::size_t first, std::size_t count) {
  putU32(out, static_cast<std::uint32_t>(count));
  for (std::size_t i = first; i < first + count; ++i) {
    const report::Violation& v = vs[i];
    putU8(out, static_cast<std::uint8_t>(v.category));
    putU8(out, static_cast<std::uint8_t>(v.severity));
    putStr(out, v.rule);
    putRect(out, v.where);
    putStr(out, v.cell);
    putStr(out, v.message);
    putI32(out, v.layerA);
    putI32(out, v.layerB);
  }
}

bool decodeViolations(const std::uint8_t** p, std::size_t* n,
                      std::vector<report::Violation>& out, std::string* err) {
  Reader rd{*p, *n};
  const std::uint32_t count = rd.u32();
  if (!rd.ok || rd.n / kMinViolationBytes < count)
    return fail(err, "bad violation count");
  out.reserve(out.size() + count);
  for (std::uint32_t i = 0; i < count; ++i) {
    report::Violation v;
    v.category = static_cast<report::Category>(
        rd.u8Max(static_cast<std::uint8_t>(report::Category::kOther)));
    v.severity = static_cast<report::Severity>(
        rd.u8Max(static_cast<std::uint8_t>(report::Severity::kInfo)));
    v.rule = rd.str();
    v.where = getRect(rd);
    v.cell = rd.str();
    v.message = rd.str();
    v.layerA = rd.i32();
    v.layerB = rd.i32();
    if (!rd.ok) return fail(err, "truncated violation");
    out.push_back(std::move(v));
  }
  *p = rd.p;
  *n = rd.n;
  return true;
}

// --- ResultFrameStream ------------------------------------------------------

ResultFrameStream::ResultFrameStream(std::uint64_t requestId,
                                     const CheckResult& result,
                                     std::size_t chunkViolations)
    : id_(requestId),
      result_(result),
      chunk_(chunkViolations == 0 ? kDefaultReportChunk : chunkViolations) {
  const bool rejected = result_.error == server::kErrQueueFull;
  singleFrame_ = rejected || result_.report.count() <= chunk_;
}

bool ResultFrameStream::next(std::vector<std::uint8_t>& frame) {
  if (done_) return false;
  const std::vector<report::Violation>& vs = result_.report.violations();
  std::vector<std::uint8_t> payload;
  frame.clear();
  if (singleFrame_) {
    const bool rejected = result_.error == server::kErrQueueFull;
    appendResultEnvelope(payload, result_, rejected ? 0 : vs.size());
    if (!rejected) appendViolations(payload, vs, 0, vs.size());
    appendHeader(frame, rejected ? FrameType::kRejected : FrameType::kResult,
                 id_, static_cast<std::uint32_t>(payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    done_ = true;
    return true;
  }
  if (nextViolation_ < vs.size()) {
    const std::size_t count = std::min(chunk_, vs.size() - nextViolation_);
    appendViolations(payload, vs, nextViolation_, count);
    appendHeader(frame, FrameType::kReportPart, id_,
                 static_cast<std::uint32_t>(payload.size()));
    frame.insert(frame.end(), payload.begin(), payload.end());
    nextViolation_ += count;
    return true;
  }
  appendResultEnvelope(payload, result_, vs.size());
  appendHeader(frame, FrameType::kReportEnd, id_,
               static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  done_ = true;
  return true;
}

// --- ResultAssembler --------------------------------------------------------

ResultAssembler::Feed ResultAssembler::feed(const FrameHeader& h,
                                            const std::uint8_t* payload,
                                            std::size_t n, CheckResult& out,
                                            std::string* err) {
  const std::uint8_t* p = payload;
  switch (h.type) {
    case FrameType::kResult:
    case FrameType::kRejected: {
      if (streaming_) {
        fail(err, "result frame inside an open report stream");
        return Feed::kError;
      }
      std::uint64_t total = 0;
      if (!decodeResultEnvelope(&p, &n, out, &total, err)) return Feed::kError;
      std::vector<report::Violation> vs;
      if (h.type == FrameType::kResult &&
          !decodeViolations(&p, &n, vs, err))
        return Feed::kError;
      if (n != 0) {
        fail(err, "trailing bytes after result");
        return Feed::kError;
      }
      if (h.type == FrameType::kResult && vs.size() != total) {
        fail(err, "violation count mismatch");
        return Feed::kError;
      }
      for (report::Violation& v : vs) out.report.add(std::move(v));
      return Feed::kComplete;
    }
    case FrameType::kReportPart: {
      if (streaming_ && h.requestId != streamId_) {
        fail(err, "interleaved report streams");
        return Feed::kError;
      }
      if (!streaming_) {
        streaming_ = true;
        streamId_ = h.requestId;
        partial_.clear();
      }
      if (!decodeViolations(&p, &n, partial_, err)) return Feed::kError;
      if (n != 0) {
        fail(err, "trailing bytes after report part");
        return Feed::kError;
      }
      return Feed::kNeedMore;
    }
    case FrameType::kReportEnd: {
      if (!streaming_ || h.requestId != streamId_) {
        fail(err, "report end without open stream");
        return Feed::kError;
      }
      std::uint64_t total = 0;
      if (!decodeResultEnvelope(&p, &n, out, &total, err)) return Feed::kError;
      if (n != 0) {
        fail(err, "trailing bytes after report end");
        return Feed::kError;
      }
      if (partial_.size() != total) {
        fail(err, "streamed violation count mismatch");
        return Feed::kError;
      }
      for (report::Violation& v : partial_) out.report.add(std::move(v));
      partial_.clear();
      streaming_ = false;
      return Feed::kComplete;
    }
    default:
      fail(err, "unexpected frame type for result assembly");
      return Feed::kError;
  }
}

// --- stats -----------------------------------------------------------------

std::vector<std::uint8_t> encodeStatsFrame(std::uint64_t requestId,
                                           const server::ServerStats& stats) {
  std::vector<std::uint8_t> payload;
  putU32(payload, static_cast<std::uint32_t>(stats.shards.size()));
  for (const server::ShardStats& s : stats.shards) {
    putU64(payload, s.libraries);
    putU64(payload, s.replicas);
    putU64(payload, s.queueDepth);
    putU64(payload, s.submitted);
    putU64(payload, s.served);
    putU64(payload, s.rejected);
    putU64(payload, s.failed);
    putF64(payload, s.p50Seconds);
    putF64(payload, s.p95Seconds);
    putF64(payload, s.meanQueueWaitSeconds);
    putF64(payload, s.meanServiceSeconds);
    putU64(payload, s.cacheBytes);
    putU32(payload, static_cast<std::uint32_t>(s.heat.size()));
    for (const server::LibraryHeat& h : s.heat) {
      putStr(payload, h.id);
      putU64(payload, h.served);
      putU64(payload, h.rejected);
      putU64(payload, h.bytes);
      putF64(payload, h.p95Seconds);
      // Placement (v3): owner shard as a two's-complement u32, then the
      // fresh replica shard list.
      putU32(payload, static_cast<std::uint32_t>(h.ownerShard));
      putU32(payload, static_cast<std::uint32_t>(h.replicaShards.size()));
      for (const int r : h.replicaShards)
        putU32(payload, static_cast<std::uint32_t>(r));
    }
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderSize + payload.size());
  appendHeader(frame, FrameType::kStats, requestId,
               static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

bool decodeStatsPayload(const std::uint8_t* p, std::size_t n,
                        server::ServerStats& out, std::string* err) {
  Reader rd{p, n};
  const std::uint32_t count = rd.u32();
  constexpr std::size_t kShardBytes = 8 * 8 + 4 * 8 + 4;
  // One encoded LibraryHeat: empty-id string (4) + three u64 + one f64
  // + owner shard (4) + empty replica list (4).
  constexpr std::size_t kMinHeatBytes = 4 + 3 * 8 + 8 + 4 + 4;
  if (!rd.ok || rd.n / kShardBytes < count)
    return fail(err, "bad shard count");
  out.shards.clear();
  out.shards.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    server::ShardStats s;
    s.libraries = rd.u64();
    s.replicas = rd.u64();
    s.queueDepth = rd.u64();
    s.submitted = rd.u64();
    s.served = rd.u64();
    s.rejected = rd.u64();
    s.failed = rd.u64();
    s.p50Seconds = rd.f64();
    s.p95Seconds = rd.f64();
    s.meanQueueWaitSeconds = rd.f64();
    s.meanServiceSeconds = rd.f64();
    s.cacheBytes = rd.u64();
    const std::uint32_t nHeat = rd.u32();
    if (!rd.ok || rd.n / kMinHeatBytes < nHeat)
      return fail(err, "bad heat count");
    s.heat.reserve(nHeat);
    for (std::uint32_t j = 0; j < nHeat; ++j) {
      server::LibraryHeat h;
      h.id = rd.str();
      h.served = rd.u64();
      h.rejected = rd.u64();
      h.bytes = rd.u64();
      h.p95Seconds = rd.f64();
      h.ownerShard = static_cast<std::int32_t>(rd.u32());
      const std::uint32_t nRep = rd.u32();
      if (!rd.ok || rd.n / 4 < nRep)
        return fail(err, "bad replica count");
      h.replicaShards.reserve(nRep);
      for (std::uint32_t k = 0; k < nRep; ++k)
        h.replicaShards.push_back(static_cast<std::int32_t>(rd.u32()));
      s.heat.push_back(std::move(h));
    }
    out.shards.push_back(std::move(s));
  }
  if (!rd.ok) return fail(err, "truncated stats payload");
  if (rd.n != 0) return fail(err, "trailing bytes in stats payload");
  return true;
}

// --- trace -----------------------------------------------------------------

std::vector<std::uint8_t> encodeTraceFrame(
    std::uint64_t requestId, std::uint64_t traceId,
    const std::vector<obs::SpanRecord>& spans) {
  std::vector<std::uint8_t> payload;
  putU64(payload, traceId);
  putU32(payload, static_cast<std::uint32_t>(spans.size()));
  for (const obs::SpanRecord& s : spans) {
    putU64(payload, s.spanId);
    putU64(payload, s.parentId);
    putU64(payload, s.startNs);
    putU64(payload, s.durNs);
    putU32(payload, s.tid);
    putStr(payload, s.label());
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderSize + payload.size());
  appendHeader(frame, FrameType::kTrace, requestId,
               static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

bool decodeTracePayload(const std::uint8_t* p, std::size_t n,
                        std::uint64_t& traceId,
                        std::vector<obs::SpanRecord>& spans,
                        std::string* err) {
  Reader rd{p, n};
  traceId = rd.u64();
  const std::uint32_t count = rd.u32();
  // One encoded span: four u64, one u32, one empty-name string.
  constexpr std::size_t kMinSpanBytes = 4 * 8 + 4 + 4;
  if (!rd.ok || rd.n / kMinSpanBytes < count)
    return fail(err, "bad span count");
  spans.clear();
  spans.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    obs::SpanRecord s;
    s.traceId = traceId;
    s.spanId = rd.u64();
    s.parentId = rd.u64();
    s.startNs = rd.u64();
    s.durNs = rd.u64();
    s.tid = rd.u32();
    const std::string name = rd.str();
    if (!rd.ok) return fail(err, "truncated span");
    // Truncate into the fixed in-memory buffer exactly like emission does.
    std::strncpy(s.name, name.c_str(), sizeof(s.name) - 1);
    spans.push_back(s);
  }
  if (rd.n != 0) return fail(err, "trailing bytes in trace payload");
  return true;
}

// --- metrics ---------------------------------------------------------------

std::vector<std::uint8_t> encodeMetricsFrame(std::uint64_t requestId,
                                             const obs::MetricsSnapshot& snap) {
  std::vector<std::uint8_t> payload;
  putU32(payload, static_cast<std::uint32_t>(snap.metrics.size()));
  for (const obs::MetricValue& m : snap.metrics) {
    putStr(payload, m.name);
    putU8(payload, static_cast<std::uint8_t>(m.kind));
    switch (m.kind) {
      case obs::MetricValue::Kind::kCounter:
        putU64(payload, m.counter);
        break;
      case obs::MetricValue::Kind::kGauge:
        putI64(payload, m.gauge);
        break;
      case obs::MetricValue::Kind::kHistogram:
        putU32(payload, static_cast<std::uint32_t>(m.bounds.size()));
        for (double b : m.bounds) putF64(payload, b);
        // buckets has bounds.size() + 1 entries (overflow last); the
        // count is implied by the bounds count.
        for (std::uint64_t c : m.buckets) putU64(payload, c);
        break;
    }
  }
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderSize + payload.size());
  appendHeader(frame, FrameType::kMetrics, requestId,
               static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

bool decodeMetricsPayload(const std::uint8_t* p, std::size_t n,
                          obs::MetricsSnapshot& out, std::string* err) {
  Reader rd{p, n};
  const std::uint32_t count = rd.u32();
  // Smallest metric: empty name (4) + kind tag (1) + one u32 (a
  // zero-bound histogram's bounds count) — counters/gauges are larger.
  constexpr std::size_t kMinMetricBytes = 4 + 1 + 4;
  if (!rd.ok || rd.n / kMinMetricBytes < count)
    return fail(err, "bad metric count");
  out.metrics.clear();
  out.metrics.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    obs::MetricValue m;
    m.name = rd.str();
    m.kind = static_cast<obs::MetricValue::Kind>(rd.u8Max(
        static_cast<std::uint8_t>(obs::MetricValue::Kind::kHistogram)));
    if (!rd.ok) return fail(err, "truncated metric");
    switch (m.kind) {
      case obs::MetricValue::Kind::kCounter:
        m.counter = rd.u64();
        break;
      case obs::MetricValue::Kind::kGauge:
        m.gauge = rd.i64();
        break;
      case obs::MetricValue::Kind::kHistogram: {
        const std::uint32_t nBounds = rd.u32();
        // Each bound costs 8 bytes and implies an 8-byte bucket, plus
        // the 8-byte overflow bucket.
        if (!rd.ok || rd.n / 16 < nBounds)
          return fail(err, "bad histogram bound count");
        m.bounds.reserve(nBounds);
        for (std::uint32_t j = 0; j < nBounds; ++j)
          m.bounds.push_back(rd.f64());
        m.buckets.reserve(nBounds + 1);
        for (std::uint32_t j = 0; j < nBounds + 1; ++j)
          m.buckets.push_back(rd.u64());
        break;
      }
    }
    if (!rd.ok) return fail(err, "truncated metric value");
    out.metrics.push_back(std::move(m));
  }
  if (rd.n != 0) return fail(err, "trailing bytes in metrics payload");
  return true;
}

// --- error -----------------------------------------------------------------

std::vector<std::uint8_t> encodeErrorFrame(std::uint64_t requestId,
                                           std::string_view message) {
  std::vector<std::uint8_t> payload;
  putStr(payload, message);
  std::vector<std::uint8_t> frame;
  appendHeader(frame, FrameType::kError, requestId,
               static_cast<std::uint32_t>(payload.size()));
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::string decodeErrorPayload(const std::uint8_t* p, std::size_t n) {
  Reader rd{p, n};
  std::string s = rd.str();
  return rd.ok ? s : std::string("(malformed error payload)");
}

}  // namespace dic::net
