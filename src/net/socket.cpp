#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace dic::net {

namespace {

bool fail(std::string* err, const std::string& what) {
  if (err) *err = what + ": " + std::strerror(errno);
  return false;
}

bool makeAddr(const std::string& host, std::uint16_t port, sockaddr_in& addr,
              std::string* err) {
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err) *err = "bad IPv4 address '" + host + "'";
    return false;
  }
  return true;
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

bool Socket::sendAll(const void* p, std::size_t n) {
  const char* c = static_cast<const char*>(p);
  while (n > 0) {
    const ssize_t k = ::send(fd_, c, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (k == 0) return false;
    c += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

Socket::Io Socket::recvSome(void* p, std::size_t n, std::size_t& got) {
  got = 0;
  for (;;) {
    const ssize_t k = ::recv(fd_, p, n, 0);
    if (k > 0) {
      got = static_cast<std::size_t>(k);
      return Io::kOk;
    }
    if (k == 0) return Io::kEof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Io::kTimeout;
    return Io::kError;
  }
}

bool Socket::recvAll(void* p, std::size_t n) {
  char* c = static_cast<char*>(p);
  while (n > 0) {
    std::size_t got = 0;
    const Io io = recvSome(c, n, got);
    if (io != Io::kOk) return false;
    c += got;
    n -= got;
  }
  return true;
}

bool Socket::setRecvTimeout(double seconds) {
  timeval tv{};
  if (seconds > 0) {
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    // A zero timeval means "no timeout" to the kernel; a sub-micro
    // request still needs to time out, so round up.
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  }
  return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
}

void Socket::shutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdownWrite() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connectTo(const std::string& host, std::uint16_t port,
                 double timeoutSeconds, std::string* err) {
  sockaddr_in addr{};
  if (!makeAddr(host, port, addr, err)) return Socket{};
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    fail(err, "socket");
    return Socket{};
  }
  Socket s(fd);

  // Nonblocking connect + poll gives the bounded timeout; the socket is
  // switched back to blocking before it is handed out.
  const int fl = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{fd, POLLOUT, 0};
    const int timeoutMs =
        timeoutSeconds > 0 ? static_cast<int>(timeoutSeconds * 1e3) : -1;
    rc = ::poll(&pfd, 1, timeoutMs);
    if (rc == 0) {
      if (err) *err = "connect timed out";
      return Socket{};
    }
    if (rc < 0) {
      fail(err, "poll");
      return Socket{};
    }
    int soerr = 0;
    socklen_t len = sizeof soerr;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) {
      errno = soerr;
      fail(err, "connect");
      return Socket{};
    }
  } else if (rc != 0) {
    fail(err, "connect");
    return Socket{};
  }
  ::fcntl(fd, F_SETFL, fl);
  // Check frames are small and latency-sensitive; Nagle buys nothing.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return s;
}

bool Acceptor::listenOn(const std::string& host, std::uint16_t port,
                        std::string* err) {
  sockaddr_in addr{};
  if (!makeAddr(host, port, addr, err)) return false;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail(err, "socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    fail(err, "bind");
    ::close(fd);
    return false;
  }
  if (::listen(fd, 64) != 0) {
    fail(err, "listen");
    ::close(fd);
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    fail(err, "getsockname");
    ::close(fd);
    return false;
  }
  close();
  fd_ = fd;
  port_ = ntohs(bound.sin_port);
  return true;
}

Socket Acceptor::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      return Socket(fd);
    }
    if (errno == EINTR) continue;
    return Socket{};  // shutdownListen, close, or a fatal error
  }
}

void Acceptor::shutdownListen() {
  // shutdown() on a listening socket wakes a blocked accept() (it
  // returns EINVAL) and stops the kernel from completing new
  // handshakes, while keeping fd_ valid until close() — so the accept
  // thread can be woken and joined without racing descriptor reuse.
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Acceptor::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace dic::net
