#pragma once
/// \file client.hpp
/// The dic::net client library: one TCP connection to a net::Listener,
/// multiplexing any number of in-flight requests over it. `submit`
/// returns a std::future<CheckResult> keyed by a client-chosen request
/// id; a background reader thread matches response frames back to their
/// futures (streamed kReportPart sequences are reassembled through
/// ResultAssembler), so completions arrive in the server's completion
/// order while callers keep the familiar future shape of
/// server::Server::submit.
///
/// Failures come back through the same per-request error channel the
/// server uses — a CheckResult whose `error` names the failure — so a
/// caller handles one shape whether the check failed, the queue was
/// full (server::kErrQueueFull via a kRejected frame), the request
/// timed out client-side (kErrNetTimeout), or the connection dropped
/// mid-flight (kErrConnectionLost). A lost connection fails every
/// pending future; the next submit reconnects when
/// ClientOptions::reconnect is set.

#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>

#include "net/socket.hpp"
#include "net/wire.hpp"

namespace dic::net {

/// CheckResult::error for a request that outlived
/// ClientOptions::requestTimeoutSeconds (the server may still complete
/// it; the late response frame is discarded).
inline constexpr const char* kErrNetTimeout = "NetTimeout";
/// CheckResult::error for a request whose connection died first.
inline constexpr const char* kErrConnectionLost = "ConnectionLost";
/// CheckResult::error prefix for a protocol-level failure (a kError
/// frame from the server, or an undecodable response).
inline constexpr const char* kErrNetProtocol = "NetProtocol";

/// Client construction knobs.
struct ClientOptions {
  std::string host{"127.0.0.1"};  ///< numeric IPv4 of the listener
  std::uint16_t port{0};
  double connectTimeoutSeconds{5.0};
  /// Per-request deadline, measured from submit() to the response frame
  /// completing. 0 waits forever (the in-process semantics).
  double requestTimeoutSeconds{0};
  /// Reconnect lazily on the next submit after a lost connection.
  bool reconnect{true};
};

/// Client-side observability counters (cumulative).
struct ClientTelemetry {
  std::size_t framesOut{0};        ///< request frames fully sent
  std::size_t framesIn{0};         ///< response frames fully received
  std::size_t reportPartFrames{0}; ///< streamed report slices received
  std::size_t rejectedFrames{0};   ///< backpressure turndowns received
  std::size_t reconnects{0};       ///< successful re-connects
  std::size_t timeouts{0};         ///< requests expired client-side
};

/// One connection to a net::Listener. Thread-safe: any number of
/// threads may submit concurrently over the one socket; request ids are
/// assigned internally and responses are matched back by id.
class Client {
 public:
  explicit Client(ClientOptions opts);
  /// close() — pending futures fail with kErrConnectionLost.
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect now (submit/stats otherwise connect lazily). False with a
  /// reason in *err; true if already connected.
  bool connect(std::string* err = nullptr);
  bool connected() const;

  /// Drop the connection and fail every pending future with
  /// kErrConnectionLost. Idempotent; submit() after close() fails
  /// without reconnecting.
  void close();

  /// Send one check; the future completes when the response (or a
  /// failure) arrives. Never throws — connection failures surface as
  /// error-carrying CheckResults, exactly like server-level failures do
  /// through server::Server::submit. When `idOut` is non-null it
  /// receives the request id this submission went out under (0 on an
  /// immediate connection failure) — the handle a later trace() call
  /// uses to fetch the request's span tree.
  std::future<CheckResult> submit(std::string_view library, CheckRequest req,
                                  std::uint64_t* idOut = nullptr);

  /// Synchronous convenience: submit(...).get().
  CheckResult check(std::string_view library, CheckRequest req);

  /// Fetch a ServerStats snapshot over the wire (kStatsRequest /
  /// kStats). Blocks up to requestTimeoutSeconds (forever when 0).
  bool stats(server::ServerStats& out, std::string* err = nullptr);

  /// Fetch a MetricsSnapshot over the wire (kMetricsRequest / kMetrics).
  /// Same blocking contract as stats().
  bool metrics(obs::MetricsSnapshot& out, std::string* err = nullptr);

  /// Fetch one trace's spans over the wire (kTraceRequest / kTrace).
  /// `traceId` is the request id a prior submit() reported through
  /// `idOut` (the session roots the trace with it). An unknown or
  /// already-evicted trace succeeds with an empty span list. Same
  /// blocking contract as stats().
  bool trace(std::uint64_t traceId, std::vector<obs::SpanRecord>& out,
             std::string* err = nullptr);

  /// Counter snapshot.
  ClientTelemetry telemetry() const;

 private:
  struct PendingCheck;
  struct StatsReply;
  struct RawReply;

  /// Lazily (re)connect; joins a dead reader thread first. False when
  /// closed, connection fails, or reconnect is disabled after a drop.
  bool ensureConnected(std::string* err);
  /// Send one frame, failing over to disconnect handling on error.
  bool sendFrame(const std::vector<std::uint8_t>& frame);
  void readerLoop();
  /// Fail every pending request/stats wait with kErrConnectionLost and
  /// drop the socket.
  void failAllPending();
  /// Complete pending checks whose deadline has passed (reader thread,
  /// on receive-timeout ticks).
  void expireDeadlines();
  /// Send `frame` and block for the matching `expect`-typed response
  /// payload (the shared machinery behind metrics() and trace()).
  bool rawRoundTrip(FrameType expect, std::vector<std::uint8_t> frame,
                    std::uint64_t id, std::vector<std::uint8_t>& payloadOut,
                    std::string* err);

  ClientOptions opts_;

  /// Serializes frame writes (submitters race). Held only across
  /// sendAll — never while waiting for mu_ — so a submitter blocked by
  /// server-side kBlock backpressure cannot stall the reader's
  /// dispatching. sock_ replacement holds both mutexes.
  std::mutex sendMu_;

  mutable std::mutex mu_;  ///< guards everything below
  Socket sock_;
  /// Socket has been shut down but not closed: close() is deferred to
  /// the next reconnect (under both mutexes) so a concurrent sendAll
  /// never races descriptor reuse.
  bool sockDead_{false};
  std::thread readerThread_;
  bool closed_{false};
  bool everConnected_{false};
  std::uint64_t nextId_{1};
  std::unordered_map<std::uint64_t, std::unique_ptr<PendingCheck>> pending_;
  std::unordered_map<std::uint64_t, std::unique_ptr<StatsReply>>
      pendingStats_;
  std::unordered_map<std::uint64_t, std::unique_ptr<RawReply>> pendingRaw_;
  ClientTelemetry telemetry_;
};

}  // namespace dic::net
