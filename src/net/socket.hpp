#pragma once
/// \file socket.hpp
/// Thin RAII wrappers over POSIX TCP sockets for the dic::net tier:
/// a movable connected-socket handle with whole-buffer send/recv
/// helpers, a listening acceptor with an unblockable accept loop, and a
/// timeout-bounded connect. Nothing here knows about frames — the wire
/// format lives in net/wire.hpp and the session logic in
/// net/listener.hpp / net/client.hpp, so this file is the only one that
/// touches file descriptors.

#include <cstddef>
#include <cstdint>
#include <string>

namespace dic::net {

/// A connected TCP socket (movable, closes on destruction). All I/O is
/// blocking unless a receive timeout is set; sends never raise SIGPIPE
/// (a closed peer surfaces as a send error instead).
class Socket {
 public:
  Socket() = default;
  /// Adopt an already-open descriptor (from accept/connect).
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Outcome of a single receive attempt.
  enum class Io : std::uint8_t {
    kOk,       ///< some bytes arrived
    kEof,      ///< orderly peer shutdown
    kError,    ///< socket error (connection reset, bad fd, ...)
    kTimeout,  ///< the configured receive timeout elapsed
  };

  /// Send all `n` bytes (handles partial writes and EINTR). False on
  /// any error; the socket should then be treated as dead.
  bool sendAll(const void* p, std::size_t n);

  /// Receive up to `n` bytes into `p`; `got` is the count on kOk.
  Io recvSome(void* p, std::size_t n, std::size_t& got);

  /// Receive exactly `n` bytes (blocking; no receive timeout may be
  /// set). False on EOF or error.
  bool recvAll(void* p, std::size_t n);

  /// Bound every subsequent recv by `seconds` (0 clears the bound).
  bool setRecvTimeout(double seconds);

  /// Half-close: no more reads will be delivered (a blocked recv on
  /// another thread wakes with EOF). Buffered unread data is dropped.
  void shutdownRead();
  /// Half-close the send side (peer sees EOF).
  void shutdownWrite();

  void close();

 private:
  int fd_{-1};
};

/// Connect to host:port with a bounded connect timeout. Returns an
/// invalid Socket with a reason in *err on failure. Only numeric IPv4
/// host strings are resolved ("127.0.0.1") — the serving tier fronts
/// loopback and LAN addresses, not DNS.
Socket connectTo(const std::string& host, std::uint16_t port,
                 double timeoutSeconds, std::string* err = nullptr);

/// A listening TCP socket. The shutdown protocol is two-step so an
/// accept loop on another thread can be woken safely: `shutdownListen`
/// wakes the blocked accept (which then returns an invalid Socket) and
/// refuses new connections while keeping the descriptor valid; `close`
/// releases it after the accept thread has joined.
class Acceptor {
 public:
  Acceptor() = default;
  ~Acceptor() { close(); }
  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;

  /// Bind and listen on host:port (port 0 picks an ephemeral port,
  /// readable via port() afterwards). False with a reason in *err.
  bool listenOn(const std::string& host, std::uint16_t port,
                std::string* err = nullptr);

  bool valid() const { return fd_ >= 0; }
  /// The bound port (after listenOn).
  std::uint16_t port() const { return port_; }

  /// Block until a connection arrives; invalid Socket after
  /// shutdownListen or on error.
  Socket accept();

  /// Wake the accept loop and refuse new connections (idempotent).
  void shutdownListen();
  void close();

 private:
  int fd_{-1};
  std::uint16_t port_{0};
};

}  // namespace dic::net
