#include "net/listener.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <stdexcept>
#include <utility>

#include "obs/trace.hpp"

namespace dic::net {

/// One TCP connection: a reader thread feeding the server, a writer
/// thread streaming results back, and a small cv-protected outbox
/// between them. The session is kept alive by shared_ptrs — the
/// Listener's registry plus every in-flight completion callback — so a
/// late-completing request can never dangle it.
struct Listener::Session : std::enable_shared_from_this<Listener::Session> {
  Session(Listener& l, server::Server& s, Socket so,
          std::size_t chunkViolations)
      : owner(l), srv(s), sock(std::move(so)), chunk(chunkViolations) {}

  Listener& owner;  ///< outlives every session (shutdown joins them)
  server::Server& srv;
  Socket sock;
  std::size_t chunk;
  std::thread readerThread;
  std::thread writerThread;

  /// One unit of writer work: either a pre-framed buffer (stats,
  /// protocol error) or a result the writer serializes chunk by chunk,
  /// so a huge report is never materialized as one frame buffer.
  struct Outgoing {
    bool isResult{false};
    std::uint64_t id{0};
    CheckResult result;
    std::vector<std::uint8_t> raw;
  };

  std::mutex mu;  ///< guards outbox, inflight, readerDone
  std::condition_variable cv;
  std::deque<Outgoing> outbox;
  std::size_t inflight{0};  ///< requests handed to the server, result pending
  bool readerDone{false};

  std::atomic<bool> dead{false};       ///< a send failed; discard output
  std::atomic<bool> malformed{false};  ///< closed on a protocol error
  std::atomic<std::size_t> framesIn{0};
  std::atomic<std::size_t> framesOut{0};
  std::atomic<int> liveLoops{2};  ///< reader+writer still running

  void start() {
    auto self = shared_from_this();
    readerThread = std::thread([self] { self->readerLoop(); });
    writerThread = std::thread([self] { self->writerLoop(); });
  }

  void enqueueResult(std::uint64_t id, CheckResult&& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      Outgoing o;
      o.isResult = true;
      o.id = id;
      o.result = std::move(r);
      outbox.push_back(std::move(o));
      --inflight;
    }
    cv.notify_all();
  }

  void enqueueRaw(std::vector<std::uint8_t>&& frame) {
    {
      std::lock_guard<std::mutex> lock(mu);
      Outgoing o;
      o.raw = std::move(frame);
      outbox.push_back(std::move(o));
    }
    cv.notify_all();
  }

  /// Best-effort kError to the peer, then let the reader exit: the
  /// session closes, the process does not.
  void protocolError(std::uint64_t id, const std::string& what) {
    malformed.store(true, std::memory_order_relaxed);
    enqueueRaw(encodeErrorFrame(id, what));
  }

  void readerLoop() {
    std::vector<std::uint8_t> payload;
    for (;;) {
      std::uint8_t hdr[kHeaderSize];
      // EOF here is the clean end of the session; EOF or an error
      // mid-header/mid-payload is a mid-frame disconnect — both just
      // end this session's intake.
      if (!sock.recvAll(hdr, kHeaderSize)) break;
      FrameHeader h;
      std::string err;
      if (!parseHeader(hdr, h, &err)) {
        protocolError(0, err);
        break;
      }
      payload.resize(h.payloadLen);
      if (h.payloadLen > 0 && !sock.recvAll(payload.data(), payload.size()))
        break;
      framesIn.fetch_add(1, std::memory_order_relaxed);
      if (h.type == FrameType::kCheck) {
        std::string lib;
        CheckRequest req;
        bool decoded;
        {
          // The trace's first span: decode cost, rooted directly in the
          // request's trace (the wire request id IS the trace id).
          obs::ScopedSpan decodeSpan("session.decode", h.requestId);
          decoded =
              decodeCheckPayload(payload.data(), payload.size(), lib, req,
                                 &err);
        }
        if (!decoded) {
          protocolError(h.requestId, err);
          break;
        }
        req.traceId = h.requestId;
        {
          std::lock_guard<std::mutex> lock(mu);
          ++inflight;
        }
        // Under OverflowPolicy::kBlock a full shard queue blocks right
        // here — the reader stops draining the socket and the client
        // feels TCP backpressure. Under kReject the callback fires
        // inline with a kErrQueueFull result, which the writer turns
        // into a kRejected frame.
        auto self = shared_from_this();
        srv.submitAsync(lib, std::move(req),
                        [self, id = h.requestId](CheckResult r) {
                          self->enqueueResult(id, std::move(r));
                        });
      } else if (h.type == FrameType::kStatsRequest) {
        enqueueRaw(encodeStatsFrame(h.requestId, srv.stats()));
      } else if (h.type == FrameType::kTraceRequest) {
        std::uint64_t traceId = 0;
        if (!decodeTraceRequestPayload(payload.data(), payload.size(),
                                       traceId, &err)) {
          protocolError(h.requestId, err);
          break;
        }
        enqueueRaw(encodeTraceFrame(h.requestId, traceId,
                                    obs::Tracer::instance().collect(traceId)));
      } else if (h.type == FrameType::kMetricsRequest) {
        // Publish the network tier's own counters into the server's
        // registry so one kMetrics frame carries the whole picture.
        const ListenerStats ls = owner.stats();
        obs::Registry& reg = srv.metrics();
        reg.gauge("net.sessions_accepted")
            .set(static_cast<std::int64_t>(ls.sessionsAccepted));
        reg.gauge("net.sessions_open")
            .set(static_cast<std::int64_t>(ls.sessionsOpen));
        reg.gauge("net.frames_in")
            .set(static_cast<std::int64_t>(ls.framesIn));
        reg.gauge("net.frames_out")
            .set(static_cast<std::int64_t>(ls.framesOut));
        reg.gauge("net.malformed_sessions")
            .set(static_cast<std::int64_t>(ls.malformedSessions));
        enqueueRaw(encodeMetricsFrame(h.requestId, srv.metricsSnapshot()));
      } else {
        protocolError(h.requestId, "request frame type expected");
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      readerDone = true;
    }
    cv.notify_all();
    liveLoops.fetch_sub(1, std::memory_order_acq_rel);
  }

  void writerLoop() {
    for (;;) {
      Outgoing o;
      {
        std::unique_lock<std::mutex> lock(mu);
        // Drain contract: the writer exits only after the reader is
        // done AND every accepted request has delivered its result AND
        // the outbox is flushed — so a graceful shutdown answers
        // everything the server accepted.
        cv.wait(lock, [&] {
          return !outbox.empty() || (readerDone && inflight == 0);
        });
        if (outbox.empty()) break;
        o = std::move(outbox.front());
        outbox.pop_front();
      }
      if (dead.load(std::memory_order_relaxed)) continue;  // peer gone
      bool ok = true;
      if (o.isResult) {
        // Close the request's trace with its write-back cost (the id of
        // a TCP-served result doubles as its trace id).
        obs::ScopedSpan writeSpan("reply.write", o.id);
        ResultFrameStream stream(o.id, o.result, chunk);
        std::vector<std::uint8_t> frame;
        while (ok && stream.next(frame)) {
          ok = sock.sendAll(frame.data(), frame.size());
          if (ok) framesOut.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        ok = sock.sendAll(o.raw.data(), o.raw.size());
        if (ok) framesOut.fetch_add(1, std::memory_order_relaxed);
      }
      if (!ok) dead.store(true, std::memory_order_relaxed);
    }
    sock.shutdownWrite();  // orderly EOF after the last response
    liveLoops.fetch_sub(1, std::memory_order_acq_rel);
  }

  bool finished() const {
    return liveLoops.load(std::memory_order_acquire) == 0;
  }

  void join() {
    if (readerThread.joinable()) readerThread.join();
    if (writerThread.joinable()) writerThread.join();
  }

  ~Session() { join(); }
};

Listener::Listener(server::Server& srv, ListenerOptions opts)
    : srv_(srv), opts_(std::move(opts)) {
  std::string err;
  if (!acceptor_.listenOn(opts_.host, opts_.port, &err))
    throw std::runtime_error("net::Listener: " + err);
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

Listener::~Listener() { shutdown(); }

void Listener::acceptLoop() {
  for (;;) {
    Socket s = acceptor_.accept();
    if (!s.valid()) break;  // shutdownListen or fatal error
    auto session = std::make_shared<Session>(
        *this, srv_, std::move(s), opts_.reportChunkViolations);
    {
      std::lock_guard<std::mutex> lock(mu_);
      sessions_.push_back(session);
      ++sessionsAccepted_;
    }
    session->start();
    reapFinished();
  }
}

void Listener::reapFinished() {
  std::vector<std::shared_ptr<Session>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < sessions_.size();) {
      if (sessions_[i]->finished()) {
        finished.push_back(std::move(sessions_[i]));
        sessions_.erase(sessions_.begin() +
                        static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (const auto& s : finished) s->join();  // outside mu_: joins block
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& s : finished) {
    reapedFramesIn_ += s->framesIn.load(std::memory_order_relaxed);
    reapedFramesOut_ += s->framesOut.load(std::memory_order_relaxed);
    if (s->malformed.load(std::memory_order_relaxed)) ++malformedSessions_;
  }
}

void Listener::shutdown() {
  std::call_once(shutdownOnce_, [this] {
    // New connects are refused from here on.
    acceptor_.shutdownListen();
    if (acceptThread_.joinable()) acceptThread_.join();
    acceptor_.close();
    // Stop each session's intake; requests already handed to the
    // server keep their in-flight status and the writers drain them.
    std::vector<std::shared_ptr<Session>> live;
    {
      std::lock_guard<std::mutex> lock(mu_);
      live = sessions_;
    }
    for (const auto& s : live) s->sock.shutdownRead();
    for (const auto& s : live) s->join();
    reapFinished();
  });
}

ListenerStats Listener::stats() const {
  ListenerStats out;
  std::lock_guard<std::mutex> lock(mu_);
  out.sessionsAccepted = sessionsAccepted_;
  out.malformedSessions = malformedSessions_;
  out.framesIn = reapedFramesIn_;
  out.framesOut = reapedFramesOut_;
  for (const auto& s : sessions_) {
    if (!s->finished()) ++out.sessionsOpen;
    out.framesIn += s->framesIn.load(std::memory_order_relaxed);
    out.framesOut += s->framesOut.load(std::memory_order_relaxed);
    if (s->malformed.load(std::memory_order_relaxed)) ++out.malformedSessions;
  }
  return out;
}

}  // namespace dic::net
