#pragma once
/// \file wire.hpp
/// The dic::net wire format: a length-prefixed binary framing for check
/// traffic over TCP, with zero socket dependency — every encoder and
/// decoder here works on byte buffers, so the whole protocol is unit-
/// testable (and fuzzable) without opening a connection. The full frame
/// table, versioning rule, backpressure mapping, and streaming contract
/// live in docs/net.md.
///
/// Every frame is a fixed 20-byte little-endian header followed by
/// `payloadLen` payload bytes:
///
///     u32 magic      kMagic ("DICN" on the wire)
///     u8  version    kVersion; a mismatch closes the session
///     u8  type       FrameType
///     u16 flags      reserved, must be zero
///     u64 requestId  client-chosen correlation id, echoed in responses
///     u32 payloadLen payload bytes following the header (<= kMaxPayload)
///
/// Large reports stream: a response whose report exceeds the sender's
/// chunk size is delivered as kReportPart frames (each a slice of the
/// violation list) closed by one kReportEnd carrying the result
/// envelope, so a million-violation report never materializes as one
/// giant buffer on either side. Frames of one streamed response are
/// contiguous on the connection — the server's session writer never
/// interleaves two responses' parts.
///
/// Decoders are defensive by contract: any malformed input (bad magic,
/// unknown version or type, nonzero reserved flags, oversized declared
/// length, truncated payload, out-of-range enum) is reported as a
/// decode failure — never an exception, a crash, or an over-read. The
/// session layer maps a decode failure to closing that one session.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "server/server.hpp"
#include "service/workspace.hpp"

namespace dic::net {

/// Frame magic: the bytes 'D' 'I' 'C' 'N' in wire order.
inline constexpr std::uint32_t kMagic = 0x4E434944u;
/// Protocol version. The rule is strict equality: a session speaking a
/// different version is closed at the first frame (no negotiation —
/// clients and servers deploy together in this tier). Version 2 added
/// the kTraceRequest/kTrace and kMetricsRequest/kMetrics frame pairs and
/// per-library heat in the kStats payload. Version 3 added placement to
/// the heat table (per-shard replica Workspace count, and each heat
/// entry's owner shard + fresh replica shards) when the server grew
/// hot-library replication.
inline constexpr std::uint8_t kVersion = 3;
/// Bytes in the fixed frame header.
inline constexpr std::size_t kHeaderSize = 20;
/// Hard cap on a frame's declared payload length. A header declaring
/// more is malformed (protects the reader from attacker-sized
/// allocations); the streaming path keeps honest frames far below it.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;
/// Default violations per kReportPart frame. At ~100 bytes a violation
/// this keeps streamed frames around 100 KiB.
inline constexpr std::size_t kDefaultReportChunk = 1024;

/// Frame types. Requests (client to server) are low values, responses
/// (server to client) start at 16.
enum class FrameType : std::uint8_t {
  kCheck = 1,           ///< payload: library id + CheckRequest
  kStatsRequest = 2,    ///< payload: empty; asks for a ServerStats snapshot
  kTraceRequest = 3,    ///< payload: u64 trace id; asks for that trace's spans
  kMetricsRequest = 4,  ///< payload: empty; asks for a MetricsSnapshot
  kResult = 16,         ///< payload: result envelope + full violation list
  kReportPart = 17,     ///< payload: a slice of a streamed violation list
  kReportEnd = 18,      ///< payload: result envelope closing a stream
  kRejected = 19,       ///< payload: result envelope; backpressure turndown
  kStats = 20,          ///< payload: ServerStats snapshot
  kError = 21,          ///< payload: message; protocol-level failure
  kTrace = 22,          ///< payload: one trace's SpanRecord list
  kMetrics = 23,        ///< payload: MetricsSnapshot
};

/// A parsed frame header.
struct FrameHeader {
  std::uint32_t magic{0};
  std::uint8_t version{0};
  FrameType type{FrameType::kError};
  std::uint16_t flags{0};
  std::uint64_t requestId{0};
  std::uint32_t payloadLen{0};
};

/// Parse and validate `buf` (which must hold kHeaderSize bytes). False
/// with a reason in *err on bad magic, unknown version, unknown frame
/// type, nonzero reserved flags, or a payload length above kMaxPayload.
bool parseHeader(const std::uint8_t* buf, FrameHeader& out,
                 std::string* err = nullptr);

/// Serialize a header into `out` (appended; kHeaderSize bytes).
void appendHeader(std::vector<std::uint8_t>& out, FrameType type,
                  std::uint64_t requestId, std::uint32_t payloadLen);

// --- request side ----------------------------------------------------------

/// One complete kCheck frame: header + (library id, CheckRequest).
/// Everything result-affecting in the request is carried — kind, root,
/// metric, the per-kind knobs, extraction options, edits with their
/// element/instance payloads, and the tag — so a server-side run of the
/// decoded request is byte-identical to an in-process run of `req`.
std::vector<std::uint8_t> encodeCheckFrame(std::uint64_t requestId,
                                           std::string_view library,
                                           const CheckRequest& req);

/// Decode a kCheck payload. False on any malformed byte; `library` and
/// `req` are unspecified on failure.
bool decodeCheckPayload(const std::uint8_t* p, std::size_t n,
                        std::string& library, CheckRequest& req,
                        std::string* err = nullptr);

/// One complete kStatsRequest frame (empty payload).
std::vector<std::uint8_t> encodeStatsRequestFrame(std::uint64_t requestId);

/// One complete kTraceRequest frame. `traceId` names the trace to fetch —
/// for TCP-served checks that is the request id the client chose for the
/// kCheck frame (the session roots the request's trace with it).
std::vector<std::uint8_t> encodeTraceRequestFrame(std::uint64_t requestId,
                                                  std::uint64_t traceId);

/// Decode a kTraceRequest payload (one u64 trace id).
bool decodeTraceRequestPayload(const std::uint8_t* p, std::size_t n,
                               std::uint64_t& traceId,
                               std::string* err = nullptr);

/// One complete kMetricsRequest frame (empty payload).
std::vector<std::uint8_t> encodeMetricsRequestFrame(std::uint64_t requestId);

// --- response side ---------------------------------------------------------

/// One complete kStats frame.
std::vector<std::uint8_t> encodeStatsFrame(std::uint64_t requestId,
                                           const server::ServerStats& stats);

/// Decode a kStats payload.
bool decodeStatsPayload(const std::uint8_t* p, std::size_t n,
                        server::ServerStats& out, std::string* err = nullptr);

/// One complete kTrace frame: the trace id followed by its spans (the
/// server's Tracer::collect output, arrival order preserved). Span names
/// cross the wire as length-prefixed strings, not the fixed in-memory
/// buffer, so the payload carries no padding bytes.
std::vector<std::uint8_t> encodeTraceFrame(std::uint64_t requestId,
                                           std::uint64_t traceId,
                                           const std::vector<obs::SpanRecord>& spans);

/// Decode a kTrace payload. False on any malformed byte.
bool decodeTracePayload(const std::uint8_t* p, std::size_t n,
                        std::uint64_t& traceId,
                        std::vector<obs::SpanRecord>& spans,
                        std::string* err = nullptr);

/// One complete kMetrics frame: every metric of the snapshot in its
/// (name-sorted) order, each as name + kind tag + kind-specific value.
/// Encoding a snapshot twice after identical deterministic work yields
/// byte-identical frames for the counter/gauge subset.
std::vector<std::uint8_t> encodeMetricsFrame(std::uint64_t requestId,
                                             const obs::MetricsSnapshot& snap);

/// Decode a kMetrics payload. False on any malformed byte (unknown kind
/// tag, count bomb, truncation, trailing bytes).
bool decodeMetricsPayload(const std::uint8_t* p, std::size_t n,
                          obs::MetricsSnapshot& out,
                          std::string* err = nullptr);

/// One complete kError frame (protocol-level failure description).
std::vector<std::uint8_t> encodeErrorFrame(std::uint64_t requestId,
                                           std::string_view message);

/// Decode a kError payload into its message (always succeeds; a
/// truncated message decodes to what is there).
std::string decodeErrorPayload(const std::uint8_t* p, std::size_t n);

/// Serializes one CheckResult as its wire frame sequence, chunk by
/// chunk, so the caller can write each frame to the socket before the
/// next is materialized: peak memory is one chunk, not the report.
///
///  * error == server::kErrQueueFull  -> one kRejected frame
///  * violations <= chunk             -> one kResult frame
///  * otherwise                       -> kReportPart... then kReportEnd
///
/// The envelope (kind, root, cache flags, revision, seconds, tag,
/// error, total violation count) rides the kResult / kRejected /
/// kReportEnd frame. Not every CheckResult field crosses the wire:
/// stage timings, interaction/baseline statistics, and the netlist
/// pointer stay in-process (docs/net.md lists the envelope).
class ResultFrameStream {
 public:
  ResultFrameStream(std::uint64_t requestId, const CheckResult& result,
                    std::size_t chunkViolations = kDefaultReportChunk);

  /// Produce the next frame into `frame` (replaced, not appended).
  /// Returns false when the sequence is complete (`frame` untouched).
  bool next(std::vector<std::uint8_t>& frame);

 private:
  std::uint64_t id_;
  const CheckResult& result_;
  std::size_t chunk_;
  std::size_t nextViolation_{0};
  bool envelopeSent_{false};
  bool singleFrame_{false};
  bool done_{false};
};

/// Reassembles response frames into CheckResults on the client side.
/// Feed every kResult / kReportPart / kReportEnd / kRejected frame in
/// connection order; at most one streamed response may be open at a
/// time (the server never interleaves), and a violation of that — or a
/// part/end for a mismatched request id, or a malformed payload — is a
/// protocol error.
class ResultAssembler {
 public:
  enum class Feed {
    kNeedMore,  ///< frame absorbed; the response is still streaming
    kComplete,  ///< `out` holds the finished (requestId, CheckResult)
    kError,     ///< protocol violation; the connection should close
  };

  Feed feed(const FrameHeader& h, const std::uint8_t* payload,
            std::size_t n, CheckResult& out, std::string* err = nullptr);

  /// True while a streamed response is open (parts seen, no end yet).
  bool streaming() const { return streaming_; }

 private:
  bool streaming_{false};
  std::uint64_t streamId_{0};
  std::vector<report::Violation> partial_;
};

// --- shared low-level codec helpers (exposed for tests) --------------------

/// Append an encoded CheckResult envelope + the violation slice
/// [first, first+count) to `out` (payload bytes only, no header).
void appendResultEnvelope(std::vector<std::uint8_t>& out,
                          const CheckResult& r,
                          std::uint64_t totalViolations);

/// Decode a result envelope; on success advances *p/*n past it.
bool decodeResultEnvelope(const std::uint8_t** p, std::size_t* n,
                          CheckResult& out, std::uint64_t* totalViolations,
                          std::string* err = nullptr);

/// Append `count` violations starting at `first` (payload bytes only).
void appendViolations(std::vector<std::uint8_t>& out,
                      const std::vector<report::Violation>& vs,
                      std::size_t first, std::size_t count);

/// Decode a violation slice, appending onto `out`. On success advances
/// *p/*n past the slice.
bool decodeViolations(const std::uint8_t** p, std::size_t* n,
                      std::vector<report::Violation>& out,
                      std::string* err = nullptr);

}  // namespace dic::net
