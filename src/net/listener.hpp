#pragma once
/// \file listener.hpp
/// The TCP front door for dic::server::Server: a net::Listener accepts
/// connections and runs one Session per connection — a reader thread
/// decoding kCheck/kStatsRequest frames into Server::submitAsync, and a
/// writer thread streaming completed results back in completion order.
/// Many request ids multiplex over one socket; responses carry the id
/// back, so clients correlate out-of-order completions without one
/// connection per request.
///
/// Failure and backpressure mapping (full contract in docs/net.md):
///  * a malformed frame (bad magic/version/type/flags, oversized
///    declared length, undecodable payload) closes THAT session only —
///    a best-effort kError frame is sent first, the socket closes, and
///    every other session (and the process) is untouched;
///  * a mid-frame disconnect is an ordinary session end;
///  * OverflowPolicy::kReject surfaces as a kRejected frame for the
///    offending request id;
///  * OverflowPolicy::kBlock blocks the session's reader inside the
///    shard queue — the session stops reading its socket, the kernel
///    receive buffer fills, and the client feels TCP pushback;
///  * large reports stream as kReportPart frames closed by kReportEnd,
///    serialized chunk by chunk so neither side materializes a
///    million-violation report as one buffer.
///
/// Shutdown is a drain, mirroring the server's two-phase contract: new
/// connections are refused, each session's read side closes (no new
/// requests), every request already handed to the server completes and
/// its response is flushed, then sockets close.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "server/server.hpp"

namespace dic::net {

/// Listener construction knobs.
struct ListenerOptions {
  /// Numeric IPv4 address to bind ("0.0.0.0" fronts all interfaces).
  std::string host{"127.0.0.1"};
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port{0};
  /// Violations per kReportPart frame when a response streams. Small
  /// values are useful in tests to force the streaming path.
  std::size_t reportChunkViolations{kDefaultReportChunk};
};

/// Observability counters for the network tier (cumulative).
struct ListenerStats {
  std::size_t sessionsAccepted{0};  ///< connections ever accepted
  std::size_t sessionsOpen{0};      ///< sessions currently live
  std::size_t framesIn{0};          ///< request frames fully decoded
  std::size_t framesOut{0};         ///< response frames fully written
  std::size_t malformedSessions{0}; ///< sessions closed on protocol error
};

class Listener {
 public:
  /// Bind, listen, and start accepting. Throws std::runtime_error if
  /// the address cannot be bound (there is no serving tier without a
  /// socket). `srv` must outlive the Listener.
  Listener(server::Server& srv, ListenerOptions opts = {});
  /// shutdown(), then joins every thread.
  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// The bound port (resolves ephemeral binds).
  std::uint16_t port() const { return acceptor_.port(); }
  /// The bound host.
  const std::string& host() const { return opts_.host; }

  /// Graceful drain: refuse new connections, stop reading new frames,
  /// answer everything already accepted, flush, close. Idempotent.
  void shutdown();

  /// Counter snapshot.
  ListenerStats stats() const;

 private:
  struct Session;

  void acceptLoop();
  /// Drop sessions whose threads have finished (called on the accept
  /// thread so the session list cannot grow without bound).
  void reapFinished();

  server::Server& srv_;
  ListenerOptions opts_;
  Acceptor acceptor_;
  std::thread acceptThread_;
  std::once_flag shutdownOnce_;

  mutable std::mutex mu_;  ///< guards sessions_ + counters
  std::vector<std::shared_ptr<Session>> sessions_;
  std::size_t sessionsAccepted_{0};
  std::size_t malformedSessions_{0};
  std::size_t reapedFramesIn_{0};   ///< frames from already-reaped sessions
  std::size_t reapedFramesOut_{0};
};

}  // namespace dic::net
