#include "net/client.hpp"

#include <chrono>
#include <utility>
#include <vector>

namespace dic::net {

struct Client::PendingCheck {
  std::promise<CheckResult> promise;
  // Enough of the request to shape a coherent error result.
  CheckKind kind{CheckKind::kHierarchicalDrc};
  layout::CellId root{0};
  std::string tag;
  std::chrono::steady_clock::time_point deadline{
      std::chrono::steady_clock::time_point::max()};
};

struct Client::StatsReply {
  struct Data {
    bool ok{false};
    std::string error;
    server::ServerStats stats;
  };
  std::promise<Data> promise;
};

struct Client::RawReply {
  struct Data {
    bool ok{false};
    std::string error;
    std::vector<std::uint8_t> payload;
  };
  FrameType expect{FrameType::kError};  ///< response type this wait matches
  std::promise<Data> promise;
};

namespace {

CheckResult makeErrorResult(CheckKind kind, layout::CellId root,
                            std::string tag, std::string error) {
  CheckResult r;
  r.kind = kind;
  r.root = root;
  r.tag = std::move(tag);
  r.error = std::move(error);
  return r;
}

}  // namespace

Client::Client(ClientOptions opts) : opts_(std::move(opts)) {}

Client::~Client() { close(); }

bool Client::connect(std::string* err) { return ensureConnected(err); }

bool Client::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sock_.valid() && !sockDead_;
}

void Client::close() {
  std::thread reader;
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    if (sock_.valid()) {
      sock_.shutdownRead();  // wakes the reader with EOF
      sock_.shutdownWrite();
      sockDead_ = true;
    }
    reader = std::move(readerThread_);
  }
  if (reader.joinable()) reader.join();
  failAllPending();
}

bool Client::ensureConnected(std::string* err) {
  std::thread dead;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      if (err) *err = "client closed";
      return false;
    }
    if (sock_.valid() && !sockDead_) return true;
    if (everConnected_ && !opts_.reconnect) {
      if (err) *err = "disconnected and reconnect is disabled";
      return false;
    }
    dead = std::move(readerThread_);
  }
  // Join the previous reader outside mu_ — its disconnect cleanup takes
  // mu_ on its way out.
  if (dead.joinable()) dead.join();

  std::scoped_lock lock(sendMu_, mu_);
  if (closed_) {
    if (err) *err = "client closed";
    return false;
  }
  if (sock_.valid() && !sockDead_) return true;  // raced another connect
  std::string cerr;
  Socket s = connectTo(opts_.host, opts_.port, opts_.connectTimeoutSeconds,
                       &cerr);
  if (!s.valid()) {
    if (err) *err = cerr;
    return false;
  }
  // The receive timeout is the reader's deadline-scan tick, not a
  // protocol timeout — kTimeout just means "check expiries, keep going".
  s.setRecvTimeout(0.05);
  sock_ = std::move(s);  // holds both mutexes: no sendAll can race this
  sockDead_ = false;
  if (everConnected_) ++telemetry_.reconnects;
  everConnected_ = true;
  readerThread_ = std::thread([this] { readerLoop(); });
  return true;
}

bool Client::sendFrame(const std::vector<std::uint8_t>& frame) {
  bool ok = false;
  {
    std::lock_guard<std::mutex> lock(sendMu_);
    ok = sock_.sendAll(frame.data(), frame.size());
  }
  if (ok) {
    std::lock_guard<std::mutex> lock(mu_);
    ++telemetry_.framesOut;
    return true;
  }
  failAllPending();
  return false;
}

std::future<CheckResult> Client::submit(std::string_view library,
                                        CheckRequest req,
                                        std::uint64_t* idOut) {
  if (idOut) *idOut = 0;
  auto pc = std::make_unique<PendingCheck>();
  pc->kind = req.kind;
  pc->root = req.root;
  pc->tag = req.tag;
  std::future<CheckResult> fut = pc->promise.get_future();

  std::string err;
  if (!ensureConnected(&err)) {
    pc->promise.set_value(
        makeErrorResult(pc->kind, pc->root, pc->tag, kErrConnectionLost));
    return fut;
  }

  std::vector<std::uint8_t> frame;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!sock_.valid() || sockDead_) {  // raced a disconnect
      pc->promise.set_value(
          makeErrorResult(pc->kind, pc->root, pc->tag, kErrConnectionLost));
      return fut;
    }
    const std::uint64_t id = nextId_++;
    if (idOut) *idOut = id;
    if (opts_.requestTimeoutSeconds > 0) {
      pc->deadline = std::chrono::steady_clock::now() +
                     std::chrono::duration_cast<
                         std::chrono::steady_clock::duration>(
                         std::chrono::duration<double>(
                             opts_.requestTimeoutSeconds));
    }
    frame = encodeCheckFrame(id, library, req);
    pending_.emplace(id, std::move(pc));
  }
  // A send failure fails every pending future (this one included)
  // through failAllPending, so the future is always fulfilled.
  sendFrame(frame);
  return fut;
}

CheckResult Client::check(std::string_view library, CheckRequest req) {
  return submit(library, std::move(req)).get();
}

bool Client::stats(server::ServerStats& out, std::string* err) {
  std::string cerr;
  if (!ensureConnected(&cerr)) {
    if (err) *err = cerr;
    return false;
  }
  auto sr = std::make_unique<StatsReply>();
  std::future<StatsReply::Data> fut = sr->promise.get_future();
  std::uint64_t id = 0;
  std::vector<std::uint8_t> frame;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!sock_.valid() || sockDead_) {
      if (err) *err = kErrConnectionLost;
      return false;
    }
    id = nextId_++;
    frame = encodeStatsRequestFrame(id);
    pendingStats_.emplace(id, std::move(sr));
  }
  if (!sendFrame(frame)) {
    if (err) *err = kErrConnectionLost;
    return false;
  }
  if (opts_.requestTimeoutSeconds > 0) {
    const auto status = fut.wait_for(
        std::chrono::duration<double>(opts_.requestTimeoutSeconds));
    if (status != std::future_status::ready) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        pendingStats_.erase(id);  // a late kStats frame is discarded
        ++telemetry_.timeouts;
      }
      if (err) *err = kErrNetTimeout;
      return false;
    }
  }
  StatsReply::Data d = fut.get();
  if (!d.ok) {
    if (err) *err = d.error;
    return false;
  }
  out = std::move(d.stats);
  return true;
}

bool Client::rawRoundTrip(FrameType expect, std::vector<std::uint8_t> frame,
                          std::uint64_t id,
                          std::vector<std::uint8_t>& payloadOut,
                          std::string* err) {
  auto rr = std::make_unique<RawReply>();
  rr->expect = expect;
  std::future<RawReply::Data> fut = rr->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!sock_.valid() || sockDead_) {
      if (err) *err = kErrConnectionLost;
      return false;
    }
    pendingRaw_.emplace(id, std::move(rr));
  }
  if (!sendFrame(frame)) {
    if (err) *err = kErrConnectionLost;
    return false;
  }
  if (opts_.requestTimeoutSeconds > 0) {
    const auto status = fut.wait_for(
        std::chrono::duration<double>(opts_.requestTimeoutSeconds));
    if (status != std::future_status::ready) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        pendingRaw_.erase(id);  // a late response frame is discarded
        ++telemetry_.timeouts;
      }
      if (err) *err = kErrNetTimeout;
      return false;
    }
  }
  RawReply::Data d = fut.get();
  if (!d.ok) {
    if (err) *err = d.error;
    return false;
  }
  payloadOut = std::move(d.payload);
  return true;
}

bool Client::metrics(obs::MetricsSnapshot& out, std::string* err) {
  std::string cerr;
  if (!ensureConnected(&cerr)) {
    if (err) *err = cerr;
    return false;
  }
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = nextId_++;
  }
  std::vector<std::uint8_t> payload;
  if (!rawRoundTrip(FrameType::kMetrics, encodeMetricsRequestFrame(id), id,
                    payload, err))
    return false;
  std::string derr;
  if (!decodeMetricsPayload(payload.data(), payload.size(), out, &derr)) {
    if (err) *err = std::string(kErrNetProtocol) + ": " + derr;
    return false;
  }
  return true;
}

bool Client::trace(std::uint64_t traceId, std::vector<obs::SpanRecord>& out,
                   std::string* err) {
  std::string cerr;
  if (!ensureConnected(&cerr)) {
    if (err) *err = cerr;
    return false;
  }
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = nextId_++;
  }
  std::vector<std::uint8_t> payload;
  if (!rawRoundTrip(FrameType::kTrace, encodeTraceRequestFrame(id, traceId),
                    id, payload, err))
    return false;
  std::uint64_t echoed = 0;
  std::string derr;
  if (!decodeTracePayload(payload.data(), payload.size(), echoed, out,
                          &derr)) {
    if (err) *err = std::string(kErrNetProtocol) + ": " + derr;
    return false;
  }
  return true;
}

ClientTelemetry Client::telemetry() const {
  std::lock_guard<std::mutex> lock(mu_);
  return telemetry_;
}

void Client::expireDeadlines() {
  std::vector<std::unique_ptr<PendingCheck>> expired;
  const auto now = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = pending_.begin(); it != pending_.end();) {
      if (it->second->deadline <= now) {
        expired.push_back(std::move(it->second));
        it = pending_.erase(it);
      } else {
        ++it;
      }
    }
    telemetry_.timeouts += expired.size();
  }
  for (auto& pc : expired)
    pc->promise.set_value(
        makeErrorResult(pc->kind, pc->root, pc->tag, kErrNetTimeout));
}

void Client::failAllPending() {
  std::unordered_map<std::uint64_t, std::unique_ptr<PendingCheck>> checks;
  std::unordered_map<std::uint64_t, std::unique_ptr<StatsReply>> statsWaits;
  std::unordered_map<std::uint64_t, std::unique_ptr<RawReply>> rawWaits;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sock_.valid() && !sockDead_) {
      // Shut down (not close): a submitter may be blocked inside
      // sendAll on this descriptor; shutdown fails it fast, while the
      // actual close is deferred to the next reconnect so the fd number
      // cannot be reused under that send.
      sock_.shutdownRead();
      sock_.shutdownWrite();
      sockDead_ = true;
    }
    checks.swap(pending_);
    statsWaits.swap(pendingStats_);
    rawWaits.swap(pendingRaw_);
  }
  for (auto& [id, pc] : checks)
    pc->promise.set_value(
        makeErrorResult(pc->kind, pc->root, pc->tag, kErrConnectionLost));
  StatsReply::Data lost;
  lost.ok = false;
  lost.error = kErrConnectionLost;
  for (auto& [id, sr] : statsWaits) sr->promise.set_value(lost);
  RawReply::Data rawLost;
  rawLost.ok = false;
  rawLost.error = kErrConnectionLost;
  for (auto& [id, rr] : rawWaits) rr->promise.set_value(rawLost);
}

void Client::readerLoop() {
  ResultAssembler assembler;
  std::string err;
  bool alive = true;
  while (alive) {
    // Incrementally fill the header, then the payload; kTimeout ticks
    // run the deadline scan in between.
    std::uint8_t hdr[kHeaderSize];
    std::size_t have = 0;
    while (alive && have < kHeaderSize) {
      std::size_t got = 0;
      const Socket::Io io =
          sock_.recvSome(hdr + have, kHeaderSize - have, got);
      if (io == Socket::Io::kTimeout) {
        expireDeadlines();
        continue;
      }
      if (io != Socket::Io::kOk) {
        alive = false;
        break;
      }
      have += got;
    }
    if (!alive) break;
    FrameHeader h;
    if (!parseHeader(hdr, h, &err)) break;  // server spoke garbage
    std::vector<std::uint8_t> payload(h.payloadLen);
    have = 0;
    while (alive && have < payload.size()) {
      std::size_t got = 0;
      const Socket::Io io = sock_.recvSome(payload.data() + have,
                                           payload.size() - have, got);
      if (io == Socket::Io::kTimeout) {
        expireDeadlines();
        continue;
      }
      if (io != Socket::Io::kOk) {
        alive = false;
        break;
      }
      have += got;
    }
    if (!alive) break;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++telemetry_.framesIn;
      if (h.type == FrameType::kReportPart) ++telemetry_.reportPartFrames;
      if (h.type == FrameType::kRejected) ++telemetry_.rejectedFrames;
    }

    switch (h.type) {
      case FrameType::kResult:
      case FrameType::kReportPart:
      case FrameType::kReportEnd:
      case FrameType::kRejected: {
        CheckResult out;
        const ResultAssembler::Feed fed =
            assembler.feed(h, payload.data(), payload.size(), out, &err);
        if (fed == ResultAssembler::Feed::kError) {
          alive = false;  // stream state is unrecoverable
          break;
        }
        if (fed == ResultAssembler::Feed::kComplete) {
          std::unique_ptr<PendingCheck> pc;
          {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = pending_.find(h.requestId);
            if (it != pending_.end()) {
              pc = std::move(it->second);
              pending_.erase(it);
            }
          }
          // No entry: the request expired client-side (or the id is
          // unknown) — discard the late response.
          if (pc) pc->promise.set_value(std::move(out));
        }
        break;
      }
      case FrameType::kStats: {
        StatsReply::Data d;
        server::ServerStats st;
        if (decodeStatsPayload(payload.data(), payload.size(), st, &err)) {
          d.ok = true;
          d.stats = std::move(st);
        } else {
          d.error = std::string(kErrNetProtocol) + ": " + err;
        }
        std::unique_ptr<StatsReply> sr;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = pendingStats_.find(h.requestId);
          if (it != pendingStats_.end()) {
            sr = std::move(it->second);
            pendingStats_.erase(it);
          }
        }
        if (sr) sr->promise.set_value(std::move(d));
        break;
      }
      case FrameType::kTrace:
      case FrameType::kMetrics: {
        std::unique_ptr<RawReply> rr;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = pendingRaw_.find(h.requestId);
          if (it != pendingRaw_.end() && it->second->expect == h.type) {
            rr = std::move(it->second);
            pendingRaw_.erase(it);
          }
        }
        // No matching wait (expired, unknown, or a type mismatch): the
        // frame is discarded like any other late response.
        if (rr) {
          RawReply::Data d;
          d.ok = true;
          d.payload = std::move(payload);
          rr->promise.set_value(std::move(d));
          payload.clear();
        }
        break;
      }
      case FrameType::kError: {
        // The server is about to close the session; fail the offending
        // request now (the rest fail with kErrConnectionLost on EOF).
        const std::string msg =
            decodeErrorPayload(payload.data(), payload.size());
        const std::string what =
            msg.empty() ? std::string(kErrNetProtocol)
                        : std::string(kErrNetProtocol) + ": " + msg;
        std::unique_ptr<PendingCheck> pc;
        std::unique_ptr<StatsReply> sr;
        std::unique_ptr<RawReply> rr;
        {
          std::lock_guard<std::mutex> lock(mu_);
          auto it = pending_.find(h.requestId);
          if (it != pending_.end()) {
            pc = std::move(it->second);
            pending_.erase(it);
          }
          auto st = pendingStats_.find(h.requestId);
          if (st != pendingStats_.end()) {
            sr = std::move(st->second);
            pendingStats_.erase(st);
          }
          auto rw = pendingRaw_.find(h.requestId);
          if (rw != pendingRaw_.end()) {
            rr = std::move(rw->second);
            pendingRaw_.erase(rw);
          }
        }
        if (pc)
          pc->promise.set_value(
              makeErrorResult(pc->kind, pc->root, pc->tag, what));
        if (sr) {
          StatsReply::Data d;
          d.error = what;
          sr->promise.set_value(std::move(d));
        }
        if (rr) {
          RawReply::Data d;
          d.error = what;
          rr->promise.set_value(std::move(d));
        }
        break;
      }
      default:
        alive = false;  // a request-type frame from the server
        break;
    }
  }
  failAllPending();
}

}  // namespace dic::net
