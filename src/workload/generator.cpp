#include "workload/generator.hpp"

namespace dic::workload {

using geom::Coord;
using geom::Point;
using geom::Rect;

Point GeneratedChip::blockOrigin(int br, int bc) const {
  return {bc * blockPitchX, br * blockPitchY};
}

Point GeneratedChip::inverterOrigin(int br, int bc, int ir, int ic) const {
  const Point b = blockOrigin(br, bc);
  return {b.x + ic * invPitchX, b.y + ir * invPitchY};
}

Rect GeneratedChip::busRect(int br, int bc, int ir) const {
  const Point b = blockOrigin(br, bc);
  const Coord L = lambda;
  const Coord y = b.y + ir * invPitchY + 18 * L;
  return {{b.x, y - 3 * L / 2}, {b.x + blockW, y + 3 * L / 2}};
}

GeneratedChip generateChip(const tech::Technology& tech,
                           const ChipParams& params) {
  GeneratedChip chip;
  chip.params = params;
  chip.lambda = tech.lambda();
  const Coord L = chip.lambda;
  chip.cells = installNmosCells(chip.lib, tech);
  chip.invPitchX = 26 * L;
  chip.invPitchY = 44 * L;
  chip.blockW = params.invCols * chip.invPitchX - 2 * L;
  chip.blockH = params.invRows * chip.invPitchY - 4 * L;
  chip.blockPitchX = chip.blockW + 8 * L;
  chip.blockPitchY = chip.blockH + 8 * L;

  const int nm = *tech.layerByName("metal");
  const int np = *tech.layerByName("poly");

  // ---- Functional block: an array of inverters plus block interconnect.
  {
    layout::Cell blk;
    blk.name = "block";
    for (int r = 0; r < params.invRows; ++r) {
      for (int c = 0; c < params.invCols; ++c) {
        blk.instances.push_back(
            {chip.cells.inverter,
             {geom::Orient::kR0, {c * chip.invPitchX, r * chip.invPitchY}},
             "inv" + std::to_string(r) + "_" + std::to_string(c)});
      }
    }
    for (int r = 0; r < params.invRows; ++r) {
      const Coord y0 = r * chip.invPitchY;
      // Block power rails, overlapping every inverter's rails exactly.
      blk.elements.push_back(layout::makeBox(
          nm, {{0, y0}, {chip.blockW, y0 + 3 * L}}, "GND"));
      blk.elements.push_back(layout::makeBox(
          nm, {{0, y0 + 37 * L}, {chip.blockW, y0 + 40 * L}}, "VDD"));
      // Output bus for the row (a chip-global bus net). A box, not a
      // wire: wire end caps would protrude past the block edge.
      blk.elements.push_back(layout::makeBox(
          nm,
          {{0, y0 + 18 * L - 3 * L / 2}, {chip.blockW, y0 + 18 * L + 3 * L / 2}},
          "BUSO" + std::to_string(r)));
    }
    // Per-column input poly lines spanning the block height.
    for (int c = 0; c < params.invCols; ++c) {
      const Coord x = c * chip.invPitchX;
      blk.elements.push_back(layout::makeWire(
          np, {{x, 0}, {x, chip.blockH}}, 2 * L, "IN" + std::to_string(c)));
    }
    chip.block = chip.lib.addCell(std::move(blk));
  }

  // ---- Chip: a grid of blocks plus pads.
  {
    layout::Cell top;
    top.name = "chip";
    for (int br = 0; br < params.blockRows; ++br) {
      for (int bc = 0; bc < params.blockCols; ++bc) {
        top.instances.push_back(
            {chip.block,
             {geom::Orient::kR0,
              {bc * chip.blockPitchX, br * chip.blockPitchY}},
             "blk" + std::to_string(br) + "_" + std::to_string(bc)});
      }
    }
    if (params.withPads) {
      // Pads along the bottom edge; each pad's tail wire is labelled with
      // a chip-global net so the label merge binds it to that net.
      std::vector<std::string> padNets = {"VDD", "GND"};
      for (int c = 0; c < params.invCols; ++c)
        padNets.push_back("IN" + std::to_string(c));
      for (int r = 0; r < params.invRows; ++r)
        padNets.push_back("BUSO" + std::to_string(r));
      Coord x = 0;
      const Coord y = -30 * L;
      int padNo = 0;
      for (const std::string& net : padNets) {
        top.instances.push_back({chip.cells.pad,
                                 {geom::Orient::kR0, {x, y}},
                                 "pad" + std::to_string(padNo++)});
        top.elements.push_back(layout::makeWire(
            nm, {{x, y + 4 * L}, {x, y + 12 * L}}, 3 * L, net));
        x += 20 * L;
      }
    }
    chip.top = chip.lib.addCell(std::move(top));
  }

  return chip;
}

}  // namespace dic::workload
