#include "workload/traffic.hpp"

#include "workload/inject.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace dic::workload {

namespace {

/// splitmix64: small, seedable, and identical everywhere — the trace
/// must not depend on the standard library's engine choices.
struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed + 0x9e3779b97f4a7c15ull) {}

  std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Weighted pick: index i with probability weights[i] / sum.
  std::size_t pick(const std::vector<double>& weights, double total) {
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x < 0) return i;
    }
    return weights.size() - 1;
  }
};

}  // namespace

std::vector<TrafficEvent> generateTrace(const TrafficOptions& opts) {
  Rng rng(opts.seed);

  // Slot 4 is edit-then-check: a DRC request flagged to carry an edit.
  const std::vector<double> kindWeights = {
      opts.weightDrc, opts.weightBaseline, opts.weightErc, opts.weightNetlist,
      opts.weightEditCheck};
  constexpr CheckKind kKinds[] = {
      CheckKind::kHierarchicalDrc, CheckKind::kFlatBaselineDrc,
      CheckKind::kErc, CheckKind::kNetlistOnly, CheckKind::kHierarchicalDrc};
  double kindTotal = 0;
  for (const double w : kindWeights) kindTotal += w;

  const std::size_t nLibs = std::max<std::size_t>(1, opts.libraries);
  std::vector<double> libWeights(nLibs, 1.0);
  if (opts.zipfPopularity)
    for (std::size_t i = 0; i < nLibs; ++i)
      libWeights[i] = 1.0 / static_cast<double>(i + 1);
  double libTotal = 0;
  for (const double w : libWeights) libTotal += w;

  std::vector<TrafficEvent> trace;
  trace.reserve(opts.requests);
  double clock = 0;
  for (std::size_t k = 0; k < opts.requests; ++k) {
    TrafficEvent ev;
    ev.library = rng.pick(libWeights, libTotal);
    const std::size_t kindSlot =
        kindTotal > 0 ? rng.pick(kindWeights, kindTotal) : 0;
    ev.kind = kKinds[kindSlot];
    if (kindSlot == 4) {
      ev.edit = true;
      ev.editSeed = rng.next();
    }
    if (opts.arrivalsPerSecond > 0) {
      // Exponential inter-arrival (Poisson process), clamped away from
      // log(0).
      const double u = std::max(rng.uniform(), 1e-12);
      clock += -std::log(u) / opts.arrivalsPerSecond;
      ev.arrivalSeconds = clock;
    }
    trace.push_back(ev);
  }
  return trace;
}

void driveOpenLoop(const std::vector<TrafficEvent>& trace, int dispatchers,
                   const std::function<void(const TrafficEvent&)>& submit) {
  using Clock = std::chrono::steady_clock;
  const int k = std::max(1, dispatchers);
  const Clock::time_point t0 = Clock::now();
  auto drive = [&](std::size_t first) {
    for (std::size_t i = first; i < trace.size();
         i += static_cast<std::size_t>(k)) {
      const TrafficEvent& ev = trace[i];
      std::this_thread::sleep_until(
          t0 + std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double>(ev.arrivalSeconds)));
      submit(ev);
    }
  };
  if (k <= 1) {
    drive(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c)
    threads.emplace_back(drive, static_cast<std::size_t>(c));
  for (std::thread& th : threads) th.join();
}

CheckRequest materialize(const TrafficEvent& ev, layout::CellId root) {
  switch (ev.kind) {
    case CheckKind::kHierarchicalDrc: return CheckRequest::drc(root);
    case CheckKind::kFlatBaselineDrc: return CheckRequest::baseline(root);
    case CheckKind::kErc: return CheckRequest::ercCheck(root);
    case CheckKind::kNetlistOnly: return CheckRequest::netlistOnly(root);
  }
  return CheckRequest::drc(root);
}

EditOp makeEditOp(std::uint64_t seed, const layout::Library& lib,
                  layout::CellId root) {
  std::vector<layout::CellId> editable;
  lib.forEachCellOnce(root, [&](layout::CellId id) {
    const layout::Cell& c = lib.cell(id);
    if (!c.isDevice() && !c.elements.empty()) editable.push_back(id);
  });
  if (editable.empty()) return {};
  Rng rng(seed);
  const layout::CellId cell =
      editable[rng.next() % editable.size()];
  const std::size_t index = rng.next() % lib.cell(cell).elements.size();
  // A small nudge, ±1..2 grid steps per axis (direction seed-dependent),
  // kept tiny so most replays ride the incremental fast path without
  // tearing the chip's connectivity apart.
  const geom::Coord step = 25;
  const geom::Coord dx =
      (static_cast<geom::Coord>(rng.next() % 5) - 2) * step;
  const geom::Coord dy =
      (static_cast<geom::Coord>(rng.next() % 5) - 2) * step;
  return EditOp::setElement(
      cell, index,
      lib.cell(cell).elements[index].transformed(geom::translate({dx, dy})));
}

std::string libraryName(std::size_t library) {
  return "lib" + std::to_string(library);
}

GeneratedChip fleetChip(const tech::Technology& tech) {
  GeneratedChip chip = generateChip(tech, {1, 1, 2, 4, true});
  InjectionPlan plan;
  inject(chip, tech, plan, /*seed=*/42);
  return chip;
}

CheckRequest materialize(const TrafficEvent& ev, layout::CellId root,
                         const layout::Library& lib) {
  CheckRequest req = materialize(ev, root);
  if (ev.edit) {
    EditOp op = makeEditOp(ev.editSeed, lib, root);
    if (op.kind != EditOp::Kind::kNone) req.edits.push_back(std::move(op));
  }
  return req;
}

}  // namespace dic::workload
