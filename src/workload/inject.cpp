#include "workload/inject.hpp"

#include <algorithm>

namespace dic::workload {

namespace {

using geom::Coord;
using geom::Point;
using geom::Rect;

struct Site {
  int br, bc, ir, ic;
};

std::vector<Site> allSites(const ChipParams& p) {
  std::vector<Site> s;
  for (int br = 0; br < p.blockRows; ++br)
    for (int bc = 0; bc < p.blockCols; ++bc)
      for (int ir = 0; ir < p.invRows; ++ir)
        for (int ic = 0; ic < p.invCols; ++ic) s.push_back({br, bc, ir, ic});
  return s;
}

}  // namespace

std::vector<report::GroundTruth> inject(GeneratedChip& chip,
                                        const tech::Technology& tech,
                                        const InjectionPlan& plan,
                                        unsigned seed) {
  std::vector<report::GroundTruth> truths;
  layout::Cell& top = chip.lib.cell(chip.top);
  const Coord L = chip.lambda;
  const int nm = *tech.layerByName("metal");
  const int np = *tech.layerByName("poly");
  const int nc = *tech.layerByName("contact");

  std::mt19937 rng(seed);
  std::vector<Site> sites = allSites(chip.params);
  std::shuffle(sites.begin(), sites.end(), rng);
  std::size_t next = 0;
  auto takeSite = [&]() -> Site {
    const Site s = sites[next % sites.size()];
    ++next;
    return s;
  };

  // --- (1) real spacing violations: a stray metal box 1L from a bus end.
  // Caught by both checkers.
  for (int k = 0; k < plan.spacingViolations; ++k) {
    const Site s = takeSite();
    const Rect bus = chip.busRect(s.br, s.bc, s.ir);
    const Rect box{{bus.lo.x - 4 * L, bus.lo.y}, {bus.lo.x - L, bus.hi.y}};
    top.elements.push_back(layout::makeBox(nm, box));
    truths.push_back({report::Category::kSpacing,
                      geom::bound(box, {{bus.lo.x, bus.lo.y}, {bus.lo.x + L, bus.hi.y}}),
                      true, "stray metal 1L from bus"});
  }

  // --- (2) legal same-net decoys: a labelled stub of the bus's own net
  // 1L away. Electrically equivalent (Fig. 5a): a correct checker stays
  // silent; the mask-level baseline flags it (false error).
  for (int k = 0; k < plan.sameNetDecoys; ++k) {
    const Site s = takeSite();
    const Rect bus = chip.busRect(s.br, s.bc, s.ir);
    // 1L above the bus, inside the site inverter's empty patch (clear of
    // the gate-contact metal riser); distinct sites never overlap.
    const geom::Coord x0 =
        chip.blockOrigin(s.br, s.bc).x + s.ic * chip.invPitchX + 14 * L;
    const Rect box{{x0, bus.hi.y + L}, {x0 + 6 * L, bus.hi.y + 4 * L}};
    top.elements.push_back(
        layout::makeBox(nm, box, "BUSO" + std::to_string(s.ir)));
    truths.push_back({report::Category::kSpacing, box, false,
                      "same-net decoy 1L from bus"});
  }

  // --- (3) real width violations: a 2L-wide metal box (min is 3L) in the
  // empty margin right of the chip. Caught by both checkers.
  const Coord marginX =
      chip.params.blockCols * chip.blockPitchX + 10 * L;
  for (int k = 0; k < plan.widthViolations; ++k) {
    const Site s = takeSite();
    const Coord x = marginX + (k % 4) * 20 * L;
    const Coord y = chip.blockOrigin(s.br, s.bc).y + (k / 4) * 20 * L;
    const Rect box{{x, y}, {x + 6 * L, y + 2 * L}};
    top.elements.push_back(layout::makeBox(nm, box));
    truths.push_back({report::Category::kWidth, box, true,
                      "metal 2L wide, minimum 3L"});
  }

  // --- (4) accidental transistors (Fig. 8): stray poly crossing the VDD
  // diffusion riser inside an inverter. "Most design rule checkers today
  // will not recognize [this] as an error since it forms a legal
  // transistor" -- baseline-unchecked, caught by DIC.
  for (int k = 0; k < plan.accidentalFets; ++k) {
    const Site s = takeSite();
    const Point o = chip.inverterOrigin(s.br, s.bc, s.ir, s.ic);
    const Rect box{{o.x + 9 * L, o.y + 30 * L}, {o.x + 15 * L, o.y + 32 * L}};
    top.elements.push_back(layout::makeBox(np, box));
    truths.push_back({report::Category::kImplicitDevice,
                      {{o.x + 11 * L, box.lo.y}, {o.x + 13 * L, box.hi.y}},
                      true, "undeclared poly/diff crossing"});
  }

  // --- (5) contact over an active gate (Fig. 7): a full contact patch
  // (poly pad + cut + metal) on a driver gate. At mask level this is
  // indistinguishable from a poly/butting contact (poly and metal both
  // enclose the cut), so the baseline passes it -- unchecked. DIC knows
  // the gate.
  for (int k = 0; k < plan.contactsOverGate; ++k) {
    const Site s = takeSite();
    const Point o = chip.inverterOrigin(s.br, s.bc, s.ir, s.ic);
    const Point g{o.x + 12 * L, o.y + 12 * L};  // driver gate center
    const Rect cut{{g.x - L, g.y - L}, {g.x + L, g.y + L}};
    top.elements.push_back(layout::makeBox(np, cut.inflated(L)));
    top.elements.push_back(layout::makeBox(nc, cut));
    top.elements.push_back(layout::makeBox(nm, cut.inflated(L)));
    truths.push_back({report::Category::kContactOverGate, cut, true,
                      "contact over active gate"});
  }

  // --- (6) butting halves (Fig. 15 / Fig. 2): two half-width boxes that
  // union to a legal width. The mask-level union is legal -- unchecked by
  // the baseline; DIC flags both the element widths and the usage rule.
  for (int k = 0; k < plan.buttingHalves; ++k) {
    const Site s = takeSite();
    const Coord x = marginX + 100 * L + (k % 3) * 20 * L;
    const Coord y = chip.blockOrigin(s.br, s.bc).y + 8 * L + (k / 3) * 20 * L;
    const Rect a{{x, y}, {x + 6 * L, y + 3 * L / 2}};
    const Rect b{{x, y + 3 * L / 2}, {x + 6 * L, y + 3 * L}};
    top.elements.push_back(layout::makeBox(nm, a));
    top.elements.push_back(layout::makeBox(nm, b));
    truths.push_back({report::Category::kSelfSufficiency, geom::bound(a, b),
                      true, "two half-width boxes butting"});
  }

  // --- (7) power/ground short: a vertical metal strap across a block row
  // hits GND rail, bus and VDD rail. Geometrically legal (everything
  // connects), so the baseline is silent -- the error is electrical.
  for (int k = 0; k < plan.powerGroundShorts && chip.params.invCols >= 2;
       ++k) {
    const Site s = takeSite();
    const Point o = chip.blockOrigin(s.br, s.bc);
    const Coord x = o.x + (s.ic == 0 ? 0 : (s.ic - 1)) * chip.invPitchX +
                    24 * L + L / 2;
    const Coord y = o.y + s.ir * chip.invPitchY;
    const Rect box{{x, y}, {x + 3 * L, y + 40 * L}};
    top.elements.push_back(layout::makeBox(nm, box));
    truths.push_back({report::Category::kElectrical, box, true,
                      "metal strap shorts VDD to GND"});
  }

  // --- (8) floating nets: a labelled island with no device terminals.
  for (int k = 0; k < plan.floatingNets; ++k) {
    const Site s = takeSite();
    const Coord x = marginX + 180 * L + (k % 2) * 20 * L;
    const Coord y = chip.blockOrigin(s.br, s.bc).y + 16 * L + (k / 2) * 20 * L;
    const Rect box{{x, y}, {x + 4 * L, y + 4 * L}};
    top.elements.push_back(
        layout::makeBox(nm, box, "float" + std::to_string(k)));
    truths.push_back({report::Category::kElectrical, box, true,
                      "net with no device terminals"});
  }

  chip.lib.invalidateCaches();
  return truths;
}

}  // namespace dic::workload
