#pragma once
/// \file traffic.hpp
/// Deterministic synthetic check traffic for the serving tier: a trace
/// of (library, request-kind, arrival-time) events driving a fleet of
/// generated chips through a dic::server::Server or a bare Workspace.
///
/// Everything is seeded and reproducible — the generator uses its own
/// splitmix/LCG stream, never global randomness — so a bench or test
/// replaying the same TrafficOptions sees the same trace. Two arrival
/// models cover the classic serving experiments:
///
///  * closed loop (arrivalsPerSecond == 0): every event's arrival is 0;
///    the driver keeps a fixed number of outstanding requests and
///    submits the next the moment one completes (throughput-bound).
///  * open loop (arrivalsPerSecond > 0): exponential inter-arrivals at
///    the given rate; the driver submits on schedule regardless of
///    completions (latency-under-load, queue growth, backpressure).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "service/workspace.hpp"
#include "workload/generator.hpp"

namespace dic::workload {

/// One synthetic submission.
struct TrafficEvent {
  std::size_t library{0};   ///< index into the driver's library fleet
  CheckKind kind{CheckKind::kHierarchicalDrc};
  double arrivalSeconds{0}; ///< offset from trace start (0 in closed loop)
  /// Edit-then-check: the request carries a deterministic element nudge
  /// (makeEditOp(editSeed, ...)) applied by the serving Workspace before
  /// the check — the incremental fast path under live traffic.
  bool edit{false};
  std::uint64_t editSeed{0};  ///< seeds the nudge; set when edit is true
};

/// Trace shape knobs.
struct TrafficOptions {
  std::size_t libraries{4};  ///< fleet size events are spread over
  std::size_t requests{64};  ///< trace length
  /// Relative request-kind mix {drc, baseline, erc, netlist}; weights
  /// need not sum to anything. A zero weight removes the kind.
  double weightDrc{4};
  double weightBaseline{2};
  double weightErc{3};
  double weightNetlist{1};
  /// Relative weight of edit-then-check events (a DRC request carrying
  /// one deterministic kSetElement nudge). 0 = no edits in the trace.
  double weightEditCheck{0};
  /// Open-loop arrival rate; 0 = closed-loop trace.
  double arrivalsPerSecond{0};
  /// Library popularity: true = 1/(rank+1) Zipf-like skew (library 0
  /// hottest — the realistic many-tenants shape), false = uniform.
  bool zipfPopularity{true};
  std::uint64_t seed{1};
};

/// Generate the event trace for `opts` (deterministic in the options).
/// Open-loop arrivals are sorted ascending.
std::vector<TrafficEvent> generateTrace(const TrafficOptions& opts);

/// Canonical server id of fleet library `l` ("lib0", "lib1", ...). The
/// one naming convention every driver uses — benches, tests, examples,
/// and the net load driver, which addresses a server process's fleet
/// over TCP and so depends on the names matching without out-of-band
/// coordination.
std::string libraryName(std::size_t library);

/// The canonical serving-fleet chip: generateChip(tech, {1, 1, 2, 4,
/// true}) with injection seed 42. Every fleet library is an identical
/// generation of this chip, which is what lets an external load driver
/// materialize a local oracle copy of a server process's fleet —
/// layouts never ship over the wire, only the recipe is shared.
GeneratedChip fleetChip(const tech::Technology& tech);

/// Turn an event into the concrete request for its library's root cell
/// (reference settings per kind, via the CheckRequest factories).
/// Edit-carrying events need the library overload below.
CheckRequest materialize(const TrafficEvent& ev, layout::CellId root);

/// Deterministic connectivity-light element nudge for edit-then-check
/// traffic: picks a non-device cell with elements reachable from `root`
/// (seed-dependent) and returns a kSetElement EditOp translating that
/// element by a few lambda in a seed-dependent direction. Pure in
/// (seed, library content), so replaying a trace against an equal
/// library fleet applies the identical edit sequence. Returns kNone if
/// no editable cell exists.
EditOp makeEditOp(std::uint64_t seed, const layout::Library& lib,
                  layout::CellId root);

/// materialize() plus the edit payload: when `ev.edit` is set, attaches
/// makeEditOp(ev.editSeed, lib, root) to the request's edit list.
CheckRequest materialize(const TrafficEvent& ev, layout::CellId root,
                         const layout::Library& lib);

/// Replay `trace`'s open-loop arrival schedule from `dispatchers`
/// submitter threads sharing the ONE deterministic trace by striding:
/// thread c takes events c, c+K, c+2K, ... (K = dispatchers), sleeps
/// until each event's arrivalSeconds, then calls `submit(event)`. The
/// union covers every event exactly once and each thread submits its
/// slice in trace order, so the workload is identical for every K — only
/// the submission parallelism changes. One dispatcher saturates near
/// 1/submit-latency arrivals per second (the ROADMAP's open-loop
/// saturation caveat); striding multiplies the measurable rate range by
/// K without perturbing the trace. `submit` must be safe to call
/// concurrently from the K threads (dic::server::Server::submit is).
/// Blocks until every event has been submitted; with dispatchers <= 1
/// runs inline on the caller.
void driveOpenLoop(const std::vector<TrafficEvent>& trace, int dispatchers,
                   const std::function<void(const TrafficEvent&)>& submit);

}  // namespace dic::workload
