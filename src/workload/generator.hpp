#pragma once
/// \file generator.hpp
/// Synthetic hierarchical NMOS chip generator, following the paper's
/// Fig. 9 structure:
///
///   Chip: functional blocks & interconnect
///   Functional block: subblocks (inverter columns/rows) & interconnect
///   Subblock (inverter): devices & interconnect
///   Device: geometry
///
/// The generated chip is DRC- and ERC-clean by construction; the error
/// injectors in inject.hpp then plant known defects (and legal decoys)
/// with recorded ground truth for the Fig. 1 experiment.

#include <string>
#include <vector>

#include "layout/library.hpp"
#include "report/scorer.hpp"
#include "tech/technology.hpp"
#include "workload/nmos_cells.hpp"

namespace dic::workload {

struct ChipParams {
  int blockRows{2};     ///< blocks per chip, vertically
  int blockCols{2};     ///< blocks per chip, horizontally
  int invRows{2};       ///< inverters per block, vertically
  int invCols{4};       ///< inverters per block, horizontally
  bool withPads{true};
};

/// A generated chip plus the handles injectors need.
struct GeneratedChip {
  layout::Library lib;
  layout::CellId top{0};
  layout::CellId block{0};
  NmosCells cells{};
  ChipParams params{};

  // Geometry constants (database units).
  geom::Coord lambda{0};
  geom::Coord invPitchX{0}, invPitchY{0};
  geom::Coord blockW{0}, blockH{0};
  geom::Coord blockPitchX{0}, blockPitchY{0};

  /// Origin (lower-left) of block (br, bc) in chip coordinates.
  geom::Point blockOrigin(int br, int bc) const;
  /// Origin of inverter (ir, ic) within block (br, bc), chip coordinates.
  geom::Point inverterOrigin(int br, int bc, int ir, int ic) const;
  /// The row bus rect of block (br,bc), row ir, chip coordinates.
  geom::Rect busRect(int br, int bc, int ir) const;

  std::size_t inverterCount() const {
    return static_cast<std::size_t>(params.blockRows) * params.blockCols *
           params.invRows * params.invCols;
  }
};

/// Generate a clean chip.
GeneratedChip generateChip(const tech::Technology& tech,
                           const ChipParams& params);

}  // namespace dic::workload
