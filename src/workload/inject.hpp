#pragma once
/// \file inject.hpp
/// Error injectors: plant known defects (and legal decoys) into a
/// generated chip, recording ground truth for the Fig. 1 scorer.
///
/// Each injector documents which checker class is expected to see it:
///   * both DIC and the mask-level baseline (real, checkable anywhere)
///   * DIC only (the baseline's *unchecked* errors, Fig. 1 region 1)
///   * neither -- legal decoys that only a net-blind checker flags
///     (the baseline's *false* errors, Fig. 1 region 3)

#include <random>

#include "report/scorer.hpp"
#include "workload/generator.hpp"

namespace dic::workload {

/// How many of each defect class to inject.
struct InjectionPlan {
  int spacingViolations{2};    ///< real; caught by both
  int widthViolations{2};      ///< real; caught by both
  int sameNetDecoys{4};        ///< legal; baseline false errors (Fig. 5a)
  int accidentalFets{2};       ///< real; baseline-unchecked (Fig. 8)
  int contactsOverGate{2};     ///< real; baseline-unchecked (Fig. 7)
  int buttingHalves{2};        ///< real; baseline-unchecked (Fig. 15/2)
  int powerGroundShorts{1};    ///< real; baseline-unchecked (electrical)
  int floatingNets{1};         ///< real; baseline-unchecked (electrical)
};

/// Apply the plan. Mutates chip.lib's top cell (and records each site so
/// no two injections collide) and returns the ground-truth list.
std::vector<report::GroundTruth> inject(GeneratedChip& chip,
                                        const tech::Technology& tech,
                                        const InjectionPlan& plan,
                                        unsigned seed);

}  // namespace dic::workload
