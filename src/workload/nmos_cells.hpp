#pragma once
/// \file nmos_cells.hpp
/// The NMOS device and cell library used by the synthetic chip generator:
/// Mead-Conway style primitive devices (declared with device types and
/// ports, per the paper's structured-design declaration rule) and a
/// depletion-load inverter laid out to be DRC-clean under the built-in
/// NMOS rules.
///
/// All device cells here follow the paper's rule that "devices ... be
/// called out specifically and their type defined. Implied devices are
/// not allowed."

#include "layout/library.hpp"
#include "tech/technology.hpp"

namespace dic::workload {

/// Ids of the standard cells installed by installNmosCells().
struct NmosCells {
  layout::CellId contactMD;  ///< metal-diffusion contact (CON_MD)
  layout::CellId contactMP;  ///< metal-poly contact (CON_MP)
  layout::CellId butting;    ///< butting contact (BUTT)
  layout::CellId tran;       ///< enhancement FET (TRAN)
  layout::CellId dtran;      ///< depletion FET (DTRAN)
  layout::CellId resistor;   ///< diffusion resistor (RES)
  layout::CellId pad;        ///< bond pad (PAD)
  layout::CellId inverter;   ///< depletion-load inverter (composite)
};

/// Install the cells into `lib` using the layer indices of `tech` (must be
/// the built-in NMOS technology or one with the same layer names).
NmosCells installNmosCells(layout::Library& lib, const tech::Technology& tech);

/// Inverter layout constants (database units; lambda = tech.lambda()).
/// The inverter occupies [0, invWidth] x [0, invHeight]; IN is poly at
/// (0, 12L); OUT is metal reaching (22L, 18L); rails span the full width
/// at y [0, 3L] (GND) and [37L, 40L] (VDD).
struct InverterGeometry {
  geom::Coord width;        ///< 24 lambda
  geom::Coord height;       ///< 40 lambda
  geom::Point inAt;         ///< IN poly attachment
  geom::Point outAt;        ///< OUT metal attachment
  geom::Point driverGate;   ///< center of the driver's gate
  geom::Point loadGate;     ///< center of the load's gate
  geom::Rect gndRail;
  geom::Rect vddRail;
};
InverterGeometry inverterGeometry(const tech::Technology& tech);

}  // namespace dic::workload
