#include "workload/nmos_cells.hpp"

#include <stdexcept>

namespace dic::workload {

namespace {

using geom::Coord;
using geom::Point;
using geom::Rect;
using layout::Cell;
using layout::makeBox;
using layout::makeWire;

struct Layers {
  int nd, np, nc, nm, ni;
};

Layers layersOf(const tech::Technology& tech) {
  auto need = [&](const char* n) {
    const auto i = tech.layerByName(n);
    if (!i) throw std::invalid_argument(std::string("missing layer ") + n);
    return *i;
  };
  return {need("diff"), need("poly"), need("contact"), need("metal"),
          need("implant")};
}

}  // namespace

NmosCells installNmosCells(layout::Library& lib,
                           const tech::Technology& tech) {
  const Coord L = tech.lambda();
  const Layers ly = layersOf(tech);
  NmosCells ids{};

  // --- metal-diffusion contact: 2Lx2L cut, 4Lx4L landings ------------------
  {
    Cell c;
    c.name = "con_md";
    c.deviceType = "CON_MD";
    c.elements.push_back(makeBox(ly.nd, {{-2 * L, -2 * L}, {2 * L, 2 * L}}));
    c.elements.push_back(makeBox(ly.nm, {{-2 * L, -2 * L}, {2 * L, 2 * L}}));
    c.elements.push_back(makeBox(ly.nc, {{-L, -L}, {L, L}}));
    c.ports.push_back({"A", ly.nd, {{-2 * L, -2 * L}, {2 * L, 2 * L}}, 0});
    c.ports.push_back({"B", ly.nm, {{-2 * L, -2 * L}, {2 * L, 2 * L}}, 0});
    ids.contactMD = lib.addCell(std::move(c));
  }

  // --- metal-poly contact ---------------------------------------------------
  {
    Cell c;
    c.name = "con_mp";
    c.deviceType = "CON_MP";
    c.elements.push_back(makeBox(ly.np, {{-2 * L, -2 * L}, {2 * L, 2 * L}}));
    c.elements.push_back(makeBox(ly.nm, {{-2 * L, -2 * L}, {2 * L, 2 * L}}));
    c.elements.push_back(makeBox(ly.nc, {{-L, -L}, {L, L}}));
    c.ports.push_back({"A", ly.np, {{-2 * L, -2 * L}, {2 * L, 2 * L}}, 0});
    c.ports.push_back({"B", ly.nm, {{-2 * L, -2 * L}, {2 * L, 2 * L}}, 0});
    ids.contactMP = lib.addCell(std::move(c));
  }

  // --- butting contact (Fig. 7 right): poly and diff abut under the cut ----
  {
    Cell c;
    c.name = "butt";
    c.deviceType = "BUTT";
    c.elements.push_back(makeBox(ly.nd, {{-3 * L, -2 * L}, {L, 2 * L}}));
    c.elements.push_back(makeBox(ly.np, {{-L, -2 * L}, {3 * L, 2 * L}}));
    c.elements.push_back(makeBox(ly.nm, {{-3 * L, -2 * L}, {3 * L, 2 * L}}));
    c.elements.push_back(makeBox(ly.nc, {{-2 * L, -L}, {2 * L, L}}));
    c.ports.push_back({"D", ly.nd, {{-3 * L, -2 * L}, {-2 * L, 2 * L}}, 0});
    c.ports.push_back({"P", ly.np, {{2 * L, -2 * L}, {3 * L, 2 * L}}, 0});
    c.ports.push_back({"M", ly.nm, {{-3 * L, -2 * L}, {3 * L, 2 * L}}, 0});
    ids.butting = lib.addCell(std::move(c));
  }

  // --- enhancement FET: 2Lx2L channel, poly horizontal, diff vertical ------
  {
    Cell c;
    c.name = "tran";
    c.deviceType = "TRAN";
    c.elements.push_back(makeBox(ly.np, {{-3 * L, -L}, {3 * L, L}}));
    c.elements.push_back(makeBox(ly.nd, {{-L, -3 * L}, {L, 3 * L}}));
    c.ports.push_back({"G", ly.np, {{-3 * L, -L}, {-2 * L, L}}, 0});
    c.ports.push_back({"G2", ly.np, {{2 * L, -L}, {3 * L, L}}, 0});
    c.ports.push_back({"S", ly.nd, {{-L, -3 * L}, {L, -2 * L}}, -1});
    c.ports.push_back({"D", ly.nd, {{-L, 2 * L}, {L, 3 * L}}, -1});
    ids.tran = lib.addCell(std::move(c));
  }

  // --- depletion FET: enhancement FET plus implant over the gate -----------
  {
    Cell c;
    c.name = "dtran";
    c.deviceType = "DTRAN";
    c.elements.push_back(makeBox(ly.np, {{-3 * L, -L}, {3 * L, L}}));
    c.elements.push_back(makeBox(ly.nd, {{-L, -3 * L}, {L, 3 * L}}));
    c.elements.push_back(makeBox(ly.ni, {{-3 * L, -3 * L}, {3 * L, 3 * L}}));
    c.ports.push_back({"G", ly.np, {{-3 * L, -L}, {-2 * L, L}}, 0});
    c.ports.push_back({"G2", ly.np, {{2 * L, -L}, {3 * L, L}}, 0});
    c.ports.push_back({"S", ly.nd, {{-L, -3 * L}, {L, -2 * L}}, -1});
    c.ports.push_back({"D", ly.nd, {{-L, 2 * L}, {L, 3 * L}}, -1});
    ids.dtran = lib.addCell(std::move(c));
  }

  // --- diffusion resistor (Fig. 5b: spacing matters even on one net) -------
  {
    Cell c;
    c.name = "res";
    c.deviceType = "RES";
    c.elements.push_back(makeBox(ly.nd, {{-4 * L, -L}, {4 * L, L}}));
    c.ports.push_back({"A", ly.nd, {{-4 * L, -L}, {-3 * L, L}}, -1});
    c.ports.push_back({"B", ly.nd, {{3 * L, -L}, {4 * L, L}}, -1});
    ids.resistor = lib.addCell(std::move(c));
  }

  // --- bond pad -------------------------------------------------------------
  {
    Cell c;
    c.name = "pad";
    c.deviceType = "PAD";
    c.elements.push_back(makeBox(ly.nm, {{-4 * L, -4 * L}, {4 * L, 4 * L}}));
    c.ports.push_back({"P", ly.nm, {{-4 * L, -4 * L}, {4 * L, 4 * L}}, 0});
    ids.pad = lib.addCell(std::move(c));
  }

  // --- depletion-load inverter ----------------------------------------------
  // Occupies [0,24L] x [0,40L]. GND rail y [0,3L], VDD rail y [37L,40L].
  // Driver TRAN at (12L,12L), load DTRAN at (12L,24L); output node via a
  // metal-diff contact at (12L,18L); load gate tied to the output through
  // a metal-poly contact at (5L,24L); VDD/GND taps via metal-diff
  // contacts sitting on the rail centerlines.
  {
    Cell c;
    c.name = "inv";
    auto at = [&](Coord xl, Coord yl) { return Point{xl * L, yl * L}; };
    auto box = [&](Coord x1, Coord y1, Coord x2, Coord y2) {
      return Rect{{x1 * L, y1 * L}, {x2 * L, y2 * L}};
    };

    // Rails (labelled: these are the chip-global power nets).
    c.elements.push_back(makeBox(ly.nm, box(0, 0, 24, 3), "GND"));
    c.elements.push_back(makeBox(ly.nm, box(0, 37, 24, 40), "VDD"));

    // Devices. The rail taps sit with their centers on the rail
    // centerlines (y = 1.5L and 38.5L), so their metal skeletons touch
    // the rail skeletons.
    const geom::Transform id{};
    (void)id;
    c.instances.push_back({ids.tran, {geom::Orient::kR0, at(12, 12)}, "t1"});
    c.instances.push_back({ids.dtran, {geom::Orient::kR0, at(12, 24)}, "t2"});
    c.instances.push_back(
        {ids.contactMD, {geom::Orient::kR0, at(12, 18)}, "cout"});
    c.instances.push_back(
        {ids.contactMP, {geom::Orient::kR0, at(5, 24)}, "cgate"});
    c.instances.push_back(
        {ids.contactMD, {geom::Orient::kR0, {12 * L, 3 * L / 2}}, "cgnd"});
    c.instances.push_back(
        {ids.contactMD,
         {geom::Orient::kR0, {12 * L, 38 * L + L / 2}},
         "cvdd"});

    // Interconnect (drawn at minimum width where possible).
    // Driver source down to the GND tap.
    c.elements.push_back(
        makeWire(ly.nd, {{12 * L, 3 * L / 2}, at(12, 9)}, 2 * L));
    // Driver drain up to the output contact.
    c.elements.push_back(makeWire(ly.nd, {at(12, 15), at(12, 18)}, 2 * L));
    // Load source down to the output contact.
    c.elements.push_back(makeWire(ly.nd, {at(12, 18), at(12, 21)}, 2 * L));
    // Load drain up to the VDD tap.
    c.elements.push_back(
        makeWire(ly.nd, {at(12, 27), {12 * L, 38 * L + L / 2}}, 2 * L));
    // Load gate to the gate contact (poly).
    c.elements.push_back(makeWire(ly.np, {at(5, 24), at(9, 24)}, 2 * L));
    // Gate contact down and over to the output contact (metal).
    c.elements.push_back(
        makeWire(ly.nm, {at(5, 24), at(5, 18), at(12, 18)}, 3 * L));
    // Output stub to the right edge (metal), the OUT attachment.
    c.elements.push_back(makeWire(ly.nm, {at(12, 18), at(22, 18)}, 3 * L));
    // Input poly from the left edge to the driver gate.
    c.elements.push_back(makeWire(ly.np, {at(0, 12), at(9, 12)}, 2 * L));

    ids.inverter = lib.addCell(std::move(c));
  }

  return ids;
}

InverterGeometry inverterGeometry(const tech::Technology& tech) {
  const Coord L = tech.lambda();
  InverterGeometry g;
  g.width = 24 * L;
  g.height = 40 * L;
  g.inAt = {0, 12 * L};
  g.outAt = {22 * L, 18 * L};
  g.driverGate = {12 * L, 12 * L};
  g.loadGate = {12 * L, 24 * L};
  g.gndRail = {{0, 0}, {24 * L, 3 * L}};
  g.vddRail = {{0, 37 * L}, {24 * L, 40 * L}};
  return g;
}

}  // namespace dic::workload
