#pragma once
/// \file parser.hpp
/// Recursive-descent parser for CIF 2.0 plus the DIC extensions.
///
/// Errors are reported by throwing CifError with a character offset and a
/// human-readable message; the parser does not attempt recovery (a layout
/// database with holes is worse than no database).

#include <stdexcept>
#include <string>
#include <string_view>

#include "cif/ast.hpp"

namespace dic::cif {

/// Parse failure, with 0-based character offset into the input.
class CifError : public std::runtime_error {
 public:
  CifError(std::string message, std::size_t offset)
      : std::runtime_error(std::move(message)), offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// Parse a complete CIF text (must contain the final `E` command).
CifFile parse(std::string_view text);

}  // namespace dic::cif
