#include "cif/parser.hpp"

#include <cctype>
#include <optional>
#include <utility>

namespace dic::cif {

namespace {

/// Character-level cursor with CIF's lexical conventions: parenthesised
/// comments nest; anything that is not a digit, an upper-case letter, '-',
/// '(' or ';' is a separator.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  std::size_t offset() const { return pos_; }

  [[noreturn]] void fail(const std::string& what) const {
    throw CifError(what, pos_);
  }

  void skipBlanks() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '(') {
        skipComment();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == ';' || std::isupper(static_cast<unsigned char>(c))) {
        return;
      }
      ++pos_;
    }
  }

  bool atEnd() {
    skipBlanks();
    return pos_ >= text_.size();
  }

  /// Peek the next significant character (0 at end).
  char peek() {
    skipBlanks();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  char take() {
    skipBlanks();
    if (pos_ >= text_.size()) fail("unexpected end of CIF text");
    return text_[pos_++];
  }

  void expect(char c) {
    const char got = take();
    if (got != c)
      fail(std::string("expected '") + c + "', got '" + got + "'");
  }

  /// A (possibly signed) integer.
  geom::Coord integer() {
    skipBlanks();
    bool neg = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      neg = true;
      ++pos_;
      // CIF allows separators between '-' and digits; we do not.
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("expected integer");
    geom::Coord v = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      v = v * 10 + (text_[pos_] - '0');
      ++pos_;
    }
    return neg ? -v : v;
  }

  std::optional<geom::Coord> maybeInteger() {
    skipBlanks();
    if (pos_ < text_.size() &&
        (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '-'))
      return integer();
    return std::nullopt;
  }

  /// A name: letters and digits (starts with a letter). Used by L/9/4N/4D;
  /// lower-case letters are accepted in names for readability.
  std::string name() {
    skipBlanksInName();
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '.') {
        out.push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    if (out.empty()) fail("expected name");
    return out;
  }

  /// Everything up to the terminating semicolon, trimmed -- raw payload of
  /// unknown user extensions.
  std::string restOfCommand() {
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != ';') out.push_back(text_[pos_++]);
    while (!out.empty() && std::isspace(static_cast<unsigned char>(out.back())))
      out.pop_back();
    std::size_t b = 0;
    while (b < out.size() && std::isspace(static_cast<unsigned char>(out[b])))
      ++b;
    return out.substr(b);
  }

 private:
  void skipComment() {
    int depth = 0;
    do {
      if (pos_ >= text_.size()) fail("unterminated comment");
      if (text_[pos_] == '(') ++depth;
      if (text_[pos_] == ')') --depth;
      ++pos_;
    } while (depth > 0);
  }

  void skipBlanksInName() {
    // For names, only whitespace separates; stop at anything printable.
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_{0};
};

/// Direction vector -> orientation; only the four axis directions are
/// supported (the DIC data model is Manhattan).
geom::Orient rotationFor(geom::Coord a, geom::Coord b, Cursor& cur) {
  if (a > 0 && b == 0) return geom::Orient::kR0;
  if (a == 0 && b > 0) return geom::Orient::kR90;
  if (a < 0 && b == 0) return geom::Orient::kR180;
  if (a == 0 && b < 0) return geom::Orient::kR270;
  cur.fail("only axis-aligned rotations are supported");
}

class Parser {
 public:
  explicit Parser(std::string_view text) : cur_(text) {}

  CifFile run() {
    CifFile file;
    CifSymbol* scope = &file.top;
    std::string pendingNet;
    std::string layer;

    for (;;) {
      if (cur_.atEnd()) cur_.fail("missing final E command");
      const char c = cur_.take();
      switch (c) {
        case 'E':
          if (scope != &file.top) cur_.fail("E inside symbol definition");
          return file;
        case 'D': {
          const char k = cur_.take();
          if (k == 'S') {
            if (scope != &file.top)
              cur_.fail("nested symbol definitions are not allowed");
            CifSymbol sym;
            sym.id = static_cast<int>(cur_.integer());
            if (auto a = cur_.maybeInteger()) {
              sym.scaleNum = static_cast<int>(*a);
              sym.scaleDen = static_cast<int>(cur_.integer());
              if (sym.scaleNum <= 0 || sym.scaleDen <= 0)
                cur_.fail("invalid DS scale");
            }
            if (file.symbols.count(sym.id))
              cur_.fail("duplicate symbol id " + std::to_string(sym.id));
            auto [it, ok] = file.symbols.emplace(sym.id, std::move(sym));
            (void)ok;
            scope = &it->second;
            layer.clear();
            pendingNet.clear();
          } else if (k == 'F') {
            if (scope == &file.top) cur_.fail("DF without DS");
            scope = &file.top;
            layer.clear();
            pendingNet.clear();
          } else if (k == 'D') {
            cur_.integer();  // DD n: delete definitions -- accepted, ignored
          } else {
            cur_.fail("unknown D command");
          }
          break;
        }
        case 'L':
          layer = cur_.name();
          break;
        case 'B': {
          CifElement e;
          e.kind = CifElement::Kind::kBox;
          e.layer = requireLayer(layer);
          e.length = cur_.integer();
          e.width = cur_.integer();
          e.center = {cur_.integer(), cur_.integer()};
          if (auto dx = cur_.maybeInteger()) {
            const geom::Coord dy = cur_.integer();
            const geom::Orient o = rotationFor(*dx, dy, cur_);
            if (o == geom::Orient::kR90 || o == geom::Orient::kR270)
              std::swap(e.length, e.width);
          }
          if (e.length <= 0 || e.width <= 0) cur_.fail("non-positive box");
          e.net = std::exchange(pendingNet, {});
          scope->elements.push_back(std::move(e));
          break;
        }
        case 'W': {
          CifElement e;
          e.kind = CifElement::Kind::kWire;
          e.layer = requireLayer(layer);
          e.width = cur_.integer();
          if (e.width <= 0) cur_.fail("non-positive wire width");
          while (auto x = cur_.maybeInteger())
            e.path.push_back({*x, cur_.integer()});
          if (e.path.empty()) cur_.fail("wire with no points");
          e.net = std::exchange(pendingNet, {});
          scope->elements.push_back(std::move(e));
          break;
        }
        case 'P': {
          CifElement e;
          e.kind = CifElement::Kind::kPolygon;
          e.layer = requireLayer(layer);
          while (auto x = cur_.maybeInteger())
            e.path.push_back({*x, cur_.integer()});
          if (e.path.size() < 3) cur_.fail("polygon needs >= 3 points");
          e.net = std::exchange(pendingNet, {});
          scope->elements.push_back(std::move(e));
          break;
        }
        case 'R': {
          CifElement e;
          e.kind = CifElement::Kind::kFlash;
          e.layer = requireLayer(layer);
          e.width = cur_.integer();  // diameter
          e.center = {cur_.integer(), cur_.integer()};
          if (e.width <= 0) cur_.fail("non-positive flash");
          e.net = std::exchange(pendingNet, {});
          scope->elements.push_back(std::move(e));
          break;
        }
        case 'C': {
          CifCall call;
          call.symbolId = static_cast<int>(cur_.integer());
          geom::Transform t;  // identity
          for (;;) {
            const char k = cur_.peek();
            if (k == 'T') {
              cur_.take();
              const geom::Coord x = cur_.integer();
              const geom::Coord y = cur_.integer();
              t = geom::compose(t, geom::translate({x, y}));
            } else if (k == 'M') {
              cur_.take();
              const char axis = cur_.take();
              if (axis == 'X')
                t = geom::compose(t, {geom::Orient::kMX, {}});
              else if (axis == 'Y')
                t = geom::compose(t, {geom::Orient::kMY, {}});
              else
                cur_.fail("M must be MX or MY");
            } else if (k == 'R') {
              cur_.take();
              const geom::Coord a = cur_.integer();
              const geom::Coord b = cur_.integer();
              t = geom::compose(t, {rotationFor(a, b, cur_), {}});
            } else {
              break;
            }
          }
          call.transform = t;
          scope->calls.push_back(call);
          break;
        }
        case '9':
          scope->name = cur_.restOfCommand();
          break;
        case '4': {
          const char k = cur_.take();
          if (k == 'N') {
            pendingNet = cur_.name();
          } else if (k == 'D') {
            scope->deviceType = cur_.name();
          } else if (k == 'C') {
            scope->prechecked = true;
          } else if (k == 'P') {
            CifPort p;
            p.name = cur_.name();
            p.layer = cur_.name();
            p.lo = {cur_.integer(), cur_.integer()};
            p.hi = {cur_.integer(), cur_.integer()};
            p.internalGroup = static_cast<int>(cur_.integer());
            scope->ports.push_back(std::move(p));
          } else {
            cur_.restOfCommand();  // other 4x extensions: ignored
          }
          break;
        }
        case '0':
        case '1':
        case '2':
        case '3':
        case '5':
        case '6':
        case '7':
        case '8':
          cur_.restOfCommand();  // unknown user extensions: ignored
          break;
        case ';':
          continue;  // empty command
        default:
          cur_.fail(std::string("unknown command '") + c + "'");
      }
      cur_.expect(';');
    }
  }

 private:
  std::string requireLayer(const std::string& layer) {
    if (layer.empty()) cur_.fail("geometry before any L command");
    return layer;
  }

  Cursor cur_;
};

}  // namespace

CifFile parse(std::string_view text) { return Parser(text).run(); }

}  // namespace dic::cif
