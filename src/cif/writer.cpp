#include "cif/writer.hpp"

#include <sstream>

namespace dic::cif {

namespace {

void writeTransform(std::ostringstream& os, const geom::Transform& t) {
  // Decompose as orientation commands followed by a translation; the
  // parser composes left-to-right so emit mirror/rotation first.
  switch (t.orient) {
    case geom::Orient::kR0: break;
    case geom::Orient::kR90: os << " R 0 1"; break;
    case geom::Orient::kR180: os << " R -1 0"; break;
    case geom::Orient::kR270: os << " R 0 -1"; break;
    case geom::Orient::kMX: os << " M X"; break;
    case geom::Orient::kMY: os << " M Y"; break;
    case geom::Orient::kMX90: os << " M X R 0 1"; break;
    case geom::Orient::kMY90: os << " M Y R 0 1"; break;
  }
  if (t.t.x != 0 || t.t.y != 0) os << " T " << t.t.x << " " << t.t.y;
}

void writeBody(std::ostringstream& os, const CifSymbol& sym) {
  if (!sym.name.empty()) os << "9 " << sym.name << ";\n";
  if (!sym.deviceType.empty()) os << "4D " << sym.deviceType << ";\n";
  if (sym.prechecked) os << "4C;\n";
  for (const CifPort& p : sym.ports) {
    os << "4P " << p.name << " " << p.layer << " " << p.lo.x << " "
       << p.lo.y << " " << p.hi.x << " " << p.hi.y << " "
       << p.internalGroup << ";\n";
  }
  std::string layer;
  for (const CifElement& e : sym.elements) {
    if (e.layer != layer) {
      layer = e.layer;
      os << "L " << layer << ";\n";
    }
    if (!e.net.empty()) os << "4N " << e.net << ";\n";
    switch (e.kind) {
      case CifElement::Kind::kBox:
        os << "B " << e.length << " " << e.width << " " << e.center.x << " "
           << e.center.y << ";\n";
        break;
      case CifElement::Kind::kWire: {
        os << "W " << e.width;
        for (const geom::Point& p : e.path) os << " " << p.x << " " << p.y;
        os << ";\n";
        break;
      }
      case CifElement::Kind::kPolygon: {
        os << "P";
        for (const geom::Point& p : e.path) os << " " << p.x << " " << p.y;
        os << ";\n";
        break;
      }
      case CifElement::Kind::kFlash:
        os << "R " << e.width << " " << e.center.x << " " << e.center.y
           << ";\n";
        break;
    }
  }
  for (const CifCall& c : sym.calls) {
    os << "C " << c.symbolId;
    writeTransform(os, c.transform);
    os << ";\n";
  }
}

}  // namespace

std::string write(const CifFile& file) {
  std::ostringstream os;
  for (const auto& [id, sym] : file.symbols) {
    os << "DS " << id;
    if (sym.scaleNum != 1 || sym.scaleDen != 1)
      os << " " << sym.scaleNum << " " << sym.scaleDen;
    os << ";\n";
    writeBody(os, sym);
    os << "DF;\n";
  }
  writeBody(os, file.top);
  os << "E\n";
  return os.str();
}

}  // namespace dic::cif
