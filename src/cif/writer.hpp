#pragma once
/// \file writer.hpp
/// Serializes a CifFile back to CIF text (round-trips with parser.hpp,
/// including the 4N/4D DIC extensions).

#include <string>

#include "cif/ast.hpp"

namespace dic::cif {

/// Emit CIF text for the file, symbols in id order, ending with `E`.
std::string write(const CifFile& file);

}  // namespace dic::cif
