#pragma once
/// \file ast.hpp
/// Abstract syntax for CIF 2.0 (Sproull, Lyon & Trimberger [8]) with the
/// paper's two extensions:
///   * `4N <name>;` attaches a net identifier to the next primitive element
///   * `4D <type>;` attaches a device type to the enclosing symbol
/// Standard user-extension command `9 <name>;` names a symbol.
///
/// Geometry units are centimicrons, per CIF convention.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "geom/transform.hpp"
#include "geom/types.hpp"

namespace dic::cif {

/// One primitive geometry element with layer and optional net id.
struct CifElement {
  enum class Kind { kBox, kWire, kPolygon, kFlash };

  Kind kind{Kind::kBox};
  std::string layer;  ///< CIF layer name, e.g. "NM"
  std::string net;    ///< from `4N`; empty if anonymous

  // kBox: length (x extent), width (y extent), center. Direction is
  // restricted to the four axis directions and already folded in.
  geom::Coord length{0};
  geom::Coord width{0};
  geom::Point center{};

  // kWire / kPolygon: the path (wire also uses `width`).
  std::vector<geom::Point> path;

  // kFlash: `width` holds the diameter, `center` the position.
};

/// A call (instance) of a symbol with its composed transform.
struct CifCall {
  int symbolId{0};
  geom::Transform transform{};
};

/// A device port declaration (the `4P` extension):
/// `4P <name> <layer> <x1> <y1> <x2> <y2> <group>;`
struct CifPort {
  std::string name;
  std::string layer;
  geom::Point lo{};
  geom::Point hi{};
  int internalGroup{-1};
};

/// A symbol definition (DS ... DF), or the implicit top level.
struct CifSymbol {
  int id{0};
  std::string name;        ///< from `9`
  std::string deviceType;  ///< from `4D`; empty for non-device symbols
  bool prechecked{false};  ///< from `4C`: device marked checked
  int scaleNum{1};
  int scaleDen{1};
  std::vector<CifElement> elements;
  std::vector<CifCall> calls;
  std::vector<CifPort> ports;  ///< from `4P`
};

/// A parsed CIF file: symbol table plus top-level elements/calls.
struct CifFile {
  std::map<int, CifSymbol> symbols;
  CifSymbol top;  ///< id 0, commands outside any DS/DF
};

}  // namespace dic::cif
