#pragma once
/// \file placement.hpp
/// First-class placement for the sharded serving tier.
///
/// Routing used to be an implementation detail — `stableHash(id) %
/// shards` buried inside Server. This header promotes it to an API:
/// every library resolves to a `Placement` (owner shard + current
/// read-replica shards + the active policy), and the pure helpers here
/// are the *only* place the routing rules live:
///
///   - `replicaEligible`: read-only requests (no EditOps anywhere in
///     the submission) may be served by a replica; anything carrying an
///     edit — and addLibrary/dropLibrary by construction — pins to the
///     owner shard.
///   - `pickLeastLoaded`: among the owner and its fresh replicas, pick
///     the shard with the smallest load (queue depth + in-flight); ties
///     break by a deterministic per-library round-robin tick so equal
///     load still spreads instead of always landing on the owner.
///   - `HeatTracker`: count-based promote/demote hysteresis. Every
///     `heatWindow` served requests on a shard, each library's window
///     count is compared against two thresholds — promote at or above
///     `promoteServed`, demote at or below `demoteServed`. The gap
///     between the thresholds is the hysteresis band: a library sitting
///     inside it keeps its current state, so heat hovering near one
///     threshold never flaps.
///
/// Everything here is synchronous, allocation-light, and free of
/// Server state, so the policy is testable without threads or queues
/// (tests/placement_test.cpp). The mechanism — snapshot handoff,
/// invalidation, demotion — lives in Server (docs/server.md,
/// "Placement and replication").

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "service/workspace.hpp"

namespace dic {
namespace server {

/// Stable identity of a registered library (shared with server.hpp).
using LibraryId = std::string;

/// How submissions choose a shard.
enum class RoutingPolicy : std::uint8_t {
  /// Every submission lands on stableHash(id) % shards — the classic
  /// single-owner scheme. No replication ever happens.
  kHash,
  /// Read-only submissions on a replicated library go to the
  /// least-loaded shard among {owner, fresh replicas}; edits and
  /// everything else still pin to the owner. Libraries promote to
  /// replicas when hot and demote when they cool (HeatTracker).
  kLeastLoadedReplica,
};

/// Human-readable policy name ("hash", "least-loaded-replica").
std::string toString(RoutingPolicy p);

/// Replication + routing knobs (nested in ServerOptions::routing).
struct RoutingOptions {
  /// The active policy. The default keeps the server byte-for-byte on
  /// the pre-replication behavior.
  RoutingPolicy policy{RoutingPolicy::kHash};
  /// Read-replica count a hot library is promoted to (beyond the
  /// owner), clamped to shards - 1. With one shard promotion is a
  /// no-op.
  int replicas{1};
  /// Served-request window between promote/demote evaluations on a
  /// shard. Count-based — not time-based — so tests and replays are
  /// deterministic. 0 disables evaluation entirely.
  std::size_t heatWindow{32};
  /// Promote a library when it served >= this many requests within one
  /// window. Must exceed demoteServed (the ctor-normalized ServerOptions
  /// enforces it); the gap is the no-flap hysteresis band.
  std::size_t promoteServed{16};
  /// Demote a replicated library when it served <= this many requests
  /// within one window (cache bytes on the replica shards are
  /// reclaimed when the last reference drains).
  std::size_t demoteServed{4};
};

/// Where a library lives right now: its owner shard, the shards holding
/// a *fresh* (serving) read replica, and the policy that produced the
/// answer. Stale replicas — invalidated by an owner edit, not yet
/// re-snapshotted — are not listed: they exist but receive no traffic.
struct Placement {
  int owner{-1};
  std::vector<int> replicas;  ///< fresh replica shards, ascending
  RoutingPolicy policy{RoutingPolicy::kHash};
};

/// The replica-eligibility rule, in exactly one place: a submission may
/// be served by a read replica iff no request in it carries EditOps.
/// (A batch is one queue job on one shard, so one edit anywhere pins
/// the whole batch to the owner.)
bool replicaEligible(const std::vector<CheckRequest>& reqs);

/// Deterministic least-loaded choice among the owner and its fresh
/// replicas. Candidates are considered in order (owner first, then
/// `p.replicas` as given); the minimum of `loadByShard` wins, and ties
/// break round-robin by `rrTick % tied.size()` over the tied candidates
/// in that same order. Shards outside loadByShard's range are skipped
/// defensively; with no valid candidate the owner is returned.
int pickLeastLoaded(const Placement& p,
                    const std::vector<std::size_t>& loadByShard,
                    std::uint64_t rrTick);

/// Count-based promote/demote hysteresis over one shard's served
/// stream. Not thread-safe — the Server drives it from the shard's
/// single serving thread (under the shard mutex), and tests drive it
/// directly.
class HeatTracker {
 public:
  HeatTracker() = default;
  explicit HeatTracker(const RoutingOptions& opts) : opts_(opts) {}

  /// One evaluation outcome: promote (true) or demote (false) `id`.
  struct Decision {
    LibraryId id;
    bool promote{false};
  };

  /// Record `n` served requests for `id`. When the window fills
  /// (>= heatWindow served in total), evaluates every library seen this
  /// window plus every currently-hot library, resets the window, and
  /// returns the state *changes* in library-id order: promote decisions
  /// for cold libraries at/above promoteServed, demote decisions for
  /// hot libraries at/below demoteServed (including hot libraries the
  /// window never saw). Libraries between the thresholds keep their
  /// state — that silence is the hysteresis.
  std::vector<Decision> recordServed(const LibraryId& id, std::size_t n = 1);

  /// True while `id` is in the promoted (replicated) state.
  bool isHot(const LibraryId& id) const { return hot_.count(id) > 0; }

  /// Served requests accumulated toward the current window (0 right
  /// after a window closes — the caller's "evaluation just ran" signal).
  std::size_t windowFill() const { return windowServed_; }

  /// Forget `id` entirely (dropLibrary): no further decisions mention it.
  void forget(const LibraryId& id);

 private:
  RoutingOptions opts_;
  std::size_t windowServed_{0};
  std::map<LibraryId, std::size_t> window_;  ///< served this window
  std::set<LibraryId> hot_;                  ///< currently promoted
};

}  // namespace server
}  // namespace dic
