#pragma once
/// \file queue.hpp
/// The serving tier's bounded MPMC submit queue: a mutex + two-condvar
/// ring with an explicit close protocol. Any number of producers
/// (client threads calling Server::submit) feed any number of consumers
/// (in practice one serving thread per shard); capacity is the
/// backpressure boundary — tryPush gives the reject policy, pushBlocking
/// the block policy. close() starts the drain phase of the server's
/// two-phase shutdown: producers are turned away, consumers keep popping
/// until the queue is empty and only then see "finished".
///
/// Tasks here are whole check requests (milliseconds and up), so a
/// mutex-guarded deque is the right tool — lock-free ring machinery
/// would buy nothing measurable and cost the close/drain semantics their
/// simplicity.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace dic::server {

/// Outcome of a push attempt.
enum class PushResult {
  kOk,      ///< enqueued
  kFull,    ///< bounded capacity reached (tryPush only)
  kClosed,  ///< queue closed — the server is shutting down
};

/// A bounded multi-producer/multi-consumer FIFO of T.
template <typename T>
class BoundedQueue {
 public:
  /// capacity == 0 is clamped to 1 (a zero-slot queue could never
  /// accept work).
  explicit BoundedQueue(std::size_t capacity)
      : cap_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Reject policy: enqueue if there is room, fail fast otherwise.
  /// Moves from `v` only on kOk, so the caller keeps the value (and its
  /// promise) on kFull/kClosed.
  PushResult tryPush(T& v) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (q_.size() >= cap_) return PushResult::kFull;
      q_.push_back(std::move(v));
    }
    notEmpty_.notify_one();
    return PushResult::kOk;
  }

  /// Block policy: wait for room (or for close). Moves from `v` only on
  /// kOk.
  PushResult pushBlocking(T& v) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      notFull_.wait(lock, [&] { return closed_ || q_.size() < cap_; });
      if (closed_) return PushResult::kClosed;
      q_.push_back(std::move(v));
    }
    notEmpty_.notify_one();
    return PushResult::kOk;
  }

  /// Consumer side: blocks until an item is available or the queue is
  /// closed AND drained. Returns false only in the latter case — after a
  /// close, every item that was accepted is still handed out, which is
  /// what lets shutdown drain in-flight work instead of dropping it.
  bool pop(T& out) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      notEmpty_.wait(lock, [&] { return closed_ || !q_.empty(); });
      if (q_.empty()) return false;  // closed and drained
      out = std::move(q_.front());
      q_.pop_front();
    }
    notFull_.notify_one();
    return true;
  }

  /// Phase-one shutdown: no new pushes succeed; pops continue to drain
  /// what was accepted. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  /// Items currently queued (a snapshot; the stats surface).
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  /// The configured capacity.
  std::size_t capacity() const { return cap_; }

 private:
  const std::size_t cap_;
  mutable std::mutex mu_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<T> q_;
  bool closed_{false};
};

}  // namespace dic::server
