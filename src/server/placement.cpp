#include "server/placement.hpp"

#include <algorithm>

namespace dic {
namespace server {

std::string toString(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::kHash:
      return "hash";
    case RoutingPolicy::kLeastLoadedReplica:
      return "least-loaded-replica";
  }
  return "unknown";
}

bool replicaEligible(const std::vector<CheckRequest>& reqs) {
  for (const CheckRequest& r : reqs)
    if (!r.edits.empty()) return false;
  return true;
}

int pickLeastLoaded(const Placement& p,
                    const std::vector<std::size_t>& loadByShard,
                    std::uint64_t rrTick) {
  const int n = static_cast<int>(loadByShard.size());
  // Candidates in deterministic order: owner first, then replicas as
  // listed. The order matters only for tie-breaking.
  std::vector<int> cand;
  cand.reserve(p.replicas.size() + 1);
  if (p.owner >= 0 && p.owner < n) cand.push_back(p.owner);
  for (int r : p.replicas)
    if (r >= 0 && r < n && r != p.owner) cand.push_back(r);
  if (cand.empty()) return p.owner;

  std::size_t best = loadByShard[static_cast<std::size_t>(cand.front())];
  for (int c : cand)
    best = std::min(best, loadByShard[static_cast<std::size_t>(c)]);

  std::vector<int> tied;
  for (int c : cand)
    if (loadByShard[static_cast<std::size_t>(c)] == best) tied.push_back(c);
  return tied[static_cast<std::size_t>(rrTick % tied.size())];
}

std::vector<HeatTracker::Decision> HeatTracker::recordServed(
    const LibraryId& id, std::size_t n) {
  std::vector<Decision> out;
  if (opts_.heatWindow == 0) return out;
  window_[id] += n;
  windowServed_ += n;
  if (windowServed_ < opts_.heatWindow) return out;

  // Window closed: evaluate every library seen this window plus every
  // hot library (a hot library absent from the window served 0 — the
  // strongest demote signal there is). Both containers iterate in id
  // order, and the merge below preserves it, so decisions are
  // deterministic.
  auto countOf = [this](const LibraryId& lib) {
    auto it = window_.find(lib);
    return it == window_.end() ? std::size_t{0} : it->second;
  };
  std::set<LibraryId> seen;
  for (const auto& [lib, served] : window_) seen.insert(lib), (void)served;
  for (const LibraryId& lib : hot_) seen.insert(lib);
  for (const LibraryId& lib : seen) {
    const std::size_t served = countOf(lib);
    const bool isHot = hot_.count(lib) > 0;
    if (!isHot && served >= opts_.promoteServed) {
      hot_.insert(lib);
      out.push_back({lib, true});
    } else if (isHot && served <= opts_.demoteServed) {
      hot_.erase(lib);
      out.push_back({lib, false});
    }
  }
  window_.clear();
  windowServed_ = 0;
  return out;
}

void HeatTracker::forget(const LibraryId& id) {
  window_.erase(id);
  hot_.erase(id);
}

}  // namespace server
}  // namespace dic
