#pragma once
/// \file server.hpp
/// The sharded multi-library check-serving tier.
///
/// A dic::Workspace is one library's checking session; a
/// `dic::server::Server` is the process that serves many of them under
/// concurrent traffic. It owns N shards — each with its own persistent
/// engine::Executor pool, its own bounded submit queue, and one serving
/// thread driving the shard's Workspaces — and routes every submission
/// through the placement layer (placement.hpp): each library has an
/// owner shard (a stable hash of its id) where its edits and state
/// live, and — under RoutingPolicy::kLeastLoadedReplica — hot libraries
/// are promoted to read-only replicas on other shards, with read-only
/// requests going to the least-loaded shard among {owner, fresh
/// replicas}. Under the default hash policy every request lands on the
/// owner, exactly the classic single-owner behavior.
///
/// The front door is asynchronous: `submit` returns a
/// std::future<CheckResult>, `submitBatch` a future for the whole batch
/// (dispatched through Workspace::runBatch, so the batch's requests
/// overlap on the shard pool). Backpressure is explicit: each shard
/// queue is bounded, and a full queue either blocks the submitter or
/// rejects with a CheckResult whose error is kErrQueueFull, per
/// ServerOptions::overflow. Shutdown is two-phase: close the intake,
/// then drain — every accepted request completes with a real result.
/// The full contract lives in docs/server.md.

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "server/placement.hpp"
#include "service/workspace.hpp"

namespace dic {
/// \namespace dic::server
/// The sharded multi-library serving tier on top of dic::Workspace.
namespace server {

// LibraryId lives in placement.hpp (the routing layer names libraries
// too); re-documented here: the stable identity of a registered
// library. Routing hashes it with a fixed function (stableHash), so a
// given id maps to the same owner shard in every process and run —
// unlike std::hash, which may differ per implementation.

/// FNV-1a 64-bit: the stable routing hash over LibraryId bytes.
std::uint64_t stableHash(const LibraryId& id);

/// What a full submit queue does to a new submission.
enum class OverflowPolicy : std::uint8_t {
  kBlock,   ///< the submitting thread waits for a queue slot
  kReject,  ///< the future completes immediately with kErrQueueFull
};

/// Machine-checkable CheckResult::error values for server-level
/// failures (the check itself never ran).
inline constexpr const char* kErrQueueFull = "QueueFull";
inline constexpr const char* kErrLibraryNotFound = "LibraryNotFound";
inline constexpr const char* kErrServerStopped = "ServerStopped";

/// Queue/backpressure knobs, one per-shard group (nested in
/// ServerOptions::queue).
struct QueueOptions {
  /// Bounded submit-queue capacity per shard, in jobs (a submitBatch
  /// occupies one slot). The backpressure boundary.
  std::size_t capacity{256};
  /// Full-queue behavior.
  OverflowPolicy overflow{OverflowPolicy::kBlock};
};

/// Server construction knobs, grouped: sizing at the top level, queue/
/// backpressure under `queue`, placement/replication under `routing`.
/// The old flat fields survive as deprecated aliases — when a flat
/// field is set away from its default and the nested one is not, the
/// constructor copies the flat value into the nested group, so existing
/// callers keep working unchanged. New code should set the nested
/// groups; the aliases go away in a later release.
struct ServerOptions {
  /// Shard count. <= 0 selects half the hardware threads, clamped to
  /// [1, 8] — enough shards to spread libraries without starving each
  /// shard's pool.
  int shards{0};
  /// Worker-pool size of each shard's executor (WorkspaceOptions
  /// semantics: <= 0 hardware concurrency, 1 serial). Every Workspace
  /// on the shard shares this one pool.
  int threadsPerShard{0};
  /// Queue/backpressure knobs (capacity, overflow policy).
  QueueOptions queue{};
  /// Placement policy and hot-library replication knobs
  /// (placement.hpp). The default — hash routing — reproduces the
  /// pre-replication server exactly.
  RoutingOptions routing{};
  /// Per-library Workspace view-cache cap, bytes
  /// (WorkspaceOptions::maxCacheBytes; 0 = unbounded). The knob that
  /// keeps long-running shards' memory flat. Applies to replica
  /// Workspaces too.
  std::size_t maxCacheBytesPerLibrary{0};
  /// Slow-request hook threshold, seconds of end-to-end latency (queue
  /// wait + service). A job at or above it gets one stderr log line
  /// (request/trace id, library, wait/service split, top-3 spans) and
  /// its trace retained past ring churn (obs::Tracer::retain). 0 (the
  /// default) disables the hook entirely.
  double slowRequestSeconds{0};

  /// \deprecated Flat alias of queue.capacity; read only when it is set
  /// away from its default while queue.capacity is not.
  std::size_t queueCapacity{256};
  /// \deprecated Flat alias of queue.overflow, same rule.
  OverflowPolicy overflow{OverflowPolicy::kBlock};
};

/// Per-library serving heat *on one shard* — the direct input to
/// hot-library replication decisions, and (since replication landed)
/// the per-replica served breakdown: a replicated library has a heat
/// entry on every shard that served it, each counting only that shard's
/// traffic. Summing a library's entries across shards gives its global
/// counts, which are also mirrored as monotonic counters in the metrics
/// registry ("library.<id>.served" etc.; replica-shard traffic
/// additionally feeds "library.<id>.replica_served"). p95 comes from a
/// per-(shard, library) ring of recent end-to-end latencies.
struct LibraryHeat {
  LibraryId id;               ///< the library
  std::size_t served{0};      ///< requests this shard completed for it
  std::size_t rejected{0};    ///< requests this shard refused (kErrQueueFull)
  std::uint64_t bytes{0};     ///< approx. result bytes served by this shard
  double p95Seconds{0};       ///< tail end-to-end latency (recent window)
  int ownerShard{-1};         ///< the library's owner shard
  /// Shards currently holding a *fresh* read replica (ascending; empty
  /// under hash routing or when the library is cold/stale).
  std::vector<int> replicaShards;
};

/// One shard's observability snapshot.
struct ShardStats {
  std::size_t libraries{0};     ///< registered (owned) libraries on this shard
  std::size_t replicas{0};      ///< read-replica Workspaces hosted here
  std::size_t queueDepth{0};    ///< jobs waiting right now
  std::size_t submitted{0};     ///< requests accepted (batch = its size)
  std::size_t served{0};        ///< requests completed
  std::size_t rejected{0};      ///< requests refused with kErrQueueFull
  /// Accepted requests that completed with a server-level error instead
  /// of being served (the library was dropped before they reached the
  /// front). Keeps the books balanced: submitted == served + failed +
  /// currently queued/in-flight.
  std::size_t failed{0};
  double p50Seconds{0};         ///< median end-to-end latency (queue + service)
  double p95Seconds{0};         ///< tail end-to-end latency
  double meanQueueWaitSeconds{0};  ///< mean time jobs sat queued
  double meanServiceSeconds{0};    ///< mean time jobs spent being served
  std::size_t cacheBytes{0};    ///< accounted view-cache bytes, all libraries
  /// Per-library heat on this shard, sorted by library id.
  std::vector<LibraryHeat> heat;
};

/// Whole-server snapshot (per shard plus totals).
struct ServerStats {
  std::vector<ShardStats> shards;

  std::size_t totalServed() const {
    std::size_t n = 0;
    for (const ShardStats& s : shards) n += s.served;
    return n;
  }
  std::size_t totalRejected() const {
    std::size_t n = 0;
    for (const ShardStats& s : shards) n += s.rejected;
    return n;
  }
  std::size_t totalFailed() const {
    std::size_t n = 0;
    for (const ShardStats& s : shards) n += s.failed;
    return n;
  }
  std::size_t totalCacheBytes() const {
    std::size_t n = 0;
    for (const ShardStats& s : shards) n += s.cacheBytes;
    return n;
  }
};

/// The sharded check server. Thread-safe for every public member:
/// submissions, registration, and stats may race freely from any number
/// of client threads. Results are byte-identical to running the same
/// requests sequentially on a per-library Workspace — each library's
/// requests execute on one shard thread over one Workspace, and the
/// engine's determinism contract covers the pool underneath.
class Server {
 public:
  explicit Server(ServerOptions options = {});
  /// Destruction shuts down (two-phase: intake closed, queues drained).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register a library under `id` (takes ownership; the Workspace is
  /// created on the owning shard). Returns false — and takes nothing —
  /// if the id is already registered or the server is shutting down.
  bool addLibrary(const LibraryId& id, layout::Library lib,
                  tech::Technology tech);

  /// Unregister `id`. The removal is atomic with respect to serving: a
  /// request either sees the library and runs to completion, or
  /// completes with kErrLibraryNotFound — never a half-dropped state.
  /// An in-flight request on the dropped library finishes first (it
  /// shares ownership of the Workspace); queued requests that reach the
  /// front after the drop report kErrLibraryNotFound. Returns false if
  /// the id was not registered.
  bool dropLibrary(const LibraryId& id);

  /// Registered library count, all shards.
  std::size_t libraryCount() const;

  /// Where `id` lives right now: its owner shard (stableHash(id) %
  /// shardCount()), the shards holding a fresh read replica, and the
  /// active routing policy. This is the routing contract surface —
  /// read-only submissions may be served by any listed shard, edits and
  /// add/dropLibrary always go to `owner` (docs/server.md, "Placement
  /// and replication"). The snapshot is instantaneous: replication
  /// decisions on the serving threads may change it between calls.
  Placement placementOf(const LibraryId& id) const;

  /// \deprecated Thin shim for placementOf(id).owner — the owner shard
  /// only, which is no longer the whole routing story once replication
  /// is on. Kept for one release; migrate to placementOf().
  int shardOf(const LibraryId& id) const { return placementOf(id).owner; }
  /// Number of shards.
  int shardCount() const { return static_cast<int>(shards_.size()); }

  /// Submit one request for `id`'s library. Always returns a valid
  /// future. Server-level failures (queue full under kReject, unknown
  /// library, stopped server) come back through the future as a
  /// CheckResult with the corresponding kErr* string in `error` — the
  /// same per-request error channel the Workspace uses, so callers
  /// handle one shape.
  ///
  /// Edits ride the request: a CheckRequest carrying EditOps routes to
  /// the owning shard like any other submission, and the shard's single
  /// serving thread applies the edits to the library and then checks —
  /// so edit-then-check requests serialize with the library's plain
  /// checks in queue order, and concurrent submitters always observe a
  /// coherent post- or pre-edit result, never a torn one. The serving
  /// Workspace patches its cached view in place when the edit qualifies
  /// (docs/server.md, "Edit routing").
  std::future<CheckResult> submit(const LibraryId& id, CheckRequest req);

  /// submit() with a completion callback instead of a future: `done` is
  /// invoked exactly once with the result — on the owning shard's
  /// serving thread for served requests, or inline on the submitting
  /// thread for immediate failures (stopped server, full queue under
  /// kReject). This is the network tier's drain hook: a net session
  /// hands every decoded frame here and gets told the moment the result
  /// exists, in true completion order, with no future polling. The
  /// callback must not throw and must not block the serving thread on
  /// slow work (a session callback just moves the result to its writer
  /// queue). Under kBlock a full queue blocks the submitting thread,
  /// exactly like submit() — which is what lets a session apply TCP
  /// backpressure by simply pausing its reader.
  void submitAsync(const LibraryId& id, CheckRequest req,
                   std::function<void(CheckResult)> done);

  /// True while the intake is open (before shutdown()). Sessions use
  /// this to refuse new work during a drain without racing the
  /// queue-close handshake.
  bool accepting() const {
    return accepting_.load(std::memory_order_acquire);
  }

  /// Submit a batch for `id`'s library as one queue job. The shard runs
  /// it through the decomposed Workspace::runBatch: every request's
  /// inner stages (view warm-up, netlist extraction, checks, merge)
  /// feed the shard's batch-wide ready-queue dispatcher with shared
  /// view/netlist prefetch stages, so one request's checks overlap
  /// another's extraction on the shard pool and a failing request is
  /// isolated mid-graph. Results come back in request order,
  /// byte-identical to sequential per-request runs. On a server-level
  /// failure every slot of the returned vector carries the kErr*
  /// result.
  std::future<std::vector<CheckResult>> submitBatch(
      const LibraryId& id, std::vector<CheckRequest> reqs);

  /// Two-phase shutdown. Phase 1: the intake closes — every later (or
  /// racing) submit completes with kErrServerStopped. Phase 2: each
  /// shard's queue drains — all accepted jobs are served to completion —
  /// and the serving threads join. Idempotent; the destructor calls it.
  void shutdown();

  /// Observability snapshot: queue depths, served/rejected counts,
  /// p50/p95 end-to-end latency, queue-wait vs service split, accounted
  /// cache bytes, and per-library heat, per shard. Callable any time,
  /// including after shutdown (counters freeze at their final values).
  ServerStats stats() const;

  /// The server's metrics registry. Hot-path counters ("server.*",
  /// "library.<id>.*") and latency histograms update live; the listener
  /// publishes its own stats here too. Exposed so embedders can add
  /// their own metrics alongside.
  obs::Registry& metrics() { return metrics_; }

  /// Registry capture for the kMetrics wire frame: refreshes the
  /// snapshot-style gauges (queue depth, cache bytes, cache hit
  /// counters) from live state, then returns metrics().snapshot() —
  /// name-sorted, so counter-only subsets (the per-library heat) are
  /// byte-stable across identical runs.
  obs::MetricsSnapshot metricsSnapshot() const;

  /// The normalized options the server actually runs with: deprecated
  /// flat aliases folded into their nested groups, replica count
  /// clamped to shards - 1, promoteServed forced above demoteServed.
  const ServerOptions& options() const { return opts_; }

 private:
  struct Shard;
  struct Job;

  /// One read replica of a library: where it lives, the Workspace
  /// serving it, and whether an owner edit has invalidated it since its
  /// snapshot (stale replicas receive no new traffic until refreshed).
  struct ReplicaSlot {
    int shard{-1};
    std::shared_ptr<Workspace> ws;
    bool stale{false};
    std::uint64_t revision{0};  ///< library revision of the snapshot
  };
  /// A replicated library's slots plus its round-robin tie-break tick.
  struct PlacementEntry {
    std::vector<ReplicaSlot> slots;  ///< ascending shard order
    std::uint64_t rr{0};
  };
  /// Where one submission goes: the target shard, and — for a
  /// replica-routed job — the replica Workspace bound at admission (so
  /// a later demotion cannot strand the queued job; the Workspace lives
  /// until the job drains).
  struct RouteTarget {
    int shard{0};
    std::shared_ptr<Workspace> replica;  ///< null = owner-routed
  };

  int ownerShardOf(const LibraryId& id) const {
    return static_cast<int>(stableHash(id) % shards_.size());
  }
  /// The single place the routing rules run: owner pinning for edits,
  /// least-loaded replica choice for read-only submissions.
  RouteTarget route(const LibraryId& id,
                    const std::vector<CheckRequest>& reqs);
  /// The shared submit preamble: accepting check, route, enqueue, and
  /// all accept/reject/closed bookkeeping. Every entry point
  /// (submit/submitAsync/submitBatch) is a thin wrapper over this.
  void dispatch(Job&& job);
  void serveLoop(Shard& shard);
  /// Promote `id` to routing.replicas read replicas (snapshot handoff +
  /// warm hint). Runs on the owner's serving thread only.
  void promoteLibrary(Shard& owner, const LibraryId& id);
  /// Drop every replica of `id`; cache bytes free as references drain.
  void demoteLibrary(const LibraryId& id);
  /// Re-snapshot `id`'s stale replicas in place (still-hot libraries
  /// whose owner was edited). Runs on the owner's serving thread only.
  void refreshReplicas(Shard& owner, const LibraryId& id);
  /// Mark every replica of `id` stale. Called *before* an edit's result
  /// is delivered, so a client that observed the edit can never have a
  /// later read served from a pre-edit snapshot.
  void invalidateReplicas(const LibraryId& id);
  /// Close one heat window's decisions on `owner`'s serving thread.
  void applyHeatDecisions(Shard& owner,
                          const std::vector<HeatTracker::Decision>& ds);

  ServerOptions opts_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> accepting_{true};
  std::once_flag shutdownOnce_;
  mutable obs::Registry metrics_;  ///< live counters + snapshot gauges
  /// Replicated-library table. Lock order: placementMu_ may be held
  /// while taking a Shard::mu, never the reverse.
  mutable std::mutex placementMu_;
  std::map<LibraryId, PlacementEntry> placements_;
};

}  // namespace server
}  // namespace dic
