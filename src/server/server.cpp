#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <thread>
#include <utility>

#include "engine/arena.hpp"
#include "obs/trace.hpp"
#include "server/queue.hpp"

namespace dic {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// A server-level failure result for one request (the check never ran).
CheckResult errorResult(const CheckRequest& req, const char* err) {
  CheckResult r;
  r.kind = req.kind;
  r.root = req.root;
  r.tag = req.tag;
  r.error = err;
  return r;
}

std::vector<CheckResult> errorResults(const std::vector<CheckRequest>& reqs,
                                      const char* err) {
  std::vector<CheckResult> out;
  out.reserve(reqs.size());
  for (const CheckRequest& r : reqs) out.push_back(errorResult(r, err));
  return out;
}

/// Latency samples kept per shard for the p50/p95 snapshot: a fixed ring
/// of the most recent jobs, so long-running servers report current — not
/// lifetime-averaged — tails without unbounded storage.
constexpr std::size_t kLatencyWindow = 1024;

/// Per-library latency ring depth (LibraryHeat::p95Seconds). Smaller
/// than the shard ring: many libraries share one shard.
constexpr std::size_t kHeatLatencyWindow = 256;

/// Approximate serialized size of one result — what LibraryHeat::bytes
/// accumulates. Mirrors the wire envelope's shape (fixed fields plus the
/// variable strings) without paying for an actual encode; deterministic
/// for deterministic results, which is what makes the heat counters
/// byte-stable over the kMetrics frame.
std::uint64_t approxResultBytes(const CheckResult& r) {
  std::uint64_t b = 64 + r.error.size() + r.tag.size();
  for (const report::Violation& v : r.report.violations())
    b += 44 + v.rule.size() + v.cell.size() + v.message.size();
  return b;
}

double p95Of(std::vector<double> lat) {
  if (lat.empty()) return 0;
  std::sort(lat.begin(), lat.end());
  return lat[std::min(lat.size() - 1,
                      static_cast<std::size_t>(
                          static_cast<double>(lat.size()) * 0.95))];
}

}  // namespace

std::uint64_t stableHash(const LibraryId& id) {
  // FNV-1a 64-bit. std::hash is deliberately not used: its value may
  // change across standard libraries and process runs, and routing must
  // be stable so a library's owner shard — and its warm caches —
  // survive.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// One queue job: a single request or a whole batch, with its promise
/// and the enqueue timestamp the wait/service split is measured from.
/// Replica-routed jobs carry their Workspace, bound at admission — a
/// demotion between admission and service cannot strand them, and the
/// replica's cache bytes live exactly until the last such job drains.
struct Server::Job {
  LibraryId lib;
  std::vector<CheckRequest> reqs;
  bool isBatch{false};
  /// A promotion warm hint instead of client work: the serving thread
  /// builds `replicaWs`'s view for `warmRoot` and moves on — no
  /// promise, no stats. Best-effort by construction (pushed with
  /// tryPush; a full queue just skips the warm-up).
  bool warm{false};
  layout::CellId warmRoot{0};
  std::promise<CheckResult> single;
  std::promise<std::vector<CheckResult>> batch;
  /// Completion hook for submitAsync jobs: when set, the result is
  /// delivered here instead of through `single` (net sessions ride
  /// this; the callback runs on the serving thread, or inline on the
  /// submitter for immediate failures).
  std::function<void(CheckResult)> done;
  /// The read replica serving this job, or null for owner-routed jobs
  /// (which resolve the owner's Workspace map at serve time, preserving
  /// dropLibrary's atomic-handoff semantics).
  std::shared_ptr<Workspace> replicaWs;
  Clock::time_point enqueued{};

  void deliverSingle(CheckResult&& r) {
    if (done)
      done(std::move(r));
    else
      single.set_value(std::move(r));
  }

  void fail(const char* err) {
    if (isBatch)
      batch.set_value(errorResults(reqs, err));
    else
      deliverSingle(errorResult(reqs.front(), err));
  }
};

struct Server::Shard {
  Shard(int index_, const ServerOptions& opts)
      : index(index_),
        exec(opts.threadsPerShard),
        queue(opts.queue.capacity),
        tracker(opts.routing) {}

  const int index;        ///< this shard's position in Server::shards_
  engine::Executor exec;  ///< the shard's worker pool, shared by its Workspaces
  BoundedQueue<Job> queue;
  std::thread thread;  ///< the serving thread (drives Workspaces serially)
  /// 1 while the serving thread is inside a job. queue.size() + inFlight
  /// is the load signal the least-loaded router reads.
  std::atomic<std::size_t> inFlight{0};

  /// Per-library heat bookkeeping on this shard. The global monotonic
  /// counters live in the server's metrics registry (named
  /// "library.<id>.*", summed across shards) and are cached here as
  /// pointers so the hot path is a relaxed add, not a map lookup; the
  /// shard-local counts (what ServerStats::heat reports — the
  /// per-replica served breakdown) and the latency ring are shard-local
  /// under mu.
  struct Heat {
    obs::Counter* served{nullptr};
    obs::Counter* rejected{nullptr};
    obs::Counter* bytes{nullptr};
    /// "library.<id>.replica_served": traffic this library received on
    /// non-owner shards. Resolved lazily on the first replica-served
    /// job.
    obs::Counter* replicaServed{nullptr};
    std::size_t servedHere{0};      ///< requests this shard completed
    std::size_t rejectedHere{0};    ///< requests this shard refused
    std::uint64_t bytesHere{0};     ///< result bytes this shard served
    layout::CellId lastRoot{0};     ///< most recent root (warm-handoff hint)
    std::vector<double> latency;    ///< end-to-end ring, kHeatLatencyWindow
    std::size_t latencyNext{0};
  };

  mutable std::mutex mu;  ///< guards workspaces/replicas + the state below
  std::map<LibraryId, std::shared_ptr<Workspace>> workspaces;
  /// Read-replica Workspaces hosted on this shard for libraries owned
  /// elsewhere (the placement table under Server::placementMu_ is the
  /// routing source of truth; this map feeds stats and keeps current
  /// replicas alive).
  std::map<LibraryId, std::shared_ptr<Workspace>> replicas;
  std::map<LibraryId, Heat> heat;  ///< survives dropLibrary (history)
  /// Promote/demote hysteresis over this shard's served stream
  /// (owner-side; driven only by the serving thread, under mu).
  HeatTracker tracker;
  std::size_t submitted{0};
  std::size_t served{0};
  std::size_t rejected{0};
  std::size_t failed{0};  ///< accepted but library dropped before serving
  double sumQueueWait{0};
  double sumService{0};
  std::size_t jobCount{0};
  std::vector<double> latency;  ///< end-to-end ring, kLatencyWindow deep
  std::size_t latencyNext{0};

  /// Find-or-create a library's heat slot (call with mu held); the
  /// registry counters are resolved once and cached.
  Heat& heatFor(obs::Registry& reg, const LibraryId& id) {
    auto it = heat.find(id);
    if (it == heat.end()) {
      Heat h;
      h.served = &reg.counter("library." + id + ".served");
      h.rejected = &reg.counter("library." + id + ".rejected");
      h.bytes = &reg.counter("library." + id + ".bytes");
      it = heat.emplace(id, std::move(h)).first;
    }
    return it->second;
  }
};

Server::Server(ServerOptions options) : opts_(options) {
  int n = opts_.shards;
  if (n <= 0)
    n = std::clamp(engine::Executor::hardwareThreads() / 2, 1, 8);
  opts_.shards = n;
  // Deprecated flat aliases: a flat field set away from its default
  // wins over an untouched nested field; afterwards the aliases mirror
  // the effective values so readers of either see one truth.
  const ServerOptions defaults;
  if (opts_.queue.capacity == defaults.queue.capacity &&
      opts_.queueCapacity != defaults.queueCapacity)
    opts_.queue.capacity = opts_.queueCapacity;
  if (opts_.queue.overflow == defaults.queue.overflow &&
      opts_.overflow != defaults.overflow)
    opts_.queue.overflow = opts_.overflow;
  opts_.queueCapacity = opts_.queue.capacity;
  opts_.overflow = opts_.queue.overflow;
  // Routing normalization: hysteresis requires promote > demote (equal
  // thresholds would flap), and more replicas than non-owner shards is
  // meaningless.
  RoutingOptions& r = opts_.routing;
  if (r.replicas < 1) r.replicas = 1;
  if (n > 1) r.replicas = std::min(r.replicas, n - 1);
  if (r.promoteServed <= r.demoteServed) r.promoteServed = r.demoteServed + 1;
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>(i, opts_));
  for (auto& s : shards_)
    s->thread = std::thread([this, sh = s.get()] { serveLoop(*sh); });
}

Server::~Server() { shutdown(); }

Placement Server::placementOf(const LibraryId& id) const {
  Placement p;
  p.owner = ownerShardOf(id);
  p.policy = opts_.routing.policy;
  std::lock_guard<std::mutex> lock(placementMu_);
  auto it = placements_.find(id);
  if (it != placements_.end())
    for (const ReplicaSlot& s : it->second.slots)
      if (!s.stale) p.replicas.push_back(s.shard);
  return p;
}

bool Server::addLibrary(const LibraryId& id, layout::Library lib,
                        tech::Technology tech) {
  if (!accepting_.load(std::memory_order_acquire)) return false;
  Shard& s = *shards_[static_cast<std::size_t>(ownerShardOf(id))];
  WorkspaceOptions wopts;
  wopts.maxCacheBytes = opts_.maxCacheBytesPerLibrary;
  auto ws = std::make_shared<Workspace>(std::move(lib), std::move(tech),
                                        s.exec, wopts);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.workspaces.emplace(id, std::move(ws)).second;
}

bool Server::dropLibrary(const LibraryId& id) {
  Shard& s = *shards_[static_cast<std::size_t>(ownerShardOf(id))];
  bool erased;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    // Erasing the map reference is the whole handoff: the serving
    // thread resolves the Workspace under this mutex per job, and an
    // in-flight job holds its own shared_ptr, so the Workspace (and the
    // library it owns) is destroyed only after the last in-flight
    // request completes.
    erased = s.workspaces.erase(id) > 0;
    s.tracker.forget(id);
  }
  // Replicas go with the owner. Queued replica-routed jobs admitted
  // before this point still complete (they carry their Workspace) —
  // the same "admitted while live runs to completion" rule the owner
  // path has.
  demoteLibrary(id);
  return erased;
}

std::size_t Server::libraryCount() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->workspaces.size();
  }
  return n;
}

Server::RouteTarget Server::route(const LibraryId& id,
                                  const std::vector<CheckRequest>& reqs) {
  RouteTarget t;
  t.shard = ownerShardOf(id);
  // The eligibility rule, applied in exactly one place: only read-only
  // submissions under the replica policy may leave the owner.
  if (opts_.routing.policy != RoutingPolicy::kLeastLoadedReplica ||
      !replicaEligible(reqs))
    return t;
  std::lock_guard<std::mutex> lock(placementMu_);
  auto it = placements_.find(id);
  if (it == placements_.end()) return t;
  Placement p;
  p.owner = t.shard;
  p.policy = opts_.routing.policy;
  for (const ReplicaSlot& s : it->second.slots)
    if (!s.stale) p.replicas.push_back(s.shard);
  if (p.replicas.empty()) return t;  // stale fallback: owner serves
  std::vector<std::size_t> load(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i)
    load[i] = shards_[i]->queue.size() +
              shards_[i]->inFlight.load(std::memory_order_relaxed);
  const int pick = pickLeastLoaded(p, load, it->second.rr++);
  if (pick == p.owner) return t;
  for (const ReplicaSlot& s : it->second.slots) {
    if (s.shard == pick && !s.stale) {
      t.shard = pick;
      t.replica = s.ws;
      break;
    }
  }
  return t;
}

void Server::dispatch(Job&& job) {
  const std::size_t n = job.reqs.size();
  if (!accepting_.load(std::memory_order_acquire)) {
    job.fail(kErrServerStopped);
    return;
  }
  const RouteTarget target = route(job.lib, job.reqs);
  Shard& s = *shards_[static_cast<std::size_t>(target.shard)];
  job.replicaWs = target.replica;
  job.enqueued = Clock::now();
  const PushResult pushed = opts_.queue.overflow == OverflowPolicy::kBlock
                                ? s.queue.pushBlocking(job)
                                : s.queue.tryPush(job);
  // Failure delivery runs outside the shard mutex: a submitAsync
  // callback may itself take locks, and holding s.mu across foreign
  // code invites ordering bugs.
  switch (pushed) {
    case PushResult::kOk: {
      std::lock_guard<std::mutex> lock(s.mu);
      s.submitted += n;
      break;
    }
    case PushResult::kFull: {
      {
        std::lock_guard<std::mutex> lock(s.mu);
        s.rejected += n;
        Shard::Heat& h = s.heatFor(metrics_, job.lib);
        h.rejected->add(n);
        h.rejectedHere += n;
        metrics_.counter("server.rejected").add(n);
      }
      job.fail(kErrQueueFull);
      break;
    }
    case PushResult::kClosed:
      job.fail(kErrServerStopped);
      break;
  }
}

std::future<CheckResult> Server::submit(const LibraryId& id,
                                        CheckRequest req) {
  Job job;
  job.lib = id;
  job.reqs.push_back(std::move(req));
  std::future<CheckResult> fut = job.single.get_future();
  dispatch(std::move(job));
  return fut;
}

void Server::submitAsync(const LibraryId& id, CheckRequest req,
                         std::function<void(CheckResult)> done) {
  Job job;
  job.lib = id;
  job.reqs.push_back(std::move(req));
  job.done = std::move(done);
  dispatch(std::move(job));
}

std::future<std::vector<CheckResult>> Server::submitBatch(
    const LibraryId& id, std::vector<CheckRequest> reqs) {
  Job job;
  job.lib = id;
  job.reqs = std::move(reqs);
  job.isBatch = true;
  std::future<std::vector<CheckResult>> fut = job.batch.get_future();
  if (job.reqs.empty()) {
    job.batch.set_value({});
    return fut;
  }
  dispatch(std::move(job));
  return fut;
}

void Server::serveLoop(Shard& shard) {
  obs::Counter& cServed = metrics_.counter("server.served");
  obs::Counter& cFailed = metrics_.counter("server.failed");
  obs::Counter& cReplicaServed = metrics_.counter("server.replica_served");
  obs::Histogram& hService = metrics_.histogram("server.service_seconds");
  obs::Histogram& hWait = metrics_.histogram("server.queue_wait_seconds");
  const bool replicating =
      opts_.routing.policy == RoutingPolicy::kLeastLoadedReplica &&
      shardCount() > 1 && opts_.routing.heatWindow > 0;
  Job job;
  while (shard.queue.pop(job)) {
    if (job.warm) {
      // A promotion's warm hint: build the replica's view off the
      // request path. Best-effort — a failure here just means the first
      // real request builds it instead.
      if (job.replicaWs) {
        try {
          job.replicaWs->view(job.warmRoot);
        } catch (...) {
        }
      }
      continue;
    }
    shard.inFlight.store(1, std::memory_order_relaxed);
    const Clock::time_point t0 = Clock::now();
    const std::size_t n = job.reqs.size();
    const bool onOwner = !job.replicaWs;
    std::shared_ptr<Workspace> ws = job.replicaWs;
    if (!ws) {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.workspaces.find(job.lib);
      if (it != shard.workspaces.end()) ws = it->second;
    }
    if (!ws) {
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.failed += n;
      }
      cFailed.add(n);
      shard.inFlight.store(0, std::memory_order_relaxed);
      job.fail(kErrLibraryNotFound);
      continue;
    }
    const double wait = secondsBetween(job.enqueued, t0);
    // The queue-wait span: measured by timestamps (the wait already
    // happened), emitted under the request's trace so the exported
    // timeline shows intake → queue → service as one chain. Batches
    // attribute it to their first request's trace.
    const std::uint64_t traceId = job.reqs.front().traceId;
    if (traceId != 0 && obs::Tracer::instance().enabled()) {
      obs::ContextGuard guard(obs::TraceContext{traceId, 0});
      const auto waitNs = static_cast<std::uint64_t>(wait * 1e9);
      obs::emitSpan("queue.wait", obs::nowNs() - waitNs, waitNs);
    }
    std::vector<CheckResult> batchOut;
    CheckResult singleOut;
    std::uint64_t bytes = 0;
    if (job.isBatch) {
      batchOut = ws->runBatch(job.reqs);
      for (const CheckResult& r : batchOut) bytes += approxResultBytes(r);
    } else {
      singleOut = ws->run(job.reqs.front());
      bytes = approxResultBytes(singleOut);
    }
    const Clock::time_point t1 = Clock::now();
    const double service = secondsBetween(t0, t1);
    const double total = secondsBetween(job.enqueued, t1);
    bool hadEdits = false;
    for (const CheckRequest& r : job.reqs)
      if (!r.edits.empty()) hadEdits = true;
    std::vector<HeatTracker::Decision> decisions;
    bool windowClosed = false;
    {
      // Stats are recorded *before* the promise resolves, so a client
      // that just observed its result never reads a served count that
      // hasn't caught up with it yet.
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.served += n;
      shard.sumQueueWait += wait;
      shard.sumService += service;
      ++shard.jobCount;
      if (shard.latency.size() < kLatencyWindow) {
        shard.latency.push_back(total);
      } else {
        shard.latency[shard.latencyNext] = total;
        shard.latencyNext = (shard.latencyNext + 1) % kLatencyWindow;
      }
      Shard::Heat& heat = shard.heatFor(metrics_, job.lib);
      heat.served->add(n);
      heat.bytes->add(bytes);
      heat.servedHere += n;
      heat.bytesHere += bytes;
      heat.lastRoot = job.reqs.front().root;
      if (!onOwner) {
        if (!heat.replicaServed)
          heat.replicaServed =
              &metrics_.counter("library." + job.lib + ".replica_served");
        heat.replicaServed->add(n);
      }
      if (heat.latency.size() < kHeatLatencyWindow) {
        heat.latency.push_back(total);
      } else {
        heat.latency[heat.latencyNext] = total;
        heat.latencyNext = (heat.latencyNext + 1) % kHeatLatencyWindow;
      }
      if (replicating && onOwner) {
        decisions = shard.tracker.recordServed(job.lib, n);
        windowClosed = shard.tracker.windowFill() == 0;
      }
    }
    cServed.add(n);
    if (!onOwner) cReplicaServed.add(n);
    hService.observe(service);
    hWait.observe(wait);
    // Invalidation-before-delivery: replicas go stale *before* the edit
    // result resolves, so a client that awaited its edit can never have
    // a later read served from a pre-edit snapshot (docs/server.md,
    // "Placement and replication").
    if (onOwner && hadEdits) invalidateReplicas(job.lib);
    // The slow-request hook: one stderr line plus span retention (the
    // trace survives ring churn for a later --trace fetch). Off unless
    // ServerOptions::slowRequestSeconds is set.
    if (opts_.slowRequestSeconds > 0 && total >= opts_.slowRequestSeconds) {
      obs::Tracer& tracer = obs::Tracer::instance();
      std::string top;
      if (traceId != 0 && tracer.enabled()) {
        tracer.retain(traceId);
        std::vector<obs::SpanRecord> spans = tracer.collect(traceId);
        std::sort(spans.begin(), spans.end(),
                  [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
                    return a.durNs > b.durNs;
                  });
        char buf[96];
        for (std::size_t i = 0; i < spans.size() && i < 3; ++i) {
          std::snprintf(buf, sizeof buf, " %s=%.3fms", spans[i].name,
                        static_cast<double>(spans[i].durNs) / 1e6);
          top += buf;
        }
      }
      std::fprintf(stderr,
                   "dic-server: slow request id=%" PRIu64
                   " lib=%s kind=%s wait=%.3fms service=%.3fms top:%s\n",
                   traceId, job.lib.c_str(),
                   toString(job.reqs.front().kind).c_str(), wait * 1e3,
                   service * 1e3, top.empty() ? " (no spans)" : top.c_str());
    }
    if (job.isBatch)
      job.batch.set_value(std::move(batchOut));
    else
      job.deliverSingle(std::move(singleOut));
    shard.inFlight.store(0, std::memory_order_relaxed);
    // Replication bookkeeping runs between jobs on the owner's serving
    // thread — the only mutator of this shard's libraries — so snapshot
    // copies below race with nothing.
    if (windowClosed) applyHeatDecisions(shard, decisions);
  }
}

void Server::applyHeatDecisions(Shard& owner,
                                const std::vector<HeatTracker::Decision>& ds) {
  for (const HeatTracker::Decision& d : ds) {
    if (d.promote)
      promoteLibrary(owner, d.id);
    else
      demoteLibrary(d.id);
  }
  // Still-hot libraries whose replicas an edit invalidated get
  // re-snapshotted at the window boundary; until then their reads fall
  // back to the owner.
  std::vector<LibraryId> toRefresh;
  {
    std::lock_guard<std::mutex> plock(placementMu_);
    std::lock_guard<std::mutex> slock(owner.mu);
    for (const auto& [id, entry] : placements_) {
      if (ownerShardOf(id) != owner.index) continue;
      if (!owner.tracker.isHot(id)) continue;
      bool anyStale = false;
      for (const ReplicaSlot& s : entry.slots) anyStale = anyStale || s.stale;
      if (anyStale) toRefresh.push_back(id);
    }
  }
  for (const LibraryId& id : toRefresh) refreshReplicas(owner, id);
}

void Server::promoteLibrary(Shard& owner, const LibraryId& id) {
  if (shardCount() <= 1) return;
  std::shared_ptr<Workspace> ownerWs;
  layout::CellId warmRoot{0};
  {
    std::lock_guard<std::mutex> lock(owner.mu);
    auto it = owner.workspaces.find(id);
    if (it == owner.workspaces.end()) return;  // dropped since the window
    ownerWs = it->second;
    auto hit = owner.heat.find(id);
    if (hit != owner.heat.end()) warmRoot = hit->second.lastRoot;
  }
  // The snapshot handoff: one revision-consistent copy of the library,
  // shared `const` by every replica Workspace. Copied outside all locks
  // — this serving thread is the library's only mutator, and Library
  // const reads are thread-safe.
  auto snapshot =
      std::make_shared<const layout::Library>(ownerWs->library());
  const std::uint64_t rev = snapshot->revision();
  WorkspaceOptions wopts;
  wopts.maxCacheBytes = opts_.maxCacheBytesPerLibrary;
  // Deterministic targets: the next routing.replicas shards after the
  // owner. Each replica builds its *own* views from the snapshot — the
  // owner's views are patched in place by incremental edits and must
  // never be shared.
  std::vector<ReplicaSlot> slots;
  for (int k = 1; k <= opts_.routing.replicas && k < shardCount(); ++k) {
    ReplicaSlot slot;
    slot.shard = (owner.index + k) % shardCount();
    slot.revision = rev;
    slot.ws = std::make_shared<Workspace>(
        snapshot, ownerWs->technology(),
        shards_[static_cast<std::size_t>(slot.shard)]->exec, wopts);
    slots.push_back(std::move(slot));
  }
  std::sort(slots.begin(), slots.end(),
            [](const ReplicaSlot& a, const ReplicaSlot& b) {
              return a.shard < b.shard;
            });
  std::vector<std::pair<int, std::shared_ptr<Workspace>>> warmTargets;
  {
    std::lock_guard<std::mutex> plock(placementMu_);
    {
      // A dropLibrary may have raced the snapshot: its owner-map erase
      // happens before its demote takes placementMu_, so if the library
      // is gone now, registering would resurrect replicas of a dropped
      // library. Abort instead.
      std::lock_guard<std::mutex> olock(owner.mu);
      if (owner.workspaces.find(id) == owner.workspaces.end()) return;
    }
    for (const ReplicaSlot& s : slots) {
      Shard& t = *shards_[static_cast<std::size_t>(s.shard)];
      std::lock_guard<std::mutex> tlock(t.mu);
      t.replicas[id] = s.ws;
      warmTargets.emplace_back(s.shard, s.ws);
    }
    placements_[id].slots = std::move(slots);  // keeps the rr tick
  }
  for (auto& [shardIdx, ws] : warmTargets) {
    Job warm;
    warm.lib = id;
    warm.warm = true;
    warm.warmRoot = warmRoot;
    warm.replicaWs = std::move(ws);
    (void)shards_[static_cast<std::size_t>(shardIdx)]->queue.tryPush(warm);
  }
}

void Server::refreshReplicas(Shard& owner, const LibraryId& id) {
  std::shared_ptr<Workspace> ownerWs;
  layout::CellId warmRoot{0};
  {
    std::lock_guard<std::mutex> lock(owner.mu);
    auto it = owner.workspaces.find(id);
    if (it == owner.workspaces.end()) return;
    ownerWs = it->second;
    auto hit = owner.heat.find(id);
    if (hit != owner.heat.end()) warmRoot = hit->second.lastRoot;
  }
  std::vector<int> targets;
  {
    std::lock_guard<std::mutex> lock(placementMu_);
    auto it = placements_.find(id);
    if (it == placements_.end()) return;
    for (const ReplicaSlot& s : it->second.slots) targets.push_back(s.shard);
  }
  auto snapshot =
      std::make_shared<const layout::Library>(ownerWs->library());
  const std::uint64_t rev = snapshot->revision();
  WorkspaceOptions wopts;
  wopts.maxCacheBytes = opts_.maxCacheBytesPerLibrary;
  std::vector<ReplicaSlot> slots;
  for (int t : targets) {
    ReplicaSlot slot;
    slot.shard = t;
    slot.revision = rev;
    slot.ws = std::make_shared<Workspace>(
        snapshot, ownerWs->technology(),
        shards_[static_cast<std::size_t>(t)]->exec, wopts);
    slots.push_back(std::move(slot));
  }
  std::vector<std::pair<int, std::shared_ptr<Workspace>>> warmTargets;
  {
    std::lock_guard<std::mutex> plock(placementMu_);
    auto it = placements_.find(id);
    if (it == placements_.end()) return;  // demoted/dropped meanwhile
    {
      std::lock_guard<std::mutex> olock(owner.mu);
      if (owner.workspaces.find(id) == owner.workspaces.end()) return;
    }
    for (const ReplicaSlot& s : slots) {
      Shard& t = *shards_[static_cast<std::size_t>(s.shard)];
      std::lock_guard<std::mutex> tlock(t.mu);
      t.replicas[id] = s.ws;
      warmTargets.emplace_back(s.shard, s.ws);
    }
    // The old slots' Workspaces drop here (or when their last queued
    // job drains) — stale snapshots are reclaimed, fresh ones serve.
    it->second.slots = std::move(slots);
  }
  for (auto& [shardIdx, ws] : warmTargets) {
    Job warm;
    warm.lib = id;
    warm.warm = true;
    warm.warmRoot = warmRoot;
    warm.replicaWs = std::move(ws);
    (void)shards_[static_cast<std::size_t>(shardIdx)]->queue.tryPush(warm);
  }
}

void Server::demoteLibrary(const LibraryId& id) {
  std::lock_guard<std::mutex> plock(placementMu_);
  auto it = placements_.find(id);
  if (it == placements_.end()) return;
  std::vector<ReplicaSlot> dropped = std::move(it->second.slots);
  placements_.erase(it);
  for (const ReplicaSlot& s : dropped) {
    Shard& t = *shards_[static_cast<std::size_t>(s.shard)];
    std::lock_guard<std::mutex> tlock(t.mu);
    auto rit = t.replicas.find(id);
    if (rit != t.replicas.end() && rit->second == s.ws) t.replicas.erase(rit);
  }
  // `dropped` releases the replica Workspaces here — or, for a replica
  // with queued jobs still bound to it, when the last one drains.
  // Either way the replica's view-cache bytes are reclaimed; stats()
  // stops counting them the moment the maps above are cleared.
}

void Server::invalidateReplicas(const LibraryId& id) {
  std::lock_guard<std::mutex> lock(placementMu_);
  auto it = placements_.find(id);
  if (it == placements_.end()) return;
  for (ReplicaSlot& s : it->second.slots) s.stale = true;
}

void Server::shutdown() {
  // Phase 1: close the intake. Submissions observing this complete with
  // kErrServerStopped; one racing past it lands in a queue that close()
  // below turns away (kClosed) or that the drain still serves — either
  // way its future completes.
  accepting_.store(false, std::memory_order_release);
  // Phase 2: drain. close() stops producers; pop() keeps handing out
  // accepted jobs until each queue is empty, so every accepted future
  // resolves with a real result before the serving threads exit.
  std::call_once(shutdownOnce_, [this] {
    for (auto& s : shards_) s->queue.close();
    for (auto& s : shards_)
      if (s->thread.joinable()) s->thread.join();
  });
}

ServerStats Server::stats() const {
  ServerStats out;
  out.shards.reserve(shards_.size());
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    ShardStats st;
    st.queueDepth = s.queue.size();
    std::vector<double> lat;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      st.libraries = s.workspaces.size();
      st.replicas = s.replicas.size();
      st.submitted = s.submitted;
      st.served = s.served;
      st.rejected = s.rejected;
      st.failed = s.failed;
      if (s.jobCount > 0) {
        st.meanQueueWaitSeconds =
            s.sumQueueWait / static_cast<double>(s.jobCount);
        st.meanServiceSeconds =
            s.sumService / static_cast<double>(s.jobCount);
      }
      lat = s.latency;
      for (const auto& [id, ws] : s.workspaces) {
        (void)id;
        st.cacheBytes += ws->cacheStats().cacheBytes;
      }
      for (const auto& [id, ws] : s.replicas) {
        (void)id;
        st.cacheBytes += ws->cacheStats().cacheBytes;
      }
      // Per-library heat: shard-local counts (the per-replica served
      // breakdown), p95 from each library's own recent-latency ring.
      // The map iterates in id order, so the vector is already sorted.
      for (const auto& [id, h] : s.heat) {
        LibraryHeat lh;
        lh.id = id;
        lh.served = h.servedHere;
        lh.rejected = h.rejectedHere;
        lh.bytes = h.bytesHere;
        lh.p95Seconds = p95Of(h.latency);
        st.heat.push_back(std::move(lh));
      }
    }
    if (!lat.empty()) {
      std::sort(lat.begin(), lat.end());
      st.p50Seconds = lat[lat.size() / 2];
      st.p95Seconds = lat[std::min(lat.size() - 1,
                                   static_cast<std::size_t>(
                                       static_cast<double>(lat.size()) *
                                       0.95))];
    }
    out.shards.push_back(std::move(st));
  }
  // Placement decoration: owner shard for every heat entry, fresh
  // replica shards from the placement table.
  {
    std::lock_guard<std::mutex> lock(placementMu_);
    for (ShardStats& st : out.shards) {
      for (LibraryHeat& lh : st.heat) {
        lh.ownerShard = ownerShardOf(lh.id);
        auto it = placements_.find(lh.id);
        if (it == placements_.end()) continue;
        for (const ReplicaSlot& s : it->second.slots)
          if (!s.stale) lh.replicaShards.push_back(s.shard);
      }
    }
  }
  return out;
}

obs::MetricsSnapshot Server::metricsSnapshot() const {
  // Live counters ("server.served", "library.<id>.*", the latency
  // histograms) are already current; snapshot-style state is republished
  // as gauges here so one frame carries both.
  std::size_t queueDepth = 0;
  std::size_t libraries = 0;
  std::size_t replicaCount = 0;
  Workspace::CacheStats agg;
  const auto addCache = [&agg](const Workspace& ws) {
    const Workspace::CacheStats cs = ws.cacheStats();
    agg.viewHits += cs.viewHits;
    agg.viewMisses += cs.viewMisses;
    agg.viewEvictions += cs.viewEvictions;
    agg.lruEvictions += cs.lruEvictions;
    agg.netlistHits += cs.netlistHits;
    agg.cachedViews += cs.cachedViews;
    agg.cacheBytes += cs.cacheBytes;
  };
  for (const auto& sp : shards_) {
    queueDepth += sp->queue.size();
    std::lock_guard<std::mutex> lock(sp->mu);
    libraries += sp->workspaces.size();
    replicaCount += sp->replicas.size();
    for (const auto& [id, ws] : sp->workspaces) {
      (void)id;
      addCache(*ws);
    }
    for (const auto& [id, ws] : sp->replicas) {
      (void)id;
      addCache(*ws);
    }
  }
  const auto setGauge = [this](const char* name, std::size_t v) {
    metrics_.gauge(name).set(static_cast<std::int64_t>(v));
  };
  setGauge("server.queue_depth", queueDepth);
  setGauge("server.libraries", libraries);
  setGauge("server.replicas", replicaCount);
  setGauge("cache.view_hits", agg.viewHits);
  setGauge("cache.view_misses", agg.viewMisses);
  setGauge("cache.view_evictions", agg.viewEvictions);
  setGauge("cache.lru_evictions", agg.lruEvictions);
  setGauge("cache.netlist_hits", agg.netlistHits);
  setGauge("cache.views", agg.cachedViews);
  setGauge("cache.bytes", agg.cacheBytes);
  setGauge("cache.scratch_bytes", engine::Arena::totalReservedBytes());
  // Placement gauges for replicated libraries: where each lives and how
  // many fresh replicas it has right now.
  {
    std::lock_guard<std::mutex> lock(placementMu_);
    for (const auto& [id, entry] : placements_) {
      std::size_t fresh = 0;
      for (const ReplicaSlot& s : entry.slots)
        if (!s.stale) ++fresh;
      metrics_.gauge("library." + id + ".owner_shard")
          .set(ownerShardOf(id));
      metrics_.gauge("library." + id + ".replicas")
          .set(static_cast<std::int64_t>(fresh));
    }
  }
  return metrics_.snapshot();
}

}  // namespace server
}  // namespace dic
