#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <thread>

#include "engine/arena.hpp"
#include "obs/trace.hpp"
#include "server/queue.hpp"

namespace dic {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

double secondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// A server-level failure result for one request (the check never ran).
CheckResult errorResult(const CheckRequest& req, const char* err) {
  CheckResult r;
  r.kind = req.kind;
  r.root = req.root;
  r.tag = req.tag;
  r.error = err;
  return r;
}

std::vector<CheckResult> errorResults(const std::vector<CheckRequest>& reqs,
                                      const char* err) {
  std::vector<CheckResult> out;
  out.reserve(reqs.size());
  for (const CheckRequest& r : reqs) out.push_back(errorResult(r, err));
  return out;
}

/// Latency samples kept per shard for the p50/p95 snapshot: a fixed ring
/// of the most recent jobs, so long-running servers report current — not
/// lifetime-averaged — tails without unbounded storage.
constexpr std::size_t kLatencyWindow = 1024;

/// Per-library latency ring depth (LibraryHeat::p95Seconds). Smaller
/// than the shard ring: many libraries share one shard.
constexpr std::size_t kHeatLatencyWindow = 256;

/// Approximate serialized size of one result — what LibraryHeat::bytes
/// accumulates. Mirrors the wire envelope's shape (fixed fields plus the
/// variable strings) without paying for an actual encode; deterministic
/// for deterministic results, which is what makes the heat counters
/// byte-stable over the kMetrics frame.
std::uint64_t approxResultBytes(const CheckResult& r) {
  std::uint64_t b = 64 + r.error.size() + r.tag.size();
  for (const report::Violation& v : r.report.violations())
    b += 44 + v.rule.size() + v.cell.size() + v.message.size();
  return b;
}

double p95Of(std::vector<double> lat) {
  if (lat.empty()) return 0;
  std::sort(lat.begin(), lat.end());
  return lat[std::min(lat.size() - 1,
                      static_cast<std::size_t>(
                          static_cast<double>(lat.size()) * 0.95))];
}

}  // namespace

std::uint64_t stableHash(const LibraryId& id) {
  // FNV-1a 64-bit. std::hash is deliberately not used: its value may
  // change across standard libraries and process runs, and routing must
  // be stable so a library's shard — and its warm caches — survive.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// One queue job: a single request or a whole batch, with its promise
/// and the enqueue timestamp the wait/service split is measured from.
struct Job {
  LibraryId lib;
  std::vector<CheckRequest> reqs;
  bool isBatch{false};
  std::promise<CheckResult> single;
  std::promise<std::vector<CheckResult>> batch;
  /// Completion hook for submitAsync jobs: when set, the result is
  /// delivered here instead of through `single` (net sessions ride
  /// this; the callback runs on the serving thread, or inline on the
  /// submitter for immediate failures).
  std::function<void(CheckResult)> done;
  Clock::time_point enqueued{};

  void deliverSingle(CheckResult&& r) {
    if (done)
      done(std::move(r));
    else
      single.set_value(std::move(r));
  }

  void fail(const char* err) {
    if (isBatch)
      batch.set_value(errorResults(reqs, err));
    else
      deliverSingle(errorResult(reqs.front(), err));
  }
};

struct Server::Shard {
  Shard(std::size_t queueCapacity, int threads)
      : exec(threads), queue(queueCapacity) {}

  engine::Executor exec;  ///< the shard's worker pool, shared by its Workspaces
  BoundedQueue<Job> queue;
  std::thread thread;  ///< the serving thread (drives Workspaces serially)

  /// Per-library heat bookkeeping. The monotonic counters live in the
  /// server's metrics registry (named "library.<id>.*") and are cached
  /// here as pointers so the hot path is a relaxed add, not a map
  /// lookup; the latency ring is shard-local under mu.
  struct Heat {
    obs::Counter* served{nullptr};
    obs::Counter* rejected{nullptr};
    obs::Counter* bytes{nullptr};
    std::vector<double> latency;  ///< end-to-end ring, kHeatLatencyWindow
    std::size_t latencyNext{0};
  };

  mutable std::mutex mu;  ///< guards workspaces + the counters below
  std::map<LibraryId, std::shared_ptr<Workspace>> workspaces;
  std::map<LibraryId, Heat> heat;  ///< survives dropLibrary (history)
  std::size_t submitted{0};
  std::size_t served{0};
  std::size_t rejected{0};
  std::size_t failed{0};  ///< accepted but library dropped before serving
  double sumQueueWait{0};
  double sumService{0};
  std::size_t jobCount{0};
  std::vector<double> latency;  ///< end-to-end ring, kLatencyWindow deep
  std::size_t latencyNext{0};

  /// Find-or-create a library's heat slot (call with mu held); the
  /// registry counters are resolved once and cached.
  Heat& heatFor(obs::Registry& reg, const LibraryId& id) {
    auto it = heat.find(id);
    if (it == heat.end()) {
      Heat h;
      h.served = &reg.counter("library." + id + ".served");
      h.rejected = &reg.counter("library." + id + ".rejected");
      h.bytes = &reg.counter("library." + id + ".bytes");
      it = heat.emplace(id, std::move(h)).first;
    }
    return it->second;
  }
};

Server::Server(ServerOptions options) : opts_(options) {
  int n = opts_.shards;
  if (n <= 0)
    n = std::clamp(engine::Executor::hardwareThreads() / 2, 1, 8);
  opts_.shards = n;
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>(opts_.queueCapacity,
                                              opts_.threadsPerShard));
  for (auto& s : shards_)
    s->thread = std::thread([this, sh = s.get()] { serveLoop(*sh); });
}

Server::~Server() { shutdown(); }

Server::Shard& Server::shardFor(const LibraryId& id) {
  return *shards_[stableHash(id) % shards_.size()];
}

const Server::Shard& Server::shardFor(const LibraryId& id) const {
  return *shards_[stableHash(id) % shards_.size()];
}

int Server::shardOf(const LibraryId& id) const {
  return static_cast<int>(stableHash(id) % shards_.size());
}

bool Server::addLibrary(const LibraryId& id, layout::Library lib,
                        tech::Technology tech) {
  if (!accepting_.load(std::memory_order_acquire)) return false;
  Shard& s = shardFor(id);
  WorkspaceOptions wopts;
  wopts.maxCacheBytes = opts_.maxCacheBytesPerLibrary;
  auto ws = std::make_shared<Workspace>(std::move(lib), std::move(tech),
                                        s.exec, wopts);
  std::lock_guard<std::mutex> lock(s.mu);
  return s.workspaces.emplace(id, std::move(ws)).second;
}

bool Server::dropLibrary(const LibraryId& id) {
  Shard& s = shardFor(id);
  std::lock_guard<std::mutex> lock(s.mu);
  // Erasing the map reference is the whole handoff: the serving thread
  // resolves the Workspace under this mutex per job, and an in-flight
  // job holds its own shared_ptr, so the Workspace (and the library it
  // owns) is destroyed only after the last in-flight request completes.
  return s.workspaces.erase(id) > 0;
}

std::size_t Server::libraryCount() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->workspaces.size();
  }
  return n;
}

std::future<CheckResult> Server::submit(const LibraryId& id,
                                        CheckRequest req) {
  Job job;
  job.lib = id;
  job.reqs.push_back(std::move(req));
  std::future<CheckResult> fut = job.single.get_future();
  if (!accepting_.load(std::memory_order_acquire)) {
    job.fail(kErrServerStopped);
    return fut;
  }
  Shard& s = shardFor(id);
  job.enqueued = Clock::now();
  const PushResult pushed = opts_.overflow == OverflowPolicy::kBlock
                                ? s.queue.pushBlocking(job)
                                : s.queue.tryPush(job);
  std::lock_guard<std::mutex> lock(s.mu);
  switch (pushed) {
    case PushResult::kOk:
      ++s.submitted;
      break;
    case PushResult::kFull:
      ++s.rejected;
      s.heatFor(metrics_, id).rejected->add(1);
      metrics_.counter("server.rejected").add(1);
      job.fail(kErrQueueFull);
      break;
    case PushResult::kClosed:
      job.fail(kErrServerStopped);
      break;
  }
  return fut;
}

void Server::submitAsync(const LibraryId& id, CheckRequest req,
                         std::function<void(CheckResult)> done) {
  Job job;
  job.lib = id;
  job.reqs.push_back(std::move(req));
  job.done = std::move(done);
  if (!accepting_.load(std::memory_order_acquire)) {
    job.fail(kErrServerStopped);
    return;
  }
  Shard& s = shardFor(id);
  job.enqueued = Clock::now();
  const PushResult pushed = opts_.overflow == OverflowPolicy::kBlock
                                ? s.queue.pushBlocking(job)
                                : s.queue.tryPush(job);
  // The failure callbacks run outside the shard mutex: a session
  // callback may itself take locks, and holding s.mu across foreign
  // code invites ordering bugs.
  switch (pushed) {
    case PushResult::kOk: {
      std::lock_guard<std::mutex> lock(s.mu);
      ++s.submitted;
      break;
    }
    case PushResult::kFull: {
      {
        std::lock_guard<std::mutex> lock(s.mu);
        ++s.rejected;
        s.heatFor(metrics_, id).rejected->add(1);
        metrics_.counter("server.rejected").add(1);
      }
      job.fail(kErrQueueFull);
      break;
    }
    case PushResult::kClosed:
      job.fail(kErrServerStopped);
      break;
  }
}

std::future<std::vector<CheckResult>> Server::submitBatch(
    const LibraryId& id, std::vector<CheckRequest> reqs) {
  Job job;
  job.lib = id;
  job.reqs = std::move(reqs);
  job.isBatch = true;
  std::future<std::vector<CheckResult>> fut = job.batch.get_future();
  if (job.reqs.empty()) {
    job.batch.set_value({});
    return fut;
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    job.fail(kErrServerStopped);
    return fut;
  }
  Shard& s = shardFor(id);
  const std::size_t n = job.reqs.size();
  job.enqueued = Clock::now();
  const PushResult pushed = opts_.overflow == OverflowPolicy::kBlock
                                ? s.queue.pushBlocking(job)
                                : s.queue.tryPush(job);
  std::lock_guard<std::mutex> lock(s.mu);
  switch (pushed) {
    case PushResult::kOk:
      s.submitted += n;
      break;
    case PushResult::kFull:
      s.rejected += n;
      s.heatFor(metrics_, id).rejected->add(n);
      metrics_.counter("server.rejected").add(n);
      job.fail(kErrQueueFull);
      break;
    case PushResult::kClosed:
      job.fail(kErrServerStopped);
      break;
  }
  return fut;
}

void Server::serveLoop(Shard& shard) {
  obs::Counter& cServed = metrics_.counter("server.served");
  obs::Counter& cFailed = metrics_.counter("server.failed");
  obs::Histogram& hService = metrics_.histogram("server.service_seconds");
  obs::Histogram& hWait = metrics_.histogram("server.queue_wait_seconds");
  Job job;
  while (shard.queue.pop(job)) {
    const Clock::time_point t0 = Clock::now();
    const std::size_t n = job.reqs.size();
    std::shared_ptr<Workspace> ws;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.workspaces.find(job.lib);
      if (it != shard.workspaces.end()) ws = it->second;
    }
    if (!ws) {
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.failed += n;
      }
      cFailed.add(n);
      job.fail(kErrLibraryNotFound);
      continue;
    }
    const double wait = secondsBetween(job.enqueued, t0);
    // The queue-wait span: measured by timestamps (the wait already
    // happened), emitted under the request's trace so the exported
    // timeline shows intake → queue → service as one chain. Batches
    // attribute it to their first request's trace.
    const std::uint64_t traceId = job.reqs.front().traceId;
    if (traceId != 0 && obs::Tracer::instance().enabled()) {
      obs::ContextGuard guard(obs::TraceContext{traceId, 0});
      const auto waitNs = static_cast<std::uint64_t>(wait * 1e9);
      obs::emitSpan("queue.wait", obs::nowNs() - waitNs, waitNs);
    }
    std::vector<CheckResult> batchOut;
    CheckResult singleOut;
    std::uint64_t bytes = 0;
    if (job.isBatch) {
      batchOut = ws->runBatch(job.reqs);
      for (const CheckResult& r : batchOut) bytes += approxResultBytes(r);
    } else {
      singleOut = ws->run(job.reqs.front());
      bytes = approxResultBytes(singleOut);
    }
    const Clock::time_point t1 = Clock::now();
    const double service = secondsBetween(t0, t1);
    const double total = secondsBetween(job.enqueued, t1);
    {
      // Stats are recorded *before* the promise resolves, so a client
      // that just observed its result never reads a served count that
      // hasn't caught up with it yet.
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.served += n;
      shard.sumQueueWait += wait;
      shard.sumService += service;
      ++shard.jobCount;
      if (shard.latency.size() < kLatencyWindow) {
        shard.latency.push_back(total);
      } else {
        shard.latency[shard.latencyNext] = total;
        shard.latencyNext = (shard.latencyNext + 1) % kLatencyWindow;
      }
      Shard::Heat& heat = shard.heatFor(metrics_, job.lib);
      heat.served->add(n);
      heat.bytes->add(bytes);
      if (heat.latency.size() < kHeatLatencyWindow) {
        heat.latency.push_back(total);
      } else {
        heat.latency[heat.latencyNext] = total;
        heat.latencyNext = (heat.latencyNext + 1) % kHeatLatencyWindow;
      }
    }
    cServed.add(n);
    hService.observe(service);
    hWait.observe(wait);
    // The slow-request hook: one stderr line plus span retention (the
    // trace survives ring churn for a later --trace fetch). Off unless
    // ServerOptions::slowRequestSeconds is set.
    if (opts_.slowRequestSeconds > 0 && total >= opts_.slowRequestSeconds) {
      obs::Tracer& tracer = obs::Tracer::instance();
      std::string top;
      if (traceId != 0 && tracer.enabled()) {
        tracer.retain(traceId);
        std::vector<obs::SpanRecord> spans = tracer.collect(traceId);
        std::sort(spans.begin(), spans.end(),
                  [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
                    return a.durNs > b.durNs;
                  });
        char buf[96];
        for (std::size_t i = 0; i < spans.size() && i < 3; ++i) {
          std::snprintf(buf, sizeof buf, " %s=%.3fms", spans[i].name,
                        static_cast<double>(spans[i].durNs) / 1e6);
          top += buf;
        }
      }
      std::fprintf(stderr,
                   "dic-server: slow request id=%" PRIu64
                   " lib=%s kind=%s wait=%.3fms service=%.3fms top:%s\n",
                   traceId, job.lib.c_str(),
                   toString(job.reqs.front().kind).c_str(), wait * 1e3,
                   service * 1e3, top.empty() ? " (no spans)" : top.c_str());
    }
    if (job.isBatch)
      job.batch.set_value(std::move(batchOut));
    else
      job.deliverSingle(std::move(singleOut));
  }
}

void Server::shutdown() {
  // Phase 1: close the intake. Submissions observing this complete with
  // kErrServerStopped; one racing past it lands in a queue that close()
  // below turns away (kClosed) or that the drain still serves — either
  // way its future completes.
  accepting_.store(false, std::memory_order_release);
  // Phase 2: drain. close() stops producers; pop() keeps handing out
  // accepted jobs until each queue is empty, so every accepted future
  // resolves with a real result before the serving threads exit.
  std::call_once(shutdownOnce_, [this] {
    for (auto& s : shards_) s->queue.close();
    for (auto& s : shards_)
      if (s->thread.joinable()) s->thread.join();
  });
}

ServerStats Server::stats() const {
  ServerStats out;
  out.shards.reserve(shards_.size());
  for (const auto& sp : shards_) {
    const Shard& s = *sp;
    ShardStats st;
    st.queueDepth = s.queue.size();
    std::vector<double> lat;
    {
      std::lock_guard<std::mutex> lock(s.mu);
      st.libraries = s.workspaces.size();
      st.submitted = s.submitted;
      st.served = s.served;
      st.rejected = s.rejected;
      st.failed = s.failed;
      if (s.jobCount > 0) {
        st.meanQueueWaitSeconds =
            s.sumQueueWait / static_cast<double>(s.jobCount);
        st.meanServiceSeconds =
            s.sumService / static_cast<double>(s.jobCount);
      }
      lat = s.latency;
      for (const auto& [id, ws] : s.workspaces) {
        (void)id;
        st.cacheBytes += ws->cacheStats().cacheBytes;
      }
      // Per-library heat: counters straight from the registry-backed
      // slots, p95 from each library's own recent-latency ring. The map
      // iterates in id order, so the vector is already sorted.
      for (const auto& [id, h] : s.heat) {
        LibraryHeat lh;
        lh.id = id;
        lh.served = h.served->value();
        lh.rejected = h.rejected->value();
        lh.bytes = h.bytes->value();
        lh.p95Seconds = p95Of(h.latency);
        st.heat.push_back(std::move(lh));
      }
    }
    if (!lat.empty()) {
      std::sort(lat.begin(), lat.end());
      st.p50Seconds = lat[lat.size() / 2];
      st.p95Seconds = lat[std::min(lat.size() - 1,
                                   static_cast<std::size_t>(
                                       static_cast<double>(lat.size()) *
                                       0.95))];
    }
    out.shards.push_back(std::move(st));
  }
  return out;
}

obs::MetricsSnapshot Server::metricsSnapshot() const {
  // Live counters ("server.served", "library.<id>.*", the latency
  // histograms) are already current; snapshot-style state is republished
  // as gauges here so one frame carries both.
  std::size_t queueDepth = 0;
  std::size_t libraries = 0;
  Workspace::CacheStats agg;
  for (const auto& sp : shards_) {
    queueDepth += sp->queue.size();
    std::lock_guard<std::mutex> lock(sp->mu);
    libraries += sp->workspaces.size();
    for (const auto& [id, ws] : sp->workspaces) {
      (void)id;
      const Workspace::CacheStats cs = ws->cacheStats();
      agg.viewHits += cs.viewHits;
      agg.viewMisses += cs.viewMisses;
      agg.viewEvictions += cs.viewEvictions;
      agg.lruEvictions += cs.lruEvictions;
      agg.netlistHits += cs.netlistHits;
      agg.cachedViews += cs.cachedViews;
      agg.cacheBytes += cs.cacheBytes;
    }
  }
  const auto setGauge = [this](const char* name, std::size_t v) {
    metrics_.gauge(name).set(static_cast<std::int64_t>(v));
  };
  setGauge("server.queue_depth", queueDepth);
  setGauge("server.libraries", libraries);
  setGauge("cache.view_hits", agg.viewHits);
  setGauge("cache.view_misses", agg.viewMisses);
  setGauge("cache.view_evictions", agg.viewEvictions);
  setGauge("cache.lru_evictions", agg.lruEvictions);
  setGauge("cache.netlist_hits", agg.netlistHits);
  setGauge("cache.views", agg.cachedViews);
  setGauge("cache.bytes", agg.cacheBytes);
  setGauge("cache.scratch_bytes", engine::Arena::totalReservedBytes());
  return metrics_.snapshot();
}

}  // namespace server
}  // namespace dic
