#pragma once
/// \file unionfind.hpp
/// Disjoint-set forest with path compression and union by size.

#include <cstddef>
#include <numeric>
#include <vector>

namespace dic::netlist {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if the sets were distinct.
  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
    return true;
  }

  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }
  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace dic::netlist
