#include <algorithm>
#include <map>

#include "engine/executor.hpp"
#include "engine/hierarchy_view.hpp"
#include "netlist/netlist.hpp"
#include "netlist/unionfind.hpp"

namespace dic::netlist {

namespace {

/// True if the element's region (closed) touches the port rect.
bool elementTouchesPort(const layout::Element& e, const geom::Rect& port) {
  if (!geom::closedTouch(e.bbox(), port)) return false;
  const geom::Region region = e.region();
  for (const geom::Rect& r : region.rects())
    if (geom::closedTouch(r, port)) return true;
  return false;
}

}  // namespace

Netlist extract(const layout::Library& lib, layout::CellId root,
                const tech::Technology& tech, const ExtractOptions& opts) {
  engine::HierarchyView view(lib, root);
  return extract(view, tech, opts);
}

Netlist extract(engine::HierarchyView& view, const tech::Technology& tech,
                const ExtractOptions& opts) {
  engine::Executor serial(1);
  return extract(view, tech, serial, opts);
}

Netlist extract(engine::HierarchyView& view, const tech::Technology& tech,
                engine::Executor& exec, const ExtractOptions& opts) {
  Netlist out;

  // Build the flat view, spatial indexes, and port index up front on the
  // calling thread, so the fan-outs below start against read-only caches
  // instead of queueing every worker on the first lazy build.
  view.prepare(false);
  const engine::HierarchyView::Flat& flat = view.flat(false);
  const std::vector<layout::FlatElement>& elements = flat.elements;
  const std::vector<layout::FlatDevice>& devices = flat.devices;
  const std::vector<geom::Rect>& bboxes = flat.bboxes;

  // Node ids: elements first, then (device, port) pairs, then one node per
  // distinct global label.
  const std::size_t ne = elements.size();
  const std::vector<engine::HierarchyView::PortRef>& portNodes = view.ports();
  const std::size_t np = portNodes.size();
  std::map<std::string, std::size_t> labelNode;
  if (opts.mergeByLabel) {
    for (const auto& fe : elements)
      if (!fe.element.net.empty() && opts.isGlobalLabel(fe.element.net) &&
          !labelNode.count(fe.element.net))
        labelNode.emplace(fe.element.net, ne + np + labelNode.size());
  }
  UnionFind uf(ne + np + labelNode.size());

  // The connectivity probes below are the netlist stage's critical path
  // (skeleton construction, grid queries, region/port touch tests). Each
  // fan-out writes only its own index's slot; the union-find itself is
  // not thread-safe, so the collected edges replay serially afterwards in
  // index order. Net numbering depends only on the final partition (ids
  // are assigned in first-encounter node order when nets are built), so
  // the result is byte-identical to serial for any pool size.

  // Precompute skeletons (bboxes come cached from the view).
  std::vector<geom::Skeleton> skels(ne);
  exec.parallelFor(ne, [&](std::size_t i) {
    const layout::Element& e = elements[i].element;
    skels[i] = e.skeleton(tech.layer(e.layer).minWidth);
  });

  // Element-element connections via the engine's per-layer indexes. The
  // layer equality re-check guards against negative layer ids, which the
  // view's candidate API treats as the all-layers sentinel.
  std::vector<std::vector<std::size_t>> elemEdges(ne);
  exec.parallelFor(ne, [&](std::size_t i) {
    static thread_local std::vector<std::size_t> cand;
    view.flatCandidatesInto(false, elements[i].element.layer, bboxes[i], 0,
                            cand);
    for (std::size_t j : cand) {
      if (j <= i) continue;
      if (elements[j].element.layer != elements[i].element.layer) continue;
      if (!geom::closedTouch(bboxes[i], bboxes[j])) continue;
      if (geom::skeletonsConnected(skels[i], skels[j]))
        elemEdges[i].push_back(j);
    }
  });
  for (std::size_t i = 0; i < ne; ++i)
    for (std::size_t j : elemEdges[i]) uf.unite(i, j);

  // Element-port and port-port connections: probe in parallel, unite
  // serially. portEdges[pn] holds element nodes (< ne) touching the port
  // and same/cross-device port nodes (>= ne) shorted to it.
  std::vector<std::vector<std::size_t>> portEdges(np);
  exec.parallelFor(np, [&](std::size_t pn) {
    const std::size_t d = portNodes[pn].device;
    const layout::Port& port = devices[d].ports[portNodes[pn].port];
    static thread_local std::vector<std::size_t> cand;
    view.flatCandidatesInto(false, port.layer, port.at, 0, cand);
    for (std::size_t i : cand) {
      if (elements[i].element.layer != port.layer) continue;
      if (elementTouchesPort(elements[i].element, port.at))
        portEdges[pn].push_back(i);
    }
    // Internal groups connect ports of the same device.
    for (std::size_t qn = pn + 1; qn < np; ++qn) {
      if (portNodes[qn].device != d) break;  // ports are grouped by device
      const layout::Port& port2 = devices[d].ports[portNodes[qn].port];
      if ((port.internalGroup >= 0 &&
           port.internalGroup == port2.internalGroup) ||
          // Abutting ports on the same layer short directly (butting
          // devices).
          (port.layer == port2.layer && geom::closedTouch(port.at, port2.at)))
        portEdges[pn].push_back(ne + qn);
    }
    // Port-port across devices (abutting device terminals).
    for (std::size_t qn : view.portCandidates(port.at, 1)) {
      if (qn <= pn) continue;
      const std::size_t d2 = portNodes[qn].device;
      if (d2 == d) continue;
      const layout::Port& port2 = devices[d2].ports[portNodes[qn].port];
      if (port.layer == port2.layer && geom::closedTouch(port.at, port2.at))
        portEdges[pn].push_back(ne + qn);
    }
  });
  for (std::size_t pn = 0; pn < np; ++pn)
    for (std::size_t other : portEdges[pn]) uf.unite(ne + pn, other);

  // Global label merging.
  if (opts.mergeByLabel) {
    for (std::size_t i = 0; i < ne; ++i) {
      const std::string& label = elements[i].element.net;
      if (!label.empty() && opts.isGlobalLabel(label))
        uf.unite(i, labelNode.at(label));
    }
  }

  // Build nets.
  std::map<std::size_t, int> rootToNet;
  auto netOf = [&](std::size_t node) {
    const std::size_t r = uf.find(node);
    auto it = rootToNet.find(r);
    if (it != rootToNet.end()) return it->second;
    const int id = static_cast<int>(out.nets.size());
    Net n;
    n.id = id;
    out.nets.push_back(std::move(n));
    rootToNet.emplace(r, id);
    return id;
  };

  out.elementNet.resize(ne);
  for (std::size_t i = 0; i < ne; ++i) {
    const int id = netOf(i);
    out.elementNet[i] = id;
    out.nets[id].elementCount++;
    out.nets[id].bbox = geom::bound(out.nets[id].bbox, bboxes[i]);
    const std::string& label = elements[i].element.net;
    if (!label.empty()) {
      // Global labels keep their bare name; local labels are qualified
      // with the dot-notation instance path ("a.b refers to element b in
      // the instance a").
      const std::string qualified =
          elements[i].path.empty() || opts.isGlobalLabel(label)
              ? label
              : elements[i].path + "." + label;
      if (!out.nets[id].hasName(qualified))
        out.nets[id].names.push_back(qualified);
    }
  }

  out.devices.reserve(devices.size());
  for (std::size_t d = 0; d < devices.size(); ++d) {
    ExtractedDevice ed;
    ed.path = devices[d].path;
    ed.type = devices[d].deviceType;
    const tech::DeviceRules* rules = tech.deviceRules(ed.type);
    if (rules) ed.cls = rules->cls;
    ed.cell = devices[d].cell;
    ed.bbox = devices[d].bbox;
    out.devices.push_back(std::move(ed));
  }
  for (std::size_t pn = 0; pn < portNodes.size(); ++pn) {
    const std::size_t d = portNodes[pn].device;
    const int id = netOf(ne + pn);
    const std::string& portName = devices[d].ports[portNodes[pn].port].name;
    out.devices[d].portNets[portName] = id;
    out.nets[id].terminals.push_back({d, portName, id});
  }

  return out;
}

std::vector<std::size_t> probeElementEdges(engine::HierarchyView& view,
                                           const tech::Technology& tech,
                                           std::size_t flatIndex) {
  const engine::HierarchyView::Flat& flat = view.flat(false);
  const std::vector<layout::FlatElement>& elements = flat.elements;
  const std::vector<layout::FlatDevice>& devices = flat.devices;
  const std::vector<geom::Rect>& bboxes = flat.bboxes;
  const std::size_t ne = elements.size();
  const layout::Element& e = elements.at(flatIndex).element;
  const geom::Skeleton skel = e.skeleton(tech.layer(e.layer).minWidth);

  std::vector<std::size_t> out;
  std::vector<std::size_t> cand;
  view.flatCandidatesInto(false, e.layer, bboxes[flatIndex], 0, cand);
  for (const std::size_t j : cand) {
    if (j == flatIndex) continue;
    const layout::Element& o = elements[j].element;
    if (o.layer != e.layer) continue;
    if (!geom::closedTouch(bboxes[flatIndex], bboxes[j])) continue;
    if (geom::skeletonsConnected(skel,
                                 o.skeleton(tech.layer(o.layer).minWidth)))
      out.push_back(j);
  }
  const std::vector<engine::HierarchyView::PortRef>& portNodes = view.ports();
  for (const std::size_t pn : view.portCandidates(bboxes[flatIndex], 0)) {
    const layout::FlatDevice& d = devices[portNodes[pn].device];
    const layout::Port& port = d.ports[portNodes[pn].port];
    if (port.layer != e.layer) continue;
    if (elementTouchesPort(e, port.at)) out.push_back(ne + pn);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void refreshNetBBoxes(Netlist& nl, const std::vector<geom::Rect>& bboxes) {
  for (Net& n : nl.nets) n.bbox = geom::Rect{};
  for (std::size_t i = 0;
       i < nl.elementNet.size() && i < bboxes.size(); ++i) {
    Net& n = nl.nets.at(static_cast<std::size_t>(nl.elementNet[i]));
    n.bbox = geom::bound(n.bbox, bboxes[i]);
  }
}

std::vector<std::string> compareAgainstGolden(
    const Netlist& extracted, const std::vector<GoldenDevice>& golden) {
  std::vector<std::string> issues;
  if (extracted.devices.size() != golden.size())
    issues.push_back("device count mismatch: extracted " +
                     std::to_string(extracted.devices.size()) + ", golden " +
                     std::to_string(golden.size()));

  // Greedy bijective matching on (type, port->net-label binding). Build a
  // consistent label mapping golden-label -> extracted-net-id.
  std::map<std::string, int> binding;
  std::vector<bool> used(extracted.devices.size(), false);
  for (const GoldenDevice& g : golden) {
    bool matched = false;
    for (std::size_t i = 0; i < extracted.devices.size() && !matched; ++i) {
      if (used[i] || extracted.devices[i].type != g.type) continue;
      // Tentatively extend the binding.
      std::map<std::string, int> trial = binding;
      bool ok = true;
      for (const auto& [port, label] : g.ports) {
        auto it = extracted.devices[i].portNets.find(port);
        if (it == extracted.devices[i].portNets.end()) {
          ok = false;
          break;
        }
        // Named nets must carry the same label in the extraction.
        const Net& net = extracted.nets[it->second];
        auto bit = trial.find(label);
        if (bit == trial.end()) {
          if ((label == "VDD" || label == "GND") && !net.hasName(label)) {
            ok = false;
            break;
          }
          trial[label] = it->second;
        } else if (bit->second != it->second) {
          ok = false;
          break;
        }
      }
      if (ok) {
        binding = std::move(trial);
        used[i] = true;
        matched = true;
      }
    }
    if (!matched) issues.push_back("no extracted device matches golden " + g.type);
  }
  return issues;
}

}  // namespace dic::netlist
