#include <algorithm>
#include <map>

#include "engine/hierarchy_view.hpp"
#include "netlist/netlist.hpp"
#include "netlist/unionfind.hpp"

namespace dic::netlist {

namespace {

/// True if the element's region (closed) touches the port rect.
bool elementTouchesPort(const layout::Element& e, const geom::Rect& port) {
  if (!geom::closedTouch(e.bbox(), port)) return false;
  const geom::Region region = e.region();
  for (const geom::Rect& r : region.rects())
    if (geom::closedTouch(r, port)) return true;
  return false;
}

}  // namespace

Netlist extract(const layout::Library& lib, layout::CellId root,
                const tech::Technology& tech, const ExtractOptions& opts) {
  engine::HierarchyView view(lib, root);
  return extract(view, tech, opts);
}

Netlist extract(engine::HierarchyView& view, const tech::Technology& tech,
                const ExtractOptions& opts) {
  Netlist out;

  const engine::HierarchyView::Flat& flat = view.flat(false);
  const std::vector<layout::FlatElement>& elements = flat.elements;
  const std::vector<layout::FlatDevice>& devices = flat.devices;
  const std::vector<geom::Rect>& bboxes = flat.bboxes;

  // Node ids: elements first, then (device, port) pairs, then one node per
  // distinct global label.
  const std::size_t ne = elements.size();
  const std::vector<engine::HierarchyView::PortRef>& portNodes = view.ports();
  std::map<std::string, std::size_t> labelNode;
  if (opts.mergeByLabel) {
    for (const auto& fe : elements)
      if (!fe.element.net.empty() && opts.isGlobalLabel(fe.element.net) &&
          !labelNode.count(fe.element.net))
        labelNode.emplace(fe.element.net,
                          ne + portNodes.size() + labelNode.size());
  }
  UnionFind uf(ne + portNodes.size() + labelNode.size());

  // Precompute skeletons (bboxes come cached from the view).
  std::vector<geom::Skeleton> skels(ne);
  for (std::size_t i = 0; i < ne; ++i) {
    const layout::Element& e = elements[i].element;
    skels[i] = e.skeleton(tech.layer(e.layer).minWidth);
  }

  // Element-element connections via the engine's per-layer indexes. The
  // layer equality re-check guards against negative layer ids, which the
  // view's candidate API treats as the all-layers sentinel.
  for (std::size_t i = 0; i < ne; ++i) {
    for (std::size_t j :
         view.flatCandidates(false, elements[i].element.layer, bboxes[i])) {
      if (j <= i) continue;
      if (elements[j].element.layer != elements[i].element.layer) continue;
      if (!geom::closedTouch(bboxes[i], bboxes[j])) continue;
      if (geom::skeletonsConnected(skels[i], skels[j])) uf.unite(i, j);
    }
  }

  // Element-port and port-port connections.
  for (std::size_t pn = 0; pn < portNodes.size(); ++pn) {
    const std::size_t d = portNodes[pn].device;
    const std::size_t p = portNodes[pn].port;
    const layout::Port& port = devices[d].ports[p];
    const std::size_t node = ne + pn;
    for (std::size_t i : view.flatCandidates(false, port.layer, port.at)) {
      if (elements[i].element.layer != port.layer) continue;
      if (elementTouchesPort(elements[i].element, port.at)) uf.unite(node, i);
    }
    // Internal groups connect ports of the same device.
    for (std::size_t qn = pn + 1; qn < portNodes.size(); ++qn) {
      if (portNodes[qn].device != d) break;  // ports are grouped by device
      const layout::Port& port2 = devices[d].ports[portNodes[qn].port];
      if (port.internalGroup >= 0 && port.internalGroup == port2.internalGroup)
        uf.unite(node, ne + qn);
      // Abutting ports on the same layer short directly (butting devices).
      if (port.layer == port2.layer && geom::closedTouch(port.at, port2.at))
        uf.unite(node, ne + qn);
    }
  }
  // Port-port across devices (abutting device terminals).
  for (std::size_t pn = 0; pn < portNodes.size(); ++pn) {
    const std::size_t d = portNodes[pn].device;
    const layout::Port& port = devices[d].ports[portNodes[pn].port];
    for (std::size_t qn : view.portCandidates(port.at, 1)) {
      if (qn <= pn) continue;
      const std::size_t d2 = portNodes[qn].device;
      if (d2 == d) continue;
      const layout::Port& port2 = devices[d2].ports[portNodes[qn].port];
      if (port.layer == port2.layer && geom::closedTouch(port.at, port2.at))
        uf.unite(ne + pn, ne + qn);
    }
  }

  // Global label merging.
  if (opts.mergeByLabel) {
    for (std::size_t i = 0; i < ne; ++i) {
      const std::string& label = elements[i].element.net;
      if (!label.empty() && opts.isGlobalLabel(label))
        uf.unite(i, labelNode.at(label));
    }
  }

  // Build nets.
  std::map<std::size_t, int> rootToNet;
  auto netOf = [&](std::size_t node) {
    const std::size_t r = uf.find(node);
    auto it = rootToNet.find(r);
    if (it != rootToNet.end()) return it->second;
    const int id = static_cast<int>(out.nets.size());
    Net n;
    n.id = id;
    out.nets.push_back(std::move(n));
    rootToNet.emplace(r, id);
    return id;
  };

  out.elementNet.resize(ne);
  for (std::size_t i = 0; i < ne; ++i) {
    const int id = netOf(i);
    out.elementNet[i] = id;
    out.nets[id].elementCount++;
    out.nets[id].bbox = geom::bound(out.nets[id].bbox, bboxes[i]);
    const std::string& label = elements[i].element.net;
    if (!label.empty()) {
      // Global labels keep their bare name; local labels are qualified
      // with the dot-notation instance path ("a.b refers to element b in
      // the instance a").
      const std::string qualified =
          elements[i].path.empty() || opts.isGlobalLabel(label)
              ? label
              : elements[i].path + "." + label;
      if (!out.nets[id].hasName(qualified))
        out.nets[id].names.push_back(qualified);
    }
  }

  out.devices.reserve(devices.size());
  for (std::size_t d = 0; d < devices.size(); ++d) {
    ExtractedDevice ed;
    ed.path = devices[d].path;
    ed.type = devices[d].deviceType;
    const tech::DeviceRules* rules = tech.deviceRules(ed.type);
    if (rules) ed.cls = rules->cls;
    ed.cell = devices[d].cell;
    ed.bbox = devices[d].bbox;
    out.devices.push_back(std::move(ed));
  }
  for (std::size_t pn = 0; pn < portNodes.size(); ++pn) {
    const std::size_t d = portNodes[pn].device;
    const int id = netOf(ne + pn);
    const std::string& portName = devices[d].ports[portNodes[pn].port].name;
    out.devices[d].portNets[portName] = id;
    out.nets[id].terminals.push_back({d, portName, id});
  }

  return out;
}

std::vector<std::string> compareAgainstGolden(
    const Netlist& extracted, const std::vector<GoldenDevice>& golden) {
  std::vector<std::string> issues;
  if (extracted.devices.size() != golden.size())
    issues.push_back("device count mismatch: extracted " +
                     std::to_string(extracted.devices.size()) + ", golden " +
                     std::to_string(golden.size()));

  // Greedy bijective matching on (type, port->net-label binding). Build a
  // consistent label mapping golden-label -> extracted-net-id.
  std::map<std::string, int> binding;
  std::vector<bool> used(extracted.devices.size(), false);
  for (const GoldenDevice& g : golden) {
    bool matched = false;
    for (std::size_t i = 0; i < extracted.devices.size() && !matched; ++i) {
      if (used[i] || extracted.devices[i].type != g.type) continue;
      // Tentatively extend the binding.
      std::map<std::string, int> trial = binding;
      bool ok = true;
      for (const auto& [port, label] : g.ports) {
        auto it = extracted.devices[i].portNets.find(port);
        if (it == extracted.devices[i].portNets.end()) {
          ok = false;
          break;
        }
        // Named nets must carry the same label in the extraction.
        const Net& net = extracted.nets[it->second];
        auto bit = trial.find(label);
        if (bit == trial.end()) {
          if ((label == "VDD" || label == "GND") && !net.hasName(label)) {
            ok = false;
            break;
          }
          trial[label] = it->second;
        } else if (bit->second != it->second) {
          ok = false;
          break;
        }
      }
      if (ok) {
        binding = std::move(trial);
        used[i] = true;
        matched = true;
      }
    }
    if (!matched) issues.push_back("no extracted device matches golden " + g.type);
  }
  return issues;
}

}  // namespace dic::netlist
