#include <algorithm>
#include <map>

#include "geom/spatial.hpp"
#include "netlist/netlist.hpp"
#include "netlist/unionfind.hpp"

namespace dic::netlist {

namespace {

/// True if the element's region (closed) touches the port rect.
bool elementTouchesPort(const layout::Element& e, const geom::Rect& port) {
  if (!geom::closedTouch(e.bbox(), port)) return false;
  const geom::Region region = e.region();
  for (const geom::Rect& r : region.rects())
    if (geom::closedTouch(r, port)) return true;
  return false;
}

}  // namespace

Netlist extract(const layout::Library& lib, layout::CellId root,
                const tech::Technology& tech, const ExtractOptions& opts) {
  Netlist out;

  std::vector<layout::FlatElement> elements;
  std::vector<layout::FlatDevice> devices;
  lib.flatten(root, elements, devices, /*includeDeviceGeometry=*/false);

  // Node ids: elements first, then (device, port) pairs, then one node per
  // distinct global label.
  const std::size_t ne = elements.size();
  std::vector<std::pair<std::size_t, std::size_t>> portNodes;  // (dev, port)
  for (std::size_t d = 0; d < devices.size(); ++d)
    for (std::size_t p = 0; p < devices[d].ports.size(); ++p)
      portNodes.push_back({d, p});
  std::map<std::string, std::size_t> labelNode;
  if (opts.mergeByLabel) {
    for (const auto& fe : elements)
      if (!fe.element.net.empty() && opts.isGlobalLabel(fe.element.net) &&
          !labelNode.count(fe.element.net))
        labelNode.emplace(fe.element.net,
                          ne + portNodes.size() + labelNode.size());
  }
  UnionFind uf(ne + portNodes.size() + labelNode.size());

  // Precompute skeletons, regions and bboxes.
  std::vector<geom::Skeleton> skels(ne);
  std::vector<geom::Rect> bboxes(ne);
  for (std::size_t i = 0; i < ne; ++i) {
    const layout::Element& e = elements[i].element;
    skels[i] = e.skeleton(tech.layer(e.layer).minWidth);
    bboxes[i] = e.bbox();
  }

  // Element-element connections via the grid index.
  const geom::Coord cell =
      std::max<geom::Coord>(tech.lambda() * 40, 1);
  geom::GridIndex grid(cell);
  for (std::size_t i = 0; i < ne; ++i) grid.insert(i, bboxes[i]);
  for (std::size_t i = 0; i < ne; ++i) {
    for (std::size_t j : grid.query(bboxes[i])) {
      if (j <= i) continue;
      if (elements[i].element.layer != elements[j].element.layer) continue;
      if (!geom::closedTouch(bboxes[i], bboxes[j])) continue;
      if (geom::skeletonsConnected(skels[i], skels[j])) uf.unite(i, j);
    }
  }

  // Element-port and port-port connections.
  for (std::size_t pn = 0; pn < portNodes.size(); ++pn) {
    const auto [d, p] = portNodes[pn];
    const layout::Port& port = devices[d].ports[p];
    const std::size_t node = ne + pn;
    for (std::size_t i : grid.query(port.at)) {
      if (elements[i].element.layer != port.layer) continue;
      if (elementTouchesPort(elements[i].element, port.at)) uf.unite(node, i);
    }
    // Internal groups connect ports of the same device.
    for (std::size_t qn = pn + 1; qn < portNodes.size(); ++qn) {
      const auto [d2, p2] = portNodes[qn];
      if (d2 != d) break;  // portNodes is grouped by device
      const layout::Port& port2 = devices[d2].ports[p2];
      if (port.internalGroup >= 0 && port.internalGroup == port2.internalGroup)
        uf.unite(node, ne + qn);
      // Abutting ports on the same layer short directly (butting devices).
      if (port.layer == port2.layer && geom::closedTouch(port.at, port2.at))
        uf.unite(node, ne + qn);
    }
  }
  // Port-port across devices (abutting device terminals).
  {
    geom::GridIndex pgrid(cell);
    for (std::size_t pn = 0; pn < portNodes.size(); ++pn)
      pgrid.insert(pn, devices[portNodes[pn].first].ports[portNodes[pn].second].at);
    for (std::size_t pn = 0; pn < portNodes.size(); ++pn) {
      const auto [d, p] = portNodes[pn];
      const layout::Port& port = devices[d].ports[p];
      for (std::size_t qn : pgrid.query(port.at.inflated(1))) {
        if (qn <= pn) continue;
        const auto [d2, p2] = portNodes[qn];
        if (d2 == d) continue;
        const layout::Port& port2 = devices[d2].ports[p2];
        if (port.layer == port2.layer && geom::closedTouch(port.at, port2.at))
          uf.unite(ne + pn, ne + qn);
      }
    }
  }

  // Global label merging.
  if (opts.mergeByLabel) {
    for (std::size_t i = 0; i < ne; ++i) {
      const std::string& label = elements[i].element.net;
      if (!label.empty() && opts.isGlobalLabel(label))
        uf.unite(i, labelNode.at(label));
    }
  }

  // Build nets.
  std::map<std::size_t, int> rootToNet;
  auto netOf = [&](std::size_t node) {
    const std::size_t r = uf.find(node);
    auto it = rootToNet.find(r);
    if (it != rootToNet.end()) return it->second;
    const int id = static_cast<int>(out.nets.size());
    Net n;
    n.id = id;
    out.nets.push_back(std::move(n));
    rootToNet.emplace(r, id);
    return id;
  };

  out.elementNet.resize(ne);
  for (std::size_t i = 0; i < ne; ++i) {
    const int id = netOf(i);
    out.elementNet[i] = id;
    out.nets[id].elementCount++;
    out.nets[id].bbox = geom::bound(out.nets[id].bbox, bboxes[i]);
    const std::string& label = elements[i].element.net;
    if (!label.empty()) {
      // Global labels keep their bare name; local labels are qualified
      // with the dot-notation instance path ("a.b refers to element b in
      // the instance a").
      const std::string qualified =
          elements[i].path.empty() || opts.isGlobalLabel(label)
              ? label
              : elements[i].path + "." + label;
      if (!out.nets[id].hasName(qualified))
        out.nets[id].names.push_back(qualified);
    }
  }

  out.devices.reserve(devices.size());
  for (std::size_t d = 0; d < devices.size(); ++d) {
    ExtractedDevice ed;
    ed.path = devices[d].path;
    ed.type = devices[d].deviceType;
    const tech::DeviceRules* rules = tech.deviceRules(ed.type);
    if (rules) ed.cls = rules->cls;
    ed.cell = devices[d].cell;
    ed.bbox = devices[d].bbox;
    out.devices.push_back(std::move(ed));
  }
  for (std::size_t pn = 0; pn < portNodes.size(); ++pn) {
    const auto [d, p] = portNodes[pn];
    const int id = netOf(ne + pn);
    const std::string& portName = devices[d].ports[p].name;
    out.devices[d].portNets[portName] = id;
    out.nets[id].terminals.push_back({d, portName, id});
  }

  return out;
}

std::vector<std::string> compareAgainstGolden(
    const Netlist& extracted, const std::vector<GoldenDevice>& golden) {
  std::vector<std::string> issues;
  if (extracted.devices.size() != golden.size())
    issues.push_back("device count mismatch: extracted " +
                     std::to_string(extracted.devices.size()) + ", golden " +
                     std::to_string(golden.size()));

  // Greedy bijective matching on (type, port->net-label binding). Build a
  // consistent label mapping golden-label -> extracted-net-id.
  std::map<std::string, int> binding;
  std::vector<bool> used(extracted.devices.size(), false);
  for (const GoldenDevice& g : golden) {
    bool matched = false;
    for (std::size_t i = 0; i < extracted.devices.size() && !matched; ++i) {
      if (used[i] || extracted.devices[i].type != g.type) continue;
      // Tentatively extend the binding.
      std::map<std::string, int> trial = binding;
      bool ok = true;
      for (const auto& [port, label] : g.ports) {
        auto it = extracted.devices[i].portNets.find(port);
        if (it == extracted.devices[i].portNets.end()) {
          ok = false;
          break;
        }
        // Named nets must carry the same label in the extraction.
        const Net& net = extracted.nets[it->second];
        auto bit = trial.find(label);
        if (bit == trial.end()) {
          if ((label == "VDD" || label == "GND") && !net.hasName(label)) {
            ok = false;
            break;
          }
          trial[label] = it->second;
        } else if (bit->second != it->second) {
          ok = false;
          break;
        }
      }
      if (ok) {
        binding = std::move(trial);
        used[i] = true;
        matched = true;
      }
    }
    if (!matched) issues.push_back("no extracted device matches golden " + g.type);
  }
  return issues;
}

}  // namespace dic::netlist
