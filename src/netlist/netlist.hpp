#pragma once
/// \file netlist.hpp
/// The extracted netlist model: nets with hierarchical dot-notation names
/// (the paper: "a.b refers to element b in the instance a"), device
/// instances with typed terminals, and the extraction entry point.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "layout/library.hpp"
#include "tech/technology.hpp"

namespace dic::engine {
class Executor;
class HierarchyView;
}  // namespace dic::engine

namespace dic::netlist {

/// A device terminal bound to a net.
struct Terminal {
  std::size_t device{0};  ///< index into Netlist::devices
  std::string port;       ///< port name within the device ("G", "S", ...)
  int net{-1};
};

/// A device instance in the extracted circuit.
struct ExtractedDevice {
  std::string path;  ///< hierarchical instance path
  std::string type;  ///< CIF 4D device type string
  tech::DeviceClass cls{tech::DeviceClass::kContact};
  layout::CellId cell{0};
  geom::Rect bbox{};
  std::map<std::string, int> portNets;  ///< port name -> net id
};

/// One electrical net.
struct Net {
  int id{-1};
  std::vector<std::string> names;  ///< declared labels, global names first
  std::size_t elementCount{0};     ///< interconnect elements on the net
  geom::Rect bbox{};               ///< bounds of the net's geometry
  std::vector<Terminal> terminals;

  /// Preferred display name: first declared label or "net<id>".
  std::string displayName() const {
    return names.empty() ? "net" + std::to_string(id) : names.front();
  }
  bool hasName(const std::string& n) const {
    for (const auto& s : names)
      if (s == n) return true;
    return false;
  }
};

/// The extracted circuit.
struct Netlist {
  std::vector<Net> nets;
  std::vector<ExtractedDevice> devices;
  /// Net id of each flattened interconnect element (parallel to the
  /// flatten() element order used during extraction).
  std::vector<int> elementNet;

  const Net* findNet(const std::string& name) const {
    for (const Net& n : nets)
      if (n.hasName(name)) return &n;
    return nullptr;
  }
};

/// Extraction options.
struct ExtractOptions {
  /// Merge equal *global* labels even without touching geometry (power
  /// rails and chip-wide buses). A label is global if it starts with one
  /// of these prefixes; all other labels are local to their instance and
  /// are qualified with the dot-notation path ("a.b").
  bool mergeByLabel{true};
  std::vector<std::string> globalPrefixes{"VDD", "GND", "BUS",
                                          "IN",  "CLK", "PHI"};

  bool isGlobalLabel(const std::string& label) const {
    for (const std::string& p : globalPrefixes)
      if (label.rfind(p, 0) == 0) return true;
    return false;
  }

  /// Option equality gates netlist reuse: the Workspace caches one
  /// extraction per hierarchy view and shares it only across requests
  /// whose options compare equal.
  bool operator==(const ExtractOptions&) const = default;
};

/// Extract the netlist below `root`.
///
/// Connectivity rules (the paper's "check legal connections" stage):
///  * two interconnect elements on the same layer connect iff their
///    skeletons touch (Fig. 11);
///  * an element connects to a device port on the same layer iff its
///    region (closed) touches the port rect;
///  * ports of one device instance sharing an internalGroup are connected
///    through the device (contacts);
///  * device classes with no internal groups (FETs) keep terminals apart.
Netlist extract(const layout::Library& lib, layout::CellId root,
                const tech::Technology& tech, const ExtractOptions& opts = {});

/// Same, on a shared engine::HierarchyView -- the flat element order (and
/// thus Netlist::elementNet indexing) is the view's flat(false) order, so
/// a checker that shares the view gets consistent element-net lookups for
/// free and the flatten work is done once.
Netlist extract(engine::HierarchyView& view, const tech::Technology& tech,
                const ExtractOptions& opts = {});

/// Same, fanning the skeleton builds and connectivity probes (the
/// critical path at larger chips) across `exec`'s worker pool. The
/// candidate probes are pure reads collected into per-index slots and the
/// union-find unions replay serially in index order, so the extracted
/// netlist -- including net numbering -- is byte-identical to the serial
/// overloads for every pool size.
Netlist extract(engine::HierarchyView& view, const tech::Technology& tech,
                engine::Executor& exec, const ExtractOptions& opts = {});

/// The connectivity edges incident to one flat element, as node ids in
/// extraction numbering: element indexes in [0, ne), then port nodes as
/// ne + portIndex (ne = view.flat(false).elements.size()). Sorted,
/// deduplicated. Applies exactly the predicates extract() uses (same
/// layer + closed bbox touch + skeleton connectivity for elements; same
/// layer + region-touches-port for ports), so two probes of the same
/// element before and after a geometry edit compare equal iff the edit
/// left every connection of that element intact. This is the incremental
/// check path's "netlist unchanged" test: if every edited element's edge
/// set (and net label) is unchanged, the extraction's union-find
/// partition — and therefore net numbering, names, and terminals — is
/// unchanged, and a cached netlist stays valid up to net bboxes
/// (refreshNetBBoxes).
std::vector<std::size_t> probeElementEdges(engine::HierarchyView& view,
                                           const tech::Technology& tech,
                                           std::size_t flatIndex);

/// Recompute every net's bbox from `bboxes` (the view's current flat
/// element bboxes, parallel to Netlist::elementNet), replaying exactly
/// the fold extract() performs: reset to the default rect, then bound in
/// element index order. Used to patch a reused netlist after an edit
/// that moved geometry without changing connectivity.
void refreshNetBBoxes(Netlist& nl, const std::vector<geom::Rect>& bboxes);

/// Compare an extracted netlist against a golden device/connection list
/// ("check the net list against an input net list for consistency").
/// Returns human-readable mismatch descriptions (empty = consistent).
struct GoldenDevice {
  std::string type;
  /// Port name -> net label. Labels are matched up to renaming; named
  /// nets (VDD/GND) must match exactly.
  std::map<std::string, std::string> ports;
};
std::vector<std::string> compareAgainstGolden(
    const Netlist& extracted, const std::vector<GoldenDevice>& golden);

}  // namespace dic::netlist
