#pragma once
/// \file workspace.hpp
/// The unified check-service front door.
///
/// The paper's thesis is that DRC, net-list generation, and electrical
/// construction rules "should appropriately be handled by a single
/// program". `dic::Workspace` is that single program's API: it owns the
/// layout library and technology, keeps one persistent worker pool, and
/// serves every kind of check through one value-typed request/result
/// pair. Between requests it caches `engine::HierarchyView`s keyed by
/// (root cell, library revision) -- placements, flat views, and grid
/// indexes built for one request are reused by the next, and a netlist
/// extracted for one request is shared with any later request on the
/// same view with equal extract options. Any library mutation bumps
/// `layout::Library::revision()`, so stale views self-invalidate and the
/// next request transparently rebuilds.
///
/// Batches go through the same engine that runs the DIC pipeline:
/// `runBatch` decomposes every request into its inner pipeline stages
/// (shared view warm-up, netlist extraction, checks, merge) and feeds
/// them all to one batch-wide ready-queue dispatcher with cross-request
/// dependency edges, so one request's checks overlap another's
/// extraction while results stay byte-identical to running the requests
/// one by one (slot-per-request merging, the engine's determinism
/// contract; see docs/workspace.md and docs/engine.md).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "baseline/flat_drc.hpp"
#include "drc/checker.hpp"
#include "engine/executor.hpp"
#include "engine/hierarchy_view.hpp"
#include "erc/erc.hpp"
#include "layout/library.hpp"
#include "netlist/netlist.hpp"
#include "report/violation.hpp"
#include "tech/technology.hpp"

namespace dic {

/// What a CheckRequest asks the service to run.
enum class CheckKind : std::uint8_t {
  kHierarchicalDrc,  ///< the full DIC pipeline (Fig. 10)
  kFlatBaselineDrc,  ///< the mask-level reference checker
  kErc,              ///< electrical construction rules on the netlist
  kNetlistOnly,      ///< netlist extraction, no checking
};

/// Human-readable kind name ("drc", "baseline", "erc", "netlist").
std::string toString(CheckKind k);

/// One library mutation carried by a request ("edit-then-check"): the
/// Workspace applies it to its owned library through the tracked edit API
/// (layout::Library::setElement and friends) immediately before running
/// the check, inside the request's serial window. kSetElement edits are
/// the incremental fast path: cached views are patched in place and the
/// check re-runs only the dirty window (docs/workspace.md, "Incremental
/// edit-then-check"); every other kind falls back to a full rebuild with
/// identical results.
struct EditOp {
  enum class Kind : std::uint8_t {
    kNone,            ///< no-op (default-constructed)
    kSetElement,      ///< replace cell.elements[index] with `element`
    kAddElement,      ///< append `element` to the cell
    kRemoveElement,   ///< erase cell.elements[index]
    kAddInstance,     ///< append `instance` to the cell
    kRemoveInstance,  ///< erase cell.instances[index]
  };
  Kind kind{Kind::kNone};
  layout::CellId cell{0};
  std::size_t index{0};        ///< element/instance slot (set/remove kinds)
  layout::Element element;     ///< payload for kSetElement / kAddElement
  layout::Instance instance;   ///< payload for kAddInstance

  /// An element-replacing edit (the incremental fast path).
  static EditOp setElement(layout::CellId cell, std::size_t index,
                           layout::Element e);
};

/// One unit of service traffic: which check, on which root, with which
/// knobs. Value-typed and self-contained so requests can be queued,
/// logged, and replayed.
struct CheckRequest {
  /// The check to run.
  CheckKind kind{CheckKind::kHierarchicalDrc};
  /// Root cell of the hierarchy to check.
  layout::CellId root{0};
  /// Distance metric for geometric checks. DIC's reference is Euclidean;
  /// the mask-level baseline traditionally measures orthogonally (the
  /// baseline() factory sets that default).
  geom::Metric metric{geom::Metric::kEuclidean};

  // -- hierarchical-DRC knobs (mirrors drc::Options) ---------------------
  /// Check primitive device symbols (cells marked prechecked are skipped).
  bool checkDevices{true};
  /// Hierarchical interaction algorithm; false = flatten everything.
  bool hierarchicalInteractions{true};
  /// Ablation: false discards net information (mask-level worst case).
  bool useNetInformation{true};
  /// Report each per-cell violation at every instance placement.
  bool instantiateViolations{true};

  // -- flat-baseline knobs (mirrors baseline::Options) -------------------
  /// Baseline: shrink-expand-compare width checking.
  bool baselineWidth{true};
  /// Baseline: expand-check-overlap spacing checking.
  bool baselineSpacing{true};
  /// Baseline: mask-level contact enclosure checking.
  bool baselineContacts{true};

  /// Electrical-rule selection (ERC requests).
  erc::Options erc{};
  /// Netlist extraction options (netlist / ERC / hierarchical-DRC
  /// requests). Requests with equal options share one cached extraction
  /// per view.
  netlist::ExtractOptions extract{};

  /// Worker budget for a single run(): 0 uses the Workspace's shared
  /// persistent pool; N > 0 runs this request on a dedicated pool of N.
  /// Ignored inside runBatch (the batch shares the Workspace pool).
  /// Results are byte-identical either way.
  int threads{0};

  /// Library edits to apply (in order, through the tracked edit API)
  /// before this check runs. The mutation and the check are one serial
  /// unit: in runBatch an edit-carrying request is a barrier — preceding
  /// requests complete first, the edit+check runs alone, then the batch
  /// resumes — so results stay byte-identical to a sequential replay.
  std::vector<EditOp> edits;

  /// Caller correlation tag, echoed untouched in CheckResult::tag.
  std::string tag;

  /// Span-trace attribution (docs/observability.md): 0 = untraced (or
  /// inherit the caller's ambient trace); non-zero makes every span this
  /// request produces — pipeline stages, kernel sections — collectable
  /// under this id. The TCP session sets it to the wire request id;
  /// in-process callers may use obs::newTraceId(). Never serialized in
  /// the kCheck payload.
  std::uint64_t traceId{0};

  /// A hierarchical-DRC request on `root` with reference settings.
  static CheckRequest drc(layout::CellId root);
  /// A mask-level baseline request on `root` (orthogonal metric, the
  /// traditional checker's behavior).
  static CheckRequest baseline(layout::CellId root);
  /// An ERC request on `root`.
  static CheckRequest ercCheck(layout::CellId root);
  /// A netlist-extraction-only request on `root`.
  static CheckRequest netlistOnly(layout::CellId root);
};

/// What came back: the report plus uniform telemetry. Every kind fills
/// `report`, `seconds`, the cache flags, and `revision`; kind-specific
/// fields are documented inline.
struct CheckResult {
  /// The kind of the originating request.
  CheckKind kind{CheckKind::kHierarchicalDrc};
  /// Root cell the request ran on.
  layout::CellId root{0};
  /// All violations (empty for kNetlistOnly).
  report::Report report;
  /// Per-stage wall-clock (hierarchical DRC only; zeros otherwise).
  drc::StageTimes stageTimes;
  /// Per-stage start/duration in declaration order (hierarchical DRC
  /// only; empty otherwise).
  std::vector<engine::StageResult> stageResults;
  /// Interaction-stage statistics (hierarchical DRC only).
  drc::InteractionStats interactionStats;
  /// Mask-level statistics (flat baseline only).
  baseline::Stats baselineStats;
  /// The extracted netlist, shared with the Workspace cache (set for
  /// kNetlistOnly, kErc, and kHierarchicalDrc; null for the baseline,
  /// which by design discards topology).
  std::shared_ptr<const netlist::Netlist> netlist;
  /// True if the (root, revision) hierarchy view came from the cache --
  /// placements, flat views, and grid indexes were NOT rebuilt.
  bool viewCacheHit{false};
  /// True if the netlist was reused from a previous request on this view.
  bool netlistCacheHit{false};
  /// True if this hierarchical-DRC run went through the incremental
  /// cache with dirty-window information — per-cell and per-interaction-
  /// item results untouched by the pending edits were reused instead of
  /// recomputed. (A cold populating run reports false.)
  bool incrementalHit{false};
  /// Library revision this result was computed against.
  std::uint64_t revision{0};
  /// End-to-end wall-clock of this request, seconds — clean per
  /// request, including inside pooled batches: each pipeline run's help
  /// loop steals only work carrying its own scope tag (docs/engine.md,
  /// "Help scopes"), so this clock never absorbs a sibling request's
  /// runtime. Overlapping requests' clocks legitimately overlap; use
  /// the batch's outer wall clock for throughput.
  double seconds{0};
  /// Request tag, echoed back.
  std::string tag;
  /// Empty on success; otherwise the failure description (the request
  /// failed, the batch continued).
  std::string error;

  /// True if the request completed without error.
  bool ok() const { return error.empty(); }
};

/// Workspace construction knobs.
struct WorkspaceOptions {
  /// Size of the persistent shared pool: <= 0 selects the host's
  /// hardware concurrency, 1 is fully serial (the deterministic
  /// reference schedule). Ignored when the Workspace is constructed on a
  /// caller-owned executor.
  int threads{0};

  /// LRU cap on the view cache, in accounted bytes (each entry's
  /// engine::HierarchyView::memoryBytes() plus its cached netlist; flat
  /// views and their grid indexes dominate). 0 = unbounded, the classic
  /// editor-session behavior: one live entry per root, stale revisions
  /// evicted on mutation. A server juggling many roots sets a cap: after
  /// every request the coldest entries are evicted (least-recent
  /// acquire first) until the accounted total fits. The entry serving
  /// the most recent request is never evicted, so a single view larger
  /// than the cap still serves (cache-of-one); evicted roots simply
  /// rebuild on their next request — correctness is never affected.
  std::size_t maxCacheBytes{0};
};

/// A long-lived checking session over one library + technology: the
/// service owns the data, callers send CheckRequests. Not itself
/// thread-safe for *callers* (one thread drives run()/runBatch(); the
/// parallelism lives inside), and the library must not be mutated while
/// a run is in flight.
class Workspace {
 public:
  /// Take ownership of the design and its technology. The pool spawns
  /// here and persists until destruction.
  Workspace(layout::Library lib, tech::Technology tech,
            WorkspaceOptions options = {});

  /// Same, but run on a caller-owned executor instead of spawning a
  /// private pool (WorkspaceOptions::threads is ignored; no workers are
  /// created). This is how a dic::server::Server shard hosts many
  /// Workspaces on one per-shard pool. `exec` must outlive the
  /// Workspace.
  Workspace(layout::Library lib, tech::Technology tech,
            engine::Executor& exec, WorkspaceOptions options = {});

  /// A read-only *replica* session over a shared immutable library
  /// snapshot: no copy is taken, the Workspace serves checks against
  /// `*lib` forever at its frozen revision. This is the server's hot-
  /// library replication handoff — one snapshot, N replica Workspaces
  /// on other shards, each building its own views/netlists (views are
  /// patched in place by owners, so they are never shared across
  /// Workspaces). Edit-carrying requests fail with an error result and
  /// the mutable library() accessor throws; everything else behaves
  /// identically, byte-for-byte, to an owning Workspace holding an
  /// equal library. `lib` must be non-null; `exec` must outlive the
  /// Workspace.
  Workspace(std::shared_ptr<const layout::Library> lib,
            tech::Technology tech, engine::Executor& exec,
            WorkspaceOptions options = {});

  /// The served library, read-only (owned, or the shared replica
  /// snapshot).
  const layout::Library& library() const { return roLib(); }
  /// Mutable library access for edit sessions. Mutations bump
  /// layout::Library::revision(), so cached views self-invalidate on the
  /// next request. Do not mutate while a run is in flight. Throws
  /// std::logic_error on a read-only replica Workspace.
  layout::Library& library();
  /// True for a replica Workspace serving a shared immutable snapshot
  /// (the third constructor): edits are refused, the revision is frozen.
  bool readOnly() const { return sharedLib_ != nullptr; }
  /// The owned technology.
  const tech::Technology& technology() const { return tech_; }
  /// The executor requests run on: the private persistent pool, or the
  /// caller-owned one when constructed with the sharing constructor
  /// (benches size their tables off it).
  engine::Executor& executor() { return activeExec(); }

  /// Serve one request. Never throws for per-request failures: a failed
  /// check returns its message in CheckResult::error.
  CheckResult run(const CheckRequest& req);

  /// Serve a batch through the decomposed batch graph: every request's
  /// inner stages (view warm-up, netlist extraction, per-check, merge)
  /// become first-class cost-hinted stages on one ready-queue
  /// dispatcher, with cross-request edges for shared work (one view
  /// stage per root, one extraction-prefetch per shared (root, extract)
  /// pair) — so request B's checks start while request A's extraction
  /// is still running. A failing stage poisons only its own request
  /// (engine::FailurePolicy::kIsolate); results arrive in request order
  /// and are byte-identical to calling run() on each request
  /// sequentially at every pool size. Batch telemetry semantics
  /// (viewCacheHit per batch acquire, batch-relative stage starts,
  /// seconds spanning the request's own stages) are documented in
  /// docs/workspace.md.
  std::vector<CheckResult> runBatch(std::span<const CheckRequest> reqs);

  /// The cached hierarchy view for `root` at the library's current
  /// revision (building or refreshing it if needed). Exposed so callers
  /// embedding deeper analyses reuse the service's substrate.
  std::shared_ptr<engine::HierarchyView> view(layout::CellId root);

  /// Cache telemetry, cumulative since construction.
  struct CacheStats {
    std::size_t viewHits{0};       ///< requests served by a cached view
    std::size_t viewMisses{0};     ///< requests that built a fresh view
    std::size_t viewEvictions{0};  ///< stale views dropped after mutation
    std::size_t lruEvictions{0};   ///< cold views dropped by the byte cap
    std::size_t netlistHits{0};    ///< requests served by a cached netlist
    std::size_t cachedViews{0};    ///< live entries right now
    /// Accounted bytes of the live entries right now (views plus cached
    /// netlists) -- what WorkspaceOptions::maxCacheBytes is enforced
    /// against. Maintained incrementally by the views' builders, so the
    /// snapshot is cheap.
    std::size_t cacheBytes{0};
    /// Process-wide bytes reserved by engine::Arena scratch pools (bump
    /// allocators reset per pipeline stage / parallel index). Not counted
    /// against maxCacheBytes: the pools self-bound at their per-thread
    /// high-water mark.
    std::size_t scratchBytes{0};
  };
  /// Snapshot of the cache counters.
  CacheStats cacheStats() const;

 private:
  /// One cached (root, revision) entry: the view plus the lazily shared
  /// netlist extracted from it (default-equal extract options only).
  struct Entry {
    std::uint64_t revision{0};            ///< library revision at build
    std::uint64_t lastUse{0};             ///< LRU tick of the last acquire
    std::shared_ptr<engine::HierarchyView> view;
    std::mutex nlMu;                      ///< guards netlist + nlOpts
    std::shared_ptr<const netlist::Netlist> netlist;
    netlist::ExtractOptions nlOpts;       ///< options netlist was built with
    /// Approximate bytes of the cached netlist, published after each
    /// extraction. Atomic so the LRU accounting can read it without
    /// taking nlMu (which is held across whole extractions).
    std::atomic<std::size_t> netlistBytes{0};

    // --- incremental edit-then-check state -----------------------------
    // Written only inside serve()/acquire() under the Workspace's
    // single-driver contract (one thread drives run/runBatch); the batch
    // path never touches it.
    /// Per-unit results of the last signature-matching DRC run on this
    /// view; valid=false until a populating run completes.
    drc::IncrementalCache icache;
    /// Result-affecting options icache was populated with; incremental
    /// serving engages only for requests matching this signature.
    drc::Options icacheOpts;
    bool icacheOptsSet{false};
    /// Tracked edits accepted by the patch path since the last run that
    /// refreshed icache — the dirty window of the next incremental run.
    std::vector<layout::CellEdit> pendingEdits;
    /// All pending patches preserved the netlist partition (edge probes
    /// equal, labels unchanged) — required for interaction-item reuse.
    bool netlistKept{true};
    /// No pending patch changed any cell's recursive bbox — windows and
    /// child bboxes are unchanged, the other interaction-reuse gate.
    bool bboxUnchanged{true};
  };

  engine::Executor& activeExec() { return extExec_ ? *extExec_ : exec_; }
  /// The library every read goes through: the shared replica snapshot
  /// when present, else the owned library.
  const layout::Library& roLib() const {
    return sharedLib_ ? *sharedLib_ : lib_;
  }
  std::shared_ptr<Entry> acquire(layout::CellId root, bool& hit);
  /// Apply a request's edits to the owned library through the tracked
  /// API (throws on a bad cell/index; the request then fails cleanly).
  void applyEdits(const std::vector<EditOp>& edits);
  /// Try to keep a stale cache entry alive by patching its view in place
  /// from the tracked edit delta. On success the entry's revision,
  /// pending-dirty bookkeeping, and cached netlist (edge-probed: cloned
  /// and bbox-refreshed when the partition provably did not change,
  /// dropped otherwise) are all updated and true is returned. On false
  /// the entry must be rebuilt (the view may be partially patched).
  bool tryPatch(Entry& e, const std::vector<layout::CellEdit>& edits);
  /// The decomposed batch dispatcher (edit-free requests only); runBatch
  /// splits around edit barriers and feeds the segments here.
  std::vector<CheckResult> runBatchImpl(std::span<const CheckRequest> reqs);
  std::shared_ptr<const netlist::Netlist> netlistFor(
      Entry& e, const netlist::ExtractOptions& opts, engine::Executor& exec,
      bool& hit);
  CheckResult serve(const CheckRequest& req, engine::Executor& exec);
  /// Evict coldest entries until the accounted bytes fit maxCacheBytes
  /// (no-op when the cap is 0). Runs after every request; never evicts
  /// the most recently acquired entry.
  void enforceCacheLimit();

  layout::Library lib_;  ///< owned library (empty for replicas)
  /// Shared immutable snapshot for replica Workspaces (null when the
  /// library is owned). Keeps the snapshot alive across every replica
  /// holding it; views built from it are this Workspace's own.
  std::shared_ptr<const layout::Library> sharedLib_;
  tech::Technology tech_;
  WorkspaceOptions opts_;
  engine::Executor exec_;
  engine::Executor* extExec_{nullptr};  ///< caller-owned pool, if sharing

  mutable std::mutex cacheMu_;  ///< guards cache_, the counters, lruTick_
  std::map<layout::CellId, std::shared_ptr<Entry>> cache_;
  std::uint64_t lruTick_{0};  ///< bumped per acquire; orders lastUse
  CacheStats stats_;
};

}  // namespace dic
