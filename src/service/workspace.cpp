#include "service/workspace.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <utility>

#include "engine/pipeline.hpp"

namespace dic {

namespace {

/// Relative stage-cost hints for batch dispatch, mirroring the Fig. 10
/// breakdown: full DIC pipelines dominate, the flat baseline's pair sweep
/// is next, extraction alone is mid-weight, ERC is a netlist walk.
double costHint(CheckKind k) {
  switch (k) {
    case CheckKind::kHierarchicalDrc: return 10.0;
    case CheckKind::kFlatBaselineDrc: return 6.0;
    case CheckKind::kNetlistOnly: return 4.0;
    case CheckKind::kErc: return 1.0;
  }
  return 1.0;
}

/// Does this request kind consume (and so publish) a cached netlist?
bool needsNetlist(CheckKind k) {
  // The baseline by design discards topology; everything else routes
  // through the per-view netlist cache.
  return k != CheckKind::kFlatBaselineDrc;
}

/// Approximate heap bytes of an extracted netlist, for the LRU cap's
/// accounting (the netlist is cached alongside its view).
std::size_t netlistMemoryBytes(const netlist::Netlist& nl) {
  std::size_t b = sizeof(nl) + nl.elementNet.capacity() * sizeof(int);
  for (const netlist::Net& n : nl.nets) {
    b += sizeof(n) + n.terminals.capacity() * sizeof(netlist::Terminal);
    for (const netlist::Terminal& t : n.terminals) b += t.port.capacity();
    for (const std::string& s : n.names) b += sizeof(s) + s.capacity();
  }
  for (const netlist::ExtractedDevice& d : nl.devices) {
    b += sizeof(d) + d.path.capacity() + d.type.capacity();
    // portNets: node per port, key short -- count node overhead + key.
    for (const auto& [port, net] : d.portNets) {
      (void)net;
      b += 3 * sizeof(void*) + sizeof(int) + port.capacity();
    }
  }
  return b;
}

}  // namespace

std::string toString(CheckKind k) {
  switch (k) {
    case CheckKind::kHierarchicalDrc: return "drc";
    case CheckKind::kFlatBaselineDrc: return "baseline";
    case CheckKind::kErc: return "erc";
    case CheckKind::kNetlistOnly: return "netlist";
  }
  return "?";
}

CheckRequest CheckRequest::drc(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kHierarchicalDrc;
  r.root = root;
  return r;
}

CheckRequest CheckRequest::baseline(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kFlatBaselineDrc;
  r.root = root;
  r.metric = geom::Metric::kOrthogonal;
  return r;
}

CheckRequest CheckRequest::ercCheck(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kErc;
  r.root = root;
  return r;
}

CheckRequest CheckRequest::netlistOnly(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kNetlistOnly;
  r.root = root;
  return r;
}

Workspace::Workspace(layout::Library lib, tech::Technology tech,
                     WorkspaceOptions options)
    : lib_(std::move(lib)),
      tech_(std::move(tech)),
      opts_(options),
      exec_(options.threads) {}

Workspace::Workspace(layout::Library lib, tech::Technology tech,
                     engine::Executor& exec, WorkspaceOptions options)
    : lib_(std::move(lib)),
      tech_(std::move(tech)),
      opts_(options),
      exec_(1),  // serial stub; all parallelism comes from *extExec_
      extExec_(&exec) {}

std::shared_ptr<Workspace::Entry> Workspace::acquire(layout::CellId root,
                                                     bool& hit) {
  std::lock_guard<std::mutex> lock(cacheMu_);
  std::shared_ptr<Entry>& slot = cache_[root];
  if (slot && slot->revision == lib_.revision()) {
    hit = true;
    ++stats_.viewHits;
    slot->lastUse = ++lruTick_;
    return slot;
  }
  if (slot) ++stats_.viewEvictions;
  slot = std::make_shared<Entry>();
  slot->revision = lib_.revision();
  slot->lastUse = ++lruTick_;
  slot->view = std::make_shared<engine::HierarchyView>(lib_, root);
  ++stats_.viewMisses;
  hit = false;
  return slot;
}

void Workspace::enforceCacheLimit() {
  if (opts_.maxCacheBytes == 0) return;
  std::lock_guard<std::mutex> lock(cacheMu_);
  const auto entryBytes = [](const Entry& e) {
    return e.view->memoryBytes() +
           e.netlistBytes.load(std::memory_order_acquire);
  };
  // Evict coldest-first until the accounted total fits, sparing the most
  // recently acquired entry (evicting what we just served would turn a
  // too-small cap into a cold cache on every request). Eviction only
  // drops the map's reference: an in-flight request keeps its entry
  // alive through its own shared_ptr, and a later request on an evicted
  // root transparently rebuilds.
  while (cache_.size() > 1) {
    std::size_t total = 0;
    std::uint64_t newest = 0;
    for (const auto& [root, e] : cache_) {
      (void)root;
      total += entryBytes(*e);
      newest = std::max(newest, e->lastUse);
    }
    if (total <= opts_.maxCacheBytes) return;
    auto coldest = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second->lastUse == newest) continue;
      if (coldest == cache_.end() ||
          it->second->lastUse < coldest->second->lastUse)
        coldest = it;
    }
    if (coldest == cache_.end()) return;
    cache_.erase(coldest);
    ++stats_.lruEvictions;
  }
}

std::shared_ptr<engine::HierarchyView> Workspace::view(layout::CellId root) {
  bool hit = false;
  return acquire(root, hit)->view;
}

std::shared_ptr<const netlist::Netlist> Workspace::netlistFor(
    Entry& e, const netlist::ExtractOptions& opts, engine::Executor& exec,
    bool& hit) {
  // nlMu is held across the extraction on purpose: a second request for
  // the same netlist blocks and then shares the result instead of
  // duplicating the critical-path work.
  std::lock_guard<std::mutex> lock(e.nlMu);
  if (e.netlist && e.nlOpts == opts) {
    hit = true;
    std::lock_guard<std::mutex> slock(cacheMu_);
    ++stats_.netlistHits;
    return e.netlist;
  }
  e.netlist = std::make_shared<const netlist::Netlist>(
      netlist::extract(*e.view, tech_, exec, opts));
  e.nlOpts = opts;
  e.netlistBytes.store(netlistMemoryBytes(*e.netlist),
                       std::memory_order_release);
  hit = false;
  return e.netlist;
}

CheckResult Workspace::serve(const CheckRequest& req, engine::Executor& exec) {
  CheckResult r;
  r.kind = req.kind;
  r.root = req.root;
  r.tag = req.tag;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    bool viewHit = false;
    const std::shared_ptr<Entry> entry = acquire(req.root, viewHit);
    r.viewCacheHit = viewHit;
    r.revision = entry->revision;

    switch (req.kind) {
      case CheckKind::kHierarchicalDrc: {
        drc::Options o;
        o.metric = req.metric;
        o.checkDevices = req.checkDevices;
        o.hierarchicalInteractions = req.hierarchicalInteractions;
        o.useNetInformation = req.useNetInformation;
        o.instantiateViolations = req.instantiateViolations;
        o.extract = req.extract;
        drc::Checker checker(entry->view, tech_, o);
        // The pipeline's netlist stage goes through the per-view cache:
        // on a hit it is a handoff; on a miss netlistFor extracts while
        // holding the entry's netlist mutex, so a concurrent request for
        // the same netlist blocks and shares the one extraction instead
        // of duplicating the critical-path work.
        bool netlistHit = false;
        checker.setNetlistSupplier(
            [this, entry, &req, &netlistHit](engine::Executor& e) {
              return netlistFor(*entry, req.extract, e, netlistHit);
            });
        r.report = checker.run(exec);
        r.netlistCacheHit = netlistHit;
        r.stageTimes = checker.stageTimes();
        r.stageResults = checker.stageResults();
        r.interactionStats = checker.interactionStats();
        r.netlist = checker.lastNetlist();
        break;
      }
      case CheckKind::kFlatBaselineDrc: {
        baseline::Options o;
        o.metric = req.metric;
        o.checkWidth = req.baselineWidth;
        o.checkSpacing = req.baselineSpacing;
        o.checkContacts = req.baselineContacts;
        r.report = baseline::check(*entry->view, tech_, o, &r.baselineStats);
        break;
      }
      case CheckKind::kErc: {
        r.netlist = netlistFor(*entry, req.extract, exec, r.netlistCacheHit);
        r.report = erc::check(*r.netlist, tech_, req.erc);
        break;
      }
      case CheckKind::kNetlistOnly: {
        r.netlist = netlistFor(*entry, req.extract, exec, r.netlistCacheHit);
        break;
      }
    }
  } catch (const std::exception& ex) {
    r.error = ex.what();
  } catch (...) {
    r.error = "unknown failure";
  }
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Cache bookkeeping is not part of the request's clock.
  enforceCacheLimit();
  return r;
}

CheckResult Workspace::run(const CheckRequest& req) {
  if (req.threads > 0) {
    engine::Executor dedicated(req.threads);
    return serve(req, dedicated);
  }
  return serve(req, activeExec());
}

std::vector<CheckResult> Workspace::runBatch(
    std::span<const CheckRequest> reqs) {
  std::vector<CheckResult> out(reqs.size());
  engine::Pipeline pipe;

  // Batch-wide netlist dedup: one prefetch stage per (root, extract
  // options) pair that two or more netlist-consuming requests share. The
  // consumers declare a dependency on it, so the extraction runs exactly
  // once and as early as the dispatcher can schedule it — instead of
  // every consumer racing to the per-entry netlist mutex, where the
  // losers would block a worker each for the whole extraction. The
  // deliberate tradeoff: a consuming DRC request's cheap geometry stages
  // (elements/symbols/connections — a few percent of a pipeline, per the
  // Fig. 10 breakdown) no longer overlap the extraction, in exchange for
  // never pinning workers on the mutex and for request clocks that start
  // after the shared work is done. A failing prefetch is swallowed here:
  // each consumer then re-attempts and reports the failure through its
  // own CheckResult::error.
  struct Prefetch {
    std::string stage;
    layout::CellId root{0};
    netlist::ExtractOptions opts;
    std::size_t uses{0};
  };
  std::vector<Prefetch> prefetches;
  for (const CheckRequest& r : reqs) {
    if (!needsNetlist(r.kind)) continue;
    auto it = std::find_if(prefetches.begin(), prefetches.end(),
                           [&](const Prefetch& p) {
                             return p.root == r.root && p.opts == r.extract;
                           });
    if (it != prefetches.end())
      ++it->uses;
    else
      prefetches.push_back({"", r.root, r.extract, 1});
  }
  prefetches.erase(std::remove_if(prefetches.begin(), prefetches.end(),
                                  [](const Prefetch& p) {
                                    return p.uses < 2;
                                  }),
                   prefetches.end());
  for (std::size_t k = 0; k < prefetches.size(); ++k) {
    Prefetch& p = prefetches[k];
    p.stage = "nl" + std::to_string(k);
    pipe.add({p.stage,
              {},
              [this, root = p.root, opts = p.opts](engine::Executor& e) {
                try {
                  bool viewHit = false;
                  const std::shared_ptr<Entry> entry = acquire(root, viewHit);
                  bool nlHit = false;
                  netlistFor(*entry, opts, e, nlHit);
                } catch (...) {
                  // Reported per-request by the consumers.
                }
                return report::Report{};
              },
              costHint(CheckKind::kNetlistOnly)});
  }

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    // Request stages write only their own slot, so `out` is in request
    // order whatever the schedule was; serve() never throws, so one bad
    // request cannot abort the batch. The only dependencies are the
    // netlist prefetches — requests stay independent of each other.
    std::vector<std::string> deps;
    if (needsNetlist(reqs[i].kind)) {
      auto it = std::find_if(prefetches.begin(), prefetches.end(),
                             [&](const Prefetch& p) {
                               return p.root == reqs[i].root &&
                                      p.opts == reqs[i].extract;
                             });
      if (it != prefetches.end()) deps.push_back(it->stage);
    }
    pipe.add({"req" + std::to_string(i) + ":" + toString(reqs[i].kind),
              std::move(deps),
              [this, &out, reqs, i](engine::Executor& e) {
                out[i] = serve(reqs[i], e);
                return report::Report{};
              },
              costHint(reqs[i].kind)});
  }
  pipe.run(activeExec());
  return out;
}

Workspace::CacheStats Workspace::cacheStats() const {
  std::lock_guard<std::mutex> lock(cacheMu_);
  CacheStats s = stats_;
  s.cachedViews = cache_.size();
  for (const auto& [root, e] : cache_) {
    (void)root;
    s.cacheBytes += e->view->memoryBytes() +
                    e->netlistBytes.load(std::memory_order_acquire);
  }
  return s;
}

}  // namespace dic
