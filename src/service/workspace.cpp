#include "service/workspace.hpp"

#include <chrono>
#include <exception>
#include <utility>

#include "engine/pipeline.hpp"

namespace dic {

namespace {

/// Relative stage-cost hints for batch dispatch, mirroring the Fig. 10
/// breakdown: full DIC pipelines dominate, the flat baseline's pair sweep
/// is next, extraction alone is mid-weight, ERC is a netlist walk.
double costHint(CheckKind k) {
  switch (k) {
    case CheckKind::kHierarchicalDrc: return 10.0;
    case CheckKind::kFlatBaselineDrc: return 6.0;
    case CheckKind::kNetlistOnly: return 4.0;
    case CheckKind::kErc: return 1.0;
  }
  return 1.0;
}

}  // namespace

std::string toString(CheckKind k) {
  switch (k) {
    case CheckKind::kHierarchicalDrc: return "drc";
    case CheckKind::kFlatBaselineDrc: return "baseline";
    case CheckKind::kErc: return "erc";
    case CheckKind::kNetlistOnly: return "netlist";
  }
  return "?";
}

CheckRequest CheckRequest::drc(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kHierarchicalDrc;
  r.root = root;
  return r;
}

CheckRequest CheckRequest::baseline(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kFlatBaselineDrc;
  r.root = root;
  r.metric = geom::Metric::kOrthogonal;
  return r;
}

CheckRequest CheckRequest::ercCheck(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kErc;
  r.root = root;
  return r;
}

CheckRequest CheckRequest::netlistOnly(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kNetlistOnly;
  r.root = root;
  return r;
}

Workspace::Workspace(layout::Library lib, tech::Technology tech,
                     WorkspaceOptions options)
    : lib_(std::move(lib)), tech_(std::move(tech)), exec_(options.threads) {}

std::shared_ptr<Workspace::Entry> Workspace::acquire(layout::CellId root,
                                                     bool& hit) {
  std::lock_guard<std::mutex> lock(cacheMu_);
  std::shared_ptr<Entry>& slot = cache_[root];
  if (slot && slot->revision == lib_.revision()) {
    hit = true;
    ++stats_.viewHits;
    return slot;
  }
  if (slot) ++stats_.viewEvictions;
  slot = std::make_shared<Entry>();
  slot->revision = lib_.revision();
  slot->view = std::make_shared<engine::HierarchyView>(lib_, root);
  ++stats_.viewMisses;
  hit = false;
  return slot;
}

std::shared_ptr<engine::HierarchyView> Workspace::view(layout::CellId root) {
  bool hit = false;
  return acquire(root, hit)->view;
}

std::shared_ptr<const netlist::Netlist> Workspace::netlistFor(
    Entry& e, const netlist::ExtractOptions& opts, engine::Executor& exec,
    bool& hit) {
  // nlMu is held across the extraction on purpose: a second request for
  // the same netlist blocks and then shares the result instead of
  // duplicating the critical-path work.
  std::lock_guard<std::mutex> lock(e.nlMu);
  if (e.netlist && e.nlOpts == opts) {
    hit = true;
    std::lock_guard<std::mutex> slock(cacheMu_);
    ++stats_.netlistHits;
    return e.netlist;
  }
  e.netlist = std::make_shared<const netlist::Netlist>(
      netlist::extract(*e.view, tech_, exec, opts));
  e.nlOpts = opts;
  hit = false;
  return e.netlist;
}

CheckResult Workspace::serve(const CheckRequest& req, engine::Executor& exec) {
  CheckResult r;
  r.kind = req.kind;
  r.root = req.root;
  r.tag = req.tag;
  const auto t0 = std::chrono::steady_clock::now();
  try {
    bool viewHit = false;
    const std::shared_ptr<Entry> entry = acquire(req.root, viewHit);
    r.viewCacheHit = viewHit;
    r.revision = entry->revision;

    switch (req.kind) {
      case CheckKind::kHierarchicalDrc: {
        drc::Options o;
        o.metric = req.metric;
        o.checkDevices = req.checkDevices;
        o.hierarchicalInteractions = req.hierarchicalInteractions;
        o.useNetInformation = req.useNetInformation;
        o.instantiateViolations = req.instantiateViolations;
        o.extract = req.extract;
        drc::Checker checker(entry->view, tech_, o);
        // The pipeline's netlist stage goes through the per-view cache:
        // on a hit it is a handoff; on a miss netlistFor extracts while
        // holding the entry's netlist mutex, so a concurrent request for
        // the same netlist blocks and shares the one extraction instead
        // of duplicating the critical-path work.
        bool netlistHit = false;
        checker.setNetlistSupplier(
            [this, entry, &req, &netlistHit](engine::Executor& e) {
              return netlistFor(*entry, req.extract, e, netlistHit);
            });
        r.report = checker.run(exec);
        r.netlistCacheHit = netlistHit;
        r.stageTimes = checker.stageTimes();
        r.stageResults = checker.stageResults();
        r.interactionStats = checker.interactionStats();
        r.netlist = checker.lastNetlist();
        break;
      }
      case CheckKind::kFlatBaselineDrc: {
        baseline::Options o;
        o.metric = req.metric;
        o.checkWidth = req.baselineWidth;
        o.checkSpacing = req.baselineSpacing;
        o.checkContacts = req.baselineContacts;
        r.report = baseline::check(*entry->view, tech_, o, &r.baselineStats);
        break;
      }
      case CheckKind::kErc: {
        r.netlist = netlistFor(*entry, req.extract, exec, r.netlistCacheHit);
        r.report = erc::check(*r.netlist, tech_, req.erc);
        break;
      }
      case CheckKind::kNetlistOnly: {
        r.netlist = netlistFor(*entry, req.extract, exec, r.netlistCacheHit);
        break;
      }
    }
  } catch (const std::exception& ex) {
    r.error = ex.what();
  } catch (...) {
    r.error = "unknown failure";
  }
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return r;
}

CheckResult Workspace::run(const CheckRequest& req) {
  if (req.threads > 0) {
    engine::Executor dedicated(req.threads);
    return serve(req, dedicated);
  }
  return serve(req, exec_);
}

std::vector<CheckResult> Workspace::runBatch(
    std::span<const CheckRequest> reqs) {
  std::vector<CheckResult> out(reqs.size());
  engine::Pipeline pipe;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    // Independent stages (no deps): the ready-queue dispatcher starts the
    // costliest requests first and overlaps the rest; each stage writes
    // only its own slot, so `out` is in request order whatever the
    // schedule was. serve() never throws, so one bad request cannot abort
    // the batch.
    pipe.add({"req" + std::to_string(i) + ":" + toString(reqs[i].kind),
              {},
              [this, &out, reqs, i](engine::Executor& e) {
                out[i] = serve(reqs[i], e);
                return report::Report{};
              },
              costHint(reqs[i].kind)});
  }
  pipe.run(exec_);
  return out;
}

Workspace::CacheStats Workspace::cacheStats() const {
  std::lock_guard<std::mutex> lock(cacheMu_);
  CacheStats s = stats_;
  s.cachedViews = cache_.size();
  return s;
}

}  // namespace dic
