#include "service/workspace.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <utility>

#include "engine/arena.hpp"
#include "engine/pipeline.hpp"
#include "obs/trace.hpp"

namespace dic {

namespace {

/// Relative stage-cost hints for batch dispatch, mirroring the Fig. 10
/// breakdown: full DIC pipelines dominate, the flat baseline's pair sweep
/// is next, extraction alone is mid-weight, ERC is a netlist walk.
double costHint(CheckKind k) {
  switch (k) {
    case CheckKind::kHierarchicalDrc: return 10.0;
    case CheckKind::kFlatBaselineDrc: return 6.0;
    case CheckKind::kNetlistOnly: return 4.0;
    case CheckKind::kErc: return 1.0;
  }
  return 1.0;
}

/// Does this request kind consume (and so publish) a cached netlist?
bool needsNetlist(CheckKind k) {
  // The baseline by design discards topology; everything else routes
  // through the per-view netlist cache.
  return k != CheckKind::kFlatBaselineDrc;
}

/// Approximate heap bytes of an extracted netlist, for the LRU cap's
/// accounting (the netlist is cached alongside its view).
std::size_t netlistMemoryBytes(const netlist::Netlist& nl) {
  std::size_t b = sizeof(nl) + nl.elementNet.capacity() * sizeof(int);
  for (const netlist::Net& n : nl.nets) {
    b += sizeof(n) + n.terminals.capacity() * sizeof(netlist::Terminal);
    for (const netlist::Terminal& t : n.terminals) b += t.port.capacity();
    for (const std::string& s : n.names) b += sizeof(s) + s.capacity();
  }
  for (const netlist::ExtractedDevice& d : nl.devices) {
    b += sizeof(d) + d.path.capacity() + d.type.capacity();
    // portNets: node per port, key short -- count node overhead + key.
    for (const auto& [port, net] : d.portNets) {
      (void)net;
      b += 3 * sizeof(void*) + sizeof(int) + port.capacity();
    }
  }
  return b;
}

/// The result-affecting subset of drc::Options (threads deliberately
/// excluded: the determinism contract makes pool size invisible in the
/// report). Gates incremental-cache engagement: cached per-unit results
/// are only valid for a request that would have produced them.
bool sameResultOptions(const drc::Options& a, const drc::Options& b) {
  return a.metric == b.metric && a.checkDevices == b.checkDevices &&
         a.hierarchicalInteractions == b.hierarchicalInteractions &&
         a.useNetInformation == b.useNetInformation &&
         a.instantiateViolations == b.instantiateViolations &&
         a.extract == b.extract;
}

}  // namespace

std::string toString(CheckKind k) {
  switch (k) {
    case CheckKind::kHierarchicalDrc: return "drc";
    case CheckKind::kFlatBaselineDrc: return "baseline";
    case CheckKind::kErc: return "erc";
    case CheckKind::kNetlistOnly: return "netlist";
  }
  return "?";
}

CheckRequest CheckRequest::drc(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kHierarchicalDrc;
  r.root = root;
  return r;
}

CheckRequest CheckRequest::baseline(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kFlatBaselineDrc;
  r.root = root;
  r.metric = geom::Metric::kOrthogonal;
  return r;
}

CheckRequest CheckRequest::ercCheck(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kErc;
  r.root = root;
  return r;
}

CheckRequest CheckRequest::netlistOnly(layout::CellId root) {
  CheckRequest r;
  r.kind = CheckKind::kNetlistOnly;
  r.root = root;
  return r;
}

EditOp EditOp::setElement(layout::CellId cell, std::size_t index,
                          layout::Element e) {
  EditOp op;
  op.kind = Kind::kSetElement;
  op.cell = cell;
  op.index = index;
  op.element = std::move(e);
  return op;
}

Workspace::Workspace(layout::Library lib, tech::Technology tech,
                     WorkspaceOptions options)
    : lib_(std::move(lib)),
      tech_(std::move(tech)),
      opts_(options),
      exec_(options.threads) {}

Workspace::Workspace(layout::Library lib, tech::Technology tech,
                     engine::Executor& exec, WorkspaceOptions options)
    : lib_(std::move(lib)),
      tech_(std::move(tech)),
      opts_(options),
      exec_(1),  // serial stub; all parallelism comes from *extExec_
      extExec_(&exec) {}

Workspace::Workspace(std::shared_ptr<const layout::Library> lib,
                     tech::Technology tech, engine::Executor& exec,
                     WorkspaceOptions options)
    : sharedLib_(std::move(lib)),
      tech_(std::move(tech)),
      opts_(options),
      exec_(1),  // serial stub; all parallelism comes from *extExec_
      extExec_(&exec) {
  if (!sharedLib_)
    throw std::invalid_argument("Workspace: replica snapshot is null");
}

layout::Library& Workspace::library() {
  if (sharedLib_)
    throw std::logic_error(
        "Workspace: read-only replica serves a shared snapshot");
  return lib_;
}

void Workspace::applyEdits(const std::vector<EditOp>& edits) {
  if (sharedLib_)
    throw std::logic_error(
        "Workspace: edits routed to a read-only replica");
  for (const EditOp& e : edits) {
    switch (e.kind) {
      case EditOp::Kind::kNone:
        break;
      case EditOp::Kind::kSetElement:
        lib_.setElement(e.cell, e.index, e.element);
        break;
      case EditOp::Kind::kAddElement:
        lib_.addElement(e.cell, e.element);
        break;
      case EditOp::Kind::kRemoveElement:
        lib_.removeElement(e.cell, e.index);
        break;
      case EditOp::Kind::kAddInstance:
        lib_.addInstance(e.cell, e.instance);
        break;
      case EditOp::Kind::kRemoveInstance:
        lib_.removeInstance(e.cell, e.index);
        break;
    }
  }
}

bool Workspace::tryPatch(Entry& e, const std::vector<layout::CellEdit>& edits) {
  // Kernel section span: the in-place patch path is one of the hot
  // incremental-serving kernels the trace view attributes time to.
  obs::ScopedSpan patchSpan("view.patch");
  // Fast-path admission: element-content edits on composite cells with
  // the layer unchanged. (Structural edits never reach here — they clear
  // the library's edit log, so editsSince already returned nullopt.)
  for (const layout::CellEdit& ed : edits) {
    if (roLib().cell(ed.cell).isDevice()) return false;
    if (ed.oldElement.layer != ed.newElement.layer) return false;
  }
  // Unique edited slots, first-edit order. Multiple edits of one slot
  // patch once: patchElement reads the library's final content.
  std::vector<std::pair<layout::CellId, std::size_t>> slots;
  for (const layout::CellEdit& ed : edits) {
    const std::pair<layout::CellId, std::size_t> key{ed.cell, ed.index};
    if (std::find(slots.begin(), slots.end(), key) == slots.end())
      slots.push_back(key);
  }
  // Pre-patch connectivity probes. The view still holds the PRE-edit
  // geometry (the library has moved on, but flat state is a copy), so
  // probing now captures each edited element's old edge set. If the flat
  // view was never materialized there is no old state to probe — and
  // also no cached netlist to preserve (extraction builds the flat view).
  const bool probed = e.view->flatBuilt(false);
  std::vector<std::size_t> flatIdx;
  std::vector<std::vector<std::size_t>> oldEdges;
  if (probed) {
    obs::ScopedSpan probeSpan("netlist.probe");
    for (const auto& [cell, idx] : slots) {
      const std::vector<std::size_t> ks = e.view->flatSlotsOf(false, cell, idx);
      flatIdx.insert(flatIdx.end(), ks.begin(), ks.end());
    }
    oldEdges.reserve(flatIdx.size());
    for (const std::size_t k : flatIdx)
      oldEdges.push_back(netlist::probeElementEdges(*e.view, tech_, k));
  }
  for (const auto& [cell, idx] : slots)
    if (!e.view->patchElement(cell, idx)) return false;
  // Post-patch probes: every edited flat instance keeping its exact edge
  // set (and net label) means the extraction's union-find partition — and
  // with it net numbering, names, and terminals — is unchanged; only net
  // bboxes (a pure element-bbox fold) can differ.
  bool netKept = probed;
  for (const layout::CellEdit& ed : edits)
    if (ed.oldElement.net != ed.newElement.net) netKept = false;
  if (netKept) {
    obs::ScopedSpan probeSpan("netlist.probe");
    for (std::size_t k = 0; k < flatIdx.size() && netKept; ++k)
      if (netlist::probeElementEdges(*e.view, tech_, flatIdx[k]) !=
          oldEdges[k])
        netKept = false;
  }
  bool bboxSame = true;
  for (const layout::CellEdit& ed : edits)
    if (!(ed.oldCellBBox == ed.newCellBBox)) bboxSame = false;
  {
    std::lock_guard<std::mutex> nlock(e.nlMu);
    if (e.netlist && netKept) {
      auto nl = std::make_shared<netlist::Netlist>(*e.netlist);
      netlist::refreshNetBBoxes(*nl, e.view->flat(false).bboxes);
      e.netlist = std::move(nl);
    } else if (e.netlist) {
      e.netlist.reset();
      e.netlistBytes.store(0, std::memory_order_release);
    }
  }
  e.revision = roLib().revision();
  e.pendingEdits.insert(e.pendingEdits.end(), edits.begin(), edits.end());
  e.netlistKept = e.netlistKept && netKept;
  e.bboxUnchanged = e.bboxUnchanged && bboxSame;
  return true;
}

std::shared_ptr<Workspace::Entry> Workspace::acquire(layout::CellId root,
                                                     bool& hit) {
  std::lock_guard<std::mutex> lock(cacheMu_);
  std::shared_ptr<Entry>& slot = cache_[root];
  if (slot && slot->revision == roLib().revision()) {
    hit = true;
    ++stats_.viewHits;
    slot->lastUse = ++lruTick_;
    return slot;
  }
  if (slot) {
    // Delta path: when every mutation since the entry's revision is a
    // tracked element edit, patch the cached view in place instead of
    // rebuilding — still a view cache hit, and the entry's incremental
    // state (pending dirty window, netlist) advances with it.
    if (const auto edits = roLib().editsSince(slot->revision);
        edits && tryPatch(*slot, *edits)) {
      hit = true;
      ++stats_.viewHits;
      slot->lastUse = ++lruTick_;
      return slot;
    }
    ++stats_.viewEvictions;
  }
  slot = std::make_shared<Entry>();
  slot->revision = roLib().revision();
  slot->lastUse = ++lruTick_;
  slot->view = std::make_shared<engine::HierarchyView>(roLib(), root);
  ++stats_.viewMisses;
  hit = false;
  return slot;
}

void Workspace::enforceCacheLimit() {
  if (opts_.maxCacheBytes == 0) return;
  std::lock_guard<std::mutex> lock(cacheMu_);
  const auto entryBytes = [](const Entry& e) {
    return e.view->memoryBytes() +
           e.netlistBytes.load(std::memory_order_acquire);
  };
  // Evict coldest-first until the accounted total fits, sparing the most
  // recently acquired entry (evicting what we just served would turn a
  // too-small cap into a cold cache on every request). Eviction only
  // drops the map's reference: an in-flight request keeps its entry
  // alive through its own shared_ptr, and a later request on an evicted
  // root transparently rebuilds.
  while (cache_.size() > 1) {
    std::size_t total = 0;
    std::uint64_t newest = 0;
    for (const auto& [root, e] : cache_) {
      (void)root;
      total += entryBytes(*e);
      newest = std::max(newest, e->lastUse);
    }
    if (total <= opts_.maxCacheBytes) return;
    auto coldest = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second->lastUse == newest) continue;
      if (coldest == cache_.end() ||
          it->second->lastUse < coldest->second->lastUse)
        coldest = it;
    }
    if (coldest == cache_.end()) return;
    cache_.erase(coldest);
    ++stats_.lruEvictions;
  }
}

std::shared_ptr<engine::HierarchyView> Workspace::view(layout::CellId root) {
  bool hit = false;
  return acquire(root, hit)->view;
}

std::shared_ptr<const netlist::Netlist> Workspace::netlistFor(
    Entry& e, const netlist::ExtractOptions& opts, engine::Executor& exec,
    bool& hit) {
  // nlMu is held across the extraction on purpose: a second request for
  // the same netlist blocks and then shares the result instead of
  // duplicating the critical-path work. cacheMu_ must NOT be taken while
  // nlMu is held: acquire() patches entries (tryPatch takes nlMu) under
  // cacheMu_, so nesting the other way round is a lock-order inversion.
  std::shared_ptr<const netlist::Netlist> result;
  {
    std::lock_guard<std::mutex> lock(e.nlMu);
    if (e.netlist && e.nlOpts == opts) {
      hit = true;
    } else {
      obs::ScopedSpan extractSpan("netlist.extract");
      e.netlist = std::make_shared<const netlist::Netlist>(
          netlist::extract(*e.view, tech_, exec, opts));
      e.nlOpts = opts;
      e.netlistBytes.store(netlistMemoryBytes(*e.netlist),
                           std::memory_order_release);
      hit = false;
    }
    result = e.netlist;
  }
  if (hit) {
    std::lock_guard<std::mutex> slock(cacheMu_);
    ++stats_.netlistHits;
  }
  return result;
}

CheckResult Workspace::serve(const CheckRequest& req, engine::Executor& exec) {
  CheckResult r;
  r.kind = req.kind;
  r.root = req.root;
  r.tag = req.tag;
  std::shared_ptr<Entry> entry;
  const auto t0 = std::chrono::steady_clock::now();
  // The request's service-side root span: everything below (view
  // acquisition, the check's pipeline stages, kernel sections) nests
  // under it, attributed to req.traceId (or the ambient trace).
  obs::ScopedSpan span("serve:" + toString(req.kind), req.traceId);
  try {
    // Edits are applied first, inside the request's serial window; the
    // acquire below then sees the bumped revision and either patches the
    // cached view in place (tracked element edits) or rebuilds.
    if (!req.edits.empty()) applyEdits(req.edits);
    bool viewHit = false;
    {
      obs::ScopedSpan acquireSpan("view.acquire");
      entry = acquire(req.root, viewHit);
    }
    r.viewCacheHit = viewHit;
    r.revision = entry->revision;

    switch (req.kind) {
      case CheckKind::kHierarchicalDrc: {
        drc::Options o;
        o.metric = req.metric;
        o.checkDevices = req.checkDevices;
        o.hierarchicalInteractions = req.hierarchicalInteractions;
        o.useNetInformation = req.useNetInformation;
        o.instantiateViolations = req.instantiateViolations;
        o.extract = req.extract;
        drc::Checker checker(entry->view, tech_, o);
        // Incremental edit-then-check (serve() only — the decomposed
        // batch path shares entries across concurrently running stages
        // and must not touch the per-entry cache). Signature-gated: the
        // cache serves only requests whose result-affecting options
        // match the run that populated it.
        drc::DirtyInfo dirty;
        bool engaged = false;
        bool populating = false;
        if (o.hierarchicalInteractions &&
            (!entry->icacheOptsSet ||
             sameResultOptions(entry->icacheOpts, o))) {
          if (entry->icache.valid) {
            dirty = drc::computeDirtyInfo(*entry->view, entry->pendingEdits);
            dirty.reuseInteractions =
                entry->netlistKept && entry->bboxUnchanged;
            checker.setIncremental(&entry->icache, &dirty);
            engaged = true;
          } else {
            checker.setIncremental(&entry->icache, nullptr);
            populating = true;
          }
          entry->icacheOpts = o;
          entry->icacheOptsSet = true;
        }
        // The pipeline's netlist stage goes through the per-view cache:
        // on a hit it is a handoff; on a miss netlistFor extracts while
        // holding the entry's netlist mutex, so a concurrent request for
        // the same netlist blocks and shares the one extraction instead
        // of duplicating the critical-path work.
        bool netlistHit = false;
        checker.setNetlistSupplier(
            [this, entry, &req, &netlistHit](engine::Executor& e) {
              return netlistFor(*entry, req.extract, e, netlistHit);
            });
        r.report = checker.run(exec);
        if (engaged || populating) {
          // The cache now reflects this run: snapshot the cell order it
          // is parallel to, publish validity, and consume the dirty
          // window the run just re-checked.
          entry->icache.cells = entry->view->cells();
          entry->icache.valid = true;
          entry->pendingEdits.clear();
          entry->netlistKept = true;
          entry->bboxUnchanged = true;
        }
        r.incrementalHit = engaged;
        r.netlistCacheHit = netlistHit;
        r.stageTimes = checker.stageTimes();
        r.stageResults = checker.stageResults();
        r.interactionStats = checker.interactionStats();
        r.netlist = checker.lastNetlist();
        break;
      }
      case CheckKind::kFlatBaselineDrc: {
        baseline::Options o;
        o.metric = req.metric;
        o.checkWidth = req.baselineWidth;
        o.checkSpacing = req.baselineSpacing;
        o.checkContacts = req.baselineContacts;
        r.report = baseline::check(*entry->view, tech_, o, &r.baselineStats);
        break;
      }
      case CheckKind::kErc: {
        r.netlist = netlistFor(*entry, req.extract, exec, r.netlistCacheHit);
        r.report = erc::check(*r.netlist, tech_, req.erc);
        break;
      }
      case CheckKind::kNetlistOnly: {
        r.netlist = netlistFor(*entry, req.extract, exec, r.netlistCacheHit);
        break;
      }
    }
  } catch (const std::exception& ex) {
    r.error = ex.what();
    // A failed run may have partially overwritten the incremental cache's
    // slices; invalidate conservatively (costs one repopulating run).
    if (entry) entry->icache.valid = false;
  } catch (...) {
    r.error = "unknown failure";
    if (entry) entry->icache.valid = false;
  }
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // Cache bookkeeping is not part of the request's clock.
  enforceCacheLimit();
  return r;
}

CheckResult Workspace::run(const CheckRequest& req) {
  if (req.threads > 0) {
    engine::Executor dedicated(req.threads);
    return serve(req, dedicated);
  }
  return serve(req, activeExec());
}

std::vector<CheckResult> Workspace::runBatch(
    std::span<const CheckRequest> reqs) {
  // Edit-carrying requests are barriers: each one's library mutation and
  // check must run alone (the mutation invalidates/patches the very views
  // concurrent stages would be reading). The batch splits at those
  // boundaries — edit-free segments run through the decomposed dispatcher
  // below, each barrier serves serially in order via serve() (which is
  // also where it gets the incremental fast path) — so the result vector
  // is byte-identical to a sequential replay of the whole batch.
  const bool hasEdits =
      std::any_of(reqs.begin(), reqs.end(),
                  [](const CheckRequest& r) { return !r.edits.empty(); });
  if (hasEdits) {
    std::vector<CheckResult> out;
    out.reserve(reqs.size());
    std::size_t i = 0;
    while (i < reqs.size()) {
      if (!reqs[i].edits.empty()) {
        out.push_back(serve(reqs[i], activeExec()));
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < reqs.size() && reqs[j].edits.empty()) ++j;
      std::vector<CheckResult> seg = runBatchImpl(reqs.subspan(i, j - i));
      for (CheckResult& s : seg) out.push_back(std::move(s));
      i = j;
    }
    return out;
  }
  return runBatchImpl(reqs);
}

std::vector<CheckResult> Workspace::runBatchImpl(
    std::span<const CheckRequest> reqs) {
  const std::size_t n = reqs.size();
  std::vector<CheckResult> out(n);
  if (n == 0) return out;

  // Decomposed batch dispatch: instead of scheduling each request as one
  // opaque stage, every request contributes its INNER pipeline stages —
  // view warm-up, netlist extraction, the checks, and a merge — to one
  // batch-wide graph on the ready-queue dispatcher. Cross-request edges
  // express exactly the shared work (one view-build stage per root, one
  // extraction-prefetch stage per (root, ExtractOptions) pair with two or
  // more consumers), so request B's check stages start the moment B's own
  // dependencies finish — while request A's extraction is still running —
  // instead of queueing behind the whole of A. One pipeline run means one
  // help scope spanning the batch: the calling thread helps with any of
  // the batch's stages while it waits. Results stay byte-identical to
  // sequential per-request runs because every stage writes only its own
  // request's slots and each request's report merges its stage slots in
  // the request's own declaration order (the engine contract;
  // docs/workspace.md "Batch dispatch").
  engine::Pipeline pipe;

  // ---- shared view stages: one per unique root -------------------------
  // Entries are acquired up front (HierarchyView construction is lazy and
  // cheap); the stage pays the shared placement build once so consumers
  // start from a warm view. A bad root throws here and poisons exactly
  // the requests on that root (FailurePolicy::kIsolate).
  struct ViewShare {
    layout::CellId root{0};
    std::string name;
    std::shared_ptr<Entry> entry;
    bool hit{false};
  };
  std::vector<ViewShare> views;
  for (const CheckRequest& r : reqs) {
    if (std::find_if(views.begin(), views.end(), [&](const ViewShare& v) {
          return v.root == r.root;
        }) == views.end())
      views.push_back({r.root, "view" + std::to_string(views.size()), {}, false});
  }
  for (ViewShare& v : views) {
    v.entry = acquire(v.root, v.hit);
    pipe.add({v.name,
              {},
              [entry = v.entry](engine::Executor&) {
                entry->view->placements();
                return report::Report{};
              },
              /*cost=*/3.0});
  }
  const auto viewOf = [&](layout::CellId root) -> const ViewShare& {
    return *std::find_if(views.begin(), views.end(),
                         [&](const ViewShare& v) { return v.root == root; });
  };

  // ---- shared netlist prefetch stages ---------------------------------
  // One per (root, extract options) pair that two or more
  // netlist-consuming requests share: the extraction runs exactly once,
  // every consumer's own netlist stage becomes a cache handoff, and no
  // worker is ever pinned blocking on the per-entry netlist mutex. With a
  // single consumer the request's own netlist stage does the extraction
  // directly. A failing prefetch poisons its consumers, which then report
  // the same deterministic failure a sequential run would hit.
  struct NlShare {
    layout::CellId root{0};
    netlist::ExtractOptions opts;
    std::size_t uses{0};
    std::string name;
  };
  std::vector<NlShare> prefetches;
  for (const CheckRequest& r : reqs) {
    if (!needsNetlist(r.kind)) continue;
    auto it = std::find_if(prefetches.begin(), prefetches.end(),
                           [&](const NlShare& p) {
                             return p.root == r.root && p.opts == r.extract;
                           });
    if (it != prefetches.end())
      ++it->uses;
    else
      prefetches.push_back({r.root, r.extract, 1, ""});
  }
  prefetches.erase(std::remove_if(prefetches.begin(), prefetches.end(),
                                  [](const NlShare& p) { return p.uses < 2; }),
                   prefetches.end());
  for (std::size_t k = 0; k < prefetches.size(); ++k) {
    NlShare& p = prefetches[k];
    p.name = "nl" + std::to_string(k);
    pipe.add({p.name,
              {viewOf(p.root).name},
              [this, entry = viewOf(p.root).entry,
               opts = p.opts](engine::Executor& e) {
                bool nlHit = false;
                netlistFor(*entry, opts, e, nlHit);
                return report::Report{};
              },
              costHint(CheckKind::kNetlistOnly)});
  }
  const auto prefetchOf = [&](const CheckRequest& r) -> const NlShare* {
    auto it = std::find_if(prefetches.begin(), prefetches.end(),
                           [&](const NlShare& p) {
                             return p.root == r.root && p.opts == r.extract;
                           });
    return it != prefetches.end() ? &*it : nullptr;
  };

  // ---- per-request stages ---------------------------------------------
  // Stable per-request state the stage bodies write into (slots only;
  // the engine's slot-ordered-merge rule is what keeps the batch
  // byte-identical to sequential runs).
  struct ReqState {
    std::unique_ptr<drc::Checker> checker;  ///< hierarchical DRC only
    report::Report baselineRep;
    baseline::Stats baselineStats;
    report::Report ercRep;
    std::shared_ptr<const netlist::Netlist> netlist;  ///< erc/netlist-only
    bool netlistHit{false};
    std::vector<std::string> ownStages;  ///< declaration order, incl. merge
    const ViewShare* view{nullptr};
    const NlShare* prefetch{nullptr};
  };
  std::vector<ReqState> states(n);

  for (std::size_t i = 0; i < n; ++i) {
    const CheckRequest& req = reqs[i];
    ReqState& st = states[i];
    st.view = &viewOf(req.root);
    st.prefetch = needsNetlist(req.kind) ? prefetchOf(req) : nullptr;
    const std::string pfx = "req" + std::to_string(i) + ":";
    const std::vector<std::string> viewDep = {st.view->name};
    std::vector<std::string> nlDeps = viewDep;
    if (st.prefetch) nlDeps.push_back(st.prefetch->name);
    const std::shared_ptr<Entry> entry = st.view->entry;

    switch (req.kind) {
      case CheckKind::kHierarchicalDrc: {
        drc::Options o;
        o.metric = req.metric;
        o.checkDevices = req.checkDevices;
        o.hierarchicalInteractions = req.hierarchicalInteractions;
        o.useNetInformation = req.useNetInformation;
        o.instantiateViolations = req.instantiateViolations;
        o.extract = req.extract;
        st.checker = std::make_unique<drc::Checker>(entry->view, tech_, o);
        // The request's netlist stage routes through the per-view cache:
        // after the shared prefetch (or a sibling request) published the
        // extraction, this is a handoff.
        st.checker->setNetlistSupplier(
            [this, entry, opts = req.extract, &st](engine::Executor& e) {
              return netlistFor(*entry, opts, e, st.netlistHit);
            });
        std::vector<std::string> prefetchDep;
        if (st.prefetch) prefetchDep.push_back(st.prefetch->name);
        for (engine::Stage& s :
             st.checker->stages(pfx, viewDep, std::move(prefetchDep))) {
          s.traceId = req.traceId;  // this request's span tree, not ambient
          st.ownStages.push_back(s.name);
          pipe.add(std::move(s));
        }
        break;
      }
      case CheckKind::kFlatBaselineDrc: {
        baseline::Options o;
        o.metric = req.metric;
        o.checkWidth = req.baselineWidth;
        o.checkSpacing = req.baselineSpacing;
        o.checkContacts = req.baselineContacts;
        st.ownStages.push_back(pfx + "baseline");
        engine::Stage bs = baseline::stage(pfx + "baseline", viewDep,
                                           entry->view, tech_, o,
                                           &st.baselineRep, &st.baselineStats);
        bs.traceId = req.traceId;
        pipe.add(std::move(bs));
        break;
      }
      case CheckKind::kErc:
      case CheckKind::kNetlistOnly: {
        st.ownStages.push_back(pfx + "netlist");
        pipe.add({pfx + "netlist", std::move(nlDeps),
                  [this, entry, opts = req.extract, &st](engine::Executor& e) {
                    st.netlist = netlistFor(*entry, opts, e, st.netlistHit);
                    return report::Report{};
                  },
                  costHint(CheckKind::kNetlistOnly), req.traceId});
        if (req.kind == CheckKind::kErc) {
          st.ownStages.push_back(pfx + "erc");
          engine::Stage es = erc::stage(pfx + "erc", {pfx + "netlist"},
                                        &st.netlist, tech_, req.erc,
                                        &st.ercRep);
          es.traceId = req.traceId;
          pipe.add(std::move(es));
        }
        break;
      }
    }

    // The merge stage assembles the request's CheckResult from the slots
    // the moment the request's last stage finishes — it does not wait for
    // the rest of the batch. Timing fields are filled post-run from the
    // batch pipeline's results.
    pipe.add({pfx + "merge", st.ownStages,
              [this, &req, &st, &r = out[i], entry](engine::Executor&) {
                r.kind = req.kind;
                r.root = req.root;
                r.tag = req.tag;
                r.revision = entry->revision;
                r.viewCacheHit = st.view->hit;
                r.netlistCacheHit = st.netlistHit;
                switch (req.kind) {
                  case CheckKind::kHierarchicalDrc:
                    r.report = st.checker->report();
                    r.interactionStats = st.checker->interactionStats();
                    r.netlist = st.checker->lastNetlist();
                    break;
                  case CheckKind::kFlatBaselineDrc:
                    r.report = st.baselineRep;
                    r.baselineStats = st.baselineStats;
                    break;
                  case CheckKind::kErc:
                    r.report = st.ercRep;
                    r.netlist = st.netlist;
                    break;
                  case CheckKind::kNetlistOnly:
                    r.netlist = st.netlist;
                    break;
                }
                return report::Report{};
              },
              /*cost=*/0.1, req.traceId});
    st.ownStages.push_back(pfx + "merge");
  }

  // One dispatcher, one help scope, the whole batch: a failing stage
  // poisons only its transitive dependents (that request — and, for a
  // failing shared stage, that root's requests), never its siblings.
  pipe.run(activeExec(), engine::FailurePolicy::kIsolate);

  // ---- post-run: timings and failure reporting ------------------------
  std::map<std::string, const engine::StageResult*> byName;
  for (const engine::StageResult& r : pipe.results()) byName[r.name] = &r;
  for (std::size_t i = 0; i < n; ++i) {
    const CheckRequest& req = reqs[i];
    ReqState& st = states[i];
    CheckResult& r = out[i];
    // Shared stages first so the root cause's message wins over a
    // dependent's skip.
    std::vector<const engine::StageResult*> chain;
    chain.push_back(byName.at(st.view->name));
    if (st.prefetch) chain.push_back(byName.at(st.prefetch->name));
    for (const std::string& nm : st.ownStages) chain.push_back(byName.at(nm));
    std::string err;
    bool failed = false;
    for (const engine::StageResult* sr : chain) {
      if (sr->ok()) continue;
      failed = true;
      if (err.empty() && !sr->error.empty()) err = sr->error;
    }
    const auto spanOf = [](const std::vector<const engine::StageResult*>& c) {
      double first = -1.0, last = 0.0;
      for (const engine::StageResult* sr : c) {
        if (sr->start < 0) continue;
        if (first < 0 || sr->start < first) first = sr->start;
        last = std::max(last, sr->start + sr->seconds);
      }
      return first >= 0 ? last - first : 0.0;
    };
    if (failed) {
      // The merge stage was skipped; fill the identity fields here. The
      // clock spans everything the failed request's chain actually ran
      // (shared stages included — the failure often lives there), so a
      // failed request is never reported as zero-cost.
      r.kind = req.kind;
      r.root = req.root;
      r.tag = req.tag;
      r.revision = st.view->entry->revision;
      r.viewCacheHit = st.view->hit;
      r.seconds = spanOf(chain);
      r.error = err.empty() ? "batch stage skipped: dependency failed" : err;
      continue;
    }
    // The request's clock spans its own stages (batch-relative starts);
    // shared prefetch work is deliberately outside it, mirroring how a
    // warm sequential run would not pay for it either.
    std::vector<const engine::StageResult*> own;
    for (const std::string& nm : st.ownStages) own.push_back(byName.at(nm));
    r.seconds = spanOf(own);
    if (req.kind == CheckKind::kHierarchicalDrc) {
      const std::string pfx = "req" + std::to_string(i) + ":";
      for (const char* name :
           {"elements", "symbols", "connections", "netlist", "interactions"}) {
        engine::StageResult sr = *byName.at(pfx + name);
        sr.name = name;  // canonical stage names, as a standalone run
        r.stageResults.push_back(std::move(sr));
      }
      r.stageTimes.elements = r.stageResults[0].seconds;
      r.stageTimes.symbols = r.stageResults[1].seconds;
      r.stageTimes.connections = r.stageResults[2].seconds;
      r.stageTimes.netlist = r.stageResults[3].seconds;
      r.stageTimes.interactions = r.stageResults[4].seconds;
    }
  }
  enforceCacheLimit();
  return out;
}

Workspace::CacheStats Workspace::cacheStats() const {
  std::lock_guard<std::mutex> lock(cacheMu_);
  CacheStats s = stats_;
  s.cachedViews = cache_.size();
  for (const auto& [root, e] : cache_) {
    (void)root;
    s.cacheBytes += e->view->memoryBytes() +
                    e->netlistBytes.load(std::memory_order_acquire);
  }
  s.scratchBytes = engine::Arena::totalReservedBytes();
  return s;
}

}  // namespace dic
