#include "layout/library.hpp"

#include <algorithm>
#include <cassert>
#include <set>
#include <stdexcept>
#include <utility>

namespace dic::layout {

Library::Library(const Library& o) {
  std::lock_guard<std::mutex> lock(o.bboxMu_);
  cells_ = o.cells_;
  byName_ = o.byName_;
  revision_ = o.revision_;
  editLog_ = o.editLog_;
  logStart_ = o.logStart_;
  allGen_ = o.allGen_;
  cellGen_ = o.cellGen_;
  bboxCache_ = o.bboxCache_;
}

Library::Library(Library&& o) noexcept {
  std::lock_guard<std::mutex> lock(o.bboxMu_);
  cells_ = std::move(o.cells_);
  byName_ = std::move(o.byName_);
  revision_ = o.revision_;
  editLog_ = std::move(o.editLog_);
  logStart_ = o.logStart_;
  allGen_ = o.allGen_;
  cellGen_ = std::move(o.cellGen_);
  bboxCache_ = std::move(o.bboxCache_);
}

Library& Library::operator=(const Library& o) {
  if (this == &o) return *this;
  Library tmp(o);
  return *this = std::move(tmp);
}

Library& Library::operator=(Library&& o) noexcept {
  if (this == &o) return *this;
  std::scoped_lock lock(bboxMu_, o.bboxMu_);
  cells_ = std::move(o.cells_);
  byName_ = std::move(o.byName_);
  // The object's content changed wholesale: advance past both histories so
  // no revision ever seen on either object can alias the new content, and
  // treat the change as untracked (no replayable delta).
  revision_ = std::max(revision_, o.revision_) + 1;
  allGen_ = std::max(allGen_, o.allGen_) + 1;
  editLog_.clear();
  logStart_ = revision_;
  cellGen_.clear();
  bboxCache_ = std::move(o.bboxCache_);
  return *this;
}

CellId Library::addCell(Cell cell) {
  if (byName_.count(cell.name))
    throw std::invalid_argument("duplicate cell name: " + cell.name);
  const CellId id = static_cast<CellId>(cells_.size());
  byName_[cell.name] = id;
  cells_.push_back(std::move(cell));
  invalidateCaches();
  return id;
}

std::optional<CellId> Library::findCell(const std::string& name) const {
  auto it = byName_.find(name);
  if (it == byName_.end()) return std::nullopt;
  return it->second;
}

void Library::setElement(CellId cell, std::size_t index, Element e) {
  Cell& c = cells_.at(cell);
  CellEdit ed;
  ed.cell = cell;
  ed.index = index;
  ed.oldElement = c.elements.at(index);  // throws before any mutation
  ed.oldCellBBox = cellBBox(cell);
  c.elements[index] = std::move(e);
  ed.newElement = c.elements[index];
  bumpRevision();  // drops the now-stale bbox cache
  ed.newCellBBox = cellBBox(cell);
  ed.revision = revision_;
  ++cellGen_[cell];
  editLog_.push_back(std::move(ed));
  if (editLog_.size() > kMaxEditLog) {
    editLog_.erase(editLog_.begin(),
                   editLog_.end() - static_cast<std::ptrdiff_t>(kMaxEditLog));
    logStart_ = editLog_.front().revision - 1;
  }
}

void Library::structuralEdit(CellId cell) {
  bumpRevision();
  ++cellGen_[cell];
  editLog_.clear();
  logStart_ = revision_;
}

std::size_t Library::addElement(CellId cell, Element e) {
  Cell& c = cells_.at(cell);
  c.elements.push_back(std::move(e));
  structuralEdit(cell);
  return c.elements.size() - 1;
}

void Library::removeElement(CellId cell, std::size_t index) {
  Cell& c = cells_.at(cell);
  if (index >= c.elements.size())
    throw std::out_of_range("removeElement: bad index");
  c.elements.erase(c.elements.begin() + static_cast<std::ptrdiff_t>(index));
  structuralEdit(cell);
}

std::size_t Library::addInstance(CellId cell, Instance inst) {
  Cell& c = cells_.at(cell);
  cells_.at(inst.cell);  // validate the target before mutating
  c.instances.push_back(std::move(inst));
  structuralEdit(cell);
  return c.instances.size() - 1;
}

void Library::removeInstance(CellId cell, std::size_t index) {
  Cell& c = cells_.at(cell);
  if (index >= c.instances.size())
    throw std::out_of_range("removeInstance: bad index");
  c.instances.erase(c.instances.begin() + static_cast<std::ptrdiff_t>(index));
  structuralEdit(cell);
}

std::optional<std::vector<CellEdit>> Library::editsSince(
    std::uint64_t rev) const {
  if (rev == revision_) return std::vector<CellEdit>{};
  if (rev > revision_ || rev < logStart_) return std::nullopt;
  std::vector<CellEdit> out;
  for (const CellEdit& e : editLog_)
    if (e.revision > rev) out.push_back(e);
  // Every revision step since `rev` must be accounted for by a logged
  // edit; a gap means an untracked mutation slipped in between.
  if (out.size() != revision_ - rev) return std::nullopt;
  return out;
}

std::uint64_t Library::cellGeneration(CellId id) const {
  auto it = cellGen_.find(id);
  const std::uint64_t tracked = it == cellGen_.end() ? 0 : it->second;
  // Sum, not max: both tracked edits to this cell and untracked global
  // mutations must each advance the observed value.
  return tracked + allGen_;
}

geom::Rect Library::cellBBox(CellId id) const {
  // The lock brackets only the map accesses, never the recursive descent,
  // so concurrent cold-cache lookups from parallel workers are safe (two
  // workers may compute the same bbox; both insert the identical value).
  {
    std::lock_guard<std::mutex> lock(bboxMu_);
    auto it = bboxCache_.find(id);
    if (it != bboxCache_.end()) return it->second;
  }
  const Cell& c = cells_.at(id);
  geom::Rect b{{0, 0}, {0, 0}};
  for (const Element& e : c.elements) b = geom::bound(b, e.bbox());
  for (const Instance& inst : c.instances)
    b = geom::bound(b, inst.transform.apply(cellBBox(inst.cell)));
  std::lock_guard<std::mutex> lock(bboxMu_);
  bboxCache_.emplace(id, b);
  return b;
}

void Library::forEachCellOnce(CellId root,
                              const std::function<void(CellId)>& fn) const {
  std::set<CellId> seen;
  std::function<void(CellId)> rec = [&](CellId id) {
    if (!seen.insert(id).second) return;
    for (const Instance& inst : cells_.at(id).instances) rec(inst.cell);
    fn(id);  // post-order: substrates before users
  };
  rec(root);
}

void Library::flatten(CellId root, std::vector<FlatElement>& elements,
                      std::vector<FlatDevice>& devices,
                      bool includeDeviceGeometry) const {
  flattenRec(root, geom::identityTransform(), "", elements, &devices,
             includeDeviceGeometry, false);
}

void Library::flattenRec(CellId id, const geom::Transform& t,
                         std::string path, std::vector<FlatElement>& elements,
                         std::vector<FlatDevice>* devices,
                         bool includeDeviceGeometry, bool insideDevice) const {
  const Cell& c = cells_.at(id);
  if (c.isDevice() && !insideDevice) {
    if (devices) {
      FlatDevice d;
      d.cell = id;
      d.deviceType = c.deviceType;
      d.path = path;
      d.transform = t;
      d.ports = c.ports;
      for (Port& p : d.ports) p.at = t.apply(p.at);
      d.bbox = t.apply(cellBBox(id));
      devices->push_back(std::move(d));
    }
    if (!includeDeviceGeometry) return;
    insideDevice = true;
  }
  for (std::size_t i = 0; i < c.elements.size(); ++i) {
    FlatElement fe;
    fe.element = c.elements[i].transformed(t);
    fe.sourceCell = id;
    fe.sourceIndex = i;
    fe.path = path;
    elements.push_back(std::move(fe));
  }
  int childNo = 0;
  for (const Instance& inst : c.instances) {
    std::string childName =
        inst.name.empty() ? cells_.at(inst.cell).name + "_" +
                                std::to_string(childNo)
                          : inst.name;
    ++childNo;
    std::string childPath =
        path.empty() ? childName : path + "." + childName;
    flattenRec(inst.cell, geom::compose(inst.transform, t),
               std::move(childPath), elements, devices, includeDeviceGeometry,
               insideDevice);
  }
}

Library::SizeStats Library::sizeStats(CellId root) const {
  SizeStats s;
  forEachCellOnce(root, [&](CellId id) {
    s.cells++;
    s.hierarchicalElements += cells_.at(id).elements.size();
  });
  std::vector<FlatElement> fe;
  std::vector<FlatDevice> fd;
  flatten(root, fe, fd, /*includeDeviceGeometry=*/true);
  s.flatElements = fe.size();
  s.deviceInstancesFlat = fd.size();
  std::function<int(CellId)> depth = [&](CellId id) {
    int d = 1;
    for (const Instance& inst : cells_.at(id).instances)
      d = std::max(d, 1 + depth(inst.cell));
    return d;
  };
  s.maxDepth = depth(root);
  return s;
}

}  // namespace dic::layout
