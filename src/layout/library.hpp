#pragma once
/// \file library.hpp
/// The hierarchical layout database: cells, instances, and the library.
/// Mirrors the paper's Fig. 9 structure -- functional blocks, subblocks,
/// primitive device symbols, and interconnect at every level.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "layout/element.hpp"

namespace dic::layout {

using CellId = int;

/// An instance (CIF "call") of a cell under a transform.
struct Instance {
  CellId cell{0};
  geom::Transform transform{};
  std::string name;  ///< instance name for hierarchical net paths ("a.b")
};

/// A connection point exposed by a device cell: terminals like a
/// transistor's gate/source/drain or a contact's two layer landings.
struct Port {
  std::string name;      ///< "G", "S", "D", "A", "B", ...
  int layer{0};
  geom::Rect at{};       ///< landing rect in cell coordinates
  int internalGroup{-1}; ///< ports sharing a group are internally connected
};

/// A cell: either a composite (subblock / functional block / chip) or a
/// primitive device symbol (deviceType non-empty; the only way devices are
/// defined, per the paper's structured-design declaration rule).
struct Cell {
  std::string name;
  std::string deviceType;  ///< e.g. "TRAN", "DTRAN", "CON_MD", "RES"; empty
                           ///< for composite cells
  bool prechecked{false};  ///< device marked checked by the designer
  std::vector<Element> elements;
  std::vector<Instance> instances;
  std::vector<Port> ports;

  bool isDevice() const { return !deviceType.empty(); }
};

/// A flattened element: geometry in chip coordinates plus full identity.
struct FlatElement {
  Element element;        ///< transformed into root coordinates
  CellId sourceCell{0};   ///< the defining cell
  std::size_t sourceIndex{0};  ///< index within that cell's elements
  std::string path;       ///< dot-notation instance path ("blk0.inv3")
};

/// A flattened device instance with transformed ports.
struct FlatDevice {
  CellId cell{0};
  std::string deviceType;
  std::string path;  ///< dot-notation path of the device instance
  geom::Transform transform{};
  std::vector<Port> ports;  ///< rects in root coordinates
  geom::Rect bbox{};
};

class Library {
 public:
  Library() = default;
  // The bbox-cache mutex is neither copyable nor movable, so the special
  // members are spelled out: content transfers, each object keeps its own
  // guard. Copies inherit the source's revision (they describe the same
  // geometry); the cache is copied too, it is valid for equal content.
  Library(const Library& o);
  Library(Library&& o) noexcept;
  Library& operator=(const Library& o);
  Library& operator=(Library&& o) noexcept;

  /// Create a cell; name must be unique. Bumps revision().
  CellId addCell(Cell cell);

  const Cell& cell(CellId id) const { return cells_.at(id); }
  /// Mutable cell access. Handing out a mutable reference counts as a
  /// mutation: the revision is bumped and the bbox cache dropped
  /// conservatively, so persistent caches keyed by revision() (the
  /// Workspace view cache) self-invalidate even if the caller only might
  /// have edited the cell.
  Cell& cell(CellId id) {
    invalidateCaches();
    return cells_.at(id);
  }
  std::size_t cellCount() const { return cells_.size(); }

  /// Monotonic mutation counter: bumped by addCell, mutable cell(), and
  /// invalidateCaches. Two reads returning the same value bracket a span
  /// in which the library was not structurally modified -- the key
  /// persistent caches (per-(root, revision) hierarchy views) rely on.
  std::uint64_t revision() const { return revision_; }

  std::optional<CellId> findCell(const std::string& name) const;

  /// Recursive bounding box of a cell. Cached under an internal mutex, so
  /// concurrent lookups from parallel workers (per-cell fan-outs,
  /// windowed traversals) are safe even on a cold cache; invalidated on
  /// addCell / mutation via invalidateCaches().
  geom::Rect cellBBox(CellId id) const;

  /// Drop derived caches and bump revision(). Call after mutating cell
  /// contents through a retained reference (mutable cell() does it for
  /// you at access time).
  void invalidateCaches() {
    ++revision_;
    std::lock_guard<std::mutex> lock(bboxMu_);
    bboxCache_.clear();
  }

  /// Depth-first visit of each cell reachable from root, once.
  void forEachCellOnce(CellId root,
                       const std::function<void(CellId)>& fn) const;

  /// Flatten interconnect below `root`. Device cells are NOT descended
  /// into (their identity is preserved and reported through `devices`);
  /// pass includeDeviceGeometry=true to also emit device-internal
  /// elements (used by the mask-level baseline checker, which by design
  /// discards device knowledge).
  void flatten(CellId root, std::vector<FlatElement>& elements,
               std::vector<FlatDevice>& devices,
               bool includeDeviceGeometry = false) const;

  // (Windowed flattening lives in engine::HierarchyView::collectWindow,
  // which owns all hierarchical traversal beyond this primitive.)

  /// Count of elements in the fully instantiated (flat) design vs the
  /// hierarchical description -- the paper's complexity-management
  /// argument in numbers.
  struct SizeStats {
    std::size_t cells{0};
    std::size_t hierarchicalElements{0};
    std::size_t flatElements{0};
    std::size_t deviceInstancesFlat{0};
    int maxDepth{0};
  };
  SizeStats sizeStats(CellId root) const;

 private:
  void flattenRec(CellId id, const geom::Transform& t, std::string path,
                  std::vector<FlatElement>& elements,
                  std::vector<FlatDevice>* devices,
                  bool includeDeviceGeometry, bool insideDevice) const;

  std::vector<Cell> cells_;
  std::map<std::string, CellId> byName_;
  std::uint64_t revision_{0};
  mutable std::mutex bboxMu_;  ///< guards bboxCache_ only
  mutable std::map<CellId, geom::Rect> bboxCache_;
};

}  // namespace dic::layout
