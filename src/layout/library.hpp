#pragma once
/// \file library.hpp
/// The hierarchical layout database: cells, instances, and the library.
/// Mirrors the paper's Fig. 9 structure -- functional blocks, subblocks,
/// primitive device symbols, and interconnect at every level.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "layout/element.hpp"

namespace dic::layout {

using CellId = int;

/// An instance (CIF "call") of a cell under a transform.
struct Instance {
  CellId cell{0};
  geom::Transform transform{};
  std::string name;  ///< instance name for hierarchical net paths ("a.b")
};

/// A connection point exposed by a device cell: terminals like a
/// transistor's gate/source/drain or a contact's two layer landings.
struct Port {
  std::string name;      ///< "G", "S", "D", "A", "B", ...
  int layer{0};
  geom::Rect at{};       ///< landing rect in cell coordinates
  int internalGroup{-1}; ///< ports sharing a group are internally connected
};

/// A cell: either a composite (subblock / functional block / chip) or a
/// primitive device symbol (deviceType non-empty; the only way devices are
/// defined, per the paper's structured-design declaration rule).
struct Cell {
  std::string name;
  std::string deviceType;  ///< e.g. "TRAN", "DTRAN", "CON_MD", "RES"; empty
                           ///< for composite cells
  bool prechecked{false};  ///< device marked checked by the designer
  std::vector<Element> elements;
  std::vector<Instance> instances;
  std::vector<Port> ports;

  bool isDevice() const { return !deviceType.empty(); }
};

/// A flattened element: geometry in chip coordinates plus full identity.
struct FlatElement {
  Element element;        ///< transformed into root coordinates
  CellId sourceCell{0};   ///< the defining cell
  std::size_t sourceIndex{0};  ///< index within that cell's elements
  std::string path;       ///< dot-notation instance path ("blk0.inv3")
};

/// A flattened device instance with transformed ports.
struct FlatDevice {
  CellId cell{0};
  std::string deviceType;
  std::string path;  ///< dot-notation path of the device instance
  geom::Transform transform{};
  std::vector<Port> ports;  ///< rects in root coordinates
  geom::Rect bbox{};
};

class Library {
 public:
  /// Create a cell; name must be unique.
  CellId addCell(Cell cell);

  const Cell& cell(CellId id) const { return cells_.at(id); }
  Cell& cell(CellId id) { return cells_.at(id); }
  std::size_t cellCount() const { return cells_.size(); }

  std::optional<CellId> findCell(const std::string& name) const;

  /// Recursive bounding box of a cell (cached; invalidated on addCell /
  /// mutation via invalidateCaches()).
  geom::Rect cellBBox(CellId id) const;

  void invalidateCaches() const { bboxCache_.clear(); }

  /// Depth-first visit of each cell reachable from root, once.
  void forEachCellOnce(CellId root,
                       const std::function<void(CellId)>& fn) const;

  /// Flatten interconnect below `root`. Device cells are NOT descended
  /// into (their identity is preserved and reported through `devices`);
  /// pass includeDeviceGeometry=true to also emit device-internal
  /// elements (used by the mask-level baseline checker, which by design
  /// discards device knowledge).
  void flatten(CellId root, std::vector<FlatElement>& elements,
               std::vector<FlatDevice>& devices,
               bool includeDeviceGeometry = false) const;

  // (Windowed flattening lives in engine::HierarchyView::collectWindow,
  // which owns all hierarchical traversal beyond this primitive.)

  /// Count of elements in the fully instantiated (flat) design vs the
  /// hierarchical description -- the paper's complexity-management
  /// argument in numbers.
  struct SizeStats {
    std::size_t cells{0};
    std::size_t hierarchicalElements{0};
    std::size_t flatElements{0};
    std::size_t deviceInstancesFlat{0};
    int maxDepth{0};
  };
  SizeStats sizeStats(CellId root) const;

 private:
  void flattenRec(CellId id, const geom::Transform& t, std::string path,
                  std::vector<FlatElement>& elements,
                  std::vector<FlatDevice>* devices,
                  bool includeDeviceGeometry, bool insideDevice) const;

  std::vector<Cell> cells_;
  std::map<std::string, CellId> byName_;
  mutable std::map<CellId, geom::Rect> bboxCache_;
};

}  // namespace dic::layout
