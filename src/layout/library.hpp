#pragma once
/// \file library.hpp
/// The hierarchical layout database: cells, instances, and the library.
/// Mirrors the paper's Fig. 9 structure -- functional blocks, subblocks,
/// primitive device symbols, and interconnect at every level.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "layout/element.hpp"

namespace dic::layout {

using CellId = int;

/// An instance (CIF "call") of a cell under a transform.
struct Instance {
  CellId cell{0};
  geom::Transform transform{};
  std::string name;  ///< instance name for hierarchical net paths ("a.b")
};

/// A connection point exposed by a device cell: terminals like a
/// transistor's gate/source/drain or a contact's two layer landings.
struct Port {
  std::string name;      ///< "G", "S", "D", "A", "B", ...
  int layer{0};
  geom::Rect at{};       ///< landing rect in cell coordinates
  int internalGroup{-1}; ///< ports sharing a group are internally connected
};

/// A cell: either a composite (subblock / functional block / chip) or a
/// primitive device symbol (deviceType non-empty; the only way devices are
/// defined, per the paper's structured-design declaration rule).
struct Cell {
  std::string name;
  std::string deviceType;  ///< e.g. "TRAN", "DTRAN", "CON_MD", "RES"; empty
                           ///< for composite cells
  bool prechecked{false};  ///< device marked checked by the designer
  std::vector<Element> elements;
  std::vector<Instance> instances;
  std::vector<Port> ports;

  bool isDevice() const { return !deviceType.empty(); }
};

/// A flattened element: geometry in chip coordinates plus full identity.
struct FlatElement {
  Element element;        ///< transformed into root coordinates
  CellId sourceCell{0};   ///< the defining cell
  std::size_t sourceIndex{0};  ///< index within that cell's elements
  std::string path;       ///< dot-notation instance path ("blk0.inv3")
};

/// A flattened device instance with transformed ports.
struct FlatDevice {
  CellId cell{0};
  std::string deviceType;
  std::string path;  ///< dot-notation path of the device instance
  geom::Transform transform{};
  std::vector<Port> ports;  ///< rects in root coordinates
  geom::Rect bbox{};
};

/// One tracked element edit, recorded by Library::setElement. The old and
/// new element plus the cell's bbox before/after give a consumer (the
/// Workspace's incremental patch path) everything it needs to decide
/// whether a cached view can be patched in place and which windows are
/// dirty, without diffing cell contents.
struct CellEdit {
  CellId cell{0};
  std::size_t index{0};       ///< slot in cell.elements that changed
  Element oldElement;         ///< element content before the edit
  Element newElement;         ///< element content after the edit
  geom::Rect oldCellBBox{};   ///< recursive cellBBox before the edit
  geom::Rect newCellBBox{};   ///< recursive cellBBox after the edit
  std::uint64_t revision{0};  ///< revision() value after this edit
};

class Library {
 public:
  Library() = default;
  // The bbox-cache mutex is neither copyable nor movable, so the special
  // members are spelled out: content transfers, each object keeps its own
  // guard. Copies inherit the source's revision (they describe the same
  // geometry); the cache is copied too, it is valid for equal content.
  Library(const Library& o);
  Library(Library&& o) noexcept;
  Library& operator=(const Library& o);
  Library& operator=(Library&& o) noexcept;

  /// Create a cell; name must be unique. Bumps revision().
  CellId addCell(Cell cell);

  const Cell& cell(CellId id) const { return cells_.at(id); }
  /// Mutable cell access. Handing out a mutable reference counts as a
  /// mutation: the revision is bumped and the bbox cache dropped
  /// conservatively, so persistent caches keyed by revision() (the
  /// Workspace view cache) self-invalidate even if the caller only might
  /// have edited the cell.
  Cell& cell(CellId id) {
    invalidateCaches();
    return cells_.at(id);
  }
  std::size_t cellCount() const { return cells_.size(); }

  /// Monotonic mutation counter: bumped by addCell, mutable cell(), and
  /// invalidateCaches. Two reads returning the same value bracket a span
  /// in which the library was not structurally modified -- the key
  /// persistent caches (per-(root, revision) hierarchy views) rely on.
  std::uint64_t revision() const { return revision_; }

  std::optional<CellId> findCell(const std::string& name) const;

  // --- tracked edit API (the incremental-checking entry points) ---------
  //
  // Unlike the mutable cell() accessor (which is a conservative "anything
  // may have changed" signal), these methods record exactly what changed,
  // so revision-keyed caches can be *patched* instead of rebuilt. Element
  // edits via setElement land in a bounded edit log replayable through
  // editsSince(); structural edits (add/remove element or instance) are
  // tracked per cell but clear the log — consumers must rebuild.

  /// Replace one element of `cell` in place. Records a CellEdit (old+new
  /// element, old+new recursive cell bbox), bumps revision() and the
  /// cell's generation, and drops the bbox cache. Throws std::out_of_range
  /// on a bad cell or index.
  void setElement(CellId cell, std::size_t index, Element e);

  /// Append an element to `cell`. Structural: bumps revision() and the
  /// cell's generation and clears the edit log (caches must rebuild).
  /// Returns the new element's index.
  std::size_t addElement(CellId cell, Element e);

  /// Erase element `index` of `cell` (later indexes shift down).
  /// Structural, like addElement.
  void removeElement(CellId cell, std::size_t index);

  /// Append an instance (placement) to `cell`. Structural, like
  /// addElement.
  std::size_t addInstance(CellId cell, Instance inst);

  /// Erase instance `index` of `cell`. Structural, like addElement.
  void removeInstance(CellId cell, std::size_t index);

  /// The edits applied after the library was at revision `rev`, oldest
  /// first — or nullopt when the delta cannot be reconstructed (a
  /// structural or untracked mutation intervened, or the bounded log was
  /// trimmed past `rev`). An empty vector means "nothing changed":
  /// rev == revision().
  std::optional<std::vector<CellEdit>> editsSince(std::uint64_t rev) const;

  /// Monotonic per-cell dirty counter: bumped by every tracked edit that
  /// touches `id`, and by every untracked mutation (mutable cell(),
  /// invalidateCaches(), addCell) for *all* cells, conservatively. Two
  /// equal reads bracket a span in which the cell did not change.
  std::uint64_t cellGeneration(CellId id) const;

  /// Recursive bounding box of a cell. Cached under an internal mutex, so
  /// concurrent lookups from parallel workers (per-cell fan-outs,
  /// windowed traversals) are safe even on a cold cache; invalidated on
  /// addCell / mutation via invalidateCaches().
  geom::Rect cellBBox(CellId id) const;

  /// Drop derived caches and bump revision(). Call after mutating cell
  /// contents through a retained reference (mutable cell() does it for
  /// you at access time). Untracked: the edit log is cleared and every
  /// cell's generation advances, so incremental consumers fall back to a
  /// full rebuild.
  void invalidateCaches() {
    bumpRevision();
    ++allGen_;
    editLog_.clear();
    logStart_ = revision_;
  }

  /// Depth-first visit of each cell reachable from root, once.
  void forEachCellOnce(CellId root,
                       const std::function<void(CellId)>& fn) const;

  /// Flatten interconnect below `root`. Device cells are NOT descended
  /// into (their identity is preserved and reported through `devices`);
  /// pass includeDeviceGeometry=true to also emit device-internal
  /// elements (used by the mask-level baseline checker, which by design
  /// discards device knowledge).
  void flatten(CellId root, std::vector<FlatElement>& elements,
               std::vector<FlatDevice>& devices,
               bool includeDeviceGeometry = false) const;

  // (Windowed flattening lives in engine::HierarchyView::collectWindow,
  // which owns all hierarchical traversal beyond this primitive.)

  /// Count of elements in the fully instantiated (flat) design vs the
  /// hierarchical description -- the paper's complexity-management
  /// argument in numbers.
  struct SizeStats {
    std::size_t cells{0};
    std::size_t hierarchicalElements{0};
    std::size_t flatElements{0};
    std::size_t deviceInstancesFlat{0};
    int maxDepth{0};
  };
  SizeStats sizeStats(CellId root) const;

 private:
  void flattenRec(CellId id, const geom::Transform& t, std::string path,
                  std::vector<FlatElement>& elements,
                  std::vector<FlatDevice>* devices,
                  bool includeDeviceGeometry, bool insideDevice) const;

  /// Bump revision() and drop the bbox cache WITHOUT touching the edit
  /// log — the tracked-edit path, where the log itself is the record.
  void bumpRevision() {
    ++revision_;
    std::lock_guard<std::mutex> lock(bboxMu_);
    bboxCache_.clear();
  }
  /// Shared tail of the structural edit methods: per-cell generation
  /// bump + log reset (the delta is not replayable).
  void structuralEdit(CellId cell);

  /// Replayable setElement history, oldest first; trimmed to the newest
  /// kMaxEditLog entries (logStart_ tracks the oldest reconstructable
  /// revision).
  static constexpr std::size_t kMaxEditLog = 256;

  std::vector<Cell> cells_;
  std::map<std::string, CellId> byName_;
  std::uint64_t revision_{0};
  std::vector<CellEdit> editLog_;
  std::uint64_t logStart_{0};  ///< oldest revision editsSince can serve
  std::uint64_t allGen_{0};    ///< generation floor for every cell
  std::map<CellId, std::uint64_t> cellGen_;  ///< tracked per-cell bumps
  mutable std::mutex bboxMu_;  ///< guards bboxCache_ only
  mutable std::map<CellId, geom::Rect> bboxCache_;
};

}  // namespace dic::layout
