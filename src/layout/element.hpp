#pragma once
/// \file element.hpp
/// Layout elements: the primitive geometry the checker operates on. An
/// element keeps its identity (the paper's central tenet: "the chip is
/// never fully instantiated; the information about what symbol the piece
/// of geometry came from is never lost").

#include <cstdint>
#include <string>
#include <vector>

#include "geom/polygon.hpp"
#include "geom/region.hpp"
#include "geom/skeleton.hpp"

namespace dic::layout {

enum class ElementKind : std::uint8_t { kBox, kWire, kPolygon };

/// A primitive geometry element on one layer with an optional declared
/// net identifier (the `4N` CIF extension).
struct Element {
  ElementKind kind{ElementKind::kBox};
  int layer{0};      ///< index into the Technology layer table
  std::string net;   ///< declared net label; empty = anonymous

  geom::Rect box{};                 ///< kBox
  std::vector<geom::Point> path;    ///< kWire centerline / kPolygon outline
  geom::Coord wireWidth{0};         ///< kWire

  /// The covered region. Wires have square end caps extending half the
  /// width beyond the first/last centerline point (Manhattan wires only).
  geom::Region region() const;

  /// Bounding box of region().
  geom::Rect bbox() const;

  /// Skeleton for the legal-connection criterion, given the layer's
  /// minimum width (Fig. 11).
  geom::Skeleton skeleton(geom::Coord minWidth) const;

  /// Transformed copy.
  Element transformed(const geom::Transform& t) const;
};

/// Convenience constructors.
Element makeBox(int layer, const geom::Rect& r, std::string net = {});
Element makeWire(int layer, std::vector<geom::Point> path, geom::Coord width,
                 std::string net = {});
Element makePolygon(int layer, std::vector<geom::Point> outline,
                    std::string net = {});

}  // namespace dic::layout
