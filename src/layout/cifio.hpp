#pragma once
/// \file cifio.hpp
/// Conversion between the CIF AST and the layout database.

#include <functional>
#include <string>

#include "cif/ast.hpp"
#include "layout/library.hpp"

namespace dic::layout {

/// Maps CIF layer names to technology layer indices; must throw or return
/// a negative value for unknown layers (negative -> std::runtime_error).
using LayerResolver = std::function<int(const std::string&)>;

/// Build a Library from a parsed CIF file. Top-level calls and elements
/// become the root cell (named "TOP" unless the file's top has a name).
/// DS scale factors are applied (non-integral scaled coordinates throw).
/// Returns the root cell id.
CellId fromCif(const cif::CifFile& file, Library& lib,
               const LayerResolver& layers);

/// Serialize `root` and everything below it to a CIF AST. `layerName`
/// maps layer indices back to CIF names.
cif::CifFile toCif(const Library& lib, CellId root,
                   const std::function<std::string(int)>& layerName);

}  // namespace dic::layout
