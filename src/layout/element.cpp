#include "layout/element.hpp"

#include <algorithm>
#include <cassert>

namespace dic::layout {

geom::Region Element::region() const {
  switch (kind) {
    case ElementKind::kBox:
      return geom::Region(box);
    case ElementKind::kWire: {
      const geom::Coord h = wireWidth / 2;
      const geom::Coord h2 = wireWidth - h;  // odd widths: split h/h2
      std::vector<geom::Rect> rects;
      if (path.size() == 1) {
        const geom::Point p = path[0];
        rects.push_back({{p.x - h, p.y - h}, {p.x + h2, p.y + h2}});
      }
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const geom::Rect seg = geom::makeRect(path[i], path[i + 1]);
        // Square caps: extend by half the width in every direction (odd
        // widths put the extra unit on the hi side).
        rects.push_back({{seg.lo.x - h, seg.lo.y - h},
                         {seg.hi.x + h2, seg.hi.y + h2}});
      }
      return geom::Region::fromRects(rects);
    }
    case ElementKind::kPolygon:
      return geom::Polygon(path).toRegion();
  }
  return {};
}

geom::Rect Element::bbox() const {
  switch (kind) {
    case ElementKind::kBox:
      return box;
    case ElementKind::kWire: {
      geom::Rect b{path[0], path[0]};
      for (const geom::Point& p : path) {
        b.lo.x = std::min(b.lo.x, p.x);
        b.lo.y = std::min(b.lo.y, p.y);
        b.hi.x = std::max(b.hi.x, p.x);
        b.hi.y = std::max(b.hi.y, p.y);
      }
      const geom::Coord h = wireWidth / 2;
      const geom::Coord h2 = wireWidth - h;
      return {{b.lo.x - h, b.lo.y - h}, {b.hi.x + h2, b.hi.y + h2}};
    }
    case ElementKind::kPolygon:
      return geom::Polygon(path).bbox();
  }
  return {};
}

geom::Skeleton Element::skeleton(geom::Coord minWidth) const {
  switch (kind) {
    case ElementKind::kBox:
      return geom::boxSkeleton(box, minWidth);
    case ElementKind::kWire:
      return geom::wireSkeleton(path, wireWidth, minWidth);
    case ElementKind::kPolygon:
      return geom::regionSkeleton(region(), minWidth);
  }
  return {};
}

Element Element::transformed(const geom::Transform& t) const {
  Element e = *this;
  switch (kind) {
    case ElementKind::kBox:
      e.box = t.apply(box);
      break;
    case ElementKind::kWire:
    case ElementKind::kPolygon:
      for (geom::Point& p : e.path) p = t.apply(p);
      break;
  }
  return e;
}

Element makeBox(int layer, const geom::Rect& r, std::string net) {
  Element e;
  e.kind = ElementKind::kBox;
  e.layer = layer;
  e.box = r;
  e.net = std::move(net);
  return e;
}

Element makeWire(int layer, std::vector<geom::Point> path, geom::Coord width,
                 std::string net) {
  assert(!path.empty());
  Element e;
  e.kind = ElementKind::kWire;
  e.layer = layer;
  e.path = std::move(path);
  e.wireWidth = width;
  e.net = std::move(net);
  return e;
}

Element makePolygon(int layer, std::vector<geom::Point> outline,
                    std::string net) {
  Element e;
  e.kind = ElementKind::kPolygon;
  e.layer = layer;
  e.path = std::move(outline);
  e.net = std::move(net);
  return e;
}

}  // namespace dic::layout
