#include "layout/cifio.hpp"

#include <map>
#include <set>
#include <stdexcept>

namespace dic::layout {

namespace {

geom::Coord scaleCoord(geom::Coord v, int num, int den) {
  const geom::Coord scaled = v * num;
  if (scaled % den != 0)
    throw std::runtime_error("CIF scale produces non-integral coordinate");
  return scaled / den;
}

Element convertElement(const cif::CifElement& ce, int layer, int num,
                       int den) {
  auto sc = [&](geom::Coord v) { return scaleCoord(v, num, den); };
  switch (ce.kind) {
    case cif::CifElement::Kind::kBox: {
      const geom::Coord l = sc(ce.length), w = sc(ce.width);
      const geom::Point c{sc(ce.center.x), sc(ce.center.y)};
      return makeBox(layer,
                     {{c.x - l / 2, c.y - w / 2},
                      {c.x - l / 2 + l, c.y - w / 2 + w}},
                     ce.net);
    }
    case cif::CifElement::Kind::kWire: {
      std::vector<geom::Point> pts;
      pts.reserve(ce.path.size());
      for (const geom::Point& p : ce.path) pts.push_back({sc(p.x), sc(p.y)});
      return makeWire(layer, std::move(pts), sc(ce.width), ce.net);
    }
    case cif::CifElement::Kind::kPolygon: {
      std::vector<geom::Point> pts;
      pts.reserve(ce.path.size());
      for (const geom::Point& p : ce.path) pts.push_back({sc(p.x), sc(p.y)});
      return makePolygon(layer, std::move(pts), ce.net);
    }
    case cif::CifElement::Kind::kFlash: {
      // Round flashes are approximated by their bounding box; the DIC
      // data model is Manhattan (documented substitution).
      const geom::Coord d = sc(ce.width);
      const geom::Point c{sc(ce.center.x), sc(ce.center.y)};
      return makeBox(layer,
                     {{c.x - d / 2, c.y - d / 2},
                      {c.x - d / 2 + d, c.y - d / 2 + d}},
                     ce.net);
    }
  }
  throw std::logic_error("unreachable");
}

}  // namespace

CellId fromCif(const cif::CifFile& file, Library& lib,
               const LayerResolver& layers) {
  auto layerOf = [&](const std::string& name) {
    const int idx = layers(name);
    if (idx < 0) throw std::runtime_error("unknown CIF layer: " + name);
    return idx;
  };

  std::map<int, CellId> idMap;

  auto convertSymbol = [&](const cif::CifSymbol& sym,
                           const std::string& fallbackName) {
    Cell cell;
    cell.name = sym.name.empty() ? fallbackName : sym.name;
    cell.deviceType = sym.deviceType;
    cell.prechecked = sym.prechecked;
    for (const cif::CifPort& p : sym.ports) {
      auto sc = [&](geom::Coord v) {
        return scaleCoord(v, sym.scaleNum, sym.scaleDen);
      };
      cell.ports.push_back({p.name, layerOf(p.layer),
                            {{sc(p.lo.x), sc(p.lo.y)},
                             {sc(p.hi.x), sc(p.hi.y)}},
                            p.internalGroup});
    }
    for (const cif::CifElement& ce : sym.elements)
      cell.elements.push_back(convertElement(ce, layerOf(ce.layer),
                                             sym.scaleNum, sym.scaleDen));
    for (const cif::CifCall& call : sym.calls) {
      auto it = idMap.find(call.symbolId);
      if (it == idMap.end())
        throw std::runtime_error("call of undefined symbol " +
                                 std::to_string(call.symbolId));
      geom::Transform t = call.transform;
      t.t.x = scaleCoord(t.t.x, sym.scaleNum, sym.scaleDen);
      t.t.y = scaleCoord(t.t.y, sym.scaleNum, sym.scaleDen);
      cell.instances.push_back({it->second, t, {}});
    }
    return cell;
  };

  // CIF requires symbols to be defined before use in our dialect; the
  // std::map iterates in id order, which matches how generators emit them.
  for (const auto& [id, sym] : file.symbols) {
    Cell cell = convertSymbol(sym, "S" + std::to_string(id));
    idMap[id] = lib.addCell(std::move(cell));
  }
  Cell top = convertSymbol(file.top, "TOP");
  return lib.addCell(std::move(top));
}

cif::CifFile toCif(const Library& lib, CellId root,
                   const std::function<std::string(int)>& layerName) {
  cif::CifFile file;
  std::map<CellId, int> idMap;
  int nextId = 1;

  lib.forEachCellOnce(root, [&](CellId id) {
    if (id == root) return;
    idMap[id] = nextId++;
  });

  auto convertCell = [&](const Cell& cell, int cifId) {
    cif::CifSymbol sym;
    sym.id = cifId;
    sym.name = cell.name;
    sym.deviceType = cell.deviceType;
    sym.prechecked = cell.prechecked;
    for (const Port& p : cell.ports)
      sym.ports.push_back(
          {p.name, layerName(p.layer), p.at.lo, p.at.hi, p.internalGroup});
    for (const Element& e : cell.elements) {
      cif::CifElement ce;
      ce.layer = layerName(e.layer);
      ce.net = e.net;
      switch (e.kind) {
        case ElementKind::kBox:
          // CIF boxes are centered, so odd dimensions cannot round-trip
          // exactly; emit those as 4-point polygons instead.
          if (e.box.width() % 2 != 0 || e.box.height() % 2 != 0) {
            ce.kind = cif::CifElement::Kind::kPolygon;
            ce.path = {e.box.lo,
                       {e.box.hi.x, e.box.lo.y},
                       e.box.hi,
                       {e.box.lo.x, e.box.hi.y}};
            break;
          }
          ce.kind = cif::CifElement::Kind::kBox;
          ce.length = e.box.width();
          ce.width = e.box.height();
          ce.center = {e.box.lo.x + e.box.width() / 2,
                       e.box.lo.y + e.box.height() / 2};
          break;
        case ElementKind::kWire:
          ce.kind = cif::CifElement::Kind::kWire;
          ce.width = e.wireWidth;
          ce.path = e.path;
          break;
        case ElementKind::kPolygon:
          ce.kind = cif::CifElement::Kind::kPolygon;
          ce.path = e.path;
          break;
      }
      sym.elements.push_back(std::move(ce));
    }
    for (const Instance& inst : cell.instances)
      sym.calls.push_back({idMap.at(inst.cell), inst.transform});
    return sym;
  };

  for (const auto& [cellId, cifId] : idMap)
    file.symbols[cifId] = convertCell(lib.cell(cellId), cifId);
  file.top = convertCell(lib.cell(root), 0);
  return file;
}

}  // namespace dic::layout
