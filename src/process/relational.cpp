#include "process/relational.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dic::process {

double endRetreat(const ExposureModel& model, geom::Coord width,
                  geom::Coord length, double threshold) {
  // Wire drawn as [0, length] x [-w/2, w/2]; exposure along the centerline
  // is closed-form. Find x* where I(x*) = threshold; retreat = length - x*.
  const geom::Rect wire{{0, -width / 2}, {length, width - width / 2}};
  auto at = [&](double x) {
    // Evaluate the closed form with a double x by linear interpolation of
    // two adjacent integer samples (the erf product is smooth; 1-unit
    // interpolation error is negligible at sigma >= a few units).
    const geom::Coord x0 = static_cast<geom::Coord>(std::floor(x));
    const double f = x - static_cast<double>(x0);
    const double a = model.boxExposure(wire, {x0, 0});
    const double b = model.boxExposure(wire, {x0 + 1, 0});
    return a + (b - a) * f;
  };
  const double mid = at(static_cast<double>(length) / 2);
  if (mid < threshold) return static_cast<double>(length);  // wire vanishes
  double lo = static_cast<double>(length) / 2;
  double hi = static_cast<double>(length) + 6 * model.sigma();
  for (int i = 0; i < 100; ++i) {
    const double m = (lo + hi) / 2;
    if (at(m) >= threshold)
      lo = m;
    else
      hi = m;
  }
  return static_cast<double>(length) - (lo + hi) / 2;
}

RelationalCheck checkGateOverlapRelational(const ExposureModel& model,
                                           geom::Coord polyWidth,
                                           geom::Coord drawnOverlap,
                                           geom::Coord requiredOverlap,
                                           double threshold) {
  RelationalCheck out;
  // Model the poly stub beyond the gate edge as the end of a long wire of
  // the given width.
  const geom::Coord modelLength =
      std::max<geom::Coord>(drawnOverlap + 8 * static_cast<geom::Coord>(
                                               model.sigma()),
                            10 * static_cast<geom::Coord>(model.sigma()));
  out.retreat = endRetreat(model, polyWidth, modelLength, threshold);
  out.effectiveOverlap = static_cast<double>(drawnOverlap) - out.retreat;
  out.pass = out.effectiveOverlap >= static_cast<double>(requiredOverlap);
  return out;
}

LcaSpacing checkSpacingLca(const ExposureModel& model, const geom::Region& a,
                           const geom::Region& b, double criticalExposure,
                           geom::Coord misalignment) {
  LcaSpacing out;
  if (a.empty() || b.empty()) return out;

  // Find the closest rect pair -- the line of closest approach runs
  // between their nearest points.
  double best = std::numeric_limits<double>::infinity();
  geom::Rect ra, rb;
  for (const geom::Rect& x : a.rects()) {
    for (const geom::Rect& y : b.rects()) {
      const double d = geom::rectDistance(x, y, geom::Metric::kEuclidean);
      if (d < best) {
        best = d;
        ra = x;
        rb = y;
      }
    }
  }
  const geom::Point pa{std::clamp(rb.center().x, ra.lo.x, ra.hi.x),
                       std::clamp(rb.center().y, ra.lo.y, ra.hi.y)};
  const geom::Point pb{std::clamp(pa.x, rb.lo.x, rb.hi.x),
                       std::clamp(pa.y, rb.lo.y, rb.hi.y)};

  // Worst-case misalignment translates b toward a along the line of
  // closest approach ("misalignment can be modelled by a simple
  // translation").
  geom::Region bMoved = b;
  if (misalignment > 0) {
    const geom::Point d = pa - pb;
    const double len = geom::length(d);
    if (len > 0) {
      const geom::Point shift{
          static_cast<geom::Coord>(std::llround(
              static_cast<double>(d.x) / len *
              static_cast<double>(misalignment))),
          static_cast<geom::Coord>(std::llround(
              static_cast<double>(d.y) / len *
              static_cast<double>(misalignment)))};
      bMoved = b.translated(shift);
    }
  }

  // Bridging criterion: the exposure dip along the line of closest
  // approach (endpoints sit on the shapes and are exposed by definition).
  const geom::Region both = unite(a, bMoved);
  if (best <= static_cast<double>(misalignment) || pa == pb) {
    out.maxExposure = 1.0;
    out.fails = true;
    return out;
  }
  out.maxExposure = model.minAlongOpenSegment(both, pa, pb);
  out.fails = out.maxExposure >= criticalExposure;
  return out;
}

}  // namespace dic::process
