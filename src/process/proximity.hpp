#pragma once
/// \file proximity.hpp
/// Proximity-effect expand (Fig. 13): the developed image of a mask is the
/// iso-contour of the Gaussian exposure at the resist threshold. Unlike
/// Euclidean or Orthogonal expand, the result depends on *nearby* geometry
/// ("a piece of geometry expands or shrinks differently if there is
/// another piece nearby").

#include "process/exposure.hpp"

namespace dic::process {

/// Result of contouring the exposure field on a sampled grid.
struct ContourResult {
  double area{0};            ///< area above threshold (developed image)
  geom::Rect bbox{};         ///< bbox of the developed image
  bool bridged{false};       ///< set by bridge analysis (two-feature masks)
  double minGapExposure{0};  ///< max exposure along the inter-feature gap
};

/// Sample the exposure field of `mask` over `window` on a `step`-unit grid
/// and measure the region with exposure >= threshold.
ContourResult contourArea(const ExposureModel& model, const geom::Region& mask,
                          const geom::Rect& window, double threshold,
                          geom::Coord step);

/// Developed-image area predicted for pure geometric expands, to compare
/// against the proximity model at matched bias:
///   orthogonal: area of Region::expanded(bias)
///   Euclidean:  Steiner formula (geom::euclideanExpandArea)
double orthogonalExpandArea(const geom::Region& mask, geom::Coord bias);

/// Bias that a straight isolated edge moves outward at `threshold`:
/// solves erf(b / (sqrt(2) sigma)) = 1 - 2*threshold. For threshold 0.5
/// the bias is 0; lower thresholds expand.
double edgeBias(const ExposureModel& model, double threshold);

/// Two-feature proximity analysis (Fig. 13's point): given two mask
/// features separated by a gap, does the exposure between them stay above
/// threshold (features bridge) and how much does the facing-edge position
/// shift compared to an isolated feature?
struct BridgeAnalysis {
  double maxGapExposure{0};
  bool bridges{false};
  double isolatedEdgeExposure{0};  ///< exposure at the drawn edge, isolated
  double facingEdgeExposure{0};    ///< exposure at the drawn edge, with pair
};
BridgeAnalysis analyzeBridge(const ExposureModel& model, const geom::Rect& a,
                             const geom::Rect& b, double threshold);

}  // namespace dic::process
