#include "process/exposure.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dic::process {

namespace {

constexpr double kInvSqrt2 = 0.7071067811865475244;

}  // namespace

double ExposureModel::boxExposure(const geom::Rect& box, geom::Point p) const {
  // I = 1/4 [erf((x2-px)/(sqrt(2) s)) - erf((x1-px)/(sqrt(2) s))] *
  //         [erf((y2-py)/(sqrt(2) s)) - erf((y1-py)/(sqrt(2) s))]
  const double inv = kInvSqrt2 / sigma_;
  const double fx =
      std::erf((static_cast<double>(box.hi.x) - static_cast<double>(p.x)) * inv) -
      std::erf((static_cast<double>(box.lo.x) - static_cast<double>(p.x)) * inv);
  const double fy =
      std::erf((static_cast<double>(box.hi.y) - static_cast<double>(p.y)) * inv) -
      std::erf((static_cast<double>(box.lo.y) - static_cast<double>(p.y)) * inv);
  return 0.25 * fx * fy;
}

double ExposureModel::exposure(const geom::Region& mask, geom::Point p) const {
  double sum = 0;
  for (const geom::Rect& r : mask.rects()) sum += boxExposure(r, p);
  return sum;
}

double ExposureModel::boxExposureNumeric(const geom::Rect& box, geom::Point p,
                                         int samplesPerAxis) const {
  // Simpson's rule needs an even interval count.
  int n = samplesPerAxis;
  if (n % 2 != 0) ++n;
  const double x1 = static_cast<double>(box.lo.x);
  const double x2 = static_cast<double>(box.hi.x);
  const double y1 = static_cast<double>(box.lo.y);
  const double y2 = static_cast<double>(box.hi.y);
  const double hx = (x2 - x1) / n;
  const double hy = (y2 - y1) / n;
  const double s2 = 2.0 * sigma_ * sigma_;
  auto w = [n](int i) { return i == 0 || i == n ? 1.0 : (i % 2 ? 4.0 : 2.0); };
  double sum = 0;
  for (int i = 0; i <= n; ++i) {
    const double x = x1 + i * hx;
    const double dx2 = (x - static_cast<double>(p.x)) *
                       (x - static_cast<double>(p.x));
    for (int j = 0; j <= n; ++j) {
      const double y = y1 + j * hy;
      const double dy2 = (y - static_cast<double>(p.y)) *
                         (y - static_cast<double>(p.y));
      sum += w(i) * w(j) * std::exp(-(dx2 + dy2) / s2);
    }
  }
  // Kernel normalization: A = 1 / (2 pi sigma^2) makes the plane integral 1.
  const double a = 1.0 / (2.0 * M_PI * sigma_ * sigma_);
  return a * sum * hx * hy / 9.0;
}

double ExposureModel::maxAlongSegment(const geom::Region& mask, geom::Point a,
                                      geom::Point b, int samples) const {
  double best = 0;
  for (int i = 0; i < samples; ++i) {
    const double t = samples == 1 ? 0.5
                                  : static_cast<double>(i) / (samples - 1);
    const geom::Point p{
        a.x + static_cast<geom::Coord>(std::llround(
                  t * static_cast<double>(b.x - a.x))),
        a.y + static_cast<geom::Coord>(std::llround(
                  t * static_cast<double>(b.y - a.y)))};
    best = std::max(best, exposure(mask, p));
  }
  return best;
}

double ExposureModel::minAlongOpenSegment(const geom::Region& mask,
                                          geom::Point a, geom::Point b,
                                          int samples) const {
  double worst = std::numeric_limits<double>::infinity();
  for (int i = 1; i + 1 < samples; ++i) {
    const double t = static_cast<double>(i) / (samples - 1);
    const geom::Point p{
        a.x + static_cast<geom::Coord>(std::llround(
                  t * static_cast<double>(b.x - a.x))),
        a.y + static_cast<geom::Coord>(std::llround(
                  t * static_cast<double>(b.y - a.y)))};
    worst = std::min(worst, exposure(mask, p));
  }
  return worst;
}

}  // namespace dic::process
