#pragma once
/// \file relational.hpp
/// Relational rules (Fig. 14) and spacing by line of closest approach.
///
/// "Relational rules are ones where one dimension of the structure depends
/// on another feature of the same structure. For example, the poly overlap
/// of the gate region on an MOS transistor is a function of the width of
/// the poly in some design rules to account for the 'retreat' of the end
/// on narrow wires."

#include <optional>

#include "process/exposure.hpp"

namespace dic::process {

/// End retreat of a wire of the given width: how far inside the drawn end
/// the developed image's end sits, at the given resist threshold. Narrow
/// wires retreat more (their interior exposure is lower), which is the
/// whole point of the relational rule. Solved by bisection on the
/// closed-form exposure along the wire centerline.
double endRetreat(const ExposureModel& model, geom::Coord width,
                  geom::Coord length, double threshold);

/// The relational gate-overlap rule: given a poly wire of `polyWidth`
/// whose drawn end extends `drawnOverlap` beyond the gate edge, does the
/// *developed* poly still cover the gate edge with the required margin?
struct RelationalCheck {
  double retreat{0};
  double effectiveOverlap{0};
  bool pass{false};
};
RelationalCheck checkGateOverlapRelational(const ExposureModel& model,
                                           geom::Coord polyWidth,
                                           geom::Coord drawnOverlap,
                                           geom::Coord requiredOverlap,
                                           double threshold);

/// Spacing by line of closest approach ("translating one element along
/// this line (if they are on different layers), finding the maximum of the
/// exposure function ... and comparing the value at this point against
/// some critical value"). The statistic compared is the exposure *dip*
/// between the features along that line: if even the dip exceeds the
/// critical value, the resist never opens between them and they short.
struct LcaSpacing {
  double maxExposure{0};  ///< worst (largest surviving) dip exposure
  bool fails{false};
};
LcaSpacing checkSpacingLca(const ExposureModel& model, const geom::Region& a,
                           const geom::Region& b, double criticalExposure,
                           geom::Coord misalignment = 0);

}  // namespace dic::process
