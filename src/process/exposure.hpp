#pragma once
/// \file exposure.hpp
/// 2-D process modelling for DRC (the paper's Eq. 1):
///
///   I(p) = integral over the mask M of a Gaussian exposure kernel
///          A * exp(-r^2 / (2 sigma^2))
///
/// normalized so that a fully-covered point deep inside a large mask
/// feature has exposure 1, a straight mask edge has exposure 1/2, and a
/// convex corner 1/4. "If the mask function can be simplified to simple
/// boxes ... equation (1) ... has a closed form solution in terms of an
/// error function."

#include <vector>

#include "geom/region.hpp"

namespace dic::process {

/// A Gaussian exposure model with the given sigma (database units).
class ExposureModel {
 public:
  explicit ExposureModel(double sigma) : sigma_(sigma) {}

  double sigma() const { return sigma_; }

  /// Closed-form exposure of one box at point p (separable erf product).
  double boxExposure(const geom::Rect& box, geom::Point p) const;

  /// Exposure of a whole mask region (sum over its disjoint rects).
  double exposure(const geom::Region& mask, geom::Point p) const;

  /// Reference value by 2-D Simpson integration of the Gaussian kernel
  /// over the box (validation of the closed form; O(n^2) samples).
  double boxExposureNumeric(const geom::Rect& box, geom::Point p,
                            int samplesPerAxis = 64) const;

  /// Exposure along the segment a..b, sampled at `samples` points;
  /// returns the maximum (the paper's line-of-closest-approach check
  /// needs the max along that line).
  double maxAlongSegment(const geom::Region& mask, geom::Point a,
                         geom::Point b, int samples = 65) const;

  /// Minimum exposure along the *open* segment between a and b (endpoints
  /// excluded). This is the exposure dip between two features: if even
  /// the dip stays above the resist threshold, the features bridge.
  double minAlongOpenSegment(const geom::Region& mask, geom::Point a,
                             geom::Point b, int samples = 65) const;

 private:
  double sigma_;
};

/// Exposure at which developed resist reproduces a straight mask edge at
/// its drawn position.
inline constexpr double kEdgeThreshold = 0.5;

}  // namespace dic::process
