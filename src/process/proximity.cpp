#include "process/proximity.hpp"

#include <algorithm>
#include <cmath>

namespace dic::process {

ContourResult contourArea(const ExposureModel& model, const geom::Region& mask,
                          const geom::Rect& window, double threshold,
                          geom::Coord step) {
  ContourResult out;
  if (window.empty() || step <= 0) return out;
  bool any = false;
  geom::Rect bb{{0, 0}, {0, 0}};
  double area = 0;
  const double cellArea = static_cast<double>(step) * static_cast<double>(step);
  for (geom::Coord y = window.lo.y; y < window.hi.y; y += step) {
    for (geom::Coord x = window.lo.x; x < window.hi.x; x += step) {
      const geom::Point p{x + step / 2, y + step / 2};
      if (model.exposure(mask, p) < threshold) continue;
      area += cellArea;
      const geom::Rect cell{{x, y}, {x + step, y + step}};
      bb = any ? geom::bound(bb, cell) : cell;
      any = true;
    }
  }
  out.area = area;
  out.bbox = bb;
  return out;
}

double orthogonalExpandArea(const geom::Region& mask, geom::Coord bias) {
  return static_cast<double>(mask.expanded(bias).area());
}

double edgeBias(const ExposureModel& model, double threshold) {
  // Isolated straight edge at x=0, mask at x<0: I(x) = (1 - erf(x /
  // (sqrt(2) s))) / 2. Solve I(b) = threshold.
  const double s = model.sigma();
  double lo = -6 * s, hi = 6 * s;
  for (int i = 0; i < 200; ++i) {
    const double mid = (lo + hi) / 2;
    const double v = 0.5 * (1.0 - std::erf(mid / (std::sqrt(2.0) * s)));
    if (v > threshold)
      lo = mid;
    else
      hi = mid;
  }
  return (lo + hi) / 2;
}

BridgeAnalysis analyzeBridge(const ExposureModel& model, const geom::Rect& a,
                             const geom::Rect& b, double threshold) {
  BridgeAnalysis out;
  const geom::Region ra((a));
  const geom::Region rb((b));
  const geom::Region both = unite(ra, rb);

  // Line of closest approach between the two rects. Bridging criterion:
  // the exposure *dip* between the features stays above threshold, so the
  // developed resist never opens between them.
  const geom::Point ga{std::clamp(b.center().x, a.lo.x, a.hi.x),
                       std::clamp(b.center().y, a.lo.y, a.hi.y)};
  const geom::Point gb{std::clamp(a.center().x, b.lo.x, b.hi.x),
                       std::clamp(a.center().y, b.lo.y, b.hi.y)};
  if (geom::closedTouch(a, b)) {
    out.maxGapExposure = 1.0;
    out.bridges = true;
  } else {
    out.maxGapExposure = model.minAlongOpenSegment(both, ga, gb);
    out.bridges = out.maxGapExposure >= threshold;
  }

  // Facing-edge shift: exposure at a's edge point nearest b, with and
  // without b present.
  out.isolatedEdgeExposure = model.exposure(ra, ga);
  out.facingEdgeExposure = model.exposure(both, ga);
  return out;
}

}  // namespace dic::process
