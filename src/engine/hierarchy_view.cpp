#include "engine/hierarchy_view.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "engine/arena.hpp"

namespace dic::engine {

namespace {

using geom::Coord;
using geom::Rect;

std::string instanceName(const layout::Library& lib,
                         const layout::Instance& inst, int childNo) {
  return inst.name.empty()
             ? lib.cell(inst.cell).name + "_" + std::to_string(childNo)
             : inst.name;
}

// --- byte accounting helpers (approximate heap footprints) ------------------

std::size_t bytesOf(const std::string& s) { return s.capacity(); }

std::size_t bytesOf(const layout::Element& e) {
  return sizeof(e) + bytesOf(e.net) + e.path.capacity() * sizeof(geom::Point);
}

std::size_t bytesOf(const layout::Port& p) {
  return sizeof(p) + bytesOf(p.name);
}

std::size_t bytesOf(const layout::FlatElement& e) {
  return sizeof(e) - sizeof(e.element) + bytesOf(e.element) + bytesOf(e.path);
}

std::size_t bytesOf(const layout::FlatDevice& d) {
  std::size_t b = sizeof(d) + bytesOf(d.deviceType) + bytesOf(d.path);
  for (const layout::Port& p : d.ports) b += bytesOf(p);
  return b;
}

std::size_t bytesOf(const HierarchyView::Flat& f) {
  std::size_t b = sizeof(f) + f.bboxes.capacity() * sizeof(geom::Rect);
  b += (f.elements.capacity() - f.elements.size()) *
       sizeof(layout::FlatElement);
  for (const layout::FlatElement& e : f.elements) b += bytesOf(e);
  b += (f.devices.capacity() - f.devices.size()) * sizeof(layout::FlatDevice);
  for (const layout::FlatDevice& d : f.devices) b += bytesOf(d);
  return b;
}

}  // namespace

std::string joinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "." + b;
}

geom::Coord autoGridCell(const std::vector<Rect>& rects) {
  if (rects.empty()) return 4096;
  // Mean of the larger bbox dimension; a grid cell spanning a few typical
  // elements keeps both bucket occupancy and cells-per-query small.
  double sum = 0;
  for (const Rect& r : rects)
    sum += static_cast<double>(std::max(r.width(), r.height()));
  const double mean = sum / static_cast<double>(rects.size());
  const Coord cell = static_cast<Coord>(mean * 8.0);
  return std::clamp<Coord>(cell, 256, Coord{1} << 24);
}

const std::vector<layout::CellId>& HierarchyView::cells() const {
  ensurePlacements();
  return cells_;
}

const std::map<layout::CellId, std::vector<Placement>>&
HierarchyView::placements() const {
  ensurePlacements();
  return placements_;
}

const std::vector<Placement>& HierarchyView::placementsOf(
    layout::CellId id) const {
  ensurePlacements();
  static const std::vector<Placement> kNone;
  auto it = placements_.find(id);
  return it == placements_.end() ? kNone : it->second;
}

void HierarchyView::ensurePlacements() const {
  if (placementsReady_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (placementsReady_.load(std::memory_order_relaxed)) return;
  std::function<void(layout::CellId, const geom::Transform&,
                     const std::string&)>
      rec = [&](layout::CellId id, const geom::Transform& t,
                const std::string& path) {
        placements_[id].push_back({t, path});
        int childNo = 0;
        for (const layout::Instance& inst : lib_.cell(id).instances) {
          const std::string childName = instanceName(lib_, inst, childNo);
          ++childNo;
          rec(inst.cell, geom::compose(inst.transform, t),
              joinPath(path, childName));
        }
      };
  rec(root_, geom::identityTransform(), "");
  lib_.forEachCellOnce(root_, [&](layout::CellId id) {
    cells_.push_back(id);
  });
  // Warm the library's recursive bbox cache while still single-threaded:
  // the root's bbox transitively caches every reachable cell, so workers
  // hit the cache instead of contending on its mutex to recompute.
  lib_.cellBBox(root_);
  std::size_t b = cells_.capacity() * sizeof(layout::CellId);
  for (const auto& [id, v] : placements_) {
    (void)id;
    b += sizeof(v) + 3 * sizeof(void*);  // map node, approximate
    b += (v.capacity() - v.size()) * sizeof(Placement);
    for (const Placement& p : v) b += sizeof(Placement) + p.path.capacity();
  }
  accountedBytes_.fetch_add(b, std::memory_order_release);
  placementsReady_.store(true, std::memory_order_release);
}

std::vector<ChildRef> HierarchyView::children(layout::CellId id) const {
  // Warm the library's bbox cache (no-op after the first call) so the
  // cellBBox lookups below are cheap cache hits even from workers.
  ensurePlacements();
  const layout::Cell& c = lib_.cell(id);
  std::vector<ChildRef> out;
  out.reserve(c.instances.size());
  int childNo = 0;
  for (std::size_t k = 0; k < c.instances.size(); ++k) {
    const layout::Instance& inst = c.instances[k];
    ChildRef ch;
    ch.index = k;
    ch.cell = inst.cell;
    ch.transform = inst.transform;
    ch.bbox = inst.transform.apply(lib_.cellBBox(inst.cell));
    ch.name = instanceName(lib_, inst, childNo);
    ++childNo;
    out.push_back(std::move(ch));
  }
  return out;
}

const HierarchyView::Flat& HierarchyView::flat(
    bool includeDeviceGeometry) const {
  return ensureFlat(includeDeviceGeometry);
}

void HierarchyView::prepare(bool includeDeviceGeometry) const {
  ensureIndexes(includeDeviceGeometry);  // builds the flat view too
}

const HierarchyView::Flat& HierarchyView::ensureFlat(
    bool includeDeviceGeometry) const {
  const int v = includeDeviceGeometry ? 1 : 0;
  if (flatReady_[v].load(std::memory_order_acquire)) return *flat_[v];
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!flat_[v]) {
    auto f = std::make_unique<Flat>();
    lib_.flatten(root_, f->elements, f->devices, includeDeviceGeometry);
    f->bboxes.reserve(f->elements.size());
    for (const layout::FlatElement& e : f->elements)
      f->bboxes.push_back(e.element.bbox());
    flat_[v] = std::move(f);
    accountedBytes_.fetch_add(bytesOf(*flat_[v]), std::memory_order_release);
    flatReady_[v].store(true, std::memory_order_release);
  }
  return *flat_[v];
}

const HierarchyView::LayerIndexes& HierarchyView::ensureIndexes(
    bool includeDeviceGeometry) const {
  const int v = includeDeviceGeometry ? 1 : 0;
  if (indexesReady_[v].load(std::memory_order_acquire)) return indexes_[v];
  std::lock_guard<std::recursive_mutex> lock(mu_);
  LayerIndexes& idx = indexes_[v];
  if (indexesReady_[v].load(std::memory_order_relaxed)) return idx;
  const Flat& f = ensureFlat(includeDeviceGeometry);
  int maxLayer = -1;
  for (const layout::FlatElement& e : f.elements)
    maxLayer = std::max(maxLayer, e.element.layer);
  const Coord cell = autoGridCell(f.bboxes);
  idx.byLayer.reserve(maxLayer + 1);
  for (int l = 0; l <= maxLayer; ++l) idx.byLayer.emplace_back(cell);
  idx.all = std::make_unique<geom::GridIndex>(cell);
  for (std::size_t i = 0; i < f.elements.size(); ++i) {
    const int l = f.elements[i].element.layer;
    if (l >= 0) idx.byLayer[l].insert(i, f.bboxes[i]);
    idx.all->insert(i, f.bboxes[i]);
  }
  std::size_t b = idx.byLayer.capacity() * sizeof(geom::GridIndex);
  for (const geom::GridIndex& g : idx.byLayer) b += g.memoryBytes();
  b += sizeof(geom::GridIndex) + idx.all->memoryBytes();
  accountedBytes_.fetch_add(b, std::memory_order_release);
  indexesReady_[v].store(true, std::memory_order_release);
  return idx;
}

std::vector<std::size_t> HierarchyView::flatCandidates(
    bool includeDeviceGeometry, int layer, const Rect& query,
    Coord inflate) const {
  std::vector<std::size_t> out;
  flatCandidatesInto(includeDeviceGeometry, layer, query, inflate, out);
  return out;
}

void HierarchyView::flatCandidatesInto(bool includeDeviceGeometry, int layer,
                                       const Rect& query, Coord inflate,
                                       std::vector<std::size_t>& out) const {
  const LayerIndexes& idx = ensureIndexes(includeDeviceGeometry);
  const Rect q = inflate ? query.inflated(inflate) : query;
  if (layer >= 0) {
    if (layer >= static_cast<int>(idx.byLayer.size())) {
      out.clear();
      return;
    }
    idx.byLayer[layer].queryInto(q, out);
    return;
  }
  idx.all->queryInto(q, out);
}

std::vector<std::pair<std::size_t, std::size_t>> HierarchyView::flatPairs(
    bool includeDeviceGeometry, Coord dist) const {
  const Flat& f = ensureFlat(includeDeviceGeometry);
  const LayerIndexes& idx = ensureIndexes(includeDeviceGeometry);
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < f.elements.size(); ++i) {
    for (std::size_t j : idx.all->query(f.bboxes[i].inflated(dist))) {
      if (j <= i) continue;
      if (geom::rectDistance(f.bboxes[i], f.bboxes[j],
                             geom::Metric::kOrthogonal) >
          static_cast<double>(dist))
        continue;
      out.push_back({i, j});
    }
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> pairsWithin(
    const std::vector<Rect>& bboxes, Coord dist) {
  const std::size_t n = bboxes.size();
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (n == 0) return out;
  geom::GridIndex grid(autoGridCell(bboxes));
  for (std::size_t i = 0; i < n; ++i) grid.insert(i, bboxes[i]);

  Arena& arena = scratchArena();
  ArenaScope scope(arena);
  // SoA copy of the boxes: the per-candidate gather below reads these
  // four contiguous arrays instead of strided Rect fields.
  Coord* xlo = arena.allocateArray<Coord>(n);
  Coord* ylo = arena.allocateArray<Coord>(n);
  Coord* xhi = arena.allocateArray<Coord>(n);
  Coord* yhi = arena.allocateArray<Coord>(n);
  for (std::size_t i = 0; i < n; ++i) {
    xlo[i] = bboxes[i].lo.x;
    ylo[i] = bboxes[i].lo.y;
    xhi[i] = bboxes[i].hi.x;
    yhi[i] = bboxes[i].hi.y;
  }

  // The scalar loop pays a sort+unique inside every grid.query() just to
  // canonicalize candidate order before the distance test throws most of
  // them away. Here the raw (unsorted, possibly duplicated) bucket
  // contents are gathered straight into SoA lanes, the branchless
  // Chebyshev-gap mask prunes them, and only the few SURVIVORS get the
  // sort+unique that fixes the output order -- so the expensive
  // canonicalization runs on the kept pairs instead of every candidate.
  static thread_local std::vector<std::size_t> cand;
  static thread_local std::vector<std::size_t> hits;
  std::size_t cap = 0;
  Coord *cx1 = nullptr, *cy1 = nullptr, *cx2 = nullptr, *cy2 = nullptr;
  std::uint8_t* keep = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    cand.clear();
    grid.queryRaw(bboxes[i].inflated(dist), cand);
    const std::size_t m = cand.size();
    if (m == 0) continue;
    if (m > cap) {
      cap = std::max(m, 2 * cap);
      cx1 = arena.allocateArray<Coord>(cap);
      cy1 = arena.allocateArray<Coord>(cap);
      cx2 = arena.allocateArray<Coord>(cap);
      cy2 = arena.allocateArray<Coord>(cap);
      keep = arena.allocateArray<std::uint8_t>(cap);
    }
    const std::size_t* js = cand.data();
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t j = js[k];
      cx1[k] = xlo[j];
      cy1[k] = ylo[j];
      cx2[k] = xhi[j];
      cy2[k] = yhi[j];
    }
    const Coord ax1 = xlo[i], ay1 = ylo[i], ax2 = xhi[i], ay2 = yhi[i];
    // Integer Chebyshev-gap test: exactly the scalar double rectDistance
    // comparison for exact int64 coordinates, branchless so it
    // autovectorizes. The j <= i half the scalar loop skips is folded
    // into the same mask.
#pragma GCC ivdep
    for (std::size_t k = 0; k < m; ++k) {
      Coord gx = cx1[k] - ax2;
      const Coord gx2 = ax1 - cx2[k];
      gx = gx > gx2 ? gx : gx2;
      Coord gy = cy1[k] - ay2;
      const Coord gy2 = ay1 - cy2[k];
      gy = gy > gy2 ? gy : gy2;
      Coord g = gx > gy ? gx : gy;
      g = g > 0 ? g : 0;
      keep[k] = static_cast<std::uint8_t>((g <= dist) & (js[k] > i));
    }
    hits.clear();
    for (std::size_t k = 0; k < m; ++k)
      if (keep[k]) hits.push_back(js[k]);
    // Canonical (i, j)-ascending order, duplicates (rects spanning
    // several grid cells) collapsed -- byte-identical to the scalar
    // loop's sorted-unique candidate walk.
    std::sort(hits.begin(), hits.end());
    hits.erase(std::unique(hits.begin(), hits.end()), hits.end());
    for (const std::size_t j : hits) out.push_back({i, j});
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> pairsWithinScalar(
    const std::vector<Rect>& bboxes, Coord dist) {
  geom::GridIndex grid(autoGridCell(bboxes));
  for (std::size_t i = 0; i < bboxes.size(); ++i) grid.insert(i, bboxes[i]);
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t i = 0; i < bboxes.size(); ++i) {
    for (std::size_t j : grid.query(bboxes[i].inflated(dist))) {
      if (j <= i) continue;
      if (geom::rectDistance(bboxes[i], bboxes[j],
                             geom::Metric::kOrthogonal) >
          static_cast<double>(dist))
        continue;
      out.push_back({i, j});
    }
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> HierarchyView::localPairs(
    layout::CellId id, Coord dist) const {
  const layout::Cell& c = lib_.cell(id);
  std::vector<Rect> bboxes;
  bboxes.reserve(c.elements.size());
  for (const layout::Element& e : c.elements) bboxes.push_back(e.bbox());
  return pairsWithin(bboxes, dist);
}

void HierarchyView::ensureFlatSlots(int v) const {
  // Caller holds mu_ and the variant's flat view is built. Patches never
  // resize or reorder flat elements, so once built the map stays valid
  // for the life of the flat vector and every later lookup is
  // O(log cells) + O(placements of one cell), not O(flat size).
  if (flatSlotsBuilt_[v]) return;
  const Flat& f = *flat_[v];
  for (std::size_t k = 0; k < f.elements.size(); ++k) {
    const layout::FlatElement& fe = f.elements[k];
    flatSlots_[v][{fe.sourceCell, fe.sourceIndex}].push_back(k);
  }
  flatSlotsBuilt_[v] = true;
}

std::vector<std::size_t> HierarchyView::flatSlotsOf(bool includeDeviceGeometry,
                                                    layout::CellId cell,
                                                    std::size_t index) const {
  const int v = includeDeviceGeometry ? 1 : 0;
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (!flatReady_[v].load(std::memory_order_relaxed)) return {};
  ensureFlatSlots(v);
  const auto it = flatSlots_[v].find({cell, index});
  return it == flatSlots_[v].end() ? std::vector<std::size_t>{} : it->second;
}

bool HierarchyView::patchElement(layout::CellId cell, std::size_t index) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const layout::Cell& c = lib_.cell(cell);
  if (index >= c.elements.size()) return false;
  const layout::Element& newElement = c.elements[index];
  ensurePlacements();
  auto pit = placements_.find(cell);
  // A cell unreachable from this root has no flat entries: nothing to do.
  if (pit == placements_.end()) return true;
  std::map<std::string, const geom::Transform*> byPath;
  for (const Placement& p : pit->second) byPath.emplace(p.path, &p.transform);

  for (int v = 0; v < 2; ++v) {
    if (!flatReady_[v].load(std::memory_order_relaxed)) continue;
    Flat& f = *flat_[v];
    ensureFlatSlots(v);
    // Validate this variant's matches before mutating it: each needs a
    // placement transform, and the layer must be unchanged (a layer
    // change would have to move the entry between per-layer indexes).
    std::vector<std::pair<std::size_t, const geom::Transform*>> hits;
    const auto sit = flatSlots_[v].find({cell, index});
    if (sit != flatSlots_[v].end()) {
      for (const std::size_t k : sit->second) {
        const layout::FlatElement& fe = f.elements[k];
        if (fe.element.layer != newElement.layer) return false;
        auto tp = byPath.find(fe.path);
        if (tp == byPath.end()) return false;
        hits.push_back({k, tp->second});
      }
    }
    const bool haveIndexes = indexesReady_[v].load(std::memory_order_relaxed);
    for (const auto& [k, t] : hits) {
      layout::FlatElement& fe = f.elements[k];
      fe.element = newElement.transformed(*t);
      const Rect nb = fe.element.bbox();
      if (haveIndexes) {
        LayerIndexes& idx = indexes_[v];
        if (newElement.layer >= 0) idx.byLayer[newElement.layer].update(k, nb);
        idx.all->update(k, nb);
      }
      f.bboxes[k] = nb;
    }
  }
  return true;
}

void HierarchyView::ensurePorts() const {
  if (portsReady_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::recursive_mutex> lock(mu_);
  if (portsReady_.load(std::memory_order_relaxed)) return;
  const Flat& f = ensureFlat(false);
  std::vector<Rect> rects;
  for (std::size_t d = 0; d < f.devices.size(); ++d)
    for (std::size_t p = 0; p < f.devices[d].ports.size(); ++p) {
      ports_.push_back({d, p});
      rects.push_back(f.devices[d].ports[p].at);
    }
  portIndex_ = std::make_unique<geom::GridIndex>(autoGridCell(rects));
  for (std::size_t pn = 0; pn < rects.size(); ++pn)
    portIndex_->insert(pn, rects[pn]);
  accountedBytes_.fetch_add(ports_.capacity() * sizeof(PortRef) +
                                sizeof(geom::GridIndex) +
                                portIndex_->memoryBytes(),
                            std::memory_order_release);
  portsReady_.store(true, std::memory_order_release);
}

const std::vector<HierarchyView::PortRef>& HierarchyView::ports() const {
  ensurePorts();
  return ports_;
}

std::vector<std::size_t> HierarchyView::portCandidates(const Rect& query,
                                                       Coord inflate) const {
  ensurePorts();
  return portIndex_->query(inflate ? query.inflated(inflate) : query);
}

void HierarchyView::collectWindow(layout::CellId id, const geom::Transform& t,
                                  const Rect& window,
                                  const std::string& relPath,
                                  std::vector<WindowElement>& out) const {
  // Warm the library's bbox cache (see children()).
  ensurePlacements();
  std::function<void(layout::CellId, const geom::Transform&,
                     const std::string&, bool)>
      rec = [&](layout::CellId cid, const geom::Transform& ct,
                const std::string& path, bool insideDevice) {
        const layout::Cell& c = lib_.cell(cid);
        const bool deviceHere = insideDevice || c.isDevice();
        for (std::size_t i = 0; i < c.elements.size(); ++i) {
          const Rect b = ct.apply(c.elements[i].bbox());
          if (!geom::closedTouch(b, window)) continue;
          WindowElement we;
          we.element = c.elements[i].transformed(ct);
          we.sourceCell = cid;
          we.sourceIndex = i;
          we.path = path;
          we.fromDevice = deviceHere;
          out.push_back(std::move(we));
        }
        int childNo = 0;
        for (const layout::Instance& inst : c.instances) {
          const geom::Transform it = geom::compose(inst.transform, ct);
          const Rect cb = it.apply(lib_.cellBBox(inst.cell));
          const std::string childName = instanceName(lib_, inst, childNo);
          ++childNo;
          if (!geom::closedTouch(cb, window)) continue;
          rec(inst.cell, it, joinPath(path, childName), deviceHere);
        }
      };
  rec(id, t, relPath, false);
}

SpatialSet::SpatialSet(const std::vector<Rect>& rects, Coord cellHint)
    : size_(rects.size()) {
  grid_ = std::make_unique<geom::GridIndex>(
      cellHint > 0 ? cellHint : autoGridCell(rects));
  for (std::size_t i = 0; i < rects.size(); ++i) grid_->insert(i, rects[i]);
}

std::vector<std::size_t> SpatialSet::candidates(const Rect& query,
                                                Coord inflate) const {
  return grid_->query(inflate ? query.inflated(inflate) : query);
}

void SpatialSet::candidatesInto(const Rect& query, Coord inflate,
                                std::vector<std::size_t>& out) const {
  grid_->queryInto(inflate ? query.inflated(inflate) : query, out);
}

}  // namespace dic::engine
