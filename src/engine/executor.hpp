#pragma once
/// \file executor.hpp
/// The engine's parallel executor: a persistent worker pool with per-worker
/// task deques and work-stealing. It serves two layers of parallelism at
/// once: the pipeline dispatcher submits whole stages as tasks, and a
/// running stage's inner fan-out (`parallelFor` over per-cell checks or
/// interaction windows) shares the same workers, so threads freed by a
/// finished stage immediately pick up another stage's inner work instead
/// of idling behind a barrier.
///
/// Determinism contract: neither `submit` nor `parallelFor` gives any
/// ordering guarantee on when a task or fn(i) runs, so callers that need
/// serial-identical output write each index's result into its own slot and
/// merge slots in index order after the fan-out completes. Every parallel
/// consumer in this codebase follows that pattern, which is why
/// `--threads N` output is byte-identical to serial. The full contract is
/// documented in docs/engine.md.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

/// \namespace dic
/// Root namespace of the DIC reproduction.
namespace dic {
/// \namespace dic::engine
/// The execution engine: the shared hierarchy view, the work-stealing
/// executor, and the ready-queue pipeline dispatcher.
namespace engine {

/// A persistent pool of `threads() - 1` worker threads plus the calling
/// thread. With one thread no pool is spawned and every operation runs
/// inline on the caller, in ascending index order — the serial reference
/// schedule.
///
/// Each worker owns a deque: it pushes and pops its own work LIFO (cache
/// locality for nested fan-outs) and steals FIFO from other workers when
/// its deque is empty, so coarse stage tasks and fine inner-loop chunks
/// balance across the pool without a central queue bottleneck. Tasks are
/// coarse in this codebase (a pipeline stage, or a chunk of a parallel
/// loop), so the deques are mutex-guarded rather than lock-free.
///
/// The destructor stops and joins the workers; any task still queued is
/// drained first. All internal uses wait for their tasks' completion
/// before the executor can be destroyed.
class Executor {
 public:
  /// threads <= 0 selects the cached hardware concurrency
  /// (hardwareThreads()); 1 is fully serial. threads - 1 pool workers are
  /// spawned immediately and live until destruction.
  explicit Executor(int threads = 1);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// The worker budget: pool workers plus the participating caller.
  int threads() const { return threads_; }

  /// Help-scope identity. Tasks are tagged with a scope; a *scoped*
  /// helpUntil steals only tasks carrying its scope, so a coordinator
  /// blocked on its own pipeline run never executes (and gets billed
  /// for) an unrelated run's work. Scope kAnyScope (0) means untagged /
  /// steal-anything; pool workers always run every task regardless of
  /// its tag, so scoping never reduces throughput — it only restricts
  /// what *helpers* pick up.
  using ScopeId = std::uint64_t;

  /// The untagged scope: tasks submitted with it are stealable by every
  /// helper, and a helpUntil passing it steals any task (the historical
  /// behavior).
  static constexpr ScopeId kAnyScope = 0;

  /// A process-unique scope id (never kAnyScope). Coordinators mint one
  /// per logical run and tag that run's tasks with it.
  static ScopeId newScope();

  /// std::thread::hardware_concurrency resolved once per process and
  /// cached (the lookup can be a syscall; benches also use this to label
  /// thread-sweep tables with the actual worker count).
  static int hardwareThreads();

  /// Run fn(i) for every i in [0, n), dynamically scheduled across up to
  /// threads() participants (the caller claims indices too); blocks until
  /// every claimed index has completed. With one worker (or n <= 1) runs
  /// inline, in ascending index order. fn must be safe to call
  /// concurrently for distinct i; a throwing fn surfaces its first
  /// exception to the caller after the loop quiesces (remaining indices
  /// are abandoned). Safe to call from inside a pool task (a stage's
  /// inner fan-out): the nested loop's chunks go to the worker's own
  /// deque where idle workers steal them, and the nested caller always
  /// drains its own loop, so progress never depends on pool capacity.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Enqueue one task for asynchronous execution. From a pool worker the
  /// task lands on that worker's own deque (stolen by idle workers);
  /// from any other thread deques are fed round-robin. With no pool
  /// (threads() == 1) the task runs inline before submit returns. Tasks
  /// must not let exceptions escape — coordinators (the pipeline
  /// dispatcher, parallelFor) capture failures into their own state.
  ///
  /// The task inherits the scope of the task the calling thread is
  /// currently executing (kAnyScope from outside the pool), so a stage's
  /// inner fan-out chunks carry the stage's pipeline-run scope
  /// automatically.
  void submit(std::function<void()> task);

  /// Same, tagging the task with an explicit scope instead of the
  /// inherited one. The pipeline dispatcher uses this to mark every
  /// stage of one run with that run's scope.
  void submit(std::function<void()> task, ScopeId scope);

  /// Make the calling thread a pool participant until done() returns
  /// true: it executes queued tasks, and sleeps only when the pool is
  /// empty. Coordinators use this so the submitting thread works instead
  /// of blocking (the pipeline dispatcher calls it while stages drain).
  /// done() must be monotonic (once true, stays true) and is re-checked
  /// after every task and every wake(). Returns immediately when there is
  /// no pool.
  void helpUntil(const std::function<bool()>& done);

  /// Scoped variant: executes only tasks tagged with `scope` (pass
  /// kAnyScope for the unrestricted form). A coordinator waiting on its
  /// own pipeline run helps with that run's stages and their inner
  /// chunks, but never absorbs a sibling run's work into its own wall
  /// clock — the fix for the CheckResult::seconds caveat documented in
  /// docs/workspace.md.
  void helpUntil(const std::function<bool()>& done, ScopeId scope);

  /// Wake every sleeping worker and helper so they re-check their
  /// predicates. Coordinators call this when a completion condition
  /// changes outside of task submission (e.g. a pipeline stage finished
  /// and helpUntil's done() may now be true).
  void wake();

 private:
  struct Pool;  ///< worker threads, deques, and sleep/wake bookkeeping

  int threads_{1};
  std::unique_ptr<Pool> pool_;  ///< null when threads_ == 1 (serial mode)
};

}  // namespace engine
}  // namespace dic
