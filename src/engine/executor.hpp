#pragma once
/// \file executor.hpp
/// The engine's parallel executor: a minimal fork-join fan-out used by the
/// stage runner to spread per-cell checks and interaction windows across
/// worker threads.
///
/// Determinism contract: parallelFor gives no ordering guarantee on when
/// fn(i) runs, so callers that need serial-identical output write each
/// index's result into its own slot and merge slots in index order after
/// the call returns. Every parallel consumer in this codebase follows that
/// pattern, which is why `--threads N` output is byte-identical to serial.

#include <cstddef>
#include <functional>

namespace dic::engine {

class Executor {
 public:
  /// threads <= 0 selects hardware concurrency; 1 is fully serial.
  explicit Executor(int threads = 1);

  int threads() const { return threads_; }

  /// Run fn(i) for every i in [0, n), dynamically scheduled across up to
  /// threads() workers; blocks until all complete. With one worker (or
  /// n <= 1) runs inline, in ascending index order. fn must be safe to
  /// call concurrently for distinct i.
  void parallelFor(std::size_t n,
                   const std::function<void(std::size_t)>& fn) const;

 private:
  int threads_{1};
};

}  // namespace dic::engine
