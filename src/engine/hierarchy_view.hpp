#pragma once
/// \file hierarchy_view.hpp
/// The shared hierarchy-view / spatial-query engine.
///
/// Every checker in this codebase works on the same substrate: the set of
/// placements of each cell under a root, flattened element/device views of
/// the design, and grid-indexed candidate-pair queries over those views.
/// Before this engine existed that substrate was re-implemented privately
/// by the interaction checker, the mask-level baseline, the netlist
/// extractor, and the structured-design checks. `HierarchyView` owns it
/// once: placement enumeration, cached flattening (both with and without
/// device-internal geometry), lazily built per-layer `geom::GridIndex`es,
/// and windowed subtree collection for instance-overlap checking.
///
/// All lazy caches are built under a mutex, so a single view can be shared
/// by the parallel stage runner's workers; query results reference
/// built-once storage and are safe to read concurrently.

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "geom/spatial.hpp"
#include "layout/library.hpp"

namespace dic::engine {

/// Join two dot-notation instance-path segments. This is THE path
/// composition rule: every consumer that builds or looks up hierarchical
/// paths (placements, windowed collection, net maps) must use it so keys
/// composed in one module match keys composed in another.
std::string joinPath(const std::string& a, const std::string& b);

/// One placement of a cell under the root: the composed transform and the
/// dot-notation instance path.
struct Placement {
  geom::Transform transform;  ///< composed root-to-instance transform
  std::string path;           ///< dot-notation instance path from root
};

/// A child instance of a cell with the naming and bbox bookkeeping every
/// hierarchical traversal needs.
struct ChildRef {
  std::size_t index{0};        ///< index into the parent cell's instances
  layout::CellId cell{0};      ///< the instantiated (child) cell
  geom::Transform transform{}; ///< instance transform (parent coordinates)
  geom::Rect bbox{};           ///< child bbox in parent coordinates
  std::string name;            ///< instance name used in hierarchical paths
};

/// An element produced by a windowed subtree walk.
struct WindowElement {
  layout::Element element;       ///< transformed into the caller's frame
  layout::CellId sourceCell{0};  ///< defining cell the element came from
  std::size_t sourceIndex{0};    ///< element index within the source cell
  std::string path;              ///< relPath-prefixed instance path
  bool fromDevice{false};        ///< element lives at or below a device cell
};

/// A read-only view of one hierarchy rooted at a cell.
class HierarchyView {
 public:
  /// Bind a view to one (library, root) pair. Caches build lazily on
  /// first use; the library must outlive the view and stay unmodified.
  HierarchyView(const layout::Library& lib, layout::CellId root)
      : lib_(lib), root_(root) {}

  /// The library this view reads from.
  const layout::Library& library() const { return lib_; }
  /// The root cell the hierarchy is viewed under.
  layout::CellId root() const { return root_; }

  /// Cells reachable from root, post-order (substrates before users),
  /// each once. This is the deterministic unit order used by the stage
  /// runner's per-cell fan-out.
  const std::vector<layout::CellId>& cells() const;

  /// All placements of every reachable cell (enumerated once, cached).
  const std::map<layout::CellId, std::vector<Placement>>& placements() const;

  /// Placements of one cell (empty if unreachable).
  const std::vector<Placement>& placementsOf(layout::CellId id) const;

  /// Child instances of a cell with names and parent-frame bboxes.
  std::vector<ChildRef> children(layout::CellId id) const;

  /// A cached flat view of the design.
  struct Flat {
    std::vector<layout::FlatElement> elements;  ///< flattened elements
    std::vector<layout::FlatDevice> devices;    ///< flattened device instances
    std::vector<geom::Rect> bboxes;  ///< element bboxes, parallel to elements
  };

  /// Flatten below root (cached per variant). With
  /// includeDeviceGeometry=false device internals are omitted and devices
  /// are reported only through Flat::devices; with true their geometry is
  /// emitted too (the mask-level baseline's view of the world).
  const Flat& flat(bool includeDeviceGeometry) const;

  /// Build the flat view and its spatial indexes now. Callers about to
  /// fan queries across workers use this to pay the one-time build
  /// serially instead of queueing every worker on the first query.
  void prepare(bool includeDeviceGeometry) const;

  /// Whether the flat view of one variant has been materialized. The
  /// incremental patch path reads this to decide if pre-edit state exists
  /// to probe (an unbuilt flat view simply builds later from the already
  /// edited library, which is equally correct).
  bool flatBuilt(bool includeDeviceGeometry) const {
    return flatReady_[includeDeviceGeometry ? 1 : 0].load(
        std::memory_order_acquire);
  }

  /// Candidate element indices (into flat(v).elements) whose grid cells
  /// intersect `query` inflated by `inflate`, on one layer (or all layers
  /// when layer < 0). Sorted, deduplicated; candidates only -- callers
  /// re-test exact geometry.
  std::vector<std::size_t> flatCandidates(bool includeDeviceGeometry,
                                          int layer, const geom::Rect& query,
                                          geom::Coord inflate = 0) const;

  /// flatCandidates() into a caller-owned buffer (cleared first; result
  /// sorted, deduplicated). The hot-path form: per-check loops reuse one
  /// buffer across thousands of queries instead of allocating each time.
  void flatCandidatesInto(bool includeDeviceGeometry, int layer,
                          const geom::Rect& query, geom::Coord inflate,
                          std::vector<std::size_t>& out) const;

  /// Approximate bytes of everything this view has lazily built so far:
  /// placements, flat element/device views, grid indexes, port tables.
  /// Grows as caches build (a fresh view reports only its own footprint)
  /// and is maintained incrementally by the builders, so reading it is a
  /// single atomic load — safe from any thread, even while another
  /// worker is mid-build. The Workspace's LRU cap is enforced against
  /// this number.
  std::size_t memoryBytes() const {
    return sizeof(*this) + accountedBytes_.load(std::memory_order_acquire);
  }

  /// All pairs (i < j) of flat elements whose bboxes are within `dist`
  /// of each other under the orthogonal metric, ordered by (i, j). This
  /// is the one-shot reference form of the sweep (used as the test
  /// oracle); the parallel interaction checker streams the same (i, j>i)
  /// enumeration per worker chunk via flatCandidates to avoid
  /// materializing the pair list.
  std::vector<std::pair<std::size_t, std::size_t>> flatPairs(
      bool includeDeviceGeometry, geom::Coord dist) const;

  /// All pairs (i < j) of one cell's *own* elements whose bboxes are
  /// within `dist` (orthogonal metric), ordered by (i, j). Pure: no
  /// shared state, safe to call from any worker.
  std::vector<std::pair<std::size_t, std::size_t>> localPairs(
      layout::CellId id, geom::Coord dist) const;

  /// Device terminal identity: flat(false).devices[device].ports[port].
  struct PortRef {
    std::size_t device{0};  ///< index into Flat::devices
    std::size_t port{0};    ///< port index within that device
  };

  /// All flattened device ports in (device, port) order.
  const std::vector<PortRef>& ports() const;

  /// Candidate port indices (into ports()) near `query`.
  std::vector<std::size_t> portCandidates(const geom::Rect& query,
                                          geom::Coord inflate = 0) const;

  /// Windowed subtree collection: every element at or below `id` (device
  /// internals included) whose transformed bbox closed-touches `window`,
  /// transformed by `t` and path-prefixed with `relPath`. Subtrees whose
  /// bbox misses the window are pruned -- this is the "examine only the
  /// instance-overlap window" step of hierarchical interaction checking.
  void collectWindow(layout::CellId id, const geom::Transform& t,
                     const geom::Rect& window, const std::string& relPath,
                     std::vector<WindowElement>& out) const;

  /// In-place patch after a tracked element edit
  /// (layout::Library::setElement): re-transform the edited element at
  /// every placement in each materialized flat variant and splice its
  /// grid-index entries, leaving everything else untouched. The patched
  /// view is content-identical to a fresh build against the current
  /// library. Preconditions: the library already holds the new element,
  /// and the edit changed neither the cell's element count nor the
  /// element's layer. Returns false when the patch cannot be applied
  /// (bad index, layer changed, or a flat entry's placement path does not
  /// resolve) — the view may then be partially patched and must be
  /// discarded and rebuilt by the caller.
  bool patchElement(layout::CellId cell, std::size_t index);

  /// Flat slots (indices into flat(v).elements) holding instances of
  /// element (cell, index); empty when the variant is unbuilt or the
  /// cell is unreachable. Served from the same lazily built slot map
  /// patchElement uses, so the Workspace's pre-edit connectivity probes
  /// are O(placements of the edited cell), not O(flat size).
  std::vector<std::size_t> flatSlotsOf(bool includeDeviceGeometry,
                                       layout::CellId cell,
                                       std::size_t index) const;

 private:
  /// Per-layer grid indexes over one flat variant, plus a combined
  /// all-layer index for layer-agnostic queries and pair sweeps.
  struct LayerIndexes {
    std::vector<geom::GridIndex> byLayer;
    std::unique_ptr<geom::GridIndex> all;
  };

  // Lazy caches follow double-checked locking: the atomic ready flag is
  // set (release) only after the cache is fully built under mu_, so the
  // hot path from parallel workers is a single acquire load.
  const Flat& ensureFlat(bool includeDeviceGeometry) const;
  void ensureFlatSlots(int v) const;
  const LayerIndexes& ensureIndexes(bool includeDeviceGeometry) const;
  void ensurePlacements() const;
  void ensurePorts() const;

  const layout::Library& lib_;
  layout::CellId root_;

  mutable std::recursive_mutex mu_;
  mutable std::atomic<bool> placementsReady_{false};
  mutable std::vector<layout::CellId> cells_;
  mutable std::map<layout::CellId, std::vector<Placement>> placements_;
  mutable std::unique_ptr<Flat> flat_[2];          ///< [includeDeviceGeometry]
  mutable std::atomic<bool> flatReady_[2]{};
  /// (sourceCell, sourceIndex) -> flat slots, built lazily by the first
  /// patchElement on each variant (under mu_). Stays valid as long as
  /// the flat vector itself: patches mutate entries in place, never
  /// resize or reorder.
  mutable std::map<std::pair<layout::CellId, std::size_t>,
                   std::vector<std::size_t>>
      flatSlots_[2];
  mutable bool flatSlotsBuilt_[2]{};
  mutable LayerIndexes indexes_[2];
  mutable std::atomic<bool> indexesReady_[2]{};
  mutable std::atomic<bool> portsReady_{false};
  mutable std::vector<PortRef> ports_;
  mutable std::unique_ptr<geom::GridIndex> portIndex_;
  /// Bytes of built lazy state; each ensureX adds its contribution once,
  /// right before publishing its ready flag.
  mutable std::atomic<std::size_t> accountedBytes_{0};
};

/// A one-shot spatial set over arbitrary rects -- derived geometry that is
/// not part of the hierarchy proper (mask-region rects, connected
/// components), so it cannot be served by HierarchyView's element indexes.
/// Wraps geom::GridIndex with an automatically chosen cell size so callers
/// never build grids by hand.
class SpatialSet {
 public:
  /// Index `rects` with grid cell size `cellHint` (0 = autoGridCell).
  explicit SpatialSet(const std::vector<geom::Rect>& rects,
                      geom::Coord cellHint = 0);

  /// Candidate rect indices near `query` (sorted, deduplicated).
  std::vector<std::size_t> candidates(const geom::Rect& query,
                                      geom::Coord inflate = 0) const;

  /// candidates() into a caller-owned buffer (cleared first).
  void candidatesInto(const geom::Rect& query, geom::Coord inflate,
                      std::vector<std::size_t>& out) const;

  /// Number of indexed rects.
  std::size_t size() const { return size_; }

 private:
  std::unique_ptr<geom::GridIndex> grid_;
  std::size_t size_{0};
};

/// Grid cell size heuristic shared by the engine's indexes: a few times
/// the mean bbox extent, clamped to a sane range.
geom::Coord autoGridCell(const std::vector<geom::Rect>& rects);

/// All pairs (i < j) of `bboxes` within `dist` of each other under the
/// orthogonal metric, ordered by (i, j). The grid-accelerated pair sweep
/// shared by HierarchyView::localPairs and callers that already hold
/// precomputed bboxes.
///
/// Vectorized: candidate boxes are gathered into SoA scratch (arena) and
/// filtered with a branchless integer Chebyshev-gap mask; for exact int64
/// coordinates that compare equals the scalar double rectDistance test,
/// so output matches pairsWithinScalar pair for pair.
std::vector<std::pair<std::size_t, std::size_t>> pairsWithin(
    const std::vector<geom::Rect>& bboxes, geom::Coord dist);

/// Scalar reference for pairsWithin (differential-test oracle).
std::vector<std::pair<std::size_t, std::size_t>> pairsWithinScalar(
    const std::vector<geom::Rect>& bboxes, geom::Coord dist);

}  // namespace dic::engine
