#include "engine/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

namespace dic::engine {

void Pipeline::add(Stage s) { stages_.push_back(std::move(s)); }

double Pipeline::seconds(const std::string& name) const {
  for (const StageResult& r : results_)
    if (r.name == name) return r.seconds;
  return 0;
}

report::Report Pipeline::run(Executor& exec) {
  const std::size_t n = stages_.size();
  // Resolve dependency names to indices up front.
  std::vector<std::vector<std::size_t>> deps(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& d : stages_[i].deps) {
      bool found = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (stages_[j].name == d) {
          deps[i].push_back(j);
          found = true;
          break;
        }
      }
      if (!found)
        throw std::invalid_argument("pipeline stage '" + stages_[i].name +
                                    "' depends on unknown stage '" + d + "'");
    }
  }

  std::vector<report::Report> reports(n);
  results_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) results_[i].name = stages_[i].name;

  std::vector<bool> done(n, false);
  std::size_t completed = 0;
  auto runStage = [&](std::size_t i, Executor& stageExec) {
    const auto t0 = std::chrono::steady_clock::now();
    reports[i] = stages_[i].run(stageExec);
    const auto t1 = std::chrono::steady_clock::now();
    results_[i].seconds = std::chrono::duration<double>(t1 - t0).count();
  };

  while (completed < n) {
    std::vector<std::size_t> wave;
    for (std::size_t i = 0; i < n; ++i) {
      if (done[i]) continue;
      bool ready = true;
      for (std::size_t d : deps[i]) ready = ready && done[d];
      if (ready) wave.push_back(i);
    }
    if (wave.empty())
      throw std::invalid_argument("pipeline has a dependency cycle");
    if (exec.threads() > 1 && wave.size() > 1) {
      // Share the worker budget: run at most `concurrent` stages at a
      // time, each with budget/concurrent inner workers, so total active
      // threads never exceed the requested count. The first exception
      // (in wave order) surfaces to the caller.
      const int budget = exec.threads();
      const std::size_t concurrent =
          std::min<std::size_t>(wave.size(), static_cast<std::size_t>(budget));
      Executor stageExec(
          std::max<int>(1, budget / static_cast<int>(concurrent)));
      std::vector<std::exception_ptr> errors(wave.size());
      auto guarded = [&](std::size_t k) {
        try {
          runStage(wave[k], stageExec);
        } catch (...) {
          errors[k] = std::current_exception();
        }
      };
      bool failed = false;
      for (std::size_t batch = 0;
           batch < wave.size() && !failed; batch += concurrent) {
        const std::size_t end = std::min(batch + concurrent, wave.size());
        std::vector<std::thread> ts;
        ts.reserve(end - batch - 1);
        for (std::size_t k = batch + 1; k < end; ++k)
          ts.emplace_back(guarded, k);
        guarded(batch);
        for (std::thread& t : ts) t.join();
        // Match the serial contract: once a stage has thrown, no further
        // batches start.
        for (std::size_t k = batch; k < end; ++k)
          if (errors[k]) failed = true;
      }
      for (const std::exception_ptr& e : errors)
        if (e) std::rethrow_exception(e);
    } else {
      for (std::size_t i : wave) runStage(i, exec);
    }
    for (std::size_t i : wave) done[i] = true;
    completed += wave.size();
  }

  report::Report merged;
  for (std::size_t i = 0; i < n; ++i) merged.merge(reports[i]);
  return merged;
}

}  // namespace dic::engine
