#include "engine/pipeline.hpp"

#include <algorithm>

#include "engine/arena.hpp"
#include "obs/trace.hpp"
#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <stdexcept>

namespace dic {
namespace engine {

void Pipeline::add(Stage s) { stages_.push_back(std::move(s)); }

double Pipeline::seconds(const std::string& name) const {
  for (const StageResult& r : results_)
    if (r.name == name) return r.seconds;
  return 0;
}

report::Report Pipeline::run(Executor& exec, FailurePolicy policy) {
  const std::size_t n = stages_.size();
  // Resolve dependency names to indices up front.
  std::vector<std::vector<std::size_t>> deps(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::string& d : stages_[i].deps) {
      bool found = false;
      for (std::size_t j = 0; j < n; ++j) {
        if (stages_[j].name == d) {
          deps[i].push_back(j);
          found = true;
          break;
        }
      }
      if (!found)
        throw std::invalid_argument("pipeline stage '" + stages_[i].name +
                                    "' depends on unknown stage '" + d + "'");
    }
  }

  // Invert into dependents + remaining-dep counters, and reject cycles
  // before anything runs (Kahn's count over a scratch copy).
  std::vector<std::vector<std::size_t>> dependents(n);
  std::vector<int> indegree(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    indegree[i] = static_cast<int>(deps[i].size());
    for (std::size_t d : deps[i]) dependents[d].push_back(i);
  }
  {
    std::vector<int> scratch = indegree;
    std::vector<std::size_t> queue;
    for (std::size_t i = 0; i < n; ++i)
      if (scratch[i] == 0) queue.push_back(i);
    std::size_t reachable = 0;
    while (!queue.empty()) {
      const std::size_t i = queue.back();
      queue.pop_back();
      ++reachable;
      for (std::size_t d : dependents[i])
        if (--scratch[d] == 0) queue.push_back(d);
    }
    if (reachable < n)
      throw std::invalid_argument("pipeline has a dependency cycle");
  }

  std::vector<report::Report> reports(n);
  results_.assign(n, {});
  for (std::size_t i = 0; i < n; ++i) results_[i].name = stages_[i].name;
  if (n == 0) return {};

  const auto runT0 = std::chrono::steady_clock::now();
  auto runStage = [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    results_[i].start = std::chrono::duration<double>(t0 - runT0).count();
    {
      // Per-stage scratch lifetime: anything the stage bump-allocates on
      // this thread is reclaimed when the body returns. Worker threads
      // running the stage's inner parallelFor chunks get the same
      // treatment per index inside the executor.
      ArenaScope scratch(scratchArena());
      // The stage's span carries the stage name verbatim (the trace↔
      // stage-graph consistency contract); Stage::traceId reroutes a
      // per-request stage of a shared batch graph into its own trace.
      obs::ScopedSpan span(stages_[i].name, stages_[i].traceId);
      reports[i] = stages_[i].run(exec);
    }
    const auto t1 = std::chrono::steady_clock::now();
    results_[i].seconds = std::chrono::duration<double>(t1 - t0).count();
  };
  // Costlier ready stages start first; declaration order breaks ties.
  auto costOrder = [&](std::vector<std::size_t>& v) {
    std::sort(v.begin(), v.end(), [&](std::size_t a, std::size_t b) {
      if (stages_[a].cost != stages_[b].cost)
        return stages_[a].cost > stages_[b].cost;
      return a < b;
    });
  };

  // Capture a throwing stage body into its own results_ slot (kIsolate's
  // only failure channel; kAbort additionally keeps the exception_ptr to
  // rethrow).
  auto describe = [](std::exception_ptr ep) -> std::string {
    try {
      std::rethrow_exception(ep);
    } catch (const std::exception& ex) {
      return ex.what();
    } catch (...) {
      return "unknown failure";
    }
  };

  std::vector<int> remaining = indegree;
  // kIsolate poison marks: set on a dependent the moment any of its
  // dependencies fails or is skipped; a poisoned stage is marked skipped
  // instead of running when its counter reaches zero.
  std::vector<char> poisoned(n, 0);
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i)
    if (remaining[i] == 0) ready.push_back(i);
  costOrder(ready);

  if (exec.threads() <= 1) {
    // Serial dispatch: same ready-queue discipline, fully deterministic
    // order. Under kAbort exceptions propagate directly (nothing else is
    // in flight); under kIsolate they are recorded and only the failed
    // stage's transitive dependents are skipped.
    std::function<void(std::size_t, bool)> release = [&](std::size_t i,
                                                         bool bad) {
      for (std::size_t d : dependents[i]) {
        if (bad) poisoned[d] = 1;
        if (--remaining[d] == 0) {
          if (poisoned[d]) {
            results_[d].skipped = true;
            release(d, true);
          } else {
            ready.push_back(d);
          }
        }
      }
    };
    while (!ready.empty()) {
      const std::size_t i = ready.front();
      ready.erase(ready.begin());
      bool bad = false;
      try {
        runStage(i);
      } catch (...) {
        // The failed stage is identifiable from results() under both
        // policies; kAbort additionally propagates the exception.
        results_[i].error = describe(std::current_exception());
        if (policy == FailurePolicy::kAbort) throw;
        bad = true;
      }
      release(i, bad);
      costOrder(ready);
    }
  } else {
    std::mutex mu;  // guards `remaining`, `poisoned`, and `errors`
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> failed{false};  // kAbort: stop starting new bodies
    std::vector<std::exception_ptr> errors(n);
    // Every stage of this run carries one fresh help-scope tag: the
    // coordinator blocked in helpUntil below then steals only this run's
    // stages (and their inner fan-out chunks, which inherit the tag), so
    // a nested pipeline run — one batch request among many — never
    // absorbs a sibling run's work into its own wall clock. Pool workers
    // ignore the tag, so work conservation is unaffected.
    const Executor::ScopeId scope = Executor::newScope();
    // Stage tasks run on the pool; each one releases its dependents the
    // moment it completes, so a freed worker flows straight into the
    // next ready stage (or into another stage's inner parallelFor via
    // work-stealing). `dispatch` stays alive for the whole drain because
    // run() blocks in helpUntil below.
    std::function<void(std::size_t)> dispatch = [&](std::size_t i) {
      exec.submit([&, i] {
        bool bad = false;
        bool skip = false;
        if (policy == FailurePolicy::kIsolate) {
          // Poison is decided strictly before the dependent's counter
          // hits zero (both under mu), so this read sees the final value.
          std::lock_guard<std::mutex> lock(mu);
          skip = poisoned[i] != 0;
        }
        if (skip) {
          results_[i].skipped = true;  // exclusive slot, no lock needed
          bad = true;
        } else if (!failed.load()) {
          try {
            runStage(i);
          } catch (...) {
            std::lock_guard<std::mutex> lock(mu);
            // Recorded under both policies so results() always names the
            // failed stage; kAbort additionally rethrows from run().
            results_[i].error = describe(std::current_exception());
            if (policy == FailurePolicy::kAbort) {
              errors[i] = std::current_exception();
              failed.store(true);
            }
            bad = true;
          }
        }
        // kAbort after a failure: dependents are still dispatched (their
        // tasks skip the stage body) so `completed` reaches n and run()
        // unblocks; matching the serial contract, no further stage
        // bodies execute. kIsolate: only poisoned dependents skip.
        std::vector<std::size_t> newly;
        {
          std::lock_guard<std::mutex> lock(mu);
          for (std::size_t d : dependents[i]) {
            if (bad && policy == FailurePolicy::kIsolate) poisoned[d] = 1;
            if (--remaining[d] == 0) newly.push_back(d);
          }
        }
        costOrder(newly);
        for (std::size_t d : newly) dispatch(d);
        completed.fetch_add(1);
        exec.wake();  // helpUntil's done() may be true now
      }, scope);
    };
    for (std::size_t i : ready) dispatch(i);
    exec.helpUntil([&] { return completed.load() == n; }, scope);
    for (std::size_t i = 0; i < n; ++i)
      if (errors[i]) std::rethrow_exception(errors[i]);
  }

  report::Report merged;
  for (std::size_t i = 0; i < n; ++i) merged.merge(reports[i]);
  return merged;
}

}  // namespace engine
}  // namespace dic
