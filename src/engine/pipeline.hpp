#pragma once
/// \file pipeline.hpp
/// The stage runner: a declarative replacement for hard-wired serial
/// stage calls. A Pipeline holds named Stages with explicit dependencies
/// and executes them with a ready-queue dispatcher: every stage carries a
/// remaining-dependency counter, enters the ready queue the moment its
/// last dependency completes, and is started by the shared Executor pool
/// as soon as a worker is free — there is no wave barrier, so a stage
/// whose single dependency finishes early starts while unrelated slow
/// stages are still running. Wall-clock (and start timestamp) is recorded
/// per stage uniformly, and the stage Reports merge in *declaration*
/// order so the final report is independent of the execution schedule.
/// The scheduling model and determinism contract are documented in
/// docs/engine.md.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/executor.hpp"
#include "report/violation.hpp"

namespace dic {
namespace engine {

/// One named unit of pipeline work. `run` receives the pipeline's
/// executor so a stage can fan its own inner work (per-cell checks,
/// interaction windows) across the same worker pool the dispatcher
/// schedules stages on.
struct Stage {
  std::string name;               ///< unique stage name, used in `deps`
  std::vector<std::string> deps;  ///< names of stages that must finish first
  std::function<report::Report(Executor&)> run;  ///< the stage body

  /// Relative cost hint (any positive scale). When several stages are
  /// ready at once the dispatcher starts the costliest first (declaration
  /// order breaks ties), so long stages — and the dependencies of long
  /// stages — are not stuck behind cheap ones. A hint only: it never
  /// affects results, which are schedule-independent by construction.
  double cost{1.0};

  /// Trace attribution (docs/observability.md): 0 inherits whatever
  /// trace the dispatching thread is in; non-zero opens this stage's
  /// span in that trace instead. Batch graphs set it per request so a
  /// shared pipeline run splits cleanly into per-request span trees.
  std::uint64_t traceId{0};
};

/// Timing and outcome of one stage. Each stage writes only its own
/// pre-allocated slot, so the `Pipeline::results()` vector stays in
/// declaration order no matter in which order stages complete.
struct StageResult {
  std::string name;    ///< stage name (copied from the Stage)
  double start{-1.0};  ///< seconds from run() entry to stage start; -1 if
                       ///< the stage never started (earlier failure)
  double seconds{0};   ///< stage wall-clock, 0 if the stage never started
  /// What the stage body threw (exception::what(), or "unknown failure"),
  /// empty if the stage succeeded or never ran. Recorded under both
  /// policies; under FailurePolicy::kAbort the same exception is
  /// additionally rethrown from run(), under kIsolate this string is the
  /// only failure channel.
  std::string error;
  /// True if the stage never ran because a transitive dependency failed
  /// (FailurePolicy::kIsolate only; under kAbort never-started stages
  /// just keep start == -1).
  bool skipped{false};

  /// True if the stage ran to completion.
  bool ok() const { return error.empty() && !skipped && start >= 0; }
};

/// What a throwing stage does to the rest of the graph.
enum class FailurePolicy : std::uint8_t {
  /// Classic semantics: no new stages start, running stages finish, and
  /// the failed stage with the lowest declaration index is rethrown from
  /// run().
  kAbort,
  /// Multi-run (batch) semantics: the failure is recorded in the stage's
  /// StageResult::error, its transitive dependents are skipped
  /// (StageResult::skipped) without running, and every stage NOT
  /// downstream of a failure still executes. run() returns normally with
  /// the merged report of the stages that succeeded; callers read
  /// per-stage outcomes from results(). This is how a batch graph
  /// composed of many logical runs isolates one run's failure from its
  /// siblings (see docs/engine.md, "Batch graphs").
  kIsolate,
};

/// A DAG of named stages executed by the ready-queue dispatcher.
class Pipeline {
 public:
  /// Append a stage. Declaration order defines the report-merge order and
  /// the deterministic serial schedule's tiebreak.
  void add(Stage s);

  /// Execute all stages on `exec`'s worker pool. Throws
  /// std::invalid_argument on an unknown or cyclic dependency — detected
  /// up front, before any stage runs. Returns the union of all stage
  /// reports, merged in declaration order regardless of how stages were
  /// scheduled. Stage-body failures follow `policy`: kAbort (the
  /// default) stops new stages and rethrows the failed stage with the
  /// lowest declaration index; kIsolate records the failure in
  /// results(), skips only that stage's transitive dependents, and
  /// returns normally.
  ///
  /// With exec.threads() == 1 the dispatcher degenerates to a fully
  /// deterministic serial schedule (ready stages ordered by cost, then
  /// declaration); with more threads stage *start order* depends on
  /// timing, but the merged report and results() slots do not.
  report::Report run(Executor& exec, FailurePolicy policy = FailurePolicy::kAbort);

  /// Per-stage timings of the last run, always in declaration order:
  /// slots are pre-allocated before dispatch and each stage writes only
  /// its own, so concurrent completion in any order cannot reorder or
  /// tear this vector. Valid only after run() returned (normally or by
  /// throwing).
  const std::vector<StageResult>& results() const { return results_; }

  /// Seconds spent in a stage during the last run (0 if the stage is
  /// unknown or never started). Declaration-order semantics as
  /// results().
  double seconds(const std::string& name) const;

 private:
  std::vector<Stage> stages_;
  std::vector<StageResult> results_;
};

}  // namespace engine
}  // namespace dic
