#pragma once
/// \file pipeline.hpp
/// The stage runner: a declarative replacement for hard-wired serial
/// stage calls. A Pipeline holds named Stages with explicit dependencies
/// and executes them with a ready-queue dispatcher: every stage carries a
/// remaining-dependency counter, enters the ready queue the moment its
/// last dependency completes, and is started by the shared Executor pool
/// as soon as a worker is free — there is no wave barrier, so a stage
/// whose single dependency finishes early starts while unrelated slow
/// stages are still running. Wall-clock (and start timestamp) is recorded
/// per stage uniformly, and the stage Reports merge in *declaration*
/// order so the final report is independent of the execution schedule.
/// The scheduling model and determinism contract are documented in
/// docs/engine.md.

#include <functional>
#include <string>
#include <vector>

#include "engine/executor.hpp"
#include "report/violation.hpp"

namespace dic {
namespace engine {

/// One named unit of pipeline work. `run` receives the pipeline's
/// executor so a stage can fan its own inner work (per-cell checks,
/// interaction windows) across the same worker pool the dispatcher
/// schedules stages on.
struct Stage {
  std::string name;               ///< unique stage name, used in `deps`
  std::vector<std::string> deps;  ///< names of stages that must finish first
  std::function<report::Report(Executor&)> run;  ///< the stage body

  /// Relative cost hint (any positive scale). When several stages are
  /// ready at once the dispatcher starts the costliest first (declaration
  /// order breaks ties), so long stages — and the dependencies of long
  /// stages — are not stuck behind cheap ones. A hint only: it never
  /// affects results, which are schedule-independent by construction.
  double cost{1.0};
};

/// Timing of one completed stage. Each stage writes only its own
/// pre-allocated slot, so the `Pipeline::results()` vector stays in
/// declaration order no matter in which order stages complete.
struct StageResult {
  std::string name;    ///< stage name (copied from the Stage)
  double start{-1.0};  ///< seconds from run() entry to stage start; -1 if
                       ///< the stage never started (earlier failure)
  double seconds{0};   ///< stage wall-clock, 0 if the stage never started
};

/// A DAG of named stages executed by the ready-queue dispatcher.
class Pipeline {
 public:
  /// Append a stage. Declaration order defines the report-merge order and
  /// the deterministic serial schedule's tiebreak.
  void add(Stage s);

  /// Execute all stages on `exec`'s worker pool. Throws
  /// std::invalid_argument on an unknown or cyclic dependency — detected
  /// up front, before any stage runs. Returns the union of all stage
  /// reports, merged in declaration order regardless of how stages were
  /// scheduled. If a stage throws, no new stages start, already-running
  /// stages finish, and the failed stage with the lowest declaration
  /// index has its exception rethrown here.
  ///
  /// With exec.threads() == 1 the dispatcher degenerates to a fully
  /// deterministic serial schedule (ready stages ordered by cost, then
  /// declaration); with more threads stage *start order* depends on
  /// timing, but the merged report and results() slots do not.
  report::Report run(Executor& exec);

  /// Per-stage timings of the last run, always in declaration order:
  /// slots are pre-allocated before dispatch and each stage writes only
  /// its own, so concurrent completion in any order cannot reorder or
  /// tear this vector. Valid only after run() returned (normally or by
  /// throwing).
  const std::vector<StageResult>& results() const { return results_; }

  /// Seconds spent in a stage during the last run (0 if the stage is
  /// unknown or never started). Declaration-order semantics as
  /// results().
  double seconds(const std::string& name) const;

 private:
  std::vector<Stage> stages_;
  std::vector<StageResult> results_;
};

}  // namespace engine
}  // namespace dic
