#pragma once
/// \file pipeline.hpp
/// The stage runner: a declarative replacement for hard-wired serial
/// stage calls. A Pipeline holds named Stages with explicit dependencies,
/// executes them wave-by-wave (a wave is every stage whose dependencies
/// have completed; independent stages in a wave run concurrently when the
/// executor has more than one worker), records wall-clock per stage
/// uniformly, and merges the stage Reports in *declaration* order so the
/// final report is independent of the execution schedule.

#include <functional>
#include <string>
#include <vector>

#include "engine/executor.hpp"
#include "report/violation.hpp"

namespace dic::engine {

/// One named unit of pipeline work. `run` receives the pipeline's
/// executor so a stage can fan its own inner work (per-cell checks,
/// interaction windows) across the same worker budget.
struct Stage {
  std::string name;
  std::vector<std::string> deps;  ///< names of stages that must finish first
  std::function<report::Report(Executor&)> run;
};

/// Wall-clock of one completed stage.
struct StageResult {
  std::string name;
  double seconds{0};
};

class Pipeline {
 public:
  void add(Stage s);

  /// Execute all stages. Throws std::invalid_argument on an unknown or
  /// cyclic dependency. Returns the union of all stage reports, merged in
  /// declaration order regardless of how stages were scheduled.
  report::Report run(Executor& exec);

  /// Per-stage timings of the last run, in declaration order.
  const std::vector<StageResult>& results() const { return results_; }

  /// Seconds spent in a stage during the last run (0 if unknown).
  double seconds(const std::string& name) const;

 private:
  std::vector<Stage> stages_;
  std::vector<StageResult> results_;
};

}  // namespace dic::engine
