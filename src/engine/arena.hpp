#pragma once
/// \file arena.hpp
/// Bump-pointer arena for per-check scratch geometry.
///
/// The serving hot path allocates short-lived vectors (candidate id lists,
/// window element buffers, gap masks) on every check request. An Arena
/// turns each of those into a pointer bump: blocks are retained at their
/// high-water mark and handed back wholesale at stage (or loop-index)
/// boundaries, so steady-state serving does no heap traffic for scratch.
///
/// Contract (see docs/geom.md):
///  * thread-confined -- an Arena may only be used from one thread at a
///    time; the per-thread `scratchArena()` instance never crosses threads.
///  * stack discipline -- `mark()`/`release()` pairs nest; `ArenaScope` is
///    the RAII form. The engine resets the scratch arena around every
///    pipeline stage body and every parallelFor index.
///  * byte-accounted -- every block an arena reserves is counted in the
///    process-wide `Arena::totalReservedBytes()`, which the workspace
///    surfaces beside its cache accounting.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace dic {
namespace engine {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 256 * 1024;

  explicit Arena(std::size_t blockBytes = kDefaultBlockBytes)
      : blockBytes_(blockBytes ? blockBytes : kDefaultBlockBytes) {}
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` aligned to `align` (any power of two).
  void* allocate(std::size_t bytes,
                 std::size_t align = alignof(std::max_align_t));

  /// Typed array allocation (uninitialized storage).
  template <class T>
  T* allocateArray(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// A rewind point. Marks nest with stack discipline: release in reverse
  /// order of mark. Blocks reserved after the mark stay reserved (the
  /// high-water pool), only the bump cursor rewinds.
  struct Mark {
    std::size_t block{0};
    std::size_t offset{0};
    std::size_t used{0};
  };
  Mark mark() const { return {cur_, offset_, used_}; }
  void release(const Mark& m) {
    cur_ = m.block;
    offset_ = m.offset;
    used_ = m.used;
  }

  /// Rewind to empty (blocks retained).
  void reset() {
    cur_ = 0;
    offset_ = 0;
    used_ = 0;
  }

  /// Bytes handed out since the last reset, including alignment padding
  /// and fragmentation at block boundaries.
  std::size_t usedBytes() const { return used_; }

  /// Total bytes of backing blocks this arena holds (high-water mark).
  std::size_t reservedBytes() const { return reserved_; }

  std::size_t blockCount() const { return blocks_.size(); }

  /// Process-wide sum of reservedBytes() over all live arenas. This is
  /// what workspace cache accounting reports as scratch memory.
  static std::size_t totalReservedBytes();

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size{0};
  };

  void* allocateSlow(std::size_t bytes, std::size_t align);

  std::vector<Block> blocks_;
  std::size_t cur_{0};     ///< index of the block the cursor is in
  std::size_t offset_{0};  ///< bump offset within blocks_[cur_]
  std::size_t used_{0};
  std::size_t reserved_{0};
  std::size_t blockBytes_;
};

/// RAII mark/release over an arena: everything allocated inside the scope
/// is reclaimed (for reuse, not to the heap) when the scope ends.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& a) : arena_(a), mark_(a.mark()) {}
  ~ArenaScope() { arena_.release(mark_); }
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  Arena::Mark mark_;
};

/// The calling thread's scratch arena. The engine releases it around every
/// pipeline stage body and parallelFor index, so any code running under
/// the executor may allocate per-check scratch here without cleanup.
Arena& scratchArena();

/// Minimal STL allocator over an Arena. deallocate is a no-op: memory
/// comes back at release/reset. Suitable for scratch containers whose
/// lifetime is bracketed by an ArenaScope.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena& a) : arena_(&a) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& o) : arena_(o.arena()) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T*, std::size_t) noexcept {}

  Arena* arena() const { return arena_; }

  template <class U>
  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator<U>& b) {
    return a.arena_ == b.arena();
  }

 private:
  Arena* arena_;
};

/// Scratch vector living in an arena.
template <class T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace engine
}  // namespace dic
