#include "engine/executor.hpp"

#include <algorithm>

#include "engine/arena.hpp"
#include "obs/trace.hpp"
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dic {
namespace engine {

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to,
/// so nested submits land on the submitting worker's own deque.
struct WorkerIdentity {
  void* pool{nullptr};
  std::size_t id{0};
};
thread_local WorkerIdentity tlWorker;

/// Scope of the task the current thread is executing (kAnyScope when the
/// thread is not inside a pool task). Nested submits — a stage's inner
/// parallelFor chunks, dependent-stage dispatch from a finishing stage —
/// inherit it, so every piece of one pipeline run carries the run's tag.
thread_local Executor::ScopeId tlScope{Executor::kAnyScope};

/// RAII: set the executing-task scope for the duration of a task body.
struct ScopeFrame {
  Executor::ScopeId prev;
  explicit ScopeFrame(Executor::ScopeId s) : prev(tlScope) { tlScope = s; }
  ~ScopeFrame() { tlScope = prev; }
};

}  // namespace

Executor::ScopeId Executor::newScope() {
  static std::atomic<ScopeId> next{1};
  return next.fetch_add(1);
}

struct Executor::Pool {
  /// A queued task plus its help-scope tag and the submitter's trace
  /// context — whoever runs the task (worker or scoped helper) adopts
  /// the context so spans it emits parent under the submitter's span.
  struct Task {
    std::function<void()> fn;
    Executor::ScopeId scope{Executor::kAnyScope};
    obs::TraceContext trace;
    explicit operator bool() const { return static_cast<bool>(fn); }
  };

  /// One worker's deque. Owner pops LIFO from the back, thieves pop FIFO
  /// from the front. Mutex-guarded: tasks here are coarse (whole stages,
  /// loop chunks), so contention is negligible and lock-free Chase-Lev
  /// machinery would buy nothing.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> q;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> workers;
  std::mutex sleepMu;
  std::condition_variable cv;
  // Counted *before* a task becomes visible in a deque and decremented
  // *after* it is removed, so "queued > 0" can transiently overshoot but
  // never undershoot — sleepers can wake spuriously but never miss work.
  std::atomic<std::size_t> queued{0};
  // Bumped on every push (under sleepMu, before the notify). Scoped
  // helpers sleep on "the epoch changed" instead of "anything is queued":
  // queued foreign-scope tasks they cannot take would otherwise turn
  // their wait predicate permanently true and the helper into a spin.
  std::atomic<std::uint64_t> pushEpoch{0};
  std::atomic<std::size_t> rr{0};  ///< round-robin cursor, external submits
  std::atomic<bool> stop{false};

  explicit Pool(std::size_t nWorkers) {
    queues.reserve(nWorkers);
    for (std::size_t i = 0; i < nWorkers; ++i)
      queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(nWorkers);
    for (std::size_t i = 0; i < nWorkers; ++i)
      workers.emplace_back([this, i] { workerLoop(i); });
  }

  ~Pool() {
    stop.store(true);
    {
      std::lock_guard<std::mutex> lock(sleepMu);
      cv.notify_all();
    }
    for (std::thread& t : workers) t.join();
  }

  void push(Task task) {
    std::size_t target;
    if (tlWorker.pool == this) {
      target = tlWorker.id;  // nested submit: own deque, stolen if busy
    } else {
      target = rr.fetch_add(1) % queues.size();
    }
    queued.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(queues[target]->mu);
      queues[target]->q.push_back(std::move(task));
    }
    // notify_all, not notify_one: a single notify can be consumed by a
    // helper about to leave helpUntil, stranding the task until the next
    // push. Tasks are coarse (stages, loop chunks), so the cost is noise.
    std::lock_guard<std::mutex> lock(sleepMu);
    pushEpoch.fetch_add(1);
    cv.notify_all();
  }

  /// Pop from `qi`'s back (scope == kAnyScope) or the backmost task
  /// tagged `scope`. Workers pass kAnyScope (they run everything);
  /// scoped helpers scan — the deques are short and mutex-guarded, so a
  /// linear scan costs nothing at stage granularity.
  bool popBack(std::size_t qi, Task& out, Executor::ScopeId scope) {
    WorkerQueue& wq = *queues[qi];
    std::lock_guard<std::mutex> lock(wq.mu);
    if (scope == Executor::kAnyScope) {
      if (wq.q.empty()) return false;
      out = std::move(wq.q.back());
      wq.q.pop_back();
    } else {
      auto it = wq.q.rbegin();
      while (it != wq.q.rend() && it->scope != scope) ++it;
      if (it == wq.q.rend()) return false;
      out = std::move(*it);
      wq.q.erase(std::next(it).base());
    }
    queued.fetch_sub(1);
    return true;
  }

  /// Pop from `qi`'s front (scope == kAnyScope) or the frontmost task
  /// tagged `scope`.
  bool popFront(std::size_t qi, Task& out, Executor::ScopeId scope) {
    WorkerQueue& wq = *queues[qi];
    std::lock_guard<std::mutex> lock(wq.mu);
    if (scope == Executor::kAnyScope) {
      if (wq.q.empty()) return false;
      out = std::move(wq.q.front());
      wq.q.pop_front();
    } else {
      auto it = wq.q.begin();
      while (it != wq.q.end() && it->scope != scope) ++it;
      if (it == wq.q.end()) return false;
      out = std::move(*it);
      wq.q.erase(it);
    }
    queued.fetch_sub(1);
    return true;
  }

  /// Own deque first (LIFO), then steal round-robin (FIFO). `self` is
  /// the worker slot, or any value >= queues.size() for helpers that own
  /// no deque. scope != kAnyScope restricts acquisition to tasks with
  /// that tag.
  bool tryAcquire(std::size_t self, Task& out, Executor::ScopeId scope) {
    const std::size_t w = queues.size();
    if (self < w && popBack(self, out, scope)) return true;
    const std::size_t start = self < w ? self + 1 : rr.load() % w;
    for (std::size_t k = 0; k < w; ++k) {
      const std::size_t victim = (start + k) % w;
      if (victim == self) continue;
      if (popFront(victim, out, scope)) return true;
    }
    return false;
  }

  /// Run one acquired task with its scope installed in tlScope, so work
  /// the task spawns (nested submits, parallelFor chunks) inherits the
  /// tag.
  static void runTask(Task& task) {
    ScopeFrame frame(task.scope);
    obs::ContextGuard trace(task.trace);
    task.fn();
    task.fn = nullptr;
  }

  void workerLoop(std::size_t id) {
    tlWorker = {this, id};
    Task task;
    while (true) {
      if (tryAcquire(id, task, Executor::kAnyScope)) {
        runTask(task);
        continue;
      }
      std::unique_lock<std::mutex> lock(sleepMu);
      if (stop.load() && queued.load() == 0) return;
      cv.wait(lock,
              [this] { return stop.load() || queued.load() > 0; });
      if (stop.load() && queued.load() == 0) return;
    }
  }
};

Executor::Executor(int threads) {
  threads_ = threads <= 0 ? hardwareThreads() : threads;
  if (threads_ > 1)
    pool_ = std::make_unique<Pool>(static_cast<std::size_t>(threads_ - 1));
}

Executor::~Executor() = default;

int Executor::hardwareThreads() {
  static const int cached = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
  }();
  return cached;
}

void Executor::submit(std::function<void()> task) {
  submit(std::move(task), tlScope);
}

void Executor::submit(std::function<void()> task, ScopeId scope) {
  if (!pool_) {
    ScopeFrame frame(scope);
    task();
    return;
  }
  pool_->push({std::move(task), scope, obs::currentContext()});
}

void Executor::wake() {
  if (!pool_) return;
  std::lock_guard<std::mutex> lock(pool_->sleepMu);
  pool_->cv.notify_all();
}

void Executor::helpUntil(const std::function<bool()>& done) {
  helpUntil(done, kAnyScope);
}

void Executor::helpUntil(const std::function<bool()>& done, ScopeId scope) {
  if (!pool_) return;
  Pool& pool = *pool_;
  // Helpers own no deque: self == queues.size() makes tryAcquire
  // steal-only.
  const std::size_t self = pool.queues.size();
  Pool::Task task;
  while (!done()) {
    if (pool.tryAcquire(self, task, scope)) {
      Pool::runTask(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(pool.sleepMu);
    // done() and the work signal are re-checked under sleepMu, and
    // wake()/push notify under the same mutex, so a completion signalled
    // between the check and the wait is not lost. The bounded wait is a
    // second line of defense: done() can become true through paths that
    // notify nobody (e.g. a worker finishing the last queued task), and
    // 1ms of idle-poll latency is invisible at stage granularity.
    //
    // Unscoped helpers wake on "anything is queued". Scoped helpers wake
    // on "a push happened since my last failed scan": queued
    // foreign-scope tasks they cannot take must not keep the predicate
    // true, or the helper would spin instead of sleeping.
    const std::uint64_t seen = pool.pushEpoch.load();
    pool.cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      if (done() || pool.stop.load()) return true;
      return scope == kAnyScope ? pool.queued.load() > 0
                                : pool.pushEpoch.load() != seen;
    });
    if (pool.stop.load()) return;
  }
}

namespace {

/// Shared state of one parallelFor: participants claim indices from
/// `next`, bump `done` per claimed index (run or skipped after a
/// failure), and the last one notifies the waiting caller. Held by
/// shared_ptr so chunk tasks that run after the caller returned (they
/// find next >= n and exit without touching fn) stay safe.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::size_t n{0};
  const std::function<void(std::size_t)>* fn{nullptr};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;
};

}  // namespace

void Executor::parallelFor(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (!pool_ || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      ArenaScope scratch(scratchArena());
      fn(i);
    }
    return;
  }
  auto st = std::make_shared<ForState>();
  st->n = n;
  st->fn = &fn;
  auto body = [st] {
    for (std::size_t i; (i = st->next.fetch_add(1)) < st->n;) {
      if (!st->failed.load(std::memory_order_relaxed)) {
        try {
          // Per-index scratch lifetime on whichever thread claims the
          // index: a mark/release pair, no heap traffic.
          ArenaScope scratch(scratchArena());
          (*st->fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(st->mu);
          if (!st->error) st->error = std::current_exception();
          st->failed.store(true, std::memory_order_relaxed);
        }
      }
      if (st->done.fetch_add(1) + 1 == st->n) {
        // Lock pairs with the caller's predicate check so the final
        // notify cannot slip between its check and its sleep.
        std::lock_guard<std::mutex> lock(st->mu);
        st->cv.notify_all();
      }
    }
  };
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_) - 1, n - 1);
  // Chunks inherit the calling task's scope: a stage's inner fan-out
  // belongs to the stage's pipeline run, so that run's scoped helper may
  // pick the chunks up while a sibling run's helper may not.
  for (std::size_t h = 0; h < helpers; ++h)
    pool_->push({body, tlScope, obs::currentContext()});
  body();  // the caller claims indices too — the loop never needs the pool
  {
    // Deliberate policy: during the loop tail (indices all claimed, a
    // few still in flight on other workers) the caller sleeps instead of
    // stealing pool tasks. Stealing would keep the core busy, but a
    // stolen long task (a whole stage) would delay this loop's return by
    // its full duration and inflate the calling stage's measured
    // wall-clock with unrelated work — and the tail window is at most
    // one work item long.
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&] { return st->done.load() == st->n; });
  }
  // Serial contract: the first failure surfaces to the caller once the
  // loop has quiesced; remaining indices were abandoned.
  if (st->error) std::rethrow_exception(st->error);
}

}  // namespace engine
}  // namespace dic
