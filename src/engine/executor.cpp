#include "engine/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dic {
namespace engine {

namespace {

/// Identifies the pool (and worker slot) the current thread belongs to,
/// so nested submits land on the submitting worker's own deque.
struct WorkerIdentity {
  void* pool{nullptr};
  std::size_t id{0};
};
thread_local WorkerIdentity tlWorker;

}  // namespace

struct Executor::Pool {
  using Task = std::function<void()>;

  /// One worker's deque. Owner pops LIFO from the back, thieves pop FIFO
  /// from the front. Mutex-guarded: tasks here are coarse (whole stages,
  /// loop chunks), so contention is negligible and lock-free Chase-Lev
  /// machinery would buy nothing.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> q;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues;
  std::vector<std::thread> workers;
  std::mutex sleepMu;
  std::condition_variable cv;
  // Counted *before* a task becomes visible in a deque and decremented
  // *after* it is removed, so "queued > 0" can transiently overshoot but
  // never undershoot — sleepers can wake spuriously but never miss work.
  std::atomic<std::size_t> queued{0};
  std::atomic<std::size_t> rr{0};  ///< round-robin cursor, external submits
  std::atomic<bool> stop{false};

  explicit Pool(std::size_t nWorkers) {
    queues.reserve(nWorkers);
    for (std::size_t i = 0; i < nWorkers; ++i)
      queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(nWorkers);
    for (std::size_t i = 0; i < nWorkers; ++i)
      workers.emplace_back([this, i] { workerLoop(i); });
  }

  ~Pool() {
    stop.store(true);
    {
      std::lock_guard<std::mutex> lock(sleepMu);
      cv.notify_all();
    }
    for (std::thread& t : workers) t.join();
  }

  void push(Task task) {
    std::size_t target;
    if (tlWorker.pool == this) {
      target = tlWorker.id;  // nested submit: own deque, stolen if busy
    } else {
      target = rr.fetch_add(1) % queues.size();
    }
    queued.fetch_add(1);
    {
      std::lock_guard<std::mutex> lock(queues[target]->mu);
      queues[target]->q.push_back(std::move(task));
    }
    // notify_all, not notify_one: a single notify can be consumed by a
    // helper about to leave helpUntil, stranding the task until the next
    // push. Tasks are coarse (stages, loop chunks), so the cost is noise.
    std::lock_guard<std::mutex> lock(sleepMu);
    cv.notify_all();
  }

  bool popBack(std::size_t qi, Task& out) {
    WorkerQueue& wq = *queues[qi];
    std::lock_guard<std::mutex> lock(wq.mu);
    if (wq.q.empty()) return false;
    out = std::move(wq.q.back());
    wq.q.pop_back();
    queued.fetch_sub(1);
    return true;
  }

  bool popFront(std::size_t qi, Task& out) {
    WorkerQueue& wq = *queues[qi];
    std::lock_guard<std::mutex> lock(wq.mu);
    if (wq.q.empty()) return false;
    out = std::move(wq.q.front());
    wq.q.pop_front();
    queued.fetch_sub(1);
    return true;
  }

  /// Own deque first (LIFO), then steal round-robin (FIFO). `self` is
  /// the worker slot, or any value >= queues.size() for helpers that own
  /// no deque.
  bool tryAcquire(std::size_t self, Task& out) {
    const std::size_t w = queues.size();
    if (self < w && popBack(self, out)) return true;
    const std::size_t start = self < w ? self + 1 : rr.load() % w;
    for (std::size_t k = 0; k < w; ++k) {
      const std::size_t victim = (start + k) % w;
      if (victim == self) continue;
      if (popFront(victim, out)) return true;
    }
    return false;
  }

  void workerLoop(std::size_t id) {
    tlWorker = {this, id};
    Task task;
    while (true) {
      if (tryAcquire(id, task)) {
        task();
        task = nullptr;
        continue;
      }
      std::unique_lock<std::mutex> lock(sleepMu);
      if (stop.load() && queued.load() == 0) return;
      cv.wait(lock,
              [this] { return stop.load() || queued.load() > 0; });
      if (stop.load() && queued.load() == 0) return;
    }
  }
};

Executor::Executor(int threads) {
  threads_ = threads <= 0 ? hardwareThreads() : threads;
  if (threads_ > 1)
    pool_ = std::make_unique<Pool>(static_cast<std::size_t>(threads_ - 1));
}

Executor::~Executor() = default;

int Executor::hardwareThreads() {
  static const int cached = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
  }();
  return cached;
}

void Executor::submit(std::function<void()> task) {
  if (!pool_) {
    task();
    return;
  }
  pool_->push(std::move(task));
}

void Executor::wake() {
  if (!pool_) return;
  std::lock_guard<std::mutex> lock(pool_->sleepMu);
  pool_->cv.notify_all();
}

void Executor::helpUntil(const std::function<bool()>& done) {
  if (!pool_) return;
  Pool& pool = *pool_;
  // Helpers own no deque: self == queues.size() makes tryAcquire
  // steal-only.
  const std::size_t self = pool.queues.size();
  Pool::Task task;
  while (!done()) {
    if (pool.tryAcquire(self, task)) {
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(pool.sleepMu);
    // done() and queued are re-checked under sleepMu, and wake()/push
    // notify under the same mutex, so a completion signalled between the
    // check and the wait is not lost. The bounded wait is a second line
    // of defense: done() can become true through paths that notify
    // nobody (e.g. a worker finishing the last queued task), and 1ms of
    // idle-poll latency is invisible at stage granularity.
    pool.cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return done() || pool.stop.load() || pool.queued.load() > 0;
    });
    if (pool.stop.load()) return;
  }
}

namespace {

/// Shared state of one parallelFor: participants claim indices from
/// `next`, bump `done` per claimed index (run or skipped after a
/// failure), and the last one notifies the waiting caller. Held by
/// shared_ptr so chunk tasks that run after the caller returned (they
/// find next >= n and exit without touching fn) stay safe.
struct ForState {
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::size_t n{0};
  const std::function<void(std::size_t)>* fn{nullptr};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;
};

}  // namespace

void Executor::parallelFor(std::size_t n,
                           const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (!pool_ || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto st = std::make_shared<ForState>();
  st->n = n;
  st->fn = &fn;
  auto body = [st] {
    for (std::size_t i; (i = st->next.fetch_add(1)) < st->n;) {
      if (!st->failed.load(std::memory_order_relaxed)) {
        try {
          (*st->fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(st->mu);
          if (!st->error) st->error = std::current_exception();
          st->failed.store(true, std::memory_order_relaxed);
        }
      }
      if (st->done.fetch_add(1) + 1 == st->n) {
        // Lock pairs with the caller's predicate check so the final
        // notify cannot slip between its check and its sleep.
        std::lock_guard<std::mutex> lock(st->mu);
        st->cv.notify_all();
      }
    }
  };
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_) - 1, n - 1);
  for (std::size_t h = 0; h < helpers; ++h) pool_->push(body);
  body();  // the caller claims indices too — the loop never needs the pool
  {
    // Deliberate policy: during the loop tail (indices all claimed, a
    // few still in flight on other workers) the caller sleeps instead of
    // stealing pool tasks. Stealing would keep the core busy, but a
    // stolen long task (a whole stage) would delay this loop's return by
    // its full duration and inflate the calling stage's measured
    // wall-clock with unrelated work — and the tail window is at most
    // one work item long.
    std::unique_lock<std::mutex> lock(st->mu);
    st->cv.wait(lock, [&] { return st->done.load() == st->n; });
  }
  // Serial contract: the first failure surfaces to the caller once the
  // loop has quiesced; remaining indices were abandoned.
  if (st->error) std::rethrow_exception(st->error);
}

}  // namespace engine
}  // namespace dic
