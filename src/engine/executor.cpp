#include "engine/executor.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace dic::engine {

Executor::Executor(int threads) {
  if (threads <= 0) {
    const unsigned hc = std::thread::hardware_concurrency();
    threads_ = hc > 0 ? static_cast<int>(hc) : 1;
  } else {
    threads_ = threads;
  }
}

void Executor::parallelFor(std::size_t n,
                           const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(threads_), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex errorMu;
  auto work = [&] {
    for (std::size_t i; (i = next.fetch_add(1)) < n;) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(errorMu);
        if (!error) error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 0; w + 1 < workers; ++w) pool.emplace_back(work);
  work();
  for (std::thread& t : pool) t.join();
  // Preserve the serial contract: a throwing task surfaces to the caller
  // (the first failure wins; remaining work is abandoned).
  if (error) std::rethrow_exception(error);
}

}  // namespace dic::engine
