#include "engine/arena.hpp"

#include <algorithm>

namespace dic {
namespace engine {

namespace {

/// Process-wide reserved-byte counter; arenas add on block growth and
/// subtract on destruction (thread exit for the scratch arenas).
std::atomic<std::size_t>& globalReserved() {
  static std::atomic<std::size_t> bytes{0};
  return bytes;
}

}  // namespace

Arena::~Arena() {
  globalReserved().fetch_sub(reserved_, std::memory_order_relaxed);
}

std::size_t Arena::totalReservedBytes() {
  return globalReserved().load(std::memory_order_relaxed);
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  if (cur_ < blocks_.size()) {
    Block& b = blocks_[cur_];
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t at = (base + offset_ + (align - 1)) & ~(align - 1);
    const std::size_t off = static_cast<std::size_t>(at - base);
    if (off + bytes <= b.size) {
      used_ += off + bytes - offset_;
      offset_ = off + bytes;
      return reinterpret_cast<void*>(at);
    }
  }
  return allocateSlow(bytes, align);
}

void* Arena::allocateSlow(std::size_t bytes, std::size_t align) {
  // Walk to the next block that fits; reserve a new one when none does.
  // Fragmentation left at the end of the abandoned block counts as used.
  for (;;) {
    if (cur_ < blocks_.size()) {
      used_ += blocks_[cur_].size - std::min(offset_, blocks_[cur_].size);
      ++cur_;
      offset_ = 0;
    }
    if (cur_ == blocks_.size()) {
      const std::size_t want = std::max(blockBytes_, bytes + align);
      blocks_.push_back({std::make_unique<std::byte[]>(want), want});
      reserved_ += want;
      globalReserved().fetch_add(want, std::memory_order_relaxed);
    }
    Block& b = blocks_[cur_];
    const std::uintptr_t base = reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::uintptr_t at = (base + offset_ + (align - 1)) & ~(align - 1);
    const std::size_t off = static_cast<std::size_t>(at - base);
    if (off + bytes <= b.size) {
      used_ += off + bytes - offset_;
      offset_ = off + bytes;
      return reinterpret_cast<void*>(at);
    }
  }
}

Arena& scratchArena() {
  static thread_local Arena arena;
  return arena;
}

}  // namespace engine
}  // namespace dic
