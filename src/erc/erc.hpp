#pragma once
/// \file erc.hpp
/// Non-geometric construction rules (the paper's fourth rule category):
///   1. a net must have at least two "devices" on it;
///   2. power and ground must not be shorted;
///   3. a "bus" may not connect to power or ground;
///   4. a depletion device may not connect to ground.
///
/// "Net list generation and non-geometric design verification have a lot
/// in common with DRC and should appropriately be handled by a single
/// program." -- these checks run on the netlist the DIC pipeline already
/// extracted.

#include <memory>
#include <string>
#include <vector>

#include "engine/pipeline.hpp"
#include "netlist/netlist.hpp"
#include "report/violation.hpp"
#include "tech/technology.hpp"

namespace dic::erc {

struct Options {
  bool checkDanglingNets{true};
  bool checkPowerGroundShort{true};
  bool checkBusRules{true};
  bool checkDepletionToGround{true};
};

/// Run all enabled electrical construction rules.
report::Report check(const netlist::Netlist& nl, const tech::Technology& tech,
                     const Options& opts = {});

/// The ERC walk as a first-class pipeline stage (the decomposed runBatch
/// registers it with an edge to the request's netlist-extract stage).
/// `netlist` is a caller-owned slot an upstream stage fills before this
/// one runs — the stage reads it at run time, not at declaration time.
/// The body writes the report into *out and returns an empty report; the
/// caller merges per-request slots itself.
engine::Stage stage(std::string name, std::vector<std::string> deps,
                    const std::shared_ptr<const netlist::Netlist>* netlist,
                    const tech::Technology& tech, Options opts,
                    report::Report* out);

}  // namespace dic::erc
