#pragma once
/// \file erc.hpp
/// Non-geometric construction rules (the paper's fourth rule category):
///   1. a net must have at least two "devices" on it;
///   2. power and ground must not be shorted;
///   3. a "bus" may not connect to power or ground;
///   4. a depletion device may not connect to ground.
///
/// "Net list generation and non-geometric design verification have a lot
/// in common with DRC and should appropriately be handled by a single
/// program." -- these checks run on the netlist the DIC pipeline already
/// extracted.

#include "netlist/netlist.hpp"
#include "report/violation.hpp"
#include "tech/technology.hpp"

namespace dic::erc {

struct Options {
  bool checkDanglingNets{true};
  bool checkPowerGroundShort{true};
  bool checkBusRules{true};
  bool checkDepletionToGround{true};
};

/// Run all enabled electrical construction rules.
report::Report check(const netlist::Netlist& nl, const tech::Technology& tech,
                     const Options& opts = {});

}  // namespace dic::erc
