#include "erc/erc.hpp"

#include <stdexcept>

namespace dic::erc {

namespace {

report::Violation electrical(std::string rule, std::string message,
                             const geom::Rect& where = {}) {
  report::Violation v;
  v.category = report::Category::kElectrical;
  v.severity = report::Severity::kError;
  v.rule = std::move(rule);
  v.message = std::move(message);
  v.where = where;
  return v;
}

bool isPowerOrGround(const netlist::Net& n, const tech::Technology& tech) {
  return n.hasName(tech.powerNet) || n.hasName(tech.groundNet);
}

bool isBusNet(const netlist::Net& n, const tech::Technology& tech) {
  for (const std::string& name : n.names) {
    // A label is a bus label if its last path component starts with the
    // bus prefix.
    const std::size_t dot = name.rfind('.');
    const std::string leaf = dot == std::string::npos
                                 ? name
                                 : name.substr(dot + 1);
    if (leaf.rfind(tech.busPrefix, 0) == 0) return true;
  }
  return false;
}

}  // namespace

report::Report check(const netlist::Netlist& nl, const tech::Technology& tech,
                     const Options& opts) {
  report::Report rep;

  if (opts.checkPowerGroundShort) {
    for (const netlist::Net& n : nl.nets) {
      if (n.hasName(tech.powerNet) && n.hasName(tech.groundNet)) {
        rep.add(electrical("ERC.PGSHORT",
                           "power (" + tech.powerNet + ") and ground (" +
                               tech.groundNet + ") are shorted"));
      }
    }
  }

  if (opts.checkDanglingNets) {
    for (const netlist::Net& n : nl.nets) {
      // Power/ground nets legitimately fan out to everything; the rule
      // targets signal nets ("a net must have at least two devices").
      if (isPowerOrGround(n, tech)) continue;
      if (n.terminals.size() < 2) {
        rep.add(electrical(
            "ERC.DANGLING",
            "net " + n.displayName() + " has " +
                std::to_string(n.terminals.size()) +
                " device terminal(s); a net must have at least two",
            n.bbox));
      }
    }
  }

  if (opts.checkBusRules) {
    for (const netlist::Net& n : nl.nets) {
      if (isBusNet(n, tech) && isPowerOrGround(n, tech)) {
        rep.add(electrical("ERC.BUS_PG", "bus net " + n.displayName() +
                                             " connects to power or ground"));
      }
    }
  }

  if (opts.checkDepletionToGround) {
    for (const netlist::ExtractedDevice& d : nl.devices) {
      if (d.cls != tech::DeviceClass::kDepletionFet) continue;
      for (const auto& [port, net] : d.portNets) {
        if (net < 0 || net >= static_cast<int>(nl.nets.size())) continue;
        if (nl.nets[net].hasName(tech.groundNet)) {
          rep.add(electrical(
              "ERC.DEPL_GND",
              "depletion device " + d.path + " terminal " + port +
                  " connects to ground",
              d.bbox));
        }
      }
    }
  }

  return rep;
}

engine::Stage stage(std::string name, std::vector<std::string> deps,
                    const std::shared_ptr<const netlist::Netlist>* netlist,
                    const tech::Technology& tech, Options opts,
                    report::Report* out) {
  return {std::move(name), std::move(deps),
          [netlist, &tech, opts, out](engine::Executor&) {
            if (!*netlist)
              throw std::logic_error(
                  "erc stage ran before its netlist slot was filled");
            *out = check(**netlist, tech, opts);
            return report::Report{};
          },
          /*cost=*/1.0};
}

}  // namespace dic::erc
