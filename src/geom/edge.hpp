#pragma once
/// \file edge.hpp
/// Boundary edges of a Manhattan region, annotated with the side on which
/// the region interior lies. Edge-based checking is the paper's preferred
/// alternative to figure-based checking (see "Geometrical" pathologies,
/// Fig. 2): it operates on the true region boundary, not on input figures.

#include <cstdint>
#include <vector>

#include "geom/rect.hpp"

namespace dic::geom {

/// Which side of the edge the region interior is on.
enum class InteriorSide : std::uint8_t {
  kLeft,   ///< vertical edge, interior at x < edge.x
  kRight,  ///< vertical edge, interior at x > edge.x
  kBelow,  ///< horizontal edge, interior at y < edge.y
  kAbove,  ///< horizontal edge, interior at y > edge.y
};

/// An axis-aligned boundary edge. Vertical edges store x in `pos` and
/// [lo,hi) in y; horizontal edges store y in `pos` and [lo,hi) in x.
struct Edge {
  Coord pos{0};
  Coord lo{0};
  Coord hi{0};
  InteriorSide interior{InteriorSide::kLeft};

  friend constexpr bool operator==(const Edge&, const Edge&) = default;

  constexpr bool vertical() const {
    return interior == InteriorSide::kLeft ||
           interior == InteriorSide::kRight;
  }
  constexpr Coord length() const { return hi - lo; }

  /// The edge as a degenerate rect (for distance computations).
  constexpr Rect asRect() const {
    return vertical() ? Rect{{pos, lo}, {pos, hi}}
                      : Rect{{lo, pos}, {hi, pos}};
  }
};

}  // namespace dic::geom
