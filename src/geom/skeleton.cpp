#include "geom/skeleton.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace dic::geom {

Rect Skeleton::bbox() const {
  if (parts.empty()) return {{0, 0}, {-1, -1}};  // closed-invalid
  Rect b = parts[0];
  for (const Rect& r : parts) {
    b.lo.x = std::min(b.lo.x, r.lo.x);
    b.lo.y = std::min(b.lo.y, r.lo.y);
    b.hi.x = std::max(b.hi.x, r.hi.x);
    b.hi.y = std::max(b.hi.y, r.hi.y);
  }
  return b;
}

Skeleton boxSkeleton(const Rect& box, Coord minWidth) {
  Skeleton s;
  if (box.empty()) return s;
  // 2x space: half-min-width is exactly minWidth.
  const Coord w2 = 2 * box.width();
  const Coord h2 = 2 * box.height();
  const Coord mx = std::min(minWidth, w2 / 2);
  const Coord my = std::min(minWidth, h2 / 2);
  s.thin = (w2 <= 2 * minWidth) || (h2 <= 2 * minWidth);
  s.parts.push_back({{2 * box.lo.x + mx, 2 * box.lo.y + my},
                     {2 * box.hi.x - mx, 2 * box.hi.y - my}});
  return s;
}

Skeleton wireSkeleton(const std::vector<Point>& points, Coord width,
                      Coord minWidth) {
  Skeleton s;
  if (points.empty() || width <= 0) return s;
  // Residual half-width in 2x space after shrinking by minWidth/2.
  const Coord r2 = std::max<Coord>(0, width - minWidth);
  s.thin = width <= minWidth;
  if (points.size() == 1) {
    const Point p = points[0];
    s.parts.push_back({{2 * p.x - r2, 2 * p.y - r2},
                       {2 * p.x + r2, 2 * p.y + r2}});
    return s;
  }
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    const Point a = points[i];
    const Point b = points[i + 1];
    assert((a.x == b.x || a.y == b.y) && "wires must be Manhattan");
    Rect seg = makeRect(Point{2 * a.x, 2 * a.y}, Point{2 * b.x, 2 * b.y});
    // Square caps: the wire region extends width/2 beyond segment ends and
    // the skeleton correspondingly r2/2... in 2x space exactly r2.
    s.parts.push_back(seg.inflated(r2));
  }
  return s;
}

Skeleton regionSkeleton(const Region& r, Coord minWidth) {
  Skeleton s;
  if (r.empty()) return s;
  const Region r2 = r.scaled(2);
  Region eroded = r2.shrunk(minWidth);  // half-open result in 2x space
  if (eroded.empty()) {
    // Minimum-width (degenerate skeleton) case: relax by one 2x unit and
    // flag. Over-connects by at most half a database unit.
    eroded = r2.shrunk(minWidth - 1);
    s.thin = true;
    if (eroded.empty()) return s;
  }
  // The true closed erosion is the closure of the half-open result (see
  // region.cpp): closed-ify [lo,hi) -> [lo,hi].
  for (const Rect& q : eroded.rects()) s.parts.push_back(q);
  return s;
}

bool skeletonsConnected(const Skeleton& a, const Skeleton& b) {
  if (a.empty() || b.empty()) return false;
  if (!closedTouch(a.bbox(), b.bbox())) return false;
  for (const Rect& ra : a.parts)
    for (const Rect& rb : b.parts)
      if (closedTouch(ra, rb)) return true;
  return false;
}

double skeletonDistance(const Skeleton& a, const Skeleton& b) {
  if (a.empty() || b.empty()) return std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  for (const Rect& ra : a.parts)
    for (const Rect& rb : b.parts)
      best = std::min(best, rectDistance(ra, rb, Metric::kEuclidean));
  return best / 2.0;  // back to database units
}

}  // namespace dic::geom
