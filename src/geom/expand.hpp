#pragma once
/// \file expand.hpp
/// Euclidean (disc) vs Orthogonal (square) expand and shrink -- Fig. 3 of
/// the paper -- plus the corner-defect analysis of the Euclidean
/// shrink-expand-compare width check (Fig. 4 left).
///
/// Orthogonal morphology on Manhattan regions is exact (see Region).
/// Euclidean dilation of a Manhattan region is not Manhattan (corners
/// become arcs), so it is returned as a sampled Polygon for single convex
/// inputs, and characterized analytically where DRC needs it:
///   * Euclidean *erosion* of a Manhattan region equals orthogonal erosion
///     wherever the boundary is locally straight or convex; at reflex
///     (concave) corners the disc cuts an arc. For the width-check
///     pathology analysis only convex corners matter.
///   * The *opening* (erode then dilate, the shrink-expand width check)
///     with a disc removes a corner defect at every convex corner: the
///     region between the square corner and the inscribed radius-d arc.
///     openingCornerDefects() enumerates those defect rects -- exactly the
///     per-corner false errors of Fig. 4.

#include <vector>

#include "geom/polygon.hpp"
#include "geom/region.hpp"

namespace dic::geom {

/// A convex corner of a Manhattan region boundary.
struct Corner {
  Point at;        ///< corner vertex
  Point inward;    ///< unit diagonal pointing into the region, e.g. (1,1)
  bool convex;     ///< true: interior occupies one quadrant; false: three
};

/// All corners of the region boundary, classified convex/reflex.
std::vector<Corner> regionCorners(const Region& r);

/// Euclidean dilation of a convex Manhattan polygon (or rect) by d,
/// sampled with `arcSegments` segments per 90-degree arc.
Polygon euclideanExpand(const Rect& r, Coord d, int arcSegments = 8);
Polygon euclideanExpand(const Polygon& p, Coord d, int arcSegments = 8);

/// Area of the Euclidean dilation of an arbitrary Manhattan region by d
/// (exact up to the circular-arc area): area + perimeter*d + k*pi*d^2/4
/// contributions per corner sign.
double euclideanExpandArea(const Region& r, Coord d);

/// Defect rects of the disc opening (Euclidean shrink d then expand d):
/// one per convex corner, the dxd square at the corner whose outer part
/// the disc cannot reach. These are the false width errors the paper's
/// Fig. 4 (left) predicts "at every corner".
std::vector<Rect> openingCornerDefects(const Region& r, Coord d);

}  // namespace dic::geom
