#include "geom/spacing.hpp"

#include <algorithm>
#include <cmath>

namespace dic::geom {

namespace {

/// Thread-confined reusable gap buffers for the SoA prefilter passes.
struct GapScratch {
  std::vector<Coord> gx, gy;
  std::vector<std::uint8_t> mask;
  void ensure(std::size_t n) {
    if (gx.size() < n) {
      gx.resize(n);
      gy.resize(n);
      mask.resize(n);
    }
  }
};

GapScratch& gapScratch() {
  static thread_local GapScratch s;
  return s;
}

/// Branchless closed-interval gap: identical to axisGap (at most one of
/// the two differences is positive), written as max-of-three so the SoA
/// loops below autovectorize.
inline Coord gapOf(Coord alo, Coord ahi, Coord blo, Coord bhi) {
  const Coord g1 = blo - ahi;
  const Coord g2 = alo - bhi;
  Coord g = g1 > g2 ? g1 : g2;
  return g > 0 ? g : 0;
}

/// Fill gx/gy with the per-axis gaps between rect a and every rect of the
/// SoA view. Pure integer compares and selects: the loop vectorizes.
void fillGaps(const Rect& a, const Region::SoA& s, Coord* gx, Coord* gy) {
  const Coord ax1 = a.lo.x, ax2 = a.hi.x, ay1 = a.lo.y, ay2 = a.hi.y;
  const Coord* bxlo = s.xlo.data();
  const Coord* bylo = s.ylo.data();
  const Coord* bxhi = s.xhi.data();
  const Coord* byhi = s.yhi.data();
  const std::size_t n = s.size();
#pragma GCC ivdep
  for (std::size_t j = 0; j < n; ++j) {
    gx[j] = gapOf(ax1, ax2, bxlo[j], bxhi[j]);
    gy[j] = gapOf(ay1, ay2, bylo[j], byhi[j]);
  }
}

}  // namespace

/// Below this many rects in the SoA operand the vector path cannot win:
/// materializing the SoA view costs four heap allocations, which never
/// amortize on the tiny transient regions (1-4 rects per element) the
/// checkers stream through. The scalar oracle IS the semantics, so
/// falling back preserves byte-identity by construction.
constexpr std::size_t kSoAMinRects = 32;

std::vector<SpacingViolation> checkSpacing(const Region& a, const Region& b,
                                           Coord minSpacing, Metric m) {
  std::vector<SpacingViolation> out;
  if (a.empty() || b.empty()) return out;
  if (b.rects().size() < kSoAMinRects)
    return checkSpacingScalar(a, b, minSpacing, m);
  const Rect bb = b.bbox().inflated(minSpacing);
  const Region::SoA& sb = b.soa();
  const std::size_t nb = sb.size();
  GapScratch& s = gapScratch();
  s.ensure(nb);
  std::uint8_t* mask = s.mask.data();
  const std::vector<Rect>& brects = b.rects();
  const Coord* bxlo = sb.xlo.data();
  const Coord* bylo = sb.ylo.data();
  const Coord* bxhi = sb.xhi.data();
  const Coord* byhi = sb.yhi.data();
  for (const Rect& ra : a.rects()) {
    if (!overlaps(ra.inflated(minSpacing), bb)) continue;
    // Prefilter pass: exactly the scalar skip condition, branchless so
    // it vectorizes. Only the 1-byte verdict is stored -- the survivors
    // are rare, so their gaps are recomputed exactly in the tail rather
    // than streamed through 16 bytes of per-candidate scratch.
    const Coord ax1 = ra.lo.x, ax2 = ra.hi.x, ay1 = ra.lo.y, ay2 = ra.hi.y;
#pragma GCC ivdep
    for (std::size_t j = 0; j < nb; ++j) {
      const Coord x = gapOf(ax1, ax2, bxlo[j], bxhi[j]);
      const Coord y = gapOf(ay1, ay2, bylo[j], byhi[j]);
      mask[j] = static_cast<std::uint8_t>((x < minSpacing) & (y < minSpacing));
    }
    // Exact tail in original pair order, with the scalar path's own gap
    // computation -> byte-identical output.
    for (std::size_t j = 0; j < nb; ++j) {
      if (!mask[j]) continue;
      const Point g = rectGap(ra, brects[j]);
      const double d = m == Metric::kEuclidean
                           ? std::hypot(static_cast<double>(g.x),
                                        static_cast<double>(g.y))
                           : static_cast<double>(chebyshev(g));
      if (d < static_cast<double>(minSpacing)) out.push_back({ra, brects[j], d});
    }
  }
  return out;
}

std::vector<SpacingViolation> checkSpacingScalar(const Region& a,
                                                 const Region& b,
                                                 Coord minSpacing, Metric m) {
  std::vector<SpacingViolation> out;
  if (a.empty() || b.empty()) return out;
  const Rect bb = b.bbox().inflated(minSpacing);
  for (const Rect& ra : a.rects()) {
    if (!overlaps(ra.inflated(minSpacing), bb)) continue;
    for (const Rect& rb : b.rects()) {
      const Point g = rectGap(ra, rb);
      if (g.x >= minSpacing || g.y >= minSpacing) continue;  // both metrics
      const double d = m == Metric::kEuclidean
                           ? std::hypot(static_cast<double>(g.x),
                                        static_cast<double>(g.y))
                           : static_cast<double>(chebyshev(g));
      if (d < static_cast<double>(minSpacing)) out.push_back({ra, rb, d});
    }
  }
  return out;
}

std::optional<double> distanceBelow(const Region& a, const Region& b,
                                    Coord bound, Metric m) {
  if (a.empty() || b.empty()) return std::nullopt;
  if (b.rects().size() < kSoAMinRects)
    return distanceBelowScalar(a, b, bound, m);
  const Region::SoA& sb = b.soa();
  const std::size_t nb = sb.size();
  GapScratch& s = gapScratch();
  s.ensure(nb);
  Coord* gx = s.gx.data();
  Coord* gy = s.gy.data();

  if (m == Metric::kOrthogonal) {
    // Chebyshev distance is the integer gap maximum: a pure integer min
    // reduction over all pairs. min is order-independent, so this equals
    // the scalar fold exactly.
    Coord best = bound;
    for (const Rect& ra : a.rects()) {
      fillGaps(ra, sb, gx, gy);
      Coord rowMin = best;
#pragma GCC ivdep
      for (std::size_t j = 0; j < nb; ++j) {
        const Coord c = gx[j] > gy[j] ? gx[j] : gy[j];
        rowMin = c < rowMin ? c : rowMin;
      }
      best = rowMin;
      if (best == 0 && bound > 0) return 0.0;  // touching pair, below bound
    }
    return best < bound ? std::optional<double>(static_cast<double>(best))
                        : std::nullopt;
  }

  // Euclidean: Chebyshev <= Euclidean, so `max(gx,gy) >= bound` proves the
  // pair is irrelevant -- the surviving pairs get the exact hypot, and the
  // running min over them is the same value the scalar loop folds to.
  double best = static_cast<double>(bound);
  bool found = false;
  for (const Rect& ra : a.rects()) {
    fillGaps(ra, sb, gx, gy);
    for (std::size_t j = 0; j < nb; ++j) {
      const Coord cheb = gx[j] > gy[j] ? gx[j] : gy[j];
      if (cheb >= bound) continue;
      const double d = std::hypot(static_cast<double>(gx[j]),
                                  static_cast<double>(gy[j]));
      if (d < best) {
        best = d;
        found = true;
        if (best == 0) return 0.0;
      }
    }
  }
  return found ? std::optional<double>(best) : std::nullopt;
}

std::optional<double> distanceBelowScalar(const Region& a, const Region& b,
                                          Coord bound, Metric m) {
  double best = static_cast<double>(bound);
  bool found = false;
  for (const Rect& ra : a.rects()) {
    for (const Rect& rb : b.rects()) {
      const double d = rectDistance(ra, rb, m);
      if (d < best) {
        best = d;
        found = true;
        if (best == 0) return 0.0;
      }
    }
  }
  return found ? std::optional<double>(best) : std::nullopt;
}

}  // namespace dic::geom
