#include "geom/spacing.hpp"

#include <algorithm>

namespace dic::geom {

std::vector<SpacingViolation> checkSpacing(const Region& a, const Region& b,
                                           Coord minSpacing, Metric m) {
  std::vector<SpacingViolation> out;
  if (a.empty() || b.empty()) return out;
  const Rect bb = b.bbox().inflated(minSpacing);
  for (const Rect& ra : a.rects()) {
    if (!overlaps(ra.inflated(minSpacing), bb)) continue;
    for (const Rect& rb : b.rects()) {
      const Point g = rectGap(ra, rb);
      if (g.x >= minSpacing || g.y >= minSpacing) continue;  // both metrics
      const double d = m == Metric::kEuclidean
                           ? std::hypot(static_cast<double>(g.x),
                                        static_cast<double>(g.y))
                           : static_cast<double>(chebyshev(g));
      if (d < static_cast<double>(minSpacing)) out.push_back({ra, rb, d});
    }
  }
  return out;
}

std::optional<double> distanceBelow(const Region& a, const Region& b,
                                    Coord bound, Metric m) {
  double best = static_cast<double>(bound);
  bool found = false;
  for (const Rect& ra : a.rects()) {
    for (const Rect& rb : b.rects()) {
      const double d = rectDistance(ra, rb, m);
      if (d < best) {
        best = d;
        found = true;
        if (best == 0) return 0.0;
      }
    }
  }
  return found ? std::optional<double>(best) : std::nullopt;
}

}  // namespace dic::geom
