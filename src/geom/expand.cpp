#include "geom/expand.hpp"

#include <cmath>
#include <numbers>

namespace dic::geom {

std::vector<Corner> regionCorners(const Region& r) {
  // A corner exists wherever a vertical and a horizontal boundary edge
  // share an endpoint. Convexity: interior occupies exactly one quadrant.
  std::vector<Corner> out;
  const std::vector<Edge>& es = r.edges();
  std::vector<std::pair<Point, const Edge*>> vEnds, hEnds;
  for (const Edge& e : es) {
    if (e.vertical()) {
      vEnds.push_back({{e.pos, e.lo}, &e});
      vEnds.push_back({{e.pos, e.hi}, &e});
    } else {
      hEnds.push_back({{e.lo, e.pos}, &e});
      hEnds.push_back({{e.hi, e.pos}, &e});
    }
  }
  for (const auto& [vp, ve] : vEnds) {
    for (const auto& [hp, he] : hEnds) {
      if (vp != hp) continue;
      // Interior x side from the vertical edge, y side from horizontal.
      const int ix = ve->interior == InteriorSide::kRight ? 1 : -1;
      const int iy = he->interior == InteriorSide::kAbove ? 1 : -1;
      // Convex if the corner is at the "outer" end of both edges: the
      // interior quadrant is (ix, iy) and the edges extend away from it.
      const bool vOuter = (iy > 0) ? (vp.y == ve->lo) : (vp.y == ve->hi);
      const bool hOuter = (ix > 0) ? (hp.x == he->lo) : (hp.x == he->hi);
      out.push_back({vp, {ix, iy}, vOuter && hOuter});
    }
  }
  return out;
}

namespace {

/// Append a circular arc around c from angle a0 to a1 (radians, CCW).
void appendArc(std::vector<Point>& v, Point c, Coord radius, double a0,
               double a1, int segments) {
  for (int i = 0; i <= segments; ++i) {
    const double a = a0 + (a1 - a0) * i / segments;
    v.push_back({c.x + static_cast<Coord>(std::llround(radius * std::cos(a))),
                 c.y + static_cast<Coord>(std::llround(radius * std::sin(a)))});
  }
}

}  // namespace

Polygon euclideanExpand(const Rect& r, Coord d, int arcSegments) {
  using std::numbers::pi;
  std::vector<Point> v;
  appendArc(v, {r.hi.x, r.hi.y}, d, 0, pi / 2, arcSegments);
  appendArc(v, {r.lo.x, r.hi.y}, d, pi / 2, pi, arcSegments);
  appendArc(v, {r.lo.x, r.lo.y}, d, pi, 3 * pi / 2, arcSegments);
  appendArc(v, {r.hi.x, r.lo.y}, d, 3 * pi / 2, 2 * pi, arcSegments);
  return Polygon(std::move(v));
}

Polygon euclideanExpand(const Polygon& p, Coord d, int arcSegments) {
  using std::numbers::pi;
  if (p.empty()) return {};
  // Offset each edge outward (CCW polygon: outward normal is right of the
  // direction of travel rotated -90) and join with arcs at convex corners.
  const auto& v = p.vertices();
  const std::size_t n = v.size();
  std::vector<Point> out;
  for (std::size_t i = 0; i < n; ++i) {
    const Point a = v[i];
    const Point b = v[(i + 1) % n];
    const Point dir = b - a;
    const double len = length(dir);
    if (len == 0) continue;
    const double nx = static_cast<double>(dir.y) / len;
    const double ny = -static_cast<double>(dir.x) / len;
    const Point off{static_cast<Coord>(std::llround(nx * d)),
                    static_cast<Coord>(std::llround(ny * d))};
    // Arc from previous edge's offset around vertex a.
    const Point prev = v[(i + n - 1) % n];
    const Point pdir = a - prev;
    const double plen = length(pdir);
    if (plen > 0 && cross(pdir, dir) > 0) {  // convex vertex (CCW turn left)
      const double a0 = std::atan2(-static_cast<double>(pdir.x) / plen,
                                   static_cast<double>(pdir.y) / plen);
      // normals: n_prev = (pdir.y, -pdir.x)/plen -> angle atan2(-pdir.x, pdir.y)
      const double a1 = std::atan2(ny, nx);
      // For CCW polygons convex corners sweep CCW from n_prev to n_cur.
      double sweep = a1 - a0;
      while (sweep < 0) sweep += 2 * pi;
      const int segs = std::max(1, static_cast<int>(arcSegments * sweep /
                                                    (pi / 2)));
      appendArc(out, a, d, a0, a0 + sweep, segs);
    }
    out.push_back(a + off);
    out.push_back(b + off);
  }
  return Polygon(std::move(out));
}

double euclideanExpandArea(const Region& r, Coord d) {
  using std::numbers::pi;
  // Steiner formula for Manhattan regions whose features exceed d:
  //   area(A (+) disc_d) = A + P*d + n_convex*(pi*d^2/4) - n_reflex*d^2
  // Each convex corner grows a quarter disc; at each reflex corner the two
  // edge strips overlap in exactly a dxd square. A rect (4 convex corners)
  // gives the familiar A + P*d + pi*d^2. Validated in tests; features
  // narrower than 2d are out of scope.
  double perim = 0;
  for (const Edge& e : r.edges()) perim += static_cast<double>(e.length());
  int convex = 0, reflex = 0;
  for (const Corner& c : regionCorners(r)) (c.convex ? convex : reflex)++;
  const double dd = static_cast<double>(d);
  return static_cast<double>(r.area()) + perim * dd +
         convex * (pi * dd * dd / 4.0) - reflex * (dd * dd);
}

std::vector<Rect> openingCornerDefects(const Region& r, Coord d) {
  std::vector<Rect> out;
  for (const Corner& c : regionCorners(r)) {
    if (!c.convex) continue;
    // The defect sits in the dxd square just inside the corner.
    const Point in = c.inward;
    const Rect defect = makeRect(c.at, {c.at.x + in.x * d, c.at.y + in.y * d});
    // Only a real defect if the region actually covers that square
    // (very thin features already fail width outright).
    if (r.covers(defect)) out.push_back(defect);
  }
  return out;
}

}  // namespace dic::geom
