#pragma once
/// \file rect.hpp
/// Axis-aligned rectangles.
///
/// A Rect stores its lower-left (`lo`) and upper-right (`hi`) corners.
/// Two interpretations are used in the kernel and every function documents
/// which one it applies:
///   * *half-open* [lo, hi): the interpretation used by Region booleans,
///     areas, and coverage tests. A rect with lo.x >= hi.x or
///     lo.y >= hi.y is empty.
///   * *closed* [lo, hi]: used by skeleton touch tests (Fig. 11 of the
///     paper), where degenerate rects (zero width and/or height) are
///     meaningful geometry (the skeleton of a minimum-width element).

#include <algorithm>
#include <string>

#include "geom/types.hpp"

namespace dic::geom {

/// Axis-aligned rectangle; see file comment for half-open vs closed use.
struct Rect {
  Point lo;
  Point hi;

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
  friend constexpr auto operator<=>(const Rect&, const Rect&) = default;

  /// True if empty under half-open semantics.
  constexpr bool empty() const { return lo.x >= hi.x || lo.y >= hi.y; }

  /// True if degenerate-but-valid under closed semantics (a point or a
  /// zero-thickness line is still *closed*-valid).
  constexpr bool closedValid() const { return lo.x <= hi.x && lo.y <= hi.y; }

  constexpr Coord width() const { return hi.x - lo.x; }
  constexpr Coord height() const { return hi.y - lo.y; }

  /// Area under half-open semantics (0 if empty).
  constexpr Coord area() const {
    return empty() ? 0 : width() * height();
  }

  /// Geometric center, rounded toward lo.
  constexpr Point center() const {
    return {lo.x + width() / 2, lo.y + height() / 2};
  }

  /// Half-open containment of a point.
  constexpr bool contains(Point p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y;
  }

  /// Closed containment of a point.
  constexpr bool containsClosed(Point p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  /// Half-open containment of another rect (empty rect is contained).
  constexpr bool containsRect(const Rect& r) const {
    return r.empty() || (r.lo.x >= lo.x && r.hi.x <= hi.x && r.lo.y >= lo.y &&
                         r.hi.y <= hi.y);
  }

  /// Rect grown by d on every side (d may be negative to deflate).
  constexpr Rect inflated(Coord d) const {
    return {{lo.x - d, lo.y - d}, {hi.x + d, hi.y + d}};
  }

  /// Rect translated by v.
  constexpr Rect translated(Point v) const { return {lo + v, hi + v}; }
};

/// Rect from any two opposite corners.
constexpr Rect makeRect(Point a, Point b) {
  return {{std::min(a.x, b.x), std::min(a.y, b.y)},
          {std::max(a.x, b.x), std::max(a.y, b.y)}};
}

/// Rect from coordinates (x1,y1)-(x2,y2) in any order.
constexpr Rect makeRect(Coord x1, Coord y1, Coord x2, Coord y2) {
  return makeRect(Point{x1, y1}, Point{x2, y2});
}

/// Half-open intersection (may be empty).
constexpr Rect intersect(const Rect& a, const Rect& b) {
  return {{std::max(a.lo.x, b.lo.x), std::max(a.lo.y, b.lo.y)},
          {std::min(a.hi.x, b.hi.x), std::min(a.hi.y, b.hi.y)}};
}

/// Smallest rect containing both (bounding-box union).
constexpr Rect bound(const Rect& a, const Rect& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return {{std::min(a.lo.x, b.lo.x), std::min(a.lo.y, b.lo.y)},
          {std::max(a.hi.x, b.hi.x), std::max(a.hi.y, b.hi.y)}};
}

/// True if the half-open interiors overlap (positive-area intersection).
constexpr bool overlaps(const Rect& a, const Rect& b) {
  return a.lo.x < b.hi.x && b.lo.x < a.hi.x && a.lo.y < b.hi.y &&
         b.lo.y < a.hi.y;
}

/// True if the *closed* rects intersect -- they overlap, abut edge-to-edge,
/// or touch corner-to-corner. This is the skeleton "touch" criterion and is
/// well defined for degenerate rects.
constexpr bool closedTouch(const Rect& a, const Rect& b) {
  return a.lo.x <= b.hi.x && b.lo.x <= a.hi.x && a.lo.y <= b.hi.y &&
         b.lo.y <= a.hi.y;
}

/// Axis gap between closed intervals [a1,a2] and [b1,b2]; 0 if they meet.
constexpr Coord axisGap(Coord a1, Coord a2, Coord b1, Coord b2) {
  if (b1 > a2) return b1 - a2;
  if (a1 > b2) return a1 - b2;
  return 0;
}

/// Separation vector between two closed rects: component-wise gap
/// (0,0) when they touch or overlap.
constexpr Point rectGap(const Rect& a, const Rect& b) {
  return {axisGap(a.lo.x, a.hi.x, b.lo.x, b.hi.x),
          axisGap(a.lo.y, a.hi.y, b.lo.y, b.hi.y)};
}

/// Distance between two closed rects under the given metric.
inline double rectDistance(const Rect& a, const Rect& b, Metric m) {
  const Point g = rectGap(a, b);
  return m == Metric::kEuclidean
             ? std::hypot(static_cast<double>(g.x), static_cast<double>(g.y))
             : static_cast<double>(chebyshev(g));
}

/// Squared Euclidean distance between closed rects (exact integer).
constexpr Coord rectDistance2(const Rect& a, const Rect& b) {
  const Point g = rectGap(a, b);
  return g.x * g.x + g.y * g.y;
}

/// Printable form for diagnostics.
inline std::string toString(const Rect& r) {
  return "[" + toString(r.lo) + "-" + toString(r.hi) + "]";
}

}  // namespace dic::geom
