#pragma once
/// \file skeleton.hpp
/// Skeletal connectivity (Fig. 11 of the paper).
///
/// "The skeleton of an element is the result of shrinking that element by
/// half the minimum width on that layer. Two elements are connected if
/// their skeletons touch, overlap, or if one is enclosed within the
/// other." The key invariant (proved in the paper, property-tested here):
/// if two elements are each of legal width and are skeletally connected,
/// then their union is of legal width -- so no general polygon routine is
/// needed to validate merged interconnect.
///
/// Skeletons live in *doubled* coordinates so that a minimum-width element
/// has an exact degenerate (zero-thickness, closed) skeleton even when the
/// minimum width is odd in database units. All rects here are CLOSED and
/// may be degenerate.

#include <vector>

#include "geom/region.hpp"

namespace dic::geom {

/// A skeleton: closed (possibly degenerate) rects in 2x coordinates.
struct Skeleton {
  std::vector<Rect> parts;  ///< closed rects, coordinates doubled
  bool thin{false};  ///< true if the element was at (or below) minimum width

  bool empty() const { return parts.empty(); }

  /// Bounding box in 2x coordinates (closed).
  Rect bbox() const;
};

/// Skeleton of a box element. Each axis is deflated by min(minWidth,
/// extent)/1 in 2x space; an exactly-minimum-width box yields a degenerate
/// line, the paper's canonical case.
Skeleton boxSkeleton(const Rect& box, Coord minWidth);

/// Skeleton of a Manhattan wire: `points` is the centerline, `width` the
/// drawn width; square end caps extend by width/2 (so the wire region is
/// each segment's centerline inflated by width/2). The skeleton is the
/// centerline dilated by (width - minWidth)/2 -- degenerate when width ==
/// minWidth.
Skeleton wireSkeleton(const std::vector<Point>& points, Coord width,
                      Coord minWidth);

/// Skeleton of an arbitrary Manhattan region (general polygons): exact
/// erosion in 2x space; if the region is exactly minimum width somewhere
/// the erosion drops it, so a 1-unit-relaxed erosion is used and `thin`
/// is set (over-connects by at most half a database unit; documented).
Skeleton regionSkeleton(const Region& r, Coord minWidth);

/// The legal-connection criterion: skeletons touch, overlap, or enclose.
bool skeletonsConnected(const Skeleton& a, const Skeleton& b);

/// Distance between skeletons in database units (closed rects, 2x space
/// halved back), Euclidean.
double skeletonDistance(const Skeleton& a, const Skeleton& b);

}  // namespace dic::geom
