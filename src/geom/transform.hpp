#pragma once
/// \file transform.hpp
/// Orthogonal (90-degree / mirror) transforms with translation, the
/// symmetry group used by CIF symbol calls.

#include <array>
#include <cstdint>

#include "geom/rect.hpp"
#include "geom/types.hpp"

namespace dic::geom {

/// The 8 orthogonal orientations. kR* are counter-clockwise rotations;
/// kM* first mirror (about the named axis' perpendicular: kMX flips x),
/// then rotate.
enum class Orient : std::uint8_t {
  kR0 = 0,
  kR90,
  kR180,
  kR270,
  kMX,     ///< x -> -x
  kMX90,   ///< mirror x then rotate 90 CCW
  kMY,     ///< y -> -y
  kMY90,   ///< mirror y then rotate 90 CCW
};

/// 2x2 integer matrix with entries in {-1,0,1}; row-major (a b; c d).
struct OrientMatrix {
  int a, b, c, d;
};

/// Matrix of an orientation.
constexpr OrientMatrix orientMatrix(Orient o) {
  switch (o) {
    case Orient::kR0: return {1, 0, 0, 1};
    case Orient::kR90: return {0, -1, 1, 0};
    case Orient::kR180: return {-1, 0, 0, -1};
    case Orient::kR270: return {0, 1, -1, 0};
    case Orient::kMX: return {-1, 0, 0, 1};
    case Orient::kMX90: return {0, -1, -1, 0};
    case Orient::kMY: return {1, 0, 0, -1};
    case Orient::kMY90: return {0, 1, 1, 0};
  }
  return {1, 0, 0, 1};
}

/// Orientation whose matrix equals m (must be one of the 8).
Orient orientFromMatrix(const OrientMatrix& m);

/// Composition: apply `first`, then `second`.
Orient compose(Orient first, Orient second);

/// A rigid orthogonal transform: p -> M(orient) * p + t.
struct Transform {
  Orient orient{Orient::kR0};
  Point t{};

  friend constexpr bool operator==(const Transform&,
                                   const Transform&) = default;

  constexpr Point apply(Point p) const {
    const OrientMatrix m = orientMatrix(orient);
    return {m.a * p.x + m.b * p.y + t.x, m.c * p.x + m.d * p.y + t.y};
  }

  /// Transformed rect (axis-aligned in, axis-aligned out).
  constexpr Rect apply(const Rect& r) const {
    return makeRect(apply(r.lo), apply(r.hi));
  }
};

/// Composition: apply `first`, then `second` (i.e. result(p) ==
/// second.apply(first.apply(p))).
Transform compose(const Transform& first, const Transform& second);

/// Inverse transform: inverse(t).apply(t.apply(p)) == p.
Transform inverse(const Transform& t);

/// Pure translation.
constexpr Transform translate(Point v) { return {Orient::kR0, v}; }

/// Identity.
constexpr Transform identityTransform() { return {}; }

}  // namespace dic::geom
