#pragma once
/// \file region.hpp
/// Manhattan region: a canonical set of disjoint axis-aligned rectangles
/// with scanline boolean operations and orthogonal morphology.
///
/// Semantics are *half-open*: a region is a union of [lo,hi) rectangles.
/// The canonical form is the maximal-vertical-column decomposition: the
/// plane is cut at every y where the slab interval structure changes, and
/// columns with identical x-extent are merged vertically. Two equal point
/// sets always produce the same rect vector, so operator== is set equality.
///
/// Hot-loop storage: beside the canonical AoS `rects()` vector every
/// Region can lazily materialize a struct-of-arrays view (`soa()`) and its
/// boundary edge list (`edges()`). Both are built at most once per Region
/// (thread-safe publication, safe to race from parallel workers) and are
/// what the vectorized spacing/width/touch predicates iterate. See
/// docs/geom.md for the kernel contract.

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "geom/edge.hpp"
#include "geom/rect.hpp"
#include "geom/transform.hpp"

namespace dic::geom {

/// Boolean operation selector for the scanline sweep kernels.
enum class BoolOp : std::uint8_t { kOr, kAnd, kSub, kXor };

/// Core scanline boolean over two (possibly overlapping, unnormalized)
/// rect sets. Returns the canonical maximal-column decomposition. This is
/// the optimized kernel: the active x-event list is kept sorted across
/// slabs in struct-of-arrays scratch and merged incrementally, replacing
/// the per-slab rebuild-and-sort of the scalar reference.
std::vector<Rect> booleanSweep(std::span<const Rect> a,
                               std::span<const Rect> b, BoolOp op);

/// Scalar reference implementation of booleanSweep, retained as the
/// differential-test oracle. The optimized kernel's output contract is
/// byte-identical rect vectors for every input.
std::vector<Rect> booleanSweepScalar(std::span<const Rect> a,
                                     std::span<const Rect> b, BoolOp op);

class Region {
 public:
  /// Struct-of-arrays view of the canonical rects: four parallel
  /// contiguous coordinate arrays (`rects()[i]` == `{{xlo[i], ylo[i]},
  /// {xhi[i], yhi[i]}}`). The vectorized predicates stream these spans so
  /// the inner gap/touch comparisons autovectorize.
  struct SoA {
    std::vector<Coord> xlo, ylo, xhi, yhi;
    std::size_t size() const { return xlo.size(); }
  };

  /// Empty region.
  Region() = default;

  /// Region of a single rectangle (empty rect -> empty region).
  explicit Region(const Rect& r);

  ~Region();
  Region(const Region& o);
  Region(Region&& o) noexcept;
  Region& operator=(const Region& o);
  Region& operator=(Region&& o) noexcept;

  /// Region from arbitrary (possibly overlapping) rects.
  static Region fromRects(std::span<const Rect> rects);

  /// The canonical disjoint rectangles, sorted by (lo.y, lo.x).
  const std::vector<Rect>& rects() const { return rects_; }

  /// The SoA view of rects(), built lazily on first use (thread-safe;
  /// concurrent callers all observe the same fully built arrays).
  const SoA& soa() const;

  bool empty() const { return rects_.empty(); }

  /// Total area (exact).
  Coord area() const;

  /// Bounding box (empty rect when empty).
  Rect bbox() const;

  /// Half-open membership test.
  bool contains(Point p) const;

  /// True if r is completely covered.
  bool covers(const Rect& r) const;

  /// True if the interiors intersect.
  bool overlaps(const Region& o) const;

  /// Set equality (canonical forms compare directly).
  friend bool operator==(const Region& a, const Region& b) {
    return a.rects_ == b.rects_;
  }

  /// Boolean operations (canonical results).
  friend Region unite(const Region& a, const Region& b);
  friend Region intersect(const Region& a, const Region& b);
  friend Region subtract(const Region& a, const Region& b);
  friend Region exclusiveOr(const Region& a, const Region& b);

  /// Orthogonal (square structuring element, Chebyshev) dilation by d >= 0.
  /// Distributes over the rect union: each rect is inflated then re-unioned.
  Region expanded(Coord d) const;

  /// Orthogonal erosion by d >= 0: points whose d-square is inside.
  /// Exact: computed as the complement of the dilated complement.
  Region shrunk(Coord d) const;

  /// Region scaled by an integer factor (used by 2x skeleton space).
  Region scaled(Coord k) const;

  /// Transformed copy (orthogonal transforms map rects to rects).
  Region transformed(const Transform& t) const;

  /// Translated copy.
  Region translated(Point v) const;

  /// Boundary edges; see edge.hpp. Every point of the region boundary is
  /// covered by exactly one edge, with its interior side annotated.
  /// Built at most once per Region and cached (thread-safe), so repeated
  /// predicate invocations (width walks, corner scans) do not rebuild it.
  const std::vector<Edge>& edges() const;

 private:
  static Region boolop(const Region& a, const Region& b, BoolOp op);

  explicit Region(std::vector<Rect> normalized) : rects_(std::move(normalized)) {}

  void dropCaches() noexcept;

  std::vector<Rect> rects_;
  // Lazily built derived views. Raw pointers published by compare-exchange:
  // the winning builder's value is observed by everyone, losers delete
  // their copy. Copies/assignments of a Region drop (do not share) caches.
  mutable std::atomic<const SoA*> soa_{nullptr};
  mutable std::atomic<const std::vector<Edge>*> edges_{nullptr};
};

Region unite(const Region& a, const Region& b);
Region intersect(const Region& a, const Region& b);
Region subtract(const Region& a, const Region& b);
Region exclusiveOr(const Region& a, const Region& b);

/// Euclidean distance between two regions (min over rect pairs; exact for
/// unions of rects). Returns +inf if either is empty.
double regionDistance(const Region& a, const Region& b, Metric m);

/// True if any rect of a closed-touches any rect of b (overlap, abutment,
/// or corner contact). SoA-vectorized candidate mask plus exact
/// confirmation; equivalent to the quadratic closedTouch scan.
bool regionsTouch(const Region& a, const Region& b);

/// Scalar reference for regionsTouch (differential-test oracle).
bool regionsTouchScalar(const Region& a, const Region& b);

}  // namespace dic::geom
