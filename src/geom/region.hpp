#pragma once
/// \file region.hpp
/// Manhattan region: a canonical set of disjoint axis-aligned rectangles
/// with scanline boolean operations and orthogonal morphology.
///
/// Semantics are *half-open*: a region is a union of [lo,hi) rectangles.
/// The canonical form is the maximal-vertical-column decomposition: the
/// plane is cut at every y where the slab interval structure changes, and
/// columns with identical x-extent are merged vertically. Two equal point
/// sets always produce the same rect vector, so operator== is set equality.

#include <span>
#include <vector>

#include "geom/edge.hpp"
#include "geom/rect.hpp"
#include "geom/transform.hpp"

namespace dic::geom {

class Region {
 public:
  /// Empty region.
  Region() = default;

  /// Region of a single rectangle (empty rect -> empty region).
  explicit Region(const Rect& r);

  /// Region from arbitrary (possibly overlapping) rects.
  static Region fromRects(std::span<const Rect> rects);

  /// The canonical disjoint rectangles, sorted by (lo.y, lo.x).
  const std::vector<Rect>& rects() const { return rects_; }

  bool empty() const { return rects_.empty(); }

  /// Total area (exact).
  Coord area() const;

  /// Bounding box (empty rect when empty).
  Rect bbox() const;

  /// Half-open membership test.
  bool contains(Point p) const;

  /// True if r is completely covered.
  bool covers(const Rect& r) const;

  /// True if the interiors intersect.
  bool overlaps(const Region& o) const;

  friend bool operator==(const Region&, const Region&) = default;

  /// Boolean operations (canonical results).
  friend Region unite(const Region& a, const Region& b);
  friend Region intersect(const Region& a, const Region& b);
  friend Region subtract(const Region& a, const Region& b);
  friend Region exclusiveOr(const Region& a, const Region& b);

  /// Orthogonal (square structuring element, Chebyshev) dilation by d >= 0.
  /// Distributes over the rect union: each rect is inflated then re-unioned.
  Region expanded(Coord d) const;

  /// Orthogonal erosion by d >= 0: points whose d-square is inside.
  /// Exact: computed as the complement of the dilated complement.
  Region shrunk(Coord d) const;

  /// Region scaled by an integer factor (used by 2x skeleton space).
  Region scaled(Coord k) const;

  /// Transformed copy (orthogonal transforms map rects to rects).
  Region transformed(const Transform& t) const;

  /// Translated copy.
  Region translated(Point v) const;

  /// Boundary edges; see edge.hpp. Every point of the region boundary is
  /// covered by exactly one edge, with its interior side annotated.
  std::vector<Edge> edges() const;

 private:
  enum class Op { kOr, kAnd, kSub, kXor };
  static Region boolop(const Region& a, const Region& b, Op op);
  static std::vector<Rect> normalizeCounted(std::vector<Rect> raw);

  explicit Region(std::vector<Rect> normalized) : rects_(std::move(normalized)) {}

  std::vector<Rect> rects_;
};

Region unite(const Region& a, const Region& b);
Region intersect(const Region& a, const Region& b);
Region subtract(const Region& a, const Region& b);
Region exclusiveOr(const Region& a, const Region& b);

/// Euclidean distance between two regions (min over rect pairs; exact for
/// unions of rects). Returns +inf if either is empty.
double regionDistance(const Region& a, const Region& b, Metric m);

}  // namespace dic::geom
