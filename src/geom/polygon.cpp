#include "geom/polygon.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace dic::geom {

namespace {

Coord twiceSignedArea(const std::vector<Point>& v) {
  Coord a = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Point& p = v[i];
    const Point& q = v[(i + 1) % v.size()];
    a += cross(p, q);
  }
  return a;
}

}  // namespace

Polygon::Polygon(std::vector<Point> vertices) : v_(std::move(vertices)) {
  if (v_.size() < 3) {
    v_.clear();
    return;
  }
  // Enforce CCW orientation.
  if (twiceSignedArea(v_) < 0) std::reverse(v_.begin(), v_.end());
  // Drop consecutive duplicates and collinear runs.
  std::vector<Point> clean;
  clean.reserve(v_.size());
  for (const Point& p : v_) {
    if (!clean.empty() && clean.back() == p) continue;
    clean.push_back(p);
  }
  while (clean.size() >= 2 && clean.front() == clean.back()) clean.pop_back();
  std::vector<Point> out;
  const std::size_t n = clean.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point& prev = clean[(i + n - 1) % n];
    const Point& cur = clean[i];
    const Point& next = clean[(i + 1) % n];
    if (cross(cur - prev, next - cur) != 0 ||
        dot(cur - prev, next - cur) < 0) {
      out.push_back(cur);  // keep true corners and U-turn spikes
    }
  }
  v_ = std::move(out);
  if (v_.size() < 3) v_.clear();
}

Coord Polygon::twiceArea() const {
  const Coord a = twiceSignedArea(v_);
  return a < 0 ? -a : a;
}

Rect Polygon::bbox() const {
  if (empty()) return {{0, 0}, {0, 0}};
  Rect b{v_[0], v_[0]};
  for (const Point& p : v_) {
    b.lo.x = std::min(b.lo.x, p.x);
    b.lo.y = std::min(b.lo.y, p.y);
    b.hi.x = std::max(b.hi.x, p.x);
    b.hi.y = std::max(b.hi.y, p.y);
  }
  return b;
}

bool Polygon::isManhattan() const {
  for (std::size_t i = 0; i < v_.size(); ++i) {
    const Point d = v_[(i + 1) % v_.size()] - v_[i];
    if (d.x != 0 && d.y != 0) return false;
  }
  return !empty();
}

bool Polygon::contains(Point p) const {
  if (empty()) return false;
  bool in = false;
  const std::size_t n = v_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point a = v_[i];
    const Point b = v_[(i + 1) % n];
    // On-boundary test.
    if (cross(b - a, p - a) == 0 && dot(p - a, p - b) <= 0) return true;
    // Ray cast to +x.
    if ((a.y > p.y) != (b.y > p.y)) {
      // x coordinate of edge at height p.y, compared exactly:
      // p.x < a.x + (b.x-a.x)*(p.y-a.y)/(b.y-a.y)
      const Coord num = (b.x - a.x) * (p.y - a.y);
      const Coord den = b.y - a.y;
      const Coord lhs = (p.x - a.x) * den;
      if ((den > 0) ? (lhs < num) : (lhs > num)) in = !in;
    }
  }
  return in;
}

Region Polygon::toRegion() const {
  assert(isManhattan());
  if (empty()) return {};
  // Gather vertical edges; slab the plane at every distinct vertex y.
  struct VEdge {
    Coord x, y1, y2;
  };
  std::vector<VEdge> ve;
  std::vector<Coord> ys;
  const std::size_t n = v_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Point a = v_[i];
    const Point b = v_[(i + 1) % n];
    ys.push_back(a.y);
    if (a.x == b.x && a.y != b.y)
      ve.push_back({a.x, std::min(a.y, b.y), std::max(a.y, b.y)});
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::vector<Rect> rects;
  for (std::size_t s = 0; s + 1 < ys.size(); ++s) {
    const Coord y0 = ys[s], y1 = ys[s + 1];
    std::vector<Coord> xs;
    for (const VEdge& e : ve)
      if (e.y1 <= y0 && e.y2 >= y1) xs.push_back(e.x);
    std::sort(xs.begin(), xs.end());
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2)
      rects.push_back({{xs[i], y0}, {xs[i + 1], y1}});
  }
  return Region::fromRects(rects);
}

Polygon Polygon::translated(Point t) const {
  std::vector<Point> v = v_;
  for (Point& p : v) p += t;
  Polygon r;
  r.v_ = std::move(v);
  return r;
}

Polygon Polygon::transformed(const Transform& t) const {
  std::vector<Point> v;
  v.reserve(v_.size());
  for (const Point& p : v_) v.push_back(t.apply(p));
  return Polygon(std::move(v));  // renormalize orientation
}

double pointSegmentDistance(Point p, Point a, Point b) {
  const Point ab = b - a;
  const Coord ab2 = length2(ab);
  if (ab2 == 0) return length(p - a);
  const double t = std::clamp(
      static_cast<double>(dot(p - a, ab)) / static_cast<double>(ab2), 0.0,
      1.0);
  const double dx = static_cast<double>(p.x) -
                    (static_cast<double>(a.x) + t * static_cast<double>(ab.x));
  const double dy = static_cast<double>(p.y) -
                    (static_cast<double>(a.y) + t * static_cast<double>(ab.y));
  return std::hypot(dx, dy);
}

namespace {

bool segmentsIntersect(Point a1, Point a2, Point b1, Point b2) {
  auto sgn = [](Coord v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); };
  const int d1 = sgn(cross(a2 - a1, b1 - a1));
  const int d2 = sgn(cross(a2 - a1, b2 - a1));
  const int d3 = sgn(cross(b2 - b1, a1 - b1));
  const int d4 = sgn(cross(b2 - b1, a2 - b1));
  if (d1 * d2 < 0 && d3 * d4 < 0) return true;
  auto onSeg = [](Point p, Point a, Point b) {
    return cross(b - a, p - a) == 0 && dot(p - a, p - b) <= 0;
  };
  return onSeg(b1, a1, a2) || onSeg(b2, a1, a2) || onSeg(a1, b1, b2) ||
         onSeg(a2, b1, b2);
}

}  // namespace

double segmentDistance(Point a1, Point a2, Point b1, Point b2) {
  if (segmentsIntersect(a1, a2, b1, b2)) return 0.0;
  return std::min(std::min(pointSegmentDistance(a1, b1, b2),
                           pointSegmentDistance(a2, b1, b2)),
                  std::min(pointSegmentDistance(b1, a1, a2),
                           pointSegmentDistance(b2, a1, a2)));
}

double polygonDistance(const Polygon& a, const Polygon& b) {
  if (a.empty() || b.empty()) return 0.0;
  if (a.contains(b.vertices()[0]) || b.contains(a.vertices()[0])) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  const auto& va = a.vertices();
  const auto& vb = b.vertices();
  for (std::size_t i = 0; i < va.size(); ++i) {
    for (std::size_t j = 0; j < vb.size(); ++j) {
      best = std::min(best, segmentDistance(va[i], va[(i + 1) % va.size()],
                                            vb[j], vb[(j + 1) % vb.size()]));
      if (best == 0) return 0;
    }
  }
  return best;
}

}  // namespace dic::geom
