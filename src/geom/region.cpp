#include "geom/region.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>
#include <memory>

namespace dic::geom {

namespace {

/// x-interval with [lo,hi).
struct Iv {
  Coord lo, hi;
  friend bool operator==(const Iv&, const Iv&) = default;
};

/// One open vertical column being grown during the sweep.
struct Column {
  Coord x1, x2, y1;
};

bool evalOp(bool a, bool b, BoolOp op) {
  switch (op) {
    case BoolOp::kOr: return a || b;
    case BoolOp::kAnd: return a && b;
    case BoolOp::kSub: return a && !b;
    default: return a != b;  // Xor
  }
}

/// Scalar reference scanline boolean: per slab the active rect set is
/// re-filtered and its x-events rebuilt and sorted from scratch. Retained
/// verbatim as the differential-test oracle for the incremental kernel.
std::vector<Rect> sweepScalar(std::span<const Rect> ra,
                              std::span<const Rect> rb, BoolOp op) {
  // Collect slab boundaries.
  std::vector<Coord> ys;
  ys.reserve(2 * (ra.size() + rb.size()));
  for (const Rect& r : ra) {
    if (!r.empty()) {
      ys.push_back(r.lo.y);
      ys.push_back(r.hi.y);
    }
  }
  for (const Rect& r : rb) {
    if (!r.empty()) {
      ys.push_back(r.lo.y);
      ys.push_back(r.hi.y);
    }
  }
  if (ys.empty()) return {};
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  // Rects sorted by lo.y for incremental activation.
  auto byLoY = [](const Rect& a, const Rect& b) { return a.lo.y < b.lo.y; };
  std::vector<Rect> sa, sb;
  sa.reserve(ra.size());
  sb.reserve(rb.size());
  for (const Rect& r : ra)
    if (!r.empty()) sa.push_back(r);
  for (const Rect& r : rb)
    if (!r.empty()) sb.push_back(r);
  std::sort(sa.begin(), sa.end(), byLoY);
  std::sort(sb.begin(), sb.end(), byLoY);

  std::vector<Rect> active_a, active_b;
  std::size_t ia = 0, ib = 0;

  // x-event: +1/-1 on the A or B coverage count.
  struct XEv {
    Coord x;
    int da, db;
  };
  std::vector<XEv> xev;
  std::vector<Iv> cur;
  std::vector<Column> open, nextOpen;
  std::vector<Rect> out;

  Coord prevY = 0;
  bool first = true;
  for (std::size_t si = 0; si + 1 <= ys.size(); ++si) {
    const Coord y0 = ys[si];
    // Close columns if there is a discontinuity (cannot happen with
    // contiguous slabs, but keep the invariant explicit).
    if (!first && prevY != y0) {
      for (const Column& c : open) out.push_back({{c.x1, c.y1}, {c.x2, prevY}});
      open.clear();
    }
    first = false;
    if (si + 1 == ys.size()) break;
    const Coord y1 = ys[si + 1];

    // Update active sets.
    std::erase_if(active_a, [y0](const Rect& r) { return r.hi.y <= y0; });
    std::erase_if(active_b, [y0](const Rect& r) { return r.hi.y <= y0; });
    while (ia < sa.size() && sa[ia].lo.y <= y0) {
      if (sa[ia].hi.y > y0) active_a.push_back(sa[ia]);
      ++ia;
    }
    while (ib < sb.size() && sb[ib].lo.y <= y0) {
      if (sb[ib].hi.y > y0) active_b.push_back(sb[ib]);
      ++ib;
    }

    // 1-D sweep over x for this slab.
    xev.clear();
    for (const Rect& r : active_a) {
      xev.push_back({r.lo.x, +1, 0});
      xev.push_back({r.hi.x, -1, 0});
    }
    for (const Rect& r : active_b) {
      xev.push_back({r.lo.x, 0, +1});
      xev.push_back({r.hi.x, 0, -1});
    }
    std::sort(xev.begin(), xev.end(),
              [](const XEv& a, const XEv& b) { return a.x < b.x; });

    cur.clear();
    int ca = 0, cb = 0;
    bool inside = false;
    Coord start = 0;
    std::size_t k = 0;
    while (k < xev.size()) {
      const Coord x = xev[k].x;
      while (k < xev.size() && xev[k].x == x) {
        ca += xev[k].da;
        cb += xev[k].db;
        ++k;
      }
      const bool now = evalOp(ca > 0, cb > 0, op);
      if (now && !inside) {
        start = x;
        inside = true;
      } else if (!now && inside) {
        if (x > start) cur.push_back({start, x});
        inside = false;
      }
    }
    assert(!inside && ca == 0 && cb == 0);

    // Merge with open columns.
    nextOpen.clear();
    std::size_t oi = 0, ci = 0;
    while (oi < open.size() || ci < cur.size()) {
      if (oi < open.size() && ci < cur.size() && open[oi].x1 == cur[ci].lo &&
          open[oi].x2 == cur[ci].hi) {
        nextOpen.push_back(open[oi]);  // column continues
        ++oi;
        ++ci;
      } else if (oi < open.size() &&
                 (ci == cur.size() || open[oi].x1 < cur[ci].lo ||
                  (open[oi].x1 == cur[ci].lo && open[oi].x2 != cur[ci].hi))) {
        out.push_back({{open[oi].x1, open[oi].y1}, {open[oi].x2, y0}});
        ++oi;
      } else {
        nextOpen.push_back({cur[ci].lo, cur[ci].hi, y0});
        ++ci;
      }
    }
    std::swap(open, nextOpen);
    prevY = y1;
  }
  for (const Column& c : open) out.push_back({{c.x1, c.y1}, {c.x2, prevY}});

  std::sort(out.begin(), out.end(), [](const Rect& a, const Rect& b) {
    return a.lo.y != b.lo.y ? a.lo.y < b.lo.y : a.lo.x < b.lo.x;
  });
  return out;
}

/// Thread-confined reusable scratch for the incremental sweep: the whole
/// point of the SoA kernel is that no per-call vectors are heap-churned,
/// so every buffer lives here and is high-water-mark sized per thread.
struct SweepScratch {
  std::vector<Coord> ys;
  /// One input rect prepared for activation (sorted by loY). da/db is its
  /// +1 contribution to the A or B coverage counter.
  struct Src {
    Coord loY, hiY, loX, hiX;
    std::int8_t da, db;
  };
  std::vector<Src> src;
  /// The active x-event list, SoA, kept sorted by x across slabs.
  /// Ping-pong buffers: compaction edits in place, merges write the
  /// other buffer.
  std::vector<Coord> evX[2], evYhi[2];
  std::vector<std::int8_t> evDa[2], evDb[2];
  /// Events of rects activated this slab (sorted, then merged).
  struct NewEv {
    Coord x, yhi;
    std::int8_t da, db;
  };
  std::vector<NewEv> fresh;
  std::vector<Iv> cur;
  std::vector<Column> open, nextOpen;
};

SweepScratch& sweepScratch() {
  static thread_local SweepScratch s;
  return s;
}

/// Incremental SoA scanline boolean. Identical slab/column structure to
/// sweepScalar, but the per-slab O(A log A) event rebuild+sort is replaced
/// by O(A) stable compaction of expired events plus an O(A + k log k)
/// merge of the k newly activated ones — the event list stays sorted by x
/// across slabs. Output is byte-identical to the scalar oracle (the
/// canonical decomposition is unique and the final sort has no ties).
std::vector<Rect> sweepFast(std::span<const Rect> ra, std::span<const Rect> rb,
                            BoolOp op) {
  SweepScratch& s = sweepScratch();
  s.ys.clear();
  s.src.clear();
  for (const Rect& r : ra) {
    if (r.empty()) continue;
    s.ys.push_back(r.lo.y);
    s.ys.push_back(r.hi.y);
    s.src.push_back({r.lo.y, r.hi.y, r.lo.x, r.hi.x, 1, 0});
  }
  for (const Rect& r : rb) {
    if (r.empty()) continue;
    s.ys.push_back(r.lo.y);
    s.ys.push_back(r.hi.y);
    s.src.push_back({r.lo.y, r.hi.y, r.lo.x, r.hi.x, 0, 1});
  }
  if (s.ys.empty()) return {};
  std::sort(s.ys.begin(), s.ys.end());
  s.ys.erase(std::unique(s.ys.begin(), s.ys.end()), s.ys.end());
  std::sort(s.src.begin(), s.src.end(),
            [](const SweepScratch::Src& a, const SweepScratch::Src& b) {
              return a.loY < b.loY;
            });

  int buf = 0;        // active ping-pong buffer
  std::size_t m = 0;  // active event count
  std::size_t next = 0;
  s.open.clear();
  std::vector<Rect> out;

  Coord prevY = 0;
  bool first = true;
  for (std::size_t si = 0; si + 1 <= s.ys.size(); ++si) {
    const Coord y0 = s.ys[si];
    if (!first && prevY != y0) {
      for (const Column& c : s.open)
        out.push_back({{c.x1, c.y1}, {c.x2, prevY}});
      s.open.clear();
    }
    first = false;
    if (si + 1 == s.ys.size()) break;
    const Coord y1 = s.ys[si + 1];

    // Expire events whose rect ends at or before y0: stable compaction
    // keeps the surviving events sorted by x.
    {
      Coord* X = s.evX[buf].data();
      Coord* Y = s.evYhi[buf].data();
      std::int8_t* DA = s.evDa[buf].data();
      std::int8_t* DB = s.evDb[buf].data();
      std::size_t w = 0;
      for (std::size_t r = 0; r < m; ++r) {
        if (Y[r] > y0) {
          X[w] = X[r];
          Y[w] = Y[r];
          DA[w] = DA[r];
          DB[w] = DB[r];
          ++w;
        }
      }
      m = w;
    }

    // Activate rects whose slab range starts here.
    s.fresh.clear();
    while (next < s.src.size() && s.src[next].loY <= y0) {
      const SweepScratch::Src& r = s.src[next];
      if (r.hiY > y0) {
        s.fresh.push_back({r.loX, r.hiY, r.da, r.db});
        s.fresh.push_back(
            {r.hiX, r.hiY, static_cast<std::int8_t>(-r.da),
             static_cast<std::int8_t>(-r.db)});
      }
      ++next;
    }
    if (!s.fresh.empty()) {
      std::sort(s.fresh.begin(), s.fresh.end(),
                [](const SweepScratch::NewEv& a, const SweepScratch::NewEv& b) {
                  return a.x < b.x;
                });
      const int o = buf ^ 1;
      const std::size_t total = m + s.fresh.size();
      if (s.evX[o].size() < total) {
        s.evX[o].resize(total);
        s.evYhi[o].resize(total);
        s.evDa[o].resize(total);
        s.evDb[o].resize(total);
      }
      const Coord* X = s.evX[buf].data();
      const Coord* Y = s.evYhi[buf].data();
      const std::int8_t* DA = s.evDa[buf].data();
      const std::int8_t* DB = s.evDb[buf].data();
      Coord* OX = s.evX[o].data();
      Coord* OY = s.evYhi[o].data();
      std::int8_t* ODA = s.evDa[o].data();
      std::int8_t* ODB = s.evDb[o].data();
      std::size_t i = 0, j = 0, w = 0;
      while (i < m || j < s.fresh.size()) {
        if (j == s.fresh.size() || (i < m && X[i] <= s.fresh[j].x)) {
          OX[w] = X[i];
          OY[w] = Y[i];
          ODA[w] = DA[i];
          ODB[w] = DB[i];
          ++i;
        } else {
          OX[w] = s.fresh[j].x;
          OY[w] = s.fresh[j].yhi;
          ODA[w] = s.fresh[j].da;
          ODB[w] = s.fresh[j].db;
          ++j;
        }
        ++w;
      }
      buf = o;
      m = total;
    }

    // 1-D counter sweep over the sorted event list (counters group all
    // events at equal x, so intra-group order is immaterial).
    s.cur.clear();
    {
      const Coord* X = s.evX[buf].data();
      const std::int8_t* DA = s.evDa[buf].data();
      const std::int8_t* DB = s.evDb[buf].data();
      int ca = 0, cb = 0;
      bool inside = false;
      Coord start = 0;
      std::size_t k = 0;
      while (k < m) {
        const Coord x = X[k];
        while (k < m && X[k] == x) {
          ca += DA[k];
          cb += DB[k];
          ++k;
        }
        const bool now = evalOp(ca > 0, cb > 0, op);
        if (now && !inside) {
          start = x;
          inside = true;
        } else if (!now && inside) {
          if (x > start) s.cur.push_back({start, x});
          inside = false;
        }
      }
      assert(!inside && ca == 0 && cb == 0);
      (void)sizeof(ca);
    }

    // Merge with open columns (identical to the scalar oracle).
    s.nextOpen.clear();
    std::size_t oi = 0, ci = 0;
    while (oi < s.open.size() || ci < s.cur.size()) {
      if (oi < s.open.size() && ci < s.cur.size() &&
          s.open[oi].x1 == s.cur[ci].lo && s.open[oi].x2 == s.cur[ci].hi) {
        s.nextOpen.push_back(s.open[oi]);  // column continues
        ++oi;
        ++ci;
      } else if (oi < s.open.size() &&
                 (ci == s.cur.size() || s.open[oi].x1 < s.cur[ci].lo ||
                  (s.open[oi].x1 == s.cur[ci].lo &&
                   s.open[oi].x2 != s.cur[ci].hi))) {
        out.push_back({{s.open[oi].x1, s.open[oi].y1}, {s.open[oi].x2, y0}});
        ++oi;
      } else {
        s.nextOpen.push_back({s.cur[ci].lo, s.cur[ci].hi, y0});
        ++ci;
      }
    }
    std::swap(s.open, s.nextOpen);
    prevY = y1;
  }
  for (const Column& c : s.open) out.push_back({{c.x1, c.y1}, {c.x2, prevY}});

  // No ties: output columns are disjoint, so (lo.y, lo.x) is a total order
  // and the sort is deterministic.
  std::sort(out.begin(), out.end(), [](const Rect& a, const Rect& b) {
    return a.lo.y != b.lo.y ? a.lo.y < b.lo.y : a.lo.x < b.lo.x;
  });
  return out;
}

}  // namespace

std::vector<Rect> booleanSweep(std::span<const Rect> a, std::span<const Rect> b,
                               BoolOp op) {
  return sweepFast(a, b, op);
}

std::vector<Rect> booleanSweepScalar(std::span<const Rect> a,
                                     std::span<const Rect> b, BoolOp op) {
  return sweepScalar(a, b, op);
}

Region::Region(const Rect& r) {
  if (!r.empty()) rects_.push_back(r);
}

Region::~Region() { dropCaches(); }

void Region::dropCaches() noexcept {
  delete soa_.exchange(nullptr, std::memory_order_acq_rel);
  delete edges_.exchange(nullptr, std::memory_order_acq_rel);
}

Region::Region(const Region& o) : rects_(o.rects_) {}

Region::Region(Region&& o) noexcept : rects_(std::move(o.rects_)) {
  soa_.store(o.soa_.exchange(nullptr, std::memory_order_acq_rel),
             std::memory_order_release);
  edges_.store(o.edges_.exchange(nullptr, std::memory_order_acq_rel),
               std::memory_order_release);
}

Region& Region::operator=(const Region& o) {
  if (this != &o) {
    rects_ = o.rects_;
    dropCaches();
  }
  return *this;
}

Region& Region::operator=(Region&& o) noexcept {
  if (this != &o) {
    rects_ = std::move(o.rects_);
    dropCaches();
    soa_.store(o.soa_.exchange(nullptr, std::memory_order_acq_rel),
               std::memory_order_release);
    edges_.store(o.edges_.exchange(nullptr, std::memory_order_acq_rel),
                 std::memory_order_release);
  }
  return *this;
}

const Region::SoA& Region::soa() const {
  if (const SoA* p = soa_.load(std::memory_order_acquire)) return *p;
  auto fresh = std::make_unique<SoA>();
  const std::size_t n = rects_.size();
  fresh->xlo.resize(n);
  fresh->ylo.resize(n);
  fresh->xhi.resize(n);
  fresh->yhi.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    fresh->xlo[i] = rects_[i].lo.x;
    fresh->ylo[i] = rects_[i].lo.y;
    fresh->xhi[i] = rects_[i].hi.x;
    fresh->yhi[i] = rects_[i].hi.y;
  }
  const SoA* expected = nullptr;
  if (soa_.compare_exchange_strong(expected, fresh.get(),
                                   std::memory_order_acq_rel,
                                   std::memory_order_acquire))
    return *fresh.release();
  return *expected;  // another thread published first
}

Region Region::fromRects(std::span<const Rect> rects) {
  return Region(sweepFast(rects, {}, BoolOp::kOr));
}

Coord Region::area() const {
  Coord a = 0;
  for (const Rect& r : rects_) a += r.area();
  return a;
}

Rect Region::bbox() const {
  Rect b{{0, 0}, {0, 0}};
  for (const Rect& r : rects_) b = bound(b, r);
  return b;
}

bool Region::contains(Point p) const {
  for (const Rect& r : rects_) {
    if (r.contains(p)) return true;
    if (r.lo.y > p.y) break;  // sorted by lo.y: no later rect can contain p
  }
  return false;
}

bool Region::covers(const Rect& q) const {
  if (q.empty()) return true;
  return subtract(Region(q), *this).empty();
}

bool Region::overlaps(const Region& o) const {
  // Cheap bbox reject, then rect-pair scan (exact).
  if (!geom::overlaps(bbox(), o.bbox())) return false;
  for (const Rect& a : rects_)
    for (const Rect& b : o.rects_)
      if (geom::overlaps(a, b)) return true;
  return false;
}

Region Region::boolop(const Region& a, const Region& b, BoolOp op) {
  return Region(sweepFast(a.rects_, b.rects_, op));
}

Region unite(const Region& a, const Region& b) {
  return Region::boolop(a, b, BoolOp::kOr);
}
Region intersect(const Region& a, const Region& b) {
  return Region::boolop(a, b, BoolOp::kAnd);
}
Region subtract(const Region& a, const Region& b) {
  return Region::boolop(a, b, BoolOp::kSub);
}
Region exclusiveOr(const Region& a, const Region& b) {
  return Region::boolop(a, b, BoolOp::kXor);
}

Region Region::expanded(Coord d) const {
  if (d == 0 || rects_.empty()) return *this;
  assert(d > 0);
  std::vector<Rect> infl;
  infl.reserve(rects_.size());
  for (const Rect& r : rects_) infl.push_back(r.inflated(d));
  return fromRects(infl);
}

Region Region::shrunk(Coord d) const {
  if (d == 0 || rects_.empty()) return *this;
  assert(d > 0);
  const Rect frame = bbox().inflated(2 * d + 2);
  const Region comp = subtract(Region(frame), *this);
  return subtract(Region(frame), comp.expanded(d));
}

Region Region::scaled(Coord k) const {
  Region r;
  r.rects_.reserve(rects_.size());
  for (const Rect& q : rects_)
    r.rects_.push_back({{q.lo.x * k, q.lo.y * k}, {q.hi.x * k, q.hi.y * k}});
  return r;
}

Region Region::transformed(const Transform& t) const {
  std::vector<Rect> moved;
  moved.reserve(rects_.size());
  for (const Rect& r : rects_) moved.push_back(t.apply(r));
  // Orientation can reorder/mirror; renormalize to the canonical form.
  return fromRects(moved);
}

Region Region::translated(Point v) const {
  Region r;
  r.rects_.reserve(rects_.size());
  for (const Rect& q : rects_) r.rects_.push_back(q.translated(v));
  return r;
}

namespace {

/// Subtract sorted disjoint interval list b from a (1-D, half-open).
std::vector<Iv> ivSubtract(const std::vector<Iv>& a, const std::vector<Iv>& b) {
  std::vector<Iv> out;
  std::size_t j = 0;
  for (const Iv& iv : a) {
    Coord lo = iv.lo;
    while (j < b.size() && b[j].hi <= lo) ++j;
    std::size_t k = j;
    while (k < b.size() && b[k].lo < iv.hi) {
      if (b[k].lo > lo) out.push_back({lo, b[k].lo});
      lo = std::max(lo, b[k].hi);
      if (lo >= iv.hi) break;
      ++k;
    }
    if (lo < iv.hi) out.push_back({lo, iv.hi});
  }
  return out;
}

void appendSorted(std::vector<Iv>& v) {
  std::sort(v.begin(), v.end(),
            [](const Iv& a, const Iv& b) { return a.lo < b.lo; });
  // Merge abutting/overlapping (disjoint rects can abut within one line).
  std::vector<Iv> m;
  for (const Iv& iv : v) {
    if (!m.empty() && iv.lo <= m.back().hi)
      m.back().hi = std::max(m.back().hi, iv.hi);
    else
      m.push_back(iv);
  }
  v = std::move(m);
}

std::vector<Edge> buildEdges(const std::vector<Rect>& rects) {
  std::vector<Edge> out;
  // Vertical boundaries: at each x, "starts" (lo.x, interior right) minus
  // "ends" (hi.x, interior left); where they coincide the rects abut and
  // there is no boundary.
  {
    std::map<Coord, std::pair<std::vector<Iv>, std::vector<Iv>>> at;
    for (const Rect& r : rects) {
      at[r.lo.x].first.push_back({r.lo.y, r.hi.y});
      at[r.hi.x].second.push_back({r.lo.y, r.hi.y});
    }
    for (auto& [x, se] : at) {
      appendSorted(se.first);
      appendSorted(se.second);
      for (const Iv& iv : ivSubtract(se.first, se.second))
        out.push_back({x, iv.lo, iv.hi, InteriorSide::kRight});
      for (const Iv& iv : ivSubtract(se.second, se.first))
        out.push_back({x, iv.lo, iv.hi, InteriorSide::kLeft});
    }
  }
  // Horizontal boundaries.
  {
    std::map<Coord, std::pair<std::vector<Iv>, std::vector<Iv>>> at;
    for (const Rect& r : rects) {
      at[r.lo.y].first.push_back({r.lo.x, r.hi.x});
      at[r.hi.y].second.push_back({r.lo.x, r.hi.x});
    }
    for (auto& [y, se] : at) {
      appendSorted(se.first);
      appendSorted(se.second);
      for (const Iv& iv : ivSubtract(se.first, se.second))
        out.push_back({y, iv.lo, iv.hi, InteriorSide::kAbove});
      for (const Iv& iv : ivSubtract(se.second, se.first))
        out.push_back({y, iv.lo, iv.hi, InteriorSide::kBelow});
    }
  }
  return out;
}

}  // namespace

const std::vector<Edge>& Region::edges() const {
  if (const std::vector<Edge>* p = edges_.load(std::memory_order_acquire))
    return *p;
  auto fresh = std::make_unique<std::vector<Edge>>(buildEdges(rects_));
  const std::vector<Edge>* expected = nullptr;
  if (edges_.compare_exchange_strong(expected, fresh.get(),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire))
    return *fresh.release();
  return *expected;
}

double regionDistance(const Region& a, const Region& b, Metric m) {
  if (a.empty() || b.empty()) return std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  for (const Rect& ra : a.rects()) {
    for (const Rect& rb : b.rects()) {
      // Half-open rects: the closed point set is [lo, hi] shrunk by one ulp;
      // for distance purposes use the closed hull minus nothing -- distances
      // between half-open unions equal distances between their closures.
      best = std::min(best, rectDistance(ra, rb, m));
      if (best == 0) return 0;
    }
  }
  return best;
}

bool regionsTouch(const Region& a, const Region& b) {
  if (a.empty() || b.empty()) return false;
  if (!closedTouch(a.bbox(), b.bbox())) return false;
  // Tiny operands (1-4 rect element regions) cannot amortize the SoA
  // view's four heap allocations; the quadratic early-exit walk is both
  // faster there and the semantic oracle, so identity is free.
  if (a.rects().size() * b.rects().size() < 64)
    return regionsTouchScalar(a, b);
  const Region::SoA& sb = b.soa();
  const std::size_t nb = sb.size();
  const Coord* bxlo = sb.xlo.data();
  const Coord* bylo = sb.ylo.data();
  const Coord* bxhi = sb.xhi.data();
  const Coord* byhi = sb.yhi.data();
  for (const Rect& ra : a.rects()) {
    const Coord ax1 = ra.lo.x, ax2 = ra.hi.x, ay1 = ra.lo.y, ay2 = ra.hi.y;
    std::uint8_t any = 0;
    // Branchless closed-touch mask; the |= reduction autovectorizes.
    for (std::size_t j = 0; j < nb; ++j) {
      any |= static_cast<std::uint8_t>((ax1 <= bxhi[j]) & (bxlo[j] <= ax2) &
                                       (ay1 <= byhi[j]) & (bylo[j] <= ay2));
    }
    if (any) return true;
  }
  return false;
}

bool regionsTouchScalar(const Region& a, const Region& b) {
  for (const Rect& ra : a.rects())
    for (const Rect& rb : b.rects())
      if (closedTouch(ra, rb)) return true;
  return false;
}

}  // namespace dic::geom
