#include "geom/region.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <map>

namespace dic::geom {

namespace {

/// x-interval with [lo,hi).
struct Iv {
  Coord lo, hi;
  friend bool operator==(const Iv&, const Iv&) = default;
};

/// One open vertical column being grown during the sweep.
struct Column {
  Coord x1, x2, y1;
};

bool evalOp(bool a, bool b, int op) {
  switch (op) {
    case 0: return a || b;   // Or
    case 1: return a && b;   // And
    case 2: return a && !b;  // Sub
    default: return a != b;  // Xor
  }
}

/// Core scanline boolean over two (possibly overlapping, unnormalized)
/// rect sets. Returns the canonical maximal-column decomposition.
std::vector<Rect> sweep(const std::vector<Rect>& ra,
                        const std::vector<Rect>& rb, int op) {
  // Collect slab boundaries.
  std::vector<Coord> ys;
  ys.reserve(2 * (ra.size() + rb.size()));
  for (const Rect& r : ra) {
    if (!r.empty()) {
      ys.push_back(r.lo.y);
      ys.push_back(r.hi.y);
    }
  }
  for (const Rect& r : rb) {
    if (!r.empty()) {
      ys.push_back(r.lo.y);
      ys.push_back(r.hi.y);
    }
  }
  if (ys.empty()) return {};
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  // Rects sorted by lo.y for incremental activation.
  auto byLoY = [](const Rect& a, const Rect& b) { return a.lo.y < b.lo.y; };
  std::vector<Rect> sa, sb;
  sa.reserve(ra.size());
  sb.reserve(rb.size());
  for (const Rect& r : ra)
    if (!r.empty()) sa.push_back(r);
  for (const Rect& r : rb)
    if (!r.empty()) sb.push_back(r);
  std::sort(sa.begin(), sa.end(), byLoY);
  std::sort(sb.begin(), sb.end(), byLoY);

  std::vector<Rect> active_a, active_b;
  std::size_t ia = 0, ib = 0;

  // x-event: +1/-1 on the A or B coverage count.
  struct XEv {
    Coord x;
    int da, db;
  };
  std::vector<XEv> xev;
  std::vector<Iv> cur, prev;
  std::vector<Column> open, nextOpen;
  std::vector<Rect> out;

  Coord prevY = 0;
  bool first = true;
  for (std::size_t si = 0; si + 1 <= ys.size(); ++si) {
    const Coord y0 = ys[si];
    // Close columns if there is a discontinuity (cannot happen with
    // contiguous slabs, but keep the invariant explicit).
    if (!first && prevY != y0) {
      for (const Column& c : open) out.push_back({{c.x1, c.y1}, {c.x2, prevY}});
      open.clear();
    }
    first = false;
    if (si + 1 == ys.size()) break;
    const Coord y1 = ys[si + 1];

    // Update active sets.
    std::erase_if(active_a, [y0](const Rect& r) { return r.hi.y <= y0; });
    std::erase_if(active_b, [y0](const Rect& r) { return r.hi.y <= y0; });
    while (ia < sa.size() && sa[ia].lo.y <= y0) {
      if (sa[ia].hi.y > y0) active_a.push_back(sa[ia]);
      ++ia;
    }
    while (ib < sb.size() && sb[ib].lo.y <= y0) {
      if (sb[ib].hi.y > y0) active_b.push_back(sb[ib]);
      ++ib;
    }

    // 1-D sweep over x for this slab.
    xev.clear();
    for (const Rect& r : active_a) {
      xev.push_back({r.lo.x, +1, 0});
      xev.push_back({r.hi.x, -1, 0});
    }
    for (const Rect& r : active_b) {
      xev.push_back({r.lo.x, 0, +1});
      xev.push_back({r.hi.x, 0, -1});
    }
    std::sort(xev.begin(), xev.end(),
              [](const XEv& a, const XEv& b) { return a.x < b.x; });

    cur.clear();
    int ca = 0, cb = 0;
    bool inside = false;
    Coord start = 0;
    std::size_t k = 0;
    while (k < xev.size()) {
      const Coord x = xev[k].x;
      while (k < xev.size() && xev[k].x == x) {
        ca += xev[k].da;
        cb += xev[k].db;
        ++k;
      }
      const bool now = evalOp(ca > 0, cb > 0, op);
      if (now && !inside) {
        start = x;
        inside = true;
      } else if (!now && inside) {
        if (x > start) cur.push_back({start, x});
        inside = false;
      }
    }
    assert(!inside && ca == 0 && cb == 0);

    // Merge with open columns.
    nextOpen.clear();
    std::size_t oi = 0, ci = 0;
    while (oi < open.size() || ci < cur.size()) {
      if (oi < open.size() && ci < cur.size() && open[oi].x1 == cur[ci].lo &&
          open[oi].x2 == cur[ci].hi) {
        nextOpen.push_back(open[oi]);  // column continues
        ++oi;
        ++ci;
      } else if (oi < open.size() &&
                 (ci == cur.size() || open[oi].x1 < cur[ci].lo ||
                  (open[oi].x1 == cur[ci].lo && open[oi].x2 != cur[ci].hi))) {
        out.push_back({{open[oi].x1, open[oi].y1}, {open[oi].x2, y0}});
        ++oi;
      } else {
        nextOpen.push_back({cur[ci].lo, cur[ci].hi, y0});
        ++ci;
      }
    }
    std::swap(open, nextOpen);
    prevY = y1;
  }
  for (const Column& c : open) out.push_back({{c.x1, c.y1}, {c.x2, prevY}});

  std::sort(out.begin(), out.end(), [](const Rect& a, const Rect& b) {
    return a.lo.y != b.lo.y ? a.lo.y < b.lo.y : a.lo.x < b.lo.x;
  });
  return out;
}

}  // namespace

Region::Region(const Rect& r) {
  if (!r.empty()) rects_.push_back(r);
}

Region Region::fromRects(std::span<const Rect> rects) {
  std::vector<Rect> raw(rects.begin(), rects.end());
  return Region(sweep(raw, {}, 0));
}

Coord Region::area() const {
  Coord a = 0;
  for (const Rect& r : rects_) a += r.area();
  return a;
}

Rect Region::bbox() const {
  Rect b{{0, 0}, {0, 0}};
  for (const Rect& r : rects_) b = bound(b, r);
  return b;
}

bool Region::contains(Point p) const {
  for (const Rect& r : rects_) {
    if (r.contains(p)) return true;
    if (r.lo.y > p.y) break;  // sorted by lo.y: no later rect can contain p
  }
  return false;
}

bool Region::covers(const Rect& q) const {
  if (q.empty()) return true;
  return subtract(Region(q), *this).empty();
}

bool Region::overlaps(const Region& o) const {
  // Cheap bbox reject, then rect-pair scan (exact).
  if (!geom::overlaps(bbox(), o.bbox())) return false;
  for (const Rect& a : rects_)
    for (const Rect& b : o.rects_)
      if (geom::overlaps(a, b)) return true;
  return false;
}

Region Region::boolop(const Region& a, const Region& b, Op op) {
  return Region(sweep(a.rects_, b.rects_, static_cast<int>(op)));
}

Region unite(const Region& a, const Region& b) {
  return Region::boolop(a, b, Region::Op::kOr);
}
Region intersect(const Region& a, const Region& b) {
  return Region::boolop(a, b, Region::Op::kAnd);
}
Region subtract(const Region& a, const Region& b) {
  return Region::boolop(a, b, Region::Op::kSub);
}
Region exclusiveOr(const Region& a, const Region& b) {
  return Region::boolop(a, b, Region::Op::kXor);
}

Region Region::expanded(Coord d) const {
  if (d == 0 || rects_.empty()) return *this;
  assert(d > 0);
  std::vector<Rect> infl;
  infl.reserve(rects_.size());
  for (const Rect& r : rects_) infl.push_back(r.inflated(d));
  return fromRects(infl);
}

Region Region::shrunk(Coord d) const {
  if (d == 0 || rects_.empty()) return *this;
  assert(d > 0);
  const Rect frame = bbox().inflated(2 * d + 2);
  const Region comp = subtract(Region(frame), *this);
  return subtract(Region(frame), comp.expanded(d));
}

Region Region::scaled(Coord k) const {
  Region r;
  r.rects_.reserve(rects_.size());
  for (const Rect& q : rects_)
    r.rects_.push_back({{q.lo.x * k, q.lo.y * k}, {q.hi.x * k, q.hi.y * k}});
  return r;
}

Region Region::transformed(const Transform& t) const {
  std::vector<Rect> moved;
  moved.reserve(rects_.size());
  for (const Rect& r : rects_) moved.push_back(t.apply(r));
  // Orientation can reorder/mirror; renormalize to the canonical form.
  return fromRects(moved);
}

Region Region::translated(Point v) const {
  Region r;
  r.rects_.reserve(rects_.size());
  for (const Rect& q : rects_) r.rects_.push_back(q.translated(v));
  return r;
}

namespace {

/// Subtract sorted disjoint interval list b from a (1-D, half-open).
std::vector<Iv> ivSubtract(const std::vector<Iv>& a, const std::vector<Iv>& b) {
  std::vector<Iv> out;
  std::size_t j = 0;
  for (const Iv& iv : a) {
    Coord lo = iv.lo;
    while (j < b.size() && b[j].hi <= lo) ++j;
    std::size_t k = j;
    while (k < b.size() && b[k].lo < iv.hi) {
      if (b[k].lo > lo) out.push_back({lo, b[k].lo});
      lo = std::max(lo, b[k].hi);
      if (lo >= iv.hi) break;
      ++k;
    }
    if (lo < iv.hi) out.push_back({lo, iv.hi});
  }
  return out;
}

void appendSorted(std::vector<Iv>& v) {
  std::sort(v.begin(), v.end(),
            [](const Iv& a, const Iv& b) { return a.lo < b.lo; });
  // Merge abutting/overlapping (disjoint rects can abut within one line).
  std::vector<Iv> m;
  for (const Iv& iv : v) {
    if (!m.empty() && iv.lo <= m.back().hi)
      m.back().hi = std::max(m.back().hi, iv.hi);
    else
      m.push_back(iv);
  }
  v = std::move(m);
}

}  // namespace

std::vector<Edge> Region::edges() const {
  std::vector<Edge> out;
  // Vertical boundaries: at each x, "starts" (lo.x, interior right) minus
  // "ends" (hi.x, interior left); where they coincide the rects abut and
  // there is no boundary.
  {
    std::map<Coord, std::pair<std::vector<Iv>, std::vector<Iv>>> at;
    for (const Rect& r : rects_) {
      at[r.lo.x].first.push_back({r.lo.y, r.hi.y});
      at[r.hi.x].second.push_back({r.lo.y, r.hi.y});
    }
    for (auto& [x, se] : at) {
      appendSorted(se.first);
      appendSorted(se.second);
      for (const Iv& iv : ivSubtract(se.first, se.second))
        out.push_back({x, iv.lo, iv.hi, InteriorSide::kRight});
      for (const Iv& iv : ivSubtract(se.second, se.first))
        out.push_back({x, iv.lo, iv.hi, InteriorSide::kLeft});
    }
  }
  // Horizontal boundaries.
  {
    std::map<Coord, std::pair<std::vector<Iv>, std::vector<Iv>>> at;
    for (const Rect& r : rects_) {
      at[r.lo.y].first.push_back({r.lo.x, r.hi.x});
      at[r.hi.y].second.push_back({r.lo.x, r.hi.x});
    }
    for (auto& [y, se] : at) {
      appendSorted(se.first);
      appendSorted(se.second);
      for (const Iv& iv : ivSubtract(se.first, se.second))
        out.push_back({y, iv.lo, iv.hi, InteriorSide::kAbove});
      for (const Iv& iv : ivSubtract(se.second, se.first))
        out.push_back({y, iv.lo, iv.hi, InteriorSide::kBelow});
    }
  }
  return out;
}

double regionDistance(const Region& a, const Region& b, Metric m) {
  if (a.empty() || b.empty()) return std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  for (const Rect& ra : a.rects()) {
    for (const Rect& rb : b.rects()) {
      // Half-open rects: the closed point set is [lo, hi] shrunk by one ulp;
      // for distance purposes use the closed hull minus nothing -- distances
      // between half-open unions equal distances between their closures.
      best = std::min(best, rectDistance(ra, rb, m));
      if (best == 0) return 0;
    }
  }
  return best;
}

}  // namespace dic::geom
