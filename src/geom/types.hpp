#pragma once
/// \file types.hpp
/// Fundamental coordinate types for the DIC geometry kernel.
///
/// All database coordinates are 64-bit integers. Following CIF convention
/// the database unit is one centimicron (1/100 um); the Mead-Conway lambda
/// used by the built-in NMOS technology is 250 units (2.5 um).

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace dic::geom {

/// Database coordinate. Signed 64-bit: layouts of 1e9 units square with
/// exact 1e18 areas are representable without overflow.
using Coord = std::int64_t;

/// A point (or displacement vector) in database units.
struct Point {
  Coord x{0};
  Coord y{0};

  friend constexpr bool operator==(const Point&, const Point&) = default;
  friend constexpr auto operator<=>(const Point&, const Point&) = default;

  constexpr Point operator+(Point o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(Point o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(Coord k) const { return {x * k, y * k}; }
  constexpr Point operator-() const { return {-x, -y}; }
  constexpr Point& operator+=(Point o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Point& operator-=(Point o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
};

/// Dot product.
constexpr Coord dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

/// Z component of the cross product; >0 when b is counter-clockwise from a.
constexpr Coord cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

/// Euclidean length as a double (exact up to ~2^53).
inline double length(Point a) {
  return std::hypot(static_cast<double>(a.x), static_cast<double>(a.y));
}

/// Squared Euclidean length (exact in integers while |a| < ~3e9).
constexpr Coord length2(Point a) { return a.x * a.x + a.y * a.y; }

/// Chebyshev (orthogonal-expand) length: max(|x|,|y|).
constexpr Coord chebyshev(Point a) {
  const Coord ax = a.x < 0 ? -a.x : a.x;
  const Coord ay = a.y < 0 ? -a.y : a.y;
  return ax > ay ? ax : ay;
}

/// Distance metric selector. The paper contrasts Euclidean expand/shrink
/// (disc structuring element) with Orthogonal (square structuring element,
/// i.e. the Chebyshev metric) -- see Fig. 3 and Fig. 4.
enum class Metric : std::uint8_t {
  kEuclidean,
  kOrthogonal,
};

/// Distance between two points under the given metric, as a double.
inline double pointDistance(Point a, Point b, Metric m) {
  const Point d = b - a;
  return m == Metric::kEuclidean ? length(d)
                                 : static_cast<double>(chebyshev(d));
}

/// Printable form "(x,y)" for diagnostics.
inline std::string toString(Point p) {
  return "(" + std::to_string(p.x) + "," + std::to_string(p.y) + ")";
}

}  // namespace dic::geom
