#pragma once
/// \file spatial.hpp
/// A simple uniform-grid spatial index over rect-keyed items. Used by the
/// interaction checker and the netlist extractor to find candidate pairs
/// without quadratic scans.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "geom/rect.hpp"

namespace dic::geom {

class GridIndex {
 public:
  /// `cellSize` should be on the order of the largest interaction
  /// distance times a few (e.g. 16 * max spacing).
  explicit GridIndex(Coord cellSize) : cell_(cellSize > 0 ? cellSize : 1) {}

  /// Insert an item with the given bounding box; `id` is caller-defined.
  void insert(std::size_t id, const Rect& bbox) {
    forEachCell(bbox, [&](std::uint64_t key) { grid_[key].push_back(id); });
    boxes_.push_back({id, bbox});
  }

  /// Collect ids whose grid cells intersect `query` (deduplicated;
  /// candidates only -- caller re-tests exact geometry).
  std::vector<std::size_t> query(const Rect& query) const {
    std::vector<std::size_t> out;
    queryInto(query, out);
    return out;
  }

  /// query() into a caller-owned buffer (cleared first): the hot-path
  /// form, letting per-check loops reuse one allocation across calls.
  /// Result is sorted and deduplicated, same as query().
  void queryInto(const Rect& query, std::vector<std::size_t>& out) const {
    out.clear();
    queryRaw(query, out);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }

  /// Append raw bucket contents for every cell `query` touches, without
  /// sorting or deduplication -- ids spanning several cells appear once
  /// per cell. For callers that dedup as part of a later exact test.
  void queryRaw(const Rect& query, std::vector<std::size_t>& out) const {
    forEachCell(query, [&](std::uint64_t key) {
      auto it = grid_.find(key);
      if (it != grid_.end())
        out.insert(out.end(), it->second.begin(), it->second.end());
    });
  }

  /// Move item `id` to a new bounding box, splicing only the grid cells
  /// the old and new boxes touch. The patched index is content-identical
  /// to one freshly built with the new box: the id is re-inserted into
  /// each destination bucket at its sorted position, which is where a
  /// sequential rebuild would have put it (views insert ids in ascending
  /// order). Returns false — and changes nothing — if `id` is not
  /// present.
  bool update(std::size_t id, const Rect& newBbox) {
    // The common caller (a HierarchyView flat index) inserts id k as the
    // k-th item, so boxes_[id] is usually the entry; fall back to a scan.
    std::size_t slot = boxes_.size();
    if (id < boxes_.size() && boxes_[id].first == id) {
      slot = id;
    } else {
      for (std::size_t i = 0; i < boxes_.size(); ++i)
        if (boxes_[i].first == id) {
          slot = i;
          break;
        }
    }
    if (slot == boxes_.size()) return false;
    const Rect oldBbox = boxes_[slot].second;
    forEachCell(oldBbox, [&](std::uint64_t key) {
      auto it = grid_.find(key);
      if (it == grid_.end()) return;
      std::vector<std::size_t>& ids = it->second;
      auto pos = std::find(ids.begin(), ids.end(), id);
      if (pos != ids.end()) ids.erase(pos);
      if (ids.empty()) grid_.erase(it);
    });
    forEachCell(newBbox, [&](std::uint64_t key) {
      std::vector<std::size_t>& ids = grid_[key];
      ids.insert(std::lower_bound(ids.begin(), ids.end(), id), id);
    });
    boxes_[slot].second = newBbox;
    return true;
  }

  std::size_t size() const { return boxes_.size(); }

  /// Approximate heap footprint of the index, bytes: the per-cell bucket
  /// vectors plus the insertion-order box list. Feeds the engine's
  /// view-cache memory accounting (flat views and their grids dominate a
  /// cached hierarchy view).
  std::size_t memoryBytes() const {
    std::size_t b = boxes_.capacity() * sizeof(boxes_[0]);
    b += grid_.bucket_count() * sizeof(void*);
    for (const auto& [key, ids] : grid_) {
      (void)key;
      b += sizeof(std::uint64_t) + sizeof(ids) +
           ids.capacity() * sizeof(std::size_t);
    }
    return b;
  }

 private:
  /// Zig-zag encoding maps signed cell coordinates to unsigned so that
  /// small-magnitude negatives stay small; the key packs the two encoded
  /// halves into disjoint 32-bit fields. (The previous
  /// `(gx << 24) ^ (gy & 0xffffff)` scheme aliased negative gy rows onto
  /// large positive ones and leaked gx bits into the gy field on wide
  /// layouts, degenerating buckets.)
  static constexpr std::uint64_t zigzag(Coord v) {
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
  }

  template <typename F>
  void forEachCell(const Rect& r, F&& f) const {
    const Coord x0 = floorDiv(r.lo.x), x1 = floorDiv(r.hi.x);
    const Coord y0 = floorDiv(r.lo.y), y1 = floorDiv(r.hi.y);
    for (Coord gy = y0; gy <= y1; ++gy)
      for (Coord gx = x0; gx <= x1; ++gx)
        f((zigzag(gx) << 32) | (zigzag(gy) & 0xffffffffu));
  }

  Coord floorDiv(Coord v) const {
    return v >= 0 ? v / cell_ : -((-v + cell_ - 1) / cell_);
  }

  Coord cell_;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> grid_;
  std::vector<std::pair<std::size_t, Rect>> boxes_;
};

}  // namespace dic::geom
