#include "geom/transform.hpp"

namespace dic::geom {

Orient orientFromMatrix(const OrientMatrix& m) {
  for (int i = 0; i < 8; ++i) {
    const auto o = static_cast<Orient>(i);
    const OrientMatrix c = orientMatrix(o);
    if (c.a == m.a && c.b == m.b && c.c == m.c && c.d == m.d) return o;
  }
  return Orient::kR0;  // unreachable for valid inputs
}

Orient compose(Orient first, Orient second) {
  const OrientMatrix f = orientMatrix(first);
  const OrientMatrix s = orientMatrix(second);
  // second * first (column vectors).
  const OrientMatrix r{s.a * f.a + s.b * f.c, s.a * f.b + s.b * f.d,
                       s.c * f.a + s.d * f.c, s.c * f.b + s.d * f.d};
  return orientFromMatrix(r);
}

Transform compose(const Transform& first, const Transform& second) {
  Transform r;
  r.orient = compose(first.orient, second.orient);
  // second(first(p)) = S*(F*p + tf) + ts = (S*F)p + (S*tf + ts)
  const OrientMatrix s = orientMatrix(second.orient);
  r.t = {s.a * first.t.x + s.b * first.t.y + second.t.x,
         s.c * first.t.x + s.d * first.t.y + second.t.y};
  return r;
}

Transform inverse(const Transform& t) {
  const OrientMatrix m = orientMatrix(t.orient);
  // Orthogonal matrices with integer entries: inverse == transpose.
  const OrientMatrix inv{m.a, m.c, m.b, m.d};
  Transform r;
  r.orient = orientFromMatrix(inv);
  r.t = {-(inv.a * t.t.x + inv.b * t.t.y), -(inv.c * t.t.x + inv.d * t.t.y)};
  return r;
}

}  // namespace dic::geom
