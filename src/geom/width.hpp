#pragma once
/// \file width.hpp
/// Width checking.
///
/// Two techniques, per the paper:
///  * checkWidthEdges(): edge-based check on the true region boundary --
///    finds interior-facing opposing edge pairs closer than the minimum.
///    No corner pathologies; this is what the DIC element check uses.
///  * checkWidthShrinkExpand(): the traditional shrink-expand-compare
///    technique (Lindsay & Preas [7]); in Euclidean mode it exhibits the
///    Fig. 4 false error at every convex corner.

#include <vector>

#include "geom/expand.hpp"
#include "geom/region.hpp"

namespace dic::geom {

/// A width violation: the offending neck and the measured width.
struct WidthViolation {
  Rect where;
  Coord measured{0};

  friend bool operator==(const WidthViolation&,
                         const WidthViolation&) = default;
};

/// Edge-based width check: flags every interior neck narrower than
/// `minWidth` between opposing boundary edges (both axes). Exact for
/// Manhattan regions (necks in Manhattan geometry are axis-aligned).
///
/// Vectorized: the edge walk runs over SoA position/span arrays with a
/// branchless overlap mask; surviving candidates get the exact interior
/// test in original order. Byte-identical to checkWidthEdgesScalar.
std::vector<WidthViolation> checkWidthEdges(const Region& r, Coord minWidth);

/// Scalar reference for checkWidthEdges (differential-test oracle).
std::vector<WidthViolation> checkWidthEdgesScalar(const Region& r,
                                                  Coord minWidth);

/// Traditional shrink-expand-compare width check: shrink by minWidth/2,
/// expand back, compare with the original; differences are flagged.
/// kOrthogonal mode is computed with exact square morphology.
/// kEuclidean mode additionally produces the per-convex-corner defects
/// (disc opening), reproducing the paper's "errors at every corner".
/// minWidth must be even (database units are fine enough to ensure this).
std::vector<WidthViolation> checkWidthShrinkExpand(const Region& r,
                                                   Coord minWidth, Metric m);

}  // namespace dic::geom
