#pragma once
/// \file spacing.hpp
/// Spacing checks between Manhattan regions under either metric.
///
/// The traditional technique is expand-by-half-spacing and check overlap;
/// for unions of rects that is exactly equivalent to a rect-pair distance
/// test, which is what we compute (no approximation):
///   * kOrthogonal: overlap of square-expanded shapes <=> Chebyshev
///     distance < s.
///   * kEuclidean: overlap of disc-expanded shapes <=> Euclidean distance
///     < s.
/// Fig. 4 (right) pathology: the two metrics disagree on diagonal
/// (corner-to-corner) configurations; checkSpacing reports the measured
/// distance so callers can quantify the disagreement band.

#include <optional>
#include <vector>

#include "geom/region.hpp"

namespace dic::geom {

/// A spacing violation between two shapes.
struct SpacingViolation {
  Rect a;             ///< offending rect from the first region
  Rect b;             ///< offending rect from the second region
  double measured{0}; ///< distance under the metric used
};

/// All rect pairs of a and b closer than `minSpacing` under metric m.
/// Touching/overlapping pairs report distance 0 (callers decide whether
/// touching is legal -- e.g. connected elements on the same net).
///
/// Vectorized: a branchless integer gap mask over b's SoA view prefilters
/// candidate pairs, then the surviving pairs get the exact scalar distance
/// in original pair order -- output is byte-identical to checkSpacingScalar.
std::vector<SpacingViolation> checkSpacing(const Region& a, const Region& b,
                                           Coord minSpacing, Metric m);

/// Scalar reference for checkSpacing (differential-test oracle).
std::vector<SpacingViolation> checkSpacingScalar(const Region& a,
                                                 const Region& b,
                                                 Coord minSpacing, Metric m);

/// Minimum distance between regions under metric m with an early-out
/// threshold: returns nullopt if provably >= `bound`.
///
/// Vectorized: integer Chebyshev gaps over the SoA view bound the metric
/// from below; exact doubles are only evaluated on surviving pairs. The
/// min is order-independent, so the result is bit-identical to the scalar
/// reference.
std::optional<double> distanceBelow(const Region& a, const Region& b,
                                    Coord bound, Metric m);

/// Scalar reference for distanceBelow (differential-test oracle).
std::optional<double> distanceBelowScalar(const Region& a, const Region& b,
                                          Coord bound, Metric m);

}  // namespace dic::geom
