#pragma once
/// \file polygon.hpp
/// Simple polygons. Manhattan polygons convert exactly to Region; general
/// polygons support the "more general purpose polygon routines" the paper
/// mentions (area, containment, pairwise distance, width checking).

#include <vector>

#include "geom/region.hpp"
#include "geom/types.hpp"

namespace dic::geom {

/// A simple (non-self-intersecting) polygon. Vertices are stored in
/// counter-clockwise order after normalize(); consecutive duplicate and
/// collinear vertices are removed.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return v_; }
  bool empty() const { return v_.size() < 3; }
  std::size_t size() const { return v_.size(); }

  /// Twice the signed area (positive for CCW input before normalization;
  /// always positive after construction).
  Coord twiceArea() const;

  /// Area as double (halves twiceArea; may be .5 for diagonal polygons).
  double area() const { return static_cast<double>(twiceArea()) / 2.0; }

  Rect bbox() const;

  /// True if every edge is axis-parallel.
  bool isManhattan() const;

  /// Point containment (boundary counts as inside).
  bool contains(Point p) const;

  /// Exact conversion of a Manhattan polygon to a Region (even-odd fill).
  /// Precondition: isManhattan().
  Region toRegion() const;

  Polygon translated(Point t) const;
  Polygon transformed(const Transform& t) const;

 private:
  std::vector<Point> v_;
};

/// Minimum Euclidean distance between two polygon boundaries (0 if they
/// intersect or one contains the other).
double polygonDistance(const Polygon& a, const Polygon& b);

/// Minimum distance between two segments [a1,a2], [b1,b2].
double segmentDistance(Point a1, Point a2, Point b1, Point b2);

/// Distance from point p to segment [a,b].
double pointSegmentDistance(Point p, Point a, Point b);

}  // namespace dic::geom
