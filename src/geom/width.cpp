#include "geom/width.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace dic::geom {

namespace {

/// Thread-confined SoA scratch for the vectorized edge walk.
struct WidthScratch {
  std::vector<Coord> pos, lo, hi;        // gathered candidate edges (unsorted)
  std::vector<Coord> sPos, sLo, sHi;     // sorted-by-pos SoA arrays
  std::vector<std::uint32_t> idx;
  std::vector<std::uint8_t> mask;
};

WidthScratch& widthScratch() {
  static thread_local WidthScratch s;
  return s;
}

}  // namespace

std::vector<WidthViolation> checkWidthEdges(const Region& r, Coord minWidth) {
  std::vector<WidthViolation> out;
  const std::vector<Edge>& es = r.edges();
  WidthScratch& ws = widthScratch();

  // One side of the walk: gather matching edges into SoA arrays sorted by
  // pos. Sorting an index vector with the scalar's pos-only comparator
  // reproduces the scalar sort's permutation (the comparator never sees
  // the element type), which keeps the emission order byte-identical.
  auto gather = [&](bool vertical, bool loSide, std::vector<Coord>& pos,
                    std::vector<Coord>& lo, std::vector<Coord>& hi) {
    ws.pos.clear();
    ws.lo.clear();
    ws.hi.clear();
    for (const Edge& e : es) {
      if (e.vertical() != vertical) continue;
      const bool isLo = e.interior == InteriorSide::kRight ||
                        e.interior == InteriorSide::kAbove;
      if (isLo != loSide) continue;
      ws.pos.push_back(e.pos);
      ws.lo.push_back(e.lo);
      ws.hi.push_back(e.hi);
    }
    const std::size_t n = ws.pos.size();
    ws.idx.resize(n);
    for (std::size_t i = 0; i < n; ++i) ws.idx[i] = static_cast<std::uint32_t>(i);
    std::sort(ws.idx.begin(), ws.idx.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                return ws.pos[a] < ws.pos[b];
              });
    pos.resize(n);
    lo.resize(n);
    hi.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t k = ws.idx[i];
      pos[i] = ws.pos[k];
      lo[i] = ws.lo[k];
      hi[i] = ws.hi[k];
    }
  };

  auto scan = [&](bool vertical) {
    static thread_local std::vector<Coord> aPos, aLo, aHi, bPos, bLo, bHi;
    gather(vertical, true, aPos, aLo, aHi);    // interior toward +axis
    gather(vertical, false, bPos, bLo, bHi);   // interior toward -axis
    const std::size_t nb = bPos.size();
    if (ws.mask.size() < nb) ws.mask.resize(nb);
    std::uint8_t* mask = ws.mask.data();
    const Coord* bp = bPos.data();
    const Coord* bl = bLo.data();
    const Coord* bh = bHi.data();
    std::size_t j0 = 0;
    for (std::size_t i = 0; i < aPos.size(); ++i) {
      const Coord ap = aPos[i], al = aLo[i], ah = aHi[i];
      while (j0 < nb && bp[j0] <= ap) ++j0;
      std::size_t jend = j0;
      while (jend < nb && bp[jend] - ap < minWidth) ++jend;
      // Branchless span-overlap mask over the candidate window.
#pragma GCC ivdep
      for (std::size_t j = j0; j < jend; ++j) {
        const Coord s1 = al > bl[j] ? al : bl[j];
        const Coord s2 = ah < bh[j] ? ah : bh[j];
        mask[j] = static_cast<std::uint8_t>(s1 < s2);
      }
      // Exact tail in ascending-j order (matches the scalar inner loop).
      for (std::size_t j = j0; j < jend; ++j) {
        if (!mask[j]) continue;
        const Coord s1 = std::max(al, bl[j]);
        const Coord s2 = std::min(ah, bh[j]);
        // Confirm the gap is interior (width, not spacing).
        const Point mid = vertical ? Point{(ap + bp[j]) / 2, (s1 + s2) / 2}
                                   : Point{(s1 + s2) / 2, (ap + bp[j]) / 2};
        if (!r.contains(mid)) continue;
        const Rect where = vertical ? Rect{{ap, s1}, {bp[j], s2}}
                                    : Rect{{s1, ap}, {s2, bp[j]}};
        out.push_back({where, bp[j] - ap});
      }
    }
  };
  scan(true);
  scan(false);
  return out;
}

std::vector<WidthViolation> checkWidthEdgesScalar(const Region& r,
                                                  Coord minWidth) {
  std::vector<WidthViolation> out;
  const std::vector<Edge>& es = r.edges();

  // Vertical necks: interior-right edge at x=a vs interior-left edge at
  // x=b, a < b < a+minWidth, overlapping y spans, interior between them.
  auto scan = [&](bool vertical) {
    std::vector<const Edge*> lo, hi;  // lo: interior toward +axis
    for (const Edge& e : es) {
      if (e.vertical() != vertical) continue;
      if (e.interior == InteriorSide::kRight ||
          e.interior == InteriorSide::kAbove)
        lo.push_back(&e);
      else
        hi.push_back(&e);
    }
    auto byPos = [](const Edge* a, const Edge* b) { return a->pos < b->pos; };
    std::sort(lo.begin(), lo.end(), byPos);
    std::sort(hi.begin(), hi.end(), byPos);
    std::size_t j0 = 0;
    for (const Edge* a : lo) {
      while (j0 < hi.size() && hi[j0]->pos <= a->pos) ++j0;
      for (std::size_t j = j0; j < hi.size(); ++j) {
        const Edge* b = hi[j];
        if (b->pos - a->pos >= minWidth) break;
        const Coord s1 = std::max(a->lo, b->lo);
        const Coord s2 = std::min(a->hi, b->hi);
        if (s1 >= s2) continue;
        // Confirm the gap is interior (width, not spacing).
        const Point mid = vertical
                              ? Point{(a->pos + b->pos) / 2, (s1 + s2) / 2}
                              : Point{(s1 + s2) / 2, (a->pos + b->pos) / 2};
        if (!r.contains(mid)) continue;
        const Rect where = vertical ? Rect{{a->pos, s1}, {b->pos, s2}}
                                    : Rect{{s1, a->pos}, {s2, b->pos}};
        out.push_back({where, b->pos - a->pos});
      }
    }
  };
  scan(true);
  scan(false);
  return out;
}

std::vector<WidthViolation> checkWidthShrinkExpand(const Region& r,
                                                   Coord minWidth, Metric m) {
  assert(minWidth % 2 == 0 && "database grid must resolve half-min-width");
  const Coord h = minWidth / 2;
  std::vector<WidthViolation> out;

  // Orthogonal opening, computed in doubled coordinates so that features
  // of *exactly* minimum width survive (their half-open erosion by h
  // would otherwise vanish): shrink by minWidth-1 in 2x space keeps a
  // 2-unit core for legal features and drops anything strictly narrower.
  const Region r2 = r.scaled(2);
  const Region opened2 = r2.shrunk(minWidth - 1).expanded(minWidth - 1);
  const Region diff2 = subtract(r2, opened2);
  for (const Rect& d : diff2.rects()) {
    const Rect d1 = makeRect(d.lo.x / 2, d.lo.y / 2, (d.hi.x + 1) / 2,
                             (d.hi.y + 1) / 2);
    if (!d1.empty()) out.push_back({d1, 0});
  }

  if (m == Metric::kEuclidean) {
    // Disc opening additionally fails at every convex corner (Fig. 4):
    // the dilated disc cannot reproduce a square corner.
    for (const Rect& defect : openingCornerDefects(r, h)) {
      // Skip corners already flagged by the orthogonal diff.
      bool dup = false;
      for (const WidthViolation& v : out)
        if (overlaps(v.where, defect)) dup = true;
      if (!dup) out.push_back({defect, 0});
    }
  }
  return out;
}

}  // namespace dic::geom
