#include "geom/width.hpp"

#include <algorithm>
#include <cassert>

namespace dic::geom {

std::vector<WidthViolation> checkWidthEdges(const Region& r, Coord minWidth) {
  std::vector<WidthViolation> out;
  const std::vector<Edge> es = r.edges();

  // Vertical necks: interior-right edge at x=a vs interior-left edge at
  // x=b, a < b < a+minWidth, overlapping y spans, interior between them.
  auto scan = [&](bool vertical) {
    std::vector<const Edge*> lo, hi;  // lo: interior toward +axis
    for (const Edge& e : es) {
      if (e.vertical() != vertical) continue;
      if (e.interior == InteriorSide::kRight ||
          e.interior == InteriorSide::kAbove)
        lo.push_back(&e);
      else
        hi.push_back(&e);
    }
    auto byPos = [](const Edge* a, const Edge* b) { return a->pos < b->pos; };
    std::sort(lo.begin(), lo.end(), byPos);
    std::sort(hi.begin(), hi.end(), byPos);
    std::size_t j0 = 0;
    for (const Edge* a : lo) {
      while (j0 < hi.size() && hi[j0]->pos <= a->pos) ++j0;
      for (std::size_t j = j0; j < hi.size(); ++j) {
        const Edge* b = hi[j];
        if (b->pos - a->pos >= minWidth) break;
        const Coord s1 = std::max(a->lo, b->lo);
        const Coord s2 = std::min(a->hi, b->hi);
        if (s1 >= s2) continue;
        // Confirm the gap is interior (width, not spacing).
        const Point mid = vertical
                              ? Point{(a->pos + b->pos) / 2, (s1 + s2) / 2}
                              : Point{(s1 + s2) / 2, (a->pos + b->pos) / 2};
        if (!r.contains(mid)) continue;
        const Rect where = vertical ? Rect{{a->pos, s1}, {b->pos, s2}}
                                    : Rect{{s1, a->pos}, {s2, b->pos}};
        out.push_back({where, b->pos - a->pos});
      }
    }
  };
  scan(true);
  scan(false);
  return out;
}

std::vector<WidthViolation> checkWidthShrinkExpand(const Region& r,
                                                   Coord minWidth, Metric m) {
  assert(minWidth % 2 == 0 && "database grid must resolve half-min-width");
  const Coord h = minWidth / 2;
  std::vector<WidthViolation> out;

  // Orthogonal opening, computed in doubled coordinates so that features
  // of *exactly* minimum width survive (their half-open erosion by h
  // would otherwise vanish): shrink by minWidth-1 in 2x space keeps a
  // 2-unit core for legal features and drops anything strictly narrower.
  const Region r2 = r.scaled(2);
  const Region opened2 = r2.shrunk(minWidth - 1).expanded(minWidth - 1);
  const Region diff2 = subtract(r2, opened2);
  for (const Rect& d : diff2.rects()) {
    const Rect d1 = makeRect(d.lo.x / 2, d.lo.y / 2, (d.hi.x + 1) / 2,
                             (d.hi.y + 1) / 2);
    if (!d1.empty()) out.push_back({d1, 0});
  }

  if (m == Metric::kEuclidean) {
    // Disc opening additionally fails at every convex corner (Fig. 4):
    // the dilated disc cannot reproduce a square corner.
    for (const Rect& defect : openingCornerDefects(r, h)) {
      // Skip corners already flagged by the orthogonal diff.
      bool dup = false;
      for (const WidthViolation& v : out)
        if (overlaps(v.where, defect)) dup = true;
      if (!dup) out.push_back({defect, 0});
    }
  }
  return out;
}

}  // namespace dic::geom
