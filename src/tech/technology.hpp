#pragma once
/// \file technology.hpp
/// Technology description: layers, width rules, the Fig. 12 interaction
/// (spacing) matrix with same-net / different-net / related sub-cases, and
/// device rule sets.
///
/// The paper's design-rule taxonomy (section "DESIGN RULES"):
///   1. legal devices and related rules        -> DeviceRules
///   2. legal interconnect; width + connection -> Layer::minWidth
///   3. interaction rules                      -> SpacingRule matrix
///   4. non-geometric construction rules       -> erc module

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "geom/types.hpp"

namespace dic::tech {

/// A mask layer.
struct Layer {
  std::string name;     ///< human name, e.g. "metal"
  std::string cifName;  ///< CIF layer command name, e.g. "NM"
  geom::Coord minWidth{0};
  bool interconnect{true};  ///< may carry wiring between devices
};

/// Net relation between two elements, the sub-cases of Fig. 12.
enum class NetRelation : std::uint8_t {
  kSameNet,   ///< electrically equivalent (Fig. 5a: usually no check)
  kDiffNet,   ///< distinct nets: full spacing applies
  kRelated,   ///< elements of the same device ("the gate or implant of a
              ///< transistor cannot be assigned to a net")
  kUnknown,   ///< no net information (mask-level baseline checking)
};

/// One cell of the interaction matrix. A spacing of 0 means "no rule"
/// (the paper: "most of these cases are not necessary").
struct SpacingRule {
  geom::Coord sameNet{0};
  geom::Coord diffNet{0};
  geom::Coord related{0};

  geom::Coord forRelation(NetRelation r) const {
    switch (r) {
      case NetRelation::kSameNet: return sameNet;
      case NetRelation::kDiffNet: return diffNet;
      case NetRelation::kRelated: return related;
      case NetRelation::kUnknown:
        // Without net information the only safe rule is the widest one --
        // this is exactly why mask-level checkers produce false errors.
        return std::max(sameNet, std::max(diffNet, related));
    }
    return 0;
  }

  bool any() const { return sameNet | diffNet | related; }
};

/// Device classes recognized by the checker.
enum class DeviceClass : std::uint8_t {
  kEnhancementFet,
  kDepletionFet,
  kResistor,
  kContact,         ///< single-cut inter-layer contact
  kButtingContact,  ///< poly+diff butting contact (Fig. 7, legal)
  kBuriedContact,
  kBipolarNpn,      ///< for the Fig. 6 bipolar scenario
  kBipolarResistor, ///< base-diffusion resistor (Fig. 6b, legal to ISO)
  kPad,
};

/// Geometric rules for one device class (all in database units).
struct DeviceRules {
  DeviceClass cls{DeviceClass::kContact};
  geom::Coord gateOverlap{0};     ///< poly past gate (FETs)
  geom::Coord diffOverlap{0};     ///< diff past gate (FETs)
  geom::Coord implantOverlap{0};  ///< implant past gate (depletion FETs)
  geom::Coord contactEnclosure{0};///< surrounding layer past contact cut
  bool contactOverGateAllowed{false};  ///< Fig. 7: false for FETs
  bool isolationContactAllowed{false}; ///< Fig. 6: true for base resistors
};

class Technology {
 public:
  Technology(std::string name, geom::Coord lambda)
      : name_(std::move(name)), lambda_(lambda) {}

  const std::string& name() const { return name_; }
  geom::Coord lambda() const { return lambda_; }

  int addLayer(Layer l);
  const Layer& layer(int i) const { return layers_.at(i); }
  int layerCount() const { return static_cast<int>(layers_.size()); }
  std::optional<int> layerByName(const std::string& n) const;
  std::optional<int> layerByCifName(const std::string& n) const;

  /// Symmetric spacing matrix access.
  void setSpacing(int a, int b, SpacingRule r);
  const SpacingRule& spacing(int a, int b) const;

  /// Largest spacing in the matrix: the interaction search radius.
  geom::Coord maxInteractionDistance() const;

  /// Device type registry: CIF `4D` string -> rules.
  void addDeviceType(const std::string& typeName, DeviceRules rules);
  const DeviceRules* deviceRules(const std::string& typeName) const;

  /// Names of special nets.
  std::string powerNet{"VDD"};
  std::string groundNet{"GND"};
  std::string busPrefix{"BUS"};

 private:
  std::string name_;
  geom::Coord lambda_;
  std::vector<Layer> layers_;
  std::vector<std::vector<SpacingRule>> spacing_;
  std::map<std::string, DeviceRules> devices_;
};

/// The built-in NMOS technology (Mead & Conway lambda rules [12]);
/// lambda = 250 centimicrons (2.5 um).
///
/// Layers: ND diffusion, NP poly, NC contact, NM metal, NI implant,
/// NB buried, NG glass. Device types: TRAN, DTRAN (depletion), RES,
/// CON_MD, CON_MP, BUTT, BURIED, PAD.
Technology nmos();

/// A minimal bipolar technology for the Fig. 6 device-dependent rule:
/// layers ISO, BASE, EMIT, CONT, MET1; device types NPN (isolation contact
/// forbidden) and BRES (isolation contact legal).
Technology bipolar();

}  // namespace dic::tech
