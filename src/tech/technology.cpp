#include "tech/technology.hpp"

#include <algorithm>
#include <stdexcept>

namespace dic::tech {

int Technology::addLayer(Layer l) {
  const int idx = static_cast<int>(layers_.size());
  layers_.push_back(std::move(l));
  for (auto& row : spacing_) row.resize(layers_.size());
  spacing_.emplace_back(layers_.size());
  return idx;
}

std::optional<int> Technology::layerByName(const std::string& n) const {
  for (std::size_t i = 0; i < layers_.size(); ++i)
    if (layers_[i].name == n) return static_cast<int>(i);
  return std::nullopt;
}

std::optional<int> Technology::layerByCifName(const std::string& n) const {
  for (std::size_t i = 0; i < layers_.size(); ++i)
    if (layers_[i].cifName == n) return static_cast<int>(i);
  return std::nullopt;
}

void Technology::setSpacing(int a, int b, SpacingRule r) {
  spacing_.at(a).at(b) = r;
  spacing_.at(b).at(a) = r;
}

const SpacingRule& Technology::spacing(int a, int b) const {
  return spacing_.at(a).at(b);
}

geom::Coord Technology::maxInteractionDistance() const {
  geom::Coord m = 0;
  for (const auto& row : spacing_)
    for (const SpacingRule& r : row)
      m = std::max({m, r.sameNet, r.diffNet, r.related});
  return m;
}

void Technology::addDeviceType(const std::string& typeName,
                               DeviceRules rules) {
  devices_[typeName] = rules;
}

const DeviceRules* Technology::deviceRules(const std::string& typeName) const {
  auto it = devices_.find(typeName);
  return it == devices_.end() ? nullptr : &it->second;
}

Technology nmos() {
  // Mead-Conway lambda rules; lambda = 250 centimicrons.
  const geom::Coord L = 250;
  Technology t("nmos-mead-conway", L);

  const int ND = t.addLayer({"diff", "ND", 2 * L, true});
  const int NP = t.addLayer({"poly", "NP", 2 * L, true});
  const int NC = t.addLayer({"contact", "NC", 2 * L, false});
  const int NM = t.addLayer({"metal", "NM", 3 * L, true});
  const int NI = t.addLayer({"implant", "NI", 2 * L, false});
  const int NB = t.addLayer({"buried", "NB", 2 * L, false});
  t.addLayer({"glass", "NG", 2 * L, false});

  // Fig. 12 upper-triangular interaction matrix (only entries with rules;
  // "either there is no rule between those two mask layers (as in metal
  // and diffusion) or the only rules relate to primitive symbols").
  // Same-net spacing is usually unnecessary (Fig. 5a); diff-diff keeps a
  // same-net rule of 0 and diff-net 3L, etc. The "related" figure is the
  // gate-region rule for transistor elements.
  t.setSpacing(ND, ND, {.sameNet = 0, .diffNet = 3 * L, .related = 0});
  t.setSpacing(NP, NP, {.sameNet = 0, .diffNet = 2 * L, .related = 0});
  t.setSpacing(NM, NM, {.sameNet = 0, .diffNet = 3 * L, .related = 0});
  // Poly-diffusion separation: unrelated poly must clear diffusion by 1L
  // (crossing would form an undeclared transistor -- that is additionally
  // caught as an implicit-device error by the structured checker).
  t.setSpacing(NP, ND, {.sameNet = L, .diffNet = L, .related = 0});
  // Contact cuts keep 2L clear of *unrelated* poly (gates in particular);
  // geometry related to the cut's own net may overlap it (the landing).
  t.setSpacing(NC, NP, {.sameNet = 0, .diffNet = 2 * L, .related = 0});
  t.setSpacing(NB, NP, {.sameNet = 0, .diffNet = 2 * L, .related = 0});
  t.setSpacing(NB, ND, {.sameNet = 0, .diffNet = 2 * L, .related = 0});
  t.setSpacing(NI, NI, {.sameNet = 0, .diffNet = 2 * L, .related = 0});

  t.addDeviceType("TRAN", {.cls = DeviceClass::kEnhancementFet,
                           .gateOverlap = 2 * L,
                           .diffOverlap = 2 * L,
                           .implantOverlap = 0,
                           .contactEnclosure = 0,
                           .contactOverGateAllowed = false,
                           .isolationContactAllowed = false});
  t.addDeviceType("DTRAN", {.cls = DeviceClass::kDepletionFet,
                            .gateOverlap = 2 * L,
                            .diffOverlap = 2 * L,
                            .implantOverlap = 2 * L,
                            .contactEnclosure = 0,
                            .contactOverGateAllowed = false,
                            .isolationContactAllowed = false});
  t.addDeviceType("RES", {.cls = DeviceClass::kResistor,
                          .gateOverlap = 0,
                          .diffOverlap = 0,
                          .implantOverlap = 0,
                          .contactEnclosure = 0,
                          .contactOverGateAllowed = false,
                          .isolationContactAllowed = false});
  t.addDeviceType("CON_MD", {.cls = DeviceClass::kContact,
                             .gateOverlap = 0,
                             .diffOverlap = 0,
                             .implantOverlap = 0,
                             .contactEnclosure = L,
                             .contactOverGateAllowed = false,
                             .isolationContactAllowed = false});
  t.addDeviceType("CON_MP", {.cls = DeviceClass::kContact,
                             .gateOverlap = 0,
                             .diffOverlap = 0,
                             .implantOverlap = 0,
                             .contactEnclosure = L,
                             .contactOverGateAllowed = false,
                             .isolationContactAllowed = false});
  t.addDeviceType("BUTT", {.cls = DeviceClass::kButtingContact,
                           .gateOverlap = 0,
                           .diffOverlap = 0,
                           .implantOverlap = 0,
                           .contactEnclosure = L,
                           .contactOverGateAllowed = true,
                           .isolationContactAllowed = false});
  t.addDeviceType("BURIED", {.cls = DeviceClass::kBuriedContact,
                             .gateOverlap = 0,
                             .diffOverlap = 0,
                             .implantOverlap = 0,
                             .contactEnclosure = L,
                             .contactOverGateAllowed = false,
                             .isolationContactAllowed = false});
  t.addDeviceType("PAD", {.cls = DeviceClass::kPad,
                          .gateOverlap = 0,
                          .diffOverlap = 0,
                          .implantOverlap = 0,
                          .contactEnclosure = 0,
                          .contactOverGateAllowed = false,
                          .isolationContactAllowed = false});
  return t;
}

Technology bipolar() {
  const geom::Coord U = 100;  // 1 um grid
  Technology t("bipolar-demo", U);
  const int ISO = t.addLayer({"iso", "ISO", 4 * U, false});
  const int BASE = t.addLayer({"base", "BASE", 4 * U, false});
  const int EMIT = t.addLayer({"emit", "EMIT", 3 * U, false});
  t.addLayer({"cont", "CONT", 2 * U, false});
  t.addLayer({"met1", "MET1", 4 * U, true});

  // Base diffusion must clear the isolation diffusion -- *unless* the
  // device is a base resistor deliberately tied to isolation (Fig. 6).
  t.setSpacing(BASE, ISO, {.sameNet = 2 * U, .diffNet = 2 * U, .related = 0});
  t.setSpacing(BASE, BASE, {.sameNet = 0, .diffNet = 4 * U, .related = 0});
  t.setSpacing(EMIT, EMIT, {.sameNet = 0, .diffNet = 3 * U, .related = 0});

  t.addDeviceType("NPN", {.cls = DeviceClass::kBipolarNpn,
                          .gateOverlap = 0,
                          .diffOverlap = 0,
                          .implantOverlap = 0,
                          .contactEnclosure = U,
                          .contactOverGateAllowed = false,
                          .isolationContactAllowed = false});
  t.addDeviceType("BRES", {.cls = DeviceClass::kBipolarResistor,
                           .gateOverlap = 0,
                           .diffOverlap = 0,
                           .implantOverlap = 0,
                           .contactEnclosure = U,
                           .contactOverGateAllowed = false,
                           .isolationContactAllowed = true});
  return t;
}

}  // namespace dic::tech
