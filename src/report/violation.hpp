#pragma once
/// \file violation.hpp
/// Violation records shared by every checker (DIC pipeline, ERC,
/// structured-design checks, and the mask-level baseline).

#include <cstdint>
#include <string>
#include <vector>

#include "geom/rect.hpp"

namespace dic::report {

enum class Severity : std::uint8_t { kError, kWarning, kInfo };

/// Rule categories -- the coarse classification used by the Fig. 1 scorer
/// to match reported violations against injected ground truth.
enum class Category : std::uint8_t {
  kWidth,
  kSpacing,
  kConnection,       ///< illegal connection / pinched union
  kDevice,           ///< device-rule violation (enclosure, overlap, ...)
  kImplicitDevice,   ///< undeclared poly/diff crossing (Fig. 8)
  kContactOverGate,  ///< Fig. 7
  kSelfSufficiency,  ///< Fig. 15
  kElectrical,       ///< non-geometric construction rules
  kOther,
};

std::string toString(Category c);

/// One reported problem.
struct Violation {
  Category category{Category::kOther};
  Severity severity{Severity::kError};
  std::string rule;      ///< machine id, e.g. "S.ND.DIFFNET", "ERC.PGSHORT"
  geom::Rect where{};    ///< location in root (chip) coordinates
  std::string cell;      ///< defining cell or instance path
  std::string message;   ///< human-readable description
  int layerA{-1};
  int layerB{-1};
};

/// A set of violations with convenience queries.
class Report {
 public:
  void add(Violation v) { violations_.push_back(std::move(v)); }
  void merge(const Report& other) {
    violations_.insert(violations_.end(), other.violations_.begin(),
                       other.violations_.end());
  }
  const std::vector<Violation>& violations() const { return violations_; }
  std::size_t count() const { return violations_.size(); }
  std::size_t count(Category c) const;
  bool empty() const { return violations_.empty(); }

  /// Plain-text listing, one violation per line.
  std::string text() const;

  /// Machine-readable JSON array.
  std::string json() const;

 private:
  std::vector<Violation> violations_;
};

}  // namespace dic::report
