#include "report/violation.hpp"

#include <sstream>

namespace dic::report {

std::string toString(Category c) {
  switch (c) {
    case Category::kWidth: return "WIDTH";
    case Category::kSpacing: return "SPACING";
    case Category::kConnection: return "CONNECTION";
    case Category::kDevice: return "DEVICE";
    case Category::kImplicitDevice: return "IMPLICIT_DEVICE";
    case Category::kContactOverGate: return "CONTACT_OVER_GATE";
    case Category::kSelfSufficiency: return "SELF_SUFFICIENCY";
    case Category::kElectrical: return "ELECTRICAL";
    case Category::kOther: return "OTHER";
  }
  return "OTHER";
}

std::size_t Report::count(Category c) const {
  std::size_t n = 0;
  for (const Violation& v : violations_)
    if (v.category == c) ++n;
  return n;
}

std::string Report::text() const {
  std::ostringstream os;
  for (const Violation& v : violations_) {
    os << (v.severity == Severity::kError
               ? "ERROR"
               : v.severity == Severity::kWarning ? "WARN" : "INFO")
       << " [" << v.rule << "] " << toString(v.where);
    if (!v.cell.empty()) os << " in " << v.cell;
    if (!v.message.empty()) os << ": " << v.message;
    os << "\n";
  }
  return os.str();
}

namespace {

void jsonEscape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string Report::json() const {
  std::ostringstream os;
  os << "[";
  bool first = true;
  for (const Violation& v : violations_) {
    if (!first) os << ",";
    first = false;
    os << "{\"category\":";
    jsonEscape(os, toString(v.category));
    os << ",\"rule\":";
    jsonEscape(os, v.rule);
    os << ",\"where\":[" << v.where.lo.x << "," << v.where.lo.y << ","
       << v.where.hi.x << "," << v.where.hi.y << "],\"cell\":";
    jsonEscape(os, v.cell);
    os << ",\"message\":";
    jsonEscape(os, v.message);
    os << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace dic::report
