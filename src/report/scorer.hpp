#pragma once
/// \file scorer.hpp
/// Ground-truth scoring: reproduces the paper's Fig. 1 Venn diagram.
///
/// Workload injectors record every *real* defect they create. Given a
/// checker's Report, the scorer classifies:
///   * flagged real errors   (Fig. 1 region 2)
///   * unchecked real errors (Fig. 1 region 1: real but not reported)
///   * false errors          (Fig. 1 region 3: reported but not real)
/// and computes the false:real ratio the paper quotes as "10 to 1 or
/// higher" for traditional checkers.

#include <vector>

#include "report/violation.hpp"

namespace dic::report {

/// One injected defect (or intentional decoy) with its expected category.
struct GroundTruth {
  Category category{Category::kOther};
  geom::Rect where{};
  bool isRealError{true};  ///< false: a legal decoy that must NOT be flagged
  std::string note;
};

/// Fig. 1 regions.
struct VennCounts {
  std::size_t realFlagged{0};    ///< region 2
  std::size_t realUnchecked{0};  ///< region 1
  std::size_t falseErrors{0};    ///< region 3
  std::size_t totalReal{0};

  double falseToRealRatio() const {
    return realFlagged == 0 ? static_cast<double>(falseErrors)
                            : static_cast<double>(falseErrors) /
                                  static_cast<double>(realFlagged);
  }
  double coverage() const {
    return totalReal == 0 ? 1.0
                          : static_cast<double>(realFlagged) /
                                static_cast<double>(totalReal);
  }
};

/// Match tolerance: a violation matches a truth if the categories are
/// compatible and the rects, inflated by `tolerance`, intersect.
VennCounts score(const std::vector<GroundTruth>& truths, const Report& report,
                 geom::Coord tolerance);

}  // namespace dic::report
