#include "report/scorer.hpp"

#include <vector>

namespace dic::report {

namespace {

/// Category compatibility: checkers report at different granularity (the
/// baseline reports everything as width/spacing), so matching is by
/// broad family.
bool compatible(Category truth, Category reported) {
  if (truth == reported) return true;
  // An injected missing-overlap device defect may be seen as a device or
  // width problem; an electrical short may surface as connection.
  auto family = [](Category c) {
    switch (c) {
      case Category::kWidth:
      case Category::kSelfSufficiency:
        return 0;
      case Category::kSpacing:
        return 1;
      case Category::kDevice:
      case Category::kContactOverGate:
      case Category::kImplicitDevice:
        return 2;
      case Category::kConnection:
      case Category::kElectrical:
        return 3;
      case Category::kOther:
        return 4;
    }
    return 4;
  };
  return family(truth) == family(reported);
}

}  // namespace

VennCounts score(const std::vector<GroundTruth>& truths, const Report& report,
                 geom::Coord tolerance) {
  VennCounts out;
  const auto& vs = report.violations();
  std::vector<bool> violationMatched(vs.size(), false);

  for (const GroundTruth& t : truths) {
    if (!t.isRealError) continue;
    ++out.totalReal;
    bool matched = false;
    for (std::size_t i = 0; i < vs.size(); ++i) {
      if (!compatible(t.category, vs[i].category)) continue;
      // Electrical rules are net properties; ERC reports often carry no
      // meaningful location, so they match by category alone.
      const bool electrical = t.category == Category::kElectrical;
      if (!electrical &&
          !geom::closedTouch(t.where.inflated(tolerance), vs[i].where))
        continue;
      violationMatched[i] = true;
      matched = true;
    }
    if (matched)
      ++out.realFlagged;
    else
      ++out.realUnchecked;
  }

  // Second pass: a violation co-located with a real defect is a symptom
  // of that defect even if it was reported under a different category
  // (e.g. a contact-over-gate also violates cut-to-gate spacing). Only
  // violations touching no real defect at all are false errors.
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (violationMatched[i]) continue;
    bool nearReal = false;
    for (const GroundTruth& t : truths) {
      if (!t.isRealError) continue;
      if (geom::closedTouch(t.where.inflated(tolerance), vs[i].where)) {
        nearReal = true;
        break;
      }
    }
    if (!nearReal) ++out.falseErrors;
  }

  return out;
}

}  // namespace dic::report
