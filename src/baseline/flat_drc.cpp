#include "baseline/flat_drc.hpp"

#include <algorithm>
#include <limits>
#include <map>

#include "engine/arena.hpp"
#include "engine/hierarchy_view.hpp"
#include "geom/spacing.hpp"
#include "geom/width.hpp"
#include "netlist/unionfind.hpp"
#include "obs/trace.hpp"

namespace dic::baseline {

namespace {

using geom::Coord;
using geom::Rect;
using geom::Region;

/// Connected components (closed-touch) of a layer's mask region.
std::vector<std::vector<Rect>> components(const Region& layer) {
  const std::vector<Rect>& rects = layer.rects();
  netlist::UnionFind uf(rects.size());
  const engine::SpatialSet set(rects);
  std::vector<std::size_t> cand;
  for (std::size_t i = 0; i < rects.size(); ++i) {
    set.candidatesInto(rects[i], 1, cand);
    for (std::size_t j : cand)
      if (j > i && geom::closedTouch(rects[i], rects[j])) uf.unite(i, j);
  }
  std::map<std::size_t, std::size_t> rootToComp;
  std::vector<std::vector<Rect>> out;
  for (std::size_t i = 0; i < rects.size(); ++i) {
    const std::size_t r = uf.find(i);
    auto it = rootToComp.find(r);
    if (it == rootToComp.end()) {
      it = rootToComp.emplace(r, out.size()).first;
      out.emplace_back();
    }
    out[it->second].push_back(rects[i]);
  }
  return out;
}

Rect bboxOf(const std::vector<Rect>& rects) {
  Rect b{{0, 0}, {0, 0}};
  for (const Rect& r : rects) b = geom::bound(b, r);
  return b;
}

double setDistance(const std::vector<Rect>& a, const std::vector<Rect>& b,
                   geom::Metric m) {
  double best = std::numeric_limits<double>::infinity();
  for (const Rect& ra : a)
    for (const Rect& rb : b) {
      best = std::min(best, geom::rectDistance(ra, rb, m));
      if (best == 0) return 0;
    }
  return best;
}

bool setsOverlapOrTouch(const std::vector<Rect>& a,
                        const std::vector<Rect>& b) {
  for (const Rect& ra : a)
    for (const Rect& rb : b)
      if (geom::closedTouch(ra, rb)) return true;
  return false;
}

}  // namespace

report::Report check(const layout::Library& lib, layout::CellId root,
                     const tech::Technology& tech, const Options& opts,
                     Stats* stats) {
  engine::HierarchyView view(lib, root);
  return check(view, tech, opts, stats);
}

report::Report check(engine::HierarchyView& view, const tech::Technology& tech,
                     const Options& opts, Stats* stats) {
  report::Report rep;

  // Full instantiation: all topology and device identity discarded. The
  // flat view comes from the shared engine; only mask-level geometry
  // survives past this point.
  const std::vector<layout::FlatElement>& fe =
      view.flat(/*includeDeviceGeometry=*/true).elements;
  if (stats) stats->flatShapes = fe.size();

  std::vector<Region> mask(tech.layerCount());
  {
    // The mask-union boolean sweep over every flat shape — one of the
    // named kernel sections a request trace resolves down to.
    obs::ScopedSpan sweepSpan("boolean.sweep");
    // Per-layer staging rects live in the thread's scratch arena: the
    // whole batch is reclaimed in one release when this block exits.
    engine::Arena& arena = engine::scratchArena();
    engine::ArenaScope scratch(arena);
    const engine::ArenaAllocator<Rect> alloc(arena);
    std::vector<engine::ArenaVector<Rect>> rects(
        static_cast<std::size_t>(tech.layerCount()),
        engine::ArenaVector<Rect>(alloc));
    for (const layout::FlatElement& e : fe) {
      const Region region = e.element.region();
      for (const Rect& r : region.rects())
        rects[e.element.layer].push_back(r);
    }
    for (int l = 0; l < tech.layerCount(); ++l)
      mask[l] = Region::fromRects(rects[l]);
  }

  // Width: shrink-expand-compare on the unioned mask (per layer).
  if (opts.checkWidth) {
    for (int l = 0; l < tech.layerCount(); ++l) {
      const Coord minW = tech.layer(l).minWidth;
      if (minW <= 0 || mask[l].empty()) continue;
      for (const geom::WidthViolation& wv :
           geom::checkWidthShrinkExpand(mask[l], minW, opts.metric)) {
        report::Violation v;
        v.category = report::Category::kWidth;
        v.rule = "BASE.W." + tech.layer(l).name;
        v.where = wv.where;
        v.layerA = l;
        v.message = "mask width below minimum (shrink-expand-compare)";
        rep.add(std::move(v));
      }
    }
  }

  if (opts.checkSpacing) {
    // The whole component spacing walk (same-layer + inter-layer) as one
    // span — chunky enough to matter, far above the per-pair hot loop.
    obs::ScopedSpan walkSpan("spacing.walk");
    // Same-layer: expand-check-overlap between distinct mask components.
    // With no net information every close pair is flagged -- including
    // electrically equivalent ones (Fig. 5a false errors).
    std::vector<std::vector<std::vector<Rect>>> comps(tech.layerCount());
    for (int l = 0; l < tech.layerCount(); ++l) comps[l] = components(mask[l]);
    if (stats)
      for (int l = 0; l < tech.layerCount(); ++l)
        stats->layerComponents += comps[l].size();

    for (int l = 0; l < tech.layerCount(); ++l) {
      const Coord s = tech.spacing(l, l).forRelation(tech::NetRelation::kUnknown);
      if (s <= 0) continue;
      const auto& cs = comps[l];
      std::vector<Rect> bbs(cs.size());
      for (std::size_t i = 0; i < cs.size(); ++i) bbs[i] = bboxOf(cs[i]);
      const engine::SpatialSet set(bbs, 16 * s);
      std::vector<std::size_t> cand;
      for (std::size_t i = 0; i < cs.size(); ++i) {
        set.candidatesInto(bbs[i], s, cand);
        for (std::size_t j : cand) {
          if (j <= i) continue;
          if (stats) ++stats->pairChecks;
          const double d = setDistance(cs[i], cs[j], opts.metric);
          if (d >= static_cast<double>(s)) continue;
          report::Violation v;
          v.category = report::Category::kSpacing;
          v.rule = "BASE.S." + tech.layer(l).name;
          const Coord pad = static_cast<Coord>(d) + 1;
          v.where = geom::intersect(bbs[i].inflated(pad), bbs[j].inflated(pad));
          v.layerA = l;
          v.layerB = l;
          v.message = "mask spacing " + std::to_string(d) + " < " +
                      std::to_string(s);
          rep.add(std::move(v));
        }
      }
    }

    // Inter-layer spacing. Overlapping or abutting shapes on rule-bearing
    // layer pairs (poly/diff) are presumed to be intentional devices --
    // "it forms a legal transistor" -- which is exactly how accidental
    // transistors become unchecked errors at mask level.
    for (int la = 0; la < tech.layerCount(); ++la) {
      for (int lb = la + 1; lb < tech.layerCount(); ++lb) {
        const Coord s =
            tech.spacing(la, lb).forRelation(tech::NetRelation::kUnknown);
        if (s <= 0) continue;
        const auto ca = components(mask[la]);
        const auto cb = components(mask[lb]);
        std::vector<Rect> bbs(cb.size());
        for (std::size_t j = 0; j < cb.size(); ++j) bbs[j] = bboxOf(cb[j]);
        const engine::SpatialSet set(bbs, 16 * s);
        std::vector<std::size_t> cand;
        for (std::size_t i = 0; i < ca.size(); ++i) {
          const Rect ba = bboxOf(ca[i]);
          set.candidatesInto(ba, s, cand);
          for (std::size_t j : cand) {
            if (stats) ++stats->pairChecks;
            if (setsOverlapOrTouch(ca[i], cb[j])) continue;  // "a device"
            const double d = setDistance(ca[i], cb[j], opts.metric);
            if (d >= static_cast<double>(s)) continue;
            report::Violation v;
            v.category = report::Category::kSpacing;
            v.rule = "BASE.S." + tech.layer(la).name + "." +
                     tech.layer(lb).name;
            const Coord pad = static_cast<Coord>(d) + 1;
            v.where =
                geom::intersect(ba.inflated(pad), bbs[j].inflated(pad));
            v.layerA = la;
            v.layerB = lb;
            v.message = "mask spacing " + std::to_string(d) + " < " +
                        std::to_string(s);
            rep.add(std::move(v));
          }
        }
      }
    }
  }

  // Contact enclosure on mask geometry. A contact over a transistor gate
  // is enclosed by poly AND diff -- indistinguishable from a butting
  // contact, so it passes (Fig. 7's unchecked error).
  if (opts.checkContacts) {
    const auto cut = tech.layerByName("contact");
    const auto met = tech.layerByName("metal");
    const auto pol = tech.layerByName("poly");
    const auto dif = tech.layerByName("diff");
    if (cut && met && pol && dif && !mask[*cut].empty()) {
      const tech::DeviceRules* anyContact = tech.deviceRules("CON_MD");
      const Coord enc = anyContact ? anyContact->contactEnclosure
                                   : tech.lambda();
      const Region landing = unite(mask[*pol], mask[*dif]);
      for (const Rect& c : mask[*cut].rects()) {
        const Rect need = c.inflated(enc);
        const bool metOk = mask[*met].covers(need);
        const bool landOk = landing.covers(need);
        if (metOk && landOk) continue;
        report::Violation v;
        v.category = report::Category::kDevice;
        v.rule = "BASE.CON";
        v.where = c;
        v.layerA = *cut;
        v.message = metOk ? "contact cut not enclosed by poly/diff"
                          : "contact cut not enclosed by metal";
        rep.add(std::move(v));
      }
    }
  }

  return rep;
}

engine::Stage stage(std::string name, std::vector<std::string> deps,
                    std::shared_ptr<engine::HierarchyView> view,
                    const tech::Technology& tech, Options opts,
                    report::Report* out, Stats* stats) {
  return {std::move(name), std::move(deps),
          [view = std::move(view), &tech, opts, out,
           stats](engine::Executor&) {
            *out = check(*view, tech, opts, stats);
            return report::Report{};
          },
          /*cost=*/6.0};
}

}  // namespace dic::baseline
