#pragma once
/// \file flat_drc.hpp
/// The traditional mask-level design rule checker the paper argues
/// against: the chip is fully instantiated, all topological and device
/// information is discarded, and checking happens on per-layer mask
/// geometry with the shrink-expand-compare width technique (Lindsay &
/// Preas [7]) and the expand-check-overlap spacing technique.
///
/// This is the comparison baseline for the Fig. 1 experiment: it exhibits
///   * false errors: spacing flags between electrically equivalent
///     shapes (Fig. 5a), corner artifacts in Euclidean mode (Fig. 4),
///     metric disagreement on diagonal spacing;
///   * unchecked errors: device-dependent rules (Fig. 6), contact over
///     gate (Fig. 7, indistinguishable from a butting contact at mask
///     level), accidental transistors (Fig. 8, "it forms a legal
///     transistor"), and all electrical construction rules.

#include <memory>
#include <string>
#include <vector>

#include "engine/pipeline.hpp"
#include "layout/library.hpp"
#include "report/violation.hpp"
#include "tech/technology.hpp"

namespace dic::engine {
class HierarchyView;
}  // namespace dic::engine

namespace dic::baseline {

struct Options {
  geom::Metric metric{geom::Metric::kOrthogonal};
  /// Check width with shrink-expand-compare (Fig. 4 pathologies included).
  bool checkWidth{true};
  /// Check same-layer and inter-layer spacing with expand-check-overlap.
  bool checkSpacing{true};
  /// Check contact enclosure on mask geometry (metal and poly-or-diff
  /// must enclose every cut) -- the mask-level approximation of contact
  /// device rules.
  bool checkContacts{true};
};

struct Stats {
  std::size_t flatShapes{0};
  std::size_t layerComponents{0};
  std::size_t pairChecks{0};
};

/// Run the baseline checker on the fully instantiated design.
report::Report check(const layout::Library& lib, layout::CellId root,
                     const tech::Technology& tech, const Options& opts = {},
                     Stats* stats = nullptr);

/// Same, on a shared engine::HierarchyView: the flat
/// (device-geometry-included) view and its grid indexes come from the
/// view's caches instead of being rebuilt, which is how the Workspace
/// amortizes repeated baseline runs.
report::Report check(engine::HierarchyView& view, const tech::Technology& tech,
                     const Options& opts = {}, Stats* stats = nullptr);

/// The baseline checker as a first-class pipeline stage (the decomposed
/// runBatch registers it on the batch-wide dispatcher with an edge to the
/// shared view-build stage). The body runs check(*view, ...) and writes
/// the report into *out and statistics into *stats (both caller-owned,
/// alive for the pipeline run; stats may be null), returning an empty
/// report — the caller merges per-request slots itself, which is what
/// keeps batch output byte-identical to sequential runs.
engine::Stage stage(std::string name, std::vector<std::string> deps,
                    std::shared_ptr<engine::HierarchyView> view,
                    const tech::Technology& tech, Options opts,
                    report::Report* out, Stats* stats = nullptr);

}  // namespace dic::baseline
