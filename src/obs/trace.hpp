#pragma once
/// \file trace.hpp
/// Request-scoped span tracing (docs/observability.md). One request's
/// journey — session decode, shard queue wait, pipeline stages, kernel
/// sections — is recorded as a tree of spans sharing a trace id, across
/// every thread that touched it. Emission is thread-local and lock-free:
/// each thread stages finished spans in its own buffer and hands them to
/// the central bounded ring only when its span nesting returns to depth
/// zero (or the staging buffer fills), so by the time a request's
/// outermost span closes its whole subtree on that thread is visible in
/// the ring, and no thread ever reads another thread's buffer.
///
/// Cost contract: with the runtime flag off (the default), opening a span
/// is one relaxed atomic load and a branch. Building with
/// -DDIC_TRACING_ENABLED=0 (CMake option DIC_TRACING=OFF) compiles every
/// emission site to nothing.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#ifndef DIC_TRACING_ENABLED
/// Compile-time master switch; the build sets it to 0 (CMake option
/// DIC_TRACING=OFF) to compile all span emission out of the binary.
#define DIC_TRACING_ENABLED 1
#endif

namespace dic {
/// \namespace dic::obs
/// Observability: span tracing and the metrics registry.
namespace obs {

/// One finished span, as staged per-thread and stored in the ring.
/// Timestamps are monotonic nanoseconds from a process-local epoch
/// (obs::nowNs), so spans from different threads order correctly.
struct SpanRecord {
  std::uint64_t traceId{0};  ///< the request/trace this span belongs to
  std::uint64_t spanId{0};   ///< process-unique id of this span
  std::uint64_t parentId{0}; ///< enclosing span's id, 0 for a trace root
  std::uint64_t startNs{0};  ///< monotonic start, ns since process epoch
  std::uint64_t durNs{0};    ///< duration in nanoseconds
  std::uint32_t tid{0};      ///< small sequential id of the emitting thread
  char name[43]{};           ///< NUL-terminated section name (truncated)
  std::uint8_t pad{0};       ///< explicit tail padding, always 0

  /// The span's name as a view over the embedded buffer.
  std::string_view label() const { return std::string_view(name); }
};

/// The ambient trace identity of the current thread: which trace new
/// spans join and which span becomes their parent. Captured into task
/// closures by engine::Executor and re-installed (ContextGuard) in the
/// task body, so parent/child links survive work stealing.
struct TraceContext {
  std::uint64_t traceId{0};  ///< 0 = not inside any trace
  std::uint64_t spanId{0};   ///< current innermost span (new spans' parent)
};

/// The process-wide span sink: a mutex-guarded bounded ring fed by the
/// per-thread staging buffers, plus a small retained-trace side table for
/// slow requests that must outlive ring churn. All methods are
/// thread-safe.
class Tracer {
 public:
  /// The singleton sink (thread-local staging makes per-instance tracers
  /// impractical; tests clear() between cases instead).
  static Tracer& instance();

  /// Flip the runtime flag. Spans opened while disabled are never
  /// recorded; spans already open keep recording so a mid-request flip
  /// cannot tear a trace.
  void setEnabled(bool on);

  /// The runtime flag (relaxed load — the span fast path).
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Resize the central ring (default 65536 spans). Drops current
  /// contents.
  void setCapacity(std::size_t spans);

  /// Drop ring contents, retained traces, and the dropped counter.
  /// Staged-but-unflushed spans on other threads survive and will land
  /// in the ring at their next flush.
  void clear();

  /// Spans overwritten (ring wrap) since the last clear().
  std::size_t dropped() const;

  /// Every span currently in the ring, oldest first.
  std::vector<SpanRecord> snapshot() const;

  /// All spans of one trace: retained copy first if present, else
  /// whatever the ring still holds, in arrival order.
  std::vector<SpanRecord> collect(std::uint64_t traceId) const;

  /// Copy a trace's ring spans into the retained side table so later
  /// collect() calls survive ring wrap (the slow-request hook). At most
  /// kMaxRetained traces are kept; the oldest retained trace is evicted.
  void retain(std::uint64_t traceId);

  /// Append a batch of finished spans from a thread's staging buffer.
  /// Called by the emission machinery, not by users.
  void sink(const SpanRecord* first, std::size_t n);

  /// Retained-trace table capacity (oldest-evicted).
  static constexpr std::size_t kMaxRetained = 32;

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;       ///< circular once full
  std::size_t capacity_{65536};
  std::size_t head_{0};                ///< next overwrite slot once full
  std::size_t dropped_{0};
  std::map<std::uint64_t, std::vector<SpanRecord>> retained_;
  std::vector<std::uint64_t> retainOrder_;  ///< eviction order (FIFO)
};

/// Monotonic nanoseconds since a process-local epoch (steady_clock).
std::uint64_t nowNs();

/// Mint a trace id for an in-process root (bit 63 set, so ids never
/// collide with wire request ids, which the TCP session uses directly).
std::uint64_t newTraceId();

/// Render spans as Chrome/Perfetto trace_event JSON ("X" complete
/// events, microsecond timestamps). Load the result in ui.perfetto.dev
/// or chrome://tracing. Ids are emitted as decimal strings in args to
/// dodge JSON double precision.
std::string toChromeTraceJson(const std::vector<SpanRecord>& spans);

#if DIC_TRACING_ENABLED

/// The calling thread's ambient trace identity (zeroes outside a trace).
TraceContext currentContext();

/// Install a trace identity on the calling thread (task-body adoption;
/// prefer ContextGuard).
void setCurrentContext(const TraceContext& ctx);

/// RAII: install a captured TraceContext for a task body and restore the
/// previous one on exit. engine::Executor wraps every stolen task in one
/// so spans emitted on the thief parent correctly.
class ContextGuard {
 public:
  /// Installs `ctx`; the destructor restores what was there before.
  explicit ContextGuard(const TraceContext& ctx);
  ~ContextGuard();
  ContextGuard(const ContextGuard&) = delete;
  ContextGuard& operator=(const ContextGuard&) = delete;

 private:
  TraceContext prev_;
};

/// RAII: one named span. Opens under the ambient context (no-op when
/// tracing is disabled or the thread is outside any trace) and records
/// itself into the thread's staging buffer on destruction. The two-arg
/// form overrides/starts the trace id — pipeline stages use it to
/// attribute a per-request stage to that request's trace, and servers
/// use it to root a request's trace from its wire id.
class ScopedSpan {
 public:
  /// Open a span named `name` in the ambient trace (inactive if none).
  explicit ScopedSpan(std::string_view name);
  /// Open a span named `name` in trace `traceId` (0 falls back to the
  /// ambient trace), becoming the thread's current context.
  ScopedSpan(std::string_view name, std::uint64_t traceId);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void open(std::string_view name, std::uint64_t traceId);
  SpanRecord rec_;
  TraceContext prev_;
  bool active_{false};
};

/// Record an already-timed interval (e.g. queue wait measured by
/// timestamps taken elsewhere) as a span under the ambient context.
void emitSpan(std::string_view name, std::uint64_t startNs,
              std::uint64_t durNs);

#else  // DIC_TRACING_ENABLED == 0: every emission site compiles to nothing

inline TraceContext currentContext() { return {}; }
inline void setCurrentContext(const TraceContext&) {}

/// No-op stand-in when tracing is compiled out.
class ContextGuard {
 public:
  explicit ContextGuard(const TraceContext&) {}
};

/// No-op stand-in when tracing is compiled out.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view) {}
  ScopedSpan(std::string_view, std::uint64_t) {}
};

inline void emitSpan(std::string_view, std::uint64_t, std::uint64_t) {}

#endif  // DIC_TRACING_ENABLED

}  // namespace obs
}  // namespace dic
