#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace dic {
namespace obs {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty())
    throw std::logic_error("Histogram: bounds must be non-empty");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    if (!(bounds_[i - 1] < bounds_[i]))
      throw std::logic_error("Histogram: bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void Histogram::observe(double v) {
  // Upper-edge search: first bucket whose bound >= v; beyond the last
  // bound lands in the overflow slot. Bucket counts are small (<= ~16),
  // so a linear scan beats binary search in practice.
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  counts_[i].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::totalCount() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    total += counts_[i].load(std::memory_order_relaxed);
  return total;
}

std::uint64_t MetricsSnapshot::counterValue(const std::string& name) const {
  for (const MetricValue& m : metrics)
    if (m.name == name && m.kind == MetricValue::Kind::kCounter)
      return m.counter;
  return 0;
}

std::vector<double> defaultLatencyBounds() {
  return {1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2,
          2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5};
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Registry::Entry& Registry::entry(const std::string& name,
                                 MetricValue::Kind kind) {
  // Caller holds mu_.
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != kind)
      throw std::logic_error("Registry: '" + name +
                             "' already registered with a different kind");
    return it->second;
  }
  Entry e;
  e.kind = kind;
  return metrics_.emplace(name, std::move(e)).first->second;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricValue::Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricValue::Kind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, MetricValue::Kind::kHistogram);
  if (!e.histogram)
    e.histogram = std::make_unique<Histogram>(
        bounds.empty() ? defaultLatencyBounds() : std::move(bounds));
  return *e.histogram;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.metrics.reserve(metrics_.size());
  // metrics_ is a std::map: iteration is already name-sorted.
  for (const auto& [name, e] : metrics_) {
    MetricValue m;
    m.name = name;
    m.kind = e.kind;
    switch (e.kind) {
      case MetricValue::Kind::kCounter:
        m.counter = e.counter->value();
        break;
      case MetricValue::Kind::kGauge:
        m.gauge = e.gauge->value();
        break;
      case MetricValue::Kind::kHistogram: {
        m.bounds = e.histogram->bounds();
        m.buckets.resize(m.bounds.size() + 1);
        for (std::size_t i = 0; i <= m.bounds.size(); ++i)
          m.buckets[i] = e.histogram->bucketCount(i);
        break;
      }
    }
    snap.metrics.push_back(std::move(m));
  }
  return snap;
}

}  // namespace obs
}  // namespace dic
