#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace dic {
namespace obs {

namespace {

/// Process-local monotonic epoch: the first call pins it, every
/// timestamp is an offset from it (keeps the numbers small and the
/// Chrome export starting near 0).
std::chrono::steady_clock::time_point processEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::atomic<std::uint64_t> gNextSpanId{1};
std::atomic<std::uint64_t> gNextTraceId{1};
std::atomic<std::uint32_t> gNextTid{1};

}  // namespace

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - processEpoch())
          .count());
}

std::uint64_t newTraceId() {
  return (std::uint64_t{1} << 63) |
         gNextTraceId.fetch_add(1, std::memory_order_relaxed);
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

void Tracer::setEnabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::setCapacity(std::size_t spans) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = spans == 0 ? 1 : spans;
  ring_.clear();
  ring_.shrink_to_fit();
  head_ = 0;
  dropped_ = 0;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
  retained_.clear();
  retainOrder_.clear();
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Tracer::sink(const SpanRecord* first, std::size_t n) {
  if (n == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < n; ++i) {
    if (ring_.size() < capacity_) {
      ring_.push_back(first[i]);
    } else {
      ring_[head_] = first[i];
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
  }
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // head_ is the oldest slot once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::vector<SpanRecord> Tracer::collect(std::uint64_t traceId) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = retained_.find(traceId);
  if (it != retained_.end()) return it->second;
  std::vector<SpanRecord> out;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const SpanRecord& r = ring_[(head_ + i) % ring_.size()];
    if (r.traceId == traceId) out.push_back(r);
  }
  return out;
}

void Tracer::retain(std::uint64_t traceId) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanRecord> spans;
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    const SpanRecord& r = ring_[(head_ + i) % ring_.size()];
    if (r.traceId == traceId) spans.push_back(r);
  }
  if (spans.empty()) return;
  if (retained_.find(traceId) == retained_.end()) {
    while (retainOrder_.size() >= kMaxRetained) {
      retained_.erase(retainOrder_.front());
      retainOrder_.erase(retainOrder_.begin());
    }
    retainOrder_.push_back(traceId);
  }
  retained_[traceId] = std::move(spans);
}

std::string toChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  char buf[320];
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    // Span names are internal identifiers ([A-Za-z0-9:._]) — no JSON
    // escaping needed; ids go in args as decimal strings because JSON
    // numbers are doubles.
    std::snprintf(
        buf, sizeof buf,
        "%s{\"name\":\"%s\",\"cat\":\"dic\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":%" PRIu32 ",\"ts\":%.3f,\"dur\":%.3f,\"args\":{"
        "\"trace\":\"%" PRIu64 "\",\"span\":\"%" PRIu64
        "\",\"parent\":\"%" PRIu64 "\"}}",
        i == 0 ? "" : ",", s.name, s.tid, static_cast<double>(s.startNs) / 1e3,
        static_cast<double>(s.durNs) / 1e3, s.traceId, s.spanId, s.parentId);
    out += buf;
  }
  out += "]}";
  return out;
}

#if DIC_TRACING_ENABLED

namespace {

/// Per-thread span machinery: the ambient context, the staging buffer,
/// and the open-span depth that decides when to flush. Purely
/// thread-local — no other thread ever reads it, which is what keeps
/// emission TSan-clean without atomics on the hot path.
struct ThreadLog {
  TraceContext ctx;
  std::vector<SpanRecord> staging;
  int depth{0};
  std::uint32_t tid{gNextTid.fetch_add(1, std::memory_order_relaxed)};

  /// Staging flushes when it grows past this even mid-request, bounding
  /// per-thread memory under pathological nesting.
  static constexpr std::size_t kFlushAt = 256;

  void flush() {
    if (staging.empty()) return;
    Tracer::instance().sink(staging.data(), staging.size());
    staging.clear();
  }

  void emit(const SpanRecord& rec) {
    staging.push_back(rec);
    if (depth == 0 || staging.size() >= kFlushAt) flush();
  }
};

ThreadLog& threadLog() {
  thread_local ThreadLog log;
  return log;
}

void fillName(SpanRecord& rec, std::string_view name) {
  const std::size_t n = std::min(name.size(), sizeof rec.name - 1);
  std::memcpy(rec.name, name.data(), n);
  rec.name[n] = '\0';
}

}  // namespace

TraceContext currentContext() { return threadLog().ctx; }

void setCurrentContext(const TraceContext& ctx) { threadLog().ctx = ctx; }

ContextGuard::ContextGuard(const TraceContext& ctx) {
  ThreadLog& log = threadLog();
  prev_ = log.ctx;
  log.ctx = ctx;
}

ContextGuard::~ContextGuard() { threadLog().ctx = prev_; }

ScopedSpan::ScopedSpan(std::string_view name) { open(name, 0); }

ScopedSpan::ScopedSpan(std::string_view name, std::uint64_t traceId) {
  open(name, traceId);
}

void ScopedSpan::open(std::string_view name, std::uint64_t traceId) {
  if (!Tracer::instance().enabled()) return;
  ThreadLog& log = threadLog();
  const std::uint64_t trace = traceId != 0 ? traceId : log.ctx.traceId;
  if (trace == 0) return;  // outside any trace: nothing to attribute to
  active_ = true;
  prev_ = log.ctx;
  rec_.traceId = trace;
  rec_.spanId = gNextSpanId.fetch_add(1, std::memory_order_relaxed);
  // A span that switches trace (per-request pipeline stage running under
  // a batch coordinator) roots itself; one continuing the ambient trace
  // nests under the ambient span.
  rec_.parentId = prev_.traceId == trace ? prev_.spanId : 0;
  rec_.tid = log.tid;
  fillName(rec_, name);
  log.ctx = {trace, rec_.spanId};
  ++log.depth;
  rec_.startNs = nowNs();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  rec_.durNs = nowNs() - rec_.startNs;
  ThreadLog& log = threadLog();
  log.ctx = prev_;
  --log.depth;
  log.emit(rec_);
}

void emitSpan(std::string_view name, std::uint64_t startNs,
              std::uint64_t durNs) {
  if (!Tracer::instance().enabled()) return;
  ThreadLog& log = threadLog();
  if (log.ctx.traceId == 0) return;
  SpanRecord rec;
  rec.traceId = log.ctx.traceId;
  rec.spanId = gNextSpanId.fetch_add(1, std::memory_order_relaxed);
  rec.parentId = log.ctx.spanId;
  rec.startNs = startNs;
  rec.durNs = durNs;
  rec.tid = log.tid;
  fillName(rec, name);
  log.emit(rec);
}

#endif  // DIC_TRACING_ENABLED

}  // namespace obs
}  // namespace dic
