#pragma once
/// \file metrics.hpp
/// The unified metrics registry (docs/observability.md): typed counters,
/// gauges, and fixed-bucket histograms registered by name. Hot paths
/// hold references (stable for the registry's lifetime) and update with
/// relaxed atomics; snapshot() returns every metric sorted by name, the
/// deterministic order the kMetrics wire frame and `check_client
/// --metrics` rely on. Existing stats structs (ServerStats,
/// ListenerStats, CacheStats) are re-expressed as registry views by
/// their owners' publish methods at snapshot time.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dic {
namespace obs {

/// Monotonic unsigned counter (relaxed atomics; safe from any thread).
class Counter {
 public:
  /// Add `d` (default 1).
  void add(std::uint64_t d = 1) {
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  /// Current value.
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Signed point-in-time value (queue depth, cache bytes).
class Gauge {
 public:
  /// Overwrite the value.
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// Adjust the value by `d`.
  void add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  /// Current value.
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: bounds are upper edges, observations land in
/// the first bucket whose bound is >= the value (values above the last
/// bound land in the overflow bucket, index bounds().size()). Bucket
/// layout is fixed at registration; observe() is wait-free.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  /// Record one observation.
  void observe(double v);

  /// The upper bucket edges (size B).
  const std::vector<double>& bounds() const { return bounds_; }

  /// Count in bucket `i` (0..B inclusive; B is overflow).
  std::uint64_t bucketCount(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }

  /// Total observations across all buckets.
  std::uint64_t totalCount() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< B + 1 slots
};

/// One metric's value as captured by Registry::snapshot().
struct MetricValue {
  /// Discriminates which of the value fields is meaningful.
  enum class Kind : std::uint8_t {
    kCounter = 0,   ///< `counter` holds the value
    kGauge = 1,     ///< `gauge` holds the value
    kHistogram = 2  ///< `bounds`/`buckets` hold the value
  };
  std::string name;            ///< registration name
  Kind kind{Kind::kCounter};   ///< value discriminator
  std::uint64_t counter{0};    ///< Kind::kCounter value
  std::int64_t gauge{0};       ///< Kind::kGauge value
  std::vector<double> bounds;  ///< Kind::kHistogram upper edges (B)
  std::vector<std::uint64_t> buckets;  ///< Kind::kHistogram counts (B+1)
};

/// A full registry capture, sorted by metric name (deterministic — the
/// wire encoding of two snapshots taken after identical work is
/// byte-identical for counters and gauges).
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;  ///< name-sorted metric values

  /// The named counter's value, or 0 if absent / not a counter.
  std::uint64_t counterValue(const std::string& name) const;
};

/// Default service-latency bucket edges in seconds (100us .. 2.5s,
/// roughly logarithmic) for Registry::histogram callers that don't pick
/// their own.
std::vector<double> defaultLatencyBounds();

/// A named metric store. Registration is mutex-guarded and idempotent
/// (same name returns the same object; a kind mismatch throws
/// std::logic_error). Returned references stay valid for the registry's
/// lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// A process-wide registry for call sites with nothing better to
  /// plumb; servers own their own instance.
  static Registry& global();

  /// Find-or-create the counter `name`.
  Counter& counter(const std::string& name);

  /// Find-or-create the gauge `name`.
  Gauge& gauge(const std::string& name);

  /// Find-or-create the histogram `name`; `bounds` (default
  /// defaultLatencyBounds()) only applies on first registration.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Capture every metric, sorted by name.
  MetricsSnapshot snapshot() const;

 private:
  struct Entry {
    MetricValue::Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  Entry& entry(const std::string& name, MetricValue::Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Entry> metrics_;  ///< ordered => sorted snapshot
};

}  // namespace obs
}  // namespace dic
