#pragma once
/// \file checker.hpp
/// The DIC pipeline (Fig. 10 of the paper):
///
///   PARSE CIF -> CHECK ELEMENTS -> CHECK PRIMITIVE SYMBOLS ->
///   CHECK LEGAL CONNECTIONS -> GENERATE HIERARCHICAL NET LIST ->
///   CHECK INTERACTIONS
///
/// Every stage works on the *hierarchical* database: element and device
/// checks run once per symbol definition (not once per instance) and
/// violations are then instantiated at each placement; interaction checks
/// descend into instance-overlap windows only.

#include <map>
#include <vector>

#include "layout/library.hpp"
#include "netlist/netlist.hpp"
#include "report/violation.hpp"
#include "tech/technology.hpp"

namespace dic::drc {

/// Checking options.
struct Options {
  geom::Metric metric{geom::Metric::kEuclidean};
  /// Check primitive device symbols (the paper gives this stage low
  /// priority -- "primitive symbols are assumed to be prechecked" -- but
  /// implements it; cells with Cell::prechecked set are skipped).
  bool checkDevices{true};
  /// Use the hierarchical interaction algorithm (per-cell-once plus
  /// overlap windows). false: flatten everything (exact reference mode).
  bool hierarchicalInteractions{true};
  /// Ablation: discard net information during interaction checking, as a
  /// mask-level checker must. Every pair then uses the worst-case rule
  /// (NetRelation::kUnknown) -- reintroducing the paper's false errors.
  bool useNetInformation{true};
  /// Report each per-cell violation at every instance placement.
  bool instantiateViolations{true};
};

/// Wall-clock per stage, seconds (Fig. 10 breakdown bench).
struct StageTimes {
  double elements{0};
  double symbols{0};
  double connections{0};
  double netlist{0};
  double interactions{0};
  double total() const {
    return elements + symbols + connections + netlist + interactions;
  }
};

/// Statistics of the interaction stage (Fig. 12 bench): how many candidate
/// pairs fell into each sub-case and how many were pruned.
struct InteractionStats {
  std::size_t candidatePairs{0};
  std::size_t sameNetSkipped{0};
  std::size_t relatedSkipped{0};
  std::size_t noRulePairs{0};
  std::size_t distanceChecks{0};
  std::size_t connectionChecks{0};
  /// Checks per (layerA, layerB) matrix cell, layerA <= layerB.
  std::map<std::pair<int, int>, std::size_t> perLayerPair;
};

class Checker {
 public:
  Checker(const layout::Library& lib, layout::CellId root,
          const tech::Technology& tech, Options options = {});

  /// Run the complete pipeline; returns all violations.
  report::Report run();

  // Individual stages (callable independently; run() calls them in order).
  report::Report checkElements();
  report::Report checkPrimitiveSymbols();
  report::Report checkConnections();
  netlist::Netlist generateNetlist();
  report::Report checkInteractions(const netlist::Netlist& nl);

  const StageTimes& stageTimes() const { return times_; }
  const InteractionStats& interactionStats() const { return istats_; }

 private:
  struct Placement {
    geom::Transform transform;
    std::string path;
  };
  /// All placements of each cell under root (computed lazily, cached).
  const std::vector<Placement>& placements(layout::CellId id);
  void collectPlacements();

  /// Emit a per-cell violation at every placement of `cell`.
  void emitInstantiated(report::Report& rep, layout::CellId cell,
                        report::Violation v);

  const layout::Library& lib_;
  layout::CellId root_;
  const tech::Technology& tech_;
  Options opt_;
  StageTimes times_;
  InteractionStats istats_;
  std::map<layout::CellId, std::vector<Placement>> placements_;
  bool placementsReady_{false};
};

}  // namespace dic::drc
