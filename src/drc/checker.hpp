#pragma once
/// \file checker.hpp
/// The DIC pipeline (Fig. 10 of the paper):
///
///   PARSE CIF -> CHECK ELEMENTS -> CHECK PRIMITIVE SYMBOLS ->
///   CHECK LEGAL CONNECTIONS -> GENERATE HIERARCHICAL NET LIST ->
///   CHECK INTERACTIONS
///
/// Every stage works on the *hierarchical* database: element and device
/// checks run once per symbol definition (not once per instance) and
/// violations are then instantiated at each placement; interaction checks
/// descend into instance-overlap windows only.
///
/// Since the engine refactor the stages run through the
/// engine::Pipeline ready-queue dispatcher on a shared
/// engine::HierarchyView: element/symbol/connection checks and netlist
/// generation are declared independent, interaction checking depends on
/// the netlist only — so it starts the moment netlist extraction
/// finishes, even while other independent stages are still running — and
/// stages plus their per-cell fan-outs share one Options::threads-sized
/// work-stealing pool with deterministic merging (threads=N output is
/// byte-identical to threads=1; see docs/engine.md).

#include <array>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "engine/executor.hpp"
#include "engine/hierarchy_view.hpp"
#include "engine/pipeline.hpp"
#include "layout/library.hpp"
#include "netlist/netlist.hpp"
#include "report/violation.hpp"
#include "tech/technology.hpp"

namespace dic::drc {

/// Checking options.
struct Options {
  geom::Metric metric{geom::Metric::kEuclidean};
  /// Check primitive device symbols (the paper gives this stage low
  /// priority -- "primitive symbols are assumed to be prechecked" -- but
  /// implements it; cells with Cell::prechecked set are skipped).
  bool checkDevices{true};
  /// Use the hierarchical interaction algorithm (per-cell-once plus
  /// overlap windows). false: flatten everything (exact reference mode).
  bool hierarchicalInteractions{true};
  /// Ablation: discard net information during interaction checking, as a
  /// mask-level checker must. Every pair then uses the worst-case rule
  /// (NetRelation::kUnknown) -- reintroducing the paper's false errors.
  bool useNetInformation{true};
  /// Report each per-cell violation at every instance placement.
  bool instantiateViolations{true};
  /// Worker budget for the whole run: pipeline stages AND their inner
  /// fan-outs (per-cell checks, interaction windows) share one
  /// engine::Executor work-stealing pool of this size, so at most
  /// `threads` workers are ever active regardless of how many stages run
  /// concurrently. Semantics:
  ///   - threads <= 0: use the host's hardware concurrency, resolved
  ///     once per process (engine::Executor::hardwareThreads()).
  ///   - threads == 1: fully serial — the deterministic reference
  ///     schedule (ready stages dispatched by cost, then declaration).
  ///   - threads >= 2: threads-1 pool workers plus the calling thread.
  /// The report text is byte-identical for every value (slot-ordered
  /// merging; see docs/engine.md for the determinism contract).
  int threads{1};
  /// Options for the pipeline's netlist-generation stage (label merging,
  /// global-name prefixes). Requests that share a hierarchy view and
  /// equal extract options can share the extracted netlist (the
  /// dic::Workspace cache does exactly that).
  netlist::ExtractOptions extract{};
};

/// Wall-clock per stage, seconds (Fig. 10 breakdown bench). With
/// Options::threads > 1 stages run concurrently (each starts the moment
/// its dependencies finish), so the per-stage clocks overlap and total()
/// can exceed the pipeline's real wall time -- time run() externally when
/// measuring end-to-end speed. Checker::stageResults() additionally
/// carries each stage's start timestamp.
struct StageTimes {
  double elements{0};
  double symbols{0};
  double connections{0};
  double netlist{0};
  double interactions{0};
  double total() const {
    return elements + symbols + connections + netlist + interactions;
  }
};

/// Statistics of the interaction stage (Fig. 12 bench): how many candidate
/// pairs fell into each sub-case and how many were pruned.
struct InteractionStats {
  std::size_t candidatePairs{0};
  std::size_t sameNetSkipped{0};
  std::size_t relatedSkipped{0};
  std::size_t noRulePairs{0};
  std::size_t distanceChecks{0};
  std::size_t connectionChecks{0};
  /// Checks per (layerA, layerB) matrix cell, layerA <= layerB.
  std::map<std::pair<int, int>, std::size_t> perLayerPair;

  /// Accumulate another worker's counts (all fields are additive).
  void merge(const InteractionStats& o) {
    candidatePairs += o.candidatePairs;
    sameNetSkipped += o.sameNetSkipped;
    relatedSkipped += o.relatedSkipped;
    noRulePairs += o.noRulePairs;
    distanceChecks += o.distanceChecks;
    connectionChecks += o.connectionChecks;
    for (const auto& [k, v] : o.perLayerPair) perLayerPair[k] += v;
  }
};

/// Reusable per-unit results of one hierarchical-DRC run, the substrate of
/// incremental edit-then-check. Byte-identity is preserved *structurally*:
/// the cache stores whole per-unit reports (per-cell stage reports, per
/// interaction item) keyed by the same deterministic unit identities a cold
/// run enumerates, and an incremental run recomputes only units an edit
/// could affect, merging cached and fresh results in the identical unit
/// order. Violations are never spliced geometrically, so a hit-path report
/// is the byte-for-byte cold report by construction.
///
/// One cache belongs to one (view, Options signature) pair; the Workspace
/// owns it per library entry and only engages it when the request's
/// result-affecting options match the options of the populating run.
/// Thread-safety: during a run each stage writes only its own slice
/// (perCell[i] by stage i, items by the interaction stage's serial merge
/// loop), so no locking is needed; `valid` and `cells` are set by the
/// orchestrator between runs.
struct IncrementalCache {
  /// Cells snapshot (view cells() order) the per-cell reports are
  /// parallel to; reuse requires it to equal the current view's cells().
  std::vector<layout::CellId> cells;
  /// Per-cell reports of the three per-cell stages (elements, symbols,
  /// connections), each parallel to `cells`.
  std::array<std::vector<report::Report>, 3> perCell;

  /// Identity of one hierarchical interaction item (see interaction.cpp:
  /// kind 0 = intra-cell, 1 = element-vs-child window, 2 = child-pair
  /// window). Stable across runs as long as the hierarchy structure is
  /// unchanged (child indexes are instance-vector positions).
  struct ItemKey {
    layout::CellId cell{0};
    int kind{0};
    std::size_t childA{0};
    std::size_t childB{0};
    bool operator<(const ItemKey& o) const {
      if (cell != o.cell) return cell < o.cell;
      if (kind != o.kind) return kind < o.kind;
      if (childA != o.childA) return childA < o.childA;
      return childB < o.childB;
    }
  };
  struct ItemResult {
    report::Report report;
    InteractionStats stats;
  };
  std::map<ItemKey, ItemResult> items;

  /// Opaque per-cell prepared-shape cache owned by the interaction stage
  /// (the concrete type is private to interaction.cpp). Shapes depend
  /// only on a cell's elements and the technology, so on the fast path
  /// entries for cells untouched by the pending edits are reused and
  /// only dirty cells pay region/skeleton construction again.
  std::shared_ptr<void> shapeCache;

  /// Set by the orchestrator after a successful populating run; cleared
  /// whenever an edit falls off the incremental fast path.
  bool valid{false};
};

/// What an accepted edit batch dirtied, consumed by Checker::setIncremental.
/// Computed by computeDirtyInfo from the library's tracked CellEdits.
struct DirtyInfo {
  /// Cells whose *own* elements changed; per-cell stages recompute exactly
  /// these (stages 1-3 are functions of a cell's own content only).
  std::set<layout::CellId> dirtyCells;
  /// Union of old+new bboxes of edited elements, per cell, in that cell's
  /// local coordinates — propagated bottom-up so an ancestor's rect list
  /// covers every edit anywhere in its subtree (capped by hull collapse).
  /// Drives the interaction stage's per-item affectedness test.
  std::map<layout::CellId, std::vector<geom::Rect>> dirtyRects;
  /// True when the cached netlist was reused AND no cell bbox changed, the
  /// preconditions for per-item interaction reuse (net relations, child
  /// bboxes, and windows are then all unchanged). When false the
  /// interaction stage recomputes everything (and repopulates the cache).
  bool reuseInteractions{false};
};

/// Build a DirtyInfo from tracked element edits: dirtyCells = edited
/// cells, dirtyRects = old+new element bboxes propagated to every ancestor
/// through instance transforms (cells() post-order guarantees children are
/// final before parents fold them in). reuseInteractions is left false;
/// the caller sets it once it knows the netlist-reuse and bbox outcomes.
DirtyInfo computeDirtyInfo(const engine::HierarchyView& view,
                           const std::vector<layout::CellEdit>& edits);

class Checker {
 public:
  Checker(const layout::Library& lib, layout::CellId root,
          const tech::Technology& tech, Options options = {});

  /// Share an existing hierarchy view (and everything it has lazily
  /// built: placements, flat views, grid indexes) instead of rebuilding
  /// from scratch -- the Workspace's per-(root, revision) cache hands its
  /// views to checkers through this constructor. `view` must be non-null
  /// and its library must outlive the checker.
  Checker(std::shared_ptr<engine::HierarchyView> view,
          const tech::Technology& tech, Options options = {});

  /// Run the complete pipeline through the stage runner; returns all
  /// violations merged in stage-declaration order. Creates a pool of
  /// Options::threads workers for this run.
  report::Report run();

  /// Same, on a caller-owned executor (a Workspace's persistent pool, or
  /// a batch dispatcher's shared workers). Options::threads is ignored;
  /// `exec` sizes all parallelism. Results are byte-identical to run()
  /// for every pool size. Implemented as stages() + a private pipeline:
  /// the stage list is the single source of truth for the DIC graph.
  report::Report run(engine::Executor& exec);

  /// The five Fig. 10 stages as first-class engine::Stage entries, so a
  /// caller can register them on its OWN pipeline — this is how the
  /// Workspace's decomposed runBatch feeds every request's inner stages
  /// to one batch-wide dispatcher instead of running each request as an
  /// opaque unit. Names are `prefix` + {"elements", "symbols",
  /// "connections", "netlist", "interactions"}; intra-request edges are
  /// wired (interactions depends on prefix+netlist), `commonDeps` is
  /// appended to every stage (the batch points it at the shared
  /// view-build stage), and `netlistDeps` additionally gates the netlist
  /// stage (the shared extraction-prefetch stage). Stage bodies write
  /// into this checker's internal per-stage slots and return empty
  /// reports; after the stages have run in some pipeline, report()
  /// merges the slots in declaration order — byte-identical to run().
  /// Calling stages() resets the slots and lastNetlist(); the checker
  /// must outlive the pipeline run.
  std::vector<engine::Stage> stages(const std::string& prefix = "",
                                    std::vector<std::string> commonDeps = {},
                                    std::vector<std::string> netlistDeps = {});

  /// Merge of the per-stage reports of the last stages() run, in stage
  /// declaration order (the byte-identity invariant's merge rule). Valid
  /// after the stages have completed in whatever pipeline hosted them.
  report::Report report() const;

  // Individual stages (callable independently; run() declares them as
  // pipeline stages with the same semantics).
  report::Report checkElements();
  report::Report checkPrimitiveSymbols();
  report::Report checkConnections();
  netlist::Netlist generateNetlist();
  report::Report checkInteractions(const netlist::Netlist& nl);

  const StageTimes& stageTimes() const { return times_; }

  /// Per-stage start/duration of the last run(), in stage-declaration
  /// order (engine::StageResult::start is seconds from pipeline entry) --
  /// what the dispatcher benches read to show the interaction stage
  /// starting before independent stages drain. Populated even when run()
  /// throws: stages that never started keep start = -1.
  const std::vector<engine::StageResult>& stageResults() const {
    return stageResults_;
  }

  const InteractionStats& interactionStats() const { return istats_; }

  /// Route the pipeline's netlist stage through a caller-owned producer
  /// instead of extracting directly. The Workspace uses this to funnel
  /// the stage through its per-view netlist cache: on a cache hit the
  /// stage is a handoff, and on a miss a concurrent request needing the
  /// same netlist blocks on the cache mutex and shares the one
  /// extraction instead of duplicating it. The supplier runs inside the
  /// netlist stage (on the pipeline's executor) and must return a
  /// netlist equivalent to extracting this checker's view with
  /// Options::extract -- extraction is deterministic, so the report is
  /// byte-identical either way.
  void setNetlistSupplier(
      std::function<std::shared_ptr<const netlist::Netlist>(
          engine::Executor&)> supplier) {
    supplier_ = std::move(supplier);
  }

  /// The netlist generated (or reused) by the last run(); null before the
  /// netlist stage has completed. Callers cache this alongside the view
  /// so later requests skip extraction.
  std::shared_ptr<const netlist::Netlist> lastNetlist() const { return nl_; }

  /// The shared hierarchy view all stages run on.
  engine::HierarchyView& view() { return *view_; }

  /// Engage incremental checking for the next run. `cache` (caller-owned,
  /// outliving the run) receives this run's per-unit results. With
  /// `dirty` == nullptr the run is a cold populate: every unit computes
  /// and the cache fills. With `dirty` set, units untouched per DirtyInfo
  /// reuse their cached reports and only dirty units recompute — the
  /// merged output stays byte-identical to a cold run because units and
  /// merge order are unchanged. The caller must guarantee the cache was
  /// populated against the same view and result-affecting Options;
  /// stale-looking caches (cells mismatch) degrade safely to full
  /// recompute. Pass (nullptr, nullptr) to disengage.
  void setIncremental(IncrementalCache* cache, const DirtyInfo* dirty) {
    icache_ = cache;
    idirty_ = dirty;
  }

 private:
  report::Report checkElementsImpl(engine::Executor& exec);
  report::Report checkPrimitiveSymbolsImpl(engine::Executor& exec);
  report::Report checkConnectionsImpl(engine::Executor& exec);
  report::Report checkInteractionsImpl(const netlist::Netlist& nl,
                                       engine::Executor& exec);

  /// Fan `fn` across reachable cells; merge per-cell reports in the
  /// deterministic cells() order. `cacheSlot` (0..2) selects the
  /// IncrementalCache::perCell slice this stage reads/writes when
  /// incremental mode is engaged; on reuse only DirtyInfo::dirtyCells
  /// recompute and clean cells take their cached report.
  report::Report perCellStage(
      engine::Executor& exec, int cacheSlot,
      const std::function<void(layout::CellId, report::Report&)>& fn);

  /// Emit a per-cell violation at every placement of `cell`.
  void emitInstantiated(report::Report& rep, layout::CellId cell,
                        report::Violation v);

  const layout::Library& lib_;
  layout::CellId root_;
  const tech::Technology& tech_;
  Options opt_;
  std::shared_ptr<engine::HierarchyView> view_;  ///< never null
  std::function<std::shared_ptr<const netlist::Netlist>(engine::Executor&)>
      supplier_;
  std::shared_ptr<const netlist::Netlist> nl_;
  /// Per-stage report slots in declaration order, written by the stage
  /// bodies stages() hands out and merged by report().
  std::vector<report::Report> stageReports_;
  StageTimes times_;
  std::vector<engine::StageResult> stageResults_;
  InteractionStats istats_;
  IncrementalCache* icache_{nullptr};
  const DirtyInfo* idirty_{nullptr};
};

}  // namespace dic::drc
