#include "drc/stages.hpp"

#include "geom/width.hpp"

namespace dic::drc {

namespace {

using geom::Coord;
using geom::Rect;
using geom::Region;

/// Union of all element regions of `cell` on the named layer (empty if the
/// technology has no such layer).
Region layerRegion(const layout::Cell& cell, const tech::Technology& tech,
                   const std::string& layerName) {
  Region out;
  const auto idx = tech.layerByName(layerName);
  if (!idx) return out;
  for (const layout::Element& e : cell.elements)
    if (e.layer == *idx) out = unite(out, e.region());
  return out;
}

enum Dir { kEast = 0, kWest, kNorth, kSouth };

/// Strip of depth d adjacent to rect g in direction dir, spanning g's
/// cross extent.
Rect strip(const Rect& g, Dir dir, Coord d) {
  switch (dir) {
    case kEast: return {{g.hi.x, g.lo.y}, {g.hi.x + d, g.hi.y}};
    case kWest: return {{g.lo.x - d, g.lo.y}, {g.lo.x, g.hi.y}};
    case kNorth: return {{g.lo.x, g.hi.y}, {g.hi.x, g.hi.y + d}};
    case kSouth: return {{g.lo.x, g.lo.y - d}, {g.hi.x, g.lo.y}};
  }
  return {};
}

report::Violation deviceViolation(report::Category cat, std::string rule,
                                  const Rect& where, std::string message) {
  report::Violation v;
  v.category = cat;
  v.rule = std::move(rule);
  v.where = where;
  v.message = std::move(message);
  return v;
}

void checkFet(const layout::Cell& cell, const tech::Technology& tech,
              const tech::DeviceRules& rules,
              std::vector<report::Violation>& out) {
  const Region poly = layerRegion(cell, tech, "poly");
  const Region diff = layerRegion(cell, tech, "diff");
  const Region gate = intersect(poly, diff);
  if (gate.empty()) {
    out.push_back(deviceViolation(report::Category::kDevice, "DEV.NOGATE",
                                  geom::bound(poly.bbox(), diff.bbox()),
                                  "transistor has no poly/diff crossing"));
    return;
  }
  const Rect g = gate.bbox();

  // Which directions does poly leave the gate in? ("The overlap of poly
  // beyond the active gate ... is to insure that the source and the drain
  // never short together.")
  bool polyDir[4];
  for (int d = 0; d < 4; ++d)
    polyDir[d] = poly.overlaps(Region(strip(g, static_cast<Dir>(d), 1)));
  const bool polyAxisX = polyDir[kEast] || polyDir[kWest];
  const bool polyAxisY = polyDir[kNorth] || polyDir[kSouth];
  if (polyAxisX == polyAxisY) {
    out.push_back(deviceViolation(
        report::Category::kDevice, "DEV.GATE_SHAPE", g,
        "cannot determine channel direction (poly must cross diff)"));
    return;
  }
  const Dir polyDirs[2] = {polyAxisX ? kEast : kNorth,
                           polyAxisX ? kWest : kSouth};
  const Dir diffDirs[2] = {polyAxisX ? kNorth : kEast,
                           polyAxisX ? kSouth : kWest};

  for (const Dir d : polyDirs) {
    if (!poly.covers(strip(g, d, rules.gateOverlap))) {
      out.push_back(deviceViolation(
          report::Category::kDevice, "DEV.GATE_OVERLAP", strip(g, d, 1),
          "poly overlap of gate < " + std::to_string(rules.gateOverlap) +
              " (source and drain may short)"));
    }
  }
  for (const Dir d : diffDirs) {
    if (!diff.covers(strip(g, d, rules.diffOverlap))) {
      out.push_back(deviceViolation(
          report::Category::kDevice, "DEV.DIFF_OVERLAP", strip(g, d, 1),
          "diffusion overlap of gate < " +
              std::to_string(rules.diffOverlap)));
    }
  }

  if (rules.cls == tech::DeviceClass::kDepletionFet) {
    const Region implant = layerRegion(cell, tech, "implant");
    if (!implant.covers(g.inflated(rules.implantOverlap))) {
      out.push_back(deviceViolation(
          report::Category::kDevice, "DEV.IMPLANT", g,
          "implant must enclose gate by " +
              std::to_string(rules.implantOverlap)));
    }
  }

  // Fig. 7: "a contact is not allowed over the active gate".
  const Region cut = layerRegion(cell, tech, "contact");
  if (!rules.contactOverGateAllowed && cut.overlaps(gate)) {
    out.push_back(deviceViolation(report::Category::kContactOverGate,
                                  "DEV.CONTACT_OVER_GATE", g,
                                  "contact over active gate"));
  }
}

void checkContact(const layout::Cell& cell, const tech::Technology& tech,
                  const tech::DeviceRules& rules,
                  std::vector<report::Violation>& out) {
  const Region cut = layerRegion(cell, tech, "contact");
  if (cut.empty()) {
    out.push_back(deviceViolation(report::Category::kDevice, "DEV.NOCUT",
                                  Rect{}, "contact device without a cut"));
    return;
  }
  const Region metal = layerRegion(cell, tech, "metal");
  const Region poly = layerRegion(cell, tech, "poly");
  const Region diff = layerRegion(cell, tech, "diff");
  for (const Rect& c : cut.rects()) {
    const Rect need = c.inflated(rules.contactEnclosure);
    if (!metal.empty() && !metal.covers(need))
      out.push_back(deviceViolation(report::Category::kDevice, "DEV.CON_MET",
                                    c, "metal does not enclose contact cut"));
    // The landing material: poly, diff, or (butting contact) their union.
    const Region landing = unite(poly, diff);
    if (!landing.covers(need))
      out.push_back(deviceViolation(
          report::Category::kDevice, "DEV.CON_LAND", c,
          "poly/diff does not enclose contact cut"));
  }
  if (rules.cls == tech::DeviceClass::kButtingContact) {
    // The butting contact exists to join poly and diff: both must be
    // present and must meet under the cut (Fig. 7 right).
    if (poly.empty() || diff.empty() ||
        !geom::closedTouch(poly.bbox(), diff.bbox()))
      out.push_back(deviceViolation(report::Category::kDevice, "DEV.BUTT",
                                    cut.bbox(),
                                    "butting contact needs abutting poly "
                                    "and diff under the cut"));
  }
}

void checkBipolar(const layout::Cell& cell, const tech::Technology& tech,
                  const tech::DeviceRules& rules,
                  std::vector<report::Violation>& out) {
  const Region base = layerRegion(cell, tech, "base");
  const Region iso = layerRegion(cell, tech, "iso");
  if (base.empty()) return;
  // Fig. 6: base shorted to isolation destroys a transistor (error) but is
  // the standard way to ground a base resistor (legal).
  bool touches = false;
  for (const Rect& rb : base.rects()) {
    for (const Rect& ri : iso.rects())
      if (geom::closedTouch(rb, ri)) {
        touches = true;
        break;
      }
    if (touches) break;
  }
  if (touches && !rules.isolationContactAllowed) {
    out.push_back(deviceViolation(
        report::Category::kDevice, "DEV.BASE_ISO", base.bbox(),
        "base region shorted to isolation (device integrity destroyed)"));
  }
}

void checkResistor(const layout::Cell& cell, const tech::Technology& tech,
                   std::vector<report::Violation>& out) {
  // The body must be of legal width (it is not interconnect, so stage 1
  // did not see it).
  for (const layout::Element& e : cell.elements) {
    for (const geom::WidthViolation& wv : geom::checkWidthEdges(
             e.region(), tech.layer(e.layer).minWidth)) {
      out.push_back(deviceViolation(report::Category::kWidth, "DEV.RES_BODY",
                                    wv.where, "resistor body too narrow"));
    }
  }
}

}  // namespace

std::vector<report::Violation> checkDeviceCell(const layout::Cell& cell,
                                               const tech::Technology& tech) {
  std::vector<report::Violation> out;
  const tech::DeviceRules* rules = tech.deviceRules(cell.deviceType);
  if (!rules) {
    out.push_back(deviceViolation(report::Category::kDevice, "DEV.UNKNOWN",
                                  Rect{},
                                  "unknown device type " + cell.deviceType));
    return out;
  }

  switch (rules->cls) {
    case tech::DeviceClass::kEnhancementFet:
    case tech::DeviceClass::kDepletionFet:
      checkFet(cell, tech, *rules, out);
      break;
    case tech::DeviceClass::kContact:
    case tech::DeviceClass::kButtingContact:
    case tech::DeviceClass::kBuriedContact:
      checkContact(cell, tech, *rules, out);
      break;
    case tech::DeviceClass::kBipolarNpn:
    case tech::DeviceClass::kBipolarResistor:
      checkBipolar(cell, tech, *rules, out);
      break;
    case tech::DeviceClass::kResistor:
      checkResistor(cell, tech, out);
      break;
    case tech::DeviceClass::kPad:
      break;  // pads carry no geometric rules in this technology
  }

  // Ports must land on device geometry of their layer.
  for (const layout::Port& p : cell.ports) {
    Region lr;
    for (const layout::Element& e : cell.elements)
      if (e.layer == p.layer) lr = unite(lr, e.region());
    bool lands = false;
    for (const Rect& r : lr.rects())
      if (geom::closedTouch(r, p.at)) {
        lands = true;
        break;
      }
    if (!lands)
      out.push_back(deviceViolation(report::Category::kDevice, "DEV.PORT",
                                    p.at,
                                    "port " + p.name +
                                        " does not land on device geometry"));
  }
  return out;
}

}  // namespace dic::drc
