#include "drc/checker.hpp"

#include <memory>

#include "drc/stages.hpp"
#include "engine/pipeline.hpp"

namespace dic::drc {

DirtyInfo computeDirtyInfo(const engine::HierarchyView& view,
                           const std::vector<layout::CellEdit>& edits) {
  DirtyInfo out;
  for (const layout::CellEdit& e : edits) {
    out.dirtyCells.insert(e.cell);
    std::vector<geom::Rect>& rects = out.dirtyRects[e.cell];
    rects.push_back(e.oldElement.bbox());
    rects.push_back(e.newElement.bbox());
  }
  if (out.dirtyRects.empty()) return out;
  // Propagate bottom-up. cells() is post-order (substrates before users),
  // so when a parent is reached every child's rect list is final and one
  // pass suffices; each instance folds its child's rects through the
  // instance transform into the parent's frame. Rect lists are capped by
  // hull collapse — conservative (a bigger dirty region only recomputes
  // more), never unsound.
  const layout::Library& lib = view.library();
  constexpr std::size_t kMaxDirtyRects = 64;
  for (layout::CellId id : view.cells()) {
    const layout::Cell& c = lib.cell(id);
    std::vector<geom::Rect>* mine = nullptr;
    for (const layout::Instance& inst : c.instances) {
      auto it = out.dirtyRects.find(inst.cell);
      if (it == out.dirtyRects.end()) continue;
      if (!mine) mine = &out.dirtyRects[id];
      for (const geom::Rect& r : it->second)
        mine->push_back(inst.transform.apply(r));
    }
    if (mine && mine->size() > kMaxDirtyRects) {
      geom::Rect hull = (*mine)[0];
      for (const geom::Rect& r : *mine) hull = geom::bound(hull, r);
      mine->assign(1, hull);
    }
  }
  return out;
}

Checker::Checker(const layout::Library& lib, layout::CellId root,
                 const tech::Technology& tech, Options options)
    : Checker(std::make_shared<engine::HierarchyView>(lib, root), tech,
              std::move(options)) {}

Checker::Checker(std::shared_ptr<engine::HierarchyView> view,
                 const tech::Technology& tech, Options options)
    : lib_(view->library()),
      root_(view->root()),
      tech_(tech),
      opt_(std::move(options)),
      view_(std::move(view)) {}

void Checker::emitInstantiated(report::Report& rep, layout::CellId cell,
                               report::Violation v) {
  if (!opt_.instantiateViolations) {
    rep.add(std::move(v));
    return;
  }
  for (const engine::Placement& p : view_->placementsOf(cell)) {
    report::Violation inst = v;
    inst.where = p.transform.apply(v.where);
    if (!p.path.empty()) inst.cell = p.path + " (" + v.cell + ")";
    rep.add(std::move(inst));
  }
}

report::Report Checker::run() {
  engine::Executor exec(opt_.threads);
  return run(exec);
}

std::vector<engine::Stage> Checker::stages(
    const std::string& prefix, std::vector<std::string> commonDeps,
    std::vector<std::string> netlistDeps) {
  nl_ = nullptr;
  stageReports_.assign(5, {});
  // The netlist stage is gated by the shared deps plus its own extra
  // edges (a batch's extraction-prefetch stage); interactions depends on
  // this request's netlist stage by name.
  std::vector<std::string> nlDeps = commonDeps;
  nlDeps.insert(nlDeps.end(), netlistDeps.begin(), netlistDeps.end());
  std::vector<std::string> interactDeps = commonDeps;
  interactDeps.push_back(prefix + "netlist");
  // Cost hints mirror the Fig. 10 breakdown (interactions and netlist
  // generation dominate; element/symbol checks are cheap, once per
  // definition). The ready-queue dispatcher starts costlier ready stages
  // first, so netlist generation — the sole dependency of the dominant
  // interaction stage — is never stuck behind the cheap checks. (A
  // supplier serving a cached netlist finishes immediately; the hint
  // stays at the extraction cost because a hit cannot be known here.)
  std::vector<engine::Stage> out;
  out.push_back({prefix + "elements", commonDeps,
                 [this](engine::Executor& e) {
                   stageReports_[0] = checkElementsImpl(e);
                   return report::Report{};
                 },
                 /*cost=*/1.0});
  out.push_back({prefix + "symbols", commonDeps,
                 [this](engine::Executor& e) {
                   stageReports_[1] = checkPrimitiveSymbolsImpl(e);
                   return report::Report{};
                 },
                 /*cost=*/1.0});
  out.push_back({prefix + "connections", commonDeps,
                 [this](engine::Executor& e) {
                   stageReports_[2] = checkConnectionsImpl(e);
                   return report::Report{};
                 },
                 /*cost=*/2.0});
  out.push_back({prefix + "netlist", std::move(nlDeps),
                 [this](engine::Executor& e) {
                   nl_ = supplier_ ? supplier_(e)
                                   : std::make_shared<const netlist::Netlist>(
                                         netlist::extract(*view_, tech_, e,
                                                          opt_.extract));
                   return report::Report{};
                 },
                 /*cost=*/6.0});
  out.push_back({prefix + "interactions", std::move(interactDeps),
                 [this](engine::Executor& e) {
                   stageReports_[4] = checkInteractionsImpl(*nl_, e);
                   return report::Report{};
                 },
                 /*cost=*/10.0});
  return out;
}

report::Report Checker::report() const {
  report::Report merged;
  for (const report::Report& r : stageReports_) merged.merge(r);
  return merged;
}

report::Report Checker::run(engine::Executor& exec) {
  engine::Pipeline pipe;
  for (engine::Stage& s : stages()) pipe.add(std::move(s));
  // Timings are recorded on the failure path too: a caller that catches a
  // stage exception sees how far THIS run got (never-started stages keep
  // start = -1), not a stale copy from the previous run.
  auto record = [&] {
    stageResults_ = pipe.results();
    times_.elements = pipe.seconds("elements");
    times_.symbols = pipe.seconds("symbols");
    times_.connections = pipe.seconds("connections");
    times_.netlist = pipe.seconds("netlist");
    times_.interactions = pipe.seconds("interactions");
  };
  try {
    pipe.run(exec);
  } catch (...) {
    record();
    throw;
  }
  record();
  return report();
}

report::Report Checker::perCellStage(
    engine::Executor& exec, int cacheSlot,
    const std::function<void(layout::CellId, report::Report&)>& fn) {
  const std::vector<layout::CellId>& cells = view_->cells();
  view_->placements();  // built once, read-only for the workers below
  std::vector<report::Report> reps(cells.size());
  // Reuse path: only cells whose own content changed recompute; every
  // clean cell takes its cached report verbatim. The merge below runs in
  // the same cells() order either way, so the output is byte-identical to
  // a full recompute.
  const bool reuse = icache_ && idirty_ && icache_->valid &&
                     icache_->cells == cells &&
                     icache_->perCell[cacheSlot].size() == cells.size();
  if (reuse) {
    const std::vector<report::Report>& cached = icache_->perCell[cacheSlot];
    exec.parallelFor(cells.size(), [&](std::size_t k) {
      if (idirty_->dirtyCells.count(cells[k]))
        fn(cells[k], reps[k]);
      else
        reps[k] = cached[k];
    });
  } else {
    exec.parallelFor(cells.size(),
                     [&](std::size_t k) { fn(cells[k], reps[k]); });
  }
  if (icache_) icache_->perCell[cacheSlot] = reps;
  report::Report out;
  for (const report::Report& r : reps) out.merge(r);
  return out;
}

report::Report Checker::checkElements() {
  engine::Executor exec(opt_.threads);
  return checkElementsImpl(exec);
}

report::Report Checker::checkElementsImpl(engine::Executor& exec) {
  return perCellStage(exec, 0, [&](layout::CellId id, report::Report& rep) {
    const layout::Cell& c = lib_.cell(id);
    if (c.isDevice()) return;  // device geometry is stage 2's business
    for (const layout::Element& e : c.elements) {
      for (report::Violation v : checkElementWidth(e, tech_)) {
        v.cell = c.name;
        emitInstantiated(rep, id, std::move(v));
      }
    }
  });
}

report::Report Checker::checkPrimitiveSymbols() {
  engine::Executor exec(opt_.threads);
  return checkPrimitiveSymbolsImpl(exec);
}

report::Report Checker::checkPrimitiveSymbolsImpl(engine::Executor& exec) {
  if (!opt_.checkDevices) return {};
  return perCellStage(exec, 1, [&](layout::CellId id, report::Report& rep) {
    const layout::Cell& c = lib_.cell(id);
    if (!c.isDevice() || c.prechecked) return;
    for (report::Violation v : checkDeviceCell(c, tech_)) {
      v.cell = c.name;
      emitInstantiated(rep, id, std::move(v));
    }
  });
}

report::Report Checker::checkConnections() {
  engine::Executor exec(opt_.threads);
  return checkConnectionsImpl(exec);
}

report::Report Checker::checkConnectionsImpl(engine::Executor& exec) {
  return perCellStage(exec, 2, [&](layout::CellId id, report::Report& rep) {
    const layout::Cell& c = lib_.cell(id);
    if (c.isDevice()) return;
    for (report::Violation v : checkCellConnections(c, tech_)) {
      v.cell = c.name;
      emitInstantiated(rep, id, std::move(v));
    }
  });
}

netlist::Netlist Checker::generateNetlist() {
  engine::Executor exec(opt_.threads);
  return netlist::extract(*view_, tech_, exec, opt_.extract);
}

report::Report Checker::checkInteractions(const netlist::Netlist& nl) {
  engine::Executor exec(opt_.threads);
  return checkInteractionsImpl(nl, exec);
}

report::Report Checker::checkInteractionsImpl(const netlist::Netlist& nl,
                                              engine::Executor& exec) {
  InteractionContext ctx{*view_,      tech_,   nl,
                         opt_.metric, istats_, opt_.useNetInformation};
  return opt_.hierarchicalInteractions
             ? checkInteractionsHierarchical(ctx, exec, icache_, idirty_)
             : checkInteractionsFlat(ctx, exec);
}

}  // namespace dic::drc
