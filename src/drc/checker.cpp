#include "drc/checker.hpp"

#include <memory>

#include "drc/stages.hpp"
#include "engine/pipeline.hpp"

namespace dic::drc {

Checker::Checker(const layout::Library& lib, layout::CellId root,
                 const tech::Technology& tech, Options options)
    : Checker(std::make_shared<engine::HierarchyView>(lib, root), tech,
              std::move(options)) {}

Checker::Checker(std::shared_ptr<engine::HierarchyView> view,
                 const tech::Technology& tech, Options options)
    : lib_(view->library()),
      root_(view->root()),
      tech_(tech),
      opt_(std::move(options)),
      view_(std::move(view)) {}

void Checker::emitInstantiated(report::Report& rep, layout::CellId cell,
                               report::Violation v) {
  if (!opt_.instantiateViolations) {
    rep.add(std::move(v));
    return;
  }
  for (const engine::Placement& p : view_->placementsOf(cell)) {
    report::Violation inst = v;
    inst.where = p.transform.apply(v.where);
    if (!p.path.empty()) inst.cell = p.path + " (" + v.cell + ")";
    rep.add(std::move(inst));
  }
}

report::Report Checker::run() {
  engine::Executor exec(opt_.threads);
  return run(exec);
}

std::vector<engine::Stage> Checker::stages(
    const std::string& prefix, std::vector<std::string> commonDeps,
    std::vector<std::string> netlistDeps) {
  nl_ = nullptr;
  stageReports_.assign(5, {});
  // The netlist stage is gated by the shared deps plus its own extra
  // edges (a batch's extraction-prefetch stage); interactions depends on
  // this request's netlist stage by name.
  std::vector<std::string> nlDeps = commonDeps;
  nlDeps.insert(nlDeps.end(), netlistDeps.begin(), netlistDeps.end());
  std::vector<std::string> interactDeps = commonDeps;
  interactDeps.push_back(prefix + "netlist");
  // Cost hints mirror the Fig. 10 breakdown (interactions and netlist
  // generation dominate; element/symbol checks are cheap, once per
  // definition). The ready-queue dispatcher starts costlier ready stages
  // first, so netlist generation — the sole dependency of the dominant
  // interaction stage — is never stuck behind the cheap checks. (A
  // supplier serving a cached netlist finishes immediately; the hint
  // stays at the extraction cost because a hit cannot be known here.)
  std::vector<engine::Stage> out;
  out.push_back({prefix + "elements", commonDeps,
                 [this](engine::Executor& e) {
                   stageReports_[0] = checkElementsImpl(e);
                   return report::Report{};
                 },
                 /*cost=*/1.0});
  out.push_back({prefix + "symbols", commonDeps,
                 [this](engine::Executor& e) {
                   stageReports_[1] = checkPrimitiveSymbolsImpl(e);
                   return report::Report{};
                 },
                 /*cost=*/1.0});
  out.push_back({prefix + "connections", commonDeps,
                 [this](engine::Executor& e) {
                   stageReports_[2] = checkConnectionsImpl(e);
                   return report::Report{};
                 },
                 /*cost=*/2.0});
  out.push_back({prefix + "netlist", std::move(nlDeps),
                 [this](engine::Executor& e) {
                   nl_ = supplier_ ? supplier_(e)
                                   : std::make_shared<const netlist::Netlist>(
                                         netlist::extract(*view_, tech_, e,
                                                          opt_.extract));
                   return report::Report{};
                 },
                 /*cost=*/6.0});
  out.push_back({prefix + "interactions", std::move(interactDeps),
                 [this](engine::Executor& e) {
                   stageReports_[4] = checkInteractionsImpl(*nl_, e);
                   return report::Report{};
                 },
                 /*cost=*/10.0});
  return out;
}

report::Report Checker::report() const {
  report::Report merged;
  for (const report::Report& r : stageReports_) merged.merge(r);
  return merged;
}

report::Report Checker::run(engine::Executor& exec) {
  engine::Pipeline pipe;
  for (engine::Stage& s : stages()) pipe.add(std::move(s));
  // Timings are recorded on the failure path too: a caller that catches a
  // stage exception sees how far THIS run got (never-started stages keep
  // start = -1), not a stale copy from the previous run.
  auto record = [&] {
    stageResults_ = pipe.results();
    times_.elements = pipe.seconds("elements");
    times_.symbols = pipe.seconds("symbols");
    times_.connections = pipe.seconds("connections");
    times_.netlist = pipe.seconds("netlist");
    times_.interactions = pipe.seconds("interactions");
  };
  try {
    pipe.run(exec);
  } catch (...) {
    record();
    throw;
  }
  record();
  return report();
}

report::Report Checker::perCellStage(
    engine::Executor& exec,
    const std::function<void(layout::CellId, report::Report&)>& fn) {
  const std::vector<layout::CellId>& cells = view_->cells();
  view_->placements();  // built once, read-only for the workers below
  std::vector<report::Report> reps(cells.size());
  exec.parallelFor(cells.size(),
                   [&](std::size_t k) { fn(cells[k], reps[k]); });
  report::Report out;
  for (const report::Report& r : reps) out.merge(r);
  return out;
}

report::Report Checker::checkElements() {
  engine::Executor exec(opt_.threads);
  return checkElementsImpl(exec);
}

report::Report Checker::checkElementsImpl(engine::Executor& exec) {
  return perCellStage(exec, [&](layout::CellId id, report::Report& rep) {
    const layout::Cell& c = lib_.cell(id);
    if (c.isDevice()) return;  // device geometry is stage 2's business
    for (const layout::Element& e : c.elements) {
      for (report::Violation v : checkElementWidth(e, tech_)) {
        v.cell = c.name;
        emitInstantiated(rep, id, std::move(v));
      }
    }
  });
}

report::Report Checker::checkPrimitiveSymbols() {
  engine::Executor exec(opt_.threads);
  return checkPrimitiveSymbolsImpl(exec);
}

report::Report Checker::checkPrimitiveSymbolsImpl(engine::Executor& exec) {
  if (!opt_.checkDevices) return {};
  return perCellStage(exec, [&](layout::CellId id, report::Report& rep) {
    const layout::Cell& c = lib_.cell(id);
    if (!c.isDevice() || c.prechecked) return;
    for (report::Violation v : checkDeviceCell(c, tech_)) {
      v.cell = c.name;
      emitInstantiated(rep, id, std::move(v));
    }
  });
}

report::Report Checker::checkConnections() {
  engine::Executor exec(opt_.threads);
  return checkConnectionsImpl(exec);
}

report::Report Checker::checkConnectionsImpl(engine::Executor& exec) {
  return perCellStage(exec, [&](layout::CellId id, report::Report& rep) {
    const layout::Cell& c = lib_.cell(id);
    if (c.isDevice()) return;
    for (report::Violation v : checkCellConnections(c, tech_)) {
      v.cell = c.name;
      emitInstantiated(rep, id, std::move(v));
    }
  });
}

netlist::Netlist Checker::generateNetlist() {
  engine::Executor exec(opt_.threads);
  return netlist::extract(*view_, tech_, exec, opt_.extract);
}

report::Report Checker::checkInteractions(const netlist::Netlist& nl) {
  engine::Executor exec(opt_.threads);
  return checkInteractionsImpl(nl, exec);
}

report::Report Checker::checkInteractionsImpl(const netlist::Netlist& nl,
                                              engine::Executor& exec) {
  InteractionContext ctx{*view_,      tech_,   nl,
                         opt_.metric, istats_, opt_.useNetInformation};
  return opt_.hierarchicalInteractions
             ? checkInteractionsHierarchical(ctx, exec)
             : checkInteractionsFlat(ctx, exec);
}

}  // namespace dic::drc
