#include "drc/checker.hpp"

#include <chrono>

#include "drc/stages.hpp"

namespace dic::drc {

namespace {

double seconds(std::chrono::steady_clock::time_point a,
               std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Checker::Checker(const layout::Library& lib, layout::CellId root,
                 const tech::Technology& tech, Options options)
    : lib_(lib), root_(root), tech_(tech), opt_(options) {}

void Checker::collectPlacements() {
  if (placementsReady_) return;
  std::function<void(layout::CellId, const geom::Transform&,
                     const std::string&)>
      rec = [&](layout::CellId id, const geom::Transform& t,
                const std::string& path) {
        placements_[id].push_back({t, path});
        int childNo = 0;
        for (const layout::Instance& inst : lib_.cell(id).instances) {
          std::string childName =
              inst.name.empty() ? lib_.cell(inst.cell).name + "_" +
                                      std::to_string(childNo)
                                : inst.name;
          ++childNo;
          rec(inst.cell, geom::compose(inst.transform, t),
              path.empty() ? childName : path + "." + childName);
        }
      };
  rec(root_, geom::identityTransform(), "");
  placementsReady_ = true;
}

const std::vector<Checker::Placement>& Checker::placements(
    layout::CellId id) {
  collectPlacements();
  static const std::vector<Placement> kNone;
  auto it = placements_.find(id);
  return it == placements_.end() ? kNone : it->second;
}

void Checker::emitInstantiated(report::Report& rep, layout::CellId cell,
                               report::Violation v) {
  if (!opt_.instantiateViolations) {
    rep.add(std::move(v));
    return;
  }
  for (const Placement& p : placements(cell)) {
    report::Violation inst = v;
    inst.where = p.transform.apply(v.where);
    if (!p.path.empty()) inst.cell = p.path + " (" + v.cell + ")";
    rep.add(std::move(inst));
  }
}

report::Report Checker::run() {
  const auto t0 = std::chrono::steady_clock::now();
  report::Report rep = checkElements();
  const auto t1 = std::chrono::steady_clock::now();
  rep.merge(checkPrimitiveSymbols());
  const auto t2 = std::chrono::steady_clock::now();
  rep.merge(checkConnections());
  const auto t3 = std::chrono::steady_clock::now();
  const netlist::Netlist nl = generateNetlist();
  const auto t4 = std::chrono::steady_clock::now();
  rep.merge(checkInteractions(nl));
  const auto t5 = std::chrono::steady_clock::now();
  times_.elements = seconds(t0, t1);
  times_.symbols = seconds(t1, t2);
  times_.connections = seconds(t2, t3);
  times_.netlist = seconds(t3, t4);
  times_.interactions = seconds(t4, t5);
  return rep;
}

report::Report Checker::checkElements() {
  report::Report rep;
  lib_.forEachCellOnce(root_, [&](layout::CellId id) {
    const layout::Cell& c = lib_.cell(id);
    if (c.isDevice()) return;  // device geometry is stage 2's business
    for (const layout::Element& e : c.elements) {
      for (report::Violation v : checkElementWidth(e, tech_)) {
        v.cell = c.name;
        emitInstantiated(rep, id, std::move(v));
      }
    }
  });
  return rep;
}

report::Report Checker::checkPrimitiveSymbols() {
  report::Report rep;
  if (!opt_.checkDevices) return rep;
  lib_.forEachCellOnce(root_, [&](layout::CellId id) {
    const layout::Cell& c = lib_.cell(id);
    if (!c.isDevice() || c.prechecked) return;
    for (report::Violation v : checkDeviceCell(c, tech_)) {
      v.cell = c.name;
      emitInstantiated(rep, id, std::move(v));
    }
  });
  return rep;
}

report::Report Checker::checkConnections() {
  report::Report rep;
  lib_.forEachCellOnce(root_, [&](layout::CellId id) {
    const layout::Cell& c = lib_.cell(id);
    if (c.isDevice()) return;
    for (report::Violation v : checkCellConnections(c, tech_)) {
      v.cell = c.name;
      emitInstantiated(rep, id, std::move(v));
    }
  });
  return rep;
}

netlist::Netlist Checker::generateNetlist() {
  return netlist::extract(lib_, root_, tech_);
}

report::Report Checker::checkInteractions(const netlist::Netlist& nl) {
  collectPlacements();
  InteractionContext ctx{lib_,        root_,   tech_,
                         nl,          opt_.metric, istats_,
                         opt_.useNetInformation};
  if (opt_.hierarchicalInteractions) {
    std::map<layout::CellId, std::vector<InteractionContext::Placement>> pl;
    for (const auto& [cell, ps] : placements_) {
      auto& v = pl[cell];
      for (const Placement& p : ps) v.push_back({p.transform, p.path});
    }
    return checkInteractionsHierarchical(ctx, pl);
  }
  return checkInteractionsFlat(ctx);
}

}  // namespace dic::drc
