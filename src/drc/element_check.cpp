#include "drc/stages.hpp"

#include "geom/width.hpp"

namespace dic::drc {

namespace {

bool isManhattanWire(const std::vector<geom::Point>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const geom::Point d = path[i + 1] - path[i];
    if (d.x != 0 && d.y != 0) return false;
  }
  return true;
}

}  // namespace

std::vector<report::Violation> checkElementWidth(
    const layout::Element& e, const tech::Technology& tech) {
  std::vector<report::Violation> out;
  const geom::Coord minW = tech.layer(e.layer).minWidth;
  const std::string& layerName = tech.layer(e.layer).name;

  auto violation = [&](const geom::Rect& where, geom::Coord measured) {
    report::Violation v;
    v.category = report::Category::kWidth;
    v.rule = "W." + layerName;
    v.where = where;
    v.layerA = e.layer;
    v.message = "width " + std::to_string(measured) + " < " +
                std::to_string(minW);
    out.push_back(std::move(v));
  };

  switch (e.kind) {
    case layout::ElementKind::kBox: {
      const geom::Coord w = std::min(e.box.width(), e.box.height());
      if (w < minW) violation(e.box, w);
      break;
    }
    case layout::ElementKind::kWire: {
      if (!isManhattanWire(e.path)) {
        report::Violation v;
        v.category = report::Category::kOther;
        v.rule = "GEOM.MANHATTAN";
        v.where = e.bbox();
        v.layerA = e.layer;
        v.message = "non-Manhattan wire";
        out.push_back(std::move(v));
        break;
      }
      if (e.wireWidth < minW) violation(e.bbox(), e.wireWidth);
      break;
    }
    case layout::ElementKind::kPolygon: {
      const geom::Polygon poly(e.path);
      if (!poly.isManhattan()) {
        report::Violation v;
        v.category = report::Category::kOther;
        v.rule = "GEOM.MANHATTAN";
        v.where = poly.bbox();
        v.layerA = e.layer;
        v.message = "non-Manhattan polygon";
        out.push_back(std::move(v));
        break;
      }
      // "polygons require a more general purpose polygon width routine":
      // the edge-based check on the exact region.
      for (const geom::WidthViolation& wv :
           geom::checkWidthEdges(poly.toRegion(), minW))
        violation(wv.where, wv.measured);
      break;
    }
  }
  return out;
}

std::vector<report::Violation> checkCellConnections(
    const layout::Cell& cell, const tech::Technology& tech) {
  std::vector<report::Violation> out;
  const std::size_t n = cell.elements.size();
  std::vector<geom::Rect> bboxes(n);
  std::vector<geom::Skeleton> skels(n);
  std::vector<geom::Region> regions(n);
  for (std::size_t i = 0; i < n; ++i) {
    const layout::Element& e = cell.elements[i];
    bboxes[i] = e.bbox();
    skels[i] = e.skeleton(tech.layer(e.layer).minWidth);
    regions[i] = e.region();
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const layout::Element& a = cell.elements[i];
      const layout::Element& b = cell.elements[j];
      if (a.layer != b.layer) continue;
      if (!geom::closedTouch(bboxes[i], bboxes[j])) continue;
      // Regions must actually touch (closed): check rect pairs.
      bool touch = false;
      for (const geom::Rect& ra : regions[i].rects()) {
        for (const geom::Rect& rb : regions[j].rects())
          if (geom::closedTouch(ra, rb)) {
            touch = true;
            break;
          }
        if (touch) break;
      }
      if (!touch) continue;
      if (geom::skeletonsConnected(skels[i], skels[j])) continue;
      report::Violation v;
      v.category = report::Category::kConnection;
      v.rule = "CONN." + tech.layer(a.layer).name;
      v.where = geom::intersect(bboxes[i].inflated(1), bboxes[j].inflated(1));
      v.layerA = a.layer;
      v.layerB = b.layer;
      v.message =
          "elements touch but are not skeletally connected (union may be "
          "pinched)";
      out.push_back(std::move(v));
    }
  }
  return out;
}

}  // namespace dic::drc
