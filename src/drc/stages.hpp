#pragma once
/// \file stages.hpp
/// Internal stage implementations of the DIC pipeline. Public interface is
/// drc/checker.hpp; these are exposed for unit testing of each stage.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "drc/checker.hpp"
#include "engine/executor.hpp"
#include "engine/hierarchy_view.hpp"

namespace dic::drc {

/// Stage 1: width (and Manhattan validity) of a single interconnect
/// element. "Boxes and wires are trivial to check, polygons require a
/// more general purpose polygon width routine."
std::vector<report::Violation> checkElementWidth(const layout::Element& e,
                                                 const tech::Technology& tech);

/// Stage 2: the rules of one primitive device symbol (enclosures,
/// overlaps, contact-over-gate, device-dependent isolation rules).
std::vector<report::Violation> checkDeviceCell(const layout::Cell& cell,
                                               const tech::Technology& tech);

/// Stage 3: legal connections between elements of one cell: touching
/// same-layer elements must be skeletally connected (Fig. 11), otherwise
/// the union may be pinched below minimum width.
std::vector<report::Violation> checkCellConnections(
    const layout::Cell& cell, const tech::Technology& tech);

/// Shared context of the interaction stage (stage 5). All placement
/// enumeration, flattening, and candidate-pair queries go through the
/// engine::HierarchyView; this context only adds net knowledge on top.
struct InteractionContext {
  InteractionContext(engine::HierarchyView& view_,
                     const tech::Technology& tech_,
                     const netlist::Netlist& nl_, geom::Metric metric_,
                     InteractionStats& stats_, bool useNets_ = true)
      : view(view_), tech(tech_), nl(nl_), metric(metric_), stats(stats_),
        useNets(useNets_) {}

  engine::HierarchyView& view;
  const tech::Technology& tech;
  const netlist::Netlist& nl;
  geom::Metric metric;
  /// Aggregate sink; parallel workers count into private copies that are
  /// merged here in deterministic order after the fan-out.
  InteractionStats& stats;
  bool useNets{true};

  /// Flat net id of an interconnect element, -1 if unknown/none.
  int elementNet(const std::string& path, layout::CellId cell,
                 std::size_t index) const;
  /// Terminal nets of a device instance path (empty if not a device).
  const std::vector<int>* deviceNets(const std::string& path) const;
  /// Resistor devices always get spacing checks (Fig. 5b).
  bool isResistor(const std::string& path) const;

  void buildMaps();

 private:
  std::map<std::string, int> netByKey_;
  std::map<std::string, std::vector<int>> netsByDevice_;
  std::set<std::string> resistorDevices_;
  bool ready_{false};
};

/// Stage 5, exact reference: flatten everything and check all candidate
/// pairs with the Fig. 12 matrix. Pair evaluation fans across the
/// executor's workers in deterministic chunks.
report::Report checkInteractionsFlat(InteractionContext& ctx,
                                     engine::Executor& exec);

/// Stage 5, hierarchical: per-cell-once intra-cell pairs plus
/// parent-element/instance and instance/instance overlap windows, each an
/// independent work item fanned across the executor's workers.
///
/// With `cache` set the per-item reports and stats of this run are stored
/// under their deterministic item keys; with `dirty` additionally set (and
/// DirtyInfo::reuseInteractions true) items whose window no transformed
/// dirty rect can reach take their cached result instead of recomputing —
/// merged in the identical item order, so the output is byte-for-byte the
/// cold-run report.
report::Report checkInteractionsHierarchical(InteractionContext& ctx,
                                             engine::Executor& exec,
                                             IncrementalCache* cache = nullptr,
                                             const DirtyInfo* dirty = nullptr);

}  // namespace dic::drc
