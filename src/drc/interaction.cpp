#include <algorithm>
#include <cmath>
#include <optional>

#include "drc/stages.hpp"
#include "geom/spacing.hpp"
#include "geom/spatial.hpp"

namespace dic::drc {

namespace {

using geom::Coord;
using geom::Rect;
using geom::Region;

/// Device info used for the "related" sub-case of Fig. 12.
struct DevInfo {
  std::vector<int> nets;
  bool alwaysCheck{false};  ///< resistors: Fig. 5b -- spacing matters even
                            ///< for electrically equivalent geometry
};

std::string joinPath(const std::string& a, const std::string& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  return a + "." + b;
}

std::string key(const std::string& path, layout::CellId cell,
                std::size_t idx) {
  return path + "#" + std::to_string(cell) + "#" + std::to_string(idx);
}

/// A shape prepared for pair checking: geometry plus identity.
struct Shape {
  layout::Element elem;
  Rect bbox;
  Region region;
  geom::Skeleton skel;
  bool deviceInternal{false};
  layout::CellId srcCell{0};
  std::size_t srcIdx{0};
  std::string localPath;  ///< path relative to the cell being processed
};

Shape makeShape(layout::Element e, const tech::Technology& tech,
                bool deviceInternal, layout::CellId srcCell,
                std::size_t srcIdx, std::string localPath) {
  Shape s;
  s.bbox = e.bbox();
  s.region = e.region();
  s.skel = e.skeleton(tech.layer(e.layer).minWidth);
  s.elem = std::move(e);
  s.deviceInternal = deviceInternal;
  s.srcCell = srcCell;
  s.srcIdx = srcIdx;
  s.localPath = std::move(localPath);
  return s;
}

/// Placement-independent geometric facts about a candidate pair.
struct PairGeometry {
  bool sameLayer{false};
  bool touching{false};
  bool skeletallyConnected{false};
  std::optional<double> distance;  ///< below the max applicable rule
  Coord maxRule{0};
};

}  // namespace

void InteractionContext::buildMaps() {
  if (ready_) return;
  ready_ = true;
  std::vector<layout::FlatElement> elements;
  std::vector<layout::FlatDevice> devices;
  lib.flatten(root, elements, devices, /*includeDeviceGeometry=*/false);
  for (std::size_t i = 0; i < elements.size() && i < nl.elementNet.size();
       ++i) {
    netByKey_[key(elements[i].path, elements[i].sourceCell,
                  elements[i].sourceIndex)] = nl.elementNet[i];
  }
  for (const netlist::ExtractedDevice& d : nl.devices) {
    std::vector<int> nets;
    for (const auto& [port, net] : d.portNets) nets.push_back(net);
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
    netsByDevice_[d.path] = std::move(nets);
    if (d.cls == tech::DeviceClass::kResistor ||
        d.cls == tech::DeviceClass::kBipolarResistor)
      resistorDevices_.insert(d.path);
  }
}

int InteractionContext::elementNet(const std::string& path,
                                   layout::CellId cell,
                                   std::size_t index) const {
  auto it = netByKey_.find(key(path, cell, index));
  return it == netByKey_.end() ? -1 : it->second;
}

const std::vector<int>* InteractionContext::deviceNets(
    const std::string& path) const {
  auto it = netsByDevice_.find(path);
  return it == netsByDevice_.end() ? nullptr : &it->second;
}

bool InteractionContext::isResistor(const std::string& path) const {
  return resistorDevices_.count(path) > 0;
}

namespace {

/// Net relation of a shape pair in a specific placement context
/// (placementPath prefixes both shapes' local paths). Returns nullopt for
/// intra-device pairs (stage 2's business).
std::optional<tech::NetRelation> relationOf(const InteractionContext& ctx,
                                            const Shape& a, const Shape& b,
                                            const std::string& placementPath) {
  const std::string pa = joinPath(placementPath, a.localPath);
  const std::string pb = joinPath(placementPath, b.localPath);
  if (a.deviceInternal && b.deviceInternal) {
    if (pa == pb) return std::nullopt;  // same device instance
    const auto* na = ctx.deviceNets(pa);
    const auto* nb = ctx.deviceNets(pb);
    if (na && nb) {
      const bool share = std::find_first_of(na->begin(), na->end(),
                                            nb->begin(), nb->end()) !=
                         na->end();
      if (share)
        return (ctx.isResistor(pa) || ctx.isResistor(pb))
                   ? tech::NetRelation::kDiffNet
                   : tech::NetRelation::kRelated;
    }
    return tech::NetRelation::kDiffNet;
  }
  if (a.deviceInternal || b.deviceInternal) {
    const Shape& dev = a.deviceInternal ? a : b;
    const Shape& ic = a.deviceInternal ? b : a;
    const std::string& dp = a.deviceInternal ? pa : pb;
    const std::string& ip = a.deviceInternal ? pb : pa;
    const auto* nets = ctx.deviceNets(dp);
    const int net = ctx.elementNet(ip, ic.srcCell, ic.srcIdx);
    (void)dev;
    if (nets && net >= 0 &&
        std::find(nets->begin(), nets->end(), net) != nets->end())
      return ctx.isResistor(dp) ? tech::NetRelation::kDiffNet
                                : tech::NetRelation::kRelated;
    return tech::NetRelation::kDiffNet;
  }
  const int na = ctx.elementNet(pa, a.srcCell, a.srcIdx);
  const int nb = ctx.elementNet(pb, b.srcCell, b.srcIdx);
  if (na >= 0 && na == nb) return tech::NetRelation::kSameNet;
  return tech::NetRelation::kDiffNet;
}

/// Placement-independent geometry of a candidate pair.
PairGeometry pairGeometry(const InteractionContext& ctx, const Shape& a,
                          const Shape& b) {
  PairGeometry g;
  g.sameLayer = a.elem.layer == b.elem.layer;
  const tech::SpacingRule& rule = ctx.tech.spacing(a.elem.layer, b.elem.layer);
  g.maxRule = std::max({rule.sameNet, rule.diffNet, rule.related});
  if (g.sameLayer || g.maxRule > 0) {
    bool touch = false;
    for (const Rect& ra : a.region.rects()) {
      for (const Rect& rb : b.region.rects())
        if (geom::closedTouch(ra, rb)) {
          touch = true;
          break;
        }
      if (touch) break;
    }
    g.touching = touch;
    if (g.sameLayer && touch)
      g.skeletallyConnected = geom::skeletonsConnected(a.skel, b.skel);
    if (!touch && g.maxRule > 0)
      g.distance =
          geom::distanceBelow(a.region, b.region, g.maxRule, ctx.metric);
    else if (touch)
      g.distance = 0.0;
  }
  return g;
}

/// Evaluate one candidate pair in one placement and emit violations.
void evaluatePair(InteractionContext& ctx, const Shape& a, const Shape& b,
                  const PairGeometry& g, const std::string& placementPath,
                  const geom::Transform& placement, report::Report& rep,
                  bool skipConnectionCheck) {
  // Early-outs that need no net information: a legal connection, or a
  // pair farther apart than every applicable rule. These make the
  // per-placement evaluation of hierarchical checking cheap.
  if (g.sameLayer && g.touching && g.skeletallyConnected) return;
  if (!(g.sameLayer && g.touching) && !g.distance) {
    if (!ctx.tech.spacing(a.elem.layer, b.elem.layer).any())
      ++ctx.stats.noRulePairs;
    return;
  }

  const auto rel = ctx.useNets
                       ? relationOf(ctx, a, b, placementPath)
                       : std::optional<tech::NetRelation>(
                             tech::NetRelation::kUnknown);
  if (!rel) return;  // intra-device

  if (g.sameLayer && g.touching) {
    ++ctx.stats.connectionChecks;
    const bool portLanding =
        (a.deviceInternal != b.deviceInternal) &&
        *rel == tech::NetRelation::kRelated;
    if (!g.skeletallyConnected && !portLanding && !skipConnectionCheck) {
      report::Violation v;
      v.category = report::Category::kConnection;
      v.rule = "CONN." + ctx.tech.layer(a.elem.layer).name;
      v.where = placement.apply(
          geom::intersect(a.bbox.inflated(1), b.bbox.inflated(1)));
      v.layerA = a.elem.layer;
      v.layerB = b.elem.layer;
      v.cell = joinPath(placementPath, a.localPath);
      v.message = "touching elements are not skeletally connected";
      rep.add(std::move(v));
    }
    if (g.skeletallyConnected) return;  // a legal connection, not spacing
  }

  const tech::SpacingRule& rule = ctx.tech.spacing(a.elem.layer, b.elem.layer);
  if (!rule.any()) {
    ++ctx.stats.noRulePairs;
    return;
  }
  const Coord s = rule.forRelation(*rel);
  if (s == 0) {
    if (*rel == tech::NetRelation::kSameNet)
      ++ctx.stats.sameNetSkipped;
    else if (*rel == tech::NetRelation::kRelated)
      ++ctx.stats.relatedSkipped;
    return;
  }
  ++ctx.stats.distanceChecks;
  const int la = std::min(a.elem.layer, b.elem.layer);
  const int lb = std::max(a.elem.layer, b.elem.layer);
  ++ctx.stats.perLayerPair[{la, lb}];
  if (!g.distance || *g.distance >= static_cast<double>(s)) return;

  report::Violation v;
  v.category = report::Category::kSpacing;
  v.rule = "S." + ctx.tech.layer(la).name + "." + ctx.tech.layer(lb).name +
           (*rel == tech::NetRelation::kSameNet
                ? ".SAMENET"
                : *rel == tech::NetRelation::kRelated ? ".RELATED"
                                                      : ".DIFFNET");
  const Coord pad = static_cast<Coord>(std::ceil(*g.distance)) + 1;
  v.where = placement.apply(
      geom::intersect(a.bbox.inflated(pad), b.bbox.inflated(pad)));
  v.layerA = a.elem.layer;
  v.layerB = b.elem.layer;
  v.cell = joinPath(placementPath, a.localPath);
  v.message = "spacing " + std::to_string(*g.distance) + " < " +
              std::to_string(s);
  rep.add(std::move(v));
}

/// Collect shapes of a subtree restricted to `window` (in the coordinates
/// of the cell owning the traversal). Device internals are included with
/// deviceInternal=true; paths are relative to that cell.
void collectWindowShapes(const InteractionContext& ctx, layout::CellId id,
                         const geom::Transform& t, const Rect& window,
                         const std::string& relPath, bool insideDevice,
                         std::vector<Shape>& out) {
  const layout::Cell& c = ctx.lib.cell(id);
  const bool deviceHere = insideDevice || c.isDevice();
  for (std::size_t i = 0; i < c.elements.size(); ++i) {
    const Rect b = t.apply(c.elements[i].bbox());
    if (!geom::closedTouch(b, window)) continue;
    out.push_back(makeShape(c.elements[i].transformed(t), ctx.tech,
                            deviceHere, id, i, relPath));
  }
  int childNo = 0;
  for (const layout::Instance& inst : c.instances) {
    const geom::Transform ct = geom::compose(inst.transform, t);
    const Rect cb = ct.apply(ctx.lib.cellBBox(inst.cell));
    std::string childName =
        inst.name.empty()
            ? ctx.lib.cell(inst.cell).name + "_" + std::to_string(childNo)
            : inst.name;
    ++childNo;
    if (!geom::closedTouch(cb, window)) continue;
    collectWindowShapes(ctx, inst.cell, ct, window,
                        joinPath(relPath, childName), deviceHere, out);
  }
}

}  // namespace

report::Report checkInteractionsFlat(InteractionContext& ctx) {
  ctx.buildMaps();
  report::Report rep;
  const Coord dmax = std::max<Coord>(ctx.tech.maxInteractionDistance(), 1);

  // Every element in the design, device internals included, with full
  // paths as local paths (placementPath = "").
  std::vector<Shape> shapes;
  {
    std::vector<layout::FlatElement> fe;
    std::vector<layout::FlatDevice> fd;
    ctx.lib.flatten(ctx.root, fe, fd, /*includeDeviceGeometry=*/true);
    shapes.reserve(fe.size());
    for (layout::FlatElement& e : fe) {
      const bool dev = ctx.lib.cell(e.sourceCell).isDevice();
      shapes.push_back(makeShape(std::move(e.element), ctx.tech, dev,
                                 e.sourceCell, e.sourceIndex, e.path));
    }
  }

  geom::GridIndex grid(dmax * 16);
  for (std::size_t i = 0; i < shapes.size(); ++i)
    grid.insert(i, shapes[i].bbox);
  const geom::Transform id = geom::identityTransform();
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    for (std::size_t j : grid.query(shapes[i].bbox.inflated(dmax))) {
      if (j <= i) continue;
      if (geom::rectDistance(shapes[i].bbox, shapes[j].bbox,
                             geom::Metric::kOrthogonal) >
          static_cast<double>(dmax))
        continue;
      ++ctx.stats.candidatePairs;
      const PairGeometry g = pairGeometry(ctx, shapes[i], shapes[j]);
      // Same-cell-instance pairs had their connection legality checked in
      // stage 3; do not duplicate those reports.
      const bool sameCellInstance =
          shapes[i].localPath == shapes[j].localPath &&
          shapes[i].srcCell == shapes[j].srcCell;
      evaluatePair(ctx, shapes[i], shapes[j], g, "", id, rep,
                   sameCellInstance);
    }
  }
  return rep;
}

report::Report checkInteractionsHierarchical(
    InteractionContext& ctx,
    const std::map<layout::CellId,
                   std::vector<InteractionContext::Placement>>& placements) {
  ctx.buildMaps();
  report::Report rep;
  const Coord dmax = std::max<Coord>(ctx.tech.maxInteractionDistance(), 1);

  ctx.lib.forEachCellOnce(ctx.root, [&](layout::CellId cid) {
    const layout::Cell& c = ctx.lib.cell(cid);
    if (c.isDevice()) return;  // internals handled by stage 2 + windows
    auto plIt = placements.find(cid);
    if (plIt == placements.end() || plIt->second.empty()) return;
    const auto& places = plIt->second;

    // Local shapes of this cell.
    std::vector<Shape> local;
    local.reserve(c.elements.size());
    for (std::size_t i = 0; i < c.elements.size(); ++i)
      local.push_back(
          makeShape(c.elements[i], ctx.tech, false, cid, i, ""));

    // (a) Intra-cell pairs: geometry once, relation per placement.
    geom::GridIndex grid(dmax * 16);
    for (std::size_t i = 0; i < local.size(); ++i)
      grid.insert(i, local[i].bbox);
    for (std::size_t i = 0; i < local.size(); ++i) {
      for (std::size_t j : grid.query(local[i].bbox.inflated(dmax))) {
        if (j <= i) continue;
        if (geom::rectDistance(local[i].bbox, local[j].bbox,
                               geom::Metric::kOrthogonal) >
            static_cast<double>(dmax))
          continue;
        ++ctx.stats.candidatePairs;
        const PairGeometry g = pairGeometry(ctx, local[i], local[j]);
        for (const auto& p : places)
          evaluatePair(ctx, local[i], local[j], g, p.path, p.transform, rep,
                       /*skipConnectionCheck=*/true);
      }
    }

    // Child instance bboxes in this cell's coordinates.
    struct Child {
      std::size_t idx;
      Rect bbox;
      geom::Transform transform;
      std::string name;
    };
    std::vector<Child> children;
    int childNo = 0;
    for (std::size_t k = 0; k < c.instances.size(); ++k) {
      const layout::Instance& inst = c.instances[k];
      std::string childName =
          inst.name.empty()
              ? ctx.lib.cell(inst.cell).name + "_" + std::to_string(childNo)
              : inst.name;
      ++childNo;
      children.push_back({k, inst.transform.apply(ctx.lib.cellBBox(inst.cell)),
                          inst.transform, std::move(childName)});
    }

    // (b) Local element vs child instance windows.
    for (const Shape& e : local) {
      for (const Child& ch : children) {
        if (geom::rectDistance(e.bbox, ch.bbox, geom::Metric::kOrthogonal) >
            static_cast<double>(dmax))
          continue;
        const Rect window = geom::intersect(e.bbox.inflated(dmax),
                                            ch.bbox.inflated(dmax));
        std::vector<Shape> inner;
        collectWindowShapes(ctx, c.instances[ch.idx].cell, ch.transform,
                            window, ch.name, false, inner);
        for (const Shape& x : inner) {
          if (geom::rectDistance(e.bbox, x.bbox, geom::Metric::kOrthogonal) >
              static_cast<double>(dmax))
            continue;
          ++ctx.stats.candidatePairs;
          const PairGeometry g = pairGeometry(ctx, e, x);
          for (const auto& p : places)
            evaluatePair(ctx, e, x, g, p.path, p.transform, rep, false);
        }
      }
    }

    // (c) Child instance pair windows.
    for (std::size_t i = 0; i < children.size(); ++i) {
      for (std::size_t j = i + 1; j < children.size(); ++j) {
        const Child& ci = children[i];
        const Child& cj = children[j];
        if (geom::rectDistance(ci.bbox, cj.bbox, geom::Metric::kOrthogonal) >
            static_cast<double>(dmax))
          continue;
        const Rect window = geom::intersect(ci.bbox.inflated(dmax),
                                            cj.bbox.inflated(dmax));
        std::vector<Shape> si, sj;
        collectWindowShapes(ctx, c.instances[ci.idx].cell, ci.transform,
                            window, ci.name, false, si);
        collectWindowShapes(ctx, c.instances[cj.idx].cell, cj.transform,
                            window, cj.name, false, sj);
        for (const Shape& a : si) {
          for (const Shape& b : sj) {
            if (geom::rectDistance(a.bbox, b.bbox,
                                   geom::Metric::kOrthogonal) >
                static_cast<double>(dmax))
              continue;
            ++ctx.stats.candidatePairs;
            const PairGeometry g = pairGeometry(ctx, a, b);
            for (const auto& p : places)
              evaluatePair(ctx, a, b, g, p.path, p.transform, rep, false);
          }
        }
      }
    }
  });
  return rep;
}

}  // namespace dic::drc
