#include <algorithm>
#include <cmath>
#include <optional>

#include "drc/stages.hpp"
#include "geom/spacing.hpp"
#include "obs/trace.hpp"

namespace dic::drc {

namespace {

using geom::Coord;
using geom::Rect;
using geom::Region;

using engine::joinPath;  // the one true dot-notation path composition

std::string key(const std::string& path, layout::CellId cell,
                std::size_t idx) {
  return path + "#" + std::to_string(cell) + "#" + std::to_string(idx);
}

/// A shape prepared for pair checking: geometry plus identity.
struct Shape {
  layout::Element elem;
  Rect bbox;
  Region region;
  geom::Skeleton skel;
  bool deviceInternal{false};
  layout::CellId srcCell{0};
  std::size_t srcIdx{0};
  std::string localPath;  ///< path relative to the cell being processed
};

Shape makeShape(layout::Element e, const tech::Technology& tech,
                bool deviceInternal, layout::CellId srcCell,
                std::size_t srcIdx, std::string localPath) {
  Shape s;
  s.bbox = e.bbox();
  s.region = e.region();
  s.skel = e.skeleton(tech.layer(e.layer).minWidth);
  s.elem = std::move(e);
  s.deviceInternal = deviceInternal;
  s.srcCell = srcCell;
  s.srcIdx = srcIdx;
  s.localPath = std::move(localPath);
  return s;
}

Shape makeShape(const engine::WindowElement& we, const tech::Technology& tech) {
  return makeShape(we.element, tech, we.fromDevice, we.sourceCell,
                   we.sourceIndex, we.path);
}

/// Placement-independent geometric facts about a candidate pair.
struct PairGeometry {
  bool sameLayer{false};
  bool touching{false};
  bool skeletallyConnected{false};
  std::optional<double> distance;  ///< below the max applicable rule
  Coord maxRule{0};
};

/// Integer interaction-distance filter: equivalent to the orthogonal
/// rectDistance comparison but with no double round-trip.
bool bboxesWithin(const Rect& a, const Rect& b, Coord d) {
  return geom::chebyshev(geom::rectGap(a, b)) <= d;
}

}  // namespace

void InteractionContext::buildMaps() {
  if (ready_) return;
  ready_ = true;
  const engine::HierarchyView::Flat& f = view.flat(false);
  for (std::size_t i = 0;
       i < f.elements.size() && i < nl.elementNet.size(); ++i) {
    netByKey_[key(f.elements[i].path, f.elements[i].sourceCell,
                  f.elements[i].sourceIndex)] = nl.elementNet[i];
  }
  for (const netlist::ExtractedDevice& d : nl.devices) {
    std::vector<int> nets;
    for (const auto& [port, net] : d.portNets) nets.push_back(net);
    std::sort(nets.begin(), nets.end());
    nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
    netsByDevice_[d.path] = std::move(nets);
    if (d.cls == tech::DeviceClass::kResistor ||
        d.cls == tech::DeviceClass::kBipolarResistor)
      resistorDevices_.insert(d.path);
  }
}

int InteractionContext::elementNet(const std::string& path,
                                   layout::CellId cell,
                                   std::size_t index) const {
  auto it = netByKey_.find(key(path, cell, index));
  return it == netByKey_.end() ? -1 : it->second;
}

const std::vector<int>* InteractionContext::deviceNets(
    const std::string& path) const {
  auto it = netsByDevice_.find(path);
  return it == netsByDevice_.end() ? nullptr : &it->second;
}

bool InteractionContext::isResistor(const std::string& path) const {
  return resistorDevices_.count(path) > 0;
}

namespace {

/// Net relation of a shape pair in a specific placement context
/// (placementPath prefixes both shapes' local paths). Returns nullopt for
/// intra-device pairs (stage 2's business).
std::optional<tech::NetRelation> relationOf(const InteractionContext& ctx,
                                            const Shape& a, const Shape& b,
                                            const std::string& placementPath) {
  const std::string pa = joinPath(placementPath, a.localPath);
  const std::string pb = joinPath(placementPath, b.localPath);
  if (a.deviceInternal && b.deviceInternal) {
    if (pa == pb) return std::nullopt;  // same device instance
    const auto* na = ctx.deviceNets(pa);
    const auto* nb = ctx.deviceNets(pb);
    if (na && nb) {
      const bool share = std::find_first_of(na->begin(), na->end(),
                                            nb->begin(), nb->end()) !=
                         na->end();
      if (share)
        return (ctx.isResistor(pa) || ctx.isResistor(pb))
                   ? tech::NetRelation::kDiffNet
                   : tech::NetRelation::kRelated;
    }
    return tech::NetRelation::kDiffNet;
  }
  if (a.deviceInternal || b.deviceInternal) {
    const Shape& dev = a.deviceInternal ? a : b;
    const Shape& ic = a.deviceInternal ? b : a;
    const std::string& dp = a.deviceInternal ? pa : pb;
    const std::string& ip = a.deviceInternal ? pb : pa;
    const auto* nets = ctx.deviceNets(dp);
    const int net = ctx.elementNet(ip, ic.srcCell, ic.srcIdx);
    (void)dev;
    if (nets && net >= 0 &&
        std::find(nets->begin(), nets->end(), net) != nets->end())
      return ctx.isResistor(dp) ? tech::NetRelation::kDiffNet
                                : tech::NetRelation::kRelated;
    return tech::NetRelation::kDiffNet;
  }
  const int na = ctx.elementNet(pa, a.srcCell, a.srcIdx);
  const int nb = ctx.elementNet(pb, b.srcCell, b.srcIdx);
  if (na >= 0 && na == nb) return tech::NetRelation::kSameNet;
  return tech::NetRelation::kDiffNet;
}

/// Placement-independent geometry of a candidate pair.
PairGeometry pairGeometry(const InteractionContext& ctx, const Shape& a,
                          const Shape& b) {
  PairGeometry g;
  g.sameLayer = a.elem.layer == b.elem.layer;
  const tech::SpacingRule& rule = ctx.tech.spacing(a.elem.layer, b.elem.layer);
  g.maxRule = std::max({rule.sameNet, rule.diffNet, rule.related});
  if (g.sameLayer || g.maxRule > 0) {
    // SoA-vectorized closed-touch scan (byte-equivalent to the quadratic
    // closedTouch loop over both rect lists).
    const bool touch = geom::regionsTouch(a.region, b.region);
    g.touching = touch;
    if (g.sameLayer && touch)
      g.skeletallyConnected = geom::skeletonsConnected(a.skel, b.skel);
    if (!touch && g.maxRule > 0)
      g.distance =
          geom::distanceBelow(a.region, b.region, g.maxRule, ctx.metric);
    else if (touch)
      g.distance = 0.0;
  }
  return g;
}

/// Evaluate one candidate pair in one placement and emit violations.
/// Counts into `stats` (a worker-private copy during parallel runs).
void evaluatePair(const InteractionContext& ctx, InteractionStats& stats,
                  const Shape& a, const Shape& b, const PairGeometry& g,
                  const std::string& placementPath,
                  const geom::Transform& placement, report::Report& rep,
                  bool skipConnectionCheck) {
  // Early-outs that need no net information: a legal connection, or a
  // pair farther apart than every applicable rule. These make the
  // per-placement evaluation of hierarchical checking cheap.
  if (g.sameLayer && g.touching && g.skeletallyConnected) return;
  if (!(g.sameLayer && g.touching) && !g.distance) {
    if (!ctx.tech.spacing(a.elem.layer, b.elem.layer).any())
      ++stats.noRulePairs;
    return;
  }

  const auto rel = ctx.useNets
                       ? relationOf(ctx, a, b, placementPath)
                       : std::optional<tech::NetRelation>(
                             tech::NetRelation::kUnknown);
  if (!rel) return;  // intra-device

  if (g.sameLayer && g.touching) {
    ++stats.connectionChecks;
    const bool portLanding =
        (a.deviceInternal != b.deviceInternal) &&
        *rel == tech::NetRelation::kRelated;
    if (!g.skeletallyConnected && !portLanding && !skipConnectionCheck) {
      report::Violation v;
      v.category = report::Category::kConnection;
      v.rule = "CONN." + ctx.tech.layer(a.elem.layer).name;
      v.where = placement.apply(
          geom::intersect(a.bbox.inflated(1), b.bbox.inflated(1)));
      v.layerA = a.elem.layer;
      v.layerB = b.elem.layer;
      v.cell = joinPath(placementPath, a.localPath);
      v.message = "touching elements are not skeletally connected";
      rep.add(std::move(v));
    }
    if (g.skeletallyConnected) return;  // a legal connection, not spacing
  }

  const tech::SpacingRule& rule = ctx.tech.spacing(a.elem.layer, b.elem.layer);
  if (!rule.any()) {
    ++stats.noRulePairs;
    return;
  }
  const Coord s = rule.forRelation(*rel);
  if (s == 0) {
    if (*rel == tech::NetRelation::kSameNet)
      ++stats.sameNetSkipped;
    else if (*rel == tech::NetRelation::kRelated)
      ++stats.relatedSkipped;
    return;
  }
  ++stats.distanceChecks;
  const int la = std::min(a.elem.layer, b.elem.layer);
  const int lb = std::max(a.elem.layer, b.elem.layer);
  ++stats.perLayerPair[{la, lb}];
  if (!g.distance || *g.distance >= static_cast<double>(s)) return;

  report::Violation v;
  v.category = report::Category::kSpacing;
  v.rule = "S." + ctx.tech.layer(la).name + "." + ctx.tech.layer(lb).name +
           (*rel == tech::NetRelation::kSameNet
                ? ".SAMENET"
                : *rel == tech::NetRelation::kRelated ? ".RELATED"
                                                      : ".DIFFNET");
  const Coord pad = static_cast<Coord>(std::ceil(*g.distance)) + 1;
  v.where = placement.apply(
      geom::intersect(a.bbox.inflated(pad), b.bbox.inflated(pad)));
  v.layerA = a.elem.layer;
  v.layerB = b.elem.layer;
  v.cell = joinPath(placementPath, a.localPath);
  v.message = "spacing " + std::to_string(*g.distance) + " < " +
              std::to_string(s);
  rep.add(std::move(v));
}

}  // namespace

report::Report checkInteractionsFlat(InteractionContext& ctx,
                                     engine::Executor& exec) {
  ctx.buildMaps();
  report::Report rep;
  const Coord dmax = std::max<Coord>(ctx.tech.maxInteractionDistance(), 1);
  const layout::Library& lib = ctx.view.library();

  // Every element in the design, device internals included, with full
  // paths as local paths (placementPath = "").
  const engine::HierarchyView::Flat& f = ctx.view.flat(true);
  std::vector<Shape> shapes(f.elements.size());
  exec.parallelFor(f.elements.size(), [&](std::size_t i) {
    const layout::FlatElement& e = f.elements[i];
    shapes[i] = makeShape(e.element, ctx.tech,
                          lib.cell(e.sourceCell).isDevice(), e.sourceCell,
                          e.sourceIndex, e.path);
  });

  // Workers stream candidate pairs straight out of the engine's
  // all-layer index over deterministic contiguous element ranges
  // (each element i owns its (i, j>i) pairs); reports and stats merge
  // back in chunk order -- byte-identical to a serial (i, j) sweep, with
  // the grid queries themselves parallelized and no pair list in memory.
  // Build the index once, serially, so workers start querying in parallel
  // instead of queuing on the first build.
  ctx.view.prepare(true);
  const std::size_t nChunks = std::max<std::size_t>(
      1, std::min<std::size_t>(shapes.size(),
                               static_cast<std::size_t>(exec.threads()) * 16));
  std::vector<report::Report> chunkReps(nChunks);
  std::vector<InteractionStats> chunkStats(nChunks);
  const geom::Transform id = geom::identityTransform();
  // The whole candidate-pair sweep as one kernel-section span (per-pair
  // spans would swamp the hot loop; the chunked fan-out stays unmarked).
  obs::ScopedSpan walkSpan("spacing.walk");
  exec.parallelFor(nChunks, [&](std::size_t c) {
    const std::size_t lo = shapes.size() * c / nChunks;
    const std::size_t hi = shapes.size() * (c + 1) / nChunks;
    // One candidate buffer per chunk, reused across every query in the
    // range: no per-element vector churn on the hot path.
    std::vector<std::size_t> cand;
    for (std::size_t i = lo; i < hi; ++i) {
      ctx.view.flatCandidatesInto(true, -1, shapes[i].bbox, dmax, cand);
      for (std::size_t j : cand) {
        if (j <= i) continue;
        if (!bboxesWithin(shapes[i].bbox, shapes[j].bbox, dmax)) continue;
        ++chunkStats[c].candidatePairs;
        const PairGeometry g = pairGeometry(ctx, shapes[i], shapes[j]);
        // Same-cell-instance pairs had their connection legality checked
        // in stage 3; do not duplicate those reports.
        const bool sameCellInstance =
            shapes[i].localPath == shapes[j].localPath &&
            shapes[i].srcCell == shapes[j].srcCell;
        evaluatePair(ctx, chunkStats[c], shapes[i], shapes[j], g, "", id,
                     chunkReps[c], sameCellInstance);
      }
    }
  });
  for (std::size_t c = 0; c < nChunks; ++c) {
    rep.merge(chunkReps[c]);
    ctx.stats.merge(chunkStats[c]);
  }
  return rep;
}

namespace {

/// One unit of hierarchical interaction work. Items are enumerated in a
/// deterministic order (per cell: intra-cell pairs, then each child's
/// element-vs-instance window, then each instance-pair window) and their
/// reports merge back in that order.
struct HierItem {
  enum Kind { kIntra, kElemChild, kChildPair } kind{kIntra};
  std::size_t cellSlot{0};  ///< index into the per-cell work table
  std::size_t childA{0};
  std::size_t childB{0};
};

struct CellWork {
  layout::CellId id{0};
  const std::vector<engine::Placement>* places{nullptr};
  /// Prepared shapes of the cell's own elements; shared with (and on the
  /// fast path served from) the IncrementalCache's shape cache. Null for
  /// cells no affected intra/elem-child item reads this run.
  std::shared_ptr<const std::vector<Shape>> local;
  std::vector<engine::ChildRef> children;
};

/// The concrete type behind IncrementalCache::shapeCache: per-cell
/// prepared shapes, valid as long as the cell's elements are unchanged.
struct ShapeCache {
  std::map<layout::CellId, std::shared_ptr<const std::vector<Shape>>> byCell;
};

}  // namespace

/// Can an edit recorded in `dirty` change this item's output? Exact
/// window-membership reasoning, conservative on ties: an edited element
/// (at its old or new transformed bbox) participates in an item only if
/// it can enter the item's window and pair up within dmax — so an item no
/// dirty rect reaches is untouched and its cached report is the report a
/// recompute would produce.
namespace {
bool itemAffected(const HierItem& item, const CellWork& w,
                  const layout::Library& lib, const DirtyInfo& dirty,
                  Coord dmax) {
  switch (item.kind) {
    case HierItem::kIntra:
      // Uses only the cell's own elements (placements/nets are unchanged
      // on the fast path).
      return dirty.dirtyCells.count(w.id) != 0;
    case HierItem::kElemChild: {
      if (dirty.dirtyCells.count(w.id)) return true;
      const engine::ChildRef& ch = w.children[item.childA];
      auto it = dirty.dirtyRects.find(ch.cell);
      if (it == dirty.dirtyRects.end()) return false;
      // An edit in the child subtree matters iff its rect (old or new),
      // brought into this cell's frame, is within dmax of one of this
      // cell's own elements — exactly the pair-keep predicate.
      const layout::Cell& c = lib.cell(w.id);
      for (const Rect& r : it->second) {
        const Rect tr = ch.transform.apply(r);
        for (const layout::Element& e : c.elements)
          if (bboxesWithin(e.bbox(), tr, dmax)) return true;
      }
      return false;
    }
    case HierItem::kChildPair: {
      const engine::ChildRef& ci = w.children[item.childA];
      const engine::ChildRef& cj = w.children[item.childB];
      const Rect window =
          geom::intersect(ci.bbox.inflated(dmax), cj.bbox.inflated(dmax));
      // Window membership is the gate: collectWindow only emits elements
      // closed-touching the window, so a dirty rect outside it cannot
      // appear in (or vanish from) this item.
      for (const engine::ChildRef* ch : {&ci, &cj}) {
        auto it = dirty.dirtyRects.find(ch->cell);
        if (it == dirty.dirtyRects.end()) continue;
        for (const Rect& r : it->second)
          if (geom::closedTouch(ch->transform.apply(r), window)) return true;
      }
      return false;
    }
  }
  return true;
}
}  // namespace

report::Report checkInteractionsHierarchical(InteractionContext& ctx,
                                             engine::Executor& exec,
                                             IncrementalCache* cache,
                                             const DirtyInfo* dirty) {
  ctx.buildMaps();
  report::Report rep;
  const Coord dmax = std::max<Coord>(ctx.tech.maxInteractionDistance(), 1);
  const layout::Library& lib = ctx.view.library();

  // Per-cell substrate: local shapes and child bookkeeping, built once
  // per definition (the paper's per-cell-once economy) across workers.
  // Shape construction (regions, skeletons) is the expensive part, so it
  // is deferred until the reuse pass below knows which cells still host
  // an item that must recompute.
  std::vector<CellWork> work;
  for (layout::CellId cid : ctx.view.cells()) {
    const layout::Cell& c = lib.cell(cid);
    if (c.isDevice()) continue;  // internals handled by stage 2 + windows
    const auto& places = ctx.view.placementsOf(cid);
    if (places.empty()) continue;
    CellWork w;
    w.id = cid;
    w.places = &places;
    work.push_back(std::move(w));
  }
  exec.parallelFor(work.size(), [&](std::size_t wi) {
    work[wi].children = ctx.view.children(work[wi].id);
  });

  std::vector<HierItem> items;
  for (std::size_t wi = 0; wi < work.size(); ++wi) {
    const CellWork& w = work[wi];
    items.push_back({HierItem::kIntra, wi, 0, 0});
    for (std::size_t k = 0; k < w.children.size(); ++k)
      items.push_back({HierItem::kElemChild, wi, k, 0});
    for (std::size_t i = 0; i < w.children.size(); ++i)
      for (std::size_t j = i + 1; j < w.children.size(); ++j) {
        if (!bboxesWithin(w.children[i].bbox, w.children[j].bbox, dmax))
          continue;
        items.push_back({HierItem::kChildPair, wi, i, j});
      }
  }

  auto keyOf = [&](const HierItem& it) {
    return IncrementalCache::ItemKey{work[it.cellSlot].id,
                                     static_cast<int>(it.kind), it.childA,
                                     it.childB};
  };

  // Reuse pass: with a valid cache and fast-path dirty info, mark every
  // item no dirty rect can reach; those take their cached result. Items
  // missing from the cache (or reachable) recompute and refresh it.
  const bool reuse = cache && dirty && dirty->reuseInteractions &&
                     cache->valid && cache->cells == ctx.view.cells();
  std::vector<char> affected(items.size(), 1);
  if (reuse) {
    for (std::size_t t = 0; t < items.size(); ++t) {
      if (!cache->items.count(keyOf(items[t]))) continue;
      if (!itemAffected(items[t], work[items[t].cellSlot], lib, *dirty, dmax))
        affected[t] = 0;
    }
  }

  // Build local shapes only for cells an affected intra/elem-child item
  // still reads (child-pair items work purely off collected windows).
  // With a cache, shapes persist across runs per cell: on the fast path
  // only dirty cells rebuild their regions/skeletons, everyone else
  // shares last run's vector.
  ShapeCache* sc = nullptr;
  if (cache) {
    if (!cache->shapeCache)
      cache->shapeCache = std::make_shared<ShapeCache>();
    sc = static_cast<ShapeCache*>(cache->shapeCache.get());
    if (!reuse) sc->byCell.clear();
  }
  std::vector<char> needLocal(work.size(), 0);
  for (std::size_t t = 0; t < items.size(); ++t)
    if (affected[t] && items[t].kind != HierItem::kChildPair)
      needLocal[items[t].cellSlot] = 1;
  exec.parallelFor(work.size(), [&](std::size_t wi) {
    if (!needLocal[wi]) return;
    CellWork& w = work[wi];
    if (sc && reuse && !dirty->dirtyCells.count(w.id)) {
      // Fast-path invariant: only dirty cells' elements changed, so a
      // cached shape vector for any other cell is still exact.
      const auto it = sc->byCell.find(w.id);
      if (it != sc->byCell.end()) {
        w.local = it->second;
        return;
      }
    }
    const layout::Cell& c = lib.cell(w.id);
    auto built = std::make_shared<std::vector<Shape>>();
    built->reserve(c.elements.size());
    for (std::size_t i = 0; i < c.elements.size(); ++i)
      built->push_back(makeShape(c.elements[i], ctx.tech, false, w.id, i, ""));
    w.local = std::move(built);
  });
  // Publish this run's vectors serially (the map is not written during
  // the parallel pass above, only read).
  if (sc)
    for (const CellWork& w : work)
      if (w.local) sc->byCell[w.id] = w.local;

  std::vector<report::Report> itemReps(items.size());
  std::vector<InteractionStats> itemStats(items.size());
  exec.parallelFor(items.size(), [&](std::size_t t) {
    if (!affected[t]) return;
    const HierItem& item = items[t];
    const CellWork& w = work[item.cellSlot];
    report::Report& out = itemReps[t];
    InteractionStats& stats = itemStats[t];

    switch (item.kind) {
      case HierItem::kIntra: {
        // (a) Intra-cell pairs: geometry once, relation per placement.
        // Pair candidates come from the engine sweep over the bboxes the
        // CellWork pass already computed.
        const std::vector<Shape>& local = *w.local;
        std::vector<Rect> bboxes;
        bboxes.reserve(local.size());
        for (const Shape& s : local) bboxes.push_back(s.bbox);
        for (const auto& [i, j] : engine::pairsWithin(bboxes, dmax)) {
          ++stats.candidatePairs;
          const PairGeometry g = pairGeometry(ctx, local[i], local[j]);
          for (const auto& p : *w.places)
            evaluatePair(ctx, stats, local[i], local[j], g, p.path,
                         p.transform, out, /*skipConnectionCheck=*/true);
        }
        break;
      }
      case HierItem::kElemChild: {
        // (b) Local elements vs one child instance's overlap windows.
        // One union window over every local element near the child: the
        // subtree is collected once and each window element's shape is
        // built once, shared across the local elements. The per-pair
        // bboxesWithin filter is unchanged, so the pair set and its
        // (local, window) iteration order — and with them the emitted
        // bytes — are identical to per-element windows.
        const engine::ChildRef& ch = w.children[item.childA];
        const std::vector<Shape>& local = *w.local;
        Rect u{};
        bool any = false;
        for (const Shape& e : local) {
          if (!bboxesWithin(e.bbox, ch.bbox, dmax)) continue;
          u = any ? geom::bound(u, e.bbox) : e.bbox;
          any = true;
        }
        if (!any) break;
        const Rect window =
            geom::intersect(u.inflated(dmax), ch.bbox.inflated(dmax));
        std::vector<engine::WindowElement> inner;
        ctx.view.collectWindow(ch.cell, ch.transform, window, ch.name, inner);
        std::vector<Shape> xs;
        xs.reserve(inner.size());
        for (const engine::WindowElement& we : inner)
          xs.push_back(makeShape(we, ctx.tech));
        for (const Shape& e : local) {
          if (!bboxesWithin(e.bbox, ch.bbox, dmax)) continue;
          for (const Shape& x : xs) {
            if (!bboxesWithin(e.bbox, x.bbox, dmax)) continue;
            ++stats.candidatePairs;
            const PairGeometry g = pairGeometry(ctx, e, x);
            for (const auto& p : *w.places)
              evaluatePair(ctx, stats, e, x, g, p.path, p.transform, out,
                           false);
          }
        }
        break;
      }
      case HierItem::kChildPair: {
        // (c) One child-instance pair's overlap window.
        const engine::ChildRef& ci = w.children[item.childA];
        const engine::ChildRef& cj = w.children[item.childB];
        const Rect window = geom::intersect(ci.bbox.inflated(dmax),
                                            cj.bbox.inflated(dmax));
        std::vector<engine::WindowElement> wi, wj;
        ctx.view.collectWindow(ci.cell, ci.transform, window, ci.name, wi);
        ctx.view.collectWindow(cj.cell, cj.transform, window, cj.name, wj);
        std::vector<Shape> si, sj;
        si.reserve(wi.size());
        sj.reserve(wj.size());
        for (const auto& we : wi) si.push_back(makeShape(we, ctx.tech));
        for (const auto& we : wj) sj.push_back(makeShape(we, ctx.tech));
        for (const Shape& a : si) {
          for (const Shape& b : sj) {
            if (!bboxesWithin(a.bbox, b.bbox, dmax)) continue;
            ++stats.candidatePairs;
            const PairGeometry g = pairGeometry(ctx, a, b);
            for (const auto& p : *w.places)
              evaluatePair(ctx, stats, a, b, g, p.path, p.transform, out,
                           false);
          }
        }
        break;
      }
    }
  });

  // Merge in item order — identical for cold, populate, and reuse runs,
  // which is what makes the reuse path byte-identical. The cache update
  // rides the serial merge loop, so the item map needs no locking.
  if (cache && !reuse) cache->items.clear();
  for (std::size_t t = 0; t < items.size(); ++t) {
    if (affected[t]) {
      rep.merge(itemReps[t]);
      ctx.stats.merge(itemStats[t]);
      if (cache)
        cache->items[keyOf(items[t])] = {itemReps[t], itemStats[t]};
    } else {
      const IncrementalCache::ItemResult& c = cache->items.at(keyOf(items[t]));
      rep.merge(c.report);
      ctx.stats.merge(c.stats);
    }
  }
  return rep;
}

}  // namespace dic::drc
