// Fig. 15 -- Self sufficiency: butting two half-minimum-width boxes to
// form a legal box is an error; the preferred technique is a legal-width
// box in each symbol with overlapped placement. "Hierarchical checking is
// nearly impossible without this restriction."
#include "baseline/flat_drc.hpp"
#include "bench_util.hpp"
#include "drc/checker.hpp"
#include "structured/structured.hpp"
#include "tech/technology.hpp"

namespace {

using namespace dic;
using geom::makeRect;

void printFig15() {
  dic::bench::title("Fig. 15: self-sufficiency of symbols");
  const tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();
  const int nm = *t.layerByName("metal");

  std::printf("%-36s %10s %8s %s\n", "case", "baseline", "DIC",
              "ground truth");
  auto printRow = [&](const char* name, layout::Library& lib,
                      layout::CellId root, const char* truth) {
    const auto base = baseline::check(lib, root, t);
    drc::Checker checker(lib, root, t, {});
    report::Report dic = checker.run();
    dic.merge(structured::checkSelfSufficiency(lib, root, t));
    std::printf("%-36s %10s %8s %s\n", name, base.empty() ? "pass" : "FLAG",
                dic.empty() ? "pass" : "FLAG", truth);
  };

  {  // two half-width boxes butting across a symbol boundary.
    layout::Library lib;
    layout::Cell half;
    half.name = "half";
    half.elements.push_back(
        layout::makeBox(nm, makeRect(0, 0, 8 * L, 3 * L / 2)));
    const auto halfId = lib.addCell(std::move(half));
    layout::Cell top;
    top.name = "top";
    top.instances.push_back({halfId, {geom::Orient::kR0, {0, 0}}, "a"});
    top.instances.push_back(
        {halfId, {geom::Orient::kR0, {0, 3 * L / 2}}, "b"});
    const auto root = lib.addCell(std::move(top));
    printRow("half-width symbols butting", lib, root,
             "error (usage rule)");
  }
  {  // the preferred technique: legal-width symbols overlapped.
    layout::Library lib;
    layout::Cell full;
    full.name = "full";
    full.elements.push_back(
        layout::makeBox(nm, makeRect(0, 0, 8 * L, 3 * L)));
    const auto fullId = lib.addCell(std::move(full));
    layout::Cell top;
    top.name = "top";
    top.instances.push_back({fullId, {geom::Orient::kR0, {0, 0}}, "a"});
    top.instances.push_back({fullId, {geom::Orient::kR0, {5 * L, 0}}, "b"});
    const auto root = lib.addCell(std::move(top));
    printRow("legal-width symbols overlapped", lib, root, "ok");
  }
  dic::bench::note(
      "\nExpected shape: the mask union of the butting halves is legal, so "
      "the baseline misses it;\nDIC flags the element widths plus the "
      "usage rule. The overlapped form passes everywhere --\nthe paper's "
      "preferred technique.");
}

void BM_SelfSufficiencyScan(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  layout::Library lib;
  layout::Cell top;
  top.name = "top";
  const geom::Coord L = t.lambda();
  const int nm = *t.layerByName("metal");
  for (int i = 0; i < 200; ++i)
    top.elements.push_back(layout::makeBox(
        nm, makeRect(i * 10 * L, 0, i * 10 * L + 8 * L, 3 * L)));
  const auto root = lib.addCell(std::move(top));
  for (auto _ : state)
    benchmark::DoNotOptimize(structured::checkSelfSufficiency(lib, root, t));
}
BENCHMARK(BM_SelfSufficiencyScan);

}  // namespace

DIC_BENCH_MAIN(printFig15)
