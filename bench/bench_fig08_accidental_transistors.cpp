// Fig. 8 -- Intentional & accidental transistors: an accidental poly/diff
// crossing "forms a legal transistor", so mask-level checkers accept it;
// the structured-design declaration rule makes it an error. Also covers
// the missing-gate-overlap case the paper notes is "often not caught".
#include "baseline/flat_drc.hpp"
#include "bench_util.hpp"
#include "drc/checker.hpp"
#include "structured/structured.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dic;
using geom::makeRect;

void printFig8() {
  dic::bench::title("Fig. 8: intentional vs accidental transistors");
  const tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();
  const int nd = *t.layerByName("diff");
  const int np = *t.layerByName("poly");

  std::printf("%-34s %10s %8s %s\n", "case", "baseline", "DIC",
              "ground truth");
  auto printRow = [&](const char* name, layout::Library& lib,
                      layout::CellId root, const char* truth) {
    const auto base = baseline::check(lib, root, t);
    drc::Checker checker(lib, root, t, {});
    report::Report dic = checker.run();
    dic.merge(structured::checkImplicitDevices(lib, root, t));
    std::printf("%-34s %10s %8s %s\n", name, base.empty() ? "pass" : "FLAG",
                dic.empty() ? "pass" : "FLAG", truth);
  };

  {  // declared transistor with proper overlaps.
    layout::Library lib;
    const workload::NmosCells cells = workload::installNmosCells(lib, t);
    layout::Cell top;
    top.name = "top";
    top.instances.push_back({cells.tran, {geom::Orient::kR0, {0, 0}}, "t"});
    const auto root = lib.addCell(std::move(top));
    printRow("declared transistor", lib, root, "ok");
  }
  {  // accidental crossing of interconnect poly and diff.
    layout::Library lib;
    layout::Cell top;
    top.name = "top";
    top.elements.push_back(
        layout::makeWire(nd, {{0, 0}, {20 * L, 0}}, 2 * L));
    top.elements.push_back(
        layout::makeWire(np, {{10 * L, -10 * L}, {10 * L, 10 * L}}, 2 * L));
    const auto root = lib.addCell(std::move(top));
    printRow("accidental poly/diff crossing", lib, root,
             "error (implied device)");
  }
  {  // declared transistor whose poly overlap is missing (1L only).
    layout::Library lib;
    layout::Cell dev;
    dev.name = "badtran";
    dev.deviceType = "TRAN";
    dev.elements.push_back(
        layout::makeBox(np, makeRect(-2 * L, -L, 2 * L, L)));
    dev.elements.push_back(
        layout::makeBox(nd, makeRect(-L, -3 * L, L, 3 * L)));
    const auto devId = lib.addCell(std::move(dev));
    layout::Cell top;
    top.name = "top";
    top.instances.push_back({devId, {geom::Orient::kR0, {0, 0}}, "t"});
    const auto root = lib.addCell(std::move(top));
    printRow("gate overlap too small (1L)", lib, root,
             "error (S/D may short)");
  }
  dic::bench::note(
      "\nExpected shape: the baseline accepts all three (a crossing forms "
      "a legal transistor; it\ncannot isolate gates to measure overlap); "
      "DIC accepts only the declared, well-formed device.");
}

void BM_DeviceCheckAllNmosCells(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  layout::Cell top;
  top.name = "top";
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kR0, {0, 0}}, "i"});
  const auto root = lib.addCell(std::move(top));
  drc::Checker checker(lib, root, t, {});
  for (auto _ : state)
    benchmark::DoNotOptimize(checker.checkPrimitiveSymbols());
}
BENCHMARK(BM_DeviceCheckAllNmosCells);

}  // namespace

DIC_BENCH_MAIN(printFig8)
