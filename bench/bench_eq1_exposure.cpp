// Eq. (1) -- the Gaussian exposure integral. "If the mask function can be
// simplified to simple boxes ... equation (1) ... has a closed form
// solution in terms of an error function." Validates the closed form
// against 2-D Simpson integration and measures the speedup that makes the
// technique "feasible to use for design rule checks".
#include <cmath>

#include "bench_util.hpp"
#include "process/exposure.hpp"

namespace {

using namespace dic;
using geom::makeRect;

void printEq1() {
  dic::bench::title("Eq. (1): closed-form erf solution vs 2-D Simpson");
  std::printf("%-8s %10s %14s %14s %12s\n", "sigma", "probes", "maxAbsErr",
              "closed(ns)", "numeric(us)");
  const geom::Rect box = makeRect(-40, -25, 35, 50);
  const geom::Point probes[] = {{0, 0},  {30, 10},  {-40, -25}, {50, 60},
                                {35, 0}, {-10, 49}, {100, 0},   {0, -60},
                                {20, 20}, {-55, 10}};
  for (double sigma : {4.0, 8.0, 16.0, 32.0}) {
    const process::ExposureModel m(sigma);
    double maxErr = 0;
    for (const geom::Point p : probes)
      maxErr = std::max(maxErr, std::abs(m.boxExposure(box, p) -
                                         m.boxExposureNumeric(box, p, 256)));
    // Rough single-shot timings for the table (the registered benchmarks
    // below give the rigorous numbers).
    std::printf("%-8.1f %10zu %14.3e %14s %12s\n", sigma,
                std::size(probes), maxErr, "(see BM)", "(see BM)");
  }
  dic::bench::note(
      "\nExpected shape: agreement to ~1e-4 or better at every probe; the "
      "closed form is\norders of magnitude faster, which is what makes "
      "exposure-based DRC plausible.");
}

void BM_ClosedFormExposure(benchmark::State& state) {
  const process::ExposureModel m(10.0);
  const geom::Rect box = makeRect(-40, -25, 35, 50);
  geom::Coord x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.boxExposure(box, {x % 100, 10}));
    ++x;
  }
}
BENCHMARK(BM_ClosedFormExposure);

void BM_NumericExposure64(benchmark::State& state) {
  const process::ExposureModel m(10.0);
  const geom::Rect box = makeRect(-40, -25, 35, 50);
  for (auto _ : state)
    benchmark::DoNotOptimize(m.boxExposureNumeric(box, {30, 10}, 64));
}
BENCHMARK(BM_NumericExposure64);

void BM_NumericExposure256(benchmark::State& state) {
  const process::ExposureModel m(10.0);
  const geom::Rect box = makeRect(-40, -25, 35, 50);
  for (auto _ : state)
    benchmark::DoNotOptimize(m.boxExposureNumeric(box, {30, 10}, 256));
}
BENCHMARK(BM_NumericExposure256);

}  // namespace

DIC_BENCH_MAIN(printEq1)
