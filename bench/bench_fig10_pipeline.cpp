// Fig. 10 -- The DIC flow chart: PARSE CIF / CHECK ELEMENTS / CHECK
// PRIMITIVE SYMBOLS / CHECK LEGAL CONNECTIONS / GENERATE HIERARCHICAL NET
// LIST / CHECK INTERACTIONS. Reports the per-stage wall-clock breakdown.
#include <chrono>

#include "bench_util.hpp"
#include "cif/parser.hpp"
#include "cif/writer.hpp"
#include "drc/checker.hpp"
#include "layout/cifio.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dic;

void printFig10() {
  dic::bench::title("Fig. 10: pipeline stage breakdown (ms)");
  std::printf("%-16s %8s %9s %8s %8s %8s %8s %8s\n", "chip", "parse",
              "elements", "symbols", "connect", "netlist", "interact",
              "total");
  const tech::Technology t = tech::nmos();
  const workload::ChipParams cases[] = {
      {1, 1, 2, 2, true}, {2, 2, 2, 4, true}, {2, 4, 4, 4, true}};
  for (const auto& p : cases) {
    workload::GeneratedChip chip = workload::generateChip(t, p);

    // Stage 0: write to CIF and parse it back (the paper's entry point).
    const cif::CifFile out = layout::toCif(
        chip.lib, chip.top, [&](int l) { return t.layer(l).cifName; });
    const std::string text = cif::write(out);
    const auto t0 = std::chrono::steady_clock::now();
    layout::Library lib2;
    const layout::CellId root2 = layout::fromCif(
        cif::parse(text), lib2,
        [&](const std::string& n) { return t.layerByCifName(n).value_or(-1); });
    const auto t1 = std::chrono::steady_clock::now();
    const double parseMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    drc::Checker checker(lib2, root2, t, {});
    checker.run();
    const drc::StageTimes& st = checker.stageTimes();
    char name[64];
    std::snprintf(name, sizeof name, "%dx%d blk %dx%d inv", p.blockRows,
                  p.blockCols, p.invRows, p.invCols);
    std::printf("%-16s %8.2f %9.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", name,
                parseMs, st.elements * 1e3, st.symbols * 1e3,
                st.connections * 1e3, st.netlist * 1e3,
                st.interactions * 1e3, parseMs + st.total() * 1e3);
  }
  dic::bench::note(
      "\nExpected shape: interaction checking and net list generation "
      "dominate; element and symbol\nchecks are cheap because they run "
      "once per definition (20-30 device symbols on a chip).");
}

void printThreadSweep() {
  dic::bench::title(
      "Stage-runner thread sweep: interaction stage (ms), identical output");
  // Stage clocks overlap when independent stages run concurrently, so the
  // pipeline is timed by outside wall clock, not by summing stages.
  std::printf("%-10s %10s %10s %10s %10s\n", "threads", "interact",
              "netlist", "wall", "speedup");
  const tech::Technology t = tech::nmos();
  // A chip big enough that per-worker items are far larger than thread
  // spawn overhead; on a single-core host expect ~1.0x regardless.
  workload::GeneratedChip chip = workload::generateChip(t, {4, 4, 4, 6, true});
  double base = 0;
  for (const int threads : {1, 2, 4}) {
    drc::Options opt;
    opt.threads = threads;
    drc::Checker checker(chip.lib, chip.top, t, opt);
    const auto w0 = std::chrono::steady_clock::now();
    checker.run();
    const auto w1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(w1 - w0).count();
    const drc::StageTimes& st = checker.stageTimes();
    if (threads == 1) base = wall;
    std::printf("%-10d %10.2f %10.2f %10.2f %9.2fx\n", threads,
                st.interactions * 1e3, st.netlist * 1e3, wall * 1e3,
                wall > 0 ? base / wall : 0.0);
  }
  dic::bench::note(
      "\nPer-cell checks and interaction windows fan across the engine "
      "executor's workers;\nviolation ordering is deterministic, so every "
      "row produces byte-identical reports.");
}

void BM_FullPipeline(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {static_cast<int>(state.range(0)), 2, 2, 4, true});
  for (auto _ : state) {
    drc::Checker checker(chip.lib, chip.top, t, {});
    benchmark::DoNotOptimize(checker.run());
  }
}
BENCHMARK(BM_FullPipeline)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_InteractionStageThreads(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(t, {2, 2, 4, 4, true});
  drc::Options opt;
  opt.threads = static_cast<int>(state.range(0));
  drc::Checker checker(chip.lib, chip.top, t, opt);
  const netlist::Netlist nl = checker.generateNetlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.checkInteractions(nl));
  }
}
BENCHMARK(BM_InteractionStageThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void printAll() {
  printFig10();
  printThreadSweep();
}

}  // namespace

DIC_BENCH_MAIN(printAll)
