// Fig. 10 -- The DIC flow chart: PARSE CIF / CHECK ELEMENTS / CHECK
// PRIMITIVE SYMBOLS / CHECK LEGAL CONNECTIONS / GENERATE HIERARCHICAL NET
// LIST / CHECK INTERACTIONS. Reports the per-stage wall-clock breakdown,
// the Options::threads sweep, and the barrier-vs-ready-queue dispatcher
// comparison (when does the interaction stage get to start?).
#include <chrono>
#include <string>
#include <thread>

#include "bench_util.hpp"
#include "cif/parser.hpp"
#include "cif/writer.hpp"
#include "drc/checker.hpp"
#include "engine/executor.hpp"
#include "layout/cifio.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dic;

void printFig10() {
  dic::bench::title("Fig. 10: pipeline stage breakdown (ms)");
  std::printf("%-16s %8s %9s %8s %8s %8s %8s %8s\n", "chip", "parse",
              "elements", "symbols", "connect", "netlist", "interact",
              "total");
  const tech::Technology t = tech::nmos();
  const workload::ChipParams cases[] = {
      {1, 1, 2, 2, true}, {2, 2, 2, 4, true}, {2, 4, 4, 4, true}};
  for (const auto& p : cases) {
    workload::GeneratedChip chip = workload::generateChip(t, p);

    // Stage 0: write to CIF and parse it back (the paper's entry point).
    const cif::CifFile out = layout::toCif(
        chip.lib, chip.top, [&](int l) { return t.layer(l).cifName; });
    const std::string text = cif::write(out);
    const auto t0 = std::chrono::steady_clock::now();
    layout::Library lib2;
    const layout::CellId root2 = layout::fromCif(
        cif::parse(text), lib2,
        [&](const std::string& n) { return t.layerByCifName(n).value_or(-1); });
    const auto t1 = std::chrono::steady_clock::now();
    const double parseMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();

    drc::Checker checker(lib2, root2, t, {});
    checker.run();
    const drc::StageTimes& st = checker.stageTimes();
    char name[64];
    std::snprintf(name, sizeof name, "%dx%d blk %dx%d inv", p.blockRows,
                  p.blockCols, p.invRows, p.invCols);
    std::printf("%-16s %8.2f %9.2f %8.2f %8.2f %8.2f %8.2f %8.2f\n", name,
                parseMs, st.elements * 1e3, st.symbols * 1e3,
                st.connections * 1e3, st.netlist * 1e3,
                st.interactions * 1e3, parseMs + st.total() * 1e3);
  }
  dic::bench::note(
      "\nExpected shape: interaction checking and net list generation "
      "dominate; element and symbol\nchecks are cheap because they run "
      "once per definition (20-30 device symbols on a chip).");
}

void printThreadSweep() {
  dic::bench::title(
      "Stage-runner thread sweep: interaction stage (ms), identical output");
  // Stage clocks overlap when independent stages run concurrently, so the
  // pipeline is timed by outside wall clock, not by summing stages.
  // `workers` is the actual pool size a row ran with: it differs from
  // `threads` only on the auto row (threads=0 resolves to the cached
  // hardware concurrency), which is exactly when the label matters.
  std::printf("(host hardware threads: %d)\n",
              dic::engine::Executor::hardwareThreads());
  std::printf("%-10s %8s %10s %10s %10s %10s\n", "threads", "workers",
              "interact", "netlist", "wall", "speedup");
  const tech::Technology t = tech::nmos();
  // A chip big enough that per-worker items are far larger than thread
  // spawn overhead; on a single-core host expect ~1.0x regardless.
  workload::GeneratedChip chip = workload::generateChip(t, {4, 4, 4, 6, true});
  double base = 0;
  for (const int threads : {1, 2, 4, 0}) {
    drc::Options opt;
    opt.threads = threads;
    const int workers =
        threads <= 0 ? dic::engine::Executor::hardwareThreads() : threads;
    drc::Checker checker(chip.lib, chip.top, t, opt);
    const auto w0 = std::chrono::steady_clock::now();
    checker.run();
    const auto w1 = std::chrono::steady_clock::now();
    const double wall = std::chrono::duration<double>(w1 - w0).count();
    const drc::StageTimes& st = checker.stageTimes();
    if (threads == 1) base = wall;
    std::printf("%-10s %8d %10.2f %10.2f %10.2f %9.2fx\n",
                threads == 0 ? "0 (auto)" : std::to_string(threads).c_str(),
                workers, st.interactions * 1e3, st.netlist * 1e3, wall * 1e3,
                wall > 0 ? base / wall : 0.0);
  }
  dic::bench::note(
      "\nStages and their per-cell/window fan-outs share one work-stealing "
      "pool;\nviolation ordering is deterministic, so every row produces "
      "byte-identical reports.");
}

void printDispatcherComparison() {
  dic::bench::title(
      "Barrier vs ready-queue dispatch (threads=4): when does the "
      "interaction stage start? (ms)");
  std::printf("%-14s %14s %12s %10s\n", "scheduler", "interact-start",
              "interact", "wall");
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(t, {2, 2, 4, 4, true});
  constexpr int kThreads = 4;

  // Barrier reference: the pre-dispatcher wave schedule. Wave 1 ran the
  // four independent stages on four threads with one inner worker each
  // (the old static budget split) and joined -- the barrier -- before
  // the interaction stage could start; the interactions wave was a
  // singleton, so it got the full thread budget. Reproduced here with a
  // threads=1 checker for the wave stages and a threads=4 checker for
  // the interaction stage (its shared-view caches pre-warmed, as the
  // old single-checker wave 1 left them).
  double barrierStart = 0, barrierInteract = 0, barrierWall = 0;
  {
    drc::Options waveOpt;
    waveOpt.threads = 1;  // per-stage inner budget under the old wave split
    drc::Checker waves(chip.lib, chip.top, t, waveOpt);
    drc::Options interOpt;
    interOpt.threads = kThreads;  // singleton wave: full budget
    drc::Checker inter(chip.lib, chip.top, t, interOpt);
    inter.view().placements();  // wave 1 built these on the shared view
    netlist::Netlist nl;
    const auto t0 = std::chrono::steady_clock::now();
    {
      std::thread ts[] = {
          std::thread([&] { waves.checkElements(); }),
          std::thread([&] { waves.checkPrimitiveSymbols(); }),
          std::thread([&] { waves.checkConnections(); }),
          std::thread([&] { nl = waves.generateNetlist(); })};
      for (std::thread& th : ts) th.join();
    }
    const auto t1 = std::chrono::steady_clock::now();
    inter.checkInteractions(nl);
    const auto t2 = std::chrono::steady_clock::now();
    barrierStart = std::chrono::duration<double, std::milli>(t1 - t0).count();
    barrierInteract =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    barrierWall = std::chrono::duration<double, std::milli>(t2 - t0).count();
  }

  // Ready-queue dispatcher: interactions is submitted the moment netlist
  // completes, while slower independent stages keep running.
  double readyStart = 0, readyInteract = 0, readyWall = 0;
  {
    drc::Options opt;
    opt.threads = kThreads;
    drc::Checker checker(chip.lib, chip.top, t, opt);
    const auto w0 = std::chrono::steady_clock::now();
    checker.run();
    const auto w1 = std::chrono::steady_clock::now();
    readyWall = std::chrono::duration<double, std::milli>(w1 - w0).count();
    for (const dic::engine::StageResult& r : checker.stageResults()) {
      if (r.name == "interactions") {
        readyStart = r.start * 1e3;
        readyInteract = r.seconds * 1e3;
      }
    }
  }

  std::printf("%-14s %14.2f %12.2f %10.2f\n", "barrier", barrierStart,
              barrierInteract, barrierWall);
  std::printf("%-14s %14.2f %12.2f %10.2f\n", "ready-queue", readyStart,
              readyInteract, readyWall);
  dic::bench::note(
      "\nThe barrier row may not start interactions until the whole first "
      "wave drains; the ready-queue\nrow starts it as soon as the netlist "
      "stage finishes, so interact-start drops to roughly the\nnetlist "
      "stage's duration. Reports are byte-identical either way.");
}

void BM_FullPipeline(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {static_cast<int>(state.range(0)), 2, 2, 4, true});
  for (auto _ : state) {
    drc::Checker checker(chip.lib, chip.top, t, {});
    benchmark::DoNotOptimize(checker.run());
  }
}
BENCHMARK(BM_FullPipeline)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_InteractionStageThreads(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(t, {2, 2, 4, 4, true});
  drc::Options opt;
  opt.threads = static_cast<int>(state.range(0));
  drc::Checker checker(chip.lib, chip.top, t, opt);
  const netlist::Netlist nl = checker.generateNetlist();
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.checkInteractions(nl));
  }
}
BENCHMARK(BM_InteractionStageThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void printAll() {
  printFig10();
  printThreadSweep();
  printDispatcherComparison();
}

}  // namespace

DIC_BENCH_MAIN(printAll)
