// Ablation -- what exactly does the net/device information buy? The same
// DIC interaction engine runs twice on identical chips: once net-aware,
// once with NetRelation::kUnknown forced everywhere (every pair gets the
// worst-case rule, as a mask-level checker must assume). The difference
// isolates the paper's core design decision from implementation details.
#include "bench_util.hpp"
#include "report/scorer.hpp"
#include "service/workspace.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace {

using namespace dic;

void printAblation() {
  dic::bench::title(
      "Ablation: DIC interaction engine with and without net information");
  std::printf("%-12s %10s %12s %12s %12s\n", "chip", "decoys",
              "net-aware", "net-blind", "extra flags");
  const tech::Technology t = tech::nmos();
  for (int decoys : {0, 4, 12, 24}) {
    workload::GeneratedChip chip = workload::generateChip(
        t, {.blockRows = 2, .blockCols = 2, .invRows = 2, .invCols = 3,
            .withPads = true});
    workload::InjectionPlan plan;
    plan.spacingViolations = 2;
    plan.widthViolations = 0;
    plan.sameNetDecoys = decoys;
    plan.accidentalFets = 0;
    plan.contactsOverGate = 0;
    plan.buttingHalves = 0;
    plan.powerGroundShorts = 0;
    plan.floatingNets = 0;
    workload::inject(chip, t, plan, 5);

    // Both ablation arms as one Workspace batch: same cached view, same
    // shared netlist, the only difference is the useNetInformation flag.
    const layout::CellId top = chip.top;
    Workspace ws(std::move(chip.lib), t);
    CheckRequest blind = CheckRequest::drc(top);
    blind.useNetInformation = false;
    const CheckRequest reqs[] = {CheckRequest::drc(top), blind};
    const std::vector<CheckResult> results = ws.runBatch(reqs);
    for (const CheckResult& r : results) {
      if (!r.ok()) {
        std::printf("request failed: %s\n", r.error.c_str());
        return;
      }
    }
    const std::size_t va = results[0].report.count(report::Category::kSpacing);
    const std::size_t vb = results[1].report.count(report::Category::kSpacing);
    char name[32];
    std::snprintf(name, sizeof name, "2x2/2x3");
    std::printf("%-12s %10d %12zu %12zu %12zu\n", name, decoys, va, vb,
                vb - va);
  }
  dic::bench::note(
      "\nExpected shape: net-aware flags stay constant (the 2 real "
      "defects); net-blind flags grow\nwith the decoy count AND include a "
      "floor of false errors from the chip's own legitimate\nsame-net "
      "geometry (rail taps, connected wires one lambda apart).");
}

void BM_NetAware(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {1, 2, 2, 3, false});
  drc::Checker checker(chip.lib, chip.top, t, {});
  const auto nl = checker.generateNetlist();
  for (auto _ : state)
    benchmark::DoNotOptimize(checker.checkInteractions(nl));
}
BENCHMARK(BM_NetAware)->Unit(benchmark::kMillisecond);

void BM_NetBlind(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {1, 2, 2, 3, false});
  drc::Options blind;
  blind.useNetInformation = false;
  drc::Checker checker(chip.lib, chip.top, t, blind);
  const auto nl = checker.generateNetlist();
  for (auto _ : state)
    benchmark::DoNotOptimize(checker.checkInteractions(nl));
}
BENCHMARK(BM_NetBlind)->Unit(benchmark::kMillisecond);

}  // namespace

DIC_BENCH_MAIN(printAblation)
