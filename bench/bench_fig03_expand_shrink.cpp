// Fig. 3 -- Orthogonal vs Euclidean expand and shrink: both shrinks yield
// square corners on squares; the orthogonal expand preserves square
// corners while the Euclidean expand rounds them (area deficit pi*d^2 vs
// 4*d^2 per four corners).
#include <numbers>

#include "bench_util.hpp"
#include "geom/expand.hpp"

namespace {

using namespace dic;
using geom::makeRect;

void printFig3() {
  dic::bench::title("Fig. 3: orthogonal vs Euclidean expand/shrink");
  std::printf("%-8s %-6s %14s %14s %14s %12s\n", "square", "d", "orthExpand",
              "euclExpand", "cornerLoss", "(pi-4)d^2");
  for (geom::Coord size : {100, 500, 2000}) {
    for (geom::Coord d : {10, 25, 50}) {
      const geom::Region sq(makeRect(0, 0, size, size));
      const double orth = static_cast<double>(sq.expanded(d).area());
      const double eucl = geom::euclideanExpandArea(sq, d);
      std::printf("%-8lld %-6lld %14.0f %14.1f %14.1f %12.1f\n",
                  static_cast<long long>(size), static_cast<long long>(d),
                  orth, eucl, orth - eucl,
                  (4.0 - std::numbers::pi) * d * d);
    }
  }

  std::printf("\n%-8s %-6s %16s %16s\n", "square", "d", "orthShrinkArea",
              "euclShrinkArea");
  for (geom::Coord size : {100, 500}) {
    for (geom::Coord d : {10, 25}) {
      const geom::Region sq(makeRect(0, 0, size, size));
      // Erosion of a convex Manhattan shape is identical under both
      // structuring elements: the deflated square.
      const double orth = static_cast<double>(sq.shrunk(d).area());
      const double eucl = static_cast<double>((size - 2 * d) * (size - 2 * d));
      std::printf("%-8lld %-6lld %16.0f %16.0f\n",
                  static_cast<long long>(size), static_cast<long long>(d),
                  orth, eucl);
    }
  }
  dic::bench::note(
      "\nExpected shape: both shrinks agree exactly on squares; expands "
      "differ by the rounded\ncorner area (4 - pi) d^2, i.e. the Euclidean "
      "expand rounds corners.");
}

void BM_OrthExpand(benchmark::State& state) {
  const geom::Region sq(makeRect(0, 0, 2000, 2000));
  for (auto _ : state) benchmark::DoNotOptimize(sq.expanded(50));
}
BENCHMARK(BM_OrthExpand);

void BM_EuclExpandPolygon(benchmark::State& state) {
  const geom::Rect sq = makeRect(0, 0, 2000, 2000);
  for (auto _ : state)
    benchmark::DoNotOptimize(geom::euclideanExpand(sq, 50, 16));
}
BENCHMARK(BM_EuclExpandPolygon);

void BM_OrthShrink(benchmark::State& state) {
  const geom::Region sq(makeRect(0, 0, 2000, 2000));
  for (auto _ : state) benchmark::DoNotOptimize(sq.shrunk(50));
}
BENCHMARK(BM_OrthShrink);

}  // namespace

DIC_BENCH_MAIN(printFig3)
