// Fig. 13 -- Euclidean, Orthogonal & Proximity-effect expand: the
// developed contour of the Gaussian exposure model (Eq. 1) compared with
// the two geometric expands, including the neighbour interaction neither
// geometric model captures.
#include "bench_util.hpp"
#include "geom/expand.hpp"
#include "process/proximity.hpp"

namespace {

using namespace dic;
using geom::makeRect;

void printFig13() {
  dic::bench::title("Fig. 13: expand models vs exposure contour (200x200 box)");
  std::printf("%-8s %-6s %10s %12s %12s %12s\n", "sigma", "thr", "bias",
              "orthArea", "euclArea", "proxArea");
  const geom::Region mask(makeRect(0, 0, 200, 200));
  for (double sigma : {5.0, 10.0, 20.0}) {
    const process::ExposureModel m(sigma);
    for (double thr : {0.5, 0.35, 0.25}) {
      const double bias = process::edgeBias(m, thr);
      const geom::Coord b =
          static_cast<geom::Coord>(std::llround(std::max(0.0, bias)));
      const double orth = process::orthogonalExpandArea(mask, b);
      const double eucl = geom::euclideanExpandArea(mask, b);
      const geom::Rect win = makeRect(-100, -100, 300, 300);
      const double prox = process::contourArea(m, mask, win, thr, 1).area;
      std::printf("%-8.1f %-6.2f %10.2f %12.0f %12.1f %12.0f\n", sigma, thr,
                  bias, orth, eucl, prox);
    }
  }
  dic::bench::note(
      "Expected shape: prox < eucl < orth at matched bias (corner "
      "rounding), all increasing as\nthe threshold drops.");

  dic::bench::title("Fig. 13: proximity effect of a neighbour (sigma 10)");
  std::printf("%-8s %14s %14s %14s %10s\n", "gap", "isolatedEdge",
              "pairedEdge", "gapDip", "bridges?");
  const process::ExposureModel m(10.0);
  const geom::Rect a = makeRect(0, 0, 100, 100);
  for (geom::Coord gap : {4, 8, 12, 16, 24, 40, 60}) {
    const process::BridgeAnalysis ba = process::analyzeBridge(
        m, a, makeRect(100 + gap, 0, 200 + gap, 100), 0.5);
    std::printf("%-8lld %14.4f %14.4f %14.4f %10s\n",
                static_cast<long long>(gap), ba.isolatedEdgeExposure,
                ba.facingEdgeExposure, ba.maxGapExposure,
                ba.bridges ? "BRIDGE" : "clear");
  }
  dic::bench::note(
      "\nExpected shape: the neighbour raises the facing-edge exposure "
      "(the proximity effect);\nbelow a critical gap the dip between the "
      "features stays above threshold and they bridge --\nbehaviour no "
      "unary expand can model.");
}

void BM_ContourArea(benchmark::State& state) {
  const process::ExposureModel m(10.0);
  const geom::Region mask(makeRect(0, 0, 200, 200));
  const geom::Rect win = makeRect(-80, -80, 280, 280);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        process::contourArea(m, mask, win, 0.35, state.range(0)));
}
BENCHMARK(BM_ContourArea)->Arg(8)->Arg(4)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_BridgeAnalysis(benchmark::State& state) {
  const process::ExposureModel m(10.0);
  const geom::Rect a = makeRect(0, 0, 100, 100);
  const geom::Rect b = makeRect(112, 0, 212, 100);
  for (auto _ : state)
    benchmark::DoNotOptimize(process::analyzeBridge(m, a, b, 0.5));
}
BENCHMARK(BM_BridgeAnalysis);

}  // namespace

DIC_BENCH_MAIN(printFig13)
