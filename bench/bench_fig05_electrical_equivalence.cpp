// Fig. 5 -- Topological pathologies: (a) spacing between electrically
// equivalent boxes is unnecessary; (b) if the element is a resistor, the
// check IS needed (a short would bypass it). Compares the net-blind
// baseline against the net-aware DIC interaction check.
#include "baseline/flat_drc.hpp"
#include "bench_util.hpp"
#include "drc/checker.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dic;
using geom::makeRect;

void printFig5() {
  dic::bench::title("Fig. 5: electrical equivalence and the resistor exception");
  const tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();
  const int nm = *t.layerByName("metal");
  const int nd = *t.layerByName("diff");

  std::printf("%-30s %10s %8s %s\n", "case", "baseline", "DIC",
              "ground truth");
  auto printRow = [&](const char* name, layout::Library& lib,
                      layout::CellId root, const char* truth) {
    const auto base = baseline::check(lib, root, t);
    drc::Checker checker(lib, root, t, {});
    const auto nl = checker.generateNetlist();
    const auto dic = checker.checkInteractions(nl);
    std::printf("%-30s %10s %8s %s\n", name,
                base.count(report::Category::kSpacing) ? "FLAG" : "pass",
                dic.count(report::Category::kSpacing) ? "FLAG" : "pass",
                truth);
  };

  {  // (a) same net, 1L apart: no check needed.
    layout::Library lib;
    layout::Cell top;
    top.name = "top";
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 0, 10 * L, 3 * L), "CLK"));
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 4 * L, 10 * L, 7 * L), "CLK"));
    const auto root = lib.addCell(std::move(top));
    printRow("(a) equivalent boxes 1L apart", lib, root,
             "ok (baseline flag is false)");
  }
  {  // different nets, 1L apart: both should flag.
    layout::Library lib;
    layout::Cell top;
    top.name = "top";
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 0, 10 * L, 3 * L), "CLK"));
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 4 * L, 10 * L, 7 * L), "IN0"));
    const auto root = lib.addCell(std::move(top));
    printRow("    control: different nets", lib, root, "error");
  }
  {  // (b) resistor: same net but the check matters.
    layout::Library lib;
    const workload::NmosCells cells = workload::installNmosCells(lib, t);
    layout::Cell top;
    top.name = "top";
    top.instances.push_back(
        {cells.resistor, {geom::Orient::kR0, {0, 0}}, "r1"});
    top.elements.push_back(layout::makeWire(
        nd,
        {{-4 * L, 0}, {-8 * L, 0}, {-8 * L, -4 * L}, {0, -4 * L}},
        2 * L, "end"));
    const auto root = lib.addCell(std::move(top));
    printRow("(b) wire hooks under resistor", lib, root,
             "error (short bypasses R)");
  }
  dic::bench::note(
      "\nExpected shape: baseline flags (a) falsely; DIC skips (a) via the "
      "same-net sub-case but\nstill flags (b) because the element is a "
      "declared resistor (device-dependent sub-case).");
}

void BM_NetAwareInteractionCheck(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {1, 1, 2, 3, false});
  drc::Checker checker(chip.lib, chip.top, t, {});
  const auto nl = checker.generateNetlist();
  for (auto _ : state)
    benchmark::DoNotOptimize(checker.checkInteractions(nl));
}
BENCHMARK(BM_NetAwareInteractionCheck)->Unit(benchmark::kMillisecond);

}  // namespace

DIC_BENCH_MAIN(printFig5)
