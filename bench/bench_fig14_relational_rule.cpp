// Fig. 14 -- Relational rule: the poly overlap of the gate must grow as
// the poly narrows, because narrow wire ends "retreat". Regenerates the
// retreat-vs-width curve and the pass/fail table of the relational
// gate-overlap check.
#include "bench_util.hpp"
#include "process/relational.hpp"

namespace {

using namespace dic;

void printFig14() {
  dic::bench::title("Fig. 14: end retreat vs wire width (sigma 10, thr 0.5)");
  std::printf("%-10s %12s\n", "width", "retreat");
  const process::ExposureModel m(10.0);
  double prev = -1;
  bool monotone = true;
  for (geom::Coord w : {12, 14, 16, 20, 24, 30, 40, 60, 100, 200}) {
    const double r = process::endRetreat(m, w, 400, 0.5);
    std::printf("%-10lld %12.2f\n", static_cast<long long>(w), r);
    if (prev >= 0 && r > prev) monotone = false;
    prev = r;
  }
  std::printf("retreat decreases with width: %s\n",
              monotone ? "yes" : "NO (unexpected)");

  dic::bench::title(
      "Fig. 14: relational gate-overlap check (drawn overlap 50, need 35)");
  std::printf("%-10s %10s %16s %8s\n", "polyWidth", "retreat",
              "effectiveOverlap", "verdict");
  for (geom::Coord w : {12, 14, 16, 20, 30, 60, 100}) {
    const process::RelationalCheck c =
        process::checkGateOverlapRelational(m, w, 50, 35, 0.5);
    std::printf("%-10lld %10.2f %16.2f %8s\n", static_cast<long long>(w),
                c.retreat, c.effectiveOverlap, c.pass ? "pass" : "FAIL");
  }
  dic::bench::note(
      "\nExpected shape: a fixed drawn overlap passes for wide poly and "
      "fails as the width\napproaches the process sigma -- the rule is "
      "relational, not a constant.");

  dic::bench::title("Line-of-closest-approach spacing with misalignment");
  std::printf("%-8s %-12s %12s %8s\n", "gap", "misalign", "gapDip",
              "verdict");
  const geom::Region a(geom::makeRect(0, 0, 100, 100));
  for (geom::Coord gap : {10, 20, 35, 50}) {
    for (geom::Coord mis : {0, 15, 30}) {
      const geom::Region b(geom::makeRect(100 + gap, 0, 200 + gap, 100));
      const process::LcaSpacing r = process::checkSpacingLca(m, a, b, 0.5, mis);
      std::printf("%-8lld %-12lld %12.4f %8s\n", static_cast<long long>(gap),
                  static_cast<long long>(mis), r.maxExposure,
                  r.fails ? "FAIL" : "pass");
    }
  }
  dic::bench::note(
      "\nExpected shape: misalignment tightens every verdict (different-"
      "layer rules must model\nbias + translation, same-layer only bias).");
}

void BM_EndRetreat(benchmark::State& state) {
  const process::ExposureModel m(10.0);
  for (auto _ : state)
    benchmark::DoNotOptimize(process::endRetreat(m, 20, 400, 0.5));
}
BENCHMARK(BM_EndRetreat);

void BM_LcaSpacing(benchmark::State& state) {
  const process::ExposureModel m(10.0);
  const geom::Region a(geom::makeRect(0, 0, 100, 100));
  const geom::Region b(geom::makeRect(130, 0, 230, 100));
  for (auto _ : state)
    benchmark::DoNotOptimize(process::checkSpacingLca(m, a, b, 0.5, 20));
}
BENCHMARK(BM_LcaSpacing);

}  // namespace

DIC_BENCH_MAIN(printFig14)
