// Fig. 6 -- Device dependent rules: the base region of a bipolar
// transistor shorted to the isolation region is an error (destroys the
// device); the same connection on a base-diffusion resistor is the
// standard way to tie it to ground and is legal. Only a checker that
// knows device types can tell them apart.
#include "bench_util.hpp"
#include "drc/stages.hpp"
#include "tech/technology.hpp"

namespace {

using namespace dic;
using geom::makeRect;

layout::Cell bipolarCase(const tech::Technology& bt, const char* type,
                         bool touching) {
  const geom::Coord U = bt.lambda();
  layout::Cell c;
  c.name = std::string("case_") + type + (touching ? "_short" : "_clear");
  c.deviceType = type;
  c.elements.push_back(layout::makeBox(*bt.layerByName("base"),
                                       makeRect(0, 0, 10 * U, 6 * U)));
  const geom::Coord gap = touching ? 0 : 3 * U;
  c.elements.push_back(layout::makeBox(
      *bt.layerByName("iso"), makeRect(10 * U + gap, 0, 16 * U + gap, 6 * U)));
  return c;
}

void printFig6() {
  dic::bench::title("Fig. 6: device-dependent rules (bipolar base vs isolation)");
  const tech::Technology bt = tech::bipolar();
  std::printf("%-14s %-18s %10s %s\n", "device type", "base-iso contact",
              "DIC", "ground truth");
  struct Case {
    const char* type;
    bool touching;
    const char* truth;
  };
  const Case cases[] = {
      {"NPN", true, "error (device integrity destroyed)"},
      {"NPN", false, "ok"},
      {"BRES", true, "ok (resistor tied to ground)"},
      {"BRES", false, "ok"},
  };
  for (const Case& c : cases) {
    const layout::Cell cell = bipolarCase(bt, c.type, c.touching);
    const auto v = drc::checkDeviceCell(cell, bt);
    std::printf("%-14s %-18s %10s %s\n", c.type,
                c.touching ? "touching" : "3um clear",
                v.empty() ? "pass" : "FLAG", c.truth);
  }
  dic::bench::note(
      "\nExpected shape: the identical geometry flags for NPN and passes "
      "for BRES -- the rule\ndepends on the declared device type, which "
      "mask-level checkers cannot express.");
}

void BM_DeviceCheckNpn(benchmark::State& state) {
  const tech::Technology bt = tech::bipolar();
  const layout::Cell cell = bipolarCase(bt, "NPN", true);
  for (auto _ : state)
    benchmark::DoNotOptimize(drc::checkDeviceCell(cell, bt));
}
BENCHMARK(BM_DeviceCheckNpn);

}  // namespace

DIC_BENCH_MAIN(printFig6)
