// Serving throughput -- the first serving-trajectory datapoint: a
// dic::Workspace handling repeated and mixed check traffic, measured in
// requests/second. Cold vs warm isolates what the per-(root, revision)
// view/netlist cache buys; serial vs pooled isolates what batch dispatch
// over the shared executor buys on top.
#include <chrono>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/executor.hpp"
#include "service/workspace.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace {

using namespace dic;

workload::GeneratedChip makeChip(const workload::ChipParams& p,
                                 const tech::Technology& t) {
  workload::GeneratedChip chip = workload::generateChip(t, p);
  workload::InjectionPlan plan;
  workload::inject(chip, t, plan, /*seed=*/42);
  return chip;
}

std::vector<CheckRequest> mixedBatch(layout::CellId top, int copies) {
  std::vector<CheckRequest> reqs;
  for (int k = 0; k < copies; ++k) {
    reqs.push_back(CheckRequest::drc(top));
    reqs.push_back(CheckRequest::baseline(top));
    reqs.push_back(CheckRequest::ercCheck(top));
    reqs.push_back(CheckRequest::netlistOnly(top));
  }
  return reqs;
}

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void printColdVsWarm() {
  dic::bench::title(
      "Repeated identical DRC request: cold vs warm cache (per request)");
  std::printf("%-16s %10s %10s %9s %12s %12s\n", "chip", "cold-ms",
              "warm-ms", "speedup", "warm-req/s", "view-hits");
  const tech::Technology t = tech::nmos();
  const workload::ChipParams cases[] = {{1, 1, 2, 2, true},
                                        {2, 2, 2, 4, true},
                                        {2, 4, 4, 4, true}};
  for (const auto& p : cases) {
    workload::GeneratedChip chip = makeChip(p, t);
    const layout::CellId top = chip.top;
    Workspace ws(std::move(chip.lib), t, {/*threads=*/0});
    const CheckRequest req = CheckRequest::drc(top);

    const auto c0 = std::chrono::steady_clock::now();
    ws.run(req);  // cold: builds view, grids, netlist
    const double coldS = secondsSince(c0);

    constexpr int kWarm = 20;
    const auto w0 = std::chrono::steady_clock::now();
    for (int k = 0; k < kWarm; ++k) ws.run(req);
    const double warmS = secondsSince(w0) / kWarm;

    char name[64];
    std::snprintf(name, sizeof name, "%dx%d blk %dx%d inv", p.blockRows,
                  p.blockCols, p.invRows, p.invCols);
    const Workspace::CacheStats s = ws.cacheStats();
    std::printf("%-16s %10.2f %10.2f %8.2fx %12.1f %12zu\n", name,
                coldS * 1e3, warmS * 1e3, warmS > 0 ? coldS / warmS : 0.0,
                warmS > 0 ? 1.0 / warmS : 0.0, s.viewHits);
  }
  dic::bench::note(
      "\nWarm requests reuse the cached hierarchy view, grid indexes, and "
      "extracted netlist;\nonly the checks themselves re-run. Reports are "
      "byte-identical cold or warm.");
}

void printBatchDispatch() {
  dic::bench::title(
      "Mixed batch (drc+baseline+erc+netlist x4): serial vs pooled "
      "dispatch, warm cache");
  std::printf("(host hardware threads: %d)\n",
              engine::Executor::hardwareThreads());
  std::printf("%-10s %8s %10s %10s %9s\n", "threads", "workers", "wall-ms",
              "req/s", "speedup");
  const tech::Technology t = tech::nmos();
  double base = 0;
  for (const int threads : {1, 2, 4, 0}) {
    workload::GeneratedChip chip = makeChip({2, 2, 2, 4, true}, t);
    const layout::CellId top = chip.top;
    Workspace ws(std::move(chip.lib), t, {threads});
    const std::vector<CheckRequest> reqs = mixedBatch(top, 4);
    ws.runBatch(reqs);  // warm the cache; measure steady-state serving
    const auto t0 = std::chrono::steady_clock::now();
    ws.runBatch(reqs);
    const double wall = secondsSince(t0);
    if (threads == 1) base = wall;
    std::printf("%-10s %8d %10.2f %10.1f %8.2fx\n",
                threads == 0 ? "0 (auto)" : std::to_string(threads).c_str(),
                ws.executor().threads(), wall * 1e3,
                wall > 0 ? reqs.size() / wall : 0.0,
                wall > 0 ? base / wall : 0.0);
  }
  dic::bench::note(
      "\nEach request is a cost-hinted stage on the ready-queue "
      "dispatcher; heavy DRC requests\nstart first and independent "
      "requests overlap. Results are byte-identical to sequential\n"
      "single runs at every pool size.");
}

void BM_WarmDrcRequest(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = makeChip({2, 2, 2, 4, true}, t);
  const layout::CellId top = chip.top;
  Workspace ws(std::move(chip.lib), t,
               {static_cast<int>(state.range(0))});
  const CheckRequest req = CheckRequest::drc(top);
  ws.run(req);  // warm
  for (auto _ : state) benchmark::DoNotOptimize(ws.run(req));
}
BENCHMARK(BM_WarmDrcRequest)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ColdDrcRequest(benchmark::State& state) {
  // Cache invalidated every iteration: the price of a library edit.
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = makeChip({2, 2, 2, 4, true}, t);
  const layout::CellId top = chip.top;
  Workspace ws(std::move(chip.lib), t, {4});
  const CheckRequest req = CheckRequest::drc(top);
  for (auto _ : state) {
    ws.library().invalidateCaches();
    benchmark::DoNotOptimize(ws.run(req));
  }
}
BENCHMARK(BM_ColdDrcRequest)->Unit(benchmark::kMillisecond);

void BM_MixedBatch(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = makeChip({2, 2, 2, 4, true}, t);
  const layout::CellId top = chip.top;
  Workspace ws(std::move(chip.lib), t,
               {static_cast<int>(state.range(0))});
  const std::vector<CheckRequest> reqs = mixedBatch(top, 4);
  ws.runBatch(reqs);  // warm
  for (auto _ : state) benchmark::DoNotOptimize(ws.runBatch(reqs));
}
BENCHMARK(BM_MixedBatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void printAll() {
  printColdVsWarm();
  printBatchDispatch();
}

}  // namespace

DIC_BENCH_MAIN(printAll)
