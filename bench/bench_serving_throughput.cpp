// Serving throughput -- the serving trajectory: a dic::Workspace
// handling repeated and mixed check traffic, measured in
// requests/second. Cold vs warm isolates what the per-(root, revision)
// view/netlist cache buys; serial vs pooled isolates what batch dispatch
// over the shared executor buys on top; and the multi-shard sweep drives
// a dic::server::Server fleet (shards x threads x open/closed-loop
// arrivals) with the workload traffic generator, reporting per-shard
// req/s and the queue-wait vs service-time split. The sweep is also
// emitted as machine-readable JSON (bench_serving_throughput.json in the
// working directory) for trend tracking.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "engine/executor.hpp"
#include "obs/trace.hpp"
#include "server/server.hpp"
#include "service/workspace.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace dic;

/// --trace-out <path>: dump the traced sweep section's span ring as
/// Chrome/Perfetto JSON (the CI release job archives it as an artifact).
const char* gTraceOut = nullptr;

workload::GeneratedChip makeChip(const workload::ChipParams& p,
                                 const tech::Technology& t) {
  workload::GeneratedChip chip = workload::generateChip(t, p);
  workload::InjectionPlan plan;
  workload::inject(chip, t, plan, /*seed=*/42);
  return chip;
}

std::vector<CheckRequest> mixedBatch(layout::CellId top, int copies) {
  std::vector<CheckRequest> reqs;
  for (int k = 0; k < copies; ++k) {
    reqs.push_back(CheckRequest::drc(top));
    reqs.push_back(CheckRequest::baseline(top));
    reqs.push_back(CheckRequest::ercCheck(top));
    reqs.push_back(CheckRequest::netlistOnly(top));
  }
  return reqs;
}

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void printColdVsWarm() {
  dic::bench::title(
      "Repeated identical DRC request: cold vs warm cache (per request)");
  std::printf("%-16s %10s %10s %9s %12s %12s\n", "chip", "cold-ms",
              "warm-ms", "speedup", "warm-req/s", "view-hits");
  const tech::Technology t = tech::nmos();
  const workload::ChipParams cases[] = {{1, 1, 2, 2, true},
                                        {2, 2, 2, 4, true},
                                        {2, 4, 4, 4, true}};
  for (const auto& p : cases) {
    workload::GeneratedChip chip = makeChip(p, t);
    const layout::CellId top = chip.top;
    Workspace ws(std::move(chip.lib), t, {/*threads=*/0});
    const CheckRequest req = CheckRequest::drc(top);

    const auto c0 = std::chrono::steady_clock::now();
    ws.run(req);  // cold: builds view, grids, netlist
    const double coldS = secondsSince(c0);

    constexpr int kWarm = 20;
    const auto w0 = std::chrono::steady_clock::now();
    for (int k = 0; k < kWarm; ++k) ws.run(req);
    const double warmS = secondsSince(w0) / kWarm;

    char name[64];
    std::snprintf(name, sizeof name, "%dx%d blk %dx%d inv", p.blockRows,
                  p.blockCols, p.invRows, p.invCols);
    const Workspace::CacheStats s = ws.cacheStats();
    std::printf("%-16s %10.2f %10.2f %8.2fx %12.1f %12zu\n", name,
                coldS * 1e3, warmS * 1e3, warmS > 0 ? coldS / warmS : 0.0,
                warmS > 0 ? 1.0 / warmS : 0.0, s.viewHits);
  }
  dic::bench::note(
      "\nWarm requests reuse the cached hierarchy view, grid indexes, and "
      "extracted netlist;\nonly the checks themselves re-run. Reports are "
      "byte-identical cold or warm.");
}

void printBatchDispatch() {
  dic::bench::title(
      "Mixed batch (drc+baseline+erc+netlist x4): serial vs pooled "
      "dispatch, warm cache");
  std::printf("(host hardware threads: %d)\n",
              engine::Executor::hardwareThreads());
  std::printf("%-10s %8s %10s %10s %9s\n", "threads", "workers", "wall-ms",
              "req/s", "speedup");
  const tech::Technology t = tech::nmos();
  double base = 0;
  for (const int threads : {1, 2, 4, 0}) {
    workload::GeneratedChip chip = makeChip({2, 2, 2, 4, true}, t);
    const layout::CellId top = chip.top;
    Workspace ws(std::move(chip.lib), t, {threads});
    const std::vector<CheckRequest> reqs = mixedBatch(top, 4);
    ws.runBatch(reqs);  // warm the cache; measure steady-state serving
    const auto t0 = std::chrono::steady_clock::now();
    ws.runBatch(reqs);
    const double wall = secondsSince(t0);
    if (threads == 1) base = wall;
    std::printf("%-10s %8d %10.2f %10.1f %8.2fx\n",
                threads == 0 ? "0 (auto)" : std::to_string(threads).c_str(),
                ws.executor().threads(), wall * 1e3,
                wall > 0 ? reqs.size() / wall : 0.0,
                wall > 0 ? base / wall : 0.0);
  }
  dic::bench::note(
      "\nEach request is decomposed into its inner stages on the "
      "batch-wide ready-queue\ndispatcher (shared view/netlist prefetch "
      "stages, cross-request overlap); results are\nbyte-identical to "
      "sequential single runs at every pool size.");
}

void BM_WarmDrcRequest(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = makeChip({2, 2, 2, 4, true}, t);
  const layout::CellId top = chip.top;
  Workspace ws(std::move(chip.lib), t,
               {static_cast<int>(state.range(0))});
  const CheckRequest req = CheckRequest::drc(top);
  ws.run(req);  // warm
  for (auto _ : state) benchmark::DoNotOptimize(ws.run(req));
}
BENCHMARK(BM_WarmDrcRequest)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_ColdDrcRequest(benchmark::State& state) {
  // Cache invalidated every iteration: the price of a library edit.
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = makeChip({2, 2, 2, 4, true}, t);
  const layout::CellId top = chip.top;
  Workspace ws(std::move(chip.lib), t, {4});
  const CheckRequest req = CheckRequest::drc(top);
  for (auto _ : state) {
    ws.library().invalidateCaches();
    benchmark::DoNotOptimize(ws.run(req));
  }
}
BENCHMARK(BM_ColdDrcRequest)->Unit(benchmark::kMillisecond);

void BM_MixedBatch(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = makeChip({2, 2, 2, 4, true}, t);
  const layout::CellId top = chip.top;
  Workspace ws(std::move(chip.lib), t,
               {static_cast<int>(state.range(0))});
  const std::vector<CheckRequest> reqs = mixedBatch(top, 4);
  ws.runBatch(reqs);  // warm
  for (auto _ : state) benchmark::DoNotOptimize(ws.runBatch(reqs));
}
BENCHMARK(BM_MixedBatch)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

// --- multi-shard server sweep ------------------------------------------------

/// One sweep configuration's measurement.
struct SweepResult {
  int shards{0};
  int threadsPerShard{0};
  const char* mode{""};  ///< "closed", "open", or "warm-edit*"
  int dispatchers{1};    ///< open-loop submitter threads (1 in closed mode)
  std::size_t requests{0};
  double wallSeconds{0};
  /// Row carries an explicit "gated": false in the JSON (warm-edit rows:
  /// informational until a baseline lands, then compare_bench gates them
  /// via the row flag).
  bool informational{false};
  server::ServerStats stats;

  double reqPerSec() const {
    return wallSeconds > 0 ? static_cast<double>(requests) / wallSeconds : 0;
  }
};

// --- warm edit-then-check: incremental vs full rebuild ----------------------

/// Toggle one element of `cell` between its original position and a
/// one-lambda nudge, serving an edit-carrying DRC request each time, and
/// measure the warm per-request latency two ways: the incremental path
/// (cached view patched in place, only the dirty window re-checked) and
/// the full-rebuild path (invalidateCaches() before every request — the
/// classic price of an edit, BM_ColdDrcRequest's pattern). Emits
/// "warm-edit" / "warm-edit-full" rows into the sweep JSON (explicitly
/// ungated until a baseline lands).
void printWarmEditCheck(std::vector<SweepResult>& results) {
  dic::bench::title(
      "Warm edit-then-check: incremental vs full rebuild (per request)");
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = makeChip({2, 4, 4, 4, true}, t);
  const layout::CellId top = chip.top;
  const std::array<layout::CellId, 3> candidates{top, chip.block,
                                                 chip.cells.inverter};
  Workspace ws(std::move(chip.lib), t, {/*threads=*/4});
  ws.run(CheckRequest::drc(top));  // warm + populate the incremental cache

  // Pick the edit that a warm interactive session actually issues: nudge an
  // *interior* element — one whose bbox stays a lambda clear of the cell
  // bbox, so the move preserves the cell bbox and the cached interaction
  // reports outside the dirty window stay valid. Prefer the smallest such
  // element (fewest nearby interfaces), searching the top cell first (one
  // placement) and falling back to shared cells; validate each pick with a
  // trial toggle that must ride the whole fast path (view patched, netlist
  // kept).
  const layout::Library& lib = std::as_const(ws).library();
  layout::CellId cell = top;
  std::size_t idx = 0;
  layout::Element e0 = lib.cell(top).elements.empty()
                           ? lib.cell(chip.block).elements[0]
                           : lib.cell(top).elements[0];
  bool picked = false;
  for (const layout::CellId c : candidates) {
    const geom::Rect cb = lib.cellBBox(c);
    std::size_t best = 0;
    long long bestPerim = 0;
    bool interior = false;
    for (std::size_t k = 0; k < lib.cell(c).elements.size(); ++k) {
      const geom::Rect bb = lib.cell(c).elements[k].bbox();
      const geom::Rect b = bb.inflated(25);
      if (b.lo.x < cb.lo.x || b.lo.y < cb.lo.y || b.hi.x > cb.hi.x ||
          b.hi.y > cb.hi.y)
        continue;
      const long long perim =
          (long long)(bb.hi.x - bb.lo.x) + (long long)(bb.hi.y - bb.lo.y);
      if (!interior || perim < bestPerim) {
        best = k;
        bestPerim = perim;
      }
      interior = true;
    }
    if (!interior) continue;
    const layout::Element cand = lib.cell(c).elements[best];
    CheckRequest probe = CheckRequest::drc(top);
    probe.edits.push_back(
        EditOp::setElement(c, best, cand.transformed(geom::translate({25, 0}))));
    const CheckResult fwd = ws.run(probe);
    CheckRequest undo = CheckRequest::drc(top);
    undo.edits.push_back(EditOp::setElement(c, best, cand));
    ws.run(undo);
    if (fwd.ok() && fwd.incrementalHit && fwd.netlistCacheHit) {
      cell = c;
      idx = best;
      e0 = cand;
      picked = true;
      break;
    }
  }
  if (!picked)
    dic::bench::note("warm-edit: no interior fast-path element found; "
                     "timing the first top element instead");
  const layout::Element e1 = e0.transformed(geom::translate({25, 0}));
  const auto editReq = [&](bool alt) {
    CheckRequest req = CheckRequest::drc(top);
    req.edits.push_back(EditOp::setElement(cell, idx, alt ? e1 : e0));
    return req;
  };

  // Median per-request latency: single warm requests are a few ms, where
  // scheduler noise on a shared machine can double an individual sample.
  constexpr int kIters = 30;
  const auto median = [](std::vector<double> xs) {
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
  };
  std::size_t incHits = 0;
  std::vector<double> samples;
  samples.reserve(kIters);
  for (int k = 0; k < kIters; ++k) {
    const auto t0 = std::chrono::steady_clock::now();
    incHits += ws.run(editReq((k & 1) != 0)).incrementalHit ? 1u : 0u;
    samples.push_back(secondsSince(t0));
  }
  const double incS = median(samples);

  samples.clear();
  for (int k = 0; k < kIters; ++k) {
    ws.library().invalidateCaches();  // edit log cleared: full rebuild
    const auto t0 = std::chrono::steady_clock::now();
    ws.run(editReq((k & 1) != 0));
    samples.push_back(secondsSince(t0));
  }
  const double fullS = median(samples);

  std::printf("%-18s %12s %12s %9s %12s\n", "path", "med ms/req", "req/s",
              "speedup", "inc-hits");
  std::printf("%-18s %12.2f %12.1f %9s %11zu/%d\n", "incremental",
              incS * 1e3, incS > 0 ? 1.0 / incS : 0.0, "-", incHits, kIters);
  std::printf("%-18s %12.2f %12.1f %8.2fx\n", "full-rebuild", fullS * 1e3,
              fullS > 0 ? 1.0 / fullS : 0.0, incS > 0 ? fullS / incS : 0.0);
  dic::bench::note(
      "\nBoth paths apply the same element toggle through the tracked edit "
      "API and return\nbyte-identical reports; the incremental path patches "
      "the cached view in place and\nre-checks only the edit's dirty window "
      "(docs/workspace.md, \"Incremental edit-then-check\").");

  for (const bool full : {false, true}) {
    SweepResult r;
    r.mode = full ? "warm-edit-full" : "warm-edit";
    r.shards = 0;
    r.threadsPerShard = 4;
    r.requests = kIters;
    r.wallSeconds = (full ? fullS : incS) * kIters;
    r.informational = true;
    results.push_back(std::move(r));
  }
}

/// Build the library fleet and register it; returns each library's root.
std::vector<layout::CellId> registerFleet(server::Server& srv,
                                          std::size_t libraries,
                                          const tech::Technology& t) {
  std::vector<layout::CellId> tops;
  for (std::size_t l = 0; l < libraries; ++l) {
    workload::GeneratedChip chip = makeChip({1, 1, 2, 4, true}, t);
    tops.push_back(chip.top);
    srv.addLibrary(workload::libraryName(l), std::move(chip.lib), t);
  }
  return tops;
}

/// Drive one configuration: warm each library once, then replay the
/// trace closed-loop (4 client threads, submit-on-completion) or
/// open-loop (submit on the trace's arrival schedule from `dispatchers`
/// striding submitter threads — workload::driveOpenLoop — so high rates
/// are not capped by one submitter's loop latency).
SweepResult runSweepConfig(int shards, int threadsPerShard, bool openLoop,
                           int dispatchers,
                           const std::vector<workload::TrafficEvent>& trace,
                           std::size_t libraries,
                           const tech::Technology& t, bool traced = false,
                           const server::RoutingOptions* routing = nullptr) {
  server::ServerOptions opts;
  opts.shards = shards;
  opts.threadsPerShard = threadsPerShard;
  opts.queue.capacity = 512;
  if (routing) opts.routing = *routing;
  server::Server srv(opts);
  const std::vector<layout::CellId> tops = registerFleet(srv, libraries, t);

  // Warm pass: one DRC per library pays the view/netlist builds so the
  // sweep measures steady-state serving, not first-touch construction.
  {
    std::vector<std::future<CheckResult>> warm;
    for (std::size_t l = 0; l < libraries; ++l)
      warm.push_back(
          srv.submit(workload::libraryName(l), CheckRequest::drc(tops[l])));
    for (auto& f : warm) f.get();
  }
  const server::ServerStats warmStats = srv.stats();

  // Closed-loop rows feed the CI perf gate, and a single replay of 48
  // requests spans only tens of milliseconds — one scheduler hiccup
  // inside that window would read as a 30% "regression". Best-of-3
  // replays (server and caches stay warm between them) keeps the gated
  // number a capacity measurement instead of a noise sample.
  const int repeats = openLoop ? 1 : 3;
  double wall = 0;
  for (int rep = 0; rep < repeats; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    if (openLoop) {
      std::mutex futMu;  // submits race from the dispatcher threads
      std::vector<std::future<CheckResult>> futs;
      futs.reserve(trace.size());
      workload::driveOpenLoop(
          trace, dispatchers, [&](const workload::TrafficEvent& ev) {
            std::future<CheckResult> f =
                srv.submit(workload::libraryName(ev.library),
                           workload::materialize(ev, tops[ev.library]));
            std::lock_guard<std::mutex> lock(futMu);
            futs.push_back(std::move(f));
          });
      for (auto& f : futs) f.get();
    } else {
      constexpr int kClients = 4;
      std::vector<std::thread> clients;
      for (int c = 0; c < kClients; ++c) {
        clients.emplace_back([&, c] {
          for (std::size_t i = static_cast<std::size_t>(c); i < trace.size();
               i += kClients) {
            const workload::TrafficEvent& ev = trace[i];
            CheckRequest req = workload::materialize(ev, tops[ev.library]);
            // The traced row measures full span emission, so every
            // request must carry a live trace id (id 0 emits nothing).
            if (traced) req.traceId = obs::newTraceId();
            srv.submit(workload::libraryName(ev.library), std::move(req))
                .get();
          }
        });
      }
      for (std::thread& th : clients) th.join();
    }
    const double w = secondsSince(t0);
    if (rep == 0 || w < wall) wall = w;
  }
  SweepResult r;
  r.wallSeconds = wall;
  r.shards = shards;
  r.threadsPerShard = threadsPerShard;
  r.mode = openLoop ? "open" : "closed";
  r.dispatchers = openLoop ? dispatchers : 1;
  r.requests = trace.size();
  r.stats = srv.stats();
  // Subtract the warm pass and normalize to ONE replay window so
  // per-shard req/s lines up with wallSeconds (means/quantiles still
  // include every job -- the warm pass is a few samples among hundreds).
  for (std::size_t s = 0; s < r.stats.shards.size(); ++s) {
    r.stats.shards[s].served -= warmStats.shards[s].served;
    r.stats.shards[s].served /= static_cast<std::size_t>(repeats);
  }
  return r;
}

void printMultiShardSweep(std::vector<SweepResult>& results) {
  dic::bench::title(
      "Multi-shard server sweep: 4 libraries, mixed traffic (zipf "
      "popularity), per-shard split");
  std::printf("(host hardware threads: %d; closed loop = 4 clients; open "
              "loop = 120 req/s x1 dispatcher, 480 req/s x4 dispatchers)\n",
              engine::Executor::hardwareThreads());
  const tech::Technology t = tech::nmos();
  constexpr std::size_t kLibraries = 4;

  workload::TrafficOptions topt;
  topt.libraries = kLibraries;
  topt.requests = 48;
  topt.seed = 7;
  const std::vector<workload::TrafficEvent> closedTrace =
      workload::generateTrace(topt);
  topt.arrivalsPerSecond = 120;
  const std::vector<workload::TrafficEvent> openTrace =
      workload::generateTrace(topt);
  // The saturation fix: one submitter caps the drivable rate at
  // ~1/submit-latency, so the fast schedule is shared by 4 striding
  // dispatcher threads (workload::driveOpenLoop) — same trace, same
  // per-event arrival times, 4x the submission parallelism.
  topt.arrivalsPerSecond = 480;
  const std::vector<workload::TrafficEvent> fastOpenTrace =
      workload::generateTrace(topt);

  struct Config {
    bool open;
    int dispatchers;
    const std::vector<workload::TrafficEvent>* trace;
  };
  const Config configs[] = {{false, 1, &closedTrace},
                            {true, 1, &openTrace},
                            {true, 4, &fastOpenTrace}};

  std::printf("%-7s %7s %7s %6s %9s %9s | per-shard: %s\n", "mode", "shards",
              "thr/sh", "disp", "wall-ms", "req/s",
              "req/s (queue-wait-ms / service-ms)");
  for (const Config& cfg : configs) {
    for (const int shards : {1, 2, 4}) {
      SweepResult r = runSweepConfig(shards, /*threadsPerShard=*/2, cfg.open,
                                     cfg.dispatchers, *cfg.trace, kLibraries,
                                     t);
      std::printf("%-7s %7d %7d %6d %9.1f %9.1f | ", r.mode, r.shards,
                  r.threadsPerShard, r.dispatchers, r.wallSeconds * 1e3,
                  r.reqPerSec());
      for (const server::ShardStats& sh : r.stats.shards)
        std::printf("%.0f (%.2f/%.2f)  ",
                    r.wallSeconds > 0
                        ? static_cast<double>(sh.served) / r.wallSeconds
                        : 0.0,
                    sh.meanQueueWaitSeconds * 1e3,
                    sh.meanServiceSeconds * 1e3);
      std::printf("\n");
      results.push_back(std::move(r));
    }
  }
  dic::bench::note(
      "\nEach library routes to one shard by stable hash, so shard req/s "
      "is uneven under zipf\npopularity (library 0 dominates). Queue-wait "
      "vs service split shows where time goes:\nclosed-loop waits are "
      "bounded by the client count, open-loop waits grow whenever the\n"
      "arrival rate beats a shard's service rate. The x4-dispatcher rows "
      "drive the schedule\nfrom 4 striding submitter threads, so the "
      "measured range is not capped by one\nsubmitter's loop latency.");
}

/// The replication payoff, measured: the same zipf closed-loop trace
/// served twice on 4 shards — once under classic hash routing (library 0
/// pins its owner shard) and once under kLeastLoadedReplica with
/// thresholds low enough that the hot libraries promote mid-trace and
/// their read traffic spreads over the fresh replicas. Emits two
/// informational rows ("zipf-hash" / "zipf-replicated", "gated": false);
/// the contract is a >= 2x improvement in the max/min per-shard served
/// ratio with the formerly-hot shard's p95 no worse
/// (compare_bench.py reports the delta when both rows are present).
void printReplicationBalance(std::vector<SweepResult>& results) {
  dic::bench::title(
      "Hot-library replication: zipf closed loop, hash vs "
      "least-loaded-replica routing (4 shards)");
  const tech::Technology t = tech::nmos();
  workload::TrafficOptions topt;
  topt.libraries = 4;
  topt.requests = 96;
  topt.seed = 7;
  const std::vector<workload::TrafficEvent> trace =
      workload::generateTrace(topt);

  server::RoutingOptions replicated;
  replicated.policy = server::RoutingPolicy::kLeastLoadedReplica;
  replicated.replicas = 3;  // clamped to shards - 1
  replicated.heatWindow = 8;
  replicated.promoteServed = 4;
  replicated.demoteServed = 0;  // never demote inside the measured window

  SweepResult rows[2];
  for (int i = 0; i < 2; ++i) {
    rows[i] = runSweepConfig(/*shards=*/4, /*threadsPerShard=*/2,
                             /*openLoop=*/false, /*dispatchers=*/1, trace,
                             topt.libraries, t, /*traced=*/false,
                             i == 1 ? &replicated : nullptr);
    rows[i].mode = i == 0 ? "zipf-hash" : "zipf-replicated";
    rows[i].informational = true;
  }

  const auto maxMinRatio = [](const SweepResult& r) {
    std::size_t mx = 0, mn = static_cast<std::size_t>(-1);
    for (const server::ShardStats& sh : r.stats.shards) {
      mx = std::max(mx, sh.served);
      mn = std::min(mn, sh.served);
    }
    return static_cast<double>(mx) /
           static_cast<double>(std::max<std::size_t>(mn, 1));
  };
  // The shard hash routing overloads: most-served in the hash row.
  std::size_t hotShard = 0;
  for (std::size_t s = 0; s < rows[0].stats.shards.size(); ++s)
    if (rows[0].stats.shards[s].served >
        rows[0].stats.shards[hotShard].served)
      hotShard = s;

  std::printf("%-16s %9s %9s %11s %14s | per-shard req/s\n", "routing",
              "wall-ms", "req/s", "max/min", "hot-shard p95");
  for (const SweepResult& r : rows) {
    std::printf("%-16s %9.1f %9.1f %10.1fx %12.2fms | ", r.mode,
                r.wallSeconds * 1e3, r.reqPerSec(), maxMinRatio(r),
                r.stats.shards[hotShard].p95Seconds * 1e3);
    for (const server::ShardStats& sh : r.stats.shards)
      std::printf("%.0f  ", r.wallSeconds > 0
                                ? static_cast<double>(sh.served) /
                                      r.wallSeconds
                                : 0.0);
    std::printf("\n");
  }
  dic::bench::note(
      "\nSame trace, same shards: hash routing pins every library to its "
      "owner, so zipf\npopularity concentrates on one shard; with "
      "least-loaded-replica routing the hot\nlibraries promote to read "
      "replicas mid-trace and their (read-only) traffic spreads\nto the "
      "least-loaded fresh replica. Responses stay byte-identical either "
      "way — the\nserver tests hold replicated serving to the single-owner "
      "oracle.");
  results.push_back(std::move(rows[0]));
  results.push_back(std::move(rows[1]));
}

/// The tracing cost contract, measured: the closed-loop warm config
/// re-run with the runtime flag on and every request carrying a live
/// trace id. Emits one informational "traced" row (same schema/key as
/// the "closed" rows, "gated": false until a baseline lands — then
/// compare_bench gates the enabled-vs-disabled delta at -5%).
void printTracingOverhead(std::vector<SweepResult>& results) {
  dic::bench::title(
      "Span tracing overhead: closed-loop warm serving, runtime flag on");
  const tech::Technology t = tech::nmos();
  workload::TrafficOptions topt;
  topt.libraries = 4;
  topt.requests = 48;
  topt.seed = 7;
  const std::vector<workload::TrafficEvent> trace =
      workload::generateTrace(topt);

  obs::Tracer::instance().clear();
  obs::Tracer::instance().setEnabled(true);
  SweepResult on = runSweepConfig(/*shards=*/2, /*threadsPerShard=*/2,
                                  /*openLoop=*/false, /*dispatchers=*/1,
                                  trace, topt.libraries, t, /*traced=*/true);
  obs::Tracer::instance().setEnabled(false);
  on.mode = "traced";
  on.informational = true;

  // The matching flag-off number is the sweep's own closed/2-shard row
  // (best-of-3 in this same process), so the comparison needs no extra
  // run.
  double offReqPerSec = 0;
  for (const SweepResult& r : results)
    if (std::string(r.mode) == "closed" && r.shards == on.shards &&
        r.threadsPerShard == on.threadsPerShard)
      offReqPerSec = r.reqPerSec();
  std::printf("%-12s %9s %9s %9s\n", "flag", "wall-ms", "req/s", "delta");
  if (offReqPerSec > 0)
    std::printf("%-12s %9s %9.1f %9s\n", "off (gated)", "-", offReqPerSec,
                "-");
  std::printf("%-12s %9.1f %9.1f %8.1f%%\n", "on (traced)",
              on.wallSeconds * 1e3, on.reqPerSec(),
              offReqPerSec > 0
                  ? (on.reqPerSec() / offReqPerSec - 1.0) * 100.0
                  : 0.0);
  dic::bench::note(
      "\nEvery request of the traced row carries a live trace id, so each "
      "one pays full span\nemission (session stages, pipeline stages, "
      "kernel sections) into the central ring.\nThe row is informational "
      "until a baseline lands; the contract is within 5% of the\n"
      "flag-off closed-loop row.");

  if (gTraceOut) {
    const std::string json =
        obs::toChromeTraceJson(obs::Tracer::instance().snapshot());
    if (std::FILE* f = std::fopen(gTraceOut, "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("(span ring exported to %s — load in ui.perfetto.dev)\n",
                  gTraceOut);
    }
  }
  results.push_back(std::move(on));
}

void writeSweepJson(const std::vector<SweepResult>& results,
                    const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return;
  // host_cores records where the numbers came from: refresh_baselines.sh
  // warns when a fetched baseline was measured on a 1-core container.
  std::fprintf(f, "{\n  \"host_cores\": %d,\n  \"multi_shard_sweep\": [\n",
               engine::Executor::hardwareThreads());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SweepResult& r = results[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"shards\": %d, "
                 "\"threadsPerShard\": %d, \"dispatchers\": %d, "
                 "\"requests\": %zu, "
                 "\"wallSeconds\": %.6f, \"reqPerSec\": %.2f,%s\n"
                 "     \"perShard\": [",
                 r.mode, r.shards, r.threadsPerShard, r.dispatchers,
                 r.requests, r.wallSeconds, r.reqPerSec(),
                 r.informational ? " \"gated\": false," : "");
    for (std::size_t s = 0; s < r.stats.shards.size(); ++s) {
      const server::ShardStats& sh = r.stats.shards[s];
      std::fprintf(
          f,
          "%s{\"served\": %zu, \"reqPerSec\": %.2f, "
          "\"meanQueueWaitMs\": %.4f, \"meanServiceMs\": %.4f, "
          "\"p50Ms\": %.4f, \"p95Ms\": %.4f, \"cacheBytes\": %zu, "
          "\"replicas\": %zu}",
          s == 0 ? "" : ", ", sh.served,
          r.wallSeconds > 0 ? static_cast<double>(sh.served) / r.wallSeconds
                            : 0.0,
          sh.meanQueueWaitSeconds * 1e3, sh.meanServiceSeconds * 1e3,
          sh.p50Seconds * 1e3, sh.p95Seconds * 1e3, sh.cacheBytes,
          sh.replicas);
    }
    std::fprintf(f, "]}%s\n", i + 1 == results.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n(machine-readable sweep written to %s)\n", path);
}

void printAll() {
  printColdVsWarm();
  printBatchDispatch();
  std::vector<SweepResult> sweep;
  printWarmEditCheck(sweep);
  printMultiShardSweep(sweep);
  printReplicationBalance(sweep);
  printTracingOverhead(sweep);
  writeSweepJson(sweep, "bench_serving_throughput.json");
}

}  // namespace

// Hand-rolled DIC_BENCH_MAIN so the bench can strip its own --trace-out
// flag before google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      gTraceOut = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int n = static_cast<int>(args.size());
  printAll();
  ::benchmark::Initialize(&n, args.data());
  if (::benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
