// Run-time claim -- "Handling the complexity of VLSI designs in a layout
// checker, maintaining run time at an acceptable level": interaction-
// check run time vs chip size for the hierarchical algorithm (per-cell
// once + overlap windows) vs full instantiation, plus the mask-level
// baseline. The hierarchical advantage grows with design regularity.
#include <chrono>

#include "baseline/flat_drc.hpp"
#include "bench_util.hpp"
#include "drc/checker.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dic;

double timeMs(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

void printScaling() {
  dic::bench::title(
      "Run-time scaling: hierarchical vs flat interactions vs baseline");
  std::printf("%-8s %10s %12s %10s %12s %10s\n", "invs", "flatElems",
              "hier(ms)", "flat(ms)", "baseline(ms)", "speedup");
  const tech::Technology t = tech::nmos();
  const workload::ChipParams cases[] = {
      {1, 1, 2, 2, false}, {1, 2, 2, 4, false}, {2, 2, 4, 4, false},
      {2, 4, 4, 6, false}, {4, 4, 4, 8, false},
  };
  for (const auto& p : cases) {
    workload::GeneratedChip chip = workload::generateChip(t, p);
    const auto stats = chip.lib.sizeStats(chip.top);

    drc::Options hier;
    drc::Options flat;
    flat.hierarchicalInteractions = false;

    drc::Checker ch(chip.lib, chip.top, t, hier);
    drc::Checker cf(chip.lib, chip.top, t, flat);
    const auto nlh = ch.generateNetlist();
    const auto nlf = cf.generateNetlist();

    std::size_t nh = 0, nf = 0;
    const double hierMs = timeMs([&] { nh = ch.checkInteractions(nlh).count(); });
    const double flatMs = timeMs([&] { nf = cf.checkInteractions(nlf).count(); });
    const double baseMs =
        timeMs([&] { baseline::check(chip.lib, chip.top, t); });
    std::printf("%-8zu %10zu %12.2f %10.2f %12.2f %9.1fx%s\n",
                chip.inverterCount(), stats.flatElements, hierMs, flatMs,
                baseMs, flatMs / hierMs,
                nh == nf ? "" : "  (violation mismatch!)");
  }
  dic::bench::note(
      "\nExpected shape: hierarchical time grows with the number of "
      "distinct cells plus window\narea (slowly), flat time with the "
      "instantiated element count -- the speedup grows with\nthe array "
      "replication factor, which is the paper's case for a hierarchical "
      "front end.");
}

void BM_HierarchicalInteractions(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {static_cast<int>(state.range(0)), 2, 4, 4, false});
  drc::Checker checker(chip.lib, chip.top, t, {});
  const auto nl = checker.generateNetlist();
  for (auto _ : state)
    benchmark::DoNotOptimize(checker.checkInteractions(nl));
  state.SetComplexityN(chip.inverterCount());
}
BENCHMARK(BM_HierarchicalInteractions)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

void BM_FlatInteractions(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {static_cast<int>(state.range(0)), 2, 4, 4, false});
  drc::Options flat;
  flat.hierarchicalInteractions = false;
  drc::Checker checker(chip.lib, chip.top, t, flat);
  const auto nl = checker.generateNetlist();
  for (auto _ : state)
    benchmark::DoNotOptimize(checker.checkInteractions(nl));
  state.SetComplexityN(chip.inverterCount());
}
BENCHMARK(BM_FlatInteractions)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Complexity();

}  // namespace

DIC_BENCH_MAIN(printScaling)
