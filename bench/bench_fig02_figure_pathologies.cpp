// Fig. 2 -- Figure pathologies of "figure based" checkers: (a) legal
// figures whose union is illegal (a pinched neck at a sloppy overlap);
// (b) too-narrow figures whose union is legal (butting halves). Compares
// the per-figure verdict, the mask-union verdict, and the DIC verdict
// (element width + skeletal connection rules).
#include "bench_util.hpp"
#include "drc/stages.hpp"
#include "geom/width.hpp"
#include "tech/technology.hpp"

namespace {

using namespace dic;
using geom::makeRect;

struct CaseResult {
  bool figureBased;  // any per-figure width violation
  bool maskUnion;    // any violation on the unioned mask
  bool dic;          // element width or illegal-connection violation
};

CaseResult evaluate(const tech::Technology& t, const geom::Rect& a,
                    const geom::Rect& b, int layer) {
  CaseResult r{};
  const geom::Coord minW = t.layer(layer).minWidth;
  r.figureBased = !geom::checkWidthEdges(geom::Region(a), minW).empty() ||
                  !geom::checkWidthEdges(geom::Region(b), minW).empty();
  const geom::Region u = unite(geom::Region(a), geom::Region(b));
  r.maskUnion = !geom::checkWidthEdges(u, minW).empty();
  layout::Cell c;
  c.name = "case";
  c.elements.push_back(layout::makeBox(layer, a));
  c.elements.push_back(layout::makeBox(layer, b));
  bool dicFlag = false;
  for (const auto& e : c.elements)
    if (!drc::checkElementWidth(e, t).empty()) dicFlag = true;
  if (!drc::checkCellConnections(c, t).empty()) dicFlag = true;
  r.dic = dicFlag;
  return r;
}

void printFig2() {
  dic::bench::title("Fig. 2: figure pathologies");
  const tech::Technology t = tech::nmos();
  const int nm = *t.layerByName("metal");
  const geom::Coord L = t.lambda();

  std::printf("%-34s %12s %10s %6s %s\n", "case", "figure-based",
              "mask-union", "DIC", "ground truth");
  auto row = [&](const char* name, const geom::Rect& a, const geom::Rect& b,
                 const char* truth) {
    const CaseResult r = evaluate(t, a, b, nm);
    std::printf("%-34s %12s %10s %6s %s\n", name,
                r.figureBased ? "FLAG" : "pass", r.maskUnion ? "FLAG" : "pass",
                r.dic ? "FLAG" : "pass", truth);
  };

  // (a) legal figures, illegal composite: two legal boxes overlapping by
  // less than the minimum width -> the union necks down at the joint.
  row("legal figs, pinched union",
      makeRect(0, 0, 10 * L, 3 * L), makeRect(10 * L - L, 2 * L, 20 * L, 5 * L),
      "error (pinched)");
  // (b) narrow figures, legal composite: butting halves.
  row("narrow figs, legal union", makeRect(0, 0, 10 * L, 3 * L / 2),
      makeRect(0, 3 * L / 2, 10 * L, 3 * L), "error (usage rule)");
  // control: legal figures properly overlapped.
  row("legal figs, legal union", makeRect(0, 0, 10 * L, 3 * L),
      makeRect(7 * L, 0, 17 * L, 3 * L), "ok");
  // control: genuinely narrow isolated figure.
  row("narrow isolated figure", makeRect(0, 0, 10 * L, 2 * L),
      makeRect(0, 30 * L, 10 * L, 33 * L), "error (width)");

  dic::bench::note(
      "\nExpected shape: figure-based misses the pinched union; the "
      "mask-union check misses the\nbutting halves; DIC flags both (element "
      "width + skeletal connection rules).");
}

void BM_PerFigureWidth(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();
  const geom::Region a(makeRect(0, 0, 10 * L, 3 * L));
  for (auto _ : state)
    benchmark::DoNotOptimize(geom::checkWidthEdges(a, 3 * L));
}
BENCHMARK(BM_PerFigureWidth);

void BM_UnionThenWidth(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();
  const geom::Region a(makeRect(0, 0, 10 * L, 3 * L));
  const geom::Region b(makeRect(9 * L, 2 * L, 19 * L, 5 * L));
  for (auto _ : state) {
    const geom::Region u = unite(a, b);
    benchmark::DoNotOptimize(geom::checkWidthEdges(u, 3 * L));
  }
}
BENCHMARK(BM_UnionThenWidth);

}  // namespace

DIC_BENCH_MAIN(printFig2)
