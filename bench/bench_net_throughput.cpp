// Socket load driver for the dic::net tier: an EXTERNAL process driving
// workload::traffic traces at a check server over real TCP, measuring
// end-to-end requests/second through the full stack — frame encode,
// kernel sockets, session decode, sharded serving, streamed responses,
// frame decode — and verifying along the way that every wire response
// is byte-identical to an in-process oracle run of the same request.
//
// By default the driver spawns ./example_check_server_tcp (found next
// to this binary) as a child process on an ephemeral port, parses the
// child's "LISTENING <port>" handshake, runs the sweep, then closes the
// child's stdin to trigger its graceful drain. Point it at an already-
// running server instead with --addr:
//
//   $ ./bench_net_throughput [--addr HOST:PORT] [--shards N]
//         [--threads N] [--no-verify]
//
// Rows (mode, connections, dispatchers) are emitted to stdout and to
// bench_net_throughput.json ("net_throughput" schema, understood
// informationally by bench/compare_bench.py — loopback throughput on a
// shared runner is too noisy to gate).
//
// This is deliberately NOT a google-benchmark binary: the measurement
// is one external process driving another, not a microbenchmark loop.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits.h>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/executor.hpp"
#include "net/client.hpp"
#include "service/workspace.hpp"
#include "workload/traffic.hpp"

namespace {

using namespace dic;

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// A spawned check_server_tcp child: stdin pipe for the termination
/// handshake, stdout pipe for the LISTENING line.
struct ServerProcess {
  pid_t pid{-1};
  int stdinFd{-1};
  std::uint16_t port{0};

  bool spawn(int shards, int threads) {
    // The server example lives next to this binary.
    char exe[PATH_MAX] = {0};
    const ssize_t n = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
    if (n <= 0) return false;
    std::string path(exe, static_cast<std::size_t>(n));
    const std::size_t slash = path.rfind('/');
    if (slash == std::string::npos) return false;
    path = path.substr(0, slash + 1) + "example_check_server_tcp";

    int toChild[2], fromChild[2];
    if (::pipe(toChild) != 0) return false;
    if (::pipe(fromChild) != 0) {
      ::close(toChild[0]);
      ::close(toChild[1]);
      return false;
    }
    pid = ::fork();
    if (pid < 0) return false;
    if (pid == 0) {
      ::dup2(toChild[0], 0);
      ::dup2(fromChild[1], 1);
      ::close(toChild[0]);
      ::close(toChild[1]);
      ::close(fromChild[0]);
      ::close(fromChild[1]);
      const std::string shardsArg = std::to_string(shards);
      const std::string threadsArg = std::to_string(threads);
      ::execl(path.c_str(), path.c_str(), /*port=*/"0", /*libraries=*/"4",
              shardsArg.c_str(), threadsArg.c_str(), /*queue=*/"256",
              "block", static_cast<char*>(nullptr));
      std::perror("bench_net_throughput: exec example_check_server_tcp");
      std::_Exit(127);
    }
    ::close(toChild[0]);
    ::close(fromChild[1]);
    stdinFd = toChild[1];

    // Parse the handshake line from the child's stdout.
    std::FILE* out = ::fdopen(fromChild[0], "r");
    if (!out) return false;
    char line[256];
    bool found = false;
    while (std::fgets(line, sizeof line, out)) {
      unsigned p = 0;
      if (std::sscanf(line, "LISTENING %u", &p) == 1) {
        port = static_cast<std::uint16_t>(p);
        found = true;
        break;
      }
    }
    std::fclose(out);  // the child keeps writing to stderr, not stdout
    return found && port != 0;
  }

  /// Close stdin (the drain signal) and reap; returns the exit status.
  int terminate() {
    if (stdinFd >= 0) {
      ::close(stdinFd);
      stdinFd = -1;
    }
    if (pid <= 0) return -1;
    int status = 0;
    ::waitpid(pid, &status, 0);
    pid = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }
};

struct Row {
  std::string mode;
  int connections{1};
  int dispatchers{1};
  std::size_t requests{0};
  double wallSeconds{0};
  std::size_t reportParts{0};
  std::size_t rejected{0};

  double reqPerSec() const {
    return wallSeconds > 0 ? static_cast<double>(requests) / wallSeconds : 0;
  }
};

/// Replay `trace` closed-loop over `connections` clients from
/// `threads` submitter threads (thread c strides the trace and keeps
/// one request outstanding on client c % connections). Collected
/// results land in *out (indexed like the trace) when non-null.
Row runClosedLoop(const std::string& host, std::uint16_t port,
                  const std::vector<workload::TrafficEvent>& trace,
                  const std::vector<layout::CellId>& tops, int connections,
                  int threads, std::vector<CheckResult>* out) {
  std::vector<std::unique_ptr<net::Client>> clients;
  for (int c = 0; c < connections; ++c) {
    net::ClientOptions copts;
    copts.host = host;
    copts.port = port;
    clients.push_back(std::make_unique<net::Client>(copts));
  }
  if (out) out->resize(trace.size());
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> submitters;
  for (int c = 0; c < threads; ++c) {
    submitters.emplace_back([&, c] {
      net::Client& cli = *clients[static_cast<std::size_t>(c) %
                                  clients.size()];
      for (std::size_t i = static_cast<std::size_t>(c); i < trace.size();
           i += static_cast<std::size_t>(threads)) {
        const workload::TrafficEvent& ev = trace[i];
        CheckResult r =
            cli.check(workload::libraryName(ev.library),
                      workload::materialize(ev, tops[ev.library]));
        if (out) (*out)[i] = std::move(r);
      }
    });
  }
  for (std::thread& th : submitters) th.join();
  Row row;
  row.mode = "closed";
  row.connections = connections;
  row.dispatchers = threads;
  row.requests = trace.size();
  row.wallSeconds = secondsSince(t0);
  for (const auto& cli : clients) {
    const net::ClientTelemetry tel = cli->telemetry();
    row.reportParts += tel.reportPartFrames;
    row.rejected += tel.rejectedFrames;
  }
  return row;
}

/// Replay an open-loop trace's arrival schedule through one multiplexed
/// connection from `dispatchers` striding submitter threads.
Row runOpenLoop(const std::string& host, std::uint16_t port,
                const std::vector<workload::TrafficEvent>& trace,
                const std::vector<layout::CellId>& tops, int dispatchers) {
  net::ClientOptions copts;
  copts.host = host;
  copts.port = port;
  net::Client cli(copts);
  std::mutex futMu;
  std::vector<std::future<CheckResult>> futs;
  futs.reserve(trace.size());
  const auto t0 = std::chrono::steady_clock::now();
  workload::driveOpenLoop(
      trace, dispatchers, [&](const workload::TrafficEvent& ev) {
        std::future<CheckResult> f =
            cli.submit(workload::libraryName(ev.library),
                       workload::materialize(ev, tops[ev.library]));
        std::lock_guard<std::mutex> lock(futMu);
        futs.push_back(std::move(f));
      });
  for (auto& f : futs) f.get();
  Row row;
  row.mode = "open";
  row.connections = 1;
  row.dispatchers = dispatchers;
  row.requests = trace.size();
  row.wallSeconds = secondsSince(t0);
  const net::ClientTelemetry tel = cli.telemetry();
  row.reportParts = tel.reportPartFrames;
  row.rejected = tel.rejectedFrames;
  return row;
}

void writeJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"host_cores\": %d,\n  \"net_throughput\": [\n",
               dic::engine::Executor::hardwareThreads());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"connections\": %d, "
                 "\"dispatchers\": %d, \"requests\": %zu, "
                 "\"wallSeconds\": %.6f, \"reqPerSec\": %.2f, "
                 "\"reportParts\": %zu, \"rejected\": %zu, "
                 "\"gated\": false}%s\n",
                 r.mode.c_str(), r.connections, r.dispatchers, r.requests,
                 r.wallSeconds, r.reqPerSec(), r.reportParts, r.rejected,
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  std::string addr;
  int shards = 2;
  int threads = 2;
  bool verify = true;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--addr" && i + 1 < argc)
      addr = argv[++i];
    else if (a == "--shards" && i + 1 < argc)
      shards = std::atoi(argv[++i]);
    else if (a == "--threads" && i + 1 < argc)
      threads = std::atoi(argv[++i]);
    else if (a == "--no-verify")
      verify = false;
    else {
      std::fprintf(stderr,
                   "usage: bench_net_throughput [--addr HOST:PORT] "
                   "[--shards N] [--threads N] [--no-verify]\n");
      return 2;
    }
  }

  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  ServerProcess child;
  if (addr.empty()) {
    if (!child.spawn(shards, threads)) {
      std::fprintf(stderr,
                   "bench_net_throughput: failed to spawn "
                   "example_check_server_tcp\n");
      return 1;
    }
    port = child.port;
    std::printf("spawned check_server_tcp pid %d on port %u\n",
                static_cast<int>(child.pid), port);
  } else {
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bench_net_throughput: --addr wants HOST:PORT\n");
      return 2;
    }
    host = addr.substr(0, colon);
    port = static_cast<std::uint16_t>(std::atoi(addr.c_str() + colon + 1));
  }

  // The same deterministic fleet + trace the serving bench uses; the
  // server process regenerates the identical fleet from the shared
  // recipe (workload::fleetChip), so no layout crosses the wire.
  const dic::tech::Technology t = dic::tech::nmos();
  constexpr std::size_t kLibraries = 4;
  std::vector<dic::layout::CellId> tops;
  std::vector<dic::workload::GeneratedChip> chips;
  for (std::size_t l = 0; l < kLibraries; ++l) {
    chips.push_back(dic::workload::fleetChip(t));
    tops.push_back(chips.back().top);
  }
  dic::workload::TrafficOptions topt;
  topt.libraries = kLibraries;
  topt.requests = 48;
  topt.seed = 7;
  const std::vector<dic::workload::TrafficEvent> closedTrace =
      dic::workload::generateTrace(topt);
  topt.arrivalsPerSecond = 120;
  const std::vector<dic::workload::TrafficEvent> openTrace =
      dic::workload::generateTrace(topt);

  // Warm pass over the wire: one DRC per library pays the server's
  // view/netlist builds, so the rows measure steady-state serving.
  {
    dic::net::ClientOptions copts;
    copts.host = host;
    copts.port = port;
    dic::net::Client cli(copts);
    std::string err;
    if (!cli.connect(&err)) {
      std::fprintf(stderr, "bench_net_throughput: connect failed: %s\n",
                   err.c_str());
      child.terminate();
      return 1;
    }
    for (std::size_t l = 0; l < kLibraries; ++l) {
      const dic::CheckResult r = cli.check(
          dic::workload::libraryName(l), dic::CheckRequest::drc(tops[l]));
      if (!r.ok()) {
        std::fprintf(stderr, "bench_net_throughput: warm %s failed: %s\n",
                     dic::workload::libraryName(l).c_str(), r.error.c_str());
        child.terminate();
        return 1;
      }
    }
  }

  std::vector<Row> rows;
  std::vector<dic::CheckResult> wireResults;
  rows.push_back(runClosedLoop(host, port, closedTrace, tops,
                               /*connections=*/1, /*threads=*/4,
                               verify ? &wireResults : nullptr));
  rows.push_back(runClosedLoop(host, port, closedTrace, tops,
                               /*connections=*/4, /*threads=*/4, nullptr));
  rows.push_back(runOpenLoop(host, port, openTrace, tops,
                             /*dispatchers=*/4));

  std::printf("\n%-7s %12s %11s %9s %9s %12s %9s\n", "mode", "connections",
              "dispatchers", "requests", "wall-ms", "req/s", "rejected");
  for (const Row& r : rows)
    std::printf("%-7s %12d %11d %9zu %9.1f %12.1f %9zu\n", r.mode.c_str(),
                r.connections, r.dispatchers, r.requests,
                r.wallSeconds * 1e3, r.reqPerSec(), r.rejected);

  // Oracle pass: replay the closed trace on local Workspaces and demand
  // byte-identical reports — the wire must be a transparent transport.
  std::size_t mismatches = 0;
  if (verify) {
    std::vector<std::unique_ptr<dic::Workspace>> oracles;
    for (std::size_t l = 0; l < kLibraries; ++l)
      oracles.push_back(std::make_unique<dic::Workspace>(
          std::move(chips[l].lib), t, dic::WorkspaceOptions{1}));
    for (std::size_t i = 0; i < closedTrace.size(); ++i) {
      const dic::workload::TrafficEvent& ev = closedTrace[i];
      const dic::CheckResult ref = oracles[ev.library]->run(
          dic::workload::materialize(ev, tops[ev.library]));
      const dic::CheckResult& got = wireResults[i];
      if (!got.ok() || got.report.text() != ref.report.text()) {
        ++mismatches;
        std::fprintf(stderr,
                     "MISMATCH event %zu (%s): wire %s (%zu violations) vs "
                     "oracle %zu violations\n",
                     i, dic::workload::libraryName(ev.library).c_str(),
                     got.ok() ? "ok" : got.error.c_str(),
                     got.report.violations().size(),
                     ref.report.violations().size());
      }
    }
    std::printf("oracle: %zu/%zu wire responses byte-identical to "
                "in-process results\n",
                closedTrace.size() - mismatches, closedTrace.size());
  }

  writeJson(rows, "bench_net_throughput.json");

  if (addr.empty()) {
    const int rc = child.terminate();
    std::printf("server drained, exit %d\n", rc);
    if (rc != 0) return 1;
  }
  return mismatches == 0 ? 0 : 1;
}
