// Non-geometric construction rules -- the paper's list: (1) a net must
// have at least two devices; (2) power and ground must not be shorted;
// (3) a bus may not connect to power or ground; (4) a depletion device
// may not connect to ground. Hit/miss matrix on constructed netlists.
#include "bench_util.hpp"
#include "erc/erc.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace {

using namespace dic;
using geom::makeRect;

void printErc() {
  dic::bench::title("Non-geometric construction rules (ERC)");
  const tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();
  const int nm = *t.layerByName("metal");
  const int nd = *t.layerByName("diff");
  const int np = *t.layerByName("poly");

  std::printf("%-34s %-28s %s\n", "scenario", "rules fired", "expected");
  auto printRow = [&](const char* name, layout::Library& lib,
                      layout::CellId root, const char* expectRule) {
    const auto nl = netlist::extract(lib, root, t);
    const auto rep = erc::check(nl, t);
    std::string fired;
    for (const auto& v : rep.violations()) {
      if (fired.find(v.rule) != std::string::npos) continue;
      if (!fired.empty()) fired += " ";
      fired += v.rule;
    }
    if (fired.empty()) fired = "-";
    std::printf("%-34s %-28s %s\n", name, fired.c_str(), expectRule);
  };

  {  // rule 1: dangling net.
    layout::Library lib;
    layout::Cell top;
    top.name = "top";
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 0, 10 * L, 3 * L), "orphan"));
    const auto root = lib.addCell(std::move(top));
    printRow("net with no devices", lib, root, "ERC.DANGLING");
  }
  {  // rule 2: VDD-GND short.
    layout::Library lib;
    layout::Cell top;
    top.name = "top";
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 0, 20 * L, 3 * L), "VDD"));
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 0, 3 * L, 20 * L), "GND"));
    const auto root = lib.addCell(std::move(top));
    printRow("power shorted to ground", lib, root, "ERC.PGSHORT");
  }
  {  // rule 3: bus tied to power.
    layout::Library lib;
    layout::Cell top;
    top.name = "top";
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 0, 20 * L, 3 * L), "BUS7"));
    top.elements.push_back(
        layout::makeBox(nm, makeRect(10 * L, 0, 30 * L, 3 * L), "VDD"));
    const auto root = lib.addCell(std::move(top));
    printRow("bus connects to power", lib, root, "ERC.BUS_PG");
  }
  {  // rule 4: depletion device to ground.
    layout::Library lib;
    const workload::NmosCells cells = workload::installNmosCells(lib, t);
    layout::Cell top;
    top.name = "top";
    top.instances.push_back(
        {cells.dtran, {geom::Orient::kR0, {0, 0}}, "d"});
    top.elements.push_back(
        layout::makeWire(nd, {{0, -3 * L}, {0, -20 * L}}, 2 * L, "GND"));
    top.elements.push_back(
        layout::makeWire(nd, {{0, 3 * L}, {0, 20 * L}}, 2 * L, "x"));
    top.elements.push_back(
        layout::makeWire(np, {{-3 * L, 0}, {-20 * L, 0}}, 2 * L, "y"));
    const auto root = lib.addCell(std::move(top));
    printRow("depletion device to ground", lib, root, "ERC.DEPL_GND");
  }
  {  // control: clean chip.
    workload::GeneratedChip chip =
        workload::generateChip(t, {1, 1, 2, 2, true});
    printRow("clean generated chip", chip.lib, chip.top, "- (clean)");
  }
  dic::bench::note(
      "\nExpected shape: one distinct rule per scenario, nothing on the "
      "clean chip. \"Net list\ngeneration and non-geometric design "
      "verification ... should appropriately be handled by a\nsingle "
      "program.\"");
}

void BM_ErcOnChip(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {2, 2, 2, 4, true});
  const auto nl = netlist::extract(chip.lib, chip.top, t);
  for (auto _ : state) benchmark::DoNotOptimize(erc::check(nl, t));
}
BENCHMARK(BM_ErcOnChip);

void BM_NetlistExtraction(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {2, 2, 2, 4, true});
  for (auto _ : state)
    benchmark::DoNotOptimize(netlist::extract(chip.lib, chip.top, t));
}
BENCHMARK(BM_NetlistExtraction)->Unit(benchmark::kMillisecond);

}  // namespace

DIC_BENCH_MAIN(printErc)
