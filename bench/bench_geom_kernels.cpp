// Geometry kernel micro-benches -- the three hot loops that PR 6 moved
// onto the Region SoA view (xlo/ylo/xhi/yhi contiguous arrays) with
// branchless integer inner comparisons:
//
//   boolean_sweep       incremental sorted scanline union of two rect sets
//   spacing_walk        checkSpacing gap-mask prefilter + exact tail
//   candidate_pair_scan pairsWithin grid gather + Chebyshev-gap mask
//
// Each kernel runs both the vectorized path and its retained scalar
// oracle (booleanSweepScalar / checkSpacingScalar / pairsWithinScalar)
// on identical deterministic inputs at 1e4 / 1e5 rects, plus a 1e6
// soa-only row for headroom (the scalar oracle at 1e6 would dominate the
// CI wall clock, so it is informational-only). Checksums over the
// outputs are compared on the spot: the two paths must agree exactly,
// which is the same byte-identity contract the differential tests in
// tests/geom_kernels_test.cpp enforce shape by shape.
//
// The table is also emitted as machine-readable JSON
// (bench_geom_kernels.json in the working directory) with one row per
// (kernel, size, variant); bench/compare_bench.py gates the rows marked
// "gated" at -30% opsPerSec against the committed baseline in
// bench/baselines/.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/executor.hpp"
#include "engine/hierarchy_view.hpp"
#include "geom/region.hpp"
#include "geom/spacing.hpp"

namespace {

using namespace dic;
using geom::Coord;
using geom::Rect;
using geom::Region;

// --- deterministic input generation -----------------------------------------

/// splitmix64: tiny, deterministic, and identical on every platform --
/// benches and baselines must describe the same workload everywhere.
std::uint64_t nextRand(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Coord randIn(std::uint64_t& s, Coord lo, Coord hi) {
  return lo + static_cast<Coord>(nextRand(s) % static_cast<std::uint64_t>(
                                                   hi - lo + 1));
}

/// Random (possibly overlapping) rects in a window sized so the mean
/// local density stays constant as n grows -- the regime the scanline
/// sweep sees from real mask layers.
std::vector<Rect> randomRects(std::size_t n, std::uint64_t seed) {
  std::uint64_t s = seed;
  const Coord window =
      static_cast<Coord>(100.0 * std::max(1.0, std::sqrt(double(n))));
  std::vector<Rect> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Coord x = randIn(s, -window / 2, window / 2);
    const Coord y = randIn(s, -window / 2, window / 2);
    const Coord w = randIn(s, 20, 120);
    const Coord h = randIn(s, 20, 120);
    out.push_back({{x, y}, {x + w, y + h}});
  }
  return out;
}

/// A ~`rects`-rect region: jittered disjoint tiles on a coarse grid, so
/// Region::fromRects keeps the count (no union collapse) and the edge
/// walk sees realistic staircase boundaries.
Region tileRegion(std::size_t rects, Coord originX, Coord originY,
                  std::uint64_t seed) {
  std::uint64_t s = seed;
  const std::size_t side =
      static_cast<std::size_t>(std::ceil(std::sqrt(double(rects))));
  std::vector<Rect> rs;
  rs.reserve(rects);
  for (std::size_t i = 0; i < rects; ++i) {
    const Coord gx = originX + static_cast<Coord>(i % side) * 100;
    const Coord gy = originY + static_cast<Coord>(i / side) * 100;
    const Coord w = randIn(s, 30, 60);
    const Coord h = randIn(s, 30, 60);
    rs.push_back({{gx, gy}, {gx + w, gy + h}});
  }
  return Region::fromRects(rs);
}

// --- measurement ------------------------------------------------------------

double secondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct Row {
  std::string kernel;
  std::size_t size{0};      ///< total input rects
  std::string variant;      ///< "soa" or "scalar"
  bool gated{false};        ///< feeds the CI -30% gate
  int reps{0};
  double wallSeconds{0};
  double opsPerSec{0};      ///< input rects processed per second
  std::uint64_t checksum{0};
};

/// Run `fn` (returns a checksum) and report the BEST per-rep wall time:
/// one calibration rep sizes the rep count (~0.3 s of reruns, min 2 so
/// even the 1e6 rows get a second sample, capped so they don't stall
/// CI), and the minimum over all reps -- calibration included -- is the
/// number that lands in the JSON. Min-of-reps is what the CI gate needs
/// on shared runners: a scheduler hiccup inflates a mean but cannot
/// deflate a minimum.
template <typename Fn>
Row measure(const char* kernel, std::size_t size, const char* variant,
            bool gated, Fn&& fn) {
  Row r;
  r.kernel = kernel;
  r.size = size;
  r.variant = variant;
  r.gated = gated;
  const auto c0 = std::chrono::steady_clock::now();
  r.checksum = fn();
  double best = secondsSince(c0);
  const int reps = static_cast<int>(
      std::clamp(0.3 / std::max(best, 1e-9), 2.0, 50.0));
  for (int k = 0; k < reps; ++k) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t again = fn();
    best = std::min(best, secondsSince(t0));
    if (again != r.checksum) r.checksum = ~std::uint64_t{0};  // unstable!
  }
  r.reps = reps + 1;
  r.wallSeconds = best;
  r.opsPerSec = best > 0 ? static_cast<double>(size) / best : 0.0;
  return r;
}

std::uint64_t hashRects(const std::vector<Rect>& rs) {
  std::uint64_t h = 0x243f6a8885a308d3ull + rs.size();
  for (const Rect& r : rs) {
    h = h * 0x100000001b3ull ^ static_cast<std::uint64_t>(r.lo.x);
    h = h * 0x100000001b3ull ^ static_cast<std::uint64_t>(r.lo.y);
    h = h * 0x100000001b3ull ^ static_cast<std::uint64_t>(r.hi.x);
    h = h * 0x100000001b3ull ^ static_cast<std::uint64_t>(r.hi.y);
  }
  return h;
}

// --- kernels ----------------------------------------------------------------

/// boolean_sweep: union of two n/2-rect sets through the scanline.
void benchBooleanSweep(std::size_t n, bool gated, bool scalarToo,
                       std::vector<Row>& rows) {
  const std::vector<Rect> a = randomRects(n / 2, /*seed=*/n * 2 + 1);
  const std::vector<Rect> b = randomRects(n - n / 2, /*seed=*/n * 3 + 7);
  rows.push_back(measure("boolean_sweep", n, "soa", gated, [&] {
    return hashRects(geom::booleanSweep(a, b, geom::BoolOp::kOr));
  }));
  if (scalarToo)
    rows.push_back(measure("boolean_sweep", n, "scalar", gated, [&] {
      return hashRects(geom::booleanSweepScalar(a, b, geom::BoolOp::kOr));
    }));
}

/// spacing_walk: batched checkSpacing over region pairs (~1024 rects
/// per region -- a realistic mask-layer component size -- n rects in
/// total across the batch). Pair gaps straddle the minSpacing threshold
/// so both the mask prefilter and the exact tail do real work.
void benchSpacingWalk(std::size_t n, bool gated, bool scalarToo,
                      std::vector<Row>& rows) {
  constexpr std::size_t kPerRegion = 1024;
  const std::size_t pairs = std::max<std::size_t>(1, n / (2 * kPerRegion));
  std::vector<std::pair<Region, Region>> work;
  work.reserve(pairs);
  std::uint64_t s = n * 5 + 11;
  for (std::size_t p = 0; p < pairs; ++p) {
    const Coord gap = randIn(s, 5, 200);  // minSpacing is 100
    const Coord side =
        static_cast<Coord>(std::ceil(std::sqrt(double(kPerRegion)))) * 100;
    work.emplace_back(tileRegion(kPerRegion, 0, 0, nextRand(s)),
                      tileRegion(kPerRegion, side + gap, 0, nextRand(s)));
  }
  const auto run = [&](auto&& check) {
    std::uint64_t h = 0;
    for (const auto& [ra, rb] : work) {
      const auto vs = check(ra, rb, Coord{100}, geom::Metric::kEuclidean);
      h = h * 0x100000001b3ull ^ vs.size();
      for (const auto& v : vs)
        h = h * 0x100000001b3ull ^
            static_cast<std::uint64_t>(v.a.lo.x + v.b.lo.x) ^
            static_cast<std::uint64_t>(v.measured * 1e6);
    }
    return h;
  };
  rows.push_back(measure("spacing_walk", n, "soa", gated, [&] {
    return run([](const Region& a, const Region& b, Coord d, geom::Metric m) {
      return geom::checkSpacing(a, b, d, m);
    });
  }));
  if (scalarToo)
    rows.push_back(measure("spacing_walk", n, "scalar", gated, [&] {
      return run([](const Region& a, const Region& b, Coord d,
                    geom::Metric m) {
        return geom::checkSpacingScalar(a, b, d, m);
      });
    }));
}

/// candidate_pair_scan: pairsWithin over n bboxes (grid gather + gap
/// mask vs the scalar grid + rectDistance walk).
void benchCandidatePairScan(std::size_t n, bool gated, bool scalarToo,
                            std::vector<Row>& rows) {
  const std::vector<Rect> boxes = randomRects(n, /*seed=*/n * 7 + 3);
  const auto hashPairs =
      [](const std::vector<std::pair<std::size_t, std::size_t>>& ps) {
        std::uint64_t h = 0x452821e638d01377ull + ps.size();
        for (const auto& [i, j] : ps)
          h = h * 0x100000001b3ull ^ (i * 0x9e3779b97f4a7c15ull + j);
        return h;
      };
  rows.push_back(measure("candidate_pair_scan", n, "soa", gated, [&] {
    return hashPairs(engine::pairsWithin(boxes, /*dist=*/60));
  }));
  if (scalarToo)
    rows.push_back(measure("candidate_pair_scan", n, "scalar", gated, [&] {
      return hashPairs(engine::pairsWithinScalar(boxes, /*dist=*/60));
    }));
}

// --- reporting --------------------------------------------------------------

void printRows(const std::vector<Row>& rows) {
  dic::bench::title(
      "Geometry kernels: SoA vectorized path vs retained scalar oracle");
  std::printf("%-20s %9s %-7s %5s %10s %12s %9s  %s\n", "kernel", "rects",
              "variant", "reps", "wall-ms", "rects/s", "speedup",
              "output");
  for (const Row& r : rows) {
    // Speedup vs the scalar row of the same (kernel, size), if present.
    double speedup = 0;
    bool match = true;
    for (const Row& o : rows)
      if (o.kernel == r.kernel && o.size == r.size && o.variant == "scalar") {
        if (r.variant == "soa") {
          speedup = o.wallSeconds > 0 ? o.wallSeconds / r.wallSeconds : 0;
          match = o.checksum == r.checksum;
        }
      }
    char sp[16] = "-";
    if (speedup > 0) std::snprintf(sp, sizeof sp, "%.2fx", speedup);
    std::printf("%-20s %9zu %-7s %5d %10.2f %12.0f %9s  %s\n",
                r.kernel.c_str(), r.size, r.variant.c_str(), r.reps,
                r.wallSeconds * 1e3, r.opsPerSec, sp,
                r.variant == "soa"
                    ? (match ? "== scalar" : "MISMATCH vs scalar!")
                    : "");
  }
  dic::bench::note(
      "\nBoth variants run the same deterministic inputs; the checksum "
      "column asserts the\nvectorized output is identical to the scalar "
      "oracle's (the differential tests in\ntests/geom_kernels_test.cpp "
      "prove the same property shape by shape). 1e6 rows are\nsoa-only: "
      "informational headroom, not gated.");
}

void writeKernelsJson(const std::vector<Row>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"host_cores\": %d,\n  \"geom_kernels\": [\n",
               engine::Executor::hardwareThreads());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"kernel\": \"%s\", \"size\": %zu, \"variant\": "
                 "\"%s\", \"gated\": %s, \"reps\": %d, "
                 "\"wallSeconds\": %.6f, \"opsPerSec\": %.1f, "
                 "\"checksum\": \"%016llx\"}%s\n",
                 r.kernel.c_str(), r.size, r.variant.c_str(),
                 r.gated ? "true" : "false", r.reps, r.wallSeconds,
                 r.opsPerSec,
                 static_cast<unsigned long long>(r.checksum),
                 i + 1 == rows.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n(machine-readable kernel table written to %s)\n", path);
}

void printAll() {
  std::vector<Row> rows;
  for (const std::size_t n : {std::size_t{10'000}, std::size_t{100'000}}) {
    benchBooleanSweep(n, /*gated=*/true, /*scalarToo=*/true, rows);
    benchSpacingWalk(n, /*gated=*/true, /*scalarToo=*/true, rows);
    benchCandidatePairScan(n, /*gated=*/true, /*scalarToo=*/true, rows);
  }
  // Headroom row: 1e6 rects, vectorized path only (the scalar oracle at
  // this size would dominate the CI wall clock).
  benchBooleanSweep(1'000'000, /*gated=*/false, /*scalarToo=*/false, rows);
  benchCandidatePairScan(1'000'000, /*gated=*/false, /*scalarToo=*/false,
                         rows);
  printRows(rows);
  writeKernelsJson(rows, "bench_geom_kernels.json");
}

// --- google-benchmark timings (vectorized path, CI smoke granularity) -------

void BM_BooleanSweepSoA(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<Rect> a = randomRects(n / 2, n * 2 + 1);
  const std::vector<Rect> b = randomRects(n - n / 2, n * 3 + 7);
  for (auto _ : state)
    benchmark::DoNotOptimize(geom::booleanSweep(a, b, geom::BoolOp::kOr));
}
BENCHMARK(BM_BooleanSweepSoA)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_PairsWithinSoA(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<Rect> boxes = randomRects(n, n * 7 + 3);
  for (auto _ : state)
    benchmark::DoNotOptimize(engine::pairsWithin(boxes, 60));
}
BENCHMARK(BM_PairsWithinSoA)->Arg(10'000)->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

DIC_BENCH_MAIN(printAll)
