#pragma once
/// \file bench_util.hpp
/// Shared helpers for the figure-reproduction benches: aligned table
/// printing plus the standard main() that first prints the reproduction
/// table(s) and then runs the google-benchmark timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace dic::bench {

inline void title(const std::string& s) {
  std::printf("\n=== %s ===\n", s.c_str());
}

inline void note(const std::string& s) { std::printf("%s\n", s.c_str()); }

/// DIC_BENCH_MAIN(print_fn): emit the reproduction tables, then run the
/// registered google-benchmark timings.
#define DIC_BENCH_MAIN(print_fn)                          \
  int main(int argc, char** argv) {                       \
    print_fn();                                           \
    ::benchmark::Initialize(&argc, argv);                 \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                \
    ::benchmark::Shutdown();                              \
    return 0;                                             \
  }

}  // namespace dic::bench
