// Fig. 12 -- Interaction rules: the upper-triangular layer-pair matrix
// with same-net / different-net / related sub-cases. Shows the matrix the
// technology defines and how many candidate pairs each sub-case pruned on
// a generated chip ("most of these cases are not necessary").
#include "bench_util.hpp"
#include "drc/checker.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dic;

void printFig12() {
  dic::bench::title("Fig. 12: the interaction matrix (NMOS, lambda units)");
  const tech::Technology t = tech::nmos();
  const double L = static_cast<double>(t.lambda());
  std::printf("%-9s", "");
  for (int b = 0; b < t.layerCount(); ++b)
    std::printf(" %-14s", t.layer(b).name.c_str());
  std::printf("\n");
  for (int a = 0; a < t.layerCount(); ++a) {
    std::printf("%-9s", t.layer(a).name.c_str());
    for (int b = 0; b < t.layerCount(); ++b) {
      if (b < a) {
        std::printf(" %-14s", "");
        continue;
      }
      const tech::SpacingRule& r = t.spacing(a, b);
      if (!r.any()) {
        std::printf(" %-14s", ".");
      } else {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%g/%g/%g", r.sameNet / L,
                      r.diffNet / L, r.related / L);
        std::printf(" %-14s", buf);
      }
    }
    std::printf("\n");
  }
  dic::bench::note("(cells: sameNet/diffNet/related; '.' = no rule)");

  dic::bench::title("Fig. 12: sub-case pruning on a generated chip");
  workload::GeneratedChip chip =
      workload::generateChip(t, {2, 2, 3, 4, true});
  drc::Checker checker(chip.lib, chip.top, t, {});
  checker.run();
  const drc::InteractionStats& s = checker.interactionStats();
  std::printf("candidate pairs:        %zu\n", s.candidatePairs);
  std::printf("no rule for layer pair: %zu\n", s.noRulePairs);
  std::printf("same-net skipped:       %zu\n", s.sameNetSkipped);
  std::printf("related skipped:        %zu\n", s.relatedSkipped);
  std::printf("connection checks:      %zu\n", s.connectionChecks);
  std::printf("distance checks:        %zu\n", s.distanceChecks);
  std::printf("\ndistance checks by layer pair:\n");
  for (const auto& [pair, n] : s.perLayerPair)
    std::printf("  %-8s x %-8s %8zu\n", t.layer(pair.first).name.c_str(),
                t.layer(pair.second).name.c_str(), n);
  dic::bench::note(
      "\nExpected shape: most candidate pairs die in the no-rule, "
      "same-net or related sub-cases;\nactual distance computations are a "
      "small fraction of candidates.");
}

void BM_InteractionStage(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {2, 2, 2, 3, false});
  drc::Checker checker(chip.lib, chip.top, t, {});
  const auto nl = checker.generateNetlist();
  for (auto _ : state)
    benchmark::DoNotOptimize(checker.checkInteractions(nl));
}
BENCHMARK(BM_InteractionStage)->Unit(benchmark::kMillisecond);

}  // namespace

DIC_BENCH_MAIN(printFig12)
