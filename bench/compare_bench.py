#!/usr/bin/env python3
"""CI perf-regression gate for the machine-readable bench JSONs.

Compares a candidate run (written by a bench into its working directory)
against the committed baseline under ``bench/baselines/`` and fails —
exit 1 — if any gated row's throughput metric dropped more than
``--tolerance`` (default 30%) below the baseline. Two schemas are
understood, keyed by the JSON's top-level name:

``multi_shard_sweep`` (bench_serving_throughput)
    Rows keyed by (mode, shards, threadsPerShard, dispatchers); metric is
    warm-pool ``reqPerSec``. *Closed-loop* rows always gate: they are
    throughput-bound, so a slower build shows up directly as lower
    req/s. Open-loop rows are arrival-schedule-bound (req/s ~= the
    configured rate whenever the server keeps up), so they are checked
    for shape only and reported informationally; a capacity regression
    there surfaces as queue growth, not req/s. Any other row — the
    ``warm-edit`` / ``warm-edit-full`` latency rows and the ``traced``
    span-tracing row — gates iff the *baseline* row carries
    ``"gated": true``. The bench emits these rows with
    ``"gated": false`` (single-request latency is noisy on shared
    runners), so they stay informational until someone flips the flag in
    the committed baseline after a CI-artifact refresh shows them stable.

    When the candidate carries a ``traced`` row, an extra informational
    line reports the span-tracing overhead: traced req/s vs the
    candidate's own flag-off closed-loop row at the same configuration.
    The cost contract is within 5%; the line warns past that but only
    the baseline ``gated`` flag turns it into a hard gate.

    When the candidate carries both ``zipf-hash`` and ``zipf-replicated``
    rows, another candidate-internal informational line reports the
    replication balance: the max/min per-shard served ratio under each
    routing policy (from ``perShard``) and the formerly-hot shard's p95.
    The contract is a >= 2x ratio improvement with that shard's p95 no
    worse; the line warns when either half fails, and the hard gate —
    as everywhere in this schema — is the committed baseline's
    ``gated`` flag.

``geom_kernels`` (bench_geom_kernels)
    Rows keyed by (kernel, size, variant); metric is ``opsPerSec``
    (input rects processed per second). Rows gate iff their own
    ``gated`` flag is true — the committed table gates both the SoA and
    scalar variants at 1e4/1e5 rects and leaves the 1e6 soa-only
    headroom rows informational.

``net_throughput`` (bench_net_throughput)
    Rows keyed by (mode, connections, dispatchers); metric is
    ``reqPerSec`` over real loopback sockets against a spawned server
    process. Rows gate iff the baseline row carries ``"gated": true``;
    the bench emits every row with ``"gated": false`` — TCP loopback
    throughput on shared CI runners mixes scheduler and network-stack
    noise into the number, so these rows stay informational (the
    byte-identity oracle inside the bench is the hard check, and it
    fails the bench itself). A row that disappears still fails: the
    sweep shrinking is a bench bug, not noise.

In both schemas a row present in the baseline but missing from the
candidate is a failure (the sweep shrank); extra candidate rows are
reported and ignored (refresh the baseline to start gating them).

Usage:
  compare_bench.py BASELINE.json CANDIDATE.json [--tolerance 0.30]

Exit codes: 0 ok, 1 regression (or missing row), 2 bad input.

To refresh a baseline after an intentional perf change, run the bench
and copy its JSON over bench/baselines/ (CI uploads every run's JSON as
an artifact, so a runner-generated file is always one download away).
"""

import argparse
import json
import sys


class Schema:
    """How to key, label, gate, and read the metric of one JSON shape."""

    def __init__(self, top, metric, key, fmt, gated):
        self.top = top        # top-level JSON key
        self.metric = metric  # row field holding the gated throughput
        self.key = key        # row -> hashable identity
        self.fmt = fmt        # key -> human label
        self.gated = gated    # row -> bool


SCHEMAS = [
    Schema(
        top="multi_shard_sweep",
        metric="reqPerSec",
        key=lambda r: (r["mode"], r["shards"], r["threadsPerShard"],
                       r.get("dispatchers", 1)),
        fmt=lambda k: f"{k[0]} shards={k[1]} thr/sh={k[2]} disp={k[3]}",
        gated=lambda r: r["mode"] == "closed" or bool(r.get("gated", False)),
    ),
    Schema(
        top="geom_kernels",
        metric="opsPerSec",
        key=lambda r: (r["kernel"], r["size"], r["variant"]),
        fmt=lambda k: f"{k[0]} n={k[1]} {k[2]}",
        gated=lambda r: bool(r.get("gated", True)),
    ),
    Schema(
        top="net_throughput",
        metric="reqPerSec",
        key=lambda r: (r["mode"], r["connections"], r.get("dispatchers", 1)),
        fmt=lambda k: f"{k[0]} conns={k[1]} disp={k[2]}",
        gated=lambda r: bool(r.get("gated", False)),
    ),
]


def load(path, schema=None):
    """Return (schema, {key: row}); the schema is sniffed from the
    top-level key on first load and pinned for the candidate load."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as ex:
        print(f"compare_bench: cannot read {path}: {ex}", file=sys.stderr)
        sys.exit(2)
    candidates = [schema] if schema else SCHEMAS
    for s in candidates:
        if s.top in doc:
            return s, {s.key(r): r for r in doc[s.top]}
    print(f"compare_bench: {path} has none of the known top-level keys "
          f"({', '.join(s.top for s in candidates)})", file=sys.stderr)
    sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop of the gated metric "
                         "(default 0.30)")
    args = ap.parse_args()

    schema, base = load(args.baseline)
    _, cand = load(args.candidate, schema)
    fmt, metric = schema.fmt, schema.metric

    failures = []
    print(f"{'row':<40} {'baseline':>12} {'candidate':>12} "
          f"{'ratio':>7}  verdict")
    for k, brow in sorted(base.items()):
        crow = cand.get(k)
        if crow is None:
            failures.append(f"missing row: {fmt(k)}")
            print(f"{fmt(k):<40} {brow[metric]:>12.1f} {'—':>12} "
                  f"{'—':>7}  MISSING")
            continue
        b, c = brow[metric], crow[metric]
        ratio = c / b if b > 0 else float("inf")
        gated = schema.gated(brow)
        ok = (not gated) or ratio >= 1.0 - args.tolerance
        verdict = ("ok" if ok else "REGRESSION") + ("" if gated else
                                                    " (informational)")
        print(f"{fmt(k):<40} {b:>12.1f} {c:>12.1f} {ratio:>6.2f}x  {verdict}")
        if not ok:
            failures.append(
                f"{fmt(k)}: {metric} {c:.1f} < {(1 - args.tolerance):.2f} * "
                f"baseline {b:.1f}")
    for k in sorted(set(cand) - set(base)):
        print(f"{fmt(k):<40} {'—':>12} {cand[k][metric]:>12.1f} "
              f"{'—':>7}  new (not gated)")

    # Tracing-overhead report: candidate-internal (traced vs flag-off
    # closed loop, same shard config), so it needs no baseline row.
    # Informational — the hard gate arrives when the committed baseline
    # flips the traced row to "gated": true.
    if schema.top == "multi_shard_sweep":
        for k in sorted(cand):
            row = cand[k]
            if row.get("mode") != "traced":
                continue
            off = cand.get(("closed",) + k[1:])
            if not off or off[metric] <= 0:
                continue
            delta = row[metric] / off[metric] - 1.0
            warn = ("" if delta >= -0.05 else
                    "  ** exceeds the 5% tracing-overhead contract **")
            print(f"\ntracing overhead (informational): shards={k[1]} "
                  f"thr/sh={k[2]}: traced {row[metric]:.1f} req/s vs "
                  f"flag-off {off[metric]:.1f} ({delta:+.1%}){warn}")

    # Replication-balance report: candidate-internal (zipf-hash vs
    # zipf-replicated, same trace and shard config). Informational; the
    # contract is a >= 2x improvement in the max/min per-shard served
    # ratio with the formerly-hot shard's p95 no worse.
    if schema.top == "multi_shard_sweep":
        def balance(row):
            served = [s["served"] for s in row.get("perShard", [])]
            return (max(served) / max(min(served), 1)) if served else 0.0

        for k in sorted(cand):
            if cand[k].get("mode") != "zipf-replicated":
                continue
            hashed = cand.get(("zipf-hash",) + k[1:])
            if not hashed or not hashed.get("perShard"):
                continue
            rep = cand[k]
            hot = max(range(len(hashed["perShard"])),
                      key=lambda s: hashed["perShard"][s]["served"])
            hash_ratio, rep_ratio = balance(hashed), balance(rep)
            improvement = hash_ratio / rep_ratio if rep_ratio > 0 else 0.0
            hot_p95_hash = hashed["perShard"][hot]["p95Ms"]
            hot_p95_rep = rep["perShard"][hot]["p95Ms"]
            warns = []
            if improvement < 2.0:
                warns.append("** balance improved < 2x **")
            if hot_p95_rep > hot_p95_hash:
                warns.append("** hot-shard p95 regressed **")
            warn = ("  " + " ".join(warns)) if warns else ""
            print(f"\nreplication balance (informational): shards={k[1]} "
                  f"thr/sh={k[2]}: max/min served {hash_ratio:.1f}x (hash) "
                  f"-> {rep_ratio:.1f}x (replicated), {improvement:.1f}x "
                  f"better; hot shard {hot} p95 {hot_p95_hash:.2f}ms -> "
                  f"{hot_p95_rep:.2f}ms{warn}")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed (gated {metric} within "
          f"{args.tolerance:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
