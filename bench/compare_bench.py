#!/usr/bin/env python3
"""CI perf-regression gate for bench_serving_throughput.json.

Compares a candidate sweep (written by ``bench_serving_throughput`` into
its working directory) against the committed baseline
(``bench/baselines/bench_serving_throughput.json``) and fails — exit 1 —
if any closed-loop configuration's warm-pool req/s dropped more than
``--tolerance`` (default 30%) below the baseline.

Only *closed-loop* rows gate: they are throughput-bound, so a slower
build shows up directly as lower req/s. Open-loop rows are
arrival-schedule-bound (req/s ~= the configured rate whenever the server
keeps up), so they are checked for shape only and reported
informationally; a capacity regression there surfaces as queue growth,
not req/s.

Configurations are matched by (mode, shards, threadsPerShard,
dispatchers). A configuration present in the baseline but missing from
the candidate is a failure (the sweep shrank); extra candidate
configurations are reported and ignored (refresh the baseline to start
gating them).

Usage:
  compare_bench.py BASELINE.json CANDIDATE.json [--tolerance 0.30]

Exit codes: 0 ok, 1 regression (or missing config), 2 bad input.

To refresh the baseline after an intentional perf change, run the bench
and copy its JSON over bench/baselines/ (CI uploads every run's JSON as
the ``bench-serving-throughput`` artifact, so a runner-generated file is
always one download away).
"""

import argparse
import json
import sys


def key(cfg):
    return (cfg["mode"], cfg["shards"], cfg["threadsPerShard"],
            cfg.get("dispatchers", 1))


def fmt(k):
    return f"{k[0]} shards={k[1]} thr/sh={k[2]} disp={k[3]}"


def load(path):
    try:
        with open(path) as f:
            sweep = json.load(f)["multi_shard_sweep"]
    except (OSError, ValueError, KeyError) as ex:
        print(f"compare_bench: cannot read sweep from {path}: {ex}",
              file=sys.stderr)
        sys.exit(2)
    return {key(cfg): cfg for cfg in sweep}


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional req/s drop on closed-loop "
                         "rows (default 0.30)")
    args = ap.parse_args()

    base = load(args.baseline)
    cand = load(args.candidate)

    failures = []
    print(f"{'configuration':<40} {'baseline':>10} {'candidate':>10} "
          f"{'ratio':>7}  verdict")
    for k, bcfg in sorted(base.items()):
        ccfg = cand.get(k)
        if ccfg is None:
            failures.append(f"missing configuration: {fmt(k)}")
            print(f"{fmt(k):<40} {bcfg['reqPerSec']:>10.1f} {'—':>10} "
                  f"{'—':>7}  MISSING")
            continue
        b, c = bcfg["reqPerSec"], ccfg["reqPerSec"]
        ratio = c / b if b > 0 else float("inf")
        gated = k[0] == "closed"
        ok = (not gated) or ratio >= 1.0 - args.tolerance
        verdict = ("ok" if ok else "REGRESSION") + ("" if gated else
                                                    " (informational)")
        print(f"{fmt(k):<40} {b:>10.1f} {c:>10.1f} {ratio:>6.2f}x  {verdict}")
        if not ok:
            failures.append(
                f"{fmt(k)}: req/s {c:.1f} < {(1 - args.tolerance):.2f} * "
                f"baseline {b:.1f}")
    for k in sorted(set(cand) - set(base)):
        print(f"{fmt(k):<40} {'—':>10} {cand[k]['reqPerSec']:>10.1f} "
              f"{'—':>7}  new (not gated)")

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed "
          f"(closed-loop req/s within {args.tolerance:.0%} of baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
