// Fig. 1 -- Design Rule Errors: real flagged (region 2), real unchecked
// (region 1), false errors (region 3), for the traditional mask-level
// checker vs the design integrity checker, on generated chips with
// injected defects and legal decoys. Reproduces the in-text claim that
// the false:real ratio of traditional DRC "can be 10 to 1 or higher"
// while the integrity approach eliminates both false and unchecked
// errors.
#include "baseline/flat_drc.hpp"
#include "bench_util.hpp"
#include "drc/checker.hpp"
#include "erc/erc.hpp"
#include "structured/structured.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace {

using namespace dic;

report::Report runDic(const workload::GeneratedChip& chip,
                      const tech::Technology& t) {
  drc::Checker checker(chip.lib, chip.top, t, {});
  report::Report rep = checker.run();
  rep.merge(erc::check(checker.generateNetlist(), t));
  rep.merge(structured::checkImplicitDevices(chip.lib, chip.top, t));
  rep.merge(structured::checkSelfSufficiency(chip.lib, chip.top, t));
  return rep;
}

void row(const char* checker, const char* chipName,
         const report::VennCounts& c) {
  std::printf("%-10s %-14s %9zu %12zu %14zu %12zu %10.1f\n", checker,
              chipName, c.totalReal, c.realFlagged, c.realUnchecked,
              c.falseErrors, c.falseToRealRatio());
}

void printFig1() {
  dic::bench::title(
      "Fig. 1: design rule errors -- real/flagged/unchecked/false");
  std::printf("%-10s %-14s %9s %12s %14s %12s %10s\n", "checker", "chip",
              "realErrs", "realFlagged", "realUnchecked", "falseErrs",
              "false:real");

  const tech::Technology t = tech::nmos();
  struct Case {
    const char* name;
    workload::ChipParams params;
    workload::InjectionPlan plan;
  };
  workload::InjectionPlan mixed;  // defaults
  workload::InjectionPlan decoyRich;
  decoyRich.spacingViolations = 1;
  decoyRich.widthViolations = 1;
  decoyRich.sameNetDecoys = 35;
  decoyRich.accidentalFets = 1;
  decoyRich.contactsOverGate = 1;
  decoyRich.buttingHalves = 1;
  decoyRich.powerGroundShorts = 1;
  decoyRich.floatingNets = 1;

  const Case cases[] = {
      {"small", {1, 2, 2, 3, true}, mixed},
      {"medium", {2, 2, 2, 4, true}, mixed},
      {"large", {2, 3, 3, 4, true}, mixed},
      {"decoy-rich", {2, 3, 3, 4, true}, decoyRich},
  };
  for (const Case& c : cases) {
    workload::GeneratedChip chip = workload::generateChip(t, c.params);
    const auto truths = workload::inject(chip, t, c.plan, 42);
    const geom::Coord tol = 4 * t.lambda();
    row("baseline", c.name,
        report::score(truths, baseline::check(chip.lib, chip.top, t), tol));
    row("DIC", c.name, report::score(truths, runDic(chip, t), tol));
  }
  dic::bench::note(
      "\nExpected shape: baseline misses device/electrical/structured "
      "classes (unchecked > 0)\nand flags same-net decoys (false:real >= "
      "10 on the decoy-rich chip); DIC flags all real\nerrors with zero "
      "false errors.");
}

void BM_BaselineCheck(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {2, 2, 2, 3, true});
  workload::inject(chip, t, {}, 42);
  for (auto _ : state)
    benchmark::DoNotOptimize(baseline::check(chip.lib, chip.top, t));
}
BENCHMARK(BM_BaselineCheck)->Unit(benchmark::kMillisecond);

void BM_DicFullPipeline(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {2, 2, 2, 3, true});
  workload::inject(chip, t, {}, 42);
  for (auto _ : state) {
    drc::Checker checker(chip.lib, chip.top, t, {});
    benchmark::DoNotOptimize(checker.run());
  }
}
BENCHMARK(BM_DicFullPipeline)->Unit(benchmark::kMillisecond);

}  // namespace

DIC_BENCH_MAIN(printFig1)
