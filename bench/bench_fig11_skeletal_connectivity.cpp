// Fig. 11 -- Skeletal connectivity: decisions across an overlap sweep,
// the key invariant (legal-width + skeletally connected => legal-width
// union), and the cost advantage over "complicated polygon routines".
#include <random>

#include "bench_util.hpp"
#include "geom/skeleton.hpp"
#include "geom/width.hpp"

namespace {

using namespace dic;
using geom::makeRect;

void printFig11() {
  dic::bench::title("Fig. 11: skeletal connectivity");
  constexpr geom::Coord kMinW = 500;

  std::printf("%-12s %14s %s\n", "overlap", "skeletons", "note");
  // Two min-width boxes with varying horizontal overlap.
  for (geom::Coord ov : {-200, 0, 100, 250, 499, 500, 750}) {
    const geom::Rect a = makeRect(0, 0, 2000, kMinW);
    const geom::Rect b = makeRect(2000 - ov, 0, 4000 - ov, kMinW);
    const bool conn = skeletonsConnected(geom::boxSkeleton(a, kMinW),
                                         geom::boxSkeleton(b, kMinW));
    std::printf("%-12lld %14s %s\n", static_cast<long long>(ov),
                conn ? "connected" : "not connected",
                ov == kMinW ? "<- threshold: overlap = min width" : "");
  }

  // The invariant, verified over a random sweep.
  std::mt19937 rng(12345);
  std::uniform_int_distribution<geom::Coord> pos(-3000, 3000),
      len(kMinW, 4000);
  int connected = 0, verified = 0;
  for (int i = 0; i < 20000; ++i) {
    const geom::Coord x1 = pos(rng), y1 = pos(rng);
    const geom::Rect a = makeRect(x1, y1, x1 + len(rng), y1 + len(rng));
    const geom::Coord x2 = pos(rng), y2 = pos(rng);
    const geom::Rect b = makeRect(x2, y2, x2 + len(rng), y2 + len(rng));
    if (!skeletonsConnected(geom::boxSkeleton(a, kMinW),
                            geom::boxSkeleton(b, kMinW)))
      continue;
    ++connected;
    if (geom::checkWidthEdges(unite(geom::Region(a), geom::Region(b)), kMinW)
            .empty())
      ++verified;
  }
  std::printf(
      "\ninvariant sweep: %d connected pairs, %d unions of legal width "
      "(%s)\n",
      connected, verified, connected == verified ? "invariant HOLDS" : "FAIL");
  dic::bench::note(
      "Expected shape: elements connect exactly when they overlap by >= "
      "the minimum width\n(skeletons shrunk by half min width touch), and "
      "every connected union is of legal width --\nso connected "
      "interconnect needs no general polygon width routine.");
}

void BM_SkeletalConnectTest(benchmark::State& state) {
  const geom::Skeleton a = geom::boxSkeleton(makeRect(0, 0, 2000, 500), 500);
  const geom::Skeleton b =
      geom::boxSkeleton(makeRect(1500, 0, 3500, 500), 500);
  for (auto _ : state)
    benchmark::DoNotOptimize(geom::skeletonsConnected(a, b));
}
BENCHMARK(BM_SkeletalConnectTest);

void BM_UnionPlusGeneralWidthCheck(benchmark::State& state) {
  const geom::Region a(makeRect(0, 0, 2000, 500));
  const geom::Region b(makeRect(1500, 0, 3500, 500));
  for (auto _ : state) {
    const geom::Region u = unite(a, b);
    benchmark::DoNotOptimize(geom::checkWidthEdges(u, 500));
  }
}
BENCHMARK(BM_UnionPlusGeneralWidthCheck);

}  // namespace

DIC_BENCH_MAIN(printFig11)
