// Fig. 9 -- Chip structure: functional blocks & interconnect, subblocks &
// interconnect, devices & interconnect, geometry. Measures how much data
// the hierarchical description saves over the fully instantiated form --
// the premise of hierarchical checking.
#include "bench_util.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dic;

void printFig9() {
  dic::bench::title("Fig. 9: chip structure -- hierarchical vs instantiated");
  std::printf("%-16s %8s %6s %10s %10s %10s %8s\n", "chip", "invs", "cells",
              "hierElems", "flatElems", "flatDevs", "ratio");
  const tech::Technology t = tech::nmos();
  const workload::ChipParams cases[] = {
      {1, 1, 2, 2, false}, {1, 2, 2, 4, false}, {2, 2, 4, 4, false},
      {2, 4, 4, 8, false}, {4, 4, 8, 8, false},
  };
  for (const auto& p : cases) {
    workload::GeneratedChip chip = workload::generateChip(t, p);
    const layout::Library::SizeStats s = chip.lib.sizeStats(chip.top);
    char name[64];
    std::snprintf(name, sizeof name, "%dx%d blk %dx%d inv", p.blockRows,
                  p.blockCols, p.invRows, p.invCols);
    std::printf("%-16s %8zu %6zu %10zu %10zu %10zu %7.1fx\n", name,
                chip.inverterCount(), s.cells, s.hierarchicalElements,
                s.flatElements, s.deviceInstancesFlat,
                static_cast<double>(s.flatElements) /
                    static_cast<double>(s.hierarchicalElements));
  }
  dic::bench::note(
      "\nExpected shape: the hierarchical element count stays nearly "
      "constant (one definition per\ncell) while the instantiated count "
      "grows with the array sizes -- the regularity a\nhierarchical "
      "checker exploits.");
}

void BM_Flatten(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {static_cast<int>(state.range(0)), 2, 4, 4, false});
  for (auto _ : state) {
    std::vector<layout::FlatElement> fe;
    std::vector<layout::FlatDevice> fd;
    chip.lib.flatten(chip.top, fe, fd, true);
    benchmark::DoNotOptimize(fe);
  }
}
BENCHMARK(BM_Flatten)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

DIC_BENCH_MAIN(printFig9)
