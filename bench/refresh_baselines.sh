#!/usr/bin/env bash
# Refresh bench/baselines/*.json from a CI run's uploaded artifacts.
#
# Baselines must come from the CI runner, not from whatever container a
# developer happens to be typing in: compare_bench.py gates candidate
# runs against these numbers on that runner, so a baseline produced on a
# faster (or noisier) local machine either masks regressions or trips
# the gate on every push. Every CI run already uploads its bench JSONs
# as artifacts — a runner-generated file is always one download away.
#
# Usage:
#   bench/refresh_baselines.sh <run-id>
#
# where <run-id> is the numeric id of a green CI run on main (from the
# run's URL, or `gh run list --branch main --status success`). Requires
# the GitHub CLI (`gh`) authenticated against the repo.
#
# After running, inspect the diff, keep the "gated" flags as committed
# (flip warm-edit rows to "gated": true only once several refreshes show
# them stable), and commit the result with a note naming the run id.
set -euo pipefail

if [[ $# -ne 1 ]]; then
  sed -n '2,20p' "$0"
  exit 2
fi
run_id=$1
here=$(cd "$(dirname "$0")" && pwd)
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

gh run download "$run_id" --dir "$tmp"

found=0
for name in bench_serving_throughput.json bench_geom_kernels.json \
            bench_net_throughput.json; do
  src=$(find "$tmp" -name "$name" | head -n1)
  if [[ -z "$src" ]]; then
    echo "refresh_baselines: run $run_id has no artifact named $name" >&2
    continue
  fi
  python3 -m json.tool "$src" > /dev/null  # refuse truncated downloads
  # Provenance check: a baseline measured on a 1-core container makes
  # every parallel-speedup row meaningless (and the gate worthless).
  cores=$(python3 -c "import json; print(json.load(open('$src')).get('host_cores', 0))")
  if [[ "$cores" -eq 0 ]]; then
    echo "warning: $name carries no host_cores field — re-run the bench" \
         "from a current build so the baseline records its runner" >&2
  elif [[ "$cores" -eq 1 ]]; then
    echo "warning: $name was measured on a 1-core container; shard/pool" \
         "scaling rows are serialized there — refresh from a multi-core" \
         "runner before gating on them" >&2
  fi
  cp "$src" "$here/baselines/$name"
  echo "refreshed baselines/$name from run $run_id (host_cores=$cores)"
  # Benches emit noisy rows with "gated": false so they start
  # informational; once several refreshes in a row show a row stable,
  # the flag should be flipped in the committed baseline or the gate is
  # not protecting that number. Count what this refresh leaves open.
  ungated=$(grep -c '"gated": false' "$here/baselines/$name" || true)
  if [[ "$ungated" -gt 0 ]]; then
    echo "note: baselines/$name has $ungated row(s) with \"gated\": false —" \
         "if their numbers have been stable across refreshes, flip them to" \
         "\"gated\": true before committing so regressions there fail CI"
  fi
  found=1
done

if [[ $found -eq 0 ]]; then
  echo "refresh_baselines: no bench JSONs found in run $run_id" >&2
  exit 1
fi
echo "now: git diff bench/baselines/ — review, then commit citing run $run_id"
