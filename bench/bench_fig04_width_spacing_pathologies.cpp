// Fig. 4 -- Width & spacing pathologies: the Euclidean
// shrink-expand-compare width check yields errors at every (convex)
// corner; the expand-check-overlap spacing check disagrees between the
// metrics on corner-to-corner configurations.
#include "bench_util.hpp"
#include "geom/spacing.hpp"
#include "geom/width.hpp"

namespace {

using namespace dic;
using geom::makeRect;
using geom::Metric;
using geom::Region;

void printFig4() {
  dic::bench::title("Fig. 4 (left): width-check corner pathologies");
  std::printf("%-22s %8s %12s %12s %12s\n", "shape", "corners",
              "orthFlags", "euclFlags", "edgeFlags");

  auto shapeRow = [&](const char* name, const Region& r) {
    int convex = 0;
    for (const geom::Corner& c : geom::regionCorners(r))
      if (c.convex) ++convex;
    const auto orth = geom::checkWidthShrinkExpand(r, 20, Metric::kOrthogonal);
    const auto eucl = geom::checkWidthShrinkExpand(r, 20, Metric::kEuclidean);
    const auto edge = geom::checkWidthEdges(r, 20);
    std::printf("%-22s %8d %12zu %12zu %12zu\n", name, convex, orth.size(),
                eucl.size(), edge.size());
  };

  shapeRow("legal square", Region(makeRect(0, 0, 100, 100)));
  shapeRow("legal L",
           unite(Region(makeRect(0, 0, 200, 100)),
                 Region(makeRect(0, 0, 100, 200))));
  Region stair = Region(makeRect(0, 0, 60, 60));
  stair = unite(stair, Region(makeRect(60, 60, 120, 120)));
  stair = unite(stair, Region(makeRect(120, 120, 180, 180)));
  shapeRow("3-step staircase", stair);
  shapeRow("genuinely narrow", Region(makeRect(0, 0, 10, 100)));

  dic::bench::title("Fig. 4 (right): spacing metric disagreement band");
  std::printf("%-10s %12s %12s %12s %s\n", "diag t", "euclDist",
              "orthFlag(40)", "euclFlag(40)", "note");
  const Region a(makeRect(0, 0, 100, 100));
  for (geom::Coord off : {10, 20, 28, 29, 32, 36, 39, 40, 45}) {
    const Region b(makeRect(100 + off, 100 + off, 200 + off, 200 + off));
    const bool orth = !geom::checkSpacing(a, b, 40, Metric::kOrthogonal).empty();
    const bool eucl = !geom::checkSpacing(a, b, 40, Metric::kEuclidean).empty();
    const double d = std::hypot(double(off), double(off));
    std::printf("%-10lld %12.1f %12s %12s %s\n",
                static_cast<long long>(off), d, orth ? "FLAG" : "pass",
                eucl ? "FLAG" : "pass",
                (orth && !eucl) ? "<- disagreement (false error band)" : "");
  }
  dic::bench::note(
      "\nExpected shape: Euclidean shrink-expand flags exactly one error "
      "per convex corner on legal\nshapes (orthogonal flags none); in the "
      "diagonal band s/sqrt(2) < t < s the orthogonal\nexpand-check-overlap "
      "flags configurations the Euclidean metric accepts.");
}

void BM_WidthShrinkExpandOrth(benchmark::State& state) {
  Region stair = Region(makeRect(0, 0, 600, 600));
  stair = unite(stair, Region(makeRect(600, 600, 1200, 1200)));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        geom::checkWidthShrinkExpand(stair, 20, Metric::kOrthogonal));
}
BENCHMARK(BM_WidthShrinkExpandOrth);

void BM_WidthEdgeBased(benchmark::State& state) {
  Region stair = Region(makeRect(0, 0, 600, 600));
  stair = unite(stair, Region(makeRect(600, 600, 1200, 1200)));
  for (auto _ : state)
    benchmark::DoNotOptimize(geom::checkWidthEdges(stair, 20));
}
BENCHMARK(BM_WidthEdgeBased);

}  // namespace

DIC_BENCH_MAIN(printFig4)
