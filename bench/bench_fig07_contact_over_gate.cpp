// Fig. 7 -- Transistor & butting contact: a contact over the active gate
// of an MOS transistor is an error, yet the identical mask signature
// (cut enclosed by poly, diff and metal) is a perfectly legal butting
// contact. Mask-level checking must either flag both (false errors) or
// neither (unchecked errors); device-aware checking distinguishes them.
#include "baseline/flat_drc.hpp"
#include "bench_util.hpp"
#include "drc/checker.hpp"
#include "structured/structured.hpp"
#include "workload/generator.hpp"

namespace {

using namespace dic;
using geom::makeRect;

void printFig7() {
  dic::bench::title("Fig. 7: contact over gate vs butting contact");
  const tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();
  const int nc = *t.layerByName("contact");
  const int nm = *t.layerByName("metal");

  std::printf("%-34s %10s %8s %s\n", "case", "baseline", "DIC",
              "ground truth");
  auto printRow = [&](const char* name, layout::Library& lib,
                      layout::CellId root, const char* truth) {
    const auto base = baseline::check(lib, root, t);
    drc::Checker checker(lib, root, t, {});
    report::Report dic = checker.run();
    dic.merge(structured::checkImplicitDevices(lib, root, t));
    const bool baseFlag = base.count(report::Category::kDevice) > 0;
    const bool dicFlag =
        dic.count(report::Category::kContactOverGate) > 0 ||
        dic.count(report::Category::kDevice) > 0;
    std::printf("%-34s %10s %8s %s\n", name, baseFlag ? "FLAG" : "pass",
                dicFlag ? "FLAG" : "pass", truth);
  };

  {  // a declared butting contact: legal.
    layout::Library lib;
    const workload::NmosCells cells = workload::installNmosCells(lib, t);
    layout::Cell top;
    top.name = "top";
    top.instances.push_back(
        {cells.butting, {geom::Orient::kR0, {0, 0}}, "bc"});
    const auto root = lib.addCell(std::move(top));
    printRow("declared butting contact", lib, root, "ok");
  }
  {  // a contact patch (poly pad + cut + metal, the butting-contact mask
    // signature) placed over a declared transistor's gate: error.
    layout::Library lib;
    const workload::NmosCells cells = workload::installNmosCells(lib, t);
    const int np = *t.layerByName("poly");
    layout::Cell top;
    top.name = "top";
    top.instances.push_back({cells.tran, {geom::Orient::kR0, {0, 0}}, "t"});
    top.elements.push_back(
        layout::makeBox(np, makeRect(-2 * L, -2 * L, 2 * L, 2 * L)));
    top.elements.push_back(layout::makeBox(nc, makeRect(-L, -L, L, L)));
    top.elements.push_back(
        layout::makeBox(nm, makeRect(-2 * L, -2 * L, 2 * L, 2 * L)));
    const auto root = lib.addCell(std::move(top));
    printRow("contact patch over declared gate", lib, root,
             "error (contact over active gate)");
  }
  dic::bench::note(
      "\nExpected shape: the baseline passes both (the signatures are "
      "identical at mask level --\nthe gate case is an unchecked error); "
      "DIC passes the butting contact and flags the gate.");
}

void BM_ImplicitDeviceScan(benchmark::State& state) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip =
      workload::generateChip(t, {1, 2, 2, 3, false});
  for (auto _ : state)
    benchmark::DoNotOptimize(
        structured::checkImplicitDevices(chip.lib, chip.top, t));
}
BENCHMARK(BM_ImplicitDeviceScan)->Unit(benchmark::kMillisecond);

}  // namespace

DIC_BENCH_MAIN(printFig7)
