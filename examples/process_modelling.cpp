// 2-D process modelling demo (Eq. 1, Figs. 13-14): prints an ASCII map of
// the developed exposure contour for a pair of mask features at shrinking
// gaps -- watch them bridge -- plus the end-retreat curve behind the
// relational gate-overlap rule.
//
//   $ ./examples/process_modelling [sigma]
#include <cstdio>
#include <cstdlib>

#include "process/proximity.hpp"
#include "process/relational.hpp"

int main(int argc, char** argv) {
  using namespace dic;
  const double sigma = argc > 1 ? std::atof(argv[1]) : 8.0;
  const process::ExposureModel m(sigma);
  const double thr = 0.5;

  std::printf("Gaussian exposure model, sigma = %.1f, threshold %.2f\n",
              sigma, thr);

  for (geom::Coord gap : {30, 14, 6}) {
    const geom::Rect a = geom::makeRect(0, 0, 60, 40);
    const geom::Rect b = geom::makeRect(60 + gap, 0, 120 + gap, 40);
    const geom::Region mask =
        unite(geom::Region(a), geom::Region(b));
    const process::BridgeAnalysis ba = process::analyzeBridge(m, a, b, thr);
    std::printf("\ngap %lld: dip exposure %.3f -> %s\n",
                static_cast<long long>(gap), ba.maxGapExposure,
                ba.bridges ? "BRIDGED (short!)" : "clear");
    // ASCII map: '#' developed resist, '.' clear; drawn outline as '+'.
    for (geom::Coord y = 52; y >= -12; y -= 4) {
      for (geom::Coord x = -12; x <= 132 + gap; x += 3) {
        const bool dev = m.exposure(mask, {x, y}) >= thr;
        const bool drawn = geom::Rect(a).containsClosed({x, y}) ||
                           geom::Rect(b).containsClosed({x, y});
        std::putchar(dev ? '#' : (drawn ? '+' : '.'));
      }
      std::putchar('\n');
    }
  }

  std::printf("\nend retreat vs wire width (Fig. 14):\n  width  retreat\n");
  for (geom::Coord w : {10, 14, 20, 30, 50, 100}) {
    std::printf("  %5lld  %7.2f\n", static_cast<long long>(w),
                process::endRetreat(m, w, 300, thr));
  }
  std::printf(
      "\nrelational rule: a drawn gate overlap of 40 units requires the "
      "developed\noverlap to stay above 25 -- verdict by poly width:\n");
  for (geom::Coord w : {12, 16, 24, 48, 96}) {
    const process::RelationalCheck c =
        process::checkGateOverlapRelational(m, w, 40, 25, thr);
    std::printf("  width %3lld: retreat %6.2f, effective %6.2f -> %s\n",
                static_cast<long long>(w), c.retreat, c.effectiveOverlap,
                c.pass ? "pass" : "FAIL");
  }
  return 0;
}
