// A guided tour of the paper's pathology figures (2, 4, 5, 6, 7, 8, 15):
// each scenario is built with the public API, checked with both the
// mask-level baseline and the DIC pipeline, and written to a CIF file so
// the geometry can be inspected with any CIF viewer.
//
//   $ ./examples/pathology_gallery
#include <cstdio>
#include <fstream>

#include "cif/writer.hpp"
#include "layout/cifio.hpp"
#include "service/workspace.hpp"
#include "structured/structured.hpp"
#include "tech/technology.hpp"
#include "workload/nmos_cells.hpp"

namespace {

using namespace dic;
using geom::makeRect;

struct Gallery {
  const tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();
  int shown = 0;

  // Takes the library by value: each scenario hands its design over to
  // the Workspace for good (call with std::move).
  void show(const char* fig, const char* name, layout::Library lib,
            layout::CellId root, const char* truth) {
    // Both checkers through the one service front door: the Workspace
    // batch runs the mask-level baseline and the DIC pipeline over a
    // shared hierarchy view of the scenario.
    Workspace ws(std::move(lib), t);
    const CheckRequest reqs[] = {CheckRequest::baseline(root),
                                 CheckRequest::drc(root)};
    std::vector<CheckResult> results = ws.runBatch(reqs);
    for (const CheckResult& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "%s request failed: %s\n",
                     toString(r.kind).c_str(), r.error.c_str());
        return;
      }
    }
    const report::Report& base = results[0].report;
    report::Report dic = std::move(results[1].report);
    dic.merge(structured::checkImplicitDevices(ws.library(), root, t));
    dic.merge(structured::checkSelfSufficiency(ws.library(), root, t));
    std::printf("%-8s %-36s baseline:%-5s DIC:%-5s truth: %s\n", fig, name,
                base.empty() ? "pass" : "FLAG", dic.empty() ? "pass" : "FLAG",
                truth);
    if (!dic.empty()) std::printf("%s", dic.text().c_str());

    const cif::CifFile file = layout::toCif(
        ws.library(), root, [&](int l) { return t.layer(l).cifName; });
    char fname[64];
    std::snprintf(fname, sizeof fname, "pathology_%02d.cif", ++shown);
    std::ofstream(fname) << cif::write(file);
  }
};

}  // namespace

int main() {
  Gallery g;
  const tech::Technology& t = g.t;
  const geom::Coord L = g.L;
  const int nm = *t.layerByName("metal");
  const int nd = *t.layerByName("diff");
  const int np = *t.layerByName("poly");
  const int nc = *t.layerByName("contact");

  {  // Fig. 2 / Fig. 15: butting halves.
    layout::Library lib;
    layout::Cell top;
    top.name = "halves";
    top.elements.push_back(layout::makeBox(nm, makeRect(0, 0, 8 * L, 3 * L / 2)));
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 3 * L / 2, 8 * L, 3 * L)));
    const auto root = lib.addCell(std::move(top));
    g.show("Fig2/15", "butting half-width boxes", std::move(lib), root,
           "error (usage rule)");
  }
  {  // Fig. 5a: electrically equivalent boxes close together.
    layout::Library lib;
    layout::Cell top;
    top.name = "equiv";
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 0, 10 * L, 3 * L), "CLK"));
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 4 * L, 10 * L, 7 * L), "CLK"));
    const auto root = lib.addCell(std::move(top));
    g.show("Fig5a", "same-net boxes 1L apart", std::move(lib), root,
           "ok (baseline flags falsely)");
  }
  {  // Fig. 7: contact patch over a transistor gate.
    layout::Library lib;
    const workload::NmosCells cells = workload::installNmosCells(lib, t);
    layout::Cell top;
    top.name = "congate";
    top.instances.push_back({cells.tran, {geom::Orient::kR0, {0, 0}}, "t"});
    top.elements.push_back(
        layout::makeBox(np, makeRect(-2 * L, -2 * L, 2 * L, 2 * L)));
    top.elements.push_back(layout::makeBox(nc, makeRect(-L, -L, L, L)));
    top.elements.push_back(
        layout::makeBox(nm, makeRect(-2 * L, -2 * L, 2 * L, 2 * L)));
    const auto root = lib.addCell(std::move(top));
    g.show("Fig7", "contact over active gate", std::move(lib), root,
           "error (baseline cannot tell)");
  }
  {  // Fig. 8: accidental transistor.
    layout::Library lib;
    layout::Cell top;
    top.name = "accident";
    top.elements.push_back(layout::makeWire(nd, {{0, 0}, {20 * L, 0}}, 2 * L));
    top.elements.push_back(
        layout::makeWire(np, {{10 * L, -8 * L}, {10 * L, 8 * L}}, 2 * L));
    const auto root = lib.addCell(std::move(top));
    g.show("Fig8", "undeclared poly/diff crossing", std::move(lib), root,
           "error (implied device)");
  }
  {  // Fig. 4-ish sanity: a clean pair of legal boxes.
    layout::Library lib;
    layout::Cell top;
    top.name = "clean";
    top.elements.push_back(layout::makeBox(nm, makeRect(0, 0, 10 * L, 3 * L)));
    top.elements.push_back(
        layout::makeBox(nm, makeRect(0, 6 * L, 10 * L, 9 * L)));
    const auto root = lib.addCell(std::move(top));
    g.show("control", "two legal boxes 3L apart", std::move(lib), root, "ok");
  }

  std::printf("\nwrote %d CIF files (pathology_XX.cif)\n", g.shown);
  return 0;
}
