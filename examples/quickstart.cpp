// Quickstart: build a small NMOS layout with the public API, submit the
// full DIC pipeline (Fig. 10) and the electrical construction rules as
// one dic::Workspace batch, print the report, and write the design to
// CIF with the 4N/4D extensions.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <fstream>

#include "cif/writer.hpp"
#include "layout/cifio.hpp"
#include "service/workspace.hpp"
#include "structured/structured.hpp"
#include "tech/technology.hpp"
#include "workload/nmos_cells.hpp"

int main() {
  using namespace dic;

  // 1. A technology: the built-in Mead-Conway NMOS lambda rules.
  const tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();
  std::printf("technology %s, lambda = %lld centimicrons\n",
              t.name().c_str(), static_cast<long long>(L));

  // 2. A library with the standard device cells and an inverter.
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);

  // 3. A top cell: two inverters sharing rails, plus one deliberate
  //    mistake -- a stray poly wire crossing the VDD diffusion riser.
  layout::Cell top;
  top.name = "demo";
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kR0, {0, 0}}, "u1"});
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kR0, {26 * L, 0}}, "u2"});
  const int np = *t.layerByName("poly");
  top.elements.push_back(layout::makeWire(
      np, {{9 * L, 31 * L}, {15 * L, 31 * L}}, 2 * L));  // the mistake
  const layout::CellId root = lib.addCell(std::move(top));

  // 4. One front door for everything: a Workspace owns the library and
  //    serves DRC and ERC as a batch -- the hierarchy view and the
  //    extracted netlist are built once and shared between the two.
  Workspace ws(std::move(lib), t);
  const CheckRequest reqs[] = {CheckRequest::drc(root),
                               CheckRequest::ercCheck(root)};
  std::vector<CheckResult> results = ws.runBatch(reqs);
  for (const CheckResult& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "%s request failed: %s\n",
                   toString(r.kind).c_str(), r.error.c_str());
      return 2;
    }
  }
  report::Report rep = std::move(results[0].report);
  rep.merge(results[1].report);
  rep.merge(structured::checkImplicitDevices(ws.library(), root, t));

  const netlist::Netlist& nl = *results[1].netlist;
  std::printf("\nextracted %zu nets, %zu devices\n", nl.nets.size(),
              nl.devices.size());
  for (const netlist::Net& n : nl.nets) {
    if (!n.names.empty())
      std::printf("  net %-12s %zu elements, %zu terminals\n",
                  n.displayName().c_str(), n.elementCount,
                  n.terminals.size());
  }

  std::printf("\n%zu violation(s):\n%s", rep.count(), rep.text().c_str());

  // 5. Write the layout to CIF (with net and device-type extensions).
  const cif::CifFile file = layout::toCif(
      ws.library(), root, [&](int l) { return t.layer(l).cifName; });
  std::ofstream("quickstart.cif") << cif::write(file);
  std::printf("\nwrote quickstart.cif\n");
  return rep.empty() ? 0 : 1;
}
