// Quickstart: build a small NMOS layout with the public API, run the full
// DIC pipeline (Fig. 10) plus the electrical construction rules, print
// the report, and write the design to CIF with the 4N/4D extensions.
//
//   $ ./examples/quickstart
#include <cstdio>
#include <fstream>

#include "cif/writer.hpp"
#include "drc/checker.hpp"
#include "erc/erc.hpp"
#include "layout/cifio.hpp"
#include "structured/structured.hpp"
#include "tech/technology.hpp"
#include "workload/nmos_cells.hpp"

int main() {
  using namespace dic;

  // 1. A technology: the built-in Mead-Conway NMOS lambda rules.
  const tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();
  std::printf("technology %s, lambda = %lld centimicrons\n",
              t.name().c_str(), static_cast<long long>(L));

  // 2. A library with the standard device cells and an inverter.
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);

  // 3. A top cell: two inverters sharing rails, plus one deliberate
  //    mistake -- a stray poly wire crossing the VDD diffusion riser.
  layout::Cell top;
  top.name = "demo";
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kR0, {0, 0}}, "u1"});
  top.instances.push_back(
      {cells.inverter, {geom::Orient::kR0, {26 * L, 0}}, "u2"});
  const int np = *t.layerByName("poly");
  top.elements.push_back(layout::makeWire(
      np, {{9 * L, 31 * L}, {15 * L, 31 * L}}, 2 * L));  // the mistake
  const layout::CellId root = lib.addCell(std::move(top));

  // 4. Run the pipeline: elements, symbols, connections, net list,
  //    interactions -- then the non-geometric rules on the net list.
  drc::Checker checker(lib, root, t, {});
  report::Report rep = checker.run();
  const netlist::Netlist nl = checker.generateNetlist();
  rep.merge(erc::check(nl, t));
  rep.merge(structured::checkImplicitDevices(lib, root, t));

  std::printf("\nextracted %zu nets, %zu devices\n", nl.nets.size(),
              nl.devices.size());
  for (const netlist::Net& n : nl.nets) {
    if (!n.names.empty())
      std::printf("  net %-12s %zu elements, %zu terminals\n",
                  n.displayName().c_str(), n.elementCount,
                  n.terminals.size());
  }

  std::printf("\n%zu violation(s):\n%s", rep.count(), rep.text().c_str());

  // 5. Write the layout to CIF (with net and device-type extensions).
  const cif::CifFile file = layout::toCif(
      lib, root, [&](int l) { return t.layer(l).cifName; });
  std::ofstream("quickstart.cif") << cif::write(file);
  std::printf("\nwrote quickstart.cif\n");
  return rep.empty() ? 0 : 1;
}
