// The TCP front door: a dic::server::Server fleet behind net::Listener,
// serving framed check traffic over real sockets (docs/net.md).
//
// The process registers `libraries` copies of the canonical fleet chip
// (workload::fleetChip — the recipe external drivers regenerate locally
// as an oracle), binds the listener, and prints one machine-parseable
// line on stdout:
//
//     LISTENING <port>
//
// It then serves until stdin reaches EOF — the termination handshake
// the net load driver (bench_net_throughput) uses for a spawned server:
// closing the child's stdin triggers the graceful drain, and the exit
// status reports whether the drain answered everything it accepted.
//
//   $ ./examples/check_server_tcp [port] [libraries] [shards]
//         [threadsPerShard] [queueCapacity] [block|reject]
//         [trace|notrace] [slowMs]
//
// port 0 (the default) picks an ephemeral port. "trace" flips the
// runtime span-tracing flag on (so clients can fetch request traces with
// check_client --trace); slowMs > 0 arms the slow-request stderr hook at
// that end-to-end latency threshold.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/listener.hpp"
#include "obs/trace.hpp"
#include "server/server.hpp"
#include "workload/traffic.hpp"

int main(int argc, char** argv) {
  using namespace dic;
  const std::uint16_t port =
      argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 0;
  const std::size_t libraries =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  server::ServerOptions sopts;
  sopts.shards = argc > 3 ? std::atoi(argv[3]) : 2;
  sopts.threadsPerShard = argc > 4 ? std::atoi(argv[4]) : 2;
  sopts.queueCapacity =
      argc > 5 ? static_cast<std::size_t>(std::atoi(argv[5])) : 256;
  if (argc > 6 && std::strcmp(argv[6], "reject") == 0)
    sopts.overflow = server::OverflowPolicy::kReject;
  const bool tracing = argc > 7 && std::strcmp(argv[7], "trace") == 0;
  if (argc > 8) sopts.slowRequestSeconds = std::atof(argv[8]) / 1e3;
  obs::Tracer::instance().setEnabled(tracing);

  server::Server srv(sopts);
  const tech::Technology t = tech::nmos();
  for (std::size_t l = 0; l < libraries; ++l) {
    workload::GeneratedChip chip = workload::fleetChip(t);
    srv.addLibrary(workload::libraryName(l), std::move(chip.lib), t);
  }

  net::ListenerOptions lopts;
  lopts.port = port;
  net::Listener listener(srv, lopts);
  // The handshake line a spawning driver parses for the ephemeral port.
  std::printf("LISTENING %u\n", listener.port());
  std::fflush(stdout);
  std::fprintf(stderr,
               "check_server_tcp: %zu libraries on %d shard(s) x %d "
               "thread(s), queue %zu (%s)%s; close stdin to drain\n",
               libraries, srv.shardCount(), sopts.threadsPerShard,
               sopts.queueCapacity,
               sopts.overflow == server::OverflowPolicy::kReject ? "reject"
                                                                 : "block",
               tracing ? ", tracing on" : "");

  // Serve until the controlling process closes our stdin.
  while (std::fgetc(stdin) != EOF) {
  }

  listener.shutdown();  // drain: answer everything accepted, then close
  srv.shutdown();

  const net::ListenerStats ls = listener.stats();
  const server::ServerStats st = srv.stats();
  std::fprintf(stderr,
               "drained: %zu sessions, %zu frames in, %zu frames out, %zu "
               "malformed; served %zu, rejected %zu\n",
               ls.sessionsAccepted, ls.framesIn, ls.framesOut,
               ls.malformedSessions, st.totalServed(), st.totalRejected());
  // Every decoded request must have produced a response frame; a deficit
  // means the drain dropped work (frames out also counts report parts,
  // so it can only legitimately exceed frames in).
  return ls.framesOut >= ls.framesIn ? 0 : 1;
}
