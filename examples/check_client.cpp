// A net::Client talking to a running check_server_tcp: submits a mixed
// batch of checks over one multiplexed connection, then (with --stats)
// fetches the server's ServerStats snapshot over the wire — per-shard
// queue depth, served/rejected counts, p50/p95 service latency, and
// per-library heat — the remote version of the table
// examples/check_server prints locally. --metrics dumps the server's
// full metrics registry; --trace submits one extra check and prints the
// span tree the server recorded for it (the server must run with
// tracing on, e.g. check_server_tcp ... trace).
//
//   $ ./examples/check_client --port P [--host 127.0.0.1]
//         [--requests N] [--library lib0] [--stats] [--metrics]
//         [--trace [out.json]]
//
// The root cell id is recovered by regenerating the canonical fleet
// chip locally (workload::fleetChip) — the same recipe the server
// example registers, so no layout crosses the wire.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "obs/trace.hpp"
#include "workload/traffic.hpp"

int main(int argc, char** argv) {
  using namespace dic;
  net::ClientOptions copts;
  copts.requestTimeoutSeconds = 30;
  std::size_t requests = 8;
  std::string library = "lib0";
  bool wantStats = false;
  bool wantMetrics = false;
  bool wantTrace = false;
  std::string traceOut;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--port" && i + 1 < argc)
      copts.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    else if (a == "--host" && i + 1 < argc)
      copts.host = argv[++i];
    else if (a == "--requests" && i + 1 < argc)
      requests = static_cast<std::size_t>(std::atoi(argv[++i]));
    else if (a == "--library" && i + 1 < argc)
      library = argv[++i];
    else if (a == "--stats")
      wantStats = true;
    else if (a == "--metrics")
      wantMetrics = true;
    else if (a == "--trace") {
      wantTrace = true;
      // Optional value: a path to write Chrome/Perfetto JSON to.
      if (i + 1 < argc && argv[i + 1][0] != '-') traceOut = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: check_client --port P [--host H] [--requests N] "
                   "[--library ID] [--stats] [--metrics] "
                   "[--trace [out.json]]\n");
      return 2;
    }
  }
  if (copts.port == 0) {
    std::fprintf(stderr, "check_client: --port is required\n");
    return 2;
  }

  net::Client client(copts);
  std::string err;
  if (!client.connect(&err)) {
    std::fprintf(stderr, "check_client: connect failed: %s\n", err.c_str());
    return 1;
  }

  const layout::CellId top = workload::fleetChip(tech::nmos()).top;
  const CheckRequest kinds[] = {
      CheckRequest::drc(top), CheckRequest::baseline(top),
      CheckRequest::ercCheck(top), CheckRequest::netlistOnly(top)};
  const char* names[] = {"drc", "baseline", "erc", "netlist"};

  // All requests in flight at once over the one connection; responses
  // are matched back by request id.
  std::vector<std::future<CheckResult>> futs;
  for (std::size_t i = 0; i < requests; ++i)
    futs.push_back(client.submit(library, kinds[i % 4]));
  std::size_t failures = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const CheckResult r = futs[i].get();
    if (r.ok()) {
      std::printf("%-8s %4zu violations  %7.2f ms  %s%s\n", names[i % 4],
                  r.report.violations().size(), r.seconds * 1e3,
                  r.viewCacheHit ? "view-hit " : "view-miss ",
                  r.netlistCacheHit ? "netlist-hit" : "");
    } else {
      ++failures;
      std::printf("%-8s FAILED: %s\n", names[i % 4], r.error.c_str());
    }
  }

  if (wantStats) {
    server::ServerStats st;
    if (!client.stats(st, &err)) {
      std::fprintf(stderr, "check_client: stats failed: %s\n", err.c_str());
      return 1;
    }
    std::printf("\n%-6s %5s %8s %6s %7s %7s %7s %9s %9s\n", "shard", "libs",
                "replicas", "queue", "served", "reject", "failed", "p50-ms",
                "p95-ms");
    for (std::size_t s = 0; s < st.shards.size(); ++s) {
      const server::ShardStats& sh = st.shards[s];
      std::printf("%-6zu %5zu %8zu %6zu %7zu %7zu %7zu %9.2f %9.2f\n", s,
                  sh.libraries, sh.replicas, sh.queueDepth, sh.served,
                  sh.rejected, sh.failed, sh.p50Seconds * 1e3,
                  sh.p95Seconds * 1e3);
    }
    std::printf("total: %zu served, %zu rejected over the wire\n",
                st.totalServed(), st.totalRejected());
    // Heat is shard-local since wire v3: a replicated library shows one
    // row per shard that served it — the per-replica breakdown — and
    // each row names the library's owner shard and fresh replica shards.
    std::printf("\n%-12s %5s %9s %7s %7s %10s %9s\n", "library", "shard",
                "placement", "served", "reject", "bytes", "p95-ms");
    for (std::size_t s = 0; s < st.shards.size(); ++s) {
      for (const server::LibraryHeat& h : st.shards[s].heat) {
        std::string placement = "own:" + std::to_string(h.ownerShard);
        if (!h.replicaShards.empty()) {
          placement += " rep:";
          for (std::size_t r = 0; r < h.replicaShards.size(); ++r)
            placement += (r ? "," : "") + std::to_string(h.replicaShards[r]);
        }
        std::printf("%-12s %5zu %9s %7zu %7zu %10llu %9.2f\n", h.id.c_str(),
                    s, placement.c_str(), h.served, h.rejected,
                    static_cast<unsigned long long>(h.bytes),
                    h.p95Seconds * 1e3);
      }
    }
  }

  if (wantMetrics) {
    obs::MetricsSnapshot snap;
    if (!client.metrics(snap, &err)) {
      std::fprintf(stderr, "check_client: metrics failed: %s\n", err.c_str());
      return 1;
    }
    std::printf("\n%zu metrics:\n", snap.metrics.size());
    for (const obs::MetricValue& m : snap.metrics) {
      switch (m.kind) {
        case obs::MetricValue::Kind::kCounter:
          std::printf("  %-40s counter  %llu\n", m.name.c_str(),
                      static_cast<unsigned long long>(m.counter));
          break;
        case obs::MetricValue::Kind::kGauge:
          std::printf("  %-40s gauge    %lld\n", m.name.c_str(),
                      static_cast<long long>(m.gauge));
          break;
        case obs::MetricValue::Kind::kHistogram: {
          std::uint64_t total = 0;
          for (std::uint64_t c : m.buckets) total += c;
          std::printf("  %-40s histo    %llu obs in %zu buckets\n",
                      m.name.c_str(), static_cast<unsigned long long>(total),
                      m.buckets.size());
          break;
        }
      }
    }
  }

  if (wantTrace) {
    // One more request whose id we keep, so we can ask the server for
    // exactly that request's span tree.
    std::uint64_t id = 0;
    const CheckResult r = client.submit(library, kinds[0], &id).get();
    if (!r.ok()) {
      std::fprintf(stderr, "check_client: trace request failed: %s\n",
                   r.error.c_str());
      return 1;
    }
    std::vector<dic::obs::SpanRecord> spans;
    if (!client.trace(id, spans, &err)) {
      std::fprintf(stderr, "check_client: trace fetch failed: %s\n",
                   err.c_str());
      return 1;
    }
    if (spans.empty()) {
      std::fprintf(stderr,
                   "check_client: no spans (is the server running with "
                   "tracing on?)\n");
      return 1;
    }
    std::vector<dic::obs::SpanRecord> byStart = spans;
    std::sort(byStart.begin(), byStart.end(),
              [](const auto& a, const auto& b) { return a.startNs < b.startNs; });
    std::printf("\ntrace %llu: %zu spans\n",
                static_cast<unsigned long long>(id), spans.size());
    for (const auto& s : byStart)
      std::printf("  %-24s %9.3f ms  (tid %u)\n",
                  std::string(s.label()).c_str(), s.durNs / 1e6, s.tid);
    if (!traceOut.empty()) {
      const std::string json = obs::toChromeTraceJson(spans);
      if (std::FILE* f = std::fopen(traceOut.c_str(), "w")) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote %s (load in ui.perfetto.dev)\n", traceOut.c_str());
      } else {
        std::fprintf(stderr, "check_client: cannot write %s\n",
                     traceOut.c_str());
        return 1;
      }
    }
  }

  const net::ClientTelemetry tel = client.telemetry();
  std::printf("\nconnection: %zu frames out, %zu frames in (%zu report "
              "parts, %zu rejected)\n",
              tel.framesOut, tel.framesIn, tel.reportPartFrames,
              tel.rejectedFrames);
  return failures == 0 ? 0 : 1;
}
