// A net::Client talking to a running check_server_tcp: submits a mixed
// batch of checks over one multiplexed connection, then (with --stats)
// fetches the server's ServerStats snapshot over the wire — per-shard
// queue depth, served/rejected counts, and p50/p95 service latency —
// the remote version of the table examples/check_server prints locally.
//
//   $ ./examples/check_client --port P [--host 127.0.0.1]
//         [--requests N] [--library lib0] [--stats]
//
// The root cell id is recovered by regenerating the canonical fleet
// chip locally (workload::fleetChip) — the same recipe the server
// example registers, so no layout crosses the wire.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "net/client.hpp"
#include "workload/traffic.hpp"

int main(int argc, char** argv) {
  using namespace dic;
  net::ClientOptions copts;
  copts.requestTimeoutSeconds = 30;
  std::size_t requests = 8;
  std::string library = "lib0";
  bool wantStats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--port" && i + 1 < argc)
      copts.port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    else if (a == "--host" && i + 1 < argc)
      copts.host = argv[++i];
    else if (a == "--requests" && i + 1 < argc)
      requests = static_cast<std::size_t>(std::atoi(argv[++i]));
    else if (a == "--library" && i + 1 < argc)
      library = argv[++i];
    else if (a == "--stats")
      wantStats = true;
    else {
      std::fprintf(stderr,
                   "usage: check_client --port P [--host H] [--requests N] "
                   "[--library ID] [--stats]\n");
      return 2;
    }
  }
  if (copts.port == 0) {
    std::fprintf(stderr, "check_client: --port is required\n");
    return 2;
  }

  net::Client client(copts);
  std::string err;
  if (!client.connect(&err)) {
    std::fprintf(stderr, "check_client: connect failed: %s\n", err.c_str());
    return 1;
  }

  const layout::CellId top = workload::fleetChip(tech::nmos()).top;
  const CheckRequest kinds[] = {
      CheckRequest::drc(top), CheckRequest::baseline(top),
      CheckRequest::ercCheck(top), CheckRequest::netlistOnly(top)};
  const char* names[] = {"drc", "baseline", "erc", "netlist"};

  // All requests in flight at once over the one connection; responses
  // are matched back by request id.
  std::vector<std::future<CheckResult>> futs;
  for (std::size_t i = 0; i < requests; ++i)
    futs.push_back(client.submit(library, kinds[i % 4]));
  std::size_t failures = 0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const CheckResult r = futs[i].get();
    if (r.ok()) {
      std::printf("%-8s %4zu violations  %7.2f ms  %s%s\n", names[i % 4],
                  r.report.violations().size(), r.seconds * 1e3,
                  r.viewCacheHit ? "view-hit " : "view-miss ",
                  r.netlistCacheHit ? "netlist-hit" : "");
    } else {
      ++failures;
      std::printf("%-8s FAILED: %s\n", names[i % 4], r.error.c_str());
    }
  }

  if (wantStats) {
    server::ServerStats st;
    if (!client.stats(st, &err)) {
      std::fprintf(stderr, "check_client: stats failed: %s\n", err.c_str());
      return 1;
    }
    std::printf("\n%-6s %5s %6s %7s %7s %7s %9s %9s\n", "shard", "libs",
                "queue", "served", "reject", "failed", "p50-ms", "p95-ms");
    for (std::size_t s = 0; s < st.shards.size(); ++s) {
      const server::ShardStats& sh = st.shards[s];
      std::printf("%-6zu %5zu %6zu %7zu %7zu %7zu %9.2f %9.2f\n", s,
                  sh.libraries, sh.queueDepth, sh.served, sh.rejected,
                  sh.failed, sh.p50Seconds * 1e3, sh.p95Seconds * 1e3);
    }
    std::printf("total: %zu served, %zu rejected over the wire\n",
                st.totalServed(), st.totalRejected());
  }

  const net::ClientTelemetry tel = client.telemetry();
  std::printf("\nconnection: %zu frames out, %zu frames in (%zu report "
              "parts, %zu rejected)\n",
              tel.framesOut, tel.framesIn, tel.reportPartFrames,
              tel.rejectedFrames);
  return failures == 0 ? 0 : 1;
}
