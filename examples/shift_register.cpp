// A hierarchical NMOS shift-register-style buffer chain, verified end to
// end: DRC pipeline, electrical rules, netlist extraction, and comparison
// against a golden device list ("check the net list against an input net
// list for consistency").
//
//   $ ./examples/shift_register [stages] [rows]
#include <cstdio>
#include <cstdlib>

#include "service/workspace.hpp"
#include "tech/technology.hpp"
#include "workload/nmos_cells.hpp"

namespace {

using namespace dic;

/// One buffer stage: two inverters with a metal->poly hop between them.
layout::CellId makeStage(layout::Library& lib, const workload::NmosCells& c,
                         const tech::Technology& t) {
  const geom::Coord L = t.lambda();
  layout::Cell stage;
  stage.name = "stage";
  stage.instances.push_back(
      {c.inverter, {geom::Orient::kR0, {0, 0}}, "m"});
  stage.instances.push_back(
      {c.inverter, {geom::Orient::kR0, {26 * L, 0}}, "s"});
  // Metal from m.OUT onto a metal-poly contact, then poly down and into
  // s.IN. (The inverter's OUT stub already reaches (22L, 18L).)
  stage.instances.push_back(
      {c.contactMP, {geom::Orient::kR0, {24 * L, 18 * L}}, "hop"});
  const int np = *t.layerByName("poly");
  stage.elements.push_back(layout::makeWire(
      np, {{24 * L, 18 * L}, {24 * L, 12 * L}, {26 * L, 12 * L}}, 2 * L));
  return lib.addCell(std::move(stage));
}

}  // namespace

int main(int argc, char** argv) {
  const int stages = argc > 1 ? std::atoi(argv[1]) : 4;
  const int rows = argc > 2 ? std::atoi(argv[2]) : 2;

  const tech::Technology t = tech::nmos();
  const geom::Coord L = t.lambda();
  layout::Library lib;
  const workload::NmosCells cells = workload::installNmosCells(lib, t);
  const layout::CellId stage = makeStage(lib, cells, t);

  layout::Cell top;
  top.name = "shiftreg";
  const int nm = *t.layerByName("metal");
  for (int r = 0; r < rows; ++r) {
    const geom::Coord y = r * 44 * L;
    for (int s = 0; s < stages; ++s) {
      top.instances.push_back(
          {stage,
           {geom::Orient::kR0, {s * 52 * L, y}},
           "r" + std::to_string(r) + "_s" + std::to_string(s)});
    }
    // Shared rails across the row.
    const geom::Coord w = stages * 52 * L - 2 * L;
    top.elements.push_back(
        layout::makeBox(nm, {{0, y}, {w, y + 3 * L}}, "GND"));
    top.elements.push_back(
        layout::makeBox(nm, {{0, y + 37 * L}, {w, y + 40 * L}}, "VDD"));
  }
  const layout::CellId root = lib.addCell(std::move(top));

  const layout::Library::SizeStats st = lib.sizeStats(root);
  std::printf(
      "shift register: %d rows x %d stages; %zu cells, %zu hierarchical "
      "elements,\n%zu instantiated elements, %zu devices, depth %d\n",
      rows, stages, st.cells, st.hierarchicalElements, st.flatElements,
      st.deviceInstancesFlat, st.maxDepth);

  // DRC + ERC as one Workspace batch: the pipeline and the electrical
  // rules share the hierarchy view and the extracted netlist.
  Workspace ws(std::move(lib), t);
  const CheckRequest reqs[] = {CheckRequest::drc(root),
                               CheckRequest::ercCheck(root)};
  std::vector<CheckResult> results = ws.runBatch(reqs);
  for (const CheckResult& r : results) {
    if (!r.ok()) {
      std::fprintf(stderr, "%s request failed: %s\n",
                   toString(r.kind).c_str(), r.error.c_str());
      return 2;
    }
  }
  report::Report rep = std::move(results[0].report);
  rep.merge(results[1].report);
  const netlist::Netlist& nl = *results[1].netlist;
  std::printf("\nDRC+ERC: %zu violation(s)\n%s", rep.count(),
              rep.text().c_str());

  // Golden comparison for one stage's worth of devices, repeated.
  std::vector<netlist::GoldenDevice> golden;
  for (int r = 0; r < rows; ++r) {
    for (int s = 0; s < stages; ++s) {
      const std::string p = "r" + std::to_string(r) + "_s" +
                            std::to_string(s) + ".";
      for (const char* half : {"m", "s"}) {
        const std::string q = p + half;
        golden.push_back({"TRAN",
                          {{"G", q + ".in"}, {"S", "GND"}, {"D", q + ".out"}}});
        golden.push_back({"DTRAN",
                          {{"G", q + ".out"},
                           {"S", q + ".out"},
                           {"D", "VDD"}}});
        golden.push_back({"CON_MD", {{"A", q + ".out"}}});
        golden.push_back({"CON_MD", {{"A", "GND"}}});
        golden.push_back({"CON_MD", {{"A", "VDD"}}});
        golden.push_back({"CON_MP", {{"A", q + ".out"}}});
      }
      golden.push_back({"CON_MP", {}});  // the inter-inverter hop
    }
  }
  const auto issues = netlist::compareAgainstGolden(nl, golden);
  if (issues.empty()) {
    std::printf("\nnetlist matches the golden device list (%zu devices)\n",
                golden.size());
  } else {
    std::printf("\nnetlist mismatches:\n");
    for (const auto& s : issues) std::printf("  %s\n", s.c_str());
  }
  return rep.empty() && issues.empty() ? 0 : 1;
}
