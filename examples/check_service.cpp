// The serving story: one dic::Workspace handling repeated mixed traffic
// over a design, the way a layout-editor session or a submit-queue
// service would drive it.
//
//   * a mixed batch (DRC + baseline + ERC + netlist) decomposed into
//     per-request stages on the shared batch-wide dispatcher,
//   * a second identical batch served from the per-(root, revision) view
//     cache (watch viewCacheHit/netlistCacheHit flip to true),
//   * an edit -- the revision bump invalidates the cache -- and a
//     recheck that transparently rebuilds.
//
//   $ ./examples/check_service [threads]
#include <cstdio>
#include <cstdlib>

#include "service/workspace.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace {

void printResults(const char* phase,
                  const std::vector<dic::CheckResult>& results) {
  std::printf("%s\n", phase);
  for (const dic::CheckResult& r : results) {
    if (!r.ok()) {
      std::printf("  %-8s FAILED: %s\n", dic::toString(r.kind).c_str(),
                  r.error.c_str());
      continue;
    }
    std::printf(
        "  %-8s rev %llu  %6.2f ms  %3zu violation(s)  view:%s netlist:%s\n",
        dic::toString(r.kind).c_str(),
        static_cast<unsigned long long>(r.revision), r.seconds * 1e3,
        r.report.count(), r.viewCacheHit ? "hit " : "MISS",
        r.netlist ? (r.netlistCacheHit ? "hit " : "MISS") : "  --");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dic;
  const int threads = argc > 1 ? std::atoi(argv[1]) : 0;

  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(t, {2, 2, 2, 4, true});
  workload::InjectionPlan plan;
  const auto truths = workload::inject(chip, t, plan, /*seed=*/42);
  const layout::CellId top = chip.top;

  Workspace ws(std::move(chip.lib), t, {threads});
  std::printf("check service on %zu-cell library, pool of %d worker(s), %zu "
              "injected defects\n\n",
              ws.library().cellCount(), ws.executor().threads(),
              truths.size());

  const CheckRequest batch[] = {
      CheckRequest::drc(top),
      CheckRequest::baseline(top),
      CheckRequest::ercCheck(top),
      CheckRequest::netlistOnly(top),
  };

  // Cold: every request shares the one view build of this batch.
  printResults("cold batch (fresh workspace):", ws.runBatch(batch));

  // Warm: the same traffic again -- no view, grid, or netlist rebuild.
  printResults("\nwarm batch (same revision):", ws.runBatch(batch));

  // An edit session touches the top cell; the revision bump invalidates.
  ws.library().cell(top);
  printResults("\nafter edit (revision bumped, cache rebuilt):",
               ws.runBatch(batch));

  const Workspace::CacheStats s = ws.cacheStats();
  std::printf(
      "\ncache: %zu hits, %zu misses, %zu evictions, %zu netlist hits, "
      "%zu live view(s)\n",
      s.viewHits, s.viewMisses, s.viewEvictions, s.netlistHits,
      s.cachedViews);
  return 0;
}
