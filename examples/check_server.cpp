// The serving tier: a dic::server::Server fronting a fleet of libraries
// with sharded Workspaces, bounded submit queues, and futures.
//
//   * three libraries registered under stable ids (each routes to its
//     shard by hash -- watch the shard column),
//   * a mixed submit storm from four client threads driven by the
//     workload traffic generator,
//   * one library dropped mid-traffic (its in-flight work completes,
//     later requests report LibraryNotFound),
//   * the ServerStats snapshot: per-shard queue depth, served count,
//     p50/p95 latency, queue-wait vs service split, cache bytes,
//   * two-phase shutdown draining everything that was accepted.
//
//   $ ./examples/check_server [shards] [threadsPerShard]
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "server/server.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"
#include "workload/traffic.hpp"

int main(int argc, char** argv) {
  using namespace dic;
  server::ServerOptions opts;
  opts.shards = argc > 1 ? std::atoi(argv[1]) : 2;
  opts.threadsPerShard = argc > 2 ? std::atoi(argv[2]) : 2;
  opts.queueCapacity = 64;
  server::Server srv(opts);

  const tech::Technology t = tech::nmos();
  constexpr std::size_t kLibraries = 3;
  std::vector<layout::CellId> tops;
  for (std::size_t l = 0; l < kLibraries; ++l) {
    workload::GeneratedChip chip = workload::generateChip(t, {1, 1, 2, 3, true});
    workload::InjectionPlan plan;
    workload::inject(chip, t, plan, /*seed=*/static_cast<unsigned>(40 + l));
    tops.push_back(chip.top);
    const std::string id = workload::libraryName(l);
    srv.addLibrary(id, std::move(chip.lib), t);
    const server::Placement p = srv.placementOf(id);
    std::printf("registered %-5s -> shard %d (policy %s)\n", id.c_str(),
                p.owner, toString(p.policy).c_str());
  }

  // A deterministic mixed trace, four closed-loop clients.
  workload::TrafficOptions topt;
  topt.libraries = kLibraries;
  topt.requests = 60;
  topt.seed = 11;
  const std::vector<workload::TrafficEvent> trace =
      workload::generateTrace(topt);
  std::size_t okCount = 0, droppedCount = 0;
  std::mutex mu;
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      std::size_t ok = 0, dropped = 0;
      bool rolledDrop = false;
      for (std::size_t i = static_cast<std::size_t>(c); i < trace.size();
           i += 4) {
        // Drop lib2 mid-storm from client 0: requests already accepted
        // finish, later ones report LibraryNotFound.
        if (c == 0 && !rolledDrop && i >= trace.size() / 2) {
          srv.dropLibrary("lib2");
          rolledDrop = true;
        }
        const workload::TrafficEvent& ev = trace[i];
        const CheckResult r =
            srv.submit(workload::libraryName(ev.library),
                       workload::materialize(ev, tops[ev.library]))
                .get();
        if (r.ok())
          ++ok;
        else
          ++dropped;
      }
      std::lock_guard<std::mutex> lock(mu);
      okCount += ok;
      droppedCount += dropped;
    });
  }
  for (std::thread& th : clients) th.join();
  std::printf(
      "\nstorm: %zu served, %zu LibraryNotFound after dropLibrary(lib2)\n",
      okCount, droppedCount);

  srv.shutdown();  // two-phase: intake closed, queues drained

  const server::ServerStats st = srv.stats();
  std::printf("\n%-6s %5s %6s %7s %7s %9s %9s %9s %11s\n", "shard", "libs",
              "queue", "served", "reject", "p50-ms", "p95-ms", "wait-ms",
              "cache-KiB");
  for (std::size_t s = 0; s < st.shards.size(); ++s) {
    const server::ShardStats& sh = st.shards[s];
    std::printf("%-6zu %5zu %6zu %7zu %7zu %9.2f %9.2f %9.2f %11.1f\n", s,
                sh.libraries, sh.queueDepth, sh.served, sh.rejected,
                sh.p50Seconds * 1e3, sh.p95Seconds * 1e3,
                sh.meanQueueWaitSeconds * 1e3,
                static_cast<double>(sh.cacheBytes) / 1024.0);
  }
  std::printf("\ntotal: %zu served, %zu cache bytes across %d shard(s)\n",
              st.totalServed(), st.totalCacheBytes(), srv.shardCount());
  return 0;
}
