// End-to-end integration: generated chips, injected defects, and the
// Fig. 1 scoring that is the heart of the paper's argument.
#include <gtest/gtest.h>

#include "baseline/flat_drc.hpp"
#include "drc/checker.hpp"
#include "erc/erc.hpp"
#include "report/scorer.hpp"
#include "structured/structured.hpp"
#include "workload/generator.hpp"
#include "workload/inject.hpp"

namespace dic {
namespace {

report::Report runDic(const workload::GeneratedChip& chip,
                      const tech::Technology& t) {
  drc::Checker checker(chip.lib, chip.top, t, {});
  report::Report rep = checker.run();
  const netlist::Netlist nl = checker.generateNetlist();
  rep.merge(erc::check(nl, t));
  rep.merge(structured::checkImplicitDevices(chip.lib, chip.top, t));
  rep.merge(structured::checkSelfSufficiency(chip.lib, chip.top, t));
  return rep;
}

TEST(Integration, CleanChipCleanEverywhere) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 1, .blockCols = 2, .invRows = 2, .invCols = 3,
          .withPads = true});
  const report::Report rep = runDic(chip, t);
  EXPECT_TRUE(rep.empty()) << rep.text();
  const report::Report base = baseline::check(chip.lib, chip.top, t);
  EXPECT_TRUE(base.empty()) << base.text();
}

TEST(Integration, Fig1VennShape) {
  // The paper's central claim: the integrity checker eliminates false and
  // unchecked errors; the mask-level baseline exhibits both, with a
  // false:real ratio that can reach "10 to 1 or higher".
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 2, .blockCols = 2, .invRows = 2, .invCols = 3,
          .withPads = true});
  const workload::InjectionPlan plan{};  // defaults: a mix of everything
  const auto truths = workload::inject(chip, t, plan, /*seed=*/42);

  const report::Report dicRep = runDic(chip, t);
  const report::Report baseRep = baseline::check(chip.lib, chip.top, t);

  const geom::Coord tol = 4 * t.lambda();
  const report::VennCounts dic = report::score(truths, dicRep, tol);
  const report::VennCounts base = report::score(truths, baseRep, tol);

  // DIC: everything real is flagged, nothing false.
  EXPECT_EQ(dic.realUnchecked, 0u) << dicRep.text();
  EXPECT_EQ(dic.falseErrors, 0u) << dicRep.text();
  EXPECT_EQ(dic.realFlagged, dic.totalReal);

  // Baseline: catches the plain geometric errors...
  EXPECT_GT(base.realFlagged, 0u);
  // ...but misses the device/electrical/structured classes...
  EXPECT_GT(base.realUnchecked, 0u);
  // ...and flags the same-net decoys as errors.
  EXPECT_GT(base.falseErrors, 0u) << baseRep.text();
}

TEST(Integration, BaselineFalseRatioGrowsWithDecoys) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 2, .blockCols = 2, .invRows = 2, .invCols = 3,
          .withPads = true});
  workload::InjectionPlan plan;
  plan.spacingViolations = 1;
  plan.widthViolations = 1;
  plan.sameNetDecoys = 12;  // decoy-rich chip
  plan.accidentalFets = 0;
  plan.contactsOverGate = 0;
  plan.buttingHalves = 0;
  plan.powerGroundShorts = 0;
  plan.floatingNets = 0;
  const auto truths = workload::inject(chip, t, plan, 7);

  const report::Report baseRep = baseline::check(chip.lib, chip.top, t);
  const report::VennCounts base =
      report::score(truths, baseRep, 4 * t.lambda());
  // 12 decoys vs 2 real: at least 5:1 observed (decoy flags can merge).
  EXPECT_GE(base.falseToRealRatio(), 5.0);

  const report::Report dicRep = runDic(chip, t);
  const report::VennCounts dic = report::score(truths, dicRep, 4 * t.lambda());
  EXPECT_EQ(dic.falseErrors, 0u) << dicRep.text();
}

TEST(Integration, HierarchicalAndFlatSameViolationsOnInjectedChip) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 1, .blockCols = 2, .invRows = 2, .invCols = 2,
          .withPads = false});
  workload::InjectionPlan plan;
  plan.powerGroundShorts = 0;  // electrical errors are netlist-level
  plan.floatingNets = 0;
  workload::inject(chip, t, plan, 3);

  drc::Options flat;
  flat.hierarchicalInteractions = false;
  drc::Checker cf(chip.lib, chip.top, t, flat);
  drc::Checker ch(chip.lib, chip.top, t, {});
  const auto rf = cf.run();
  const auto rh = ch.run();
  EXPECT_EQ(rf.count(report::Category::kSpacing),
            rh.count(report::Category::kSpacing));
  EXPECT_EQ(rf.count(report::Category::kWidth),
            rh.count(report::Category::kWidth));
  EXPECT_EQ(rf.count(report::Category::kConnection),
            rh.count(report::Category::kConnection));
}

TEST(Integration, SizeStatsShowHierarchyLeverage) {
  const tech::Technology t = tech::nmos();
  workload::GeneratedChip chip = workload::generateChip(
      t, {.blockRows = 2, .blockCols = 2, .invRows = 3, .invCols = 3,
          .withPads = false});
  const layout::Library::SizeStats s = chip.lib.sizeStats(chip.top);
  // 36 inverters, each with ~9 interconnect elements, vs one definition.
  EXPECT_GT(s.flatElements, 10 * s.hierarchicalElements / 2);
  EXPECT_EQ(s.maxDepth, 4);  // chip -> block -> inverter -> device
}

TEST(Integration, ScorerVennCountsBehave) {
  report::Report rep;
  report::Violation v;
  v.category = report::Category::kWidth;
  v.where = geom::makeRect(0, 0, 10, 10);
  rep.add(v);
  v.where = geom::makeRect(1000, 1000, 1010, 1010);
  rep.add(v);  // a false error far away

  std::vector<report::GroundTruth> truths = {
      {report::Category::kWidth, geom::makeRect(2, 2, 8, 8), true, ""},
      {report::Category::kSpacing, geom::makeRect(500, 500, 510, 510), true,
       ""},
  };
  const report::VennCounts c = report::score(truths, rep, 5);
  EXPECT_EQ(c.totalReal, 2u);
  EXPECT_EQ(c.realFlagged, 1u);
  EXPECT_EQ(c.realUnchecked, 1u);
  EXPECT_EQ(c.falseErrors, 1u);
  EXPECT_DOUBLE_EQ(c.falseToRealRatio(), 1.0);
  EXPECT_DOUBLE_EQ(c.coverage(), 0.5);
}

}  // namespace
}  // namespace dic
